#include <gtest/gtest.h>

#include "fvl/workflow/grammar_builder.h"
#include "fvl/workflow/port_graph.h"
#include "test_util.h"

namespace fvl {
namespace {

using ::fvl::testing::Mat;

std::vector<Module> TwoModules() {
  return {{"x", 1, 1}, {"y", 2, 2}};
}

TEST(SimpleWorkflow, ValidChain) {
  SimpleWorkflow w;
  w.members = {0, 0};  // x -> x
  w.edges = {{{0, 0}, {1, 0}}};
  w.initial_inputs = {{0, 0}};
  w.final_outputs = {{1, 0}};
  EXPECT_FALSE(w.Validate(TwoModules()).has_value());
  EXPECT_EQ(w.TotalPorts(TwoModules()), 4);
}

TEST(SimpleWorkflow, RejectsEmpty) {
  SimpleWorkflow w;
  EXPECT_TRUE(w.Validate(TwoModules()).has_value());
}

TEST(SimpleWorkflow, RejectsUnfedInput) {
  SimpleWorkflow w;
  w.members = {1};
  w.initial_inputs = {{0, 0}};  // input 1 unfed
  w.final_outputs = {{0, 0}, {0, 1}};
  auto error = w.Validate(TwoModules());
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("never fed"), std::string::npos);
}

TEST(SimpleWorkflow, RejectsDoublyFedInput) {
  SimpleWorkflow w;
  w.members = {0, 0};
  w.edges = {{{0, 0}, {1, 0}}};
  w.initial_inputs = {{0, 0}, {1, 0}};  // port fed by edge AND initial
  w.final_outputs = {{1, 0}};
  auto error = w.Validate(TwoModules());
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("more than once"), std::string::npos);
}

TEST(SimpleWorkflow, RejectsDanglingOutput) {
  SimpleWorkflow w;
  w.members = {1};
  w.initial_inputs = {{0, 0}, {0, 1}};
  w.final_outputs = {{0, 0}};  // output 1 unconsumed
  auto error = w.Validate(TwoModules());
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("never consumed"), std::string::npos);
}

TEST(SimpleWorkflow, RejectsBackwardEdge) {
  SimpleWorkflow w;
  w.members = {0, 0};
  w.edges = {{{1, 0}, {0, 0}}};  // member 1 -> member 0
  w.initial_inputs = {{1, 0}};
  w.final_outputs = {{0, 0}};
  auto error = w.Validate(TwoModules());
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("topological"), std::string::npos);
}

TEST(DependencyAssignment, SetGetClear) {
  DependencyAssignment deps(2);
  EXPECT_FALSE(deps.IsDefined(0));
  deps.Set(0, Mat({"1"}));
  EXPECT_TRUE(deps.IsDefined(0));
  EXPECT_EQ(deps.Get(0), Mat({"1"}));
  deps.Clear(0);
  EXPECT_FALSE(deps.IsDefined(0));
}

TEST(DependencyAssignment, ValidateProperDef6) {
  Module m{"m", 2, 2};
  EXPECT_FALSE(
      DependencyAssignment::ValidateProper(m, Mat({"10", "01"})).has_value());
  // Input 1 contributes nothing.
  auto error = DependencyAssignment::ValidateProper(m, Mat({"11", "00"}));
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("contributes to no output"), std::string::npos);
  // Output 0 depends on nothing.
  error = DependencyAssignment::ValidateProper(m, Mat({"01", "01"}));
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("depends on no input"), std::string::npos);
  // Shape mismatch.
  error = DependencyAssignment::ValidateProper(m, Mat({"1"}));
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("shape"), std::string::npos);
}

TEST(GrammarBuilder, BuildsValidGrammar) {
  GrammarBuilder b;
  ModuleId s = b.AddComposite("S", 1, 1);
  ModuleId x = b.AddAtomic("x", 1, 1);
  b.SetStart(s);
  auto p = b.NewProduction(s);
  int m = p.AddMember(x);
  p.MapInput(0, m, 0).MapOutput(0, m, 0);
  ProductionId k = p.Build();
  b.SetCompleteDeps(x);
  Specification spec = b.BuildSpecification();
  EXPECT_EQ(spec.grammar.num_modules(), 2);
  EXPECT_EQ(spec.grammar.num_productions(), 1);
  EXPECT_EQ(spec.grammar.production(k).lhs, s);
  EXPECT_TRUE(spec.grammar.is_composite(s));
  EXPECT_FALSE(spec.grammar.is_composite(x));
  EXPECT_EQ(spec.grammar.FindModule("x"), x);
  EXPECT_EQ(spec.grammar.FindModule("nope"), kInvalidModule);
  EXPECT_EQ(spec.grammar.AtomicModules(), std::vector<ModuleId>{x});
  EXPECT_EQ(spec.grammar.CompositeModules(), std::vector<ModuleId>{s});
}

TEST(Grammar, ValidateRejectsAtomicLhs) {
  std::vector<Module> modules = {{"S", 1, 1}, {"x", 1, 1}};
  SimpleWorkflow w;
  w.members = {1};
  w.initial_inputs = {{0, 0}};
  w.final_outputs = {{0, 0}};
  Grammar g(modules, {true, false}, 0, {{1, w}});  // lhs = atomic x
  auto error = g.Validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("atomic"), std::string::npos);
}

TEST(Grammar, ValidateRejectsArityMismatch) {
  std::vector<Module> modules = {{"S", 2, 1}, {"x", 1, 1}};
  SimpleWorkflow w;
  w.members = {1};
  w.initial_inputs = {{0, 0}};  // S has 2 inputs, only 1 mapped
  w.final_outputs = {{0, 0}};
  Grammar g(modules, {true, false}, 0, {{0, w}});
  auto error = g.Validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("biject"), std::string::npos);
}

TEST(WorkflowPortGraph, ReachabilityThroughDeps) {
  // x(1/1) -> y(2/2) with y's second input initial.
  GrammarBuilder b;
  ModuleId s = b.AddComposite("S", 2, 2);
  ModuleId x = b.AddAtomic("x", 1, 1);
  ModuleId y = b.AddAtomic("y", 2, 2);
  b.SetStart(s);
  auto p = b.NewProduction(s);
  int mx = p.AddMember(x);
  int my = p.AddMember(y);
  p.MapInput(0, mx, 0).MapInput(1, my, 1);
  p.Edge(mx, 0, my, 0);
  p.MapOutput(0, my, 0).MapOutput(1, my, 1);
  p.Build();
  b.SetCompleteDeps(x);
  b.SetDeps(y, Mat({"10", "01"}));  // identity
  Specification spec = b.BuildSpecification();

  WorkflowPortGraph graph(spec.grammar, spec.grammar.production(0).rhs,
                          spec.deps);
  // S.in0 -> x -> y.in0 -> y.out0; not to y.out1.
  EXPECT_EQ(graph.InitialToFinal(), Mat({"10", "01"}));
  EXPECT_EQ(graph.InitialToMemberInputs(1), Mat({"10", "01"}));
  EXPECT_EQ(graph.MemberOutputsToFinalReversed(0), Mat({"1", "0"}));
  EXPECT_EQ(graph.MemberOutputsToMemberInputs(0, 1), Mat({"10"}));
  // Reflexivity.
  EXPECT_TRUE(graph.InputReachesInput({0, 0}, {0, 0}));
}

TEST(WorkflowPortGraph, OverlaySuppressesAndInjects) {
  GrammarBuilder b;
  ModuleId s = b.AddComposite("S", 1, 1);
  ModuleId x = b.AddAtomic("x", 1, 1);
  ModuleId y = b.AddAtomic("y", 1, 1);
  b.SetStart(s);
  auto p = b.NewProduction(s);
  int mx = p.AddMember(x);
  int my = p.AddMember(y);
  p.MapInput(0, mx, 0);
  p.Edge(mx, 0, my, 0);
  p.MapOutput(0, my, 0);
  p.Build();
  b.SetCompleteDeps(x);
  b.SetCompleteDeps(y);
  Specification spec = b.BuildSpecification();

  // Suppress both members and the internal edge; inject a direct dependency
  // from x.in0 to y.out0 (as a grouped module F would).
  PortGraphOverlay overlay;
  overlay.suppress_member = {true, true};
  overlay.suppressed_edges = {0};
  overlay.extra_deps.push_back({{0, 0}, {1, 0}});
  WorkflowPortGraph graph(spec.grammar, spec.grammar.production(0).rhs,
                          spec.deps, &overlay);
  EXPECT_EQ(graph.InitialToFinal(), Mat({"1"}));
  // Without the extra dep, nothing would be reachable.
  PortGraphOverlay no_extra;
  no_extra.suppress_member = {true, true};
  no_extra.suppressed_edges = {0};
  WorkflowPortGraph cut(spec.grammar, spec.grammar.production(0).rhs,
                        spec.deps, &no_extra);
  EXPECT_EQ(cut.InitialToFinal(), Mat({"0"}));
}

}  // namespace
}  // namespace fvl
