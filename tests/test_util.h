// Shared helpers for the FVL test suite.

#ifndef FVL_TESTS_TEST_UTIL_H_
#define FVL_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "fvl/run/run.h"
#include "fvl/run/run_generator.h"
#include "fvl/util/boolean_matrix.h"
#include "fvl/util/check.h"

namespace fvl::testing {

// Builds a matrix from rows like Mat({"101", "010"}).
inline BoolMatrix Mat(const std::vector<std::string>& rows) {
  int r = static_cast<int>(rows.size());
  int c = r > 0 ? static_cast<int>(rows[0].size()) : 0;
  BoolMatrix m(r, c);
  for (int i = 0; i < r; ++i) {
    FVL_CHECK(static_cast<int>(rows[i].size()) == c);
    for (int j = 0; j < c; ++j) {
      if (rows[i][j] == '1') m.Set(i, j);
    }
  }
  return m;
}

// Expands every remaining frontier instance with its cheapest terminating
// production (deterministic).
inline void CompleteRun(Run& run) {
  const Grammar& g = run.grammar();
  std::vector<int64_t> cost = MinCompletionItems(g);
  while (!run.IsComplete()) {
    int inst = run.Frontier().front();
    ModuleId type = run.instance(inst).type;
    ProductionId best = -1;
    int64_t best_cost = -1;
    for (ProductionId k : g.ProductionsOf(type)) {
      const Production& p = g.production(k);
      int64_t total = static_cast<int64_t>(p.rhs.edges.size());
      for (ModuleId member : p.rhs.members) total += cost[member];
      if (best == -1 || total < best_cost) {
        best = k;
        best_cost = total;
      }
    }
    run.Apply(inst, best);
  }
}

}  // namespace fvl::testing

#endif  // FVL_TESTS_TEST_UTIL_H_
