// Property-based correctness sweeps (Thm. 9): for random workloads, random
// runs and random safe views, the decoding predicate π must agree with the
// ground-truth provenance oracle on every sampled query, in all three view
// label variants; the Matrix-Free specialization must agree on black-box
// views; visibility checks must agree with the projection.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "fvl/core/decoder.h"
#include "fvl/service/legacy_facade.h"
#include "fvl/core/visibility.h"
#include "fvl/run/provenance_oracle.h"
#include "fvl/workload/bioaid.h"
#include "fvl/workload/paper_example.h"
#include "fvl/workload/query_generator.h"
#include "fvl/workload/synthetic.h"
#include "fvl/workload/view_generator.h"
#include "test_util.h"

namespace fvl {
namespace {

Workload MakeWorkloadByName(const std::string& name) {
  if (name == "bioaid") return MakeBioAid(2012);
  if (name == "paper") {
    PaperExample ex = MakePaperExample();
    return Workload{"paper", std::move(ex.spec), {}};
  }
  SyntheticOptions options;
  options.seed = 7;
  if (name == "synthetic-small") {
    options.workflow_size = 5;
    options.module_degree = 2;
    options.nesting_depth = 2;
    options.recursion_length = 2;
  } else if (name == "synthetic-ring3") {
    options.workflow_size = 7;
    options.module_degree = 3;
    options.nesting_depth = 3;
    options.recursion_length = 3;
  } else {
    FVL_CHECK(name == "synthetic-deep");
    options.workflow_size = 5;
    options.module_degree = 2;
    options.nesting_depth = 5;
    options.recursion_length = 1;
  }
  return MakeSynthetic(options);
}

struct SweepParam {
  std::string workload;
  PerceivedDeps deps;
  int num_expandable;  // -1 = all
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string deps = info.param.deps == PerceivedDeps::kWhiteBox  ? "white"
                     : info.param.deps == PerceivedDeps::kGreyBox ? "grey"
                                                                  : "black";
  std::string expand = info.param.num_expandable < 0
                           ? "all"
                           : std::to_string(info.param.num_expandable);
  std::string name = info.param.workload + "_" + deps + "_" + expand + "_s" +
                     std::to_string(info.param.seed);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class DecoderSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DecoderSweep, PiAgreesWithOracle) {
  const SweepParam& param = GetParam();
  Workload workload = MakeWorkloadByName(param.workload);
  FvlScheme scheme = FvlScheme::Create(&workload.spec).value();

  RunGeneratorOptions run_options;
  run_options.target_items = 600;
  run_options.seed = param.seed;
  FvlScheme::LabeledRun labeled = scheme.GenerateLabeledRun(run_options);

  ViewGeneratorOptions view_options;
  view_options.deps = param.deps;
  view_options.num_expandable = param.num_expandable;
  view_options.seed = param.seed * 31 + 5;
  CompiledView view = GenerateSafeView(workload, view_options);

  ProvenanceOracle oracle(labeled.run, view);

  ViewLabel labels[3] = {
      scheme.LabelView(view, ViewLabelMode::kSpaceEfficient),
      scheme.LabelView(view, ViewLabelMode::kDefault),
      scheme.LabelView(view, ViewLabelMode::kQueryEfficient)};
  Decoder decoders[3] = {Decoder(&labels[0]), Decoder(&labels[1]),
                         Decoder(&labels[2])};

  // Visibility must agree with the projection for every item.
  for (int item = 0; item < labeled.run.num_items(); ++item) {
    ASSERT_EQ(IsItemVisible(labeled.labeler.Label(item), labels[1]),
              oracle.ItemVisible(item))
        << "item " << item << " label "
        << labeled.labeler.Label(item).ToString();
  }

  auto queries = GenerateVisibleQueries(labeled.run, labeled.labeler,
                                        labels[1], 1500, param.seed * 7 + 1);
  int positives = 0;
  for (const auto& [d1, d2] : queries) {
    bool expected = oracle.Depends(d1, d2);
    positives += expected ? 1 : 0;
    const DataLabel& l1 = labeled.labeler.Label(d1);
    const DataLabel& l2 = labeled.labeler.Label(d2);
    for (int mode = 0; mode < 3; ++mode) {
      ASSERT_EQ(decoders[mode].Depends(l1, l2), expected)
          << "mode=" << ToString(labels[mode].mode()) << " d1=" << d1
          << " d2=" << d2 << "\n l1=" << l1.ToString()
          << "\n l2=" << l2.ToString();
    }
  }
  // Sanity: the sample must exercise both answers.
  EXPECT_GT(positives, 0);
  EXPECT_LT(positives, static_cast<int>(queries.size()));

  // Matrix-free decoding agrees on black-box views.
  if (param.deps == PerceivedDeps::kBlackBox) {
    ASSERT_TRUE(view.IsBlackBox());
    MatrixFreeDecoder matrix_free(&scheme.production_graph(), &labels[2]);
    for (const auto& [d1, d2] : queries) {
      ASSERT_EQ(matrix_free.Depends(labeled.labeler.Label(d1),
                                    labeled.labeler.Label(d2)),
                oracle.Depends(d1, d2))
          << "matrix-free d1=" << d1 << " d2=" << d2;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, DecoderSweep,
    ::testing::Values(
        SweepParam{"paper", PerceivedDeps::kWhiteBox, -1, 1},
        SweepParam{"paper", PerceivedDeps::kGreyBox, 3, 2},
        SweepParam{"paper", PerceivedDeps::kGreyBox, 3, 3},
        SweepParam{"bioaid", PerceivedDeps::kWhiteBox, -1, 1},
        SweepParam{"bioaid", PerceivedDeps::kWhiteBox, 8, 2},
        SweepParam{"bioaid", PerceivedDeps::kGreyBox, -1, 3},
        SweepParam{"bioaid", PerceivedDeps::kGreyBox, 8, 4},
        SweepParam{"bioaid", PerceivedDeps::kGreyBox, 4, 5},
        SweepParam{"bioaid", PerceivedDeps::kBlackBox, 8, 6},
        SweepParam{"bioaid", PerceivedDeps::kBlackBox, -1, 7},
        SweepParam{"synthetic-small", PerceivedDeps::kWhiteBox, -1, 1},
        SweepParam{"synthetic-small", PerceivedDeps::kGreyBox, -1, 2},
        SweepParam{"synthetic-small", PerceivedDeps::kGreyBox, 3, 3},
        SweepParam{"synthetic-ring3", PerceivedDeps::kGreyBox, -1, 4},
        SweepParam{"synthetic-ring3", PerceivedDeps::kGreyBox, 4, 5},
        SweepParam{"synthetic-deep", PerceivedDeps::kGreyBox, -1, 6},
        SweepParam{"synthetic-deep", PerceivedDeps::kWhiteBox, 3, 7}),
    ParamName);

}  // namespace
}  // namespace fvl
