// fvl::net wire protocol: the decoders are total. A seeded corpus of valid
// frames is byte-flipped, truncated at every prefix, fed through oversized
// lengths and arbitrary split points, and every mutation must come back as
// a clean decode, a recoverable kMalformedBlob, or a framing rejection —
// never a crash, an over-read, or an attacker-sized allocation (run under
// ASan/UBSan, where any of those is fatal). A live-server section then
// replays the same hostility over a real socket and checks the error-frame
// -or-close contract plus server survival.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fvl/core/index.h"
#include "fvl/net/client.h"
#include "fvl/net/server.h"
#include "fvl/net/socket.h"
#include "fvl/net/wire.h"
#include "fvl/service/provenance_service.h"
#include "fvl/util/random.h"
#include "fvl/workload/bioaid.h"
#include "fvl/workload/view_generator.h"

namespace fvl::net {
namespace {

// The corpus: one well-formed payload per message type (frames are added
// by the harness where framing is under test).
std::vector<std::string> ValidRequestPayloads() {
  Workload bio = MakeBioAid(2012);
  View view = GenerateSafeView(bio, ViewGeneratorOptions{.num_expandable = 8,
                                                          .seed = 8})
                  .view();
  std::vector<std::pair<int, int>> pairs = {{0, 1}, {7, 3}, {2, 2}};
  std::vector<std::pair<RunItem, RunItem>> run_pairs = {
      {{0, 4}, {1, 9}}, {{1, 0}, {0, 0}}};
  std::vector<uint64_t> ids = {1, 2, 3};
  return {
      EncodePingRequest(),
      EncodeRegisterViewRequest(view),
      EncodeBeginRunRequest(),
      EncodeApplyRequest(1, 0, 2),
      EncodeSnapshotRequest(1, /*delta=*/false),
      EncodeSnapshotRequest(1, /*delta=*/true),
      EncodeDependsRequest(0, 1, ViewLabelMode::kQueryEfficient, 3, 5),
      EncodeDependsManyRequest(0, 1, ViewLabelMode::kDefault, pairs),
      EncodeVisibilitySweepRequest(0, 1, ViewLabelMode::kSpaceEfficient),
      EncodeMergeRunsRequest(ids),
      EncodeQueryAcrossRunsRequest(0, 1, ViewLabelMode::kQueryEfficient,
                                   run_pairs),
      EncodeStatsRequest(),
      EncodeOpenIndexFileRequest("/tmp/archive.fvlidx", /*merged=*/false),
      EncodeOpenIndexFileRequest("/tmp/archive.fvlmrg", /*merged=*/true),
      EncodeCompactFilesRequest(
          std::vector<std::string>{"/tmp/a.fvlidx", "/tmp/b.fvlmrg"},
          "/tmp/l1.fvlmrg"),
  };
}

// ----- Baseline: the corpus itself decodes. -----

TEST(NetProtocol, CorpusDecodesCleanly) {
  for (const std::string& payload : ValidRequestPayloads()) {
    Result<Request> request = DecodeRequest(payload);
    ASSERT_TRUE(request.ok()) << request.status().message();
  }
}

TEST(NetProtocol, FramingRoundTrips) {
  for (const std::string& payload : ValidRequestPayloads()) {
    std::string stream;
    AppendFrame(&stream, payload);
    size_t frame_size = 0;
    std::string_view extracted;
    ASSERT_EQ(TryExtractFrame(stream, &frame_size, &extracted),
              FrameStatus::kFrame);
    EXPECT_EQ(frame_size, stream.size());
    EXPECT_EQ(extracted, payload);
  }
}

// ----- Truncation: every proper prefix of every payload. -----

TEST(NetProtocol, EveryPayloadPrefixRejected) {
  for (const std::string& payload : ValidRequestPayloads()) {
    for (size_t cut = 0; cut < payload.size(); ++cut) {
      Result<Request> request =
          DecodeRequest(std::string_view(payload).substr(0, cut));
      // A prefix of one message type may parse as a complete shorter
      // message only if the type byte still matches a no-body type; the
      // corpus has distinct bodies, so every proper prefix must fail.
      ASSERT_FALSE(request.ok()) << "payload prefix len " << cut;
      EXPECT_EQ(request.code(), ErrorCode::kMalformedBlob);
    }
  }
}

TEST(NetProtocol, EveryFramePrefixNeedsMoreOrRejects) {
  for (const std::string& payload : ValidRequestPayloads()) {
    std::string stream;
    AppendFrame(&stream, payload);
    for (size_t cut = 0; cut < stream.size(); ++cut) {
      size_t frame_size = 0;
      std::string_view extracted;
      FrameStatus status = TryExtractFrame(
          std::string_view(stream).substr(0, cut), &frame_size, &extracted);
      // A prefix of a valid frame is by definition incomplete, never bad.
      EXPECT_EQ(status, FrameStatus::kNeedMore) << "frame prefix " << cut;
    }
  }
}

// ----- Byte flips: seeded, deterministic, every result classified. -----

TEST(NetProtocol, SeededByteFlipsNeverCrashTheDecoder) {
  Rng rng(2012);
  int mutations = 0;
  for (const std::string& payload : ValidRequestPayloads()) {
    for (int round = 0; round < 400; ++round) {
      std::string mutant = payload;
      int flips = 1 + rng.NextInt(0, 2);
      for (int f = 0; f < flips; ++f) {
        size_t at = static_cast<size_t>(
            rng.NextInt(0, static_cast<int>(mutant.size()) - 1));
        mutant[at] = static_cast<char>(rng.NextInt(0, 255));
      }
      Result<Request> request = DecodeRequest(mutant);
      if (!request.ok()) {
        EXPECT_EQ(request.code(), ErrorCode::kMalformedBlob);
      }
      ++mutations;
    }
  }
  EXPECT_GE(mutations, 4000);
}

TEST(NetProtocol, SeededByteFlipsNeverCrashTheResponseParser) {
  std::vector<std::string> responses = {
      OkResponse(),
      OkResponse(std::string(9, '\x07')),
      ErrorResponse(Status::Error(ErrorCode::kNotFound, "unknown view id 9")),
      ErrorResponse(Status::Error(ErrorCode::kUnavailable, "")),
  };
  Rng rng(77);
  for (const std::string& payload : responses) {
    for (int round = 0; round < 400; ++round) {
      std::string mutant = payload;
      size_t at = static_cast<size_t>(
          rng.NextInt(0, static_cast<int>(mutant.size()) - 1));
      mutant[at] = static_cast<char>(rng.NextInt(0, 255));
      Result<std::string_view> body = ParseResponse(mutant);
      if (!body.ok()) {
        // Either the reconstructed wire error or a malformed-response
        // rejection; both are Status, neither is a crash.
        EXPECT_NE(body.code(), ErrorCode::kOk);
      }
    }
    for (size_t cut = 0; cut < payload.size(); ++cut) {
      (void)ParseResponse(std::string_view(payload).substr(0, cut));
    }
  }
}

// Snapshot responses carry serialized FVLIDX3 blobs (the v2 compressed
// span tail) as opaque bodies: a peer-corrupted body must survive the full
// untrusted path — response parse, then index deserialize — as a clean
// decode or kMalformedBlob, never a crash (vbyte continuation bits, block
// length fields, and inline payload boundaries all live in this region).
TEST(NetProtocol, SeededFlipsOnSnapshotBlobBodiesNeverCrashDeserialize) {
  Workload bio = MakeBioAid(2012);
  auto service = ProvenanceService::Create(bio.spec).value();
  std::string blob = service
                         ->GenerateLabeledRun(RunGeneratorOptions{
                             .target_items = 150, .seed = 15})
                         ->Snapshot()
                         .Serialize();
  std::string response = OkResponse(blob);

  Rng rng(1515);
  int rejected = 0;
  for (int round = 0; round < 400; ++round) {
    std::string mutant = response;
    int flips = 1 + rng.NextInt(0, 2);
    for (int f = 0; f < flips; ++f) {
      size_t at = static_cast<size_t>(
          rng.NextInt(0, static_cast<int>(mutant.size()) - 1));
      mutant[at] = static_cast<char>(rng.NextInt(0, 255));
    }
    Result<std::string_view> body = ParseResponse(mutant);
    if (!body.ok()) continue;  // the flip hit the response envelope
    Result<ProvenanceIndex> parsed = ProvenanceIndex::Deserialize(*body);
    if (parsed.ok()) {
      for (int item = 0; item < parsed->num_items(); ++item) {
        (void)parsed->Label(item);
      }
    } else {
      ++rejected;
      EXPECT_EQ(parsed.code(), ErrorCode::kMalformedBlob);
    }
  }
  EXPECT_GT(rejected, 50);
}

// ----- Oversize and zero lengths: framing must refuse, not allocate. -----

TEST(NetProtocol, OversizeLengthIsBadNotAnAllocation) {
  std::string stream;
  AppendU64(&stream, kMaxFramePayload + 1);
  stream.append("x");
  size_t frame_size = 0;
  std::string_view payload;
  EXPECT_EQ(TryExtractFrame(stream, &frame_size, &payload), FrameStatus::kBad);

  std::string huge;
  AppendU64(&huge, ~uint64_t{0});  // 2^64-1: a wrapped/attacked length
  EXPECT_EQ(TryExtractFrame(huge, &frame_size, &payload), FrameStatus::kBad);
}

TEST(NetProtocol, ZeroLengthFrameIsBad) {
  std::string stream;
  AppendU64(&stream, 0);
  size_t frame_size = 0;
  std::string_view payload;
  EXPECT_EQ(TryExtractFrame(stream, &frame_size, &payload), FrameStatus::kBad);
}

TEST(NetProtocol, HostileCountsInsideBodiesRejected) {
  // A kDependsMany whose count field claims 2^61 pairs in a 40-byte body:
  // the decoder must reject on arithmetic, not trust-then-allocate.
  std::string payload(1, static_cast<char>(MsgType::kDependsMany));
  AppendU64(&payload, 0);  // view
  AppendU64(&payload, 0);  // index
  AppendU64(&payload, 0);  // mode
  AppendU64(&payload, uint64_t{1} << 61);  // count
  Result<Request> request = DecodeRequest(payload);
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.code(), ErrorCode::kMalformedBlob);

  // Same attack through the bit-packed bool count.
  std::string bools;
  AppendU64(&bools, uint64_t{1} << 60);
  std::vector<bool> bits;
  size_t pos = 0;
  EXPECT_FALSE(DecodeBools(bools, &pos, &bits));
}

TEST(NetProtocol, TrailingBytesRejected) {
  for (const std::string& payload : ValidRequestPayloads()) {
    std::string padded = payload + '\x00';
    Result<Request> request = DecodeRequest(padded);
    ASSERT_FALSE(request.ok());
    EXPECT_EQ(request.code(), ErrorCode::kMalformedBlob);
  }
}

// ----- Split reads: frame extraction is position-independent. -----

TEST(NetProtocol, SplitReadsReassembleIdentically) {
  std::vector<std::string> payloads = ValidRequestPayloads();
  std::string stream;
  for (const std::string& payload : payloads) AppendFrame(&stream, payload);

  Rng rng(31);
  for (int round = 0; round < 50; ++round) {
    // Feed the stream in random-sized chunks through a reassembly buffer.
    std::string buffer;
    size_t fed = 0;
    std::vector<std::string> extracted;
    while (extracted.size() < payloads.size()) {
      size_t frame_size = 0;
      std::string_view payload;
      FrameStatus status = TryExtractFrame(buffer, &frame_size, &payload);
      ASSERT_NE(status, FrameStatus::kBad);
      if (status == FrameStatus::kFrame) {
        extracted.emplace_back(payload);
        buffer.erase(0, frame_size);
        continue;
      }
      ASSERT_LT(fed, stream.size()) << "ran dry mid-frame";
      size_t chunk = 1 + static_cast<size_t>(rng.NextInt(0, 13));
      chunk = std::min(chunk, stream.size() - fed);
      buffer.append(stream, fed, chunk);
      fed += chunk;
    }
    ASSERT_EQ(extracted.size(), payloads.size());
    for (size_t i = 0; i < payloads.size(); ++i) {
      EXPECT_EQ(extracted[i], payloads[i]) << "frame " << i;
    }
  }
}

// ----- Live server: hostility over a real socket. -----

class LiveServerFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    Workload bio = MakeBioAid(2012);
    auto service = ProvenanceService::Create(std::move(bio.spec)).value();
    server_ = ProvenanceServer::Start(std::move(service)).value();
  }

  // The survival probe: a fresh connection must still get a ping through.
  void ExpectServerAlive() {
    Result<ProvenanceClient> client = ProvenanceClient::Connect(server_->port());
    ASSERT_TRUE(client.ok());
    Result<uint64_t> version = client->Ping();
    ASSERT_TRUE(version.ok()) << version.status().message();
    EXPECT_EQ(*version, kProtocolVersion);
  }

  std::unique_ptr<ProvenanceServer> server_;
};

TEST_F(LiveServerFuzz, MalformedPayloadsGetErrorFramesConnectionSurvives) {
  ProvenanceClient client =
      ProvenanceClient::Connect(server_->port()).value();
  Rng rng(404);
  for (const std::string& payload : ValidRequestPayloads()) {
    std::string mutant = payload;
    size_t at = static_cast<size_t>(
        rng.NextInt(0, static_cast<int>(mutant.size()) - 1));
    mutant[at] = static_cast<char>(rng.NextInt(0, 255));
    Result<std::string> frame = client.RoundTripRaw(mutant);
    ASSERT_TRUE(frame.ok()) << frame.status().message();
    // Whatever came back is a well-formed response frame: either the
    // mutation stayed decodable (ok/error from the service) or the
    // decoder rejected it (error frame) — same conversation either way.
    Result<std::string_view> body = ParseResponse(*frame);
    if (!body.ok()) {
      EXPECT_NE(body.code(), ErrorCode::kOk);
    }
  }
  // The connection that sent all that garbage is still serviceable.
  EXPECT_TRUE(client.Ping().ok());
  ExpectServerAlive();
}

TEST_F(LiveServerFuzz, OversizeLengthClosesTheConnection) {
  Socket raw = TcpConnect(server_->port()).value();
  std::string stream;
  AppendU64(&stream, ~uint64_t{0});
  stream.append("garbage");
  ASSERT_TRUE(WriteAll(raw, stream).ok());
  // The server sends at most one final error frame, then closes: drain
  // until EOF. Nothing here may hang or crash either endpoint.
  char buf[4096];
  for (;;) {
    Result<ReadOutcome> outcome = ReadSome(raw, buf, sizeof(buf));
    if (!outcome.ok() || outcome->eof) break;
  }
  ExpectServerAlive();
}

TEST_F(LiveServerFuzz, RandomGarbageStreamsNeverKillTheServer) {
  Rng rng(1999);
  for (int round = 0; round < 30; ++round) {
    Socket raw = TcpConnect(server_->port()).value();
    std::string garbage;
    int len = 1 + rng.NextInt(0, 200);
    for (int i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.NextInt(0, 255)));
    }
    if (!WriteAll(raw, garbage).ok()) continue;  // server already closed us
    if (rng.NextInt(0, 1) == 0) {
      raw.Close();  // abrupt disconnect, possibly mid-frame
    } else {
      // EOF the write side first: if the garbage parsed as an incomplete
      // frame the server is waiting for its remainder, and only our EOF
      // releases it — without this the drain below would deadlock.
      raw.ShutdownWrite();
      char buf[4096];
      for (int reads = 0; reads < 8; ++reads) {
        Result<ReadOutcome> outcome = ReadSome(raw, buf, sizeof(buf));
        if (!outcome.ok() || outcome->eof) break;
      }
    }
  }
  ExpectServerAlive();
}

}  // namespace
}  // namespace fvl::net
