// Cross-module integration scenarios:
//  * the multi-view workflow the paper motivates — one labeled run queried
//    through several independently-added views, without relabeling;
//  * streaming (partial-run) labeling with queries answered mid-derivation;
//  * a recursion-severing view over the BioAID workload.

#include <gtest/gtest.h>

#include "fvl/core/decoder.h"
#include "fvl/service/legacy_facade.h"
#include "fvl/core/visibility.h"
#include "fvl/util/random.h"
#include "fvl/run/provenance_oracle.h"
#include "fvl/workload/bioaid.h"
#include "fvl/workload/query_generator.h"
#include "fvl/workload/view_generator.h"
#include "test_util.h"

namespace fvl {
namespace {

TEST(Integration, OneRunManyViewsNoRelabeling) {
  Workload workload = MakeBioAid(2012);
  FvlScheme scheme = FvlScheme::Create(&workload.spec).value();

  RunGeneratorOptions run_options;
  run_options.target_items = 700;
  run_options.seed = 42;
  FvlScheme::LabeledRun labeled = scheme.GenerateLabeledRun(run_options);

  // Snapshot the labels: adding views below must never touch them.
  std::vector<DataLabel> snapshot;
  for (int item = 0; item < labeled.run.num_items(); ++item) {
    snapshot.push_back(labeled.labeler.Label(item));
  }

  std::vector<std::pair<PerceivedDeps, int>> view_specs = {
      {PerceivedDeps::kWhiteBox, -1}, {PerceivedDeps::kGreyBox, 10},
      {PerceivedDeps::kGreyBox, 6},   {PerceivedDeps::kBlackBox, 10},
      {PerceivedDeps::kWhiteBox, 4},
  };
  int divergent_answers = 0;
  std::optional<std::vector<bool>> first_answers;
  for (size_t v = 0; v < view_specs.size(); ++v) {
    ViewGeneratorOptions options;
    options.deps = view_specs[v].first;
    options.num_expandable = view_specs[v].second;
    options.seed = 1000 + v;
    CompiledView view = GenerateSafeView(workload, options);
    ViewLabel label = scheme.LabelView(view, ViewLabelMode::kQueryEfficient);
    Decoder pi(&label);
    ProvenanceOracle oracle(labeled.run, view);

    auto queries = GenerateVisibleQueries(labeled.run, labeled.labeler, label,
                                          400, 99);
    std::vector<bool> answers;
    for (const auto& [d1, d2] : queries) {
      bool answer =
          pi.Depends(labeled.labeler.Label(d1), labeled.labeler.Label(d2));
      ASSERT_EQ(answer, oracle.Depends(d1, d2))
          << "view " << v << " d1=" << d1 << " d2=" << d2;
      answers.push_back(answer);
    }
    if (!first_answers.has_value()) {
      first_answers = answers;
    } else if (answers.size() == first_answers->size() &&
               answers != *first_answers) {
      ++divergent_answers;
    }
  }
  // Labels untouched by all the view additions.
  for (int item = 0; item < labeled.run.num_items(); ++item) {
    ASSERT_EQ(labeled.labeler.Label(item), snapshot[item]);
  }
  SUCCEED();
}

TEST(Integration, StreamingPartialRunQueries) {
  // Scientific workflows run for a long time; users query partial
  // executions (§1). Labels must be usable the moment items appear.
  Workload workload = MakeBioAid(2012);
  FvlScheme scheme = FvlScheme::Create(&workload.spec).value();
  View default_view = MakeDefaultView(workload.spec);
  auto view = *CompiledView::Compile(workload.spec.grammar, default_view);
  ViewLabel label = scheme.LabelView(view, ViewLabelMode::kQueryEfficient);
  Decoder pi(&label);

  RunLabeler labeler = scheme.MakeRunLabeler();
  ::fvl::Run run(&workload.spec.grammar);
  labeler.OnStart(run);

  Rng rng(31);
  int checkpoints = 0;
  for (int step_count = 0; !run.IsComplete() && step_count < 160;
       ++step_count) {
    const std::vector<int>& frontier = run.Frontier();
    int inst = frontier[rng.NextBounded(frontier.size())];
    ModuleId type = run.instance(inst).type;
    const auto& candidates = workload.spec.grammar.ProductionsOf(type);
    ProductionId k = candidates[rng.NextBounded(candidates.size())];
    const DerivationStep& step = run.Apply(inst, k);
    labeler.OnApply(run, step);

    if (step_count % 6 == 3) {
      // Query the partial run; ground truth from the oracle over the
      // partial run (unexpanded composites are leaves with λ* deps).
      ProvenanceOracle oracle(run, view);
      for (int q = 0; q < 200; ++q) {
        int d1 = static_cast<int>(rng.NextBounded(run.num_items()));
        int d2 = static_cast<int>(rng.NextBounded(run.num_items()));
        ASSERT_EQ(pi.Depends(labeler.Label(d1), labeler.Label(d2)),
                  oracle.Depends(d1, d2))
            << "at step " << step_count << " d1=" << d1 << " d2=" << d2;
      }
      ++checkpoints;
    }
  }
  EXPECT_GT(checkpoints, 1);
}

TEST(Integration, RecursionSeveringViewStillCorrect) {
  // A view that keeps the loop module L1 expandable but not its cycle
  // partner cannot be produced by the group-closed generator; build one by
  // hand that severs a fork's recursion instead: F1 not expandable while
  // everything else is.
  Workload workload = MakeBioAid(2012);
  const Grammar& g = workload.spec.grammar;
  FvlScheme scheme = FvlScheme::Create(&workload.spec).value();

  View view;
  view.expandable.assign(g.num_modules(), false);
  for (ModuleId m : g.CompositeModules()) view.expandable[m] = true;
  ModuleId f1 = g.FindModule("F1");
  ASSERT_NE(f1, kInvalidModule);
  view.expandable[f1] = false;
  view.perceived = workload.spec.deps;
  view.perceived.Set(f1, scheme.true_full().Get(f1));

  auto compiled = CompiledView::Compile(g, view);
  ASSERT_TRUE(compiled.has_value()) << compiled.status().ToString();

  RunGeneratorOptions options;
  options.target_items = 500;
  options.seed = 9;
  FvlScheme::LabeledRun labeled = scheme.GenerateLabeledRun(options);
  ProvenanceOracle oracle(labeled.run, *compiled);
  for (ViewLabelMode mode :
       {ViewLabelMode::kDefault, ViewLabelMode::kQueryEfficient}) {
    ViewLabel label = scheme.LabelView(*compiled, mode);
    Decoder pi(&label);
    auto queries = GenerateVisibleQueries(labeled.run, labeled.labeler, label,
                                          600, 5);
    for (const auto& [d1, d2] : queries) {
      ASSERT_EQ(pi.Depends(labeled.labeler.Label(d1),
                           labeled.labeler.Label(d2)),
                oracle.Depends(d1, d2))
          << "d1=" << d1 << " d2=" << d2;
    }
  }
}

TEST(Integration, PartiallySeveredTwoCycleView) {
  // The subtle recursion case: L1 stays expandable while its cycle partner
  // L1b does not. L1's recursive production is active and produces L1b as a
  // *sibling iteration* in the compressed parse tree, but L1b's own
  // productions are hidden -- labels referencing deeper iterations must be
  // invisible, and queries into iteration 2 must still decode correctly.
  Workload workload = MakeBioAid(2012);
  const Grammar& g = workload.spec.grammar;
  FvlScheme scheme = FvlScheme::Create(&workload.spec).value();

  View view;
  view.expandable.assign(g.num_modules(), false);
  for (ModuleId m : g.CompositeModules()) view.expandable[m] = true;
  ModuleId l1b = g.FindModule("L1b");
  ASSERT_NE(l1b, kInvalidModule);
  view.expandable[l1b] = false;
  view.perceived = workload.spec.deps;
  // Safety demands that the perceived deps of the severed cycle member equal
  // the cycle's fixed point; white-box works.
  view.perceived.Set(l1b, scheme.true_full().Get(l1b));

  auto compiled = CompiledView::Compile(g, view);
  ASSERT_TRUE(compiled.has_value()) << compiled.status().ToString();

  RunGeneratorOptions options;
  options.target_items = 2000;
  options.seed = 77;
  FvlScheme::LabeledRun labeled = scheme.GenerateLabeledRun(options);
  ProvenanceOracle oracle(labeled.run, *compiled);
  ViewLabel label = scheme.LabelView(*compiled, ViewLabelMode::kQueryEfficient);
  Decoder pi(&label);

  // Visibility agrees everywhere (this exercises the severed-walk lookups).
  int visible = 0;
  for (int item = 0; item < labeled.run.num_items(); ++item) {
    ASSERT_EQ(IsItemVisible(labeled.labeler.Label(item), label),
              oracle.ItemVisible(item))
        << "item " << item << " " << labeled.labeler.Label(item).ToString();
    visible += oracle.ItemVisible(item) ? 1 : 0;
  }
  EXPECT_GT(visible, 0);
  EXPECT_LT(visible, labeled.run.num_items());

  auto queries = GenerateVisibleQueries(labeled.run, labeled.labeler, label,
                                        1000, 3);
  for (const auto& [d1, d2] : queries) {
    ASSERT_EQ(
        pi.Depends(labeled.labeler.Label(d1), labeled.labeler.Label(d2)),
        oracle.Depends(d1, d2))
        << "d1=" << d1 << " d2=" << d2;
  }
}

}  // namespace
}  // namespace fvl
