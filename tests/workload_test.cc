#include <gtest/gtest.h>

#include "fvl/service/legacy_facade.h"
#include "fvl/workflow/recursion_analysis.h"
#include "fvl/workflow/safety.h"
#include "fvl/workload/bioaid.h"
#include "fvl/workload/paper_example.h"
#include "fvl/workload/query_generator.h"
#include "fvl/workload/synthetic.h"
#include "fvl/workload/view_generator.h"
#include "test_util.h"

namespace fvl {
namespace {

TEST(BioAid, MatchesPublishedShape) {
  Workload workload = MakeBioAid(2012);
  const Grammar& g = workload.spec.grammar;
  EXPECT_EQ(g.num_modules(), 112);
  EXPECT_EQ(g.CompositeModules().size(), 16u);
  EXPECT_EQ(g.num_productions(), 23);

  // 7 recursive productions (a production is recursive if some member can
  // re-derive its lhs).
  ProductionGraph pg(&g);
  int recursive_productions = 0;
  int max_members = 0;
  for (ProductionId k = 0; k < g.num_productions(); ++k) {
    const Production& p = g.production(k);
    max_members = std::max(max_members, p.rhs.num_members());
    for (ModuleId member : p.rhs.members) {
      if (pg.Reaches(member, p.lhs)) {
        ++recursive_productions;
        break;
      }
    }
  }
  EXPECT_EQ(recursive_productions, 7);
  EXPECT_LE(max_members, 19);

  // Port bounds: at most 4 inputs and 7 outputs.
  for (ModuleId m = 0; m < g.num_modules(); ++m) {
    EXPECT_LE(g.module(m).num_inputs, 4);
    EXPECT_LE(g.module(m).num_outputs, 7);
  }
}

TEST(BioAid, StrictlyLinearAndSafe) {
  Workload workload = MakeBioAid(2012);
  ProductionGraph pg(&workload.spec.grammar);
  EXPECT_TRUE(IsStrictlyLinearRecursive(pg));
  EXPECT_TRUE(IsLinearRecursive(pg));
  EXPECT_TRUE(pg.IsRecursiveGrammar());
  // Cycles: one 2-ring and five self-loops... (L1-L1b plus L2, F1..F4).
  EXPECT_EQ(pg.num_cycles(), 6);
  EXPECT_TRUE(FvlScheme::Create(&workload.spec).has_value());
}

TEST(BioAid, SafeForAnyUnconstrainedAssignmentSample) {
  // Different seeds give different random dependencies — all must be safe.
  for (uint64_t seed : {1u, 17u, 400u}) {
    Workload workload = MakeBioAid(seed);
    Result<DependencyAssignment> safety =
        CheckSafety(workload.spec.grammar, workload.spec.deps);
    EXPECT_TRUE(safety.ok()) << "seed " << seed << ": "
                             << safety.status().message();
  }
}

TEST(BioAid, SingleSourceSingleSinkWorkflows) {
  // Def. 8's structural condition, needed so black-box views are safe and
  // DRL is applicable.
  Workload workload = MakeBioAid(2012);
  const Grammar& g = workload.spec.grammar;
  for (ProductionId k = 0; k < g.num_productions(); ++k) {
    const SimpleWorkflow& w = g.production(k).rhs;
    std::vector<bool> has_initial(w.num_members(), false);
    std::vector<bool> has_final(w.num_members(), false);
    for (const PortRef& p : w.initial_inputs) has_initial[p.member] = true;
    for (const PortRef& p : w.final_outputs) has_final[p.member] = true;
    EXPECT_EQ(std::count(has_initial.begin(), has_initial.end(), true), 1)
        << "production " << k;
    EXPECT_EQ(std::count(has_final.begin(), has_final.end(), true), 1)
        << "production " << k;
  }
}

TEST(Synthetic, DefaultsBuildSafely) {
  Workload workload = MakeSynthetic(SyntheticOptions{});
  ProductionGraph pg(&workload.spec.grammar);
  EXPECT_TRUE(IsStrictlyLinearRecursive(pg));
  EXPECT_EQ(pg.num_cycles(), 4);  // one ring per nesting level
  EXPECT_TRUE(FvlScheme::Create(&workload.spec).has_value());
}

TEST(Synthetic, ParametersShapeTheGrammar) {
  SyntheticOptions options;
  options.workflow_size = 10;
  options.module_degree = 3;
  options.nesting_depth = 3;
  options.recursion_length = 2;
  Workload workload = MakeSynthetic(options);
  const Grammar& g = workload.spec.grammar;
  // Composite modules: h * r rings.
  EXPECT_EQ(g.CompositeModules().size(), 6u);
  // Every module has degree d.
  for (ModuleId m = 0; m < g.num_modules(); ++m) {
    EXPECT_EQ(g.module(m).num_inputs, 3);
    EXPECT_EQ(g.module(m).num_outputs, 3);
  }
  // Every production has exactly w members.
  for (ProductionId k = 0; k < g.num_productions(); ++k) {
    EXPECT_EQ(g.production(k).rhs.num_members(), 10);
  }
  // Cycle length = r.
  ProductionGraph pg(&g);
  for (int s = 0; s < pg.num_cycles(); ++s) {
    EXPECT_EQ(pg.cycle(s).length(), 2);
  }
}

TEST(Synthetic, SweepIsSafeAndStrictlyLinear) {
  for (int w : {3, 8}) {
    for (int d : {1, 4}) {
      for (int h : {1, 3}) {
        for (int r : {1, 3}) {
          SyntheticOptions options;
          options.workflow_size = w;
          options.module_degree = d;
          options.nesting_depth = h;
          options.recursion_length = r;
          options.seed = 11;
          Workload workload = MakeSynthetic(options);
          EXPECT_TRUE(FvlScheme::Create(&workload.spec).has_value())
              << workload.name;
        }
      }
    }
  }
}

TEST(ViewGenerator, ProducesRequestedSize) {
  Workload workload = MakeBioAid(2012);
  for (int size : {2, 8, 16}) {
    ViewGeneratorOptions options;
    options.num_expandable = size;
    options.seed = size;
    CompiledView view = GenerateSafeView(workload, options);
    int expandable = 0;
    for (ModuleId m = 0; m < workload.spec.grammar.num_modules(); ++m) {
      expandable += view.IsExpandable(m) ? 1 : 0;
    }
    // Whole cycles enter together, so the count may overshoot by up to one
    // cycle (length <= 2 here).
    EXPECT_GE(expandable, std::min(size, 16));
    EXPECT_LE(expandable, size + 1);
  }
}

TEST(ViewGenerator, KindsBehaveAsAdvertised) {
  Workload workload = MakeBioAid(2012);
  Result<DependencyAssignment> safety =
      CheckSafety(workload.spec.grammar, workload.spec.deps);
  ASSERT_TRUE(safety.ok());
  const DependencyAssignment& truth = *safety;

  ViewGeneratorOptions options;
  options.num_expandable = 8;
  options.seed = 5;

  options.deps = PerceivedDeps::kWhiteBox;
  EXPECT_TRUE(GenerateSafeView(workload, options).IsWhiteBox(truth));

  options.deps = PerceivedDeps::kBlackBox;
  CompiledView black = GenerateSafeView(workload, options);
  EXPECT_TRUE(black.IsBlackBox());

  options.deps = PerceivedDeps::kGreyBox;
  options.add_probability = 0.5;
  CompiledView grey = GenerateSafeView(workload, options);
  // Grey-box adds dependencies somewhere (overwhelmingly likely at p=0.5).
  EXPECT_FALSE(grey.IsWhiteBox(truth));
  // ...but never removes any: λ'^* is a superset of λ* per module.
  for (ModuleId m = 0; m < workload.spec.grammar.num_modules(); ++m) {
    if (!grey.view().expandable[m] && grey.view().perceived.IsDefined(m) &&
        truth.IsDefined(m)) {
      EXPECT_TRUE(truth.Get(m).IsSubsetOf(grey.view().perceived.Get(m)));
    }
  }
}

TEST(ViewGenerator, DeterministicPerSeed) {
  Workload workload = MakeBioAid(2012);
  ViewGeneratorOptions options;
  options.num_expandable = 8;
  options.seed = 77;
  CompiledView a = GenerateSafeView(workload, options);
  CompiledView b = GenerateSafeView(workload, options);
  EXPECT_EQ(a.view().expandable, b.view().expandable);
  for (ModuleId m = 0; m < workload.spec.grammar.num_modules(); ++m) {
    ASSERT_EQ(a.view().perceived.IsDefined(m), b.view().perceived.IsDefined(m));
    if (a.view().perceived.IsDefined(m)) {
      ASSERT_EQ(a.view().perceived.Get(m), b.view().perceived.Get(m));
    }
  }
}

TEST(QueryGenerator, BoundsAndDeterminism) {
  PaperExample ex = MakePaperExample();
  FvlScheme scheme = FvlScheme::Create(&ex.spec).value();
  RunGeneratorOptions run_options;
  run_options.target_items = 200;
  FvlScheme::LabeledRun labeled = scheme.GenerateLabeledRun(run_options);
  auto queries = GenerateQueries(labeled.run, 500, 13);
  EXPECT_EQ(queries.size(), 500u);
  for (const auto& [d1, d2] : queries) {
    EXPECT_GE(d1, 0);
    EXPECT_LT(d1, labeled.run.num_items());
    EXPECT_GE(d2, 0);
    EXPECT_LT(d2, labeled.run.num_items());
  }
  EXPECT_EQ(GenerateQueries(labeled.run, 500, 13), queries);

  auto view = *CompiledView::Compile(ex.spec.grammar, ex.grey_view);
  ViewLabel label = scheme.LabelView(view, ViewLabelMode::kDefault);
  auto visible = GenerateVisibleQueries(labeled.run, labeled.labeler, label,
                                        300, 13);
  EXPECT_EQ(visible.size(), 300u);
}

}  // namespace
}  // namespace fvl
