#include <gtest/gtest.h>

#include "fvl/core/data_label.h"
#include "fvl/util/random.h"
#include "fvl/workload/paper_example.h"
#include "test_util.h"

namespace fvl {
namespace {

class DataLabelTest : public ::testing::Test {
 protected:
  DataLabelTest()
      : ex_(MakePaperExample()), pg_(&ex_.spec.grammar), codec_(pg_) {}

  PaperExample ex_;
  ProductionGraph pg_;
  LabelCodec codec_;
};

TEST_F(DataLabelTest, EdgeLabelToString1Based) {
  EXPECT_EQ(EdgeLabel::Prod(0, 4).ToString(), "(1,5)");
  EXPECT_EQ(EdgeLabel::Rec(0, 0, 5).ToString(), "(1,1,5)");
}

TEST_F(DataLabelTest, CodecWidthsFromGrammar) {
  EXPECT_EQ(codec_.production_bits, 3);  // 8 productions
  EXPECT_EQ(codec_.position_bits, 3);    // up to 6 members
  EXPECT_EQ(codec_.cycle_bits, 1);       // 2 cycles
  EXPECT_EQ(codec_.start_bits, 1);       // max cycle length 2
  EXPECT_EQ(codec_.port_bits, 2);        // up to 3 ports
}

TEST_F(DataLabelTest, EdgeRoundTrip) {
  for (const EdgeLabel& edge :
       {EdgeLabel::Prod(7, 5), EdgeLabel::Prod(0, 0), EdgeLabel::Rec(1, 0, 1),
        EdgeLabel::Rec(0, 1, 12345)}) {
    BitWriter writer;
    codec_.EncodeEdge(edge, &writer);
    BitReader reader(writer);
    EXPECT_EQ(codec_.DecodeEdge(&reader), edge);
    EXPECT_TRUE(reader.AtEnd());
  }
}

TEST_F(DataLabelTest, LabelRoundTripWithPrefixFactoring) {
  DataLabel label;
  std::vector<EdgeLabel> common = {EdgeLabel::Prod(0, 2),
                                   EdgeLabel::Rec(0, 0, 5),
                                   EdgeLabel::Prod(2, 1)};
  label.producer = PortLabel{common, 0};
  label.producer->path.push_back(EdgeLabel::Prod(4, 0));
  label.consumer = PortLabel{common, 1};
  label.consumer->path.push_back(EdgeLabel::Prod(4, 1));
  label.consumer->path.push_back(EdgeLabel::Rec(1, 0, 1));

  BitWriter writer = codec_.Encode(label);
  EXPECT_EQ(writer.size_bits(), codec_.EncodedBits(label));
  BitReader reader(writer);
  EXPECT_EQ(codec_.Decode(&reader), label);
  EXPECT_TRUE(reader.AtEnd());

  // Factoring must beat encoding both sides in full.
  DataLabel producer_only{label.producer, std::nullopt};
  DataLabel consumer_only{std::nullopt, label.consumer};
  EXPECT_LT(codec_.EncodedBits(label), codec_.EncodedBits(producer_only) +
                                           codec_.EncodedBits(consumer_only));
}

TEST_F(DataLabelTest, BoundaryLabelsRoundTrip) {
  DataLabel initial;
  initial.consumer = PortLabel{{}, 1};
  DataLabel final_output;
  final_output.producer = PortLabel{{EdgeLabel::Rec(0, 0, 1)}, 2};
  for (const DataLabel& label : {initial, final_output}) {
    BitWriter writer = codec_.Encode(label);
    BitReader reader(writer);
    EXPECT_EQ(codec_.Decode(&reader), label);
    EXPECT_EQ(writer.size_bits(), codec_.EncodedBits(label));
  }
}

TEST_F(DataLabelTest, RandomLabelRoundTripSweep) {
  Rng rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    auto random_path = [&](std::vector<EdgeLabel> base) {
      int extra = rng.NextInt(0, 4);
      for (int i = 0; i < extra; ++i) {
        if (rng.NextBool(0.5)) {
          base.push_back(EdgeLabel::Prod(rng.NextInt(0, 7), rng.NextInt(0, 5)));
        } else {
          base.push_back(EdgeLabel::Rec(rng.NextInt(0, 1), rng.NextInt(0, 1),
                                        rng.NextInt(1, 5000)));
        }
      }
      return base;
    };
    std::vector<EdgeLabel> common = random_path({});
    DataLabel label;
    if (rng.NextBool(0.9)) {
      label.producer = PortLabel{random_path(common), rng.NextInt(0, 2)};
    }
    if (rng.NextBool(0.9)) {
      label.consumer = PortLabel{random_path(common), rng.NextInt(0, 2)};
    }
    BitWriter writer = codec_.Encode(label);
    BitReader reader(writer);
    ASSERT_EQ(codec_.Decode(&reader), label) << "trial " << trial;
    ASSERT_TRUE(reader.AtEnd());
    ASSERT_EQ(writer.size_bits(), codec_.EncodedBits(label));
  }
}

TEST_F(DataLabelTest, IterationCostIsLogarithmic) {
  // The only unbounded label component is the recursion iteration index,
  // encoded with Elias-gamma: 2*floor(log2 i)+1 bits.
  auto bits_for_iteration = [&](int iteration) {
    DataLabel label;
    label.consumer = PortLabel{{EdgeLabel::Rec(0, 0, iteration)}, 0};
    return codec_.EncodedBits(label);
  };
  int64_t at_16 = bits_for_iteration(16);
  int64_t at_256 = bits_for_iteration(256);
  int64_t at_4096 = bits_for_iteration(4096);
  EXPECT_EQ(at_256 - at_16, 8);    // 4 doublings * 2 bits
  EXPECT_EQ(at_4096 - at_256, 8);  // another 4 doublings
}

TEST_F(DataLabelTest, DataLabelToString) {
  DataLabel label;
  label.consumer = PortLabel{{EdgeLabel::Prod(0, 2)}, 1};
  EXPECT_EQ(label.ToString(), "(-, {(1,3),2})");
}

}  // namespace
}  // namespace fvl
