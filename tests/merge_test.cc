// Multi-run index merging (ProvenanceIndex::Merge + QueryAcrossRuns):
// a differential harness that checks, across randomized specifications,
// runs, views, and label modes, that answers from a merged index are
// bit-identical to per-run DependsMany answers and to the ground-truth
// oracle (whose reachability is built from the view's full assignment —
// λ* for the default view), plus the merge-specific error and edge cases.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fvl/core/index.h"
#include "fvl/core/label_store.h"
#include "fvl/run/provenance_oracle.h"
#include "fvl/service/provenance_service.h"
#include "fvl/util/random.h"
#include "fvl/workload/bioaid.h"
#include "fvl/workload/paper_example.h"
#include "fvl/workload/synthetic.h"
#include "fvl/workload/view_generator.h"

namespace fvl {
namespace {

constexpr ViewLabelMode kAllModes[] = {ViewLabelMode::kSpaceEfficient,
                                       ViewLabelMode::kDefault,
                                       ViewLabelMode::kQueryEfficient};

// A batch of labeled runs of one service, frozen individually and merged.
struct MergedRuns {
  std::vector<std::shared_ptr<ProvenanceSession>> sessions;
  std::vector<ProvenanceIndex> snapshots;
  MergedProvenanceIndex merged;
};

MergedRuns MakeRuns(const std::shared_ptr<ProvenanceService>& service,
                    int num_runs, int target_items, uint64_t seed) {
  MergedRuns out;
  for (int r = 0; r < num_runs; ++r) {
    RunGeneratorOptions options;
    options.target_items = target_items + 17 * r;
    options.seed = seed + r;
    out.sessions.push_back(service->GenerateLabeledRun(options));
    out.snapshots.push_back(out.sessions.back()->Snapshot());
  }
  out.merged = ProvenanceIndex::Merge(out.snapshots).value();
  return out;
}

// The differential core: per run, random same-run query pairs must get
// the same answers through QueryAcrossRuns on the merged index, through
// DependsMany on that run's own snapshot, and (whenever both items are
// visible) from the ProvenanceOracle over the run.
void CheckDifferential(ProvenanceService& service, const MergedRuns& runs,
                       ViewHandle view, ViewLabelMode mode,
                       int queries_per_run, uint64_t seed) {
  const CompiledView& compiled = *service.CompiledRegularView(view).value();
  for (size_t r = 0; r < runs.snapshots.size(); ++r) {
    const ProvenanceIndex& single = runs.snapshots[r];
    ASSERT_GT(single.num_items(), 0);
    Rng rng(seed + r);
    std::vector<std::pair<int, int>> local;
    std::vector<std::pair<RunItem, RunItem>> addressed;
    for (int q = 0; q < queries_per_run; ++q) {
      int d1 = rng.NextInt(0, single.num_items() - 1);
      int d2 = rng.NextInt(0, single.num_items() - 1);
      local.push_back({d1, d2});
      addressed.push_back({{static_cast<int>(r), d1},
                           {static_cast<int>(r), d2}});
    }

    Result<std::vector<bool>> merged_answers =
        service.QueryAcrossRuns(view, runs.merged, addressed, mode);
    ASSERT_TRUE(merged_answers.ok()) << merged_answers.status().ToString();
    Result<std::vector<bool>> single_answers =
        service.DependsMany(view, single, local, mode);
    ASSERT_TRUE(single_answers.ok()) << single_answers.status().ToString();
    ASSERT_EQ(*merged_answers, *single_answers)
        << "run " << r << " view " << view.id() << " mode "
        << static_cast<int>(mode);

    ProvenanceOracle oracle(runs.sessions[r]->run(), compiled);
    for (size_t q = 0; q < local.size(); ++q) {
      auto [d1, d2] = local[q];
      if (!oracle.ItemVisible(d1) || !oracle.ItemVisible(d2)) continue;
      ASSERT_EQ((*merged_answers)[q], oracle.Depends(d1, d2))
          << "run " << r << " d1=" << d1 << " d2=" << d2 << " view "
          << view.id() << " mode " << static_cast<int>(mode);
    }
  }
}

// ----- Differential harness. -----

TEST(MergeDifferential, PaperViewsAllModes) {
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();
  ViewHandle grey = service->RegisterView(ex.grey_view).value();

  MergedRuns runs = MakeRuns(service, 4, 120, 31);
  ASSERT_EQ(runs.merged.num_runs(), 4);
  for (ViewHandle view : {service->default_view(), grey}) {
    for (ViewLabelMode mode : kAllModes) {
      CheckDifferential(*service, runs, view, mode, 120, 7);
    }
  }
}

TEST(MergeDifferential, RandomizedSyntheticSpecs) {
  // 12 randomized specifications × 4 runs each (plus the paper fixture's 4
  // above) ≈ 50 specification/run combinations through the harness; label
  // modes rotate per specification so all three stay covered.
  Rng meta(2026);
  int combos = 0;
  for (int s = 0; s < 12; ++s) {
    SyntheticOptions options;
    options.workflow_size = meta.NextInt(4, 8);
    options.module_degree = meta.NextInt(2, 3);
    options.nesting_depth = meta.NextInt(1, 2);
    options.recursion_length = meta.NextInt(2, 3);
    options.seed = 100 + s;
    Workload workload = MakeSynthetic(options);
    auto service = ProvenanceService::Create(workload.spec).value();

    ViewGeneratorOptions view_options;
    view_options.num_expandable = meta.NextInt(1, 3);
    view_options.deps =
        (s % 2 != 0) ? PerceivedDeps::kGreyBox : PerceivedDeps::kWhiteBox;
    view_options.seed = 500 + s;
    CompiledView generated = GenerateSafeView(workload, view_options);
    ViewHandle view = service->RegisterView(generated.view()).value();

    MergedRuns runs = MakeRuns(service, 4, 40 + 10 * (s % 4), 1000 + s);
    combos += static_cast<int>(runs.snapshots.size());
    ViewLabelMode mode = kAllModes[s % 3];
    CheckDifferential(*service, runs, service->default_view(), mode, 80,
                      40 + s);
    CheckDifferential(*service, runs, view, mode, 80, 90 + s);
  }
  EXPECT_GE(combos + 4, 50);  // + the paper fixture's runs
}

TEST(MergeDifferential, MergedLabelsAreBitIdenticalToPerRunSnapshots) {
  auto service = ProvenanceService::Create(MakePaperExample().spec).value();
  MergedRuns runs = MakeRuns(service, 3, 100, 5);
  ASSERT_EQ(runs.merged.total_items(),
            runs.snapshots[0].num_items() + runs.snapshots[1].num_items() +
                runs.snapshots[2].num_items());
  for (size_t r = 0; r < runs.snapshots.size(); ++r) {
    ASSERT_EQ(runs.merged.num_items(static_cast<int>(r)),
              runs.snapshots[r].num_items());
    for (int item = 0; item < runs.snapshots[r].num_items(); ++item) {
      ASSERT_EQ(runs.merged.Label(static_cast<int>(r), item),
                runs.snapshots[r].Label(item))
          << "run " << r << " item " << item;
      ASSERT_EQ(runs.merged.LabelBits(static_cast<int>(r), item),
                runs.snapshots[r].LabelBits(item));
    }
  }
}

TEST(MergeDifferential, CrossRunPairsAreIndependent) {
  // Pairs within one run answer exactly as the decoding predicate over the
  // two (relocated) labels; pairs spanning two runs are false by definition
  // — separate executions share no data flow, and the predicate's
  // path-prefix comparisons are only meaningful inside one parse tree.
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();
  ViewHandle grey = service->RegisterView(ex.grey_view).value();
  MergedRuns runs = MakeRuns(service, 3, 90, 77);

  Rng rng(123);
  std::vector<std::pair<RunItem, RunItem>> queries;
  for (int q = 0; q < 300; ++q) {
    RunItem a{rng.NextInt(0, runs.merged.num_runs() - 1), 0};
    RunItem b{rng.NextInt(0, runs.merged.num_runs() - 1), 0};
    a.item = rng.NextInt(0, runs.merged.num_items(a.run) - 1);
    b.item = rng.NextInt(0, runs.merged.num_items(b.run) - 1);
    queries.push_back({a, b});
  }
  std::vector<bool> answers =
      service->QueryAcrossRuns(grey, runs.merged, queries).value();
  int cross = 0, positives = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    auto [a, b] = queries[q];
    if (a.run != b.run) {
      EXPECT_FALSE(answers[q]) << "cross-run query " << q;
      ++cross;
    } else {
      EXPECT_EQ(answers[q],
                service
                    ->Depends(grey, runs.merged.Label(a.run, a.item),
                              runs.merged.Label(b.run, b.item))
                    .value())
          << "query " << q;
      positives += answers[q];
    }
  }
  EXPECT_GT(cross, 50);      // the sample genuinely exercised both kinds
  EXPECT_GT(positives, 0);   // and some same-run pairs do depend

  // The flat-id overload agrees with the (run, item) addressing.
  std::vector<std::pair<int, int>> flat;
  for (const auto& [a, b] : queries) {
    flat.push_back({runs.merged.GlobalId(a.run, a.item),
                    runs.merged.GlobalId(b.run, b.item)});
  }
  EXPECT_EQ(service->DependsMany(grey, runs.merged, flat).value(), answers);
}

TEST(MergeDifferential, VisibilitySweepMatchesPerRunSweeps) {
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();
  ViewHandle grey = service->RegisterView(ex.grey_view).value();
  MergedRuns runs = MakeRuns(service, 3, 80, 11);

  std::vector<bool> merged_sweep =
      service->VisibilitySweep(grey, runs.merged).value();
  std::vector<bool> concatenated;
  for (const ProvenanceIndex& single : runs.snapshots) {
    std::vector<bool> sweep = service->VisibilitySweep(grey, single).value();
    concatenated.insert(concatenated.end(), sweep.begin(), sweep.end());
  }
  EXPECT_EQ(merged_sweep, concatenated);
}

// ----- Serialization. -----

TEST(MergeSerialization, SelfDescribingRoundTrip) {
  auto service = ProvenanceService::Create(MakePaperExample().spec).value();
  MergedRuns runs = MakeRuns(service, 3, 100, 19);

  std::string blob = runs.merged.Serialize();
  Result<MergedProvenanceIndex> restored =
      MergedProvenanceIndex::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->num_runs(), runs.merged.num_runs());
  ASSERT_EQ(restored->total_items(), runs.merged.total_items());
  for (int r = 0; r < restored->num_runs(); ++r) {
    ASSERT_EQ(restored->num_items(r), runs.merged.num_items(r));
    for (int item = 0; item < restored->num_items(r); ++item) {
      ASSERT_EQ(restored->Label(r, item), runs.merged.Label(r, item));
    }
  }
  EXPECT_EQ(restored->Serialize(), blob);

  // Queries run identically against the restored artifact.
  Rng rng(3);
  std::vector<std::pair<RunItem, RunItem>> queries;
  for (int q = 0; q < 100; ++q) {
    RunItem a{rng.NextInt(0, 2), 0}, b{rng.NextInt(0, 2), 0};
    a.item = rng.NextInt(0, restored->num_items(a.run) - 1);
    b.item = rng.NextInt(0, restored->num_items(b.run) - 1);
    queries.push_back({a, b});
  }
  ViewHandle view = service->default_view();
  EXPECT_EQ(service->QueryAcrossRuns(view, *restored, queries).value(),
            service->QueryAcrossRuns(view, runs.merged, queries).value());
}

// ----- Errors and edge cases. -----

TEST(MergeErrors, MismatchedSpecificationsRejected) {
  auto paper = ProvenanceService::Create(MakePaperExample().spec).value();
  auto bioaid = ProvenanceService::Create(MakeBioAid(2012).spec).value();
  std::vector<ProvenanceIndex> mixed;
  mixed.push_back(paper
                      ->GenerateLabeledRun(
                          RunGeneratorOptions{.target_items = 50, .seed = 1})
                      ->Snapshot());
  mixed.push_back(bioaid
                      ->GenerateLabeledRun(
                          RunGeneratorOptions{.target_items = 50, .seed = 2})
                      ->Snapshot());
  Result<MergedProvenanceIndex> merged = ProvenanceIndex::Merge(mixed);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.code(), ErrorCode::kInvalidArgument);

  // A merged index of another specification is turned away by the service.
  std::vector<ProvenanceIndex> foreign(1, std::move(mixed[1]));
  MergedProvenanceIndex foreign_merged =
      ProvenanceIndex::Merge(foreign).value();
  std::vector<std::pair<RunItem, RunItem>> queries = {{{0, 0}, {0, 1}}};
  EXPECT_EQ(paper
                ->QueryAcrossRuns(paper->default_view(), foreign_merged,
                                  queries)
                .code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(
      paper->VisibilitySweep(paper->default_view(), foreign_merged).code(),
      ErrorCode::kInvalidArgument);
}

TEST(MergeErrors, ForeignViewHandleReturnsNotFound) {
  // Two services over the *same* specification: indexes are codec-compatible
  // across them, but a handle issued by one must not resolve on the other.
  auto a = ProvenanceService::Create(MakePaperExample().spec).value();
  auto b = ProvenanceService::Create(MakePaperExample().spec).value();
  MergedRuns runs = MakeRuns(a, 2, 60, 9);

  ViewHandle foreign = b->default_view();
  std::vector<std::pair<RunItem, RunItem>> queries = {{{0, 0}, {1, 0}}};
  EXPECT_EQ(a->QueryAcrossRuns(foreign, runs.merged, queries).code(),
            ErrorCode::kNotFound);
  std::vector<std::pair<int, int>> flat = {{0, 1}};
  EXPECT_EQ(a->DependsMany(foreign, runs.merged, flat).code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(a->DependsMany(foreign, runs.snapshots[0], flat).code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(a->VisibilitySweep(foreign, runs.merged).code(),
            ErrorCode::kNotFound);
}

TEST(MergeErrors, OutOfRangeAddressesRejected) {
  auto service = ProvenanceService::Create(MakePaperExample().spec).value();
  MergedRuns runs = MakeRuns(service, 2, 60, 13);
  ViewHandle view = service->default_view();

  for (auto bad : std::vector<std::pair<RunItem, RunItem>>{
           {{-1, 0}, {0, 0}},
           {{2, 0}, {0, 0}},
           {{0, -1}, {0, 0}},
           {{0, 0}, {1, runs.merged.num_items(1)}}}) {
    std::vector<std::pair<RunItem, RunItem>> queries = {bad};
    EXPECT_EQ(service->QueryAcrossRuns(view, runs.merged, queries).code(),
              ErrorCode::kInvalidArgument);
  }
  std::vector<std::pair<int, int>> bad_flat = {
      {0, runs.merged.total_items()}};
  EXPECT_EQ(service->DependsMany(view, runs.merged, bad_flat).code(),
            ErrorCode::kInvalidArgument);
}

TEST(MergeEdgeCases, EmptyInputsGiveEmptyResultsNotErrors) {
  auto service = ProvenanceService::Create(MakePaperExample().spec).value();
  ViewHandle view = service->default_view();

  // Merging nothing yields an empty artifact, not an error.
  std::vector<ProvenanceIndex> none;
  Result<MergedProvenanceIndex> empty = ProvenanceIndex::Merge(none);
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_EQ(empty->num_runs(), 0);
  EXPECT_EQ(empty->total_items(), 0);

  // Empty query spans return empty answers on both empty and non-empty
  // merged indexes.
  std::vector<std::pair<RunItem, RunItem>> no_queries;
  std::vector<std::pair<int, int>> no_flat;
  EXPECT_TRUE(
      service->QueryAcrossRuns(view, *empty, no_queries).value().empty());
  EXPECT_TRUE(service->DependsMany(view, *empty, no_flat).value().empty());
  EXPECT_TRUE(service->VisibilitySweep(view, *empty).value().empty());

  MergedRuns runs = MakeRuns(service, 2, 60, 21);
  EXPECT_TRUE(
      service->QueryAcrossRuns(view, runs.merged, no_queries).value().empty());
  EXPECT_TRUE(
      service->DependsMany(view, runs.merged, no_flat).value().empty());

  // The empty artifact round-trips through serialization.
  Result<MergedProvenanceIndex> restored =
      MergedProvenanceIndex::Deserialize(empty->Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_runs(), 0);
}

// ----- Incremental snapshots (SnapshotDelta / FromDeltas). -----

// Applies up to `steps` random derivation steps to a live session (random
// frontier instance, random applicable production — the policy of
// examples/streaming_provenance.cc).
void ApplyRandomSteps(ProvenanceSession& session, Rng& rng, int steps) {
  const Grammar& grammar = session.service()->grammar();
  for (int s = 0; s < steps && !session.complete(); ++s) {
    const std::vector<int>& frontier = session.run().Frontier();
    int instance = frontier[rng.NextBounded(frontier.size())];
    ModuleId type = session.run().instance(instance).type;
    const auto& productions = grammar.ProductionsOf(type);
    ProductionId production = productions[rng.NextBounded(productions.size())];
    ASSERT_TRUE(session.Apply(instance, production).ok());
  }
}

TEST(SnapshotDelta, RandomizedFreezePointsReassembleBitIdentically) {
  // Randomized sessions frozen at arbitrary points: the FromDeltas
  // reassembly must equal a full Snapshot() *bit for bit* (serialized
  // golden comparison), and its answers must match the full snapshot's and
  // the ground-truth oracle's across all three label modes.
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();
  ViewHandle grey = service->RegisterView(ex.grey_view).value();

  Rng rng(909);
  for (int trial = 0; trial < 6; ++trial) {
    auto session = service->BeginRun();
    std::vector<ProvenanceIndex> deltas;
    // A fresh session already has the start module's boundary items; the
    // first delta may therefore be non-empty before any Apply.
    if (trial % 2 == 0) deltas.push_back(session->SnapshotDelta());
    while (!session->complete()) {
      ApplyRandomSteps(*session, rng, 1 + static_cast<int>(rng.NextBounded(9)));
      if (rng.NextBounded(2) == 0) {
        int watermark = session->frozen_items();
        deltas.push_back(session->SnapshotDelta());
        EXPECT_EQ(session->frozen_items(),
                  watermark + deltas.back().num_items());
      }
    }
    deltas.push_back(session->SnapshotDelta());  // tail of the run
    ASSERT_GE(deltas.size(), 2u);

    ProvenanceIndex full = session->Snapshot();
    Result<ProvenanceIndex> reassembled = ProvenanceIndex::FromDeltas(deltas);
    ASSERT_TRUE(reassembled.ok()) << reassembled.status().ToString();
    ASSERT_EQ(reassembled->num_items(), full.num_items());
    EXPECT_EQ(reassembled->Serialize(), full.Serialize()) << "trial " << trial;

    // Differential: reassembled ≡ full ≡ oracle, every mode, both views.
    for (ViewHandle view : {service->default_view(), grey}) {
      const CompiledView& compiled =
          *service->CompiledRegularView(view).value();
      ProvenanceOracle oracle(session->run(), compiled);
      std::vector<std::pair<int, int>> queries;
      for (int q = 0; q < 120; ++q) {
        queries.push_back({rng.NextInt(0, full.num_items() - 1),
                           rng.NextInt(0, full.num_items() - 1)});
      }
      for (ViewLabelMode mode : kAllModes) {
        std::vector<bool> from_deltas =
            service->DependsMany(view, *reassembled, queries, mode).value();
        std::vector<bool> from_full =
            service->DependsMany(view, full, queries, mode).value();
        ASSERT_EQ(from_deltas, from_full)
            << "trial " << trial << " mode " << static_cast<int>(mode);
        for (size_t q = 0; q < queries.size(); ++q) {
          auto [d1, d2] = queries[q];
          if (!oracle.ItemVisible(d1) || !oracle.ItemVisible(d2)) continue;
          ASSERT_EQ(from_deltas[q], oracle.Depends(d1, d2))
              << "trial " << trial << " d1=" << d1 << " d2=" << d2;
        }
      }
    }
  }
}

TEST(SnapshotDelta, DeltaErrorsAndEdgeCases) {
  auto paper = ProvenanceService::Create(MakePaperExample().spec).value();
  auto bioaid = ProvenanceService::Create(MakeBioAid(2012).spec).value();

  // Empty span: no codec to infer.
  std::vector<ProvenanceIndex> none;
  EXPECT_EQ(ProvenanceIndex::FromDeltas(none).code(),
            ErrorCode::kInvalidArgument);

  // Mixed specifications are rejected, same taxonomy as Merge.
  std::vector<ProvenanceIndex> mixed;
  mixed.push_back(paper
                      ->GenerateLabeledRun(
                          RunGeneratorOptions{.target_items = 40, .seed = 1})
                      ->Snapshot());
  mixed.push_back(bioaid
                      ->GenerateLabeledRun(
                          RunGeneratorOptions{.target_items = 40, .seed = 2})
                      ->Snapshot());
  EXPECT_EQ(ProvenanceIndex::FromDeltas(mixed).code(),
            ErrorCode::kInvalidArgument);

  // SnapshotDelta with nothing new yields an empty delta; reassembly
  // tolerates it (the empty arena range appends as a no-op).
  auto session = paper->GenerateLabeledRun(
      RunGeneratorOptions{.target_items = 50, .seed = 3});
  std::vector<ProvenanceIndex> deltas;
  deltas.push_back(session->SnapshotDelta());
  deltas.push_back(session->SnapshotDelta());  // empty: watermark at end
  EXPECT_EQ(deltas[1].num_items(), 0);
  Result<ProvenanceIndex> reassembled = ProvenanceIndex::FromDeltas(deltas);
  ASSERT_TRUE(reassembled.ok()) << reassembled.status().ToString();
  EXPECT_EQ(reassembled->Serialize(), session->Snapshot().Serialize());

  // A delta round-trips through serialization like any single-run index.
  Result<ProvenanceIndex> restored =
      ProvenanceIndex::Deserialize(deltas[0].Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_items(), deltas[0].num_items());
}

TEST(SnapshotDelta, EmptyDeltaMidSequenceReassemblesBitIdentically) {
  // Regression: an empty delta in the MIDDLE of a delta sequence (a
  // freeze immediately followed by another freeze with zero labels
  // appended in between, then more derivation). The empty delta's arena
  // range is zero-width but its codec and frame metadata must still
  // splice cleanly between its non-empty neighbours — both when the
  // deltas are reassembled in memory and after every delta round-trips
  // through Serialize/Deserialize.
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();

  Rng rng(4242);
  auto session = service->BeginRun();
  std::vector<ProvenanceIndex> deltas;
  deltas.push_back(session->SnapshotDelta());  // boundary items of the start
  deltas.push_back(session->SnapshotDelta());  // immediately again: empty
  EXPECT_EQ(deltas.back().num_items(), 0);
  while (!session->complete()) {
    ApplyRandomSteps(*session, rng, 1 + static_cast<int>(rng.NextBounded(6)));
    deltas.push_back(session->SnapshotDelta());
    deltas.push_back(session->SnapshotDelta());  // empty twin after each freeze
    EXPECT_EQ(deltas.back().num_items(), 0);
  }
  ASSERT_GE(deltas.size(), 4u);

  const std::string golden = session->Snapshot().Serialize();
  Result<ProvenanceIndex> in_memory = ProvenanceIndex::FromDeltas(deltas);
  ASSERT_TRUE(in_memory.ok()) << in_memory.status().ToString();
  EXPECT_EQ(in_memory->Serialize(), golden);

  // The same sequence with every delta (including the empty ones) pushed
  // through the blob format first.
  std::vector<ProvenanceIndex> round_tripped;
  for (const ProvenanceIndex& delta : deltas) {
    Result<ProvenanceIndex> restored =
        ProvenanceIndex::Deserialize(delta.Serialize());
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ(restored->num_items(), delta.num_items());
    round_tripped.push_back(std::move(restored).value());
  }
  Result<ProvenanceIndex> from_blobs = ProvenanceIndex::FromDeltas(round_tripped);
  ASSERT_TRUE(from_blobs.ok()) << from_blobs.status().ToString();
  EXPECT_EQ(from_blobs->Serialize(), golden);
}

// ----- Streamed k-way merge (MergeStream / MergeRunsStreamed). -----

TEST(MergeStreamTest, BitIdenticalToMaterializedMerge) {
  auto service = ProvenanceService::Create(MakePaperExample().spec).value();
  MergedRuns runs = MakeRuns(service, 4, 110, 23);

  std::vector<std::string> blobs;
  for (const ProvenanceIndex& snapshot : runs.snapshots) {
    blobs.push_back(snapshot.Serialize());
  }

  MergeStream stream;
  for (const std::string& blob : blobs) {
    ASSERT_TRUE(stream.Append(blob).ok());
  }
  EXPECT_EQ(stream.num_runs(), 4);
  MergedProvenanceIndex streamed = std::move(stream).Finish().value();

  // The streaming path and the materialized path are one artifact: byte
  // for byte equal blobs, equal addressing, equal answers.
  EXPECT_EQ(streamed.Serialize(), runs.merged.Serialize());

  std::vector<std::string_view> views(blobs.begin(), blobs.end());
  MergedProvenanceIndex via_service =
      service->MergeRunsStreamed(views).value();
  EXPECT_EQ(via_service.Serialize(), runs.merged.Serialize());

  Rng rng(77);
  std::vector<std::pair<RunItem, RunItem>> queries;
  for (int q = 0; q < 200; ++q) {
    RunItem a{rng.NextInt(0, 3), 0}, b{rng.NextInt(0, 3), 0};
    a.item = rng.NextInt(0, streamed.num_items(a.run) - 1);
    b.item = rng.NextInt(0, streamed.num_items(b.run) - 1);
    queries.push_back({a, b});
  }
  ViewHandle view = service->default_view();
  EXPECT_EQ(service->QueryAcrossRuns(view, streamed, queries).value(),
            service->QueryAcrossRuns(view, runs.merged, queries).value());
}

TEST(MergeStreamTest, HoldsAtMostOneInputStoreAtATime) {
  // The memory-boundedness contract, asserted via the store-count probe:
  // the stream's peak live-store count is a small constant — the output
  // plus the one input being appended (plus bounded move transients) —
  // *independent of the number of runs*, while the materialized path holds
  // every deserialized input simultaneously.
  auto service = ProvenanceService::Create(MakePaperExample().spec).value();

  auto make_blobs = [&](int num_runs) {
    std::vector<std::string> blobs;
    for (int r = 0; r < num_runs; ++r) {
      blobs.push_back(
          service
              ->GenerateLabeledRun(RunGeneratorOptions{
                  .target_items = 80, .seed = 400 + static_cast<uint64_t>(r)})
              ->Snapshot()
              .Serialize());
    }
    return blobs;
  };

  auto streamed_peak = [&](const std::vector<std::string>& blobs) {
    const int base = internal::StoreCountProbe::live();
    internal::StoreCountProbe::ResetPeak();
    MergeStream stream;
    for (const std::string& blob : blobs) {
      EXPECT_TRUE(stream.Append(blob).ok());
      // Between appends, only the stream's own output store is alive.
      EXPECT_EQ(internal::StoreCountProbe::live(), base + 1);
    }
    MergedProvenanceIndex merged = std::move(stream).Finish().value();
    EXPECT_GT(merged.total_items(), 0);
    return internal::StoreCountProbe::peak() - base;
  };

  std::vector<std::string> blobs4 = make_blobs(4);
  std::vector<std::string> blobs16 = make_blobs(16);
  int peak4 = streamed_peak(blobs4);
  int peak16 = streamed_peak(blobs16);
  // One output + one deserialized input + the parse/move transients inside
  // Deserialize — and no growth whatsoever with the number of runs.
  EXPECT_LE(peak16, 8);
  EXPECT_EQ(peak16, peak4);

  // The materialized baseline necessarily holds all inputs at once.
  {
    const int base = internal::StoreCountProbe::live();
    internal::StoreCountProbe::ResetPeak();
    std::vector<ProvenanceIndex> materialized;
    for (const std::string& blob : blobs16) {
      materialized.push_back(ProvenanceIndex::Deserialize(blob).value());
    }
    MergedProvenanceIndex merged =
        ProvenanceIndex::Merge(materialized).value();
    EXPECT_GT(merged.total_items(), 0);
    EXPECT_GE(internal::StoreCountProbe::peak() - base, 16);
  }
}

TEST(MergeStreamTest, ErrorTaxonomyNeverAborts) {
  auto paper = ProvenanceService::Create(MakePaperExample().spec).value();
  auto bioaid = ProvenanceService::Create(MakeBioAid(2012).spec).value();
  std::string paper_blob =
      paper
          ->GenerateLabeledRun(RunGeneratorOptions{.target_items = 60,
                                                   .seed = 5})
          ->Snapshot()
          .Serialize();
  std::string bioaid_blob =
      bioaid
          ->GenerateLabeledRun(RunGeneratorOptions{.target_items = 60,
                                                   .seed = 6})
          ->Snapshot()
          .Serialize();

  // Corrupt blob: kMalformedBlob, and the stream survives to accept more.
  MergeStream stream;
  std::string corrupt = paper_blob;
  corrupt[3] = 'X';
  Status bad_magic = stream.Append(corrupt);
  EXPECT_EQ(bad_magic.code(), ErrorCode::kMalformedBlob);
  EXPECT_EQ(stream.num_runs(), 0);
  ASSERT_TRUE(stream.Append(paper_blob).ok());
  EXPECT_EQ(stream.Append(paper_blob.substr(0, paper_blob.size() / 2)).code(),
            ErrorCode::kMalformedBlob);
  // Codec mismatch against the runs already appended: kInvalidArgument.
  EXPECT_EQ(stream.Append(bioaid_blob).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(stream.num_runs(), 1);
  MergedProvenanceIndex merged = std::move(stream).Finish().value();
  EXPECT_EQ(merged.num_runs(), 1);

  // Service entry point: same taxonomy, with the failing blob named; a
  // consistent batch of *foreign* blobs is rejected against the service.
  std::vector<std::string_view> mixed = {paper_blob, bioaid_blob};
  Result<MergedProvenanceIndex> rejected = paper->MergeRunsStreamed(mixed);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(rejected.status().message().find("blob 1"), std::string::npos);

  std::vector<std::string_view> with_corrupt = {paper_blob, corrupt};
  EXPECT_EQ(paper->MergeRunsStreamed(with_corrupt).code(),
            ErrorCode::kMalformedBlob);

  std::vector<std::string_view> foreign = {bioaid_blob, bioaid_blob};
  EXPECT_EQ(paper->MergeRunsStreamed(foreign).code(),
            ErrorCode::kInvalidArgument);

  // Empty span: empty merged index, not an error (as Merge).
  std::vector<std::string_view> none;
  Result<MergedProvenanceIndex> empty = paper->MergeRunsStreamed(none);
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_EQ(empty->num_runs(), 0);

  // A merged (FVLMRG2) blob is not a single-run input: rejected cleanly.
  MergedRuns runs = MakeRuns(paper, 2, 50, 31);
  MergeStream wrong_format;
  EXPECT_EQ(wrong_format.Append(runs.merged.Serialize()).code(),
            ErrorCode::kMalformedBlob);
}

// The FVLMRG2 tail is the same compressed span stream as FVLIDX3, shifted
// by the run table: targeted corruption of its version byte and block-0
// vbyte must reject recoverably, and the legacy FVLMRG1 magic must still
// dispatch into the v1 parser.
TEST(MergeSerialization, V2MergedTailCorruptionRejected) {
  auto service = ProvenanceService::Create(MakePaperExample().spec).value();
  MergedRuns runs = MakeRuns(service, 2, 50, 37);
  std::string blob = runs.merged.Serialize();
  ASSERT_EQ(blob.compare(0, 7, "FVLMRG2"), 0);
  // Header: 8 magic + 3 u64 scalars + one u64 per run, then 5 codec width
  // bytes, the tail-format version byte, u64 span_bits, span words.
  const size_t version_at = 8 + 3 * 8 + 2 * 8 + 5;
  const size_t first_span_byte = version_at + 1 + 8;

  std::string bad_version = blob;
  bad_version[version_at] = 7;
  Result<MergedProvenanceIndex> rejected =
      MergedProvenanceIndex::Deserialize(bad_version);
  EXPECT_EQ(rejected.code(), ErrorCode::kMalformedBlob);
  EXPECT_EQ(rejected.status().message(), "unsupported tail-format version");

  std::string bad_vbyte = blob;
  bad_vbyte[first_span_byte] =
      static_cast<char>(bad_vbyte[first_span_byte] | 0x80);
  EXPECT_EQ(MergedProvenanceIndex::Deserialize(bad_vbyte).code(),
            ErrorCode::kMalformedBlob);

  // Truncation inside the span stream (block headers cut mid-word).
  EXPECT_EQ(MergedProvenanceIndex::Deserialize(
                blob.substr(0, first_span_byte + 3))
                .code(),
            ErrorCode::kMalformedBlob);

  // Legacy FVLMRG1 dispatch survives the bump: a minimal (zero-run) v1
  // blob still deserializes through the version-dispatched parser.
  auto u64 = [](std::string* out, uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
    }
  };
  std::string legacy("FVLMRG1", 8);  // includes the terminating NUL
  u64(&legacy, 0);             // num_runs
  u64(&legacy, 0);             // total_items
  u64(&legacy, 0);             // arena_bits
  legacy.append(5, '\0');      // codec widths
  legacy.push_back('\0');      // offset width = BitWidthFor(1) = 0
  u64(&legacy, 0);             // offset words
  u64(&legacy, 0);             // arena words
  Result<MergedProvenanceIndex> parsed =
      MergedProvenanceIndex::Deserialize(legacy);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_runs(), 0);
  EXPECT_EQ(parsed->total_items(), 0);
}

TEST(MergeEdgeCases, ZeroItemRunsMergeCleanly) {
  // A run frozen before producing anything occupies a (run, ·) slot with
  // zero items; neighbors keep their labels and addressing.
  auto service = ProvenanceService::Create(MakePaperExample().spec).value();
  auto session = service->GenerateLabeledRun(
      RunGeneratorOptions{.target_items = 60, .seed = 2});
  std::vector<ProvenanceIndex> snapshots;
  snapshots.push_back(
      ProvenanceIndexBuilder(service->production_graph()).Build());
  snapshots.push_back(session->Snapshot());
  MergedProvenanceIndex merged = ProvenanceIndex::Merge(snapshots).value();
  ASSERT_EQ(merged.num_runs(), 2);
  EXPECT_EQ(merged.num_items(0), 0);
  ASSERT_EQ(merged.num_items(1), session->num_items());
  for (int item = 0; item < merged.num_items(1); ++item) {
    ASSERT_EQ(merged.Label(1, item), snapshots[1].Label(item));
  }
  Result<MergedProvenanceIndex> restored =
      MergedProvenanceIndex::Deserialize(merged.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_items(0), 0);
  EXPECT_EQ(restored->num_items(1), merged.num_items(1));
}

}  // namespace
}  // namespace fvl
