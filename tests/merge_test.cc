// Multi-run index merging (ProvenanceIndex::Merge + QueryAcrossRuns):
// a differential harness that checks, across randomized specifications,
// runs, views, and label modes, that answers from a merged index are
// bit-identical to per-run DependsMany answers and to the ground-truth
// oracle (whose reachability is built from the view's full assignment —
// λ* for the default view), plus the merge-specific error and edge cases.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "fvl/run/provenance_oracle.h"
#include "fvl/service/provenance_service.h"
#include "fvl/util/random.h"
#include "fvl/workload/bioaid.h"
#include "fvl/workload/paper_example.h"
#include "fvl/workload/synthetic.h"
#include "fvl/workload/view_generator.h"

namespace fvl {
namespace {

constexpr ViewLabelMode kAllModes[] = {ViewLabelMode::kSpaceEfficient,
                                       ViewLabelMode::kDefault,
                                       ViewLabelMode::kQueryEfficient};

// A batch of labeled runs of one service, frozen individually and merged.
struct MergedRuns {
  std::vector<std::shared_ptr<ProvenanceSession>> sessions;
  std::vector<ProvenanceIndex> snapshots;
  MergedProvenanceIndex merged;
};

MergedRuns MakeRuns(const std::shared_ptr<ProvenanceService>& service,
                    int num_runs, int target_items, uint64_t seed) {
  MergedRuns out;
  for (int r = 0; r < num_runs; ++r) {
    RunGeneratorOptions options;
    options.target_items = target_items + 17 * r;
    options.seed = seed + r;
    out.sessions.push_back(service->GenerateLabeledRun(options));
    out.snapshots.push_back(out.sessions.back()->Snapshot());
  }
  out.merged = ProvenanceIndex::Merge(out.snapshots).value();
  return out;
}

// The differential core: per run, random same-run query pairs must get
// the same answers through QueryAcrossRuns on the merged index, through
// DependsMany on that run's own snapshot, and (whenever both items are
// visible) from the ProvenanceOracle over the run.
void CheckDifferential(ProvenanceService& service, const MergedRuns& runs,
                       ViewHandle view, ViewLabelMode mode,
                       int queries_per_run, uint64_t seed) {
  const CompiledView& compiled = *service.CompiledRegularView(view).value();
  for (size_t r = 0; r < runs.snapshots.size(); ++r) {
    const ProvenanceIndex& single = runs.snapshots[r];
    ASSERT_GT(single.num_items(), 0);
    Rng rng(seed + r);
    std::vector<std::pair<int, int>> local;
    std::vector<std::pair<RunItem, RunItem>> addressed;
    for (int q = 0; q < queries_per_run; ++q) {
      int d1 = rng.NextInt(0, single.num_items() - 1);
      int d2 = rng.NextInt(0, single.num_items() - 1);
      local.push_back({d1, d2});
      addressed.push_back({{static_cast<int>(r), d1},
                           {static_cast<int>(r), d2}});
    }

    Result<std::vector<bool>> merged_answers =
        service.QueryAcrossRuns(view, runs.merged, addressed, mode);
    ASSERT_TRUE(merged_answers.ok()) << merged_answers.status().ToString();
    Result<std::vector<bool>> single_answers =
        service.DependsMany(view, single, local, mode);
    ASSERT_TRUE(single_answers.ok()) << single_answers.status().ToString();
    ASSERT_EQ(*merged_answers, *single_answers)
        << "run " << r << " view " << view.id() << " mode "
        << static_cast<int>(mode);

    ProvenanceOracle oracle(runs.sessions[r]->run(), compiled);
    for (size_t q = 0; q < local.size(); ++q) {
      auto [d1, d2] = local[q];
      if (!oracle.ItemVisible(d1) || !oracle.ItemVisible(d2)) continue;
      ASSERT_EQ((*merged_answers)[q], oracle.Depends(d1, d2))
          << "run " << r << " d1=" << d1 << " d2=" << d2 << " view "
          << view.id() << " mode " << static_cast<int>(mode);
    }
  }
}

// ----- Differential harness. -----

TEST(MergeDifferential, PaperViewsAllModes) {
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();
  ViewHandle grey = service->RegisterView(ex.grey_view).value();

  MergedRuns runs = MakeRuns(service, 4, 120, 31);
  ASSERT_EQ(runs.merged.num_runs(), 4);
  for (ViewHandle view : {service->default_view(), grey}) {
    for (ViewLabelMode mode : kAllModes) {
      CheckDifferential(*service, runs, view, mode, 120, 7);
    }
  }
}

TEST(MergeDifferential, RandomizedSyntheticSpecs) {
  // 12 randomized specifications × 4 runs each (plus the paper fixture's 4
  // above) ≈ 50 specification/run combinations through the harness; label
  // modes rotate per specification so all three stay covered.
  Rng meta(2026);
  int combos = 0;
  for (int s = 0; s < 12; ++s) {
    SyntheticOptions options;
    options.workflow_size = meta.NextInt(4, 8);
    options.module_degree = meta.NextInt(2, 3);
    options.nesting_depth = meta.NextInt(1, 2);
    options.recursion_length = meta.NextInt(2, 3);
    options.seed = 100 + s;
    Workload workload = MakeSynthetic(options);
    auto service = ProvenanceService::Create(workload.spec).value();

    ViewGeneratorOptions view_options;
    view_options.num_expandable = meta.NextInt(1, 3);
    view_options.deps =
        (s % 2 != 0) ? PerceivedDeps::kGreyBox : PerceivedDeps::kWhiteBox;
    view_options.seed = 500 + s;
    CompiledView generated = GenerateSafeView(workload, view_options);
    ViewHandle view = service->RegisterView(generated.view()).value();

    MergedRuns runs = MakeRuns(service, 4, 40 + 10 * (s % 4), 1000 + s);
    combos += static_cast<int>(runs.snapshots.size());
    ViewLabelMode mode = kAllModes[s % 3];
    CheckDifferential(*service, runs, service->default_view(), mode, 80,
                      40 + s);
    CheckDifferential(*service, runs, view, mode, 80, 90 + s);
  }
  EXPECT_GE(combos + 4, 50);  // + the paper fixture's runs
}

TEST(MergeDifferential, MergedLabelsAreBitIdenticalToPerRunSnapshots) {
  auto service = ProvenanceService::Create(MakePaperExample().spec).value();
  MergedRuns runs = MakeRuns(service, 3, 100, 5);
  ASSERT_EQ(runs.merged.total_items(),
            runs.snapshots[0].num_items() + runs.snapshots[1].num_items() +
                runs.snapshots[2].num_items());
  for (size_t r = 0; r < runs.snapshots.size(); ++r) {
    ASSERT_EQ(runs.merged.num_items(static_cast<int>(r)),
              runs.snapshots[r].num_items());
    for (int item = 0; item < runs.snapshots[r].num_items(); ++item) {
      ASSERT_EQ(runs.merged.Label(static_cast<int>(r), item),
                runs.snapshots[r].Label(item))
          << "run " << r << " item " << item;
      ASSERT_EQ(runs.merged.LabelBits(static_cast<int>(r), item),
                runs.snapshots[r].LabelBits(item));
    }
  }
}

TEST(MergeDifferential, CrossRunPairsAreIndependent) {
  // Pairs within one run answer exactly as the decoding predicate over the
  // two (relocated) labels; pairs spanning two runs are false by definition
  // — separate executions share no data flow, and the predicate's
  // path-prefix comparisons are only meaningful inside one parse tree.
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();
  ViewHandle grey = service->RegisterView(ex.grey_view).value();
  MergedRuns runs = MakeRuns(service, 3, 90, 77);

  Rng rng(123);
  std::vector<std::pair<RunItem, RunItem>> queries;
  for (int q = 0; q < 300; ++q) {
    RunItem a{rng.NextInt(0, runs.merged.num_runs() - 1), 0};
    RunItem b{rng.NextInt(0, runs.merged.num_runs() - 1), 0};
    a.item = rng.NextInt(0, runs.merged.num_items(a.run) - 1);
    b.item = rng.NextInt(0, runs.merged.num_items(b.run) - 1);
    queries.push_back({a, b});
  }
  std::vector<bool> answers =
      service->QueryAcrossRuns(grey, runs.merged, queries).value();
  int cross = 0, positives = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    auto [a, b] = queries[q];
    if (a.run != b.run) {
      EXPECT_FALSE(answers[q]) << "cross-run query " << q;
      ++cross;
    } else {
      EXPECT_EQ(answers[q],
                service
                    ->Depends(grey, runs.merged.Label(a.run, a.item),
                              runs.merged.Label(b.run, b.item))
                    .value())
          << "query " << q;
      positives += answers[q];
    }
  }
  EXPECT_GT(cross, 50);      // the sample genuinely exercised both kinds
  EXPECT_GT(positives, 0);   // and some same-run pairs do depend

  // The flat-id overload agrees with the (run, item) addressing.
  std::vector<std::pair<int, int>> flat;
  for (const auto& [a, b] : queries) {
    flat.push_back({runs.merged.GlobalId(a.run, a.item),
                    runs.merged.GlobalId(b.run, b.item)});
  }
  EXPECT_EQ(service->DependsMany(grey, runs.merged, flat).value(), answers);
}

TEST(MergeDifferential, VisibilitySweepMatchesPerRunSweeps) {
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();
  ViewHandle grey = service->RegisterView(ex.grey_view).value();
  MergedRuns runs = MakeRuns(service, 3, 80, 11);

  std::vector<bool> merged_sweep =
      service->VisibilitySweep(grey, runs.merged).value();
  std::vector<bool> concatenated;
  for (const ProvenanceIndex& single : runs.snapshots) {
    std::vector<bool> sweep = service->VisibilitySweep(grey, single).value();
    concatenated.insert(concatenated.end(), sweep.begin(), sweep.end());
  }
  EXPECT_EQ(merged_sweep, concatenated);
}

// ----- Serialization. -----

TEST(MergeSerialization, SelfDescribingRoundTrip) {
  auto service = ProvenanceService::Create(MakePaperExample().spec).value();
  MergedRuns runs = MakeRuns(service, 3, 100, 19);

  std::string blob = runs.merged.Serialize();
  Result<MergedProvenanceIndex> restored =
      MergedProvenanceIndex::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->num_runs(), runs.merged.num_runs());
  ASSERT_EQ(restored->total_items(), runs.merged.total_items());
  for (int r = 0; r < restored->num_runs(); ++r) {
    ASSERT_EQ(restored->num_items(r), runs.merged.num_items(r));
    for (int item = 0; item < restored->num_items(r); ++item) {
      ASSERT_EQ(restored->Label(r, item), runs.merged.Label(r, item));
    }
  }
  EXPECT_EQ(restored->Serialize(), blob);

  // Queries run identically against the restored artifact.
  Rng rng(3);
  std::vector<std::pair<RunItem, RunItem>> queries;
  for (int q = 0; q < 100; ++q) {
    RunItem a{rng.NextInt(0, 2), 0}, b{rng.NextInt(0, 2), 0};
    a.item = rng.NextInt(0, restored->num_items(a.run) - 1);
    b.item = rng.NextInt(0, restored->num_items(b.run) - 1);
    queries.push_back({a, b});
  }
  ViewHandle view = service->default_view();
  EXPECT_EQ(service->QueryAcrossRuns(view, *restored, queries).value(),
            service->QueryAcrossRuns(view, runs.merged, queries).value());
}

// ----- Errors and edge cases. -----

TEST(MergeErrors, MismatchedSpecificationsRejected) {
  auto paper = ProvenanceService::Create(MakePaperExample().spec).value();
  auto bioaid = ProvenanceService::Create(MakeBioAid(2012).spec).value();
  std::vector<ProvenanceIndex> mixed;
  mixed.push_back(paper
                      ->GenerateLabeledRun(
                          RunGeneratorOptions{.target_items = 50, .seed = 1})
                      ->Snapshot());
  mixed.push_back(bioaid
                      ->GenerateLabeledRun(
                          RunGeneratorOptions{.target_items = 50, .seed = 2})
                      ->Snapshot());
  Result<MergedProvenanceIndex> merged = ProvenanceIndex::Merge(mixed);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.code(), ErrorCode::kInvalidArgument);

  // A merged index of another specification is turned away by the service.
  std::vector<ProvenanceIndex> foreign(1, std::move(mixed[1]));
  MergedProvenanceIndex foreign_merged =
      ProvenanceIndex::Merge(foreign).value();
  std::vector<std::pair<RunItem, RunItem>> queries = {{{0, 0}, {0, 1}}};
  EXPECT_EQ(paper
                ->QueryAcrossRuns(paper->default_view(), foreign_merged,
                                  queries)
                .code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(
      paper->VisibilitySweep(paper->default_view(), foreign_merged).code(),
      ErrorCode::kInvalidArgument);
}

TEST(MergeErrors, ForeignViewHandleReturnsNotFound) {
  // Two services over the *same* specification: indexes are codec-compatible
  // across them, but a handle issued by one must not resolve on the other.
  auto a = ProvenanceService::Create(MakePaperExample().spec).value();
  auto b = ProvenanceService::Create(MakePaperExample().spec).value();
  MergedRuns runs = MakeRuns(a, 2, 60, 9);

  ViewHandle foreign = b->default_view();
  std::vector<std::pair<RunItem, RunItem>> queries = {{{0, 0}, {1, 0}}};
  EXPECT_EQ(a->QueryAcrossRuns(foreign, runs.merged, queries).code(),
            ErrorCode::kNotFound);
  std::vector<std::pair<int, int>> flat = {{0, 1}};
  EXPECT_EQ(a->DependsMany(foreign, runs.merged, flat).code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(a->DependsMany(foreign, runs.snapshots[0], flat).code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(a->VisibilitySweep(foreign, runs.merged).code(),
            ErrorCode::kNotFound);
}

TEST(MergeErrors, OutOfRangeAddressesRejected) {
  auto service = ProvenanceService::Create(MakePaperExample().spec).value();
  MergedRuns runs = MakeRuns(service, 2, 60, 13);
  ViewHandle view = service->default_view();

  for (auto bad : std::vector<std::pair<RunItem, RunItem>>{
           {{-1, 0}, {0, 0}},
           {{2, 0}, {0, 0}},
           {{0, -1}, {0, 0}},
           {{0, 0}, {1, runs.merged.num_items(1)}}}) {
    std::vector<std::pair<RunItem, RunItem>> queries = {bad};
    EXPECT_EQ(service->QueryAcrossRuns(view, runs.merged, queries).code(),
              ErrorCode::kInvalidArgument);
  }
  std::vector<std::pair<int, int>> bad_flat = {
      {0, runs.merged.total_items()}};
  EXPECT_EQ(service->DependsMany(view, runs.merged, bad_flat).code(),
            ErrorCode::kInvalidArgument);
}

TEST(MergeEdgeCases, EmptyInputsGiveEmptyResultsNotErrors) {
  auto service = ProvenanceService::Create(MakePaperExample().spec).value();
  ViewHandle view = service->default_view();

  // Merging nothing yields an empty artifact, not an error.
  std::vector<ProvenanceIndex> none;
  Result<MergedProvenanceIndex> empty = ProvenanceIndex::Merge(none);
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_EQ(empty->num_runs(), 0);
  EXPECT_EQ(empty->total_items(), 0);

  // Empty query spans return empty answers on both empty and non-empty
  // merged indexes.
  std::vector<std::pair<RunItem, RunItem>> no_queries;
  std::vector<std::pair<int, int>> no_flat;
  EXPECT_TRUE(
      service->QueryAcrossRuns(view, *empty, no_queries).value().empty());
  EXPECT_TRUE(service->DependsMany(view, *empty, no_flat).value().empty());
  EXPECT_TRUE(service->VisibilitySweep(view, *empty).value().empty());

  MergedRuns runs = MakeRuns(service, 2, 60, 21);
  EXPECT_TRUE(
      service->QueryAcrossRuns(view, runs.merged, no_queries).value().empty());
  EXPECT_TRUE(
      service->DependsMany(view, runs.merged, no_flat).value().empty());

  // The empty artifact round-trips through serialization.
  Result<MergedProvenanceIndex> restored =
      MergedProvenanceIndex::Deserialize(empty->Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_runs(), 0);
}

TEST(MergeEdgeCases, ZeroItemRunsMergeCleanly) {
  // A run frozen before producing anything occupies a (run, ·) slot with
  // zero items; neighbors keep their labels and addressing.
  auto service = ProvenanceService::Create(MakePaperExample().spec).value();
  auto session = service->GenerateLabeledRun(
      RunGeneratorOptions{.target_items = 60, .seed = 2});
  std::vector<ProvenanceIndex> snapshots;
  snapshots.push_back(
      ProvenanceIndexBuilder(service->production_graph()).Build());
  snapshots.push_back(session->Snapshot());
  MergedProvenanceIndex merged = ProvenanceIndex::Merge(snapshots).value();
  ASSERT_EQ(merged.num_runs(), 2);
  EXPECT_EQ(merged.num_items(0), 0);
  ASSERT_EQ(merged.num_items(1), session->num_items());
  for (int item = 0; item < merged.num_items(1); ++item) {
    ASSERT_EQ(merged.Label(1, item), snapshots[1].Label(item));
  }
  Result<MergedProvenanceIndex> restored =
      MergedProvenanceIndex::Deserialize(merged.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_items(0), 0);
  EXPECT_EQ(restored->num_items(1), merged.num_items(1));
}

}  // namespace
}  // namespace fvl
