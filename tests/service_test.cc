// fvl::ProvenanceService: error taxonomy (one code per rejected-
// specification class), view-registry caching semantics, session-oriented
// online labeling of concurrent runs, and the batch query entry points —
// all checked against the ground-truth ProvenanceOracle.

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "fvl/run/provenance_oracle.h"
#include "fvl/service/provenance_service.h"
#include "fvl/util/random.h"
#include "fvl/util/thread_pool.h"
#include "fvl/workflow/grammar_builder.h"
#include "fvl/workload/bioaid.h"
#include "fvl/workload/paper_example.h"

namespace fvl {
namespace {

std::shared_ptr<ProvenanceService> MakePaperService() {
  return ProvenanceService::Create(MakePaperExample().spec).value();
}

// ----- Error taxonomy: every Thm.-8 precondition has its own code. -----

TEST(ServiceErrors, InvalidSpecificationRejected) {
  Specification empty;  // no modules, no start
  Result<std::shared_ptr<ProvenanceService>> service =
      ProvenanceService::Create(std::move(empty));
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.code(), ErrorCode::kInvalidSpecification);
}

TEST(ServiceErrors, ImproperGrammarRejected) {
  // S -> [S] only: S is unproductive, so the grammar is not proper.
  GrammarBuilder b;
  ModuleId s = b.AddComposite("S", 1, 1);
  b.SetStart(s);
  auto p = b.NewProduction(s);
  int m = p.AddMember(s);
  p.MapInput(0, m, 0).MapOutput(0, m, 0);
  p.Build();
  Specification spec = b.BuildSpecification();
  Result<std::shared_ptr<ProvenanceService>> service =
      ProvenanceService::Create(std::move(spec));
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.code(), ErrorCode::kImproperGrammar);
}

TEST(ServiceErrors, NotStrictlyLinearRecursiveRejected) {
  Result<std::shared_ptr<ProvenanceService>> service =
      ProvenanceService::Create(MakeFig10Example());
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.code(), ErrorCode::kNotStrictlyLinearRecursive);
}

TEST(ServiceErrors, UnsafeSpecificationRejected) {
  Result<std::shared_ptr<ProvenanceService>> service =
      ProvenanceService::Create(MakeUnsafeExample());
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.code(), ErrorCode::kUnsafeSpecification);
}

TEST(ServiceErrors, ViewErrorsKeepTheirCodes) {
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();

  // λ'(C) missing although C is visible in the grey view's Δ'.
  View incomplete;
  incomplete.expandable.assign(ex.spec.grammar.num_modules(), false);
  incomplete.expandable[ex.S] = true;
  incomplete.expandable[ex.A] = true;
  incomplete.expandable[ex.B] = true;
  incomplete.perceived = ex.spec.deps;
  EXPECT_EQ(service->RegisterView(incomplete).code(),
            ErrorCode::kIncompleteAssignment);

  // Perceived deps contradicting the A<->B recursion fixed point.
  View unsafe = ex.grey_view;
  unsafe.perceived.Set(ex.C, BoolMatrix::Identity(2));
  EXPECT_EQ(service->RegisterView(unsafe).code(), ErrorCode::kUnsafeView);

  // The start module must stay expandable.
  View improper = ex.grey_view;
  improper.expandable[ex.S] = false;
  improper.perceived = ex.spec.deps;
  improper.perceived.Set(ex.C, BoolMatrix::Full(2, 2));
  EXPECT_EQ(service->RegisterView(improper).code(), ErrorCode::kInvalidView);

  // Structural grouping error: grouping an expandable member.
  View base = MakeDefaultView(ex.spec);
  ModuleGroup group;
  group.production = ex.p[0];
  group.member_positions = {2};  // A, expandable in the default view
  group.name = "G";
  group.perceived_deps = BoolMatrix::Full(2, 2);
  EXPECT_EQ(service->RegisterGroupedView(base, {group}).code(),
            ErrorCode::kInvalidGroup);
}

TEST(ServiceErrors, UnknownHandleReported) {
  auto service = MakePaperService();
  EXPECT_EQ(
      service->LabelOf(ViewHandle(), ViewLabelMode::kDefault).code(),
      ErrorCode::kNotFound);
  auto other = MakePaperService();
  ViewHandle foreign = other->RegisterView(MakePaperExample().grey_view)
                           .value();  // id beyond service's registry
  EXPECT_EQ(service->DecoderOf(foreign, ViewLabelMode::kDefault).code(),
            ErrorCode::kNotFound);
  // A foreign handle whose id is in range on this service must still be
  // rejected, not silently resolve to an unrelated view.
  ViewHandle foreign_default = other->default_view();
  ASSERT_LT(foreign_default.id(), service->num_views());
  EXPECT_EQ(service->LabelOf(foreign_default, ViewLabelMode::kDefault).code(),
            ErrorCode::kNotFound);
}

// ----- Registry caching. -----

TEST(ServiceRegistry, SameViewRegistersOnce) {
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();

  ViewHandle grey1 = service->RegisterView(ex.grey_view).value();
  ViewHandle grey2 = service->RegisterView(ex.grey_view).value();
  EXPECT_EQ(grey1, grey2);
  EXPECT_EQ(service->num_views(), 2);  // default + grey

  // Re-registering the default view returns the pre-registered handle.
  EXPECT_EQ(service->RegisterView(MakeDefaultView(ex.spec)).value(),
            service->default_view());
}

TEST(ServiceRegistry, ViewLabelingWorkHappensOncePerMode) {
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();
  ViewHandle grey = service->RegisterView(ex.grey_view).value();

  EXPECT_EQ(service->view_labelings_performed(), 0);
  const ViewLabel* label =
      service->LabelOf(grey, ViewLabelMode::kQueryEfficient).value();
  EXPECT_EQ(service->view_labelings_performed(), 1);

  // Same handle, same mode => the same ViewLabel object, no new work — even
  // through a fresh registration of the same view.
  ViewHandle again = service->RegisterView(ex.grey_view).value();
  EXPECT_EQ(
      service->LabelOf(again, ViewLabelMode::kQueryEfficient).value(),
      label);
  EXPECT_EQ(service->view_labelings_performed(), 1);

  // A different mode is labeled separately (once).
  service->LabelOf(grey, ViewLabelMode::kSpaceEfficient).value();
  service->LabelOf(grey, ViewLabelMode::kSpaceEfficient).value();
  EXPECT_EQ(service->view_labelings_performed(), 2);

  // Decoders are cached too and reuse the cached label.
  const Decoder* pi =
      service->DecoderOf(grey, ViewLabelMode::kQueryEfficient).value();
  EXPECT_EQ(service->DecoderOf(grey, ViewLabelMode::kQueryEfficient).value(),
            pi);
  EXPECT_EQ(service->view_labelings_performed(), 2);
}

// ----- Ownership. -----

TEST(ServiceOwnership, ServiceOutlivesTheInputSpecification) {
  std::shared_ptr<ProvenanceService> service;
  ViewHandle grey;
  {
    PaperExample ex = MakePaperExample();
    service = ProvenanceService::Create(std::move(ex.spec)).value();
    grey = service->RegisterView(ex.grey_view).value();
  }  // `ex` (and the moved-from spec) are gone; the service owns its copy.

  auto session = service->GenerateLabeledRun(RunGeneratorOptions{
      .target_items = 200, .seed = 11});
  ASSERT_TRUE(session->complete());
  EXPECT_GT(session->num_items(), 0);
  EXPECT_TRUE(session->Depends(grey, 0, 0).ok());
}

TEST(ServiceOwnership, SessionKeepsServiceAlive) {
  std::shared_ptr<ProvenanceSession> session;
  ViewHandle view;
  {
    auto service = MakePaperService();
    view = service->default_view();
    session = service->GenerateLabeledRun(RunGeneratorOptions{
        .target_items = 150, .seed = 3});
  }  // last external reference to the service dropped
  EXPECT_TRUE(session->Depends(view, 0, session->num_items() - 1).ok());
}

// ----- Sessions. -----

TEST(ServiceSession, ApplyValidatesInput) {
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();
  auto session = service->BeginRun();

  EXPECT_EQ(session->Apply(-1, ex.p[0]).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(session->Apply(99, ex.p[0]).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(session->Apply(0, 999).code(), ErrorCode::kInvalidArgument);
  // p2 expands A, not the start instance S.
  EXPECT_EQ(session->Apply(0, ex.p[1]).code(), ErrorCode::kInvalidArgument);

  ASSERT_TRUE(session->Apply(0, ex.p[0]).ok());
  // Already expanded.
  EXPECT_EQ(session->Apply(0, ex.p[0]).code(), ErrorCode::kInvalidArgument);

  // Items created so far carry labels already.
  EXPECT_EQ(session->labeler().num_labels(), session->num_items());
}

// Expands the first frontier instance; for the first `grow` calls the
// production index cycles (keeping recursions unfolding), afterwards the
// last production of each module terminates the run (see quickstart.cc).
void Step(ProvenanceSession& session, int step_index, int grow) {
  const Run& run = session.run();
  const Grammar& g = run.grammar();
  int instance = run.Frontier().front();
  const std::vector<ProductionId>& options =
      g.ProductionsOf(run.instance(instance).type);
  ProductionId pick =
      step_index < grow
          ? options[step_index % options.size()]
          : options.back();
  ASSERT_TRUE(session.Apply(instance, pick).ok());
}

TEST(ServiceSession, TwoConcurrentSessionsMatchTheirOracles) {
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();
  ViewHandle grey = service->RegisterView(ex.grey_view).value();

  // Interleave two independent derivations through one service: the labels
  // of one run must be completely unaffected by the other.
  auto a = service->BeginRun();
  auto b = service->BeginRun();
  int step = 0;
  while (!a->complete() || !b->complete()) {
    if (!a->complete()) Step(*a, step, /*grow=*/14);
    if (!b->complete()) Step(*b, step + 1, /*grow=*/7);
    ++step;
    ASSERT_LT(step, 1000);
  }
  // The two derivations must genuinely differ.
  bool same_derivation = a->run().num_steps() == b->run().num_steps();
  for (int i = 0; same_derivation && i < a->run().num_steps(); ++i) {
    same_derivation = a->run().step(i).production == b->run().step(i).production;
  }
  EXPECT_FALSE(same_derivation);

  for (ViewHandle view : {service->default_view(), grey}) {
    const CompiledView& compiled =
        *service->CompiledRegularView(view).value();
    for (const auto& session : {a, b}) {
      ProvenanceOracle oracle(session->run(), compiled);
      for (int d1 = 0; d1 < session->num_items(); ++d1) {
        if (!oracle.ItemVisible(d1)) continue;
        for (int d2 = 0; d2 < session->num_items(); ++d2) {
          if (!oracle.ItemVisible(d2)) continue;
          ASSERT_EQ(session->Depends(view, d1, d2).value(),
                    oracle.Depends(d1, d2))
              << "view=" << view.id() << " d1=" << d1 << " d2=" << d2;
        }
      }
    }
  }
}

// ----- Snapshots and batch queries. -----

TEST(ServiceBatch, DependsManyMatchesSingleQueries) {
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();
  ViewHandle grey = service->RegisterView(ex.grey_view).value();

  auto session = service->GenerateLabeledRun(RunGeneratorOptions{
      .target_items = 300, .seed = 21});
  ProvenanceIndex index = session->Snapshot();
  ASSERT_EQ(index.num_items(), session->num_items());

  Rng rng(99);
  std::vector<std::pair<int, int>> queries;
  for (int q = 0; q < 500; ++q) {
    queries.push_back({rng.NextInt(0, index.num_items() - 1),
                       rng.NextInt(0, index.num_items() - 1)});
  }
  std::vector<bool> batched =
      service->DependsMany(grey, index, queries).value();
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(batched[q],
              session->Depends(grey, queries[q].first, queries[q].second)
                  .value())
        << "query " << q;
  }

  // Out-of-range items are rejected, not aborted on.
  std::vector<std::pair<int, int>> bad = {{0, index.num_items()}};
  EXPECT_EQ(service->DependsMany(grey, index, bad).code(),
            ErrorCode::kInvalidArgument);
}

TEST(ServiceBatch, VisibilitySweepMatchesOracle) {
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();
  ViewHandle grey = service->RegisterView(ex.grey_view).value();

  auto session = service->GenerateLabeledRun(RunGeneratorOptions{
      .target_items = 250, .seed = 5});
  ProvenanceIndex index = session->Snapshot();

  ProvenanceOracle oracle(
      session->run(), *service->CompiledRegularView(grey).value());
  std::vector<bool> visible =
      service->VisibilitySweep(grey, index).value();
  ASSERT_EQ(static_cast<int>(visible.size()), index.num_items());
  for (int item = 0; item < index.num_items(); ++item) {
    EXPECT_EQ(visible[item], oracle.ItemVisible(item)) << "item " << item;
  }
}

TEST(ServiceBatch, SnapshotRoundTripsWithoutACodec) {
  // The serialized snapshot is self-describing: queries run against the
  // deserialized index with no grammar or codec at hand.
  auto service = MakePaperService();
  auto session = service->GenerateLabeledRun(RunGeneratorOptions{
      .target_items = 200, .seed = 13});
  ProvenanceIndex index = session->Snapshot();

  ProvenanceIndex restored =
      ProvenanceIndex::Deserialize(index.Serialize()).value();
  ASSERT_EQ(restored.num_items(), index.num_items());

  Rng rng(7);
  std::vector<std::pair<int, int>> queries;
  for (int q = 0; q < 200; ++q) {
    queries.push_back({rng.NextInt(0, index.num_items() - 1),
                       rng.NextInt(0, index.num_items() - 1)});
  }
  ViewHandle view = service->default_view();
  EXPECT_EQ(service->DependsMany(view, restored, queries).value(),
            service->DependsMany(view, index, queries).value());
}

// Walks a port-label path to the module that created the port, mirroring
// how CompressedParseTree assigns paths (and how the service's untrusted-
// label boundary check resolves modules).
ModuleId ModuleAtPathEnd(const ProvenanceService& service,
                         const std::vector<EdgeLabel>& path) {
  const Grammar& g = service.grammar();
  const ProductionGraph& pg = service.production_graph();
  ModuleId module = g.start();
  for (const EdgeLabel& e : path) {
    if (e.kind == EdgeLabel::Kind::kProduction) {
      module = g.production(e.production).rhs.members[e.position];
    } else {
      const ProductionGraph::Cycle& cycle = pg.cycle(e.cycle);
      module = cycle.members[static_cast<size_t>(
          (e.start + e.iteration - 1) % cycle.length())];
    }
  }
  return module;
}

TEST(ServiceHardening, PerModulePortBoundsEnforced) {
  // A label whose port is within the *global* maximum arity but beyond the
  // arity of its own module would index past that module's matrix
  // dimensions in a release-build decoder; the batch entry points must
  // reject it. The paper example has modules of 1 to 3 ports, so such
  // labels exist and survive encoding.
  auto service = MakePaperService();
  auto session = service->GenerateLabeledRun(RunGeneratorOptions{
      .target_items = 300, .seed = 17});

  int max_outputs = 0;
  for (ModuleId m = 0; m < service->grammar().num_modules(); ++m) {
    max_outputs = std::max(max_outputs, service->grammar().module(m).num_outputs);
  }

  int victim = -1;
  DataLabel tampered;
  for (int item = 0; item < session->num_items(); ++item) {
    DataLabel label = session->Label(item);
    if (!label.producer.has_value()) continue;
    ModuleId m = ModuleAtPathEnd(*service, label.producer->path);
    int arity = service->grammar().module(m).num_outputs;
    if (arity < max_outputs) {
      // In range for the old global check, out of range for the module.
      label.producer->port = arity;
      tampered = std::move(label);
      victim = item;
      break;
    }
  }
  ASSERT_GE(victim, 0) << "no item from a below-max-arity module found";

  ProvenanceIndexBuilder builder(service->production_graph());
  for (int item = 0; item < session->num_items(); ++item) {
    builder.Add(item == victim ? tampered : session->Label(item));
  }
  ProvenanceIndex index = std::move(builder).Build();

  std::vector<std::pair<int, int>> queries = {{victim, victim}};
  EXPECT_EQ(
      service->DependsMany(service->default_view(), index, queries).code(),
      ErrorCode::kInvalidArgument);
  EXPECT_EQ(service->VisibilitySweep(service->default_view(), index).code(),
            ErrorCode::kInvalidArgument);

  // Queries that never touch the tampered item still answer.
  std::vector<std::pair<int, int>> clean = {{0, 1}};
  EXPECT_TRUE(
      service->DependsMany(service->default_view(), index, clean).ok());
}

TEST(ServiceHardening, InconsistentPathsRejected) {
  // Each edge of a label's path must expand the module the path has
  // reached; a production edge whose lhs is some *other* module (id still
  // in range — the old field-wise check accepted it) means the decoder
  // would multiply matrices of unrelated productions. Rejected at the
  // boundary instead.
  auto service = MakePaperService();
  auto session = service->GenerateLabeledRun(RunGeneratorOptions{
      .target_items = 300, .seed = 23});

  int victim = -1;
  DataLabel tampered;
  for (int item = 0; item < session->num_items() && victim < 0; ++item) {
    DataLabel label = session->Label(item);
    if (!label.producer.has_value() || label.producer->path.empty()) continue;
    EdgeLabel& first = label.producer->path.front();
    if (first.kind != EdgeLabel::Kind::kProduction) continue;
    // Retarget the root edge to a production of a non-start module, keeping
    // the position valid for that production.
    for (ProductionId p = 0; p < service->grammar().num_productions(); ++p) {
      if (service->grammar().production(p).lhs ==
          service->grammar().start()) {
        continue;
      }
      first.production = p;
      first.position = 0;
      tampered = label;
      victim = item;
      break;
    }
  }
  ASSERT_GE(victim, 0);

  ProvenanceIndexBuilder builder(service->production_graph());
  for (int item = 0; item < session->num_items(); ++item) {
    builder.Add(item == victim ? tampered : session->Label(item));
  }
  ProvenanceIndex index = std::move(builder).Build();
  std::vector<std::pair<int, int>> queries = {{victim, victim}};
  EXPECT_EQ(
      service->DependsMany(service->default_view(), index, queries).code(),
      ErrorCode::kInvalidArgument);
}

TEST(ServiceThreads, ShardedBatchesMatchSerialAnswers) {
  // set_query_threads only shards the decode loops; answers are identical
  // at every thread count, for both batch entry points and both index
  // shapes. Runs are sized well past kParallelForGrain (1024) so the
  // multi-shard path genuinely executes at 2+ threads — both per snapshot
  // (2500 items) and merged (~7500 items).
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();
  ViewHandle grey = service->RegisterView(ex.grey_view).value();

  std::vector<ProvenanceIndex> snapshots;
  for (int r = 0; r < 3; ++r) {
    snapshots.push_back(
        service
            ->GenerateLabeledRun(RunGeneratorOptions{
                .target_items = 2500, .seed = 31 + static_cast<uint64_t>(r)})
            ->Snapshot());
  }
  MergedProvenanceIndex merged = ProvenanceIndex::Merge(snapshots).value();
  ASSERT_GE(static_cast<int64_t>(snapshots[0].num_items()),
            2 * kParallelForGrain)
      << "snapshot too small to produce a second ParallelFor shard";

  Rng rng(5);
  std::vector<std::pair<int, int>> queries;
  for (int q = 0; q < 4000; ++q) {
    queries.push_back({rng.NextInt(0, snapshots[0].num_items() - 1),
                       rng.NextInt(0, snapshots[0].num_items() - 1)});
  }
  std::vector<std::pair<int, int>> flat;
  for (int q = 0; q < 4000; ++q) {
    flat.push_back({rng.NextInt(0, merged.total_items() - 1),
                    rng.NextInt(0, merged.total_items() - 1)});
  }

  std::vector<bool> serial_single =
      service->DependsMany(grey, snapshots[0], queries).value();
  std::vector<bool> serial_merged =
      service->DependsMany(grey, merged, flat).value();
  std::vector<bool> serial_sweep =
      service->VisibilitySweep(grey, merged).value();
  for (int threads : {2, 4, 8}) {
    service->set_query_threads(threads);
    EXPECT_EQ(service->DependsMany(grey, snapshots[0], queries).value(),
              serial_single)
        << threads << " threads";
    EXPECT_EQ(service->DependsMany(grey, merged, flat).value(),
              serial_merged)
        << threads << " threads";
    EXPECT_EQ(service->VisibilitySweep(grey, merged).value(), serial_sweep)
        << threads << " threads";
  }
  service->set_query_threads(1);
}

TEST(ServiceThreads, NonPositiveQueryThreadsClampToOne) {
  // Contract (provenance_service.h): set_query_threads clamps n < 1 to 1 —
  // a batch always runs on at least the calling thread — so a miscomputed
  // thread count can neither wedge batch queries nor corrupt their answers.
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();
  EXPECT_EQ(service->query_threads(), 1);  // the default

  ProvenanceIndex snapshot =
      service
          ->GenerateLabeledRun(RunGeneratorOptions{.target_items = 200,
                                                   .seed = 9})
          ->Snapshot();
  std::vector<std::pair<int, int>> queries;
  Rng rng(17);
  for (int q = 0; q < 200; ++q) {
    queries.push_back({rng.NextInt(0, snapshot.num_items() - 1),
                       rng.NextInt(0, snapshot.num_items() - 1)});
  }
  std::vector<bool> baseline =
      service->DependsMany(service->default_view(), snapshot, queries)
          .value();

  for (int bad : {0, -1, -64, std::numeric_limits<int>::min()}) {
    service->set_query_threads(bad);
    EXPECT_EQ(service->query_threads(), 1) << "requested " << bad;
    EXPECT_EQ(
        service->DependsMany(service->default_view(), snapshot, queries)
            .value(),
        baseline)
        << "requested " << bad;
  }
  // Positive values pass through unchanged.
  service->set_query_threads(6);
  EXPECT_EQ(service->query_threads(), 6);
  service->set_query_threads(1);
}

TEST(ServiceThreads, RegistryIsInternallySynchronized) {
  // Registration, lazy label/decoder cache fills, session creation and
  // queries race from many threads; under ASan/TSan-less CI this still
  // catches registry corruption (lost entries, double labelings) via the
  // invariants below.
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();
  auto session = service->GenerateLabeledRun(RunGeneratorOptions{
      .target_items = 200, .seed = 41});
  ProvenanceIndex index = session->Snapshot();

  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  std::vector<ViewHandle> handles(kThreads);
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Everyone registers the same view — the registry must dedup to one
      // entry — while hammering the lazy caches and batch queries.
      Result<ViewHandle> handle = service->RegisterView(ex.grey_view);
      if (!handle.ok()) {
        failures.fetch_add(1);
        return;
      }
      handles[t] = handle.value();
      for (int round = 0; round < 20; ++round) {
        ViewLabelMode mode = static_cast<ViewLabelMode>(round % 3);
        if (!service->DecoderOf(handle.value(), mode).ok()) {
          failures.fetch_add(1);
        }
        std::vector<std::pair<int, int>> queries = {
            {t, round}, {round, t + round}};
        if (!service->DependsMany(handle.value(), index, queries, mode)
                 .ok()) {
          failures.fetch_add(1);
        }
        auto extra = service->BeginRun();
        if (extra->num_items() <= 0) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(failures.load(), 0);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(handles[t], handles[0]) << "dedup failed for thread " << t;
  }
  // One grey-view entry (plus the default view), and at most one labeling
  // per (view, mode): 2 views x 3 modes.
  EXPECT_EQ(service->num_views(), 2);
  EXPECT_LE(service->view_labelings_performed(), 6);
}

TEST(ServiceBatch, ForeignIndexRejected) {
  // A snapshot from a service with a different specification must be turned
  // away (its labels would index out of this service's decoder matrices).
  auto service = MakePaperService();
  auto other = ProvenanceService::Create(MakeBioAid(2012).spec).value();
  ProvenanceIndex foreign =
      other->GenerateLabeledRun(RunGeneratorOptions{.target_items = 50,
                                                    .seed = 5})
          ->Snapshot();
  std::vector<std::pair<int, int>> queries = {{0, 1}};
  EXPECT_EQ(
      service->DependsMany(service->default_view(), foreign, queries).code(),
      ErrorCode::kInvalidArgument);
  EXPECT_EQ(service->VisibilitySweep(service->default_view(), foreign).code(),
            ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace fvl
