// fvl::ProvenanceService: error taxonomy (one code per rejected-
// specification class), view-registry caching semantics, session-oriented
// online labeling of concurrent runs, and the batch query entry points —
// all checked against the ground-truth ProvenanceOracle.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "fvl/run/provenance_oracle.h"
#include "fvl/service/provenance_service.h"
#include "fvl/util/random.h"
#include "fvl/workflow/grammar_builder.h"
#include "fvl/workload/bioaid.h"
#include "fvl/workload/paper_example.h"

namespace fvl {
namespace {

std::shared_ptr<ProvenanceService> MakePaperService() {
  return ProvenanceService::Create(MakePaperExample().spec).value();
}

// ----- Error taxonomy: every Thm.-8 precondition has its own code. -----

TEST(ServiceErrors, InvalidSpecificationRejected) {
  Specification empty;  // no modules, no start
  Result<std::shared_ptr<ProvenanceService>> service =
      ProvenanceService::Create(std::move(empty));
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.code(), ErrorCode::kInvalidSpecification);
}

TEST(ServiceErrors, ImproperGrammarRejected) {
  // S -> [S] only: S is unproductive, so the grammar is not proper.
  GrammarBuilder b;
  ModuleId s = b.AddComposite("S", 1, 1);
  b.SetStart(s);
  auto p = b.NewProduction(s);
  int m = p.AddMember(s);
  p.MapInput(0, m, 0).MapOutput(0, m, 0);
  p.Build();
  Specification spec = b.BuildSpecification();
  Result<std::shared_ptr<ProvenanceService>> service =
      ProvenanceService::Create(std::move(spec));
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.code(), ErrorCode::kImproperGrammar);
}

TEST(ServiceErrors, NotStrictlyLinearRecursiveRejected) {
  Result<std::shared_ptr<ProvenanceService>> service =
      ProvenanceService::Create(MakeFig10Example());
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.code(), ErrorCode::kNotStrictlyLinearRecursive);
}

TEST(ServiceErrors, UnsafeSpecificationRejected) {
  Result<std::shared_ptr<ProvenanceService>> service =
      ProvenanceService::Create(MakeUnsafeExample());
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.code(), ErrorCode::kUnsafeSpecification);
}

TEST(ServiceErrors, ViewErrorsKeepTheirCodes) {
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();

  // λ'(C) missing although C is visible in the grey view's Δ'.
  View incomplete;
  incomplete.expandable.assign(ex.spec.grammar.num_modules(), false);
  incomplete.expandable[ex.S] = true;
  incomplete.expandable[ex.A] = true;
  incomplete.expandable[ex.B] = true;
  incomplete.perceived = ex.spec.deps;
  EXPECT_EQ(service->RegisterView(incomplete).code(),
            ErrorCode::kIncompleteAssignment);

  // Perceived deps contradicting the A<->B recursion fixed point.
  View unsafe = ex.grey_view;
  unsafe.perceived.Set(ex.C, BoolMatrix::Identity(2));
  EXPECT_EQ(service->RegisterView(unsafe).code(), ErrorCode::kUnsafeView);

  // The start module must stay expandable.
  View improper = ex.grey_view;
  improper.expandable[ex.S] = false;
  improper.perceived = ex.spec.deps;
  improper.perceived.Set(ex.C, BoolMatrix::Full(2, 2));
  EXPECT_EQ(service->RegisterView(improper).code(), ErrorCode::kInvalidView);

  // Structural grouping error: grouping an expandable member.
  View base = MakeDefaultView(ex.spec);
  ModuleGroup group;
  group.production = ex.p[0];
  group.member_positions = {2};  // A, expandable in the default view
  group.name = "G";
  group.perceived_deps = BoolMatrix::Full(2, 2);
  EXPECT_EQ(service->RegisterGroupedView(base, {group}).code(),
            ErrorCode::kInvalidGroup);
}

TEST(ServiceErrors, UnknownHandleReported) {
  auto service = MakePaperService();
  EXPECT_EQ(
      service->LabelOf(ViewHandle(), ViewLabelMode::kDefault).code(),
      ErrorCode::kNotFound);
  auto other = MakePaperService();
  ViewHandle foreign = other->RegisterView(MakePaperExample().grey_view)
                           .value();  // id beyond service's registry
  EXPECT_EQ(service->DecoderOf(foreign, ViewLabelMode::kDefault).code(),
            ErrorCode::kNotFound);
  // A foreign handle whose id is in range on this service must still be
  // rejected, not silently resolve to an unrelated view.
  ViewHandle foreign_default = other->default_view();
  ASSERT_LT(foreign_default.id(), service->num_views());
  EXPECT_EQ(service->LabelOf(foreign_default, ViewLabelMode::kDefault).code(),
            ErrorCode::kNotFound);
}

// ----- Registry caching. -----

TEST(ServiceRegistry, SameViewRegistersOnce) {
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();

  ViewHandle grey1 = service->RegisterView(ex.grey_view).value();
  ViewHandle grey2 = service->RegisterView(ex.grey_view).value();
  EXPECT_EQ(grey1, grey2);
  EXPECT_EQ(service->num_views(), 2);  // default + grey

  // Re-registering the default view returns the pre-registered handle.
  EXPECT_EQ(service->RegisterView(MakeDefaultView(ex.spec)).value(),
            service->default_view());
}

TEST(ServiceRegistry, ViewLabelingWorkHappensOncePerMode) {
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();
  ViewHandle grey = service->RegisterView(ex.grey_view).value();

  EXPECT_EQ(service->view_labelings_performed(), 0);
  const ViewLabel* label =
      service->LabelOf(grey, ViewLabelMode::kQueryEfficient).value();
  EXPECT_EQ(service->view_labelings_performed(), 1);

  // Same handle, same mode => the same ViewLabel object, no new work — even
  // through a fresh registration of the same view.
  ViewHandle again = service->RegisterView(ex.grey_view).value();
  EXPECT_EQ(
      service->LabelOf(again, ViewLabelMode::kQueryEfficient).value(),
      label);
  EXPECT_EQ(service->view_labelings_performed(), 1);

  // A different mode is labeled separately (once).
  service->LabelOf(grey, ViewLabelMode::kSpaceEfficient).value();
  service->LabelOf(grey, ViewLabelMode::kSpaceEfficient).value();
  EXPECT_EQ(service->view_labelings_performed(), 2);

  // Decoders are cached too and reuse the cached label.
  const Decoder* pi =
      service->DecoderOf(grey, ViewLabelMode::kQueryEfficient).value();
  EXPECT_EQ(service->DecoderOf(grey, ViewLabelMode::kQueryEfficient).value(),
            pi);
  EXPECT_EQ(service->view_labelings_performed(), 2);
}

// ----- Ownership. -----

TEST(ServiceOwnership, ServiceOutlivesTheInputSpecification) {
  std::shared_ptr<ProvenanceService> service;
  ViewHandle grey;
  {
    PaperExample ex = MakePaperExample();
    service = ProvenanceService::Create(std::move(ex.spec)).value();
    grey = service->RegisterView(ex.grey_view).value();
  }  // `ex` (and the moved-from spec) are gone; the service owns its copy.

  auto session = service->GenerateLabeledRun(RunGeneratorOptions{
      .target_items = 200, .seed = 11});
  ASSERT_TRUE(session->complete());
  EXPECT_GT(session->num_items(), 0);
  EXPECT_TRUE(session->Depends(grey, 0, 0).ok());
}

TEST(ServiceOwnership, SessionKeepsServiceAlive) {
  std::shared_ptr<ProvenanceSession> session;
  ViewHandle view;
  {
    auto service = MakePaperService();
    view = service->default_view();
    session = service->GenerateLabeledRun(RunGeneratorOptions{
        .target_items = 150, .seed = 3});
  }  // last external reference to the service dropped
  EXPECT_TRUE(session->Depends(view, 0, session->num_items() - 1).ok());
}

// ----- Sessions. -----

TEST(ServiceSession, ApplyValidatesInput) {
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();
  auto session = service->BeginRun();

  EXPECT_EQ(session->Apply(-1, ex.p[0]).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(session->Apply(99, ex.p[0]).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(session->Apply(0, 999).code(), ErrorCode::kInvalidArgument);
  // p2 expands A, not the start instance S.
  EXPECT_EQ(session->Apply(0, ex.p[1]).code(), ErrorCode::kInvalidArgument);

  ASSERT_TRUE(session->Apply(0, ex.p[0]).ok());
  // Already expanded.
  EXPECT_EQ(session->Apply(0, ex.p[0]).code(), ErrorCode::kInvalidArgument);

  // Items created so far carry labels already.
  EXPECT_EQ(session->labeler().num_labels(), session->num_items());
}

// Expands the first frontier instance; for the first `grow` calls the
// production index cycles (keeping recursions unfolding), afterwards the
// last production of each module terminates the run (see quickstart.cc).
void Step(ProvenanceSession& session, int step_index, int grow) {
  const Run& run = session.run();
  const Grammar& g = run.grammar();
  int instance = run.Frontier().front();
  const std::vector<ProductionId>& options =
      g.ProductionsOf(run.instance(instance).type);
  ProductionId pick =
      step_index < grow
          ? options[step_index % options.size()]
          : options.back();
  ASSERT_TRUE(session.Apply(instance, pick).ok());
}

TEST(ServiceSession, TwoConcurrentSessionsMatchTheirOracles) {
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();
  ViewHandle grey = service->RegisterView(ex.grey_view).value();

  // Interleave two independent derivations through one service: the labels
  // of one run must be completely unaffected by the other.
  auto a = service->BeginRun();
  auto b = service->BeginRun();
  int step = 0;
  while (!a->complete() || !b->complete()) {
    if (!a->complete()) Step(*a, step, /*grow=*/14);
    if (!b->complete()) Step(*b, step + 1, /*grow=*/7);
    ++step;
    ASSERT_LT(step, 1000);
  }
  // The two derivations must genuinely differ.
  bool same_derivation = a->run().num_steps() == b->run().num_steps();
  for (int i = 0; same_derivation && i < a->run().num_steps(); ++i) {
    same_derivation = a->run().step(i).production == b->run().step(i).production;
  }
  EXPECT_FALSE(same_derivation);

  for (ViewHandle view : {service->default_view(), grey}) {
    const CompiledView& compiled =
        *service->CompiledRegularView(view).value();
    for (const auto& session : {a, b}) {
      ProvenanceOracle oracle(session->run(), compiled);
      for (int d1 = 0; d1 < session->num_items(); ++d1) {
        if (!oracle.ItemVisible(d1)) continue;
        for (int d2 = 0; d2 < session->num_items(); ++d2) {
          if (!oracle.ItemVisible(d2)) continue;
          ASSERT_EQ(session->Depends(view, d1, d2).value(),
                    oracle.Depends(d1, d2))
              << "view=" << view.id() << " d1=" << d1 << " d2=" << d2;
        }
      }
    }
  }
}

// ----- Snapshots and batch queries. -----

TEST(ServiceBatch, DependsManyMatchesSingleQueries) {
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();
  ViewHandle grey = service->RegisterView(ex.grey_view).value();

  auto session = service->GenerateLabeledRun(RunGeneratorOptions{
      .target_items = 300, .seed = 21});
  ProvenanceIndex index = session->Snapshot();
  ASSERT_EQ(index.num_items(), session->num_items());

  Rng rng(99);
  std::vector<std::pair<int, int>> queries;
  for (int q = 0; q < 500; ++q) {
    queries.push_back({rng.NextInt(0, index.num_items() - 1),
                       rng.NextInt(0, index.num_items() - 1)});
  }
  std::vector<bool> batched =
      service->DependsMany(grey, index, queries).value();
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(batched[q],
              session->Depends(grey, queries[q].first, queries[q].second)
                  .value())
        << "query " << q;
  }

  // Out-of-range items are rejected, not aborted on.
  std::vector<std::pair<int, int>> bad = {{0, index.num_items()}};
  EXPECT_EQ(service->DependsMany(grey, index, bad).code(),
            ErrorCode::kInvalidArgument);
}

TEST(ServiceBatch, VisibilitySweepMatchesOracle) {
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();
  ViewHandle grey = service->RegisterView(ex.grey_view).value();

  auto session = service->GenerateLabeledRun(RunGeneratorOptions{
      .target_items = 250, .seed = 5});
  ProvenanceIndex index = session->Snapshot();

  ProvenanceOracle oracle(
      session->run(), *service->CompiledRegularView(grey).value());
  std::vector<bool> visible =
      service->VisibilitySweep(grey, index).value();
  ASSERT_EQ(static_cast<int>(visible.size()), index.num_items());
  for (int item = 0; item < index.num_items(); ++item) {
    EXPECT_EQ(visible[item], oracle.ItemVisible(item)) << "item " << item;
  }
}

TEST(ServiceBatch, SnapshotRoundTripsWithoutACodec) {
  // The serialized snapshot is self-describing: queries run against the
  // deserialized index with no grammar or codec at hand.
  auto service = MakePaperService();
  auto session = service->GenerateLabeledRun(RunGeneratorOptions{
      .target_items = 200, .seed = 13});
  ProvenanceIndex index = session->Snapshot();

  ProvenanceIndex restored =
      ProvenanceIndex::Deserialize(index.Serialize()).value();
  ASSERT_EQ(restored.num_items(), index.num_items());

  Rng rng(7);
  std::vector<std::pair<int, int>> queries;
  for (int q = 0; q < 200; ++q) {
    queries.push_back({rng.NextInt(0, index.num_items() - 1),
                       rng.NextInt(0, index.num_items() - 1)});
  }
  ViewHandle view = service->default_view();
  EXPECT_EQ(service->DependsMany(view, restored, queries).value(),
            service->DependsMany(view, index, queries).value());
}

TEST(ServiceBatch, ForeignIndexRejected) {
  // A snapshot from a service with a different specification must be turned
  // away (its labels would index out of this service's decoder matrices).
  auto service = MakePaperService();
  auto other = ProvenanceService::Create(MakeBioAid(2012).spec).value();
  ProvenanceIndex foreign =
      other->GenerateLabeledRun(RunGeneratorOptions{.target_items = 50,
                                                    .seed = 5})
          ->Snapshot();
  std::vector<std::pair<int, int>> queries = {{0, 1}};
  EXPECT_EQ(
      service->DependsMany(service->default_view(), foreign, queries).code(),
      ErrorCode::kInvalidArgument);
  EXPECT_EQ(service->VisibilitySweep(service->default_view(), foreign).code(),
            ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace fvl
