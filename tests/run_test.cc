#include <gtest/gtest.h>

#include "fvl/run/provenance_oracle.h"
#include "fvl/run/run.h"
#include "fvl/run/run_generator.h"
#include "fvl/run/view_projection.h"
#include "fvl/workload/paper_example.h"
#include "test_util.h"

namespace fvl {
namespace {

using ::fvl::testing::CompleteRun;

TEST(Run, StartBoundaryItems) {
  PaperExample ex = MakePaperExample();
  ::fvl::Run run(&ex.spec.grammar);
  EXPECT_EQ(run.num_instances(), 1);
  EXPECT_EQ(run.num_items(), 5);  // S has 2 inputs + 3 outputs
  EXPECT_FALSE(run.IsComplete());
  EXPECT_EQ(run.Frontier().size(), 1u);
  for (int item : run.InputItems(0)) {
    EXPECT_TRUE(run.item(item).IsInitialInput());
    EXPECT_EQ(run.item(item).consumer_instance, 0);
  }
  for (int item : run.OutputItems(0)) {
    EXPECT_TRUE(run.item(item).IsFinalOutput());
  }
}

TEST(Run, ApplyCreatesChildrenAndItems) {
  PaperExample ex = MakePaperExample();
  ::fvl::Run run(&ex.spec.grammar);
  const DerivationStep& step = run.Apply(0, ex.p[0]);  // W1: 6 members, 8 edges
  EXPECT_EQ(run.num_instances(), 7);
  EXPECT_EQ(step.num_items, 8);
  EXPECT_EQ(run.num_items(), 13);
  EXPECT_TRUE(run.IsExpanded(0));
  // Frontier now holds the composite children A and C.
  EXPECT_EQ(run.Frontier().size(), 2u);
  // Creation endpoints of a new item: first edge of W1 is a.out0 -> A.in0.
  const DataItem& first = run.item(step.first_item);
  EXPECT_EQ(run.instance(first.producer_instance).type, ex.a);
  EXPECT_EQ(run.instance(first.consumer_instance).type, ex.A);
  EXPECT_EQ(first.producer_port, 0);
  EXPECT_EQ(first.consumer_port, 0);
}

TEST(Run, RewiringPreservesItemIdentity) {
  PaperExample ex = MakePaperExample();
  ::fvl::Run run(&ex.spec.grammar);
  int initial0 = run.InputItems(0)[0];
  const DerivationStep& step = run.Apply(0, ex.p[0]);
  // W1 maps S.in0 to a.in0: the child a received the same item id.
  int child_a = step.first_child + 0;
  EXPECT_EQ(run.InputItems(child_a)[0], initial0);
  // Creation record is untouched (still the start instance).
  EXPECT_EQ(run.item(initial0).consumer_instance, 0);
}

TEST(Run, CompleteRunHasOnlyAtomicInstances) {
  PaperExample ex = MakePaperExample();
  ::fvl::Run run(&ex.spec.grammar);
  CompleteRun(run);
  EXPECT_TRUE(run.IsComplete());
  for (int i = 0; i < run.num_instances(); ++i) {
    if (!run.IsExpanded(i)) {
      EXPECT_FALSE(ex.spec.grammar.is_composite(run.instance(i).type));
    }
  }
}

TEST(MinCompletionItems, PaperExampleCosts) {
  PaperExample ex = MakePaperExample();
  std::vector<int64_t> cost = MinCompletionItems(ex.spec.grammar);
  EXPECT_EQ(cost[ex.a], 0);
  EXPECT_EQ(cost[ex.D], 0);   // D -> W7 = [f], no internal edges
  EXPECT_EQ(cost[ex.E], 2);   // E -> W8 = [f, c], two edges
  EXPECT_EQ(cost[ex.C], 5 + 0 + 2);  // W5's 5 edges + D + E
  EXPECT_GT(cost[ex.S], 0);
}

TEST(RunGenerator, DeterministicForSeed) {
  PaperExample ex = MakePaperExample();
  RunGeneratorOptions options;
  options.target_items = 500;
  options.seed = 99;
  ::fvl::Run run1 = GenerateRandomRun(ex.spec.grammar, options);
  ::fvl::Run run2 = GenerateRandomRun(ex.spec.grammar, options);
  EXPECT_EQ(run1.num_items(), run2.num_items());
  EXPECT_EQ(run1.num_steps(), run2.num_steps());
  for (int s = 0; s < run1.num_steps(); ++s) {
    EXPECT_EQ(run1.step(s).production, run2.step(s).production);
    EXPECT_EQ(run1.step(s).instance, run2.step(s).instance);
  }
}

TEST(RunGenerator, ReachesTargetSize) {
  PaperExample ex = MakePaperExample();
  for (int target : {100, 1000, 4000}) {
    RunGeneratorOptions options;
    options.target_items = target;
    options.seed = 7;
    ::fvl::Run run = GenerateRandomRun(ex.spec.grammar, options);
    EXPECT_TRUE(run.IsComplete());
    EXPECT_GE(run.num_items(), target);
    EXPECT_LE(run.num_items(), target + 200);  // small completion tail
  }
}

TEST(RunGenerator, CallbackSeesEveryStepOnline) {
  PaperExample ex = MakePaperExample();
  RunGeneratorOptions options;
  options.target_items = 200;
  int calls = 0;
  int last_items = -1;
  ::fvl::Run run = GenerateRandomRun(
      ex.spec.grammar, options,
      [&](const ::fvl::Run& current, const DerivationStep* step) {
        if (step == nullptr) {
          EXPECT_EQ(calls, 0);
        } else {
          EXPECT_EQ(step->index, calls - 1);
        }
        EXPECT_GE(current.num_items(), last_items);
        last_items = current.num_items();
        ++calls;
      });
  EXPECT_EQ(calls, run.num_steps() + 1);
}

TEST(ViewProjection, DefaultViewSeesEverything) {
  PaperExample ex = MakePaperExample();
  ::fvl::Run run(&ex.spec.grammar);
  CompleteRun(run);
  auto view = *CompiledView::Compile(ex.spec.grammar, ex.default_view);
  RunProjection projection = ProjectRun(run, view);
  EXPECT_EQ(projection.num_visible_items, run.num_items());
  for (int s = 0; s < run.num_steps(); ++s) {
    EXPECT_TRUE(projection.step_visible[s]);
  }
  // Leaves are exactly the atomic instances.
  for (int leaf : projection.leaves) {
    EXPECT_FALSE(ex.spec.grammar.is_composite(run.instance(leaf).type));
  }
}

TEST(ViewProjection, GreyViewHidesCExpansions) {
  PaperExample ex = MakePaperExample();
  ::fvl::Run run(&ex.spec.grammar);
  CompleteRun(run);
  auto view = *CompiledView::Compile(ex.spec.grammar, ex.grey_view);
  RunProjection projection = ProjectRun(run, view);
  EXPECT_LT(projection.num_visible_items, run.num_items());
  for (int inst = 0; inst < run.num_instances(); ++inst) {
    ModuleId type = run.instance(inst).type;
    if (type == ex.D || type == ex.E || type == ex.f) {
      EXPECT_FALSE(projection.instance_visible[inst]);
    }
    // C instances are visible leaves.
    if (type == ex.C && projection.instance_visible[inst]) {
      bool is_leaf = false;
      for (int leaf : projection.leaves) is_leaf |= leaf == inst;
      EXPECT_TRUE(is_leaf);
    }
  }
}

TEST(ViewProjection, PartialRunLeavesIncludeUnexpandedComposites) {
  PaperExample ex = MakePaperExample();
  ::fvl::Run run(&ex.spec.grammar);
  run.Apply(0, ex.p[0]);  // only S expanded: A and C unexpanded leaves
  auto view = *CompiledView::Compile(ex.spec.grammar, ex.default_view);
  RunProjection projection = ProjectRun(run, view);
  int composite_leaves = 0;
  for (int leaf : projection.leaves) {
    if (ex.spec.grammar.is_composite(run.instance(leaf).type)) {
      ++composite_leaves;
    }
  }
  EXPECT_EQ(composite_leaves, 2);
}

TEST(ProvenanceOracle, SimpleChainGroundTruth) {
  PaperExample ex = MakePaperExample();
  ::fvl::Run run(&ex.spec.grammar);
  const DerivationStep& step = run.Apply(0, ex.p[0]);
  auto view = *CompiledView::Compile(ex.spec.grammar, ex.default_view);
  ProvenanceOracle oracle(run, view);

  // a.out0 -> A.in0 is item first_item; A.out0 -> C.in1 is item
  // first_item+3 (edge order in MakePaperExample); the first depends on the
  // initial input, the second depends on the first through λ*(A).
  int a_to_A = step.first_item + 0;
  int A_to_C = step.first_item + 3;
  int initial0 = run.InputItems(0)[0];
  EXPECT_TRUE(oracle.Depends(initial0, a_to_A));
  EXPECT_TRUE(oracle.Depends(a_to_A, A_to_C));
  EXPECT_FALSE(oracle.Depends(A_to_C, a_to_A));
  // Initial inputs depend on nothing; final outputs feed nothing.
  EXPECT_FALSE(oracle.Depends(a_to_A, initial0));
  int final0 = run.OutputItems(0)[0];
  EXPECT_FALSE(oracle.Depends(final0, a_to_A));
  // Self-dependency conventions (Algorithm 2): an intermediate item reaches
  // itself through its own data edge; Case I makes boundary items depend on
  // nothing / feed nothing.
  EXPECT_TRUE(oracle.Depends(a_to_A, a_to_A));
  EXPECT_FALSE(oracle.Depends(initial0, initial0));
  EXPECT_FALSE(oracle.Depends(final0, final0));
}

}  // namespace
}  // namespace fvl
