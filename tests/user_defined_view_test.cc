// §5 user-defined views: grouping D and E inside W5 into a new module F
// (the paper's Example 18/19), plus decode/visibility behavior against the
// grouped-view oracle.

#include <gtest/gtest.h>

#include "fvl/core/decoder.h"
#include "fvl/service/legacy_facade.h"
#include "fvl/core/visibility.h"
#include "fvl/run/provenance_oracle.h"
#include "fvl/util/random.h"
#include "fvl/workload/bioaid.h"
#include "fvl/workload/paper_example.h"
#include "test_util.h"

namespace fvl {
namespace {

using ::fvl::testing::CompleteRun;
using ::fvl::testing::Mat;

class GroupedViewTest : public ::testing::Test {
 protected:
  GroupedViewTest() : ex_(MakePaperExample()), scheme_(FvlScheme::Create(&ex_.spec).value()) {}

  // Example 18: over the default Δ (all composite modules expandable except
  // that grouped members must not be expandable, so we take
  // Δ' = {S, A, B, C} as the paper does) group W5's members D and E into F.
  GroupedView MakeExample18(BoolMatrix f_deps) {
    View base;
    base.expandable.assign(ex_.spec.grammar.num_modules(), false);
    base.expandable[ex_.S] = true;
    base.expandable[ex_.A] = true;
    base.expandable[ex_.B] = true;
    base.expandable[ex_.C] = true;
    base.perceived = ex_.spec.deps;

    ModuleGroup group;
    group.production = ex_.p[4];      // p5: C -> W5 = [b, D, E, c]
    group.member_positions = {1, 2};  // D and E
    group.name = "F";
    group.perceived_deps = std::move(f_deps);

    auto view = GroupedView::Compile(ex_.spec.grammar, base, {group});
    EXPECT_TRUE(view.has_value()) << view.status().ToString();
    return std::move(*view);
  }

  PaperExample ex_;
  FvlScheme scheme_;
};

TEST_F(GroupedViewTest, BoundaryComputation) {
  GroupBoundary boundary =
      ComputeGroupBoundary(ex_.spec.grammar, ex_.p[4], {1, 2});
  // W5 wiring: b.out0 -> D.in1; D.out0 -> E.in0; D.out1 -> E.in1;
  // E.out0 -> c.in0; E.out1 -> c.in1; initial C.in1 -> D.in0.
  // Boundary inputs: D.in0 (initial) and D.in1 (from b); E's inputs are
  // internal. Boundary outputs: E.out0, E.out1; D's outputs are internal.
  EXPECT_EQ(boundary.inputs,
            (std::vector<PortRef>{{1, 0}, {1, 1}}));
  EXPECT_EQ(boundary.outputs, (std::vector<PortRef>{{2, 0}, {2, 1}}));
  EXPECT_EQ(boundary.internal_edges.size(), 2u);
  EXPECT_TRUE(boundary.in_group[1]);
  EXPECT_TRUE(boundary.in_group[2]);
  EXPECT_FALSE(boundary.in_group[0]);
  EXPECT_FALSE(boundary.in_group[3]);
}

TEST_F(GroupedViewTest, VirtualGrammarShape) {
  GroupedView view = MakeExample18(BoolMatrix::Full(2, 2));
  const Grammar& virtual_grammar = view.virtual_grammar();
  // One extra module F; p5 replaced by C -> W9 plus F -> W10.
  EXPECT_EQ(virtual_grammar.num_modules(),
            ex_.spec.grammar.num_modules() + 1);
  EXPECT_EQ(virtual_grammar.num_productions(),
            ex_.spec.grammar.num_productions() + 1);
  ModuleId f_module = view.VirtualGroupModule(0);
  EXPECT_EQ(virtual_grammar.module(f_module).name, "F");
  EXPECT_EQ(virtual_grammar.module(f_module).num_inputs, 2);
  EXPECT_EQ(virtual_grammar.module(f_module).num_outputs, 2);
  // F's production W10 holds D, E and the two hidden internal edges.
  ASSERT_EQ(virtual_grammar.ProductionsOf(f_module).size(), 1u);
  const Production& w10 =
      virtual_grammar.production(virtual_grammar.ProductionsOf(f_module)[0]);
  EXPECT_EQ(w10.rhs.members, (std::vector<ModuleId>{ex_.D, ex_.E}));
  EXPECT_EQ(w10.rhs.edges.size(), 2u);
  EXPECT_FALSE(virtual_grammar.Validate().has_value());
}

TEST_F(GroupedViewTest, PortVisibility) {
  GroupedView view = MakeExample18(BoolMatrix::Full(2, 2));
  // D's inputs are boundary -> visible; D's outputs are internal -> hidden.
  EXPECT_TRUE(view.InputPortVisible(ex_.p[4], 1, 0));
  EXPECT_TRUE(view.InputPortVisible(ex_.p[4], 1, 1));
  EXPECT_FALSE(view.OutputPortVisible(ex_.p[4], 1, 0));
  EXPECT_FALSE(view.OutputPortVisible(ex_.p[4], 1, 1));
  // E: inputs hidden, outputs visible.
  EXPECT_FALSE(view.InputPortVisible(ex_.p[4], 2, 0));
  EXPECT_TRUE(view.OutputPortVisible(ex_.p[4], 2, 0));
  // Ungrouped members are fully visible.
  EXPECT_TRUE(view.InputPortVisible(ex_.p[4], 0, 0));
  EXPECT_TRUE(view.OutputPortVisible(ex_.p[4], 3, 1));
}

TEST_F(GroupedViewTest, Example19ViewLabelMatrices) {
  // λ'(F) complete: like Example 19, the view label is computed over the
  // original production graph with F's perceived dependencies substituted.
  GroupedView view = MakeExample18(BoolMatrix::Full(2, 2));
  ViewLabel label = scheme_.LabelView(view, ViewLabelMode::kDefault);

  // I(5,2): from C's inputs to D's inputs — both of D's inputs are boundary
  // ports and reachable (C.in1 -> D.in0 initial; C.in0 -> b -> D.in1).
  EXPECT_EQ(*label.I(ex_.p[4], 1), Mat({"01", "10"}));
  // I(5,3): from C's inputs to E's inputs — E's inputs are hidden inside F,
  // so the matrix carries no reachability for them (the paper renders these
  // entries as "undefined"; queries never consult them because the §5
  // visibility check rejects items on hidden ports).
  EXPECT_EQ(*label.I(ex_.p[4], 2), Mat({"00", "00"}));
  // Z(5,2,4): D's outputs are hidden; data leaves the group through E.
  EXPECT_EQ(*label.Z(ex_.p[4], 1, 3), Mat({"00", "00"}));
  // Z(5,3,4): with λ'(F) complete both E outputs reach both c inputs.
  EXPECT_EQ(*label.Z(ex_.p[4], 2, 3), Mat({"10", "01"}));
  // D's productions are not part of the view.
  EXPECT_FALSE(label.I(ex_.p[5], 0).has_value());
  EXPECT_FALSE(label.ProductionActive(ex_.p[5]));
}

TEST_F(GroupedViewTest, DecoderMatchesGroupedOracle) {
  ::fvl::Run run(&ex_.spec.grammar);
  CompleteRun(run);
  RunLabeler labeler = LabelEntireRun(run, scheme_.production_graph());

  for (bool complete : {true, false}) {
    BoolMatrix f_deps =
        complete ? BoolMatrix::Full(2, 2)
                 // White-box group deps (what D;E truly compute); an
                 // arbitrary grey matrix here can break the A<->B
                 // recursion consistency and is correctly rejected.
                 : Mat({"11", "01"});
    GroupedView view = MakeExample18(f_deps);
    ProvenanceOracle oracle(run, view);
    for (ViewLabelMode mode :
         {ViewLabelMode::kSpaceEfficient, ViewLabelMode::kDefault,
          ViewLabelMode::kQueryEfficient}) {
      ViewLabel label = scheme_.LabelView(view, mode);
      Decoder pi(&label);
      // Visibility agrees with the projection.
      for (int item = 0; item < run.num_items(); ++item) {
        ASSERT_EQ(IsItemVisible(labeler.Label(item), label),
                  oracle.ItemVisible(item))
            << "item " << item << " " << labeler.Label(item).ToString();
      }
      // π agrees on every visible pair.
      for (int d1 = 0; d1 < run.num_items(); ++d1) {
        if (!oracle.ItemVisible(d1)) continue;
        for (int d2 = 0; d2 < run.num_items(); ++d2) {
          if (!oracle.ItemVisible(d2)) continue;
          ASSERT_EQ(pi.Depends(labeler.Label(d1), labeler.Label(d2)),
                    oracle.Depends(d1, d2))
              << "complete=" << complete << " mode=" << ToString(mode)
              << " d1=" << d1 << " d2=" << d2;
        }
      }
    }
  }
}

TEST_F(GroupedViewTest, GroupHidesInternalItems) {
  ::fvl::Run run(&ex_.spec.grammar);
  CompleteRun(run);
  GroupedView view = MakeExample18(BoolMatrix::Full(2, 2));
  ProvenanceOracle oracle(run, view);
  // Find a D -> E item (internal to the group): invisible. Its endpoints are
  // the group's hidden ports.
  int hidden_items = 0;
  for (int item = 0; item < run.num_items(); ++item) {
    const DataItem& data = run.item(item);
    if (data.producer_instance == kNoInstance ||
        data.consumer_instance == kNoInstance) {
      continue;
    }
    if (run.instance(data.producer_instance).type == ex_.D &&
        run.instance(data.consumer_instance).type == ex_.E) {
      EXPECT_FALSE(oracle.ItemVisible(item));
      ++hidden_items;
    }
  }
  EXPECT_GT(hidden_items, 0);
}

TEST(GroupedViewBioAid, GroupingAStageDiamond) {
  // §5 at workload scale: group the fan/left/right diamond of a BioAID
  // pipeline stage into one module and verify decode + visibility against
  // the oracle.
  Workload workload = MakeBioAid(2012);
  const Grammar& g = workload.spec.grammar;
  FvlScheme scheme = FvlScheme::Create(&workload.spec).value();

  // Find P3's production and the member positions of its diamond.
  ModuleId p3 = g.FindModule("P3");
  ASSERT_NE(p3, kInvalidModule);
  ASSERT_EQ(g.ProductionsOf(p3).size(), 1u);
  ProductionId production = g.ProductionsOf(p3)[0];
  std::vector<int> positions;
  const SimpleWorkflow& w = g.production(production).rhs;
  for (int pos = 0; pos < w.num_members(); ++pos) {
    const std::string& name = g.module(w.members[pos]).name;
    if (name == "P3_expand" || name == "P3_left" || name == "P3_right" ||
        name == "P3_merge") {
      positions.push_back(pos);
    }
  }
  ASSERT_EQ(positions.size(), 4u);

  View base = MakeDefaultView(workload.spec);
  GroupBoundary boundary = ComputeGroupBoundary(g, production, positions);
  ModuleGroup group;
  group.production = production;
  group.member_positions = positions;
  group.name = "P3_core";
  group.perceived_deps =
      BoolMatrix::Full(static_cast<int>(boundary.inputs.size()),
                       static_cast<int>(boundary.outputs.size()));
  auto view = GroupedView::Compile(g, base, {group});
  ASSERT_TRUE(view.has_value()) << view.status().ToString();

  RunGeneratorOptions options;
  options.target_items = 1500;
  options.seed = 5;
  FvlScheme::LabeledRun labeled = scheme.GenerateLabeledRun(options);
  ProvenanceOracle oracle(labeled.run, *view);
  ViewLabel label = scheme.LabelView(*view, ViewLabelMode::kQueryEfficient);
  Decoder pi(&label);

  int hidden = 0;
  for (int item = 0; item < labeled.run.num_items(); ++item) {
    bool item_visible = IsItemVisible(labeled.labeler.Label(item), label);
    ASSERT_EQ(item_visible, oracle.ItemVisible(item)) << "item " << item;
    hidden += item_visible ? 0 : 1;
  }
  EXPECT_GT(hidden, 0);  // the diamond's internal edges

  Rng rng(9);
  std::vector<int> visible_items;
  for (int item = 0; item < labeled.run.num_items(); ++item) {
    if (oracle.ItemVisible(item)) visible_items.push_back(item);
  }
  for (int q = 0; q < 1500; ++q) {
    int d1 = visible_items[rng.NextBounded(visible_items.size())];
    int d2 = visible_items[rng.NextBounded(visible_items.size())];
    ASSERT_EQ(pi.Depends(labeled.labeler.Label(d1), labeled.labeler.Label(d2)),
              oracle.Depends(d1, d2))
        << "d1=" << d1 << " d2=" << d2;
  }
}

TEST_F(GroupedViewTest, InvalidGroupsRejected) {
  View base;
  base.expandable.assign(ex_.spec.grammar.num_modules(), false);
  base.expandable[ex_.S] = true;
  base.expandable[ex_.A] = true;
  base.expandable[ex_.B] = true;
  base.expandable[ex_.C] = true;
  base.perceived = ex_.spec.deps;

  // Grouping an expandable member is rejected.
  {
    ModuleGroup group;
    group.production = ex_.p[0];  // W1 contains A (expandable)
    group.member_positions = {2};
    group.name = "G";
    group.perceived_deps = BoolMatrix::Full(2, 2);
    Result<GroupedView> view =
        GroupedView::Compile(ex_.spec.grammar, base, {group});
    EXPECT_FALSE(view.has_value());
    EXPECT_EQ(view.code(), ErrorCode::kInvalidGroup);
    EXPECT_NE(view.status().message().find("expandable"), std::string::npos);
  }
  // Grouping the recursion successor is rejected.
  {
    View loop_base = base;
    loop_base.expandable[ex_.C] = false;
    loop_base.expandable[ex_.D] = true;
    // D expandable requires removing it from groups; attempt to group the
    // recursive member D inside its own production p6.
    ModuleGroup group;
    group.production = ex_.p[5];  // W6 = [f, D]
    group.member_positions = {1};
    group.name = "G";
    group.perceived_deps = BoolMatrix::Full(2, 2);
    EXPECT_FALSE(GroupedView::Compile(ex_.spec.grammar, loop_base, {group})
                     .has_value());
  }
  // Wrong perceived-deps shape is rejected.
  {
    ModuleGroup group;
    group.production = ex_.p[4];
    group.member_positions = {1, 2};
    group.name = "F";
    group.perceived_deps = BoolMatrix::Full(3, 2);
    Result<GroupedView> view =
        GroupedView::Compile(ex_.spec.grammar, base, {group});
    EXPECT_FALSE(view.has_value());
    EXPECT_EQ(view.code(), ErrorCode::kInvalidGroup);
    EXPECT_NE(view.status().message().find("shape"), std::string::npos);
  }
}

}  // namespace
}  // namespace fvl
