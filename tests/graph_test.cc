#include <gtest/gtest.h>

#include "fvl/graph/digraph.h"
#include "fvl/graph/reachability.h"
#include "fvl/graph/scc.h"
#include "fvl/util/random.h"

namespace fvl {
namespace {

TEST(Digraph, BasicEdges) {
  Digraph g(3);
  int e0 = g.AddEdge(0, 1);
  int e1 = g.AddEdge(1, 2);
  int e2 = g.AddEdge(0, 1);  // parallel edge
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.OutDegree(0), 2);
  EXPECT_EQ(g.InDegree(1), 2);
  EXPECT_EQ(g.edge(e0).to, 1);
  EXPECT_EQ(g.edge(e1).from, 1);
  EXPECT_NE(e0, e2);
}

TEST(Digraph, SelfLoop) {
  Digraph g(1);
  g.AddEdge(0, 0);
  EXPECT_EQ(g.OutDegree(0), 1);
  EXPECT_EQ(g.InDegree(0), 1);
}

TEST(Scc, Chain) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 3);
  // Reverse topological numbering: edges go from higher to lower ids.
  EXPECT_GT(scc.component[0], scc.component[1]);
  EXPECT_GT(scc.component[1], scc.component[2]);
}

TEST(Scc, Cycle) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(2, 3);
  SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 2);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[1], scc.component[2]);
  EXPECT_NE(scc.component[0], scc.component[3]);
}

TEST(Scc, TwoCyclesSharingNothing) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(2, 3);
  g.AddEdge(3, 2);
  SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 2);
  auto members = scc.Members();
  EXPECT_EQ(members[scc.component[0]].size(), 2u);
  EXPECT_EQ(members[scc.component[2]].size(), 2u);
}

TEST(Scc, MatchesClosureOnRandomGraphs) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    int n = rng.NextInt(2, 12);
    Digraph g(n);
    int edges = rng.NextInt(0, 3 * n);
    for (int e = 0; e < edges; ++e) {
      g.AddEdge(rng.NextInt(0, n - 1), rng.NextInt(0, n - 1));
    }
    SccResult scc = StronglyConnectedComponents(g);
    BoolMatrix closure = TransitiveClosure(g);
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        bool same_component = scc.component[u] == scc.component[v];
        bool mutually_reachable = closure.Get(u, v) && closure.Get(v, u);
        EXPECT_EQ(same_component, mutually_reachable)
            << "trial " << trial << " nodes " << u << "," << v;
      }
    }
  }
}

TEST(Reachability, BfsAndClosure) {
  Digraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  std::vector<bool> from0 = ReachableFrom(g, 0);
  EXPECT_TRUE(from0[0]);  // reflexive
  EXPECT_TRUE(from0[2]);
  EXPECT_FALSE(from0[3]);
  BoolMatrix closure = TransitiveClosure(g);
  EXPECT_TRUE(closure.Get(0, 2));
  EXPECT_TRUE(closure.Get(3, 4));
  EXPECT_FALSE(closure.Get(2, 0));
  for (int v = 0; v < 5; ++v) EXPECT_TRUE(closure.Get(v, v));
}

TEST(Reachability, TopologicalOrderOnDag) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  std::vector<int> order = TopologicalOrder(g);
  ASSERT_EQ(order.size(), 4u);
  std::vector<int> rank(4);
  for (int i = 0; i < 4; ++i) rank[order[i]] = i;
  EXPECT_LT(rank[0], rank[1]);
  EXPECT_LT(rank[0], rank[2]);
  EXPECT_LT(rank[1], rank[3]);
  EXPECT_LT(rank[2], rank[3]);
}

TEST(Reachability, TopologicalOrderRejectsCycle) {
  Digraph g(2);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  EXPECT_TRUE(TopologicalOrder(g).empty());
}

}  // namespace
}  // namespace fvl
