// The shared-arena label store (core/label_store.h): group/span
// bookkeeping, live append vs grouped bulk append, stream growth across
// freezes, and the serialized-format stability that the FVLIDX3/FVLMRG2
// blobs inherit from AppendTail/ParseTail — plus the legacy FVLIDX2 golden
// blob that the version-dispatched parser must keep accepting.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "fvl/core/index.h"
#include "fvl/core/label_store.h"
#include "fvl/service/provenance_service.h"
#include "fvl/util/bitstream.h"
#include "fvl/util/random.h"
#include "fvl/workload/paper_example.h"
#include "test_util.h"

namespace fvl {

// Test-only backdoor for invariants the public API maintains by
// construction: the coverage regression needs a store whose spans do *not*
// cover its streams, which no public path can produce.
class LabelStoreTestPeer {
 public:
  // Appends one raw bit to the long-label arena without accounting for it:
  // arena_covered_bits_ < arena_.size_bits().
  static void UncoverLastArenaBit(LabelStore* store) {
    FVL_CHECK(store->arena_bits() > 0);
    store->arena_.WriteFixed(0, 1);
  }
  // Observability for the inlining split (placement is an internal detail
  // the public accessors deliberately hide).
  static int64_t MetaBits(const LabelStore& store) {
    return store.meta_.size_bits();
  }
  static int64_t LongArenaBits(const LabelStore& store) {
    return store.arena_.size_bits();
  }
};

namespace {

class LabelStoreTest : public ::testing::Test {
 protected:
  LabelStoreTest()
      : service_(ProvenanceService::Create(MakePaperExample().spec).value()),
        codec_(LabelCodec(service_->production_graph())) {}

  // A deterministic labeled session of `target` items.
  std::shared_ptr<ProvenanceSession> Session(int target, uint64_t seed) {
    return service_->GenerateLabeledRun(
        RunGeneratorOptions{.target_items = target, .seed = seed});
  }

  std::shared_ptr<ProvenanceService> service_;
  LabelCodec codec_;
};

TEST_F(LabelStoreTest, EmptyStoreAndEmptyGroups) {
  LabelStore store(codec_);
  EXPECT_EQ(store.num_groups(), 0);
  EXPECT_EQ(store.total_items(), 0);
  EXPECT_EQ(store.arena_bits(), 0);

  // Groups may be empty (a run frozen before producing anything); flat ids
  // skip them.
  store.BeginGroup();
  store.BeginGroup();
  EXPECT_EQ(store.num_groups(), 2);
  EXPECT_EQ(store.num_items(0), 0);
  EXPECT_EQ(store.num_items(1), 0);
  EXPECT_EQ(store.total_items(), 0);
}

TEST_F(LabelStoreTest, SingleItemGroupsRoundTrip) {
  auto session = Session(30, 3);
  LabelStore store(codec_);
  // One group per item: the degenerate grouping still addresses correctly.
  for (int item = 0; item < 5; ++item) {
    store.BeginGroup();
    store.Append(session->Label(item));
  }
  EXPECT_EQ(store.num_groups(), 5);
  EXPECT_EQ(store.total_items(), 5);
  for (int item = 0; item < 5; ++item) {
    EXPECT_EQ(store.num_items(item), 1);
    EXPECT_EQ(store.GlobalId(item, 0), item);
    EXPECT_EQ(store.GroupOf(item), item);
    EXPECT_EQ(store.DecodeLabel(item), session->Label(item));
    EXPECT_EQ(store.LabelBits(item), session->LabelBits(item));
  }
}

TEST_F(LabelStoreTest, GroupOfSkipsEmptyGroups) {
  auto session = Session(30, 4);
  LabelStore store(codec_);
  store.BeginGroup();  // group 0: 1 item
  store.Append(session->Label(0));
  store.BeginGroup();  // group 1: empty
  store.BeginGroup();  // group 2: 2 items
  store.Append(session->Label(1));
  store.Append(session->Label(2));
  ASSERT_EQ(store.total_items(), 3);
  EXPECT_EQ(store.GroupOf(0), 0);
  EXPECT_EQ(store.GroupOf(1), 2);
  EXPECT_EQ(store.GroupOf(2), 2);
  EXPECT_EQ(store.GlobalId(2, 1), 2);
}

TEST_F(LabelStoreTest, ArenaGrowsAcrossFreezes) {
  // A session's live store keeps growing after a snapshot froze a prefix;
  // the frozen copy is immutable and bit-stable while the arena grows.
  auto session = service_->BeginRun();
  auto apply_some = [&](int steps) {
    for (int s = 0; s < steps && !session->complete(); ++s) {
      const ::fvl::Run& run = session->run();
      ASSERT_FALSE(run.Frontier().empty());
      int instance = run.Frontier().front();
      ModuleId type = run.instance(instance).type;
      for (ProductionId p = 0; p < service_->grammar().num_productions();
           ++p) {
        if (service_->grammar().production(p).lhs == type) {
          ASSERT_TRUE(session->Apply(instance, p).ok());
          break;
        }
      }
    }
  };

  apply_some(2);
  ProvenanceIndex first = session->Snapshot();
  std::string first_blob = first.Serialize();
  int64_t first_bits = session->labeler().store().arena_bits();
  ASSERT_GT(first_bits, 0);

  apply_some(4);
  ProvenanceIndex second = session->Snapshot();
  EXPECT_GE(session->labeler().store().arena_bits(), first_bits);
  EXPECT_GE(second.num_items(), first.num_items());

  // The first freeze is unaffected by later growth, and the live prefix
  // still matches it bit for bit.
  EXPECT_EQ(first.Serialize(), first_blob);
  for (int item = 0; item < first.num_items(); ++item) {
    EXPECT_EQ(first.Label(item), session->Label(item)) << "item " << item;
    EXPECT_EQ(first.LabelBits(item), session->LabelBits(item));
  }
  EXPECT_EQ(second.num_items(), session->num_items());
}

TEST_F(LabelStoreTest, AppendGroupsMatchesPerLabelAppend) {
  // The bulk path (one arena copy + offset rebasing) must produce exactly
  // the store that per-label appends produce.
  auto a = Session(40, 7);
  auto b = Session(25, 8);

  LabelStore bulk(codec_);
  ASSERT_TRUE(bulk.AppendGroups(a->labeler().store()).ok());
  ASSERT_TRUE(bulk.AppendGroups(b->labeler().store()).ok());

  LabelStore manual(codec_);
  manual.BeginGroup();
  for (int item = 0; item < a->num_items(); ++item) {
    manual.Append(a->Label(item));
  }
  manual.BeginGroup();
  for (int item = 0; item < b->num_items(); ++item) {
    manual.Append(b->Label(item));
  }

  ASSERT_EQ(bulk.num_groups(), 2);
  ASSERT_EQ(bulk.total_items(), manual.total_items());
  EXPECT_EQ(bulk.arena_bits(), manual.arena_bits());
  for (int global = 0; global < bulk.total_items(); ++global) {
    EXPECT_EQ(bulk.DecodeLabel(global), manual.DecodeLabel(global));
    EXPECT_EQ(bulk.LabelBits(global), manual.LabelBits(global));
  }
  std::string bulk_tail, manual_tail;
  bulk.AppendTail(&bulk_tail);
  manual.AppendTail(&manual_tail);
  EXPECT_EQ(bulk_tail, manual_tail);
}

// Grouped bulk appends rebase the span streams by bit-copy plus skip-table
// fixups — never re-encoding or re-homing a label. That only stays correct
// if inlined short labels (which live in the length/meta stream, not the
// arena) survive rebasing, so this test demands that the inputs actually
// exercise inlining, then checks the bulk merge against a per-label rebuild
// and the materialized Merge artifact.
TEST_F(LabelStoreTest, AppendGroupsRebasesInlinedLabels) {
  auto a = Session(40, 21);
  auto b = Session(40, 22);
  const LabelStore& store_a = a->labeler().store();
  const LabelStore& store_b = b->labeler().store();
  ASSERT_GT(store_a.inline_items(), 0) << "run too long to exercise inlining";
  ASSERT_GT(store_b.inline_items(), 0);
  ASSERT_LT(store_a.inline_items(), store_a.total_items())
      << "run too short to exercise the long-label arena";

  LabelStore bulk(codec_);
  ASSERT_TRUE(bulk.AppendGroups(store_a).ok());
  ASSERT_TRUE(bulk.AppendGroups(store_b).ok());
  EXPECT_EQ(bulk.inline_items(),
            store_a.inline_items() + store_b.inline_items());

  LabelStore manual(codec_);
  manual.BeginGroup();
  for (int item = 0; item < a->num_items(); ++item) {
    manual.Append(a->Label(item));
  }
  manual.BeginGroup();
  for (int item = 0; item < b->num_items(); ++item) {
    manual.Append(b->Label(item));
  }
  for (int global = 0; global < bulk.total_items(); ++global) {
    ASSERT_EQ(bulk.DecodeLabel(global), manual.DecodeLabel(global));
  }
  std::string bulk_tail, manual_tail;
  bulk.AppendTail(&bulk_tail);
  manual.AppendTail(&manual_tail);
  EXPECT_EQ(bulk_tail, manual_tail);

  // The same rebase through the public Merge entry point is bit-identical,
  // serialization included.
  std::vector<ProvenanceIndex> runs;
  runs.push_back(a->Snapshot());
  runs.push_back(b->Snapshot());
  MergedProvenanceIndex merged = ProvenanceIndex::Merge(runs).value();
  EXPECT_EQ(merged.store().inline_items(), bulk.inline_items());
  std::string merged_tail;
  merged.store().AppendTail(&merged_tail);
  EXPECT_EQ(merged_tail, bulk_tail);
}

TEST_F(LabelStoreTest, TailRoundTripsThroughParseTail) {
  auto session = Session(60, 9);
  const LabelStore& store = session->labeler().store();
  std::string tail;
  store.AppendTail(&tail);

  size_t pos = 0;
  Result<LabelStore> parsed = LabelStore::ParseTail(
      tail, &pos, {0, store.total_items()},
      static_cast<uint64_t>(store.arena_bits()),
      LabelStore::kTailFormatVersion);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(pos, tail.size());
  ASSERT_EQ(parsed->total_items(), store.total_items());
  for (int item = 0; item < store.total_items(); ++item) {
    EXPECT_EQ(parsed->DecodeLabel(item), store.DecodeLabel(item));
  }
  // Re-serialization is bit-identical.
  std::string reserialized;
  parsed->AppendTail(&reserialized);
  EXPECT_EQ(reserialized, tail);

  // Truncation at every strict prefix fails cleanly.
  for (size_t cut = 0; cut < tail.size(); cut += 7) {
    size_t p = 0;
    EXPECT_EQ(LabelStore::ParseTail(tail.substr(0, cut), &p,
                                    {0, store.total_items()},
                                    static_cast<uint64_t>(store.arena_bits()),
                                    LabelStore::kTailFormatVersion)
                  .code(),
              ErrorCode::kMalformedBlob)
        << "cut=" << cut;
  }
}

// Hand-crafted v2 tails probing the span-stream edge cases a random flip
// rarely lands on: sub-presence lengths, bases past the arena, inline
// payloads missing from the stream, long labels with an empty arena, and
// both trailing-bits checks. Every one is a recoverable kMalformedBlob.
TEST_F(LabelStoreTest, ParseTailRejectsCraftedV2EdgeCases) {
  auto craft = [&](const BitWriter& span, const BitWriter& payload) {
    std::string tail;
    for (int width : {codec_.production_bits, codec_.position_bits,
                      codec_.cycle_bits, codec_.start_bits,
                      codec_.port_bits}) {
      tail.push_back(static_cast<char>(width));
    }
    tail.push_back(static_cast<char>(LabelStore::kTailFormatVersion));
    LabelStore::AppendU64(&tail, static_cast<uint64_t>(span.size_bits()));
    for (uint64_t word : span.words()) LabelStore::AppendU64(&tail, word);
    LabelStore::AppendU64(&tail, static_cast<uint64_t>(payload.size_bits()));
    for (uint64_t word : payload.words()) LabelStore::AppendU64(&tail, word);
    return tail;
  };
  auto expect_reject = [&](const std::string& tail, uint64_t arena_bits,
                           int64_t items, const std::string& want) {
    size_t pos = 0;
    Result<LabelStore> parsed = LabelStore::ParseTail(
        tail, &pos, {0, items}, arena_bits, LabelStore::kTailFormatVersion);
    ASSERT_FALSE(parsed.ok()) << want;
    EXPECT_EQ(parsed.code(), ErrorCode::kMalformedBlob);
    EXPECT_EQ(parsed.status().message(), want);
  };

  // A 1-bit label cannot hold its two presence bits.
  {
    BitWriter span;
    span.WriteVByte(1);
    span.WriteFixed(0, 6);
    expect_reject(craft(span, BitWriter()), /*arena_bits=*/1, /*items=*/1,
                  "label shorter than its presence bits");
  }
  // Block base length larger than the whole arena.
  {
    BitWriter span;
    span.WriteVByte(100);
    span.WriteFixed(0, 6);
    expect_reject(craft(span, BitWriter()), 4, 1,
                  "label lengths exceed the arena");
  }
  // Inline-length label whose payload bits are missing from the stream.
  {
    BitWriter span;
    span.WriteVByte(8);
    span.WriteFixed(0, 6);
    expect_reject(craft(span, BitWriter()), 8, 1, "truncated span stream");
  }
  // A label past the inline threshold with an empty long-label arena.
  {
    const uint64_t long_len =
        static_cast<uint64_t>(LabelStore::InlineThresholdBits(codec_)) + 1;
    BitWriter span;
    span.WriteVByte(long_len);
    span.WriteFixed(0, 6);
    expect_reject(craft(span, BitWriter()), long_len, 1,
                  "truncated label arena");
  }
  // Lengths that under-cover the claimed arena.
  {
    BitWriter span;
    span.WriteVByte(2);
    span.WriteFixed(0, 6);
    span.WriteFixed(0, 2);  // the inline 2-bit (empty) label
    expect_reject(craft(span, BitWriter()), 5, 1,
                  "label lengths do not cover the arena");
  }
  // Unaccounted bits after the final block.
  {
    BitWriter span;
    span.WriteVByte(2);
    span.WriteFixed(0, 6);
    span.WriteFixed(0, 2);
    span.WriteFixed(0, 5);  // trailing garbage
    expect_reject(craft(span, BitWriter()), 2, 1,
                  "span stream has trailing bits");
  }
  // Unconsumed long-label payload bits.
  {
    BitWriter span;
    span.WriteVByte(2);
    span.WriteFixed(0, 6);
    span.WriteFixed(0, 2);
    BitWriter payload;
    payload.WriteFixed(0, 3);
    expect_reject(craft(span, payload), 2, 1,
                  "label arena has trailing bits");
  }
}

// Seeded byte flips over a real v2 tail, through ParseTail directly: every
// mutant either parses (and then every label decodes — the parser
// validated the spans) or comes back kMalformedBlob. Fatal under
// ASan/UBSan if any path over-reads or aborts.
TEST_F(LabelStoreTest, ParseTailSeededByteFlipsNeverAbort) {
  auto session = Session(120, 13);
  const LabelStore& store = session->labeler().store();
  std::string tail;
  store.AppendTail(&tail);

  Rng rng(2024);
  int accepted = 0, rejected = 0;
  for (int round = 0; round < 600; ++round) {
    std::string mutant = tail;
    int flips = 1 + rng.NextInt(0, 2);
    for (int f = 0; f < flips; ++f) {
      size_t at = static_cast<size_t>(
          rng.NextInt(0, static_cast<int>(mutant.size()) - 1));
      mutant[at] = static_cast<char>(rng.NextInt(0, 255));
    }
    size_t pos = 0;
    Result<LabelStore> parsed = LabelStore::ParseTail(
        mutant, &pos, {0, store.total_items()},
        static_cast<uint64_t>(store.arena_bits()),
        LabelStore::kTailFormatVersion);
    if (parsed.ok()) {
      ++accepted;
      for (int item = 0; item < parsed->total_items(); ++item) {
        (void)parsed->DecodeLabel(item);
      }
    } else {
      ++rejected;
      EXPECT_EQ(parsed.code(), ErrorCode::kMalformedBlob);
    }
  }
  // The corpus must actually exercise the reject paths (and typically a
  // few same-bits accepts when a flip lands in dead padding).
  EXPECT_GT(rejected, 100);
  EXPECT_EQ(accepted + rejected, 600);
}

// A store whose offsets do not cover its arena would, if bulk-appended,
// graft the uncovered bits onto the next span and silently corrupt every
// rebased offset. The guard must hold in *release* builds too (it used to
// be a debug-only FVL_DCHECK), surfacing as a recoverable error at the
// merge entry points rather than corrupting or aborting.
TEST_F(LabelStoreTest, UncoveredArenaIsARecoverableAppendError) {
  auto session = Session(30, 11);
  LabelStore corrupt = session->labeler().store();  // covered copy
  LabelStoreTestPeer::UncoverLastArenaBit(&corrupt);

  LabelStore out(codec_);
  Status groups = out.AppendGroups(corrupt);
  ASSERT_FALSE(groups.ok());
  EXPECT_EQ(groups.code(), ErrorCode::kInvalidArgument);
  out.BeginGroup();
  Status items = out.AppendItems(corrupt);
  ASSERT_FALSE(items.ok());
  EXPECT_EQ(items.code(), ErrorCode::kInvalidArgument);
  // The failed appends left the destination untouched and usable.
  EXPECT_EQ(out.total_items(), 0);
  EXPECT_EQ(out.arena_bits(), 0);
  ASSERT_TRUE(out.AppendItems(session->labeler().store()).ok());
  EXPECT_EQ(out.total_items(), session->num_items());

  // The same violation surfaces recoverably from Merge and FromDeltas.
  std::vector<ProvenanceIndex> runs;
  runs.push_back(ProvenanceIndex(corrupt));
  EXPECT_EQ(ProvenanceIndex::Merge(runs).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(ProvenanceIndex::FromDeltas(runs).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(LabelStoreTest, AppendItemsMatchesPerLabelAppend) {
  // The single-group bulk path (FromDeltas' building block) must produce
  // exactly the store that per-label appends produce.
  auto a = Session(40, 12);
  auto b = Session(25, 13);

  LabelStore bulk(codec_);
  bulk.BeginGroup();
  ASSERT_TRUE(bulk.AppendItems(a->labeler().store()).ok());
  ASSERT_TRUE(bulk.AppendItems(b->labeler().store()).ok());

  LabelStore manual(codec_);
  manual.BeginGroup();
  for (int item = 0; item < a->num_items(); ++item) {
    manual.Append(a->Label(item));
  }
  for (int item = 0; item < b->num_items(); ++item) {
    manual.Append(b->Label(item));
  }

  ASSERT_EQ(bulk.num_groups(), 1);
  ASSERT_EQ(bulk.total_items(), manual.total_items());
  std::string bulk_tail, manual_tail;
  bulk.AppendTail(&bulk_tail);
  manual.AppendTail(&manual_tail);
  EXPECT_EQ(bulk_tail, manual_tail);
}

TEST_F(LabelStoreTest, ExtractDeltaPartitionsTheArena) {
  auto session = Session(60, 14);
  const LabelStore& source = session->labeler().store();

  // Rebuild the session's store live, extracting deltas at uneven points.
  LabelStore live(codec_);
  live.BeginGroup();
  std::vector<LabelStore> deltas;
  const int cuts[] = {1, 7, 8, 23, source.total_items()};
  int appended = 0;
  for (int cut : cuts) {
    for (; appended < cut; ++appended) live.Append(session->Label(appended));
    EXPECT_EQ(live.watermark_items(), deltas.empty() ? 0 : cuts[deltas.size() - 1]);
    deltas.push_back(live.ExtractDelta());
    EXPECT_EQ(live.watermark_items(), cut);
  }

  // Each delta holds exactly its range, rebased to bit 0.
  int base = 0;
  for (size_t d = 0; d < deltas.size(); ++d) {
    ASSERT_EQ(deltas[d].num_groups(), 1);
    ASSERT_EQ(deltas[d].total_items(), cuts[d] - base);
    for (int item = 0; item < deltas[d].total_items(); ++item) {
      EXPECT_EQ(deltas[d].DecodeLabel(item), session->Label(base + item))
          << "delta " << d << " item " << item;
      EXPECT_EQ(deltas[d].LabelBits(item), session->LabelBits(base + item));
    }
    base = cuts[d];
  }

  // Extracting with nothing new yields an empty delta and moves nothing.
  LabelStore empty_delta = live.ExtractDelta();
  EXPECT_EQ(empty_delta.total_items(), 0);
  EXPECT_EQ(empty_delta.arena_bits(), 0);
  EXPECT_EQ(live.watermark_items(), source.total_items());

  // Concatenating the deltas reproduces the source store's tail bit for
  // bit — the property FromDeltas' golden reassembly rests on.
  LabelStore rebuilt(codec_);
  rebuilt.BeginGroup();
  for (const LabelStore& delta : deltas) {
    ASSERT_TRUE(rebuilt.AppendItems(delta).ok());
  }
  std::string rebuilt_tail, source_tail;
  rebuilt.AppendTail(&rebuilt_tail);
  source.AppendTail(&source_tail);
  EXPECT_EQ(rebuilt_tail, source_tail);
}

TEST_F(LabelStoreTest, StoreCountProbeTracksLifetimes) {
  const int base = internal::StoreCountProbe::live();
  internal::StoreCountProbe::ResetPeak();
  EXPECT_EQ(internal::StoreCountProbe::peak(), base);
  {
    LabelStore a(codec_);
    EXPECT_EQ(internal::StoreCountProbe::live(), base + 1);
    LabelStore b = a;  // copies count
    EXPECT_EQ(internal::StoreCountProbe::live(), base + 2);
    LabelStore c = std::move(b);  // moved-from stores still exist
    EXPECT_EQ(internal::StoreCountProbe::live(), base + 3);
    EXPECT_EQ(internal::StoreCountProbe::peak(), base + 3);
  }
  EXPECT_EQ(internal::StoreCountProbe::live(), base);
  EXPECT_EQ(internal::StoreCountProbe::peak(), base + 3);
}

std::string ToHex(std::string_view bytes) {
  constexpr char kDigits[] = "0123456789abcdef";
  std::string hex;
  for (unsigned char c : bytes) {
    hex.push_back(kDigits[c >> 4]);
    hex.push_back(kDigits[c & 0xF]);
  }
  return hex;
}

std::string FromHex(std::string_view hex) {
  auto nibble = [](char c) -> unsigned {
    return c <= '9' ? static_cast<unsigned>(c - '0')
                    : static_cast<unsigned>(c - 'a') + 10;
  };
  std::string bytes;
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    bytes.push_back(
        static_cast<char>((nibble(hex[i]) << 4) | nibble(hex[i + 1])));
  }
  return bytes;
}

// The serialized layout is a compatibility contract: this FVLIDX3 blob was
// pinned when the block-compressed span tail landed (tail-format version 2)
// for a fixed 8-item paper-example run, and the pipeline must keep emitting
// it byte for byte. If the format ever changes deliberately, bump the magic
// and LabelStore::kTailFormatVersion, re-pin, and add a docs/MIGRATION.md
// entry instead of editing the constant in place.
TEST_F(LabelStoreTest, SerializedFormatIsStable) {
  constexpr char kGoldenHex[] =
      "46564c49445833001c00000000000000b003000000000000030301010202b701000000"
      "000000050660000714a00155bb0018946817208332eb822018da0d4a044bbb41998058"
      "170c01b32e5882625d40046d84619865e7791cc7ef334d00af020000000000001b9422"
      "204a13505284c0986d024a8a318b504c4049316613aa09282942211c135052844ab8a6"
      "a0a4a0e4401ea6a0a4a0e4489e164c088cd916cc98452816cc984da8164c288463c184"
      "4ab8360c2507f2b061283992270000";

  auto session = Session(8, 1);
  EXPECT_EQ(ToHex(session->Snapshot().Serialize()), kGoldenHex);
}

// Blobs written before the span-compressed tail (magic FVLIDX2, flat
// fixed-width offsets) must keep deserializing: this golden was emitted by
// the PR-3 serializer for the same fixed 8-item paper-example run pinned
// above, and the version-dispatched ParseTail must decode it to the exact
// labels the modern pipeline assigns that run. Re-serializing the parsed
// index upgrades it to the current format.
TEST_F(LabelStoreTest, LegacyV1GoldenBlobStillDeserializes) {
  constexpr char kV1GoldenHex[] =
      "46564c49445832001c00000000000000b00300000000000003030101020a0500000000"
      "0000000528f0000519e070851c91c0b28c3901a5e4d564c8e5a7a2989a0aabaec4366b"
      "5d38ec00000000000f00000000000000c695562f000625172083b20b8260dca044b06e"
      "502620170c01bb6009ca0544d0362845409426a0a4088131db0494146316a19880926"
      "2cc265413505284423826a0a40895704d414941c9813c4c414941c9913c2d981018b3"
      "2d98318b502c98319b502d985008c7820995706d184a0ee461c35072244f0000";

  Result<ProvenanceIndex> restored =
      ProvenanceIndex::Deserialize(FromHex(kV1GoldenHex));
  ASSERT_TRUE(restored.ok()) << restored.status().message();

  auto session = Session(8, 1);
  ASSERT_EQ(restored->num_items(), session->num_items());
  for (int item = 0; item < restored->num_items(); ++item) {
    EXPECT_EQ(restored->Label(item), session->Label(item)) << "item " << item;
    EXPECT_EQ(restored->LabelBits(item), session->LabelBits(item));
  }
  // Round-tripping through the legacy parser loses nothing: re-serializing
  // yields the same modern blob a fresh snapshot produces.
  EXPECT_EQ(restored->Serialize(), session->Snapshot().Serialize());
}

}  // namespace
}  // namespace fvl
