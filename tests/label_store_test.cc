// The shared-arena label store (core/label_store.h): group/offset
// bookkeeping, live append vs grouped bulk append, arena growth across
// freezes, and the serialized-format stability that the FVLIDX2/FVLMRG1
// blobs inherit from AppendTail/ParseTail.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "fvl/core/index.h"
#include "fvl/core/label_store.h"
#include "fvl/service/provenance_service.h"
#include "fvl/workload/paper_example.h"
#include "test_util.h"

namespace fvl {

// Test-only backdoor for invariants the public API maintains by
// construction: the coverage regression needs a store whose offsets do
// *not* cover its arena, which no public path can produce.
class LabelStoreTestPeer {
 public:
  // Uncovers the final arena bit: offsets_.back() < arena_bits().
  static void UncoverLastArenaBit(LabelStore* store) {
    FVL_CHECK(store->arena_bits() > 0);
    for (auto& offset : store->offsets_) {
      if (offset == store->arena_bits()) --offset;
    }
  }
};

namespace {

class LabelStoreTest : public ::testing::Test {
 protected:
  LabelStoreTest()
      : service_(ProvenanceService::Create(MakePaperExample().spec).value()),
        codec_(LabelCodec(service_->production_graph())) {}

  // A deterministic labeled session of `target` items.
  std::shared_ptr<ProvenanceSession> Session(int target, uint64_t seed) {
    return service_->GenerateLabeledRun(
        RunGeneratorOptions{.target_items = target, .seed = seed});
  }

  std::shared_ptr<ProvenanceService> service_;
  LabelCodec codec_;
};

TEST_F(LabelStoreTest, EmptyStoreAndEmptyGroups) {
  LabelStore store(codec_);
  EXPECT_EQ(store.num_groups(), 0);
  EXPECT_EQ(store.total_items(), 0);
  EXPECT_EQ(store.arena_bits(), 0);

  // Groups may be empty (a run frozen before producing anything); flat ids
  // skip them.
  store.BeginGroup();
  store.BeginGroup();
  EXPECT_EQ(store.num_groups(), 2);
  EXPECT_EQ(store.num_items(0), 0);
  EXPECT_EQ(store.num_items(1), 0);
  EXPECT_EQ(store.total_items(), 0);
}

TEST_F(LabelStoreTest, SingleItemGroupsRoundTrip) {
  auto session = Session(30, 3);
  LabelStore store(codec_);
  // One group per item: the degenerate grouping still addresses correctly.
  for (int item = 0; item < 5; ++item) {
    store.BeginGroup();
    store.Append(session->Label(item));
  }
  EXPECT_EQ(store.num_groups(), 5);
  EXPECT_EQ(store.total_items(), 5);
  for (int item = 0; item < 5; ++item) {
    EXPECT_EQ(store.num_items(item), 1);
    EXPECT_EQ(store.GlobalId(item, 0), item);
    EXPECT_EQ(store.GroupOf(item), item);
    EXPECT_EQ(store.DecodeLabel(item), session->Label(item));
    EXPECT_EQ(store.LabelBits(item), session->LabelBits(item));
  }
}

TEST_F(LabelStoreTest, GroupOfSkipsEmptyGroups) {
  auto session = Session(30, 4);
  LabelStore store(codec_);
  store.BeginGroup();  // group 0: 1 item
  store.Append(session->Label(0));
  store.BeginGroup();  // group 1: empty
  store.BeginGroup();  // group 2: 2 items
  store.Append(session->Label(1));
  store.Append(session->Label(2));
  ASSERT_EQ(store.total_items(), 3);
  EXPECT_EQ(store.GroupOf(0), 0);
  EXPECT_EQ(store.GroupOf(1), 2);
  EXPECT_EQ(store.GroupOf(2), 2);
  EXPECT_EQ(store.GlobalId(2, 1), 2);
}

TEST_F(LabelStoreTest, ArenaGrowsAcrossFreezes) {
  // A session's live store keeps growing after a snapshot froze a prefix;
  // the frozen copy is immutable and bit-stable while the arena grows.
  auto session = service_->BeginRun();
  auto apply_some = [&](int steps) {
    for (int s = 0; s < steps && !session->complete(); ++s) {
      const ::fvl::Run& run = session->run();
      ASSERT_FALSE(run.Frontier().empty());
      int instance = run.Frontier().front();
      ModuleId type = run.instance(instance).type;
      for (ProductionId p = 0; p < service_->grammar().num_productions();
           ++p) {
        if (service_->grammar().production(p).lhs == type) {
          ASSERT_TRUE(session->Apply(instance, p).ok());
          break;
        }
      }
    }
  };

  apply_some(2);
  ProvenanceIndex first = session->Snapshot();
  std::string first_blob = first.Serialize();
  int64_t first_bits = session->labeler().store().arena_bits();
  ASSERT_GT(first_bits, 0);

  apply_some(4);
  ProvenanceIndex second = session->Snapshot();
  EXPECT_GE(session->labeler().store().arena_bits(), first_bits);
  EXPECT_GE(second.num_items(), first.num_items());

  // The first freeze is unaffected by later growth, and the live prefix
  // still matches it bit for bit.
  EXPECT_EQ(first.Serialize(), first_blob);
  for (int item = 0; item < first.num_items(); ++item) {
    EXPECT_EQ(first.Label(item), session->Label(item)) << "item " << item;
    EXPECT_EQ(first.LabelBits(item), session->LabelBits(item));
  }
  EXPECT_EQ(second.num_items(), session->num_items());
}

TEST_F(LabelStoreTest, AppendGroupsMatchesPerLabelAppend) {
  // The bulk path (one arena copy + offset rebasing) must produce exactly
  // the store that per-label appends produce.
  auto a = Session(40, 7);
  auto b = Session(25, 8);

  LabelStore bulk(codec_);
  ASSERT_TRUE(bulk.AppendGroups(a->labeler().store()).ok());
  ASSERT_TRUE(bulk.AppendGroups(b->labeler().store()).ok());

  LabelStore manual(codec_);
  manual.BeginGroup();
  for (int item = 0; item < a->num_items(); ++item) {
    manual.Append(a->Label(item));
  }
  manual.BeginGroup();
  for (int item = 0; item < b->num_items(); ++item) {
    manual.Append(b->Label(item));
  }

  ASSERT_EQ(bulk.num_groups(), 2);
  ASSERT_EQ(bulk.total_items(), manual.total_items());
  EXPECT_EQ(bulk.arena_bits(), manual.arena_bits());
  for (int global = 0; global < bulk.total_items(); ++global) {
    EXPECT_EQ(bulk.DecodeLabel(global), manual.DecodeLabel(global));
    EXPECT_EQ(bulk.LabelBits(global), manual.LabelBits(global));
  }
  std::string bulk_tail, manual_tail;
  bulk.AppendTail(&bulk_tail);
  manual.AppendTail(&manual_tail);
  EXPECT_EQ(bulk_tail, manual_tail);
}

TEST_F(LabelStoreTest, TailRoundTripsThroughParseTail) {
  auto session = Session(60, 9);
  const LabelStore& store = session->labeler().store();
  std::string tail;
  store.AppendTail(&tail);

  size_t pos = 0;
  Result<LabelStore> parsed = LabelStore::ParseTail(
      tail, &pos, {0, store.total_items()},
      static_cast<uint64_t>(store.arena_bits()));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(pos, tail.size());
  ASSERT_EQ(parsed->total_items(), store.total_items());
  for (int item = 0; item < store.total_items(); ++item) {
    EXPECT_EQ(parsed->DecodeLabel(item), store.DecodeLabel(item));
  }
  // Re-serialization is bit-identical.
  std::string reserialized;
  parsed->AppendTail(&reserialized);
  EXPECT_EQ(reserialized, tail);

  // Truncation at every strict prefix fails cleanly.
  for (size_t cut = 0; cut < tail.size(); cut += 7) {
    size_t p = 0;
    EXPECT_EQ(LabelStore::ParseTail(tail.substr(0, cut), &p,
                                    {0, store.total_items()},
                                    static_cast<uint64_t>(store.arena_bits()))
                  .code(),
              ErrorCode::kMalformedBlob)
        << "cut=" << cut;
  }
}

// A store whose offsets do not cover its arena would, if bulk-appended,
// graft the uncovered bits onto the next span and silently corrupt every
// rebased offset. The guard must hold in *release* builds too (it used to
// be a debug-only FVL_DCHECK), surfacing as a recoverable error at the
// merge entry points rather than corrupting or aborting.
TEST_F(LabelStoreTest, UncoveredArenaIsARecoverableAppendError) {
  auto session = Session(30, 11);
  LabelStore corrupt = session->labeler().store();  // covered copy
  LabelStoreTestPeer::UncoverLastArenaBit(&corrupt);

  LabelStore out(codec_);
  Status groups = out.AppendGroups(corrupt);
  ASSERT_FALSE(groups.ok());
  EXPECT_EQ(groups.code(), ErrorCode::kInvalidArgument);
  out.BeginGroup();
  Status items = out.AppendItems(corrupt);
  ASSERT_FALSE(items.ok());
  EXPECT_EQ(items.code(), ErrorCode::kInvalidArgument);
  // The failed appends left the destination untouched and usable.
  EXPECT_EQ(out.total_items(), 0);
  EXPECT_EQ(out.arena_bits(), 0);
  ASSERT_TRUE(out.AppendItems(session->labeler().store()).ok());
  EXPECT_EQ(out.total_items(), session->num_items());

  // The same violation surfaces recoverably from Merge and FromDeltas.
  std::vector<ProvenanceIndex> runs;
  runs.push_back(ProvenanceIndex(corrupt));
  EXPECT_EQ(ProvenanceIndex::Merge(runs).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(ProvenanceIndex::FromDeltas(runs).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(LabelStoreTest, AppendItemsMatchesPerLabelAppend) {
  // The single-group bulk path (FromDeltas' building block) must produce
  // exactly the store that per-label appends produce.
  auto a = Session(40, 12);
  auto b = Session(25, 13);

  LabelStore bulk(codec_);
  bulk.BeginGroup();
  ASSERT_TRUE(bulk.AppendItems(a->labeler().store()).ok());
  ASSERT_TRUE(bulk.AppendItems(b->labeler().store()).ok());

  LabelStore manual(codec_);
  manual.BeginGroup();
  for (int item = 0; item < a->num_items(); ++item) {
    manual.Append(a->Label(item));
  }
  for (int item = 0; item < b->num_items(); ++item) {
    manual.Append(b->Label(item));
  }

  ASSERT_EQ(bulk.num_groups(), 1);
  ASSERT_EQ(bulk.total_items(), manual.total_items());
  std::string bulk_tail, manual_tail;
  bulk.AppendTail(&bulk_tail);
  manual.AppendTail(&manual_tail);
  EXPECT_EQ(bulk_tail, manual_tail);
}

TEST_F(LabelStoreTest, ExtractDeltaPartitionsTheArena) {
  auto session = Session(60, 14);
  const LabelStore& source = session->labeler().store();

  // Rebuild the session's store live, extracting deltas at uneven points.
  LabelStore live(codec_);
  live.BeginGroup();
  std::vector<LabelStore> deltas;
  const int cuts[] = {1, 7, 8, 23, source.total_items()};
  int appended = 0;
  for (int cut : cuts) {
    for (; appended < cut; ++appended) live.Append(session->Label(appended));
    EXPECT_EQ(live.watermark_items(), deltas.empty() ? 0 : cuts[deltas.size() - 1]);
    deltas.push_back(live.ExtractDelta());
    EXPECT_EQ(live.watermark_items(), cut);
  }

  // Each delta holds exactly its range, rebased to bit 0.
  int base = 0;
  for (size_t d = 0; d < deltas.size(); ++d) {
    ASSERT_EQ(deltas[d].num_groups(), 1);
    ASSERT_EQ(deltas[d].total_items(), cuts[d] - base);
    for (int item = 0; item < deltas[d].total_items(); ++item) {
      EXPECT_EQ(deltas[d].DecodeLabel(item), session->Label(base + item))
          << "delta " << d << " item " << item;
      EXPECT_EQ(deltas[d].LabelBits(item), session->LabelBits(base + item));
    }
    base = cuts[d];
  }

  // Extracting with nothing new yields an empty delta and moves nothing.
  LabelStore empty_delta = live.ExtractDelta();
  EXPECT_EQ(empty_delta.total_items(), 0);
  EXPECT_EQ(empty_delta.arena_bits(), 0);
  EXPECT_EQ(live.watermark_items(), source.total_items());

  // Concatenating the deltas reproduces the source store's tail bit for
  // bit — the property FromDeltas' golden reassembly rests on.
  LabelStore rebuilt(codec_);
  rebuilt.BeginGroup();
  for (const LabelStore& delta : deltas) {
    ASSERT_TRUE(rebuilt.AppendItems(delta).ok());
  }
  std::string rebuilt_tail, source_tail;
  rebuilt.AppendTail(&rebuilt_tail);
  source.AppendTail(&source_tail);
  EXPECT_EQ(rebuilt_tail, source_tail);
}

TEST_F(LabelStoreTest, StoreCountProbeTracksLifetimes) {
  const int base = internal::StoreCountProbe::live();
  internal::StoreCountProbe::ResetPeak();
  EXPECT_EQ(internal::StoreCountProbe::peak(), base);
  {
    LabelStore a(codec_);
    EXPECT_EQ(internal::StoreCountProbe::live(), base + 1);
    LabelStore b = a;  // copies count
    EXPECT_EQ(internal::StoreCountProbe::live(), base + 2);
    LabelStore c = std::move(b);  // moved-from stores still exist
    EXPECT_EQ(internal::StoreCountProbe::live(), base + 3);
    EXPECT_EQ(internal::StoreCountProbe::peak(), base + 3);
  }
  EXPECT_EQ(internal::StoreCountProbe::live(), base);
  EXPECT_EQ(internal::StoreCountProbe::peak(), base + 3);
}

// The serialized layout is a compatibility contract: this blob was produced
// by the pre-LabelStore serializer (PR 3) for a fixed 8-item paper-example
// run, and the refactored pipeline must keep emitting it byte for byte. If
// the format ever changes deliberately, bump the magic and add a
// docs/MIGRATION.md entry instead of editing the constant.
TEST_F(LabelStoreTest, SerializedFormatIsStable) {
  constexpr char kGoldenHex[] =
      "46564c49445832001c00000000000000b00300000000000003030101020a0500000000"
      "0000000528f0000519e070851c91c0b28c3901a5e4d564c8e5a7a2989a0aabaec4366b"
      "5d38ec00000000000f00000000000000c695562f000625172083b20b8260dca044b06e"
      "502620170c01bb6009ca0544d0362845409426a0a4088131db0494146316a19880926"
      "2cc265413505284423826a0a40895704d414941c9813c4c414941c9913c2d981018b3"
      "2d98318b502c98319b502d985008c7820995706d184a0ee461c35072244f0000";

  auto session = Session(8, 1);
  std::string blob = session->Snapshot().Serialize();
  std::string hex;
  for (unsigned char c : blob) {
    constexpr char kDigits[] = "0123456789abcdef";
    hex.push_back(kDigits[c >> 4]);
    hex.push_back(kDigits[c & 0xF]);
  }
  EXPECT_EQ(hex, kGoldenHex);
}

}  // namespace
}  // namespace fvl
