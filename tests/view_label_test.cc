#include <gtest/gtest.h>

#include "fvl/service/legacy_facade.h"
#include "fvl/core/view_label.h"
#include "fvl/workload/bioaid.h"
#include "fvl/workload/paper_example.h"
#include "fvl/workload/view_generator.h"
#include "test_util.h"

namespace fvl {
namespace {

class ViewLabelTest : public ::testing::Test {
 protected:
  ViewLabelTest()
      : ex_(MakePaperExample()),
        scheme_(FvlScheme::Create(&ex_.spec).value()),
        u1_(CompiledView::Compile(ex_.spec.grammar, ex_.default_view)
                .value()),
        u2_(CompiledView::Compile(ex_.spec.grammar, ex_.grey_view).value()) {}

  PaperExample ex_;
  FvlScheme scheme_;
  CompiledView u1_, u2_;
};

TEST_F(ViewLabelTest, VariantsAgreeOnAllFunctions) {
  for (const auto* view : {&u1_, &u2_}) {
    ViewLabel se = scheme_.LabelView(*view, ViewLabelMode::kSpaceEfficient);
    ViewLabel def = scheme_.LabelView(*view, ViewLabelMode::kDefault);
    ViewLabel qe = scheme_.LabelView(*view, ViewLabelMode::kQueryEfficient);
    const Grammar& g = ex_.spec.grammar;
    for (ProductionId k = 0; k < g.num_productions(); ++k) {
      int members = g.production(k).rhs.num_members();
      for (int pos = 0; pos < members; ++pos) {
        auto i_se = se.I(k, pos);
        auto i_def = def.I(k, pos);
        auto i_qe = qe.I(k, pos);
        ASSERT_EQ(i_se.has_value(), i_def.has_value());
        ASSERT_EQ(i_se.has_value(), i_qe.has_value());
        if (i_se.has_value()) {
          ASSERT_EQ(*i_se, *i_def) << "I(" << k << "," << pos << ")";
          ASSERT_EQ(*i_se, *i_qe);
          ASSERT_EQ(*se.O(k, pos), *def.O(k, pos));
          ASSERT_EQ(*se.O(k, pos), *qe.O(k, pos));
        }
        for (int j = 0; j < members; ++j) {
          auto z_se = se.Z(k, pos, j);
          auto z_def = def.Z(k, pos, j);
          if (z_se.has_value() && z_def.has_value()) {
            ASSERT_EQ(*z_se, *z_def) << "Z(" << k << "," << pos << "," << j
                                     << ")";
          }
        }
      }
    }
  }
}

TEST_F(ViewLabelTest, WalksAgreeAcrossVariantsAndIterations) {
  ViewLabel se = scheme_.LabelView(u1_, ViewLabelMode::kSpaceEfficient);
  ViewLabel def = scheme_.LabelView(u1_, ViewLabelMode::kDefault);
  ViewLabel qe = scheme_.LabelView(u1_, ViewLabelMode::kQueryEfficient);
  const ProductionGraph& pg = scheme_.production_graph();
  for (int s = 0; s < pg.num_cycles(); ++s) {
    for (int t = 0; t < pg.cycle(s).length(); ++t) {
      for (int iteration : {1, 2, 3, 5, 9, 40, 1000}) {
        auto a = se.InputsWalk(s, t, iteration);
        auto b = def.InputsWalk(s, t, iteration);
        auto c = qe.InputsWalk(s, t, iteration);
        ASSERT_TRUE(a.has_value() && b.has_value() && c.has_value());
        ASSERT_EQ(*a, *b) << "s=" << s << " t=" << t << " i=" << iteration;
        ASSERT_EQ(*a, *c);
        auto oa = se.OutputsWalk(s, t, iteration);
        auto ob = def.OutputsWalk(s, t, iteration);
        auto oc = qe.OutputsWalk(s, t, iteration);
        ASSERT_EQ(*oa, *ob);
        ASSERT_EQ(*oa, *oc);
      }
    }
  }
}

TEST_F(ViewLabelTest, SizeOrderingAcrossVariants) {
  ViewLabel se = scheme_.LabelView(u1_, ViewLabelMode::kSpaceEfficient);
  ViewLabel def = scheme_.LabelView(u1_, ViewLabelMode::kDefault);
  ViewLabel qe = scheme_.LabelView(u1_, ViewLabelMode::kQueryEfficient);
  EXPECT_LT(se.SizeBits(), def.SizeBits());
  EXPECT_LT(def.SizeBits(), qe.SizeBits());
}

TEST_F(ViewLabelTest, InactiveProductionsUndefined) {
  ViewLabel label = scheme_.LabelView(u2_, ViewLabelMode::kDefault);
  // p5..p8 are inactive in U2.
  for (int k = 4; k < 8; ++k) {
    EXPECT_FALSE(label.ProductionActive(ex_.p[k]));
    EXPECT_FALSE(label.I(ex_.p[k], 0).has_value());
    EXPECT_FALSE(label.O(ex_.p[k], 0).has_value());
    EXPECT_FALSE(label.Z(ex_.p[k], 0, 1).has_value());
  }
  // Cycle 1 (the D self-loop) is severed: its walk is undefined beyond the
  // first member.
  EXPECT_FALSE(label.InputsWalk(1, 0, 2).has_value());
  // ...but the trivial walk (identity) is still defined.
  EXPECT_TRUE(label.InputsWalk(1, 0, 1).has_value());
}

TEST_F(ViewLabelTest, ZIsEmptyForNonAscendingPairs) {
  ViewLabel label = scheme_.LabelView(u1_, ViewLabelMode::kDefault);
  auto z = label.Z(ex_.p[0], 3, 1);  // C before b? no: i=3 >= j=1
  ASSERT_TRUE(z.has_value());
  EXPECT_TRUE(z->IsZero());
  auto z_self = label.Z(ex_.p[0], 2, 2);
  ASSERT_TRUE(z_self.has_value());
  EXPECT_TRUE(z_self->IsZero());
}

TEST(ViewLabelSizes, PaperFig19ShapeOnBioAid) {
  // Fig. 19's qualitative shape: SE ≪ Default ≤ QE, and label size grows
  // with the view size.
  Workload workload = MakeBioAid(2012);
  FvlScheme scheme = FvlScheme::Create(&workload.spec).value();
  int64_t previous_default = 0;
  for (int size : {2, 8, 16}) {
    ViewGeneratorOptions options;
    options.num_expandable = size;
    options.seed = size;
    CompiledView view = GenerateSafeView(workload, options);
    int64_t se =
        scheme.LabelView(view, ViewLabelMode::kSpaceEfficient).SizeBits();
    int64_t def = scheme.LabelView(view, ViewLabelMode::kDefault).SizeBits();
    int64_t qe =
        scheme.LabelView(view, ViewLabelMode::kQueryEfficient).SizeBits();
    EXPECT_LT(se, def);
    EXPECT_LE(def, qe);
    EXPECT_GT(def, previous_default);
    previous_default = def;
  }
}

}  // namespace
}  // namespace fvl
