// fvl::net::ProvenanceServer: wire answers are bit-equal to direct
// in-process ProvenanceService calls. N threaded clients replay one
// recorded derivation over loopback and every response — apply echoes,
// snapshot shapes, point/batch/sweep/cross-run answers in all three
// ViewLabelModes — must match the reference computed without the network.
// Deterministic replay (same (instance, production) sequence → identical
// item ids) is what makes the comparison exact. Also under test: the
// cross-connection coalescing batcher (mean batch size > 1 under
// concurrent pipelined load), abrupt disconnects mid-frame, and
// drain-on-shutdown (no torn frames, only clean answers or kUnavailable).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fvl/net/client.h"
#include "fvl/net/server.h"
#include "fvl/net/socket.h"
#include "fvl/net/wire.h"
#include "fvl/service/provenance_service.h"
#include "fvl/util/random.h"
#include "fvl/workload/bioaid.h"
#include "fvl/workload/view_generator.h"

namespace fvl::net {
namespace {

constexpr ViewLabelMode kAllModes[] = {ViewLabelMode::kDefault,
                                       ViewLabelMode::kSpaceEfficient,
                                       ViewLabelMode::kQueryEfficient};

struct TestRig {
  std::shared_ptr<ProvenanceService> service;
  std::unique_ptr<ProvenanceServer> server;
  View view;

  static TestRig Make() {
    TestRig rig;
    Workload bio = MakeBioAid(2012);
    rig.view = GenerateSafeView(bio, ViewGeneratorOptions{
                                           .num_expandable = 8, .seed = 8})
                   .view();
    rig.service = ProvenanceService::Create(std::move(bio.spec)).value();
    rig.server = ProvenanceServer::Start(rig.service).value();
    return rig;
  }
};

// The recorded op sequence: (instance, production) per step, taken from a
// deterministic generated run.
std::vector<std::pair<int, int>> RecordOpSequence(ProvenanceService& service,
                                                  int target_items, int seed) {
  auto session = service.GenerateLabeledRun(
      RunGeneratorOptions{.target_items = target_items,
                          .seed = static_cast<uint64_t>(seed)});
  std::vector<std::pair<int, int>> ops;
  ops.reserve(session->run().num_steps());
  for (int i = 0; i < session->run().num_steps(); ++i) {
    const DerivationStep& step = session->run().step(i);
    ops.push_back({step.instance, step.production});
  }
  return ops;
}

std::vector<std::pair<int, int>> RandomQueries(int num_items, int count,
                                               uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<int, int>> queries;
  queries.reserve(count);
  for (int q = 0; q < count; ++q) {
    queries.push_back(
        {rng.NextInt(0, num_items - 1), rng.NextInt(0, num_items - 1)});
  }
  return queries;
}

// ----- Single-client differential: every op, every mode. -----

TEST(ServerDifferential, WireAnswersBitEqualToDirectCalls) {
  TestRig rig = TestRig::Make();
  std::vector<std::pair<int, int>> ops =
      RecordOpSequence(*rig.service, /*target_items=*/400, /*seed=*/17);

  // Reference: direct in-process replay on the same service.
  ViewHandle direct_view = rig.service->RegisterView(rig.view).value();
  auto direct_session = rig.service->BeginRun();
  std::vector<DerivationStep> direct_steps;
  for (const auto& [instance, production] : ops) {
    direct_steps.push_back(
        direct_session->Apply(instance, production).value());
  }
  ProvenanceIndex direct_index = direct_session->Snapshot();

  // Wire: same replay through the server.
  ProvenanceClient client =
      ProvenanceClient::Connect(rig.server->port()).value();
  uint64_t view_id = client.RegisterView(rig.view).value();
  uint64_t session_id = client.BeginRun().value();
  for (size_t i = 0; i < ops.size(); ++i) {
    DerivationStep wire_step =
        client.Apply(session_id, ops[i].first, ops[i].second).value();
    const DerivationStep& want = direct_steps[i];
    ASSERT_EQ(wire_step.index, want.index) << "step " << i;
    ASSERT_EQ(wire_step.instance, want.instance) << "step " << i;
    ASSERT_EQ(wire_step.production, want.production) << "step " << i;
    ASSERT_EQ(wire_step.first_child, want.first_child) << "step " << i;
    ASSERT_EQ(wire_step.first_item, want.first_item) << "step " << i;
    ASSERT_EQ(wire_step.num_items, want.num_items) << "step " << i;
  }
  SnapshotInfo snapshot = client.Snapshot(session_id).value();
  ASSERT_EQ(snapshot.num_items, direct_index.num_items());

  std::vector<std::pair<int, int>> queries =
      RandomQueries(direct_index.num_items(), 600, 99);
  for (ViewLabelMode mode : kAllModes) {
    std::vector<bool> direct_batch =
        rig.service->DependsMany(direct_view, direct_index, queries, mode)
            .value();
    std::vector<bool> wire_batch =
        client.DependsMany(view_id, snapshot.index_id, mode, queries).value();
    ASSERT_EQ(wire_batch, direct_batch) << "mode " << static_cast<int>(mode);

    std::vector<bool> direct_sweep =
        rig.service->VisibilitySweep(direct_view, direct_index, mode).value();
    std::vector<bool> wire_sweep =
        client.VisibilitySweep(view_id, snapshot.index_id, mode).value();
    ASSERT_EQ(wire_sweep, direct_sweep) << "mode " << static_cast<int>(mode);

    // Point queries through the coalescing path answer identically too.
    for (int q = 0; q < 40; ++q) {
      EXPECT_EQ(client
                    .Depends(view_id, snapshot.index_id, mode,
                             queries[q].first, queries[q].second)
                    .value(),
                direct_batch[q])
          << "q " << q;
    }
  }
}

TEST(ServerDifferential, MergeAndQueryAcrossRunsMatchesDirect) {
  TestRig rig = TestRig::Make();
  ProvenanceClient client =
      ProvenanceClient::Connect(rig.server->port()).value();
  uint64_t view_id = client.RegisterView(rig.view).value();
  ViewHandle direct_view = rig.service->RegisterView(rig.view).value();

  // Two runs, both replayed over the wire and directly.
  std::vector<uint64_t> wire_index_ids;
  std::vector<std::string> blobs;
  std::vector<int> run_sizes;
  for (int seed : {21, 22}) {
    std::vector<std::pair<int, int>> ops =
        RecordOpSequence(*rig.service, /*target_items=*/200, seed);
    uint64_t session_id = client.BeginRun().value();
    auto direct_session = rig.service->BeginRun();
    for (const auto& [instance, production] : ops) {
      ASSERT_TRUE(client.Apply(session_id, instance, production).ok());
      ASSERT_TRUE(direct_session->Apply(instance, production).ok());
    }
    SnapshotInfo snapshot = client.Snapshot(session_id).value();
    wire_index_ids.push_back(snapshot.index_id);
    ProvenanceIndex direct_index = direct_session->Snapshot();
    ASSERT_EQ(snapshot.num_items, direct_index.num_items());
    run_sizes.push_back(direct_index.num_items());
    blobs.push_back(direct_index.Serialize());
  }

  MergeInfo merged = client.MergeRuns(wire_index_ids).value();
  EXPECT_EQ(merged.num_runs, 2);
  std::vector<std::string_view> views(blobs.begin(), blobs.end());
  MergedProvenanceIndex direct_merged =
      rig.service->MergeRunsStreamed(views).value();
  ASSERT_EQ(merged.total_items, direct_merged.total_items());

  Rng rng(7);
  std::vector<std::pair<RunItem, RunItem>> queries;
  for (int q = 0; q < 300; ++q) {
    RunItem a{rng.NextInt(0, 1), 0};
    RunItem b{rng.NextInt(0, 1), 0};
    a.item = rng.NextInt(0, run_sizes[a.run] - 1);
    b.item = rng.NextInt(0, run_sizes[b.run] - 1);
    queries.push_back({a, b});
  }
  for (ViewLabelMode mode : kAllModes) {
    std::vector<bool> direct_answers =
        rig.service
            ->QueryAcrossRuns(direct_view, direct_merged, queries, mode)
            .value();
    std::vector<bool> wire_answers =
        client.QueryAcrossRuns(view_id, merged.merged_id, mode, queries)
            .value();
    ASSERT_EQ(wire_answers, direct_answers)
        << "mode " << static_cast<int>(mode);
  }
}

// ----- N threaded clients, one recorded sequence each. -----

TEST(ServerConcurrency, ThreadedClientsReplayBitEqual) {
  TestRig rig = TestRig::Make();
  std::vector<std::pair<int, int>> ops =
      RecordOpSequence(*rig.service, /*target_items=*/250, /*seed=*/5);

  // Reference answers, computed once without the network.
  ViewHandle direct_view = rig.service->RegisterView(rig.view).value();
  auto direct_session = rig.service->BeginRun();
  for (const auto& [instance, production] : ops) {
    ASSERT_TRUE(direct_session->Apply(instance, production).ok());
  }
  ProvenanceIndex direct_index = direct_session->Snapshot();
  std::vector<std::pair<int, int>> queries =
      RandomQueries(direct_index.num_items(), 256, 321);
  std::vector<bool> want =
      rig.service
          ->DependsMany(direct_view, direct_index,
                        queries, ViewLabelMode::kQueryEfficient)
          .value();

  constexpr int kClients = 6;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto fail = [&](const char* what) {
        ADD_FAILURE() << "client " << c << ": " << what;
        failures.fetch_add(1);
      };
      Result<ProvenanceClient> client =
          ProvenanceClient::Connect(rig.server->port());
      if (!client.ok()) return fail("connect");
      Result<uint64_t> view_id = client->RegisterView(rig.view);
      if (!view_id.ok()) return fail("register view");
      Result<uint64_t> session_id = client->BeginRun();
      if (!session_id.ok()) return fail("begin run");
      for (const auto& [instance, production] : ops) {
        if (!client->Apply(*session_id, instance, production).ok()) {
          return fail("apply");
        }
      }
      Result<SnapshotInfo> snapshot = client->Snapshot(*session_id);
      if (!snapshot.ok()) return fail("snapshot");
      if (snapshot->num_items != direct_index.num_items()) {
        return fail("snapshot size");
      }
      // Pipelined point queries: the burst is what the batcher coalesces.
      for (const auto& [d1, d2] : queries) {
        client->QueueDepends(*view_id, snapshot->index_id,
                             ViewLabelMode::kQueryEfficient, d1, d2);
      }
      if (!client->Flush().ok()) return fail("flush");
      for (size_t q = 0; q < queries.size(); ++q) {
        Result<bool> answer = client->NextDependsAnswer();
        if (!answer.ok()) return fail("answer transport");
        if (*answer != want[q]) return fail("answer mismatch");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  // All clients registered the structurally same view and replayed the
  // same derivation; the coalescing lever must have engaged.
  ServerStats stats = rig.server->stats();
  EXPECT_EQ(stats.point_queries, uint64_t{kClients} * queries.size());
  EXPECT_GT(stats.MeanBatchSize(), 1.0)
      << "batcher never coalesced: " << stats.point_queries << " queries in "
      << stats.point_batches << " batches";
  EXPECT_EQ(stats.connections, kClients);
}

// ----- Lifecycle hostility. -----

TEST(ServerLifecycle, AbruptDisconnectMidFrameIsHarmless) {
  TestRig rig = TestRig::Make();
  for (int round = 0; round < 8; ++round) {
    Socket raw = TcpConnect(rig.server->port()).value();
    // A declared 64-byte frame, delivered only halfway, then gone.
    std::string partial;
    AppendU64(&partial, 64);
    partial.append(17, '\x2a');
    ASSERT_TRUE(WriteAll(raw, partial).ok());
    raw.Close();
  }
  ProvenanceClient client =
      ProvenanceClient::Connect(rig.server->port()).value();
  EXPECT_EQ(client.Ping().value(), kProtocolVersion);
}

TEST(ServerLifecycle, StopDrainsInFlightRequests) {
  TestRig rig = TestRig::Make();
  // Hammer the server from several threads while Stop races in: every
  // response is either a clean answer or a clean transport error — a torn
  // frame or a wrong answer fails, a refused/cut connection does not.
  constexpr int kThreads = 4;
  std::atomic<bool> torn{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Result<ProvenanceClient> client =
          ProvenanceClient::Connect(rig.server->port());
      if (!client.ok()) return;
      for (int i = 0; i < 100000; ++i) {
        Result<uint64_t> version = client->Ping();
        if (!version.ok()) {
          if (version.code() != ErrorCode::kUnavailable) torn = true;
          return;  // drain reached this connection
        }
        if (*version != kProtocolVersion) torn = true;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  rig.server->Stop();  // must not hang: drain completes with clients active
  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(torn.load());

  // Stop is idempotent, and a stopped server refuses new conversations.
  rig.server->Stop();
  Result<ProvenanceClient> late = ProvenanceClient::Connect(rig.server->port());
  if (late.ok()) {
    EXPECT_EQ(late->Ping().code(), ErrorCode::kUnavailable);
  }
}

TEST(ServerLifecycle, UnknownIdsAreNotFoundNotFatal) {
  TestRig rig = TestRig::Make();
  ProvenanceClient client =
      ProvenanceClient::Connect(rig.server->port()).value();
  EXPECT_EQ(client.Apply(999, 0, 0).code(), ErrorCode::kNotFound);
  EXPECT_EQ(client.Snapshot(999).code(), ErrorCode::kNotFound);
  EXPECT_EQ(client
                .Depends(999, 999, ViewLabelMode::kDefault, 0, 0)
                .code(),
            ErrorCode::kNotFound);
  std::vector<uint64_t> ids = {12345};
  EXPECT_EQ(client.MergeRuns(ids).code(), ErrorCode::kNotFound);
  // The connection survived every rejection.
  EXPECT_EQ(client.Ping().value(), kProtocolVersion);
}

}  // namespace
}  // namespace fvl::net
