// End-to-end verification of the paper's running example (Figures 2–5,
// Examples 3–19). Where the paper's figures fully determine an artifact
// (production positions, cycle index, label paths, the I(1,5) matrices of
// Example 16) we assert it verbatim; where port arities were chosen by us
// (docs/DESIGN.md §8) we assert the corresponding semantic property instead.

#include <gtest/gtest.h>

#include "fvl/core/decoder.h"
#include "fvl/core/run_labeler.h"
#include "fvl/service/legacy_facade.h"
#include "fvl/core/view_label.h"
#include "fvl/core/visibility.h"
#include "fvl/run/provenance_oracle.h"
#include "fvl/workflow/properness.h"
#include "fvl/workflow/recursion_analysis.h"
#include "fvl/workflow/safety.h"
#include "fvl/workload/paper_example.h"
#include "test_util.h"

namespace fvl {
namespace {

using ::fvl::testing::CompleteRun;
using ::fvl::testing::Mat;

class PaperExampleTest : public ::testing::Test {
 protected:
  PaperExampleTest() : ex_(MakePaperExample()), scheme_(FvlScheme::Create(&ex_.spec).value()) {}

  // Derives the Figure-3 run prefix: p1, p2, p4, p2, p4, p3, then expands
  // C:4 (p5), its D-loop (p6, p6, p7) and E (p8); finally completes the
  // remaining composite instances (C:1, C:2, C:3 and their children).
  struct Fig3Run {
    ::fvl::Run run;  // qualified: ::testing::Test has a private Run() member
    RunLabeler labeler;
    int A1, B1, A2, B2, A3, C4, D1, D2, D3, E1, b2;
    int d21;  // the Example-15 data item: b:2.out1(paper) -> D:1's 2nd input
  };

  Fig3Run DeriveFig3() {
    ::fvl::Run run(&ex_.spec.grammar);
    RunLabeler labeler = scheme_.MakeRunLabeler();
    labeler.OnStart(run);
    auto apply = [&](int instance, ProductionId production) {
      const DerivationStep& step = run.Apply(instance, production);
      labeler.OnApply(run, step);
      return step;
    };
    const DerivationStep& s1 = apply(run.start_instance(), ex_.p[0]);  // p1
    int A1 = s1.first_child + 2;  // W1 = [a, b, A, C, c, d]
    const DerivationStep& s2 = apply(A1, ex_.p[1]);  // p2: [d, B, C]
    int B1 = s2.first_child + 1;
    const DerivationStep& s3 = apply(B1, ex_.p[3]);  // p4: [e, A]
    int A2 = s3.first_child + 1;
    const DerivationStep& s4 = apply(A2, ex_.p[1]);
    int B2 = s4.first_child + 1;
    const DerivationStep& s5 = apply(B2, ex_.p[3]);
    int A3 = s5.first_child + 1;
    const DerivationStep& s6 = apply(A3, ex_.p[2]);  // p3: [e, C]
    int C4 = s6.first_child + 1;
    const DerivationStep& s7 = apply(C4, ex_.p[4]);  // p5: [b, D, E, c]
    int b2 = s7.first_child + 0;
    int D1 = s7.first_child + 1;
    int E1 = s7.first_child + 2;
    int d21 = s7.first_item + 0;  // first edge of W5: b.out0 -> D.in1
    const DerivationStep& s8 = apply(D1, ex_.p[5]);  // p6: [f, D]
    int D2 = s8.first_child + 1;
    const DerivationStep& s9 = apply(D2, ex_.p[5]);
    int D3 = s9.first_child + 1;
    apply(D3, ex_.p[6]);  // p7
    apply(E1, ex_.p[7]);  // p8
    while (!run.IsComplete()) {
      int inst = run.Frontier().front();
      ModuleId type = run.instance(inst).type;
      // Complete with base productions: A->p3, B->p4, C->p5, D->p7, E->p8.
      ProductionId k;
      if (type == ex_.A) {
        k = ex_.p[2];
      } else if (type == ex_.B) {
        k = ex_.p[3];
      } else if (type == ex_.C) {
        k = ex_.p[4];
      } else if (type == ex_.D) {
        k = ex_.p[6];
      } else {
        EXPECT_EQ(type, ex_.E) << "unexpected frontier type";
        k = ex_.p[7];
      }
      apply(inst, k);
    }
    return {std::move(run), std::move(labeler), A1,  B1, A2, B2,
            A3,             C4,                 D1,  D2, D3, E1,
            b2,             d21};
  }

  PaperExample ex_;
  FvlScheme scheme_;
};

// ----- Grammar shape (Figure 2, Example 5). -----

TEST_F(PaperExampleTest, GrammarShape) {
  const Grammar& g = ex_.spec.grammar;
  EXPECT_EQ(g.num_modules(), 12);
  EXPECT_EQ(g.num_productions(), 8);
  EXPECT_EQ(g.CompositeModules().size(), 6u);
  EXPECT_EQ(g.start(), ex_.S);
  EXPECT_FALSE(ex_.spec.Validate().has_value());
  // Production member lists recovered from Figures 13/14.
  auto members = [&](int k) { return g.production(ex_.p[k]).rhs.members; };
  EXPECT_EQ(members(0),
            (std::vector<ModuleId>{ex_.a, ex_.b, ex_.A, ex_.C, ex_.c, ex_.d}));
  EXPECT_EQ(members(1), (std::vector<ModuleId>{ex_.d, ex_.B, ex_.C}));
  EXPECT_EQ(members(2), (std::vector<ModuleId>{ex_.e, ex_.C}));
  EXPECT_EQ(members(3), (std::vector<ModuleId>{ex_.e, ex_.A}));
  EXPECT_EQ(members(4), (std::vector<ModuleId>{ex_.b, ex_.D, ex_.E, ex_.c}));
  EXPECT_EQ(members(5), (std::vector<ModuleId>{ex_.f, ex_.D}));
  EXPECT_EQ(members(6), (std::vector<ModuleId>{ex_.f}));
  EXPECT_EQ(members(7), (std::vector<ModuleId>{ex_.f, ex_.c}));
}

TEST_F(PaperExampleTest, GrammarIsProper) {
  PropernessReport report = AnalyzeProperness(ex_.spec.grammar);
  EXPECT_TRUE(report.IsProper(ex_.spec.grammar)) << report.Describe(ex_.spec.grammar);
}

// ----- Production graph and cycle index (Example 12, Figure 12). -----

TEST_F(PaperExampleTest, ProductionGraphEdgesAndCycles) {
  const ProductionGraph& pg = scheme_.production_graph();
  EXPECT_TRUE(pg.strictly_linear());
  ASSERT_EQ(pg.num_cycles(), 2);
  // C(1) = {(2,2), (4,2)} — paper is 1-based, we are 0-based.
  const auto& c1 = pg.cycle(0);
  ASSERT_EQ(c1.length(), 2);
  EXPECT_EQ(c1.edges[0], (PgEdge{ex_.p[1], 1}));
  EXPECT_EQ(c1.edges[1], (PgEdge{ex_.p[3], 1}));
  EXPECT_EQ(c1.members, (std::vector<ModuleId>{ex_.A, ex_.B}));
  // C(2) = {(6,2)}.
  const auto& c2 = pg.cycle(1);
  ASSERT_EQ(c2.length(), 1);
  EXPECT_EQ(c2.edges[0], (PgEdge{ex_.p[5], 1}));
  // Recursive modules: A, B, D only.
  EXPECT_TRUE(pg.IsRecursive(ex_.A));
  EXPECT_TRUE(pg.IsRecursive(ex_.B));
  EXPECT_TRUE(pg.IsRecursive(ex_.D));
  EXPECT_FALSE(pg.IsRecursive(ex_.S));
  EXPECT_FALSE(pg.IsRecursive(ex_.C));
  EXPECT_FALSE(pg.IsRecursive(ex_.E));
  // Start indices: A is the first member of its cycle, B the second.
  EXPECT_EQ(pg.CycleStartIndex(ex_.A), 0);
  EXPECT_EQ(pg.CycleStartIndex(ex_.B), 1);
  EXPECT_EQ(pg.CycleStartIndex(ex_.D), 0);
  // Edge (1,5): S -> c (Example 12): production p1 position 4 targets c.
  EXPECT_EQ(pg.EdgeTarget({ex_.p[0], 4}), ex_.c);
  EXPECT_EQ(pg.EdgeSource({ex_.p[0], 4}), ex_.S);
  // Reachability in P(G).
  EXPECT_TRUE(pg.Reaches(ex_.S, ex_.f));
  EXPECT_TRUE(pg.Reaches(ex_.A, ex_.B));
  EXPECT_TRUE(pg.Reaches(ex_.B, ex_.A));
  EXPECT_FALSE(pg.Reaches(ex_.C, ex_.A));
}

TEST_F(PaperExampleTest, RecursionAnalysis) {
  const ProductionGraph& pg = scheme_.production_graph();
  EXPECT_TRUE(IsLinearRecursive(pg));
  EXPECT_TRUE(IsStrictlyLinearRecursive(pg));
  EXPECT_TRUE(IsStrictlyLinearRecursivePaperAlgorithm(pg));
  EXPECT_TRUE(pg.IsRecursiveGrammar());
}

// ----- Safety and the full assignment (Thm. 2, Example 10). -----

TEST_F(PaperExampleTest, FullAssignment) {
  Result<DependencyAssignment> safety =
      CheckSafety(ex_.spec.grammar, ex_.spec.deps);
  ASSERT_TRUE(safety.ok()) << safety.status().ToString();
  // Hand-computed λ* (docs/DESIGN.md §8).
  EXPECT_EQ(safety->Get(ex_.D), Mat({"11", "01"}));
  EXPECT_EQ(safety->Get(ex_.E), Mat({"11", "01"}));
  EXPECT_EQ(safety->Get(ex_.C), Mat({"01", "11"}));
  EXPECT_EQ(safety->Get(ex_.A), Mat({"11", "01"}));
  EXPECT_EQ(safety->Get(ex_.B), Mat({"01", "11"}));
  EXPECT_EQ(safety->Get(ex_.S), Mat({"111", "001"}));
}

// ----- Views (Examples 7, 10). -----

TEST_F(PaperExampleTest, GreyViewCompilesAndDiffers) {
  auto u1 = CompiledView::Compile(ex_.spec.grammar, ex_.default_view);
  ASSERT_TRUE(u1.has_value()) << u1.status().ToString();
  auto u2 = CompiledView::Compile(ex_.spec.grammar, ex_.grey_view);
  ASSERT_TRUE(u2.has_value()) << u2.status().ToString();

  EXPECT_TRUE(u1->IsWhiteBox(scheme_.true_full()));
  EXPECT_FALSE(u2->IsWhiteBox(scheme_.true_full()));
  EXPECT_FALSE(u1->IsBlackBox());

  // In U2 the modules D, E, f are underivable (Example 7).
  EXPECT_FALSE(u2->IsDerivable(ex_.D));
  EXPECT_FALSE(u2->IsDerivable(ex_.E));
  EXPECT_FALSE(u2->IsDerivable(ex_.f));
  EXPECT_TRUE(u2->IsDerivable(ex_.C));
  EXPECT_TRUE(u2->IsDerivable(ex_.e));

  // Full assignments diverge on S and A but agree on B's shape
  // (paper Figure 7 shows the same phenomenon).
  EXPECT_EQ(u2->full().Get(ex_.A), Mat({"11", "11"}));
  EXPECT_EQ(u2->full().Get(ex_.B), Mat({"11", "11"}));
  EXPECT_EQ(u2->full().Get(ex_.S), Mat({"111", "101"}));
  EXPECT_NE(u1->full().Get(ex_.S), u2->full().Get(ex_.S));
}

TEST_F(PaperExampleTest, ImproperViewRejected) {
  // A view that cannot expand the start module is rejected.
  View bad;
  bad.expandable.assign(ex_.spec.grammar.num_modules(), false);
  bad.expandable[ex_.A] = true;
  bad.perceived = ex_.spec.deps;
  Result<CompiledView> compiled = CompiledView::Compile(ex_.spec.grammar, bad);
  EXPECT_FALSE(compiled.has_value());
  EXPECT_EQ(compiled.code(), ErrorCode::kInvalidView);
  EXPECT_NE(compiled.status().message().find("start"), std::string::npos);
}

// ----- Compressed parse tree and data labels (Figures 13/14, Example 15).

TEST_F(PaperExampleTest, CompressedParseTreeShape) {
  Fig3Run fig3 = DeriveFig3();
  const CompressedParseTree& tree = fig3.labeler.tree();

  // S is not recursive: the root is the module node of S:1.
  const ParseNode& root = tree.node(tree.root());
  EXPECT_EQ(root.kind, ParseNode::Kind::kModule);
  EXPECT_EQ(root.instance, fig3.run.start_instance());
  EXPECT_TRUE(root.path.empty());

  // A:1, B:1, A:2, B:2, A:3 are flattened under one recursive node.
  int nA1 = tree.NodeOfInstance(fig3.A1);
  int nA3 = tree.NodeOfInstance(fig3.A3);
  int nB2 = tree.NodeOfInstance(fig3.B2);
  EXPECT_EQ(tree.node(nA1).parent, tree.node(nA3).parent);
  EXPECT_EQ(tree.node(nA1).parent, tree.node(nB2).parent);
  const ParseNode& rec = tree.node(tree.node(nA1).parent);
  EXPECT_EQ(rec.kind, ParseNode::Kind::kRecursive);
  EXPECT_EQ(rec.cycle, 0);
  EXPECT_EQ(rec.start, 0);
  EXPECT_EQ(rec.num_children, 5);

  // Edge-label paths (paper Figure 14, 1-based (1,3),(1,1,5),(3,2)).
  EXPECT_EQ(tree.node(nA3).path,
            (std::vector<EdgeLabel>{EdgeLabel::Prod(ex_.p[0], 2),
                                    EdgeLabel::Rec(0, 0, 5)}));
  int nC4 = tree.NodeOfInstance(fig3.C4);
  EXPECT_EQ(tree.node(nC4).path,
            (std::vector<EdgeLabel>{EdgeLabel::Prod(ex_.p[0], 2),
                                    EdgeLabel::Rec(0, 0, 5),
                                    EdgeLabel::Prod(ex_.p[2], 1)}));

  // D:1..D:3 under C:4's recursive child node, labels (2,1,i).
  int nD1 = tree.NodeOfInstance(fig3.D1);
  int nD3 = tree.NodeOfInstance(fig3.D3);
  EXPECT_EQ(tree.node(nD1).parent, tree.node(nD3).parent);
  const ParseNode& rec2 = tree.node(tree.node(nD1).parent);
  EXPECT_EQ(rec2.kind, ParseNode::Kind::kRecursive);
  EXPECT_EQ(rec2.cycle, 1);
  EXPECT_EQ(tree.node(nD3).path.back(), EdgeLabel::Rec(1, 0, 3));

  // Lemma 4: depth <= 2|Δ|.
  EXPECT_LE(tree.max_depth(), 2 * 6);
}

TEST_F(PaperExampleTest, Example15DataLabel) {
  Fig3Run fig3 = DeriveFig3();
  const DataLabel& label = fig3.labeler.Label(fig3.d21);
  ASSERT_TRUE(label.producer.has_value());
  ASSERT_TRUE(label.consumer.has_value());
  // φr(o) = {(1,3),(1,1,5),(3,2),(5,1), port 1}:
  EXPECT_EQ(label.producer->path,
            (std::vector<EdgeLabel>{
                EdgeLabel::Prod(ex_.p[0], 2), EdgeLabel::Rec(0, 0, 5),
                EdgeLabel::Prod(ex_.p[2], 1), EdgeLabel::Prod(ex_.p[4], 0)}));
  EXPECT_EQ(label.producer->port, 0);
  // φr(i) = {(1,3),(1,1,5),(3,2),(5,2),(2,1,1), port 2}:
  EXPECT_EQ(label.consumer->path,
            (std::vector<EdgeLabel>{
                EdgeLabel::Prod(ex_.p[0], 2), EdgeLabel::Rec(0, 0, 5),
                EdgeLabel::Prod(ex_.p[2], 1), EdgeLabel::Prod(ex_.p[4], 1),
                EdgeLabel::Rec(1, 0, 1)}));
  EXPECT_EQ(label.consumer->port, 1);
  // Pretty-printing matches the paper's 1-based notation.
  EXPECT_EQ(label.producer->ToString(), "{(1,3),(1,1,5),(3,2),(5,1),1}");
  EXPECT_EQ(label.consumer->ToString(), "{(1,3),(1,1,5),(3,2),(5,2),(2,1,1),2}");
}

// ----- View labels (Example 16). -----

TEST_F(PaperExampleTest, Example16ViewLabelMatrices) {
  auto u1 = *CompiledView::Compile(ex_.spec.grammar, ex_.default_view);
  auto u2 = *CompiledView::Compile(ex_.spec.grammar, ex_.grey_view);
  ViewLabel v1 = scheme_.LabelView(u1, ViewLabelMode::kDefault);
  ViewLabel v2 = scheme_.LabelView(u2, ViewLabelMode::kDefault);

  // I(1,5) — exactly the paper's matrices.
  EXPECT_EQ(*v1.I(ex_.p[0], 4), Mat({"11", "00"}));
  EXPECT_EQ(*v2.I(ex_.p[0], 4), Mat({"11", "01"}));
  // Z(1,2,5): all-false under U1, b ⇝ c.in1 under U2.
  EXPECT_EQ(*v1.Z(ex_.p[0], 1, 4), Mat({"00"}));
  EXPECT_EQ(*v2.Z(ex_.p[0], 1, 4), Mat({"01"}));
  // O(1,2): reversed reachability from b's output to S's final outputs.
  EXPECT_EQ(*v1.O(ex_.p[0], 1), Mat({"0", "0", "1"}));
  EXPECT_EQ(*v2.O(ex_.p[0], 1), Mat({"1", "0", "1"}));
  // I(5,1) is defined for U1 but not for U2 (Example 16's closing remark).
  EXPECT_TRUE(v1.I(ex_.p[4], 0).has_value());
  EXPECT_FALSE(v2.I(ex_.p[4], 0).has_value());
  // λ*(S) differs between the views.
  EXPECT_EQ(v1.StartMatrix(), Mat({"111", "001"}));
  EXPECT_EQ(v2.StartMatrix(), Mat({"111", "101"}));
}

// ----- The Example-8 query: answers differ between U1 and U2. -----

TEST_F(PaperExampleTest, Example8QueryDivergesAcrossViews) {
  Fig3Run fig3 = DeriveFig3();
  // d17/d31 analogue: the data item entering C:4's first input vs the item
  // leaving C:4's first output.
  int d17 = fig3.run.InputItems(fig3.C4)[0];
  int d31 = fig3.run.OutputItems(fig3.C4)[0];

  auto u1 = *CompiledView::Compile(ex_.spec.grammar, ex_.default_view);
  auto u2 = *CompiledView::Compile(ex_.spec.grammar, ex_.grey_view);
  ViewLabel v1 = scheme_.LabelView(u1, ViewLabelMode::kQueryEfficient);
  ViewLabel v2 = scheme_.LabelView(u2, ViewLabelMode::kQueryEfficient);
  Decoder pi1(&v1);
  Decoder pi2(&v2);

  const DataLabel& l17 = fig3.labeler.Label(d17);
  const DataLabel& l31 = fig3.labeler.Label(d31);
  // "Does d31 depend on d17?" — no under U1 (λ*(C)[0][0] = 0), yes under U2
  // (grey-box complete C).
  EXPECT_FALSE(pi1.Depends(l17, l31));
  EXPECT_TRUE(pi2.Depends(l17, l31));

  // Ground truth agrees.
  ProvenanceOracle oracle1(fig3.run, u1);
  ProvenanceOracle oracle2(fig3.run, u2);
  EXPECT_FALSE(oracle1.Depends(d17, d31));
  EXPECT_TRUE(oracle2.Depends(d17, d31));
}

// ----- Exhaustive agreement of π with the oracle on the Fig-3 run. -----

TEST_F(PaperExampleTest, DecoderMatchesOracleExhaustively) {
  Fig3Run fig3 = DeriveFig3();
  auto u1 = *CompiledView::Compile(ex_.spec.grammar, ex_.default_view);
  auto u2 = *CompiledView::Compile(ex_.spec.grammar, ex_.grey_view);

  for (const auto* view : {&u1, &u2}) {
    ProvenanceOracle oracle(fig3.run, *view);
    for (ViewLabelMode mode :
         {ViewLabelMode::kSpaceEfficient, ViewLabelMode::kDefault,
          ViewLabelMode::kQueryEfficient}) {
      ViewLabel vl = scheme_.LabelView(*view, mode);
      Decoder pi(&vl);
      int checked = 0;
      for (int d1 = 0; d1 < fig3.run.num_items(); ++d1) {
        if (!oracle.ItemVisible(d1)) continue;
        for (int d2 = 0; d2 < fig3.run.num_items(); ++d2) {
          if (!oracle.ItemVisible(d2)) continue;
          bool expected = oracle.Depends(d1, d2);
          bool actual =
              pi.Depends(fig3.labeler.Label(d1), fig3.labeler.Label(d2));
          ASSERT_EQ(actual, expected)
              << "mode=" << ToString(mode) << " d1=" << d1 << " d2=" << d2
              << " l1=" << fig3.labeler.Label(d1).ToString()
              << " l2=" << fig3.labeler.Label(d2).ToString();
          ++checked;
        }
      }
      EXPECT_GT(checked, 100);
    }
  }
}

// ----- Visibility (§5) against the projection. -----

TEST_F(PaperExampleTest, VisibilityMatchesProjection) {
  Fig3Run fig3 = DeriveFig3();
  auto u2 = *CompiledView::Compile(ex_.spec.grammar, ex_.grey_view);
  ViewLabel vl = scheme_.LabelView(u2, ViewLabelMode::kDefault);
  ProvenanceOracle oracle(fig3.run, u2);
  for (int item = 0; item < fig3.run.num_items(); ++item) {
    EXPECT_EQ(IsItemVisible(fig3.labeler.Label(item), vl),
              oracle.ItemVisible(item))
        << "item " << item << " " << fig3.labeler.Label(item).ToString();
  }
}

// ----- Negative examples (Figures 6 and 10). -----

TEST(PaperCounterExamples, UnsafeExampleRejected) {
  Specification unsafe = MakeUnsafeExample();
  Result<DependencyAssignment> safety =
      CheckSafety(unsafe.grammar, unsafe.deps);
  EXPECT_FALSE(safety.ok());
  EXPECT_EQ(safety.code(), ErrorCode::kUnsafeSpecification);
  EXPECT_NE(safety.status().message().find("inconsistent"), std::string::npos);
  EXPECT_EQ(FvlScheme::Create(&unsafe).code(),
            ErrorCode::kUnsafeSpecification);
}

TEST(PaperCounterExamples, Fig10IsLinearButNotStrict) {
  Specification fig10 = MakeFig10Example();
  ProductionGraph pg(&fig10.grammar);
  EXPECT_TRUE(IsLinearRecursive(pg));
  EXPECT_FALSE(IsStrictlyLinearRecursive(pg));
  EXPECT_FALSE(IsStrictlyLinearRecursivePaperAlgorithm(pg));
  // The Fig-10 assignment is safe; only compactness fails (Thm. 6), which
  // manifests as FvlScheme rejecting the grammar.
  Result<DependencyAssignment> safety =
      CheckSafety(fig10.grammar, fig10.deps);
  EXPECT_TRUE(safety.ok()) << safety.status().ToString();
  Result<FvlScheme> scheme = FvlScheme::Create(&fig10);
  EXPECT_EQ(scheme.code(), ErrorCode::kNotStrictlyLinearRecursive);
  EXPECT_NE(scheme.status().message().find("strictly linear"),
            std::string::npos);
}

}  // namespace
}  // namespace fvl
