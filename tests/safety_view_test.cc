// Safety checker edge cases (Thm. 2) and CompiledView error paths, plus the
// Lemma-1 fixed-point property verified directly on generated workloads.

#include <gtest/gtest.h>

#include "fvl/workflow/grammar_builder.h"
#include "fvl/workflow/port_graph.h"
#include "fvl/workflow/safety.h"
#include "fvl/workflow/view.h"
#include "fvl/workload/bioaid.h"
#include "fvl/workload/paper_example.h"
#include "fvl/workload/synthetic.h"
#include "test_util.h"

namespace fvl {
namespace {

using ::fvl::testing::Mat;

TEST(Safety, MissingDependencyAssignmentReported) {
  GrammarBuilder b;
  ModuleId s = b.AddComposite("S", 1, 1);
  ModuleId x = b.AddAtomic("x", 1, 1);
  b.SetStart(s);
  auto p = b.NewProduction(s);
  int m = p.AddMember(x);
  p.MapInput(0, m, 0).MapOutput(0, m, 0);
  p.Build();
  Grammar g = b.BuildGrammar();

  DependencyAssignment empty(g.num_modules());
  Result<DependencyAssignment> result = CheckSafety(g, empty);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.code(), ErrorCode::kIncompleteAssignment);
  EXPECT_NE(result.status().message().find("no dependency assignment"),
            std::string::npos);
}

TEST(Safety, UnproductiveModuleReported) {
  // V -> [V, x] only: V's production never becomes verifiable.
  GrammarBuilder b;
  ModuleId s = b.AddComposite("S", 1, 1);
  ModuleId v = b.AddComposite("V", 1, 1);
  ModuleId x = b.AddAtomic("x", 1, 2);
  ModuleId y = b.AddAtomic("y", 2, 1);
  b.SetStart(s);
  {
    auto p = b.NewProduction(s);
    int m = p.AddMember(v);
    p.MapInput(0, m, 0).MapOutput(0, m, 0);
    p.Build();
  }
  {
    auto p = b.NewProduction(v);
    int mx = p.AddMember(x);
    int mv = p.AddMember(v);
    int my = p.AddMember(y);
    p.MapInput(0, mx, 0);
    p.Edge(mx, 0, mv, 0).Edge(mx, 1, my, 0).Edge(mv, 0, my, 1);
    p.MapOutput(0, my, 0);
    p.Build();
  }
  b.SetCompleteDeps(x);
  b.SetCompleteDeps(y);
  Specification spec = b.BuildSpecification();
  Result<DependencyAssignment> result = CheckSafety(spec.grammar, spec.deps);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.code(), ErrorCode::kImproperGrammar);
  EXPECT_NE(result.status().message().find("never became verifiable"),
            std::string::npos);
}

TEST(Safety, Lemma1FixedPointHoldsOnWorkloads) {
  // Lemma 1: for the computed λ*, every production M ->f W satisfies
  // λ*(M)[x][y] == reach_{W^{λ*}}(f(x), f(y)).
  for (const Workload& workload :
       {MakeBioAid(3), MakeSynthetic(SyntheticOptions{.workflow_size = 6,
                                                      .module_degree = 3,
                                                      .nesting_depth = 3,
                                                      .recursion_length = 2,
                                                      .seed = 5})}) {
    Result<DependencyAssignment> result =
        CheckSafety(workload.spec.grammar, workload.spec.deps);
    ASSERT_TRUE(result.ok()) << workload.name << ": "
                             << result.status().message();
    const Grammar& g = workload.spec.grammar;
    for (ProductionId k = 0; k < g.num_productions(); ++k) {
      const Production& p = g.production(k);
      WorkflowPortGraph graph(g, p.rhs, *result);
      ASSERT_EQ(graph.InitialToFinal(), result->Get(p.lhs))
          << workload.name << " production " << k;
    }
  }
}

TEST(Safety, FullAssignmentIsProperDef6) {
  // Composite full dependencies inherit Def. 6 from the atomic layer.
  Workload workload = MakeBioAid(4);
  Result<DependencyAssignment> result =
      CheckSafety(workload.spec.grammar, workload.spec.deps);
  ASSERT_TRUE(result.ok());
  const Grammar& g = workload.spec.grammar;
  for (ModuleId m : g.CompositeModules()) {
    ASSERT_TRUE(result->IsDefined(m));
    EXPECT_FALSE(
        DependencyAssignment::ValidateProper(g.module(m), result->Get(m))
            .has_value())
        << g.module(m).name;
  }
}

TEST(CompiledViewErrors, ExpandableAtomicRejected) {
  PaperExample ex = MakePaperExample();
  View view = MakeDefaultView(ex.spec);
  view.expandable[ex.a] = true;  // atomic module
  Result<CompiledView> compiled = CompiledView::Compile(ex.spec.grammar, view);
  EXPECT_FALSE(compiled.has_value());
  EXPECT_EQ(compiled.code(), ErrorCode::kInvalidView);
  EXPECT_NE(compiled.status().message().find("atomic"), std::string::npos);
}

TEST(CompiledViewErrors, MissingPerceivedDepsRejected) {
  PaperExample ex = MakePaperExample();
  View view;
  view.expandable.assign(ex.spec.grammar.num_modules(), false);
  view.expandable[ex.S] = true;
  view.expandable[ex.A] = true;
  view.expandable[ex.B] = true;
  view.perceived = ex.spec.deps;  // λ'(C) missing although C is visible
  Result<CompiledView> compiled = CompiledView::Compile(ex.spec.grammar, view);
  EXPECT_FALSE(compiled.has_value());
  EXPECT_EQ(compiled.code(), ErrorCode::kIncompleteAssignment);
  EXPECT_NE(compiled.status().message().find("no dependency assignment"),
            std::string::npos);
}

TEST(CompiledViewErrors, UnsafePerceivedDepsRejected) {
  PaperExample ex = MakePaperExample();
  View view = ex.grey_view;
  // A λ'(C) that contradicts the A<->B recursion's fixed point: identity
  // deps make p2 and p3 disagree on λ'*(A).
  view.perceived.Set(ex.C, BoolMatrix::Identity(2));
  Result<CompiledView> compiled = CompiledView::Compile(ex.spec.grammar, view);
  EXPECT_FALSE(compiled.has_value());
  EXPECT_EQ(compiled.code(), ErrorCode::kUnsafeView);
  EXPECT_NE(compiled.status().message().find("unsafe"), std::string::npos);
}

TEST(CompiledViewErrors, MismatchedFlagVectorRejected) {
  PaperExample ex = MakePaperExample();
  View view = MakeDefaultView(ex.spec);
  view.expandable.pop_back();
  EXPECT_FALSE(CompiledView::Compile(ex.spec.grammar, view)
                   .has_value());
}

TEST(CompiledView, BlackBoxDetection) {
  Workload workload = MakeBioAid(2012);
  View view = MakeDefaultView(workload.spec);
  auto compiled = CompiledView::Compile(workload.spec.grammar, view);
  ASSERT_TRUE(compiled.has_value()) << compiled.status().ToString();
  // Random fine-grained deps: not black-box.
  EXPECT_FALSE(compiled->IsBlackBox());

  // Complete deps on every atomic module: black-box (single-source/sink
  // workflows propagate completeness upward — Lemma 2).
  View black = view;
  for (ModuleId m : workload.spec.grammar.AtomicModules()) {
    const Module& module = workload.spec.grammar.module(m);
    black.perceived.Set(
        m, BoolMatrix::Full(module.num_inputs, module.num_outputs));
  }
  auto compiled_black =
      CompiledView::Compile(workload.spec.grammar, black);
  ASSERT_TRUE(compiled_black.has_value()) << compiled_black.status().ToString();
  EXPECT_TRUE(compiled_black->IsBlackBox());
}

}  // namespace
}  // namespace fvl
