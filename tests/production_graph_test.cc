// Crafted recursion topologies for the production graph's cycle extraction
// and the strict-linearity decision procedures (Defs. 14-16, Thm. 7),
// cross-checking the SCC-based route against the paper's BFS algorithm.

#include <gtest/gtest.h>

#include "fvl/util/random.h"
#include "fvl/workflow/grammar_builder.h"
#include "fvl/workflow/production_graph.h"
#include "fvl/workflow/recursion_analysis.h"
#include "test_util.h"

namespace fvl {
namespace {

// Helper: 1-in/1-out modules chained; every composite gets a base production
// [x] plus the given recursive chain production.
class TopologyBuilder {
 public:
  TopologyBuilder() {
    x_ = builder_.AddAtomic("x", 1, 1);
    builder_.SetCompleteDeps(x_);
  }

  ModuleId Composite(const std::string& name) {
    ModuleId m = builder_.AddComposite(name, 1, 1);
    // Base production: [x].
    auto p = builder_.NewProduction(m);
    int mx = p.AddMember(x_);
    p.MapInput(0, mx, 0).MapOutput(0, mx, 0);
    p.Build();
    return m;
  }

  // lhs -> [x, member] chain (the recursion step).
  void Recurse(ModuleId lhs, ModuleId member) {
    auto p = builder_.NewProduction(lhs);
    int mx = p.AddMember(x_);
    int mm = p.AddMember(member);
    p.MapInput(0, mx, 0);
    p.Edge(mx, 0, mm, 0);
    p.MapOutput(0, mm, 0);
    p.Build();
  }

  void Start(ModuleId m) { builder_.SetStart(m); }
  Grammar Build() { return builder_.BuildGrammar(); }

 private:
  GrammarBuilder builder_;
  ModuleId x_;
};

TEST(ProductionGraphTopology, TwoDisjointSelfLoops) {
  TopologyBuilder t;
  ModuleId s = t.Composite("S");
  ModuleId a = t.Composite("A");
  ModuleId b = t.Composite("B");
  t.Recurse(s, a);
  t.Recurse(s, b);  // S -> A, S -> B (no recursion at S)
  t.Recurse(a, a);  // self-loop A
  t.Recurse(b, b);  // self-loop B
  t.Start(s);
  Grammar g = t.Build();
  ProductionGraph pg(&g);
  EXPECT_TRUE(pg.strictly_linear());
  EXPECT_TRUE(IsStrictlyLinearRecursivePaperAlgorithm(pg));
  EXPECT_TRUE(IsLinearRecursive(pg));
  EXPECT_EQ(pg.num_cycles(), 2);
  EXPECT_FALSE(pg.IsRecursive(s));
  EXPECT_TRUE(pg.IsRecursive(a));
  EXPECT_TRUE(pg.IsRecursive(b));
  EXPECT_NE(pg.CycleOf(a), pg.CycleOf(b));
  EXPECT_EQ(pg.cycle(pg.CycleOf(a)).length(), 1);
}

TEST(ProductionGraphTopology, LongRing) {
  TopologyBuilder t;
  ModuleId a = t.Composite("A");
  ModuleId b = t.Composite("B");
  ModuleId c = t.Composite("C");
  ModuleId d = t.Composite("D");
  t.Recurse(a, b);
  t.Recurse(b, c);
  t.Recurse(c, d);
  t.Recurse(d, a);
  t.Start(a);
  Grammar g = t.Build();
  ProductionGraph pg(&g);
  ASSERT_TRUE(pg.strictly_linear());
  EXPECT_TRUE(IsStrictlyLinearRecursivePaperAlgorithm(pg));
  ASSERT_EQ(pg.num_cycles(), 1);
  const auto& cycle = pg.cycle(0);
  EXPECT_EQ(cycle.length(), 4);
  // The walk starts at the smallest module id and follows successors.
  EXPECT_EQ(cycle.members, (std::vector<ModuleId>{a, b, c, d}));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(pg.CycleStartIndex(cycle.members[i]), i);
    // The cycle edge at index i leaves members[i].
    EXPECT_EQ(pg.EdgeSource(pg.CycleEdgeAt(0, i)), cycle.members[i]);
    EXPECT_EQ(pg.EdgeTarget(pg.CycleEdgeAt(0, i)), cycle.members[(i + 1) % 4]);
  }
  // Wrapping.
  EXPECT_EQ(pg.CycleEdgeAt(0, 5), pg.CycleEdgeAt(0, 1));
}

TEST(ProductionGraphTopology, TwoCyclesSharingAVertexIsNotStrict) {
  TopologyBuilder t;
  ModuleId a = t.Composite("A");
  ModuleId b = t.Composite("B");
  ModuleId c = t.Composite("C");
  t.Recurse(a, b);
  t.Recurse(b, a);  // cycle A-B
  t.Recurse(a, c);
  t.Recurse(c, a);  // cycle A-C shares A
  t.Start(a);
  Grammar g = t.Build();
  ProductionGraph pg(&g);
  EXPECT_FALSE(pg.strictly_linear());
  EXPECT_FALSE(IsStrictlyLinearRecursivePaperAlgorithm(pg));
  // Still linear: every production has at most one member reaching its lhs.
  EXPECT_TRUE(IsLinearRecursive(pg));
  EXPECT_TRUE(pg.IsRecursive(a));
  EXPECT_TRUE(pg.IsRecursiveGrammar());
}

TEST(ProductionGraphTopology, DoubleSelfLoopIsNotStrict) {
  TopologyBuilder t;
  ModuleId a = t.Composite("A");
  t.Recurse(a, a);
  t.Recurse(a, a);  // two parallel self-loop edges
  t.Start(a);
  Grammar g = t.Build();
  ProductionGraph pg(&g);
  EXPECT_FALSE(pg.strictly_linear());
  EXPECT_FALSE(IsStrictlyLinearRecursivePaperAlgorithm(pg));
}

TEST(ProductionGraphTopology, NonLinearViaTwoInstances) {
  // A production whose rhs contains the recursive module twice: nonlinear.
  GrammarBuilder b;
  ModuleId x = b.AddAtomic("x", 1, 2);
  ModuleId j = b.AddAtomic("j", 2, 1);
  ModuleId a = b.AddComposite("A", 1, 1);
  b.SetStart(a);
  b.SetCompleteDeps(x);
  b.SetCompleteDeps(j);
  {
    auto p = b.NewProduction(a);
    int mx = p.AddMember(x);
    int m1 = p.AddMember(a);
    int m2 = p.AddMember(a);
    int mj = p.AddMember(j);
    p.MapInput(0, mx, 0);
    p.Edge(mx, 0, m1, 0).Edge(mx, 1, m2, 0);
    p.Edge(m1, 0, mj, 0).Edge(m2, 0, mj, 1);
    p.MapOutput(0, mj, 0);
    p.Build();
  }
  {
    auto p = b.NewProduction(a);
    int mx = p.AddMember(x);
    int mj = p.AddMember(j);
    p.MapInput(0, mx, 0);
    p.Edge(mx, 0, mj, 0).Edge(mx, 1, mj, 1);
    p.MapOutput(0, mj, 0);
    p.Build();
  }
  Grammar g = b.BuildGrammar();
  ProductionGraph pg(&g);
  EXPECT_FALSE(IsLinearRecursive(pg));
  EXPECT_FALSE(pg.strictly_linear());
  EXPECT_FALSE(IsStrictlyLinearRecursivePaperAlgorithm(pg));
}

TEST(ProductionGraphTopology, AlgorithmsAgreeOnRandomTopologies) {
  // Cross-check the SCC-based and the paper's BFS-based strictness deciders
  // over random small derivation topologies.
  Rng rng(77);
  for (int trial = 0; trial < 60; ++trial) {
    TopologyBuilder t;
    int n = rng.NextInt(2, 6);
    std::vector<ModuleId> modules;
    for (int i = 0; i < n; ++i) {
      modules.push_back(t.Composite("M" + std::to_string(i)));
    }
    int edges = rng.NextInt(1, 2 * n);
    for (int e = 0; e < edges; ++e) {
      t.Recurse(modules[rng.NextInt(0, n - 1)], modules[rng.NextInt(0, n - 1)]);
    }
    t.Start(modules[0]);
    Grammar g = t.Build();
    ProductionGraph pg(&g);
    ASSERT_EQ(pg.strictly_linear(),
              IsStrictlyLinearRecursivePaperAlgorithm(pg))
        << "trial " << trial;
    // Strict implies linear (the paper's inclusion).
    if (pg.strictly_linear()) {
      ASSERT_TRUE(IsLinearRecursive(pg)) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace fvl
