// The --json artifact contract of the benchmark binaries (bench_util.h):
// a bench asked to produce BENCH_*.json must either write the complete
// document or exit nonzero — CI trend tracking (tools/bench_trend.py)
// treats a missing/truncated artifact as a failed bench step, so the
// failure has to surface at the producer.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "gtest/gtest.h"

namespace fvl::bench {
namespace {

BenchConfig ConfigFor(const std::string& json_path) {
  BenchConfig config;
  config.quick = true;
  config.json_path = json_path;
  return config;
}

TablePrinter OneRowTable() {
  TablePrinter table({"metric", "value"});
  table.AddRow({"answer", "42"});
  return table;
}

TEST(JsonReportDeath, UnopenablePathExitsNonzeroBeforeTheRun) {
  // Opening happens in the constructor: a bench with a bad --json path
  // must die before burning benchmark time.
  EXPECT_EXIT(
      { JsonReport report(ConfigFor("/nonexistent-dir/BENCH_x.json"), "x"); },
      ::testing::ExitedWithCode(1), "cannot open --json destination");
}

TEST(JsonReportDeath, WriteFailureExitsNonzero) {
  // /dev/full accepts the open but fails every flush with ENOSPC — the
  // canonical truncated-artifact scenario.
  if (std::FILE* probe = std::fopen("/dev/full", "w")) {
    std::fclose(probe);
    EXPECT_EXIT(
        {
          JsonReport report(ConfigFor("/dev/full"), "x");
          report.Add("t", OneRowTable());
          report.Write();
        },
        ::testing::ExitedWithCode(1), "cannot write --json artifact");
  } else {
    GTEST_SKIP() << "/dev/full not available";
  }
}

TEST(JsonReport, SuccessfulWriteProducesParseableDocument) {
  std::string path =
      ::testing::TempDir() + "/fvl_bench_json_test_artifact.json";
  {
    JsonReport report(ConfigFor(path), "unit");
    report.Add("t", OneRowTable());
    report.Write();
  }
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::string contents;
  char chunk[4096];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    contents.append(chunk, n);
  }
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_NE(contents.find("\"benchmark\": \"unit\""), std::string::npos);
  EXPECT_NE(contents.find("\"tables\""), std::string::npos);
  EXPECT_NE(contents.find("\"answer\""), std::string::npos);
}

TEST(JsonReport, NoJsonPathMeansNoOp) {
  JsonReport report(ConfigFor(""), "x");
  report.Add("t", OneRowTable());
  report.Write();  // must not print, exit, or touch the filesystem
}

}  // namespace
}  // namespace fvl::bench
