#include <gtest/gtest.h>

#include "fvl/core/decoder.h"
#include "fvl/core/index.h"
#include "fvl/service/legacy_facade.h"
#include "fvl/run/provenance_oracle.h"
#include "fvl/workload/bioaid.h"
#include "fvl/workload/paper_example.h"
#include "fvl/workload/view_generator.h"
#include "test_util.h"

namespace fvl {
namespace {

class IndexTest : public ::testing::Test {
 protected:
  IndexTest() : ex_(MakePaperExample()), scheme_(FvlScheme::Create(&ex_.spec).value()) {
    RunGeneratorOptions options;
    options.target_items = 400;
    options.seed = 8;
    labeled_ = std::make_unique<FvlScheme::LabeledRun>(
        scheme_.GenerateLabeledRun(options));
  }

  PaperExample ex_;
  FvlScheme scheme_;
  std::unique_ptr<FvlScheme::LabeledRun> labeled_;
};

TEST_F(IndexTest, RoundTripsEveryLabel) {
  ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
      scheme_.production_graph(), labeled_->labeler);
  ASSERT_EQ(index.num_items(), labeled_->run.num_items());
  for (int item = 0; item < index.num_items(); ++item) {
    ASSERT_EQ(index.Label(item), labeled_->labeler.Label(item))
        << "item " << item;
    ASSERT_EQ(index.LabelBits(item), labeled_->labeler.LabelBits(item));
  }
}

TEST_F(IndexTest, SerializeDeserializeRoundTrip) {
  ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
      scheme_.production_graph(), labeled_->labeler);
  std::string blob = index.Serialize();
  Result<ProvenanceIndex> restored = ProvenanceIndex::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->num_items(), index.num_items());
  for (int item = 0; item < index.num_items(); ++item) {
    ASSERT_EQ(restored->Label(item), index.Label(item));
  }
  EXPECT_EQ(restored->Serialize(), blob);
}

TEST_F(IndexTest, DeserializeRejectsCorruption) {
  ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
      scheme_.production_graph(), labeled_->labeler);
  std::string blob = index.Serialize();

  // Bad magic.
  std::string bad = blob;
  bad[0] = 'X';
  Result<ProvenanceIndex> rejected = ProvenanceIndex::Deserialize(bad);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), ErrorCode::kMalformedBlob);
  EXPECT_EQ(rejected.status().message(), "bad magic");
  // Truncation at every prefix length must fail cleanly, never crash.
  for (size_t cut : {size_t{4}, size_t{10}, size_t{30}, blob.size() - 3}) {
    EXPECT_EQ(ProvenanceIndex::Deserialize(blob.substr(0, cut)).code(),
              ErrorCode::kMalformedBlob);
  }
  // Trailing garbage.
  EXPECT_FALSE(
      ProvenanceIndex::Deserialize(blob + "zz").has_value());
}

// A blob that parses structurally but whose labels do not decode under its
// own codec must be rejected at Deserialize time, recoverably — never by an
// abort (or a silently wrong label) on first use of the returned index.
TEST_F(IndexTest, DeserializeRejectsInconsistentBlobs) {
  ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
      scheme_.production_graph(), labeled_->labeler);
  std::string blob = index.Serialize();

  // Flip the embedded production_bits codec width (header byte 24): every
  // label span now misaligns against the arena.
  std::string bad_codec = blob;
  bad_codec[24] = static_cast<char>(bad_codec[24] + 1);
  EXPECT_EQ(ProvenanceIndex::Deserialize(bad_codec).code(),
            ErrorCode::kMalformedBlob);

  // arena_bits with the top bit set (header byte 23) must not abort inside
  // width computations.
  std::string bad_arena = blob;
  bad_arena[23] = static_cast<char>(0x80);
  EXPECT_EQ(ProvenanceIndex::Deserialize(bad_arena).code(),
            ErrorCode::kMalformedBlob);

  auto u64 = [](std::string* out, uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
    }
  };
  // Hand-crafted empty-arena blob claiming items: num_items is not backed
  // by any offset/arena content, so the (zero-bit) labels cannot decode.
  auto crafted = [&](uint64_t num_items) {
    std::string b("FVLIDX2", 8);  // includes the terminating NUL
    u64(&b, num_items);
    u64(&b, 0);                       // arena_bits
    b.append(5, '\0');                // codec widths
    b.push_back('\0');                // offset width
    u64(&b, 0);                       // offset words
    u64(&b, 0);                       // arena words
    return b;
  };
  EXPECT_EQ(ProvenanceIndex::Deserialize(crafted(10)).code(),
            ErrorCode::kMalformedBlob);
  // A huge claimed item count must fail fast, not allocate terabytes.
  EXPECT_EQ(ProvenanceIndex::Deserialize(crafted(uint64_t{1} << 40)).code(),
            ErrorCode::kMalformedBlob);
}

TEST_F(IndexTest, QueriesWorkFromDeserializedIndex) {
  ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
      scheme_.production_graph(), labeled_->labeler);
  std::string blob = index.Serialize();
  ProvenanceIndex restored = ProvenanceIndex::Deserialize(blob).value();

  auto view = *CompiledView::Compile(ex_.spec.grammar, ex_.grey_view);
  ViewLabel label = scheme_.LabelView(view, ViewLabelMode::kQueryEfficient);
  Decoder pi(&label);
  ProvenanceOracle oracle(labeled_->run, view);
  int checked = 0;
  for (int d1 = 0; d1 < labeled_->run.num_items(); d1 += 7) {
    for (int d2 = 0; d2 < labeled_->run.num_items(); d2 += 11) {
      if (!oracle.ItemVisible(d1) || !oracle.ItemVisible(d2)) continue;
      ASSERT_EQ(pi.Depends(restored.Label(d1), restored.Label(d2)),
                oracle.Depends(d1, d2))
          << "d1=" << d1 << " d2=" << d2;
      ++checked;
    }
  }
  EXPECT_GT(checked, 50);
}

TEST_F(IndexTest, CompactnessVsRawStructs) {
  // The arena holds ~60 bits per item; in-memory DataLabel structs cost two
  // orders of magnitude more.
  ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
      scheme_.production_graph(), labeled_->labeler);
  double bits_per_item =
      static_cast<double>(index.SizeBits()) / index.num_items();
  EXPECT_LT(bits_per_item, 120.0);
  EXPECT_GT(bits_per_item, 10.0);
}

TEST(IndexEdgeCases, EmptyIndex) {
  PaperExample ex = MakePaperExample();
  ProductionGraph pg(&ex.spec.grammar);
  ProvenanceIndexBuilder builder(pg);
  ProvenanceIndex index = std::move(builder).Build();
  EXPECT_EQ(index.num_items(), 0);
  std::string blob = index.Serialize();
  auto restored = ProvenanceIndex::Deserialize(blob);
  ASSERT_TRUE(restored.has_value()) << restored.status().ToString();
  EXPECT_EQ(restored->num_items(), 0);
}

TEST(IndexBioAid, LargeRunRoundTrip) {
  Workload workload = MakeBioAid(2012);
  FvlScheme scheme = FvlScheme::Create(&workload.spec).value();
  RunGeneratorOptions options;
  options.target_items = 4000;
  options.seed = 3;
  FvlScheme::LabeledRun labeled = scheme.GenerateLabeledRun(options);
  ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
      scheme.production_graph(), labeled.labeler);
  std::string blob = index.Serialize();
  auto restored = *ProvenanceIndex::Deserialize(blob);
  for (int item = 0; item < restored.num_items(); item += 13) {
    ASSERT_EQ(restored.Label(item), labeled.labeler.Label(item));
  }
}

}  // namespace
}  // namespace fvl
