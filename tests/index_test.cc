#include <gtest/gtest.h>

#include "fvl/core/decoder.h"
#include "fvl/core/index.h"
#include "fvl/service/legacy_facade.h"
#include "fvl/service/provenance_service.h"
#include "fvl/run/provenance_oracle.h"
#include "fvl/util/random.h"
#include "fvl/workload/bioaid.h"
#include "fvl/workload/paper_example.h"
#include "fvl/workload/view_generator.h"
#include "test_util.h"

namespace fvl {
namespace {

class IndexTest : public ::testing::Test {
 protected:
  IndexTest() : ex_(MakePaperExample()), scheme_(FvlScheme::Create(&ex_.spec).value()) {
    RunGeneratorOptions options;
    options.target_items = 400;
    options.seed = 8;
    labeled_ = std::make_unique<FvlScheme::LabeledRun>(
        scheme_.GenerateLabeledRun(options));
  }

  PaperExample ex_;
  FvlScheme scheme_;
  std::unique_ptr<FvlScheme::LabeledRun> labeled_;
};

TEST_F(IndexTest, RoundTripsEveryLabel) {
  ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
      scheme_.production_graph(), labeled_->labeler);
  ASSERT_EQ(index.num_items(), labeled_->run.num_items());
  for (int item = 0; item < index.num_items(); ++item) {
    ASSERT_EQ(index.Label(item), labeled_->labeler.Label(item))
        << "item " << item;
    ASSERT_EQ(index.LabelBits(item), labeled_->labeler.LabelBits(item));
  }
}

TEST_F(IndexTest, SerializeDeserializeRoundTrip) {
  ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
      scheme_.production_graph(), labeled_->labeler);
  std::string blob = index.Serialize();
  Result<ProvenanceIndex> restored = ProvenanceIndex::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->num_items(), index.num_items());
  for (int item = 0; item < index.num_items(); ++item) {
    ASSERT_EQ(restored->Label(item), index.Label(item));
  }
  EXPECT_EQ(restored->Serialize(), blob);
}

TEST_F(IndexTest, DeserializeRejectsCorruption) {
  ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
      scheme_.production_graph(), labeled_->labeler);
  std::string blob = index.Serialize();

  // Bad magic.
  std::string bad = blob;
  bad[0] = 'X';
  Result<ProvenanceIndex> rejected = ProvenanceIndex::Deserialize(bad);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), ErrorCode::kMalformedBlob);
  EXPECT_EQ(rejected.status().message(), "bad magic");
  // Truncation at every prefix length must fail cleanly, never crash.
  for (size_t cut : {size_t{4}, size_t{10}, size_t{30}, blob.size() - 3}) {
    EXPECT_EQ(ProvenanceIndex::Deserialize(blob.substr(0, cut)).code(),
              ErrorCode::kMalformedBlob);
  }
  // Trailing garbage.
  EXPECT_FALSE(
      ProvenanceIndex::Deserialize(blob + "zz").has_value());
}

// A blob that parses structurally but whose labels do not decode under its
// own codec must be rejected at Deserialize time, recoverably — never by an
// abort (or a silently wrong label) on first use of the returned index.
TEST_F(IndexTest, DeserializeRejectsInconsistentBlobs) {
  ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
      scheme_.production_graph(), labeled_->labeler);
  std::string blob = index.Serialize();

  // Flip the embedded production_bits codec width (header byte 24): every
  // label span now misaligns against the arena.
  std::string bad_codec = blob;
  bad_codec[24] = static_cast<char>(bad_codec[24] + 1);
  EXPECT_EQ(ProvenanceIndex::Deserialize(bad_codec).code(),
            ErrorCode::kMalformedBlob);

  // arena_bits with the top bit set (header byte 23) must not abort inside
  // width computations.
  std::string bad_arena = blob;
  bad_arena[23] = static_cast<char>(0x80);
  EXPECT_EQ(ProvenanceIndex::Deserialize(bad_arena).code(),
            ErrorCode::kMalformedBlob);

  auto u64 = [](std::string* out, uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
    }
  };
  // Hand-crafted empty-arena blob claiming items: num_items is not backed
  // by any offset/arena content, so the (zero-bit) labels cannot decode.
  auto crafted = [&](uint64_t num_items) {
    std::string b("FVLIDX2", 8);  // includes the terminating NUL
    u64(&b, num_items);
    u64(&b, 0);                       // arena_bits
    b.append(5, '\0');                // codec widths
    b.push_back('\0');                // offset width
    u64(&b, 0);                       // offset words
    u64(&b, 0);                       // arena words
    return b;
  };
  EXPECT_EQ(ProvenanceIndex::Deserialize(crafted(10)).code(),
            ErrorCode::kMalformedBlob);
  // A huge claimed item count must fail fast, not allocate terabytes.
  EXPECT_EQ(ProvenanceIndex::Deserialize(crafted(uint64_t{1} << 40)).code(),
            ErrorCode::kMalformedBlob);

  // The converse confusion: zero items claiming a nonzero arena. The
  // offsets (vacuously) fail to cover the arena, and accepting it would
  // let a later Merge graft the junk bits onto the next run's first label
  // span (grouped-append rebases against the last offset).
  std::string junk_arena("FVLIDX2", 8);
  u64(&junk_arena, 0);             // num_items
  u64(&junk_arena, 64);            // arena_bits
  junk_arena.append(5, '\0');      // codec widths
  junk_arena.push_back(7);         // offset width = BitWidthFor(65)
  u64(&junk_arena, 0);             // offset words
  u64(&junk_arena, 1);             // arena words
  u64(&junk_arena, 0xDEADBEEFULL); // uncovered arena bits
  EXPECT_EQ(ProvenanceIndex::Deserialize(junk_arena).code(),
            ErrorCode::kMalformedBlob);
}

// Targeted corruption of the v2 (FVLIDX3) compressed span tail: the block
// headers are vbyte + fixed-width fields, so a flipped continuation bit or
// a lying length must surface as kMalformedBlob, never as an abort or an
// accepted misparse.
TEST_F(IndexTest, DeserializeRejectsV2TailCorruption) {
  ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
      scheme_.production_graph(), labeled_->labeler);
  std::string blob = index.Serialize();
  // Tail layout after the 24-byte header: 5 codec width bytes, 1 tail
  // format version byte, u64 span_bits, then the span stream words — the
  // first span byte is the vbyte base length of block 0.
  const size_t version_at = 24 + 5;
  const size_t first_span_byte = version_at + 1 + 8;

  // Unknown tail-format version under the v3 magic.
  std::string bad_version = blob;
  bad_version[version_at] = 9;
  Result<ProvenanceIndex> rejected = ProvenanceIndex::Deserialize(bad_version);
  EXPECT_EQ(rejected.code(), ErrorCode::kMalformedBlob);
  EXPECT_EQ(rejected.status().message(), "unsupported tail-format version");
  // A v1 version byte under the v3 magic is just as foreign.
  bad_version[version_at] = 1;
  EXPECT_EQ(ProvenanceIndex::Deserialize(bad_version).code(),
            ErrorCode::kMalformedBlob);

  // Continuation bit forced on in block 0's vbyte base length: the base
  // swallows the delta-width field and every downstream read misaligns.
  std::string bad_vbyte = blob;
  bad_vbyte[first_span_byte] =
      static_cast<char>(bad_vbyte[first_span_byte] | 0x80);
  EXPECT_EQ(ProvenanceIndex::Deserialize(bad_vbyte).code(),
            ErrorCode::kMalformedBlob);

  // An all-continuation vbyte run (no terminating group within the 64-bit
  // range) must fail via the permissive reader, not spin or abort.
  auto u64 = [](std::string* out, uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
    }
  };
  std::string runaway(blob, 0, 24 + 5);  // header + codec widths
  runaway.push_back(2);                  // tail-format version
  u64(&runaway, 11 * 8);                 // span_bits: 11 vbyte groups
  runaway.append(std::string(11, '\xFF'));
  runaway.append(5, '\0');  // pad the 88-bit stream to word granularity
  u64(&runaway, 0);         // payload_bits
  EXPECT_EQ(ProvenanceIndex::Deserialize(runaway).code(),
            ErrorCode::kMalformedBlob);

  // Claimed items with an empty span stream: the block walk starves.
  std::string starved(blob, 0, 8);
  u64(&starved, 10);  // num_items
  u64(&starved, 0);   // arena_bits
  starved.append(5, '\0');
  starved.push_back(2);
  u64(&starved, 0);  // span_bits
  u64(&starved, 0);  // payload_bits
  EXPECT_EQ(ProvenanceIndex::Deserialize(starved).code(),
            ErrorCode::kMalformedBlob);

  // Truncation inside the span words (block headers cut mid-stream).
  EXPECT_EQ(
      ProvenanceIndex::Deserialize(blob.substr(0, first_span_byte + 1)).code(),
      ErrorCode::kMalformedBlob);
}

TEST_F(IndexTest, QueriesWorkFromDeserializedIndex) {
  ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
      scheme_.production_graph(), labeled_->labeler);
  std::string blob = index.Serialize();
  ProvenanceIndex restored = ProvenanceIndex::Deserialize(blob).value();

  auto view = *CompiledView::Compile(ex_.spec.grammar, ex_.grey_view);
  ViewLabel label = scheme_.LabelView(view, ViewLabelMode::kQueryEfficient);
  Decoder pi(&label);
  ProvenanceOracle oracle(labeled_->run, view);
  int checked = 0;
  for (int d1 = 0; d1 < labeled_->run.num_items(); d1 += 7) {
    for (int d2 = 0; d2 < labeled_->run.num_items(); d2 += 11) {
      if (!oracle.ItemVisible(d1) || !oracle.ItemVisible(d2)) continue;
      ASSERT_EQ(pi.Depends(restored.Label(d1), restored.Label(d2)),
                oracle.Depends(d1, d2))
          << "d1=" << d1 << " d2=" << d2;
      ++checked;
    }
  }
  EXPECT_GT(checked, 50);
}

TEST_F(IndexTest, CompactnessVsRawStructs) {
  // The arena holds ~60 bits per item; in-memory DataLabel structs cost two
  // orders of magnitude more.
  ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
      scheme_.production_graph(), labeled_->labeler);
  double bits_per_item =
      static_cast<double>(index.SizeBits()) / index.num_items();
  EXPECT_LT(bits_per_item, 120.0);
  EXPECT_GT(bits_per_item, 10.0);
}

// ----- Randomized corrupt-blob corpus (single-run and merged). -----
//
// Byte flips and truncations under a seeded RNG, pushed through the whole
// untrusted-snapshot pipeline: Deserialize either rejects the blob with
// kMalformedBlob, or returns an index whose every accessor is safe (the
// deserializer validated each label span) and whose labels the service
// vets — queries then succeed or fail with kInvalidArgument. No input may
// crash; the corpus runs under the ASan/UBSan CI matrix.

// Applies `mutations` random byte flips (at least one bit per chosen byte).
std::string FlipBytes(const std::string& blob, Rng& rng, int mutations) {
  std::string corrupt = blob;
  for (int m = 0; m < mutations; ++m) {
    size_t pos = rng.NextBounded(corrupt.size());
    corrupt[pos] = static_cast<char>(corrupt[pos] ^
                                     (1u << rng.NextBounded(8)));
  }
  return corrupt;
}

TEST_F(IndexTest, RandomizedCorruptionCorpusSingleRun) {
  ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
      scheme_.production_graph(), labeled_->labeler);
  std::string blob = index.Serialize();

  Rng rng(2024);
  int rejected = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string corrupt = FlipBytes(blob, rng, 1 + trial % 3);
    Result<ProvenanceIndex> parsed = ProvenanceIndex::Deserialize(corrupt);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.code(), ErrorCode::kMalformedBlob);
      ++rejected;
      continue;
    }
    // A surviving blob (e.g. an arena flip that still decodes) must be
    // fully usable: every accessor was validated at the door.
    for (int item = 0; item < parsed->num_items(); item += 41) {
      parsed->Label(item);
    }
  }
  // Header/offset flips are always caught; only some arena flips survive.
  EXPECT_GT(rejected, 100);

  // Truncation at *every* strict prefix length fails cleanly.
  for (int trial = 0; trial < 60; ++trial) {
    size_t cut = rng.NextBounded(blob.size());
    EXPECT_EQ(ProvenanceIndex::Deserialize(blob.substr(0, cut)).code(),
              ErrorCode::kMalformedBlob)
        << "cut=" << cut;
  }
}

TEST_F(IndexTest, RandomizedCorruptionCorpusMerged) {
  // Three runs merged, then the same corpus against the merged format —
  // including the run-count table that the single-run format lacks. Parsed
  // survivors are additionally pushed through the service's batch path,
  // which must answer or reject with kInvalidArgument, never crash.
  auto service = ProvenanceService::Create(MakePaperExample().spec).value();
  std::vector<ProvenanceIndex> snapshots;
  for (int r = 0; r < 3; ++r) {
    snapshots.push_back(
        service
            ->GenerateLabeledRun(
                RunGeneratorOptions{.target_items = 120,
                                    .seed = 60 + static_cast<uint64_t>(r)})
            ->Snapshot());
  }
  MergedProvenanceIndex merged = ProvenanceIndex::Merge(snapshots).value();
  std::string blob = merged.Serialize();

  Rng rng(4096);
  int rejected = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string corrupt = FlipBytes(blob, rng, 1 + trial % 3);
    Result<MergedProvenanceIndex> parsed =
        MergedProvenanceIndex::Deserialize(corrupt);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.code(), ErrorCode::kMalformedBlob);
      ++rejected;
      continue;
    }
    for (int global = 0; global < parsed->total_items(); global += 37) {
      parsed->LabelByGlobalId(global);
    }
    if (parsed->num_runs() > 0 && parsed->num_items(0) > 1) {
      std::vector<std::pair<RunItem, RunItem>> queries = {{{0, 0}, {0, 1}}};
      Result<std::vector<bool>> answers = service->QueryAcrossRuns(
          service->default_view(), *parsed, queries);
      if (!answers.ok()) {
        EXPECT_EQ(answers.code(), ErrorCode::kInvalidArgument);
      }
    }
  }
  EXPECT_GT(rejected, 100);

  for (int trial = 0; trial < 60; ++trial) {
    size_t cut = rng.NextBounded(blob.size());
    EXPECT_EQ(MergedProvenanceIndex::Deserialize(blob.substr(0, cut)).code(),
              ErrorCode::kMalformedBlob)
        << "cut=" << cut;
  }

  // Cross-format confusion: a single-run blob is not a merged blob and
  // vice versa (distinct magics), rejected rather than misparsed.
  EXPECT_EQ(MergedProvenanceIndex::Deserialize(snapshots[0].Serialize())
                .code(),
            ErrorCode::kMalformedBlob);
  EXPECT_EQ(ProvenanceIndex::Deserialize(blob).code(),
            ErrorCode::kMalformedBlob);
}

TEST_F(IndexTest, RandomizedCorruptionCorpusUnifiedTail) {
  // Both blob formats now parse their label payload through the one
  // hardened LabelStore::ParseTail (codec widths, bit-packed offsets,
  // arena). Aim every flip at that shared tail, past the format-specific
  // headers, so the corpus exercises the unified deserializer in both
  // framings: each mutant must be rejected with kMalformedBlob or yield an
  // index whose accessors are safe.
  ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
      scheme_.production_graph(), labeled_->labeler);
  std::string single = index.Serialize();
  const size_t single_tail = 8 + 16;  // magic + num_items/arena_bits

  std::vector<ProvenanceIndex> runs;
  runs.push_back(ProvenanceIndex::Deserialize(single).value());
  runs.push_back(ProvenanceIndex::Deserialize(single).value());
  MergedProvenanceIndex merged = ProvenanceIndex::Merge(runs).value();
  std::string merged_blob = merged.Serialize();
  // magic + num_runs/total_items/arena_bits + run table
  const size_t merged_tail = 8 + 24 + 8 * runs.size();

  Rng rng(777);
  int rejected_single = 0, rejected_merged = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupt = single;
    size_t pos = single_tail + rng.NextBounded(corrupt.size() - single_tail);
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1u << rng.NextBounded(8)));
    Result<ProvenanceIndex> parsed = ProvenanceIndex::Deserialize(corrupt);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.code(), ErrorCode::kMalformedBlob);
      ++rejected_single;
    } else {
      for (int item = 0; item < parsed->num_items(); item += 29) {
        parsed->Label(item);
      }
    }

    corrupt = merged_blob;
    pos = merged_tail + rng.NextBounded(corrupt.size() - merged_tail);
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1u << rng.NextBounded(8)));
    Result<MergedProvenanceIndex> parsed_merged =
        MergedProvenanceIndex::Deserialize(corrupt);
    if (!parsed_merged.ok()) {
      EXPECT_EQ(parsed_merged.code(), ErrorCode::kMalformedBlob);
      ++rejected_merged;
    } else {
      for (int global = 0; global < parsed_merged->total_items();
           global += 29) {
        parsed_merged->LabelByGlobalId(global);
      }
    }
  }
  // Offset-table and codec-width flips are always caught; only some arena
  // flips decode by luck.
  EXPECT_GT(rejected_single, 50);
  EXPECT_GT(rejected_merged, 50);
}

// ReadU64 is the primitive every header field of both blob formats goes
// through; a position check written as `*pos + 8 > blob.size()` wraps
// around for adversarial positions near SIZE_MAX and admits an
// out-of-bounds read. The subtraction form must refuse any position that
// does not leave 8 readable bytes — part of the blob-corruption corpus.
TEST(IndexEdgeCases, ReadU64RefusesAdversarialPositions) {
  const std::string blob(16, '\x5A');
  uint64_t value = 0;
  for (size_t bad : {SIZE_MAX, SIZE_MAX - 1, SIZE_MAX - 7, SIZE_MAX - 8,
                     blob.size() - 7, blob.size(), blob.size() + 1}) {
    size_t pos = bad;
    EXPECT_FALSE(LabelStore::ReadU64(blob, &pos, &value)) << "pos=" << bad;
    EXPECT_EQ(pos, bad);  // a refused read must not advance the cursor
  }
  // Short blobs refuse every position, including 0 (the size() - 8 form
  // must not itself wrap).
  for (size_t short_size : {size_t{0}, size_t{7}}) {
    size_t pos = 0;
    EXPECT_FALSE(
        LabelStore::ReadU64(blob.substr(0, short_size), &pos, &value));
  }
  // In-bounds reads still work, up to and including the last full word.
  size_t pos = blob.size() - 8;
  ASSERT_TRUE(LabelStore::ReadU64(blob, &pos, &value));
  EXPECT_EQ(pos, blob.size());
  EXPECT_EQ(value, 0x5A5A5A5A5A5A5A5AULL);
}

TEST(IndexEdgeCases, EmptyIndex) {
  PaperExample ex = MakePaperExample();
  ProductionGraph pg(&ex.spec.grammar);
  ProvenanceIndexBuilder builder(pg);
  ProvenanceIndex index = std::move(builder).Build();
  EXPECT_EQ(index.num_items(), 0);
  std::string blob = index.Serialize();
  auto restored = ProvenanceIndex::Deserialize(blob);
  ASSERT_TRUE(restored.has_value()) << restored.status().ToString();
  EXPECT_EQ(restored->num_items(), 0);
}

TEST(IndexBioAid, LargeRunRoundTrip) {
  Workload workload = MakeBioAid(2012);
  FvlScheme scheme = FvlScheme::Create(&workload.spec).value();
  RunGeneratorOptions options;
  options.target_items = 4000;
  options.seed = 3;
  FvlScheme::LabeledRun labeled = scheme.GenerateLabeledRun(options);
  ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
      scheme.production_graph(), labeled.labeler);
  std::string blob = index.Serialize();
  auto restored = *ProvenanceIndex::Deserialize(blob);
  for (int item = 0; item < restored.num_items(); item += 13) {
    ASSERT_EQ(restored.Label(item), labeled.labeler.Label(item));
  }
}

}  // namespace
}  // namespace fvl
