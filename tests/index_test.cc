#include <gtest/gtest.h>

#include "fvl/core/decoder.h"
#include "fvl/core/index.h"
#include "fvl/core/scheme.h"
#include "fvl/run/provenance_oracle.h"
#include "fvl/workload/bioaid.h"
#include "fvl/workload/paper_example.h"
#include "fvl/workload/view_generator.h"
#include "test_util.h"

namespace fvl {
namespace {

class IndexTest : public ::testing::Test {
 protected:
  IndexTest() : ex_(MakePaperExample()), scheme_(&ex_.spec) {
    RunGeneratorOptions options;
    options.target_items = 400;
    options.seed = 8;
    labeled_ = std::make_unique<FvlScheme::LabeledRun>(
        scheme_.GenerateLabeledRun(options));
  }

  PaperExample ex_;
  FvlScheme scheme_;
  std::unique_ptr<FvlScheme::LabeledRun> labeled_;
};

TEST_F(IndexTest, RoundTripsEveryLabel) {
  ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
      scheme_.production_graph(), labeled_->labeler);
  ASSERT_EQ(index.num_items(), labeled_->run.num_items());
  for (int item = 0; item < index.num_items(); ++item) {
    ASSERT_EQ(index.Label(item), labeled_->labeler.Label(item))
        << "item " << item;
    ASSERT_EQ(index.LabelBits(item), labeled_->labeler.LabelBits(item));
  }
}

TEST_F(IndexTest, SerializeDeserializeRoundTrip) {
  ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
      scheme_.production_graph(), labeled_->labeler);
  std::string blob = index.Serialize();
  std::string error;
  LabelCodec codec(scheme_.production_graph());
  auto restored = ProvenanceIndex::Deserialize(blob, codec, &error);
  ASSERT_TRUE(restored.has_value()) << error;
  ASSERT_EQ(restored->num_items(), index.num_items());
  for (int item = 0; item < index.num_items(); ++item) {
    ASSERT_EQ(restored->Label(item), index.Label(item));
  }
  EXPECT_EQ(restored->Serialize(), blob);
}

TEST_F(IndexTest, DeserializeRejectsCorruption) {
  ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
      scheme_.production_graph(), labeled_->labeler);
  std::string blob = index.Serialize();
  LabelCodec codec(scheme_.production_graph());
  std::string error;

  // Bad magic.
  std::string bad = blob;
  bad[0] = 'X';
  EXPECT_FALSE(ProvenanceIndex::Deserialize(bad, codec, &error).has_value());
  EXPECT_EQ(error, "bad magic");
  // Truncation at every prefix length must fail cleanly, never crash.
  for (size_t cut : {size_t{4}, size_t{10}, size_t{30}, blob.size() - 3}) {
    EXPECT_FALSE(ProvenanceIndex::Deserialize(blob.substr(0, cut), codec,
                                              &error)
                     .has_value());
  }
  // Trailing garbage.
  EXPECT_FALSE(
      ProvenanceIndex::Deserialize(blob + "zz", codec, &error).has_value());
}

TEST_F(IndexTest, QueriesWorkFromDeserializedIndex) {
  ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
      scheme_.production_graph(), labeled_->labeler);
  std::string blob = index.Serialize();
  LabelCodec codec(scheme_.production_graph());
  std::string error;
  auto restored = *ProvenanceIndex::Deserialize(blob, codec, &error);

  auto view = *CompiledView::Compile(ex_.spec.grammar, ex_.grey_view, &error);
  ViewLabel label = scheme_.LabelView(view, ViewLabelMode::kQueryEfficient);
  Decoder pi(&label);
  ProvenanceOracle oracle(labeled_->run, view);
  int checked = 0;
  for (int d1 = 0; d1 < labeled_->run.num_items(); d1 += 7) {
    for (int d2 = 0; d2 < labeled_->run.num_items(); d2 += 11) {
      if (!oracle.ItemVisible(d1) || !oracle.ItemVisible(d2)) continue;
      ASSERT_EQ(pi.Depends(restored.Label(d1), restored.Label(d2)),
                oracle.Depends(d1, d2))
          << "d1=" << d1 << " d2=" << d2;
      ++checked;
    }
  }
  EXPECT_GT(checked, 50);
}

TEST_F(IndexTest, CompactnessVsRawStructs) {
  // The arena holds ~60 bits per item; in-memory DataLabel structs cost two
  // orders of magnitude more.
  ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
      scheme_.production_graph(), labeled_->labeler);
  double bits_per_item =
      static_cast<double>(index.SizeBits()) / index.num_items();
  EXPECT_LT(bits_per_item, 120.0);
  EXPECT_GT(bits_per_item, 10.0);
}

TEST(IndexEdgeCases, EmptyIndex) {
  PaperExample ex = MakePaperExample();
  ProductionGraph pg(&ex.spec.grammar);
  ProvenanceIndexBuilder builder(pg);
  ProvenanceIndex index = std::move(builder).Build();
  EXPECT_EQ(index.num_items(), 0);
  std::string blob = index.Serialize();
  LabelCodec codec(pg);
  std::string error;
  auto restored = ProvenanceIndex::Deserialize(blob, codec, &error);
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_EQ(restored->num_items(), 0);
}

TEST(IndexBioAid, LargeRunRoundTrip) {
  Workload workload = MakeBioAid(2012);
  FvlScheme scheme(&workload.spec);
  RunGeneratorOptions options;
  options.target_items = 4000;
  options.seed = 3;
  FvlScheme::LabeledRun labeled = scheme.GenerateLabeledRun(options);
  ProvenanceIndex index = ProvenanceIndexBuilder::FromLabeledRun(
      scheme.production_graph(), labeled.labeler);
  std::string blob = index.Serialize();
  LabelCodec codec(scheme.production_graph());
  std::string error;
  auto restored = *ProvenanceIndex::Deserialize(blob, codec, &error);
  for (int item = 0; item < restored.num_items(); item += 13) {
    ASSERT_EQ(restored.Label(item), labeled.labeler.Label(item));
  }
}

}  // namespace
}  // namespace fvl
