// The on-disk index tier (util/file.h, util/blob_source.h, Map/CompactFiles):
//
//   * differential — a file-served (mmap, borrowed-arena) index must answer
//     every query bit-identically to the heap Deserialize round trip and to
//     the ground-truth oracle, across all three ViewLabelModes, single-run
//     and merged;
//   * compaction — CompactFiles output is byte-identical to a from-scratch
//     Merge of the same snapshots, including when the inputs are themselves
//     merged archives (re-merge without flattening), and its peak live-store
//     count is independent of the input count (one parsed input alive at a
//     time);
//   * crash recovery — a run checkpointed as delta files survives a torn
//     final write: the surviving prefix reassembles via FromDeltas into
//     exactly the snapshot at that watermark, and the torn tail is rejected
//     as kMalformedBlob, never an abort;
//   * golden archives — tests/testdata holds one committed FVLIDX3 and one
//     FVLMRG2 file; the suite Map()s them and checks they still match what
//     the same seed produces today, so a serialization format change that
//     forgets to bump the magic fails here first. Regenerate with
//     FVL_REGEN_GOLDEN=1 ./disk_tier_test.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fvl/core/index.h"
#include "fvl/core/label_store.h"
#include "fvl/run/provenance_oracle.h"
#include "fvl/service/provenance_service.h"
#include "fvl/util/file.h"
#include "fvl/util/random.h"
#include "fvl/workload/paper_example.h"

namespace fvl {
namespace {

constexpr ViewLabelMode kAllModes[] = {ViewLabelMode::kSpaceEfficient,
                                       ViewLabelMode::kDefault,
                                       ViewLabelMode::kQueryEfficient};

std::string TempPath(const std::string& name) {
  return "/tmp/fvl_disk_tier_" + name;
}

void WriteFileOrDie(const std::string& path, std::string_view blob) {
  FileHandle out = FileHandle::CreateTruncate(path).value();
  ASSERT_TRUE(out.WriteAll(blob).ok());
  ASSERT_TRUE(out.Close().ok());
}

std::string ReadFileOrDie(const std::string& path) {
  return FileHandle::OpenRead(path).value().ReadAll().value();
}

// Paper-example service with registered views; every suite below shares
// this shape. Serving caches stay off so the mapped and heap paths cannot
// hide behind a shared memo.
struct Fixture {
  PaperExample example;
  std::shared_ptr<ProvenanceService> service;
  ViewHandle grey;

  Fixture() : example(MakePaperExample()) {
    service = ProvenanceService::Create(example.spec).value();
    grey = service->RegisterView(example.grey_view).value();
    service->set_serving_cache_enabled(false);
  }

  std::vector<ViewHandle> views() { return {service->default_view(), grey}; }
};

// ----- Differential: mapped == heap == oracle. -----

TEST(DiskTierDifferential, SingleRunMappedMatchesHeapAndOracle) {
  Fixture fx;
  auto session = fx.service->GenerateLabeledRun(
      RunGeneratorOptions{.target_items = 220, .seed = 41});
  ProvenanceIndex heap = session->Snapshot();
  const std::string blob = heap.Serialize();
  const std::string path = TempPath("single.fvlidx");
  WriteFileOrDie(path, blob);

  ProvenanceIndex mapped = ProvenanceIndex::Map(path).value();
  // The mapping, not a copy, backs the long-label arena (unless this run
  // happened to produce none).
  EXPECT_TRUE(mapped.store().arena_borrowed() ||
              mapped.store().arena_bits() == 0);
  // Serialization is the identity on the mapped form too.
  EXPECT_EQ(mapped.Serialize(), blob);

  Rng rng(7);
  std::vector<std::pair<int, int>> queries;
  for (int q = 0; q < 160; ++q) {
    queries.push_back({rng.NextInt(0, heap.num_items() - 1),
                       rng.NextInt(0, heap.num_items() - 1)});
  }
  for (ViewHandle view : fx.views()) {
    const CompiledView& compiled =
        *fx.service->CompiledRegularView(view).value();
    ProvenanceOracle oracle(session->run(), compiled);
    for (ViewLabelMode mode : kAllModes) {
      std::vector<bool> from_heap =
          fx.service->DependsMany(view, heap, queries, mode).value();
      std::vector<bool> from_map =
          fx.service->DependsMany(view, mapped, queries, mode).value();
      ASSERT_EQ(from_heap, from_map)
          << "view " << view.id() << " mode " << static_cast<int>(mode);
      for (size_t q = 0; q < queries.size(); ++q) {
        auto [d1, d2] = queries[q];
        if (!oracle.ItemVisible(d1) || !oracle.ItemVisible(d2)) continue;
        ASSERT_EQ(from_map[q], oracle.Depends(d1, d2))
            << "d1=" << d1 << " d2=" << d2 << " view " << view.id()
            << " mode " << static_cast<int>(mode);
      }
    }
  }
}

TEST(DiskTierDifferential, MergedMappedMatchesHeapAndOracle) {
  Fixture fx;
  std::vector<std::shared_ptr<ProvenanceSession>> sessions;
  std::vector<ProvenanceIndex> snapshots;
  for (int r = 0; r < 3; ++r) {
    sessions.push_back(fx.service->GenerateLabeledRun(
        RunGeneratorOptions{.target_items = 150 + 23 * r,
                            .seed = 61 + static_cast<uint64_t>(r)}));
    snapshots.push_back(sessions.back()->Snapshot());
  }
  MergedProvenanceIndex heap = ProvenanceIndex::Merge(snapshots).value();
  const std::string blob = heap.Serialize();
  const std::string path = TempPath("merged.fvlmrg");
  WriteFileOrDie(path, blob);

  MergedProvenanceIndex mapped = MergedProvenanceIndex::Map(path).value();
  EXPECT_TRUE(mapped.store().arena_borrowed() ||
              mapped.store().arena_bits() == 0);
  EXPECT_EQ(mapped.Serialize(), blob);
  ASSERT_EQ(mapped.num_runs(), 3);

  for (ViewHandle view : fx.views()) {
    const CompiledView& compiled =
        *fx.service->CompiledRegularView(view).value();
    for (size_t r = 0; r < snapshots.size(); ++r) {
      Rng rng(100 + r);
      std::vector<std::pair<RunItem, RunItem>> addressed;
      std::vector<std::pair<int, int>> local;
      for (int q = 0; q < 80; ++q) {
        int d1 = rng.NextInt(0, snapshots[r].num_items() - 1);
        int d2 = rng.NextInt(0, snapshots[r].num_items() - 1);
        local.push_back({d1, d2});
        addressed.push_back({{static_cast<int>(r), d1},
                             {static_cast<int>(r), d2}});
      }
      ProvenanceOracle oracle(sessions[r]->run(), compiled);
      for (ViewLabelMode mode : kAllModes) {
        std::vector<bool> from_heap =
            fx.service->QueryAcrossRuns(view, heap, addressed, mode).value();
        std::vector<bool> from_map =
            fx.service->QueryAcrossRuns(view, mapped, addressed, mode).value();
        ASSERT_EQ(from_heap, from_map)
            << "run " << r << " view " << view.id() << " mode "
            << static_cast<int>(mode);
        for (size_t q = 0; q < local.size(); ++q) {
          auto [d1, d2] = local[q];
          if (!oracle.ItemVisible(d1) || !oracle.ItemVisible(d2)) continue;
          ASSERT_EQ(from_map[q], oracle.Depends(d1, d2))
              << "run " << r << " d1=" << d1 << " d2=" << d2;
        }
      }
    }
  }
}

// ----- Compaction: bit-identity and the memory bound. -----

TEST(DiskTierCompaction, OutputBitIdenticalToFromScratchMerge) {
  Fixture fx;
  std::vector<ProvenanceIndex> snapshots;
  std::vector<std::string> l0_paths;
  for (int r = 0; r < 4; ++r) {
    auto session = fx.service->GenerateLabeledRun(
        RunGeneratorOptions{.target_items = 120 + 31 * r,
                            .seed = 200 + static_cast<uint64_t>(r)});
    snapshots.push_back(session->Snapshot());
    l0_paths.push_back(TempPath("l0_" + std::to_string(r) + ".fvlidx"));
    WriteFileOrDie(l0_paths[r], snapshots[r].Serialize());
  }
  const std::string expected =
      ProvenanceIndex::Merge(snapshots).value().Serialize();

  // L0 -> L1: compacting the run files equals merging the snapshots.
  const std::string l1_path = TempPath("l1.fvlmrg");
  MergedProvenanceIndex compacted =
      fx.service->CompactFiles(l0_paths, l1_path).value();
  EXPECT_EQ(compacted.num_runs(), 4);
  EXPECT_EQ(ReadFileOrDie(l1_path), expected);
  EXPECT_EQ(compacted.Serialize(), expected);

  // L1 -> L2: already-merged inputs re-merge without flattening, to the
  // same bytes again. Split the runs 1|3 to keep the order 0..3.
  const std::string half_a = TempPath("half_a.fvlmrg");
  const std::string half_b = TempPath("half_b.fvlmrg");
  WriteFileOrDie(half_a, ProvenanceIndex::Merge({&snapshots[0], 1})
                             .value()
                             .Serialize());
  WriteFileOrDie(half_b, ProvenanceIndex::Merge({&snapshots[1], 3})
                             .value()
                             .Serialize());
  const std::string l2_path = TempPath("l2.fvlmrg");
  std::vector<std::string> level1 = {half_a, half_b};
  MergedProvenanceIndex recompacted =
      fx.service->CompactFiles(level1, l2_path).value();
  EXPECT_EQ(recompacted.num_runs(), 4);
  EXPECT_EQ(ReadFileOrDie(l2_path), expected);

  // Mixed levels compact too: a merged archive followed by a single-run
  // one folds into the same grouped shape.
  std::vector<std::string> mixed = {half_b, l0_paths[0]};
  const std::string mixed_path = TempPath("mixed.fvlmrg");
  MergedProvenanceIndex from_mixed =
      fx.service->CompactFiles(mixed, mixed_path).value();
  EXPECT_EQ(from_mixed.num_runs(), 4);
}

TEST(DiskTierCompaction, PeakLiveStoresIndependentOfInputCount) {
  Fixture fx;
  auto peak_for = [&](int num_inputs) {
    std::vector<std::string> paths;
    for (int r = 0; r < num_inputs; ++r) {
      auto session = fx.service->GenerateLabeledRun(
          RunGeneratorOptions{.target_items = 90,
                              .seed = 300 + static_cast<uint64_t>(r)});
      paths.push_back(TempPath("peak_" + std::to_string(r) + ".fvlidx"));
      WriteFileOrDie(paths.back(), session->Snapshot().Serialize());
    }
    const int base = internal::StoreCountProbe::live();
    internal::StoreCountProbe::ResetPeak();
    MergedProvenanceIndex compacted =
        fx.service->CompactFiles(paths, TempPath("peak_out.fvlmrg")).value();
    EXPECT_EQ(compacted.num_runs(), num_inputs);
    return internal::StoreCountProbe::peak() - base;
  };

  // The streaming contract: however many archives fold in, only one parsed
  // input is alive at a time, so the concurrent-store count is a small
  // constant — O(largest input tail + output), not O(sum of inputs).
  const int peak_two = peak_for(2);
  const int peak_eight = peak_for(8);
  EXPECT_EQ(peak_two, peak_eight);
  EXPECT_LE(peak_eight, 6);
}

// ----- Crash recovery: a torn final delta write. -----

TEST(DiskTierRecovery, TruncatedFinalDeltaLeavesSurvivingPrefixServable) {
  Fixture fx;
  // Replay a reference run through a fresh session, checkpointing a delta
  // file every ~60 items; after each flush record the full snapshot a
  // recovery at that watermark must reproduce.
  auto reference = fx.service->GenerateLabeledRun(
      RunGeneratorOptions{.target_items = 300, .seed = 77});
  auto session = fx.service->BeginRun();
  std::vector<std::string> delta_paths;
  std::vector<std::string> expected_at_watermark;
  auto flush = [&] {
    ProvenanceIndex delta = session->SnapshotDelta();
    delta_paths.push_back(
        TempPath("delta" + std::to_string(delta_paths.size()) + ".fvlidx"));
    WriteFileOrDie(delta_paths.back(), delta.Serialize());
    expected_at_watermark.push_back(session->Snapshot().Serialize());
  };
  for (int s = 0; s < reference->run().num_steps(); ++s) {
    const DerivationStep& step = reference->run().step(s);
    ASSERT_TRUE(session->Apply(step.instance, step.production).ok());
    if (session->num_items() - session->frozen_items() >= 60) flush();
  }
  flush();
  ASSERT_GE(delta_paths.size(), 3u) << "fixture too small to tear";

  const std::string intact_tail = ReadFileOrDie(delta_paths.back());
  for (size_t keep : {intact_tail.size() - 1, intact_tail.size() / 2,
                      size_t{7}, size_t{0}}) {
    // The crash: the final delta write stops after `keep` bytes.
    WriteFileOrDie(delta_paths.back(), intact_tail.substr(0, keep));

    // Recovery never aborts: each surviving file parses, the torn tail is
    // rejected as a malformed blob (an empty file additionally fails at
    // the mmap layer when served via Map).
    std::vector<ProvenanceIndex> survivors;
    for (const std::string& path : delta_paths) {
      Result<ProvenanceIndex> parsed =
          ProvenanceIndex::Deserialize(ReadFileOrDie(path));
      if (!parsed.ok()) {
        EXPECT_EQ(parsed.status().code(), ErrorCode::kMalformedBlob)
            << "keep=" << keep << ": " << parsed.status().ToString();
        break;
      }
      survivors.push_back(*std::move(parsed));
    }
    ASSERT_EQ(survivors.size(), delta_paths.size() - 1) << "keep=" << keep;
    if (keep > 0) {
      Result<ProvenanceIndex> mapped = ProvenanceIndex::Map(delta_paths.back());
      ASSERT_FALSE(mapped.ok());
      EXPECT_EQ(mapped.status().code(), ErrorCode::kMalformedBlob);
    }

    // The surviving prefix reassembles into exactly the snapshot at the
    // last intact watermark — nothing before the torn checkpoint is lost.
    ProvenanceIndex recovered = ProvenanceIndex::FromDeltas(survivors).value();
    EXPECT_EQ(recovered.Serialize(),
              expected_at_watermark[survivors.size() - 1]);
  }
}

// ----- Service-level error paths. -----

TEST(DiskTierErrors, FileAndContentFailuresAreTyped) {
  Fixture fx;
  // Missing file: the open fails, typed kIo.
  Result<ProvenanceIndex> missing =
      fx.service->OpenIndexFile(TempPath("does_not_exist.fvlidx"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), ErrorCode::kIo);

  // A file that opens and maps but is not an archive: kMalformedBlob.
  const std::string garbage_path = TempPath("garbage.fvlidx");
  WriteFileOrDie(garbage_path, "this is not an index archive");
  Result<ProvenanceIndex> garbage = fx.service->OpenIndexFile(garbage_path);
  ASSERT_FALSE(garbage.ok());
  EXPECT_EQ(garbage.status().code(), ErrorCode::kMalformedBlob);

  // Wrong format for the endpoint: a single-run archive is not a merged
  // one and vice versa.
  auto session = fx.service->GenerateLabeledRun(
      RunGeneratorOptions{.target_items = 80, .seed = 5});
  ProvenanceIndex snapshot = session->Snapshot();
  const std::string single_path = TempPath("format_single.fvlidx");
  WriteFileOrDie(single_path, snapshot.Serialize());
  EXPECT_FALSE(fx.service->OpenMergedIndexFile(single_path).ok());
  const std::string merged_path = TempPath("format_merged.fvlmrg");
  WriteFileOrDie(merged_path,
                 ProvenanceIndex::Merge({&snapshot, 1}).value().Serialize());
  EXPECT_FALSE(fx.service->OpenIndexFile(merged_path).ok());

  // Compaction attributes a bad input by position.
  std::vector<std::string> inputs = {single_path, garbage_path};
  Result<MergedProvenanceIndex> compacted =
      fx.service->CompactFiles(inputs, TempPath("errors_out.fvlmrg"));
  ASSERT_FALSE(compacted.ok());
  EXPECT_NE(compacted.status().ToString().find("input 1"), std::string::npos)
      << compacted.status().ToString();
}

// ----- Golden archives: committed files must keep parsing and matching. --

#ifndef FVL_TESTDATA_DIR
#error "tests/CMakeLists.txt must define FVL_TESTDATA_DIR"
#endif

// The deterministic builders behind both committed fixtures (seeds fixed
// forever; regenerate the files with FVL_REGEN_GOLDEN=1 after an
// *intentional* format change, alongside the magic bump).
std::string GoldenRunBlob(Fixture& fx) {
  return fx.service
      ->GenerateLabeledRun(RunGeneratorOptions{.target_items = 140, .seed = 9})
      ->Snapshot()
      .Serialize();
}

std::string GoldenMergedBlob(Fixture& fx) {
  std::vector<ProvenanceIndex> snapshots;
  for (int r = 0; r < 2; ++r) {
    snapshots.push_back(
        fx.service
            ->GenerateLabeledRun(RunGeneratorOptions{
                .target_items = 100 + 40 * r,
                .seed = 15 + static_cast<uint64_t>(r)})
            ->Snapshot());
  }
  return ProvenanceIndex::Merge(snapshots).value().Serialize();
}

TEST(DiskTierGolden, CommittedArchivesServeAndMatch) {
  Fixture fx;
  const std::string run_path =
      std::string(FVL_TESTDATA_DIR) + "/golden_archive.fvlidx";
  const std::string merged_path =
      std::string(FVL_TESTDATA_DIR) + "/golden_archive.fvlmrg";
  const std::string run_blob = GoldenRunBlob(fx);
  const std::string merged_blob = GoldenMergedBlob(fx);

  if (std::getenv("FVL_REGEN_GOLDEN") != nullptr) {
    WriteFileOrDie(run_path, run_blob);
    WriteFileOrDie(merged_path, merged_blob);
    GTEST_SKIP() << "regenerated golden archives in " << FVL_TESTDATA_DIR;
  }

  // Byte-identity against today's serializer: a format change that forgot
  // to bump the magic (and regenerate these files) fails loudly here.
  EXPECT_EQ(ReadFileOrDie(run_path), run_blob)
      << "golden single-run archive drifted from the current serializer";
  EXPECT_EQ(ReadFileOrDie(merged_path), merged_blob)
      << "golden merged archive drifted from the current serializer";

  // And the committed files actually serve through the mmap path.
  ProvenanceIndex run = fx.service->OpenIndexFile(run_path).value();
  EXPECT_GT(run.num_items(), 0);
  MergedProvenanceIndex merged =
      fx.service->OpenMergedIndexFile(merged_path).value();
  EXPECT_EQ(merged.num_runs(), 2);
  Rng rng(3);
  std::vector<std::pair<int, int>> queries;
  for (int q = 0; q < 40; ++q) {
    queries.push_back({rng.NextInt(0, run.num_items() - 1),
                       rng.NextInt(0, run.num_items() - 1)});
  }
  ProvenanceIndex heap =
      ProvenanceIndex::Deserialize(ReadFileOrDie(run_path)).value();
  for (ViewLabelMode mode : kAllModes) {
    EXPECT_EQ(fx.service->DependsMany(fx.grey, run, queries, mode).value(),
              fx.service->DependsMany(fx.grey, heap, queries, mode).value());
  }
}

}  // namespace
}  // namespace fvl
