#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fvl/util/bitstream.h"
#include "fvl/util/boolean_matrix.h"
#include "fvl/util/histogram.h"
#include "fvl/util/random.h"
#include "fvl/util/single_writer.h"
#include "fvl/util/table_printer.h"
#include "fvl/util/thread_pool.h"
#include "fvl/workload/key_generator.h"
#include "test_util.h"

namespace fvl {
namespace {

using ::fvl::testing::Mat;

TEST(BoolMatrix, ConstructionAndAccess) {
  BoolMatrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_TRUE(m.IsZero());
  m.Set(1, 2);
  EXPECT_TRUE(m.Get(1, 2));
  EXPECT_FALSE(m.Get(0, 2));
  m.Set(1, 2, false);
  EXPECT_TRUE(m.IsZero());
}

TEST(BoolMatrix, IdentityAndFull) {
  BoolMatrix id = BoolMatrix::Identity(3);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) EXPECT_EQ(id.Get(r, c), r == c);
  }
  EXPECT_TRUE(BoolMatrix::Full(2, 2).IsFull());
  EXPECT_FALSE(id.IsFull());
}

TEST(BoolMatrix, MultiplyBasic) {
  BoolMatrix a = Mat({"10", "11"});
  BoolMatrix b = Mat({"01", "10"});
  BoolMatrix c = a.Multiply(b);
  EXPECT_EQ(c, Mat({"01", "11"}));
}

TEST(BoolMatrix, MultiplyIdentityIsNoop) {
  BoolMatrix a = Mat({"101", "010"});
  EXPECT_EQ(BoolMatrix::Identity(2).Multiply(a), a);
  EXPECT_EQ(a.Multiply(BoolMatrix::Identity(3)), a);
}

TEST(BoolMatrix, MultiplyRectangular) {
  BoolMatrix a = Mat({"110"});           // 1x3
  BoolMatrix b = Mat({"01", "10", "11"});  // 3x2
  EXPECT_EQ(a.Multiply(b), Mat({"11"}));
}

TEST(BoolMatrix, MultiplyMatchesNaiveOnRandom) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    int n = rng.NextInt(1, 9);
    int m = rng.NextInt(1, 9);
    int p = rng.NextInt(1, 9);
    BoolMatrix a(n, m), b(m, p);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < m; ++c) {
        if (rng.NextBool(0.4)) a.Set(r, c);
      }
    }
    for (int r = 0; r < m; ++r) {
      for (int c = 0; c < p; ++c) {
        if (rng.NextBool(0.4)) b.Set(r, c);
      }
    }
    BoolMatrix fast = a.Multiply(b);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < p; ++c) {
        bool expected = false;
        for (int k = 0; k < m; ++k) expected |= a.Get(r, k) && b.Get(k, c);
        EXPECT_EQ(fast.Get(r, c), expected);
      }
    }
  }
}

TEST(BoolMatrix, Transpose) {
  BoolMatrix a = Mat({"110", "001"});
  EXPECT_EQ(a.Transpose(), Mat({"10", "10", "01"}));
  EXPECT_EQ(a.Transpose().Transpose(), a);
}

TEST(BoolMatrix, OrAndSubset) {
  BoolMatrix a = Mat({"10", "00"});
  BoolMatrix b = Mat({"01", "00"});
  EXPECT_EQ(a.Or(b), Mat({"11", "00"}));
  EXPECT_TRUE(a.IsSubsetOf(a.Or(b)));
  EXPECT_FALSE(a.Or(b).IsSubsetOf(a));
}

TEST(BoolMatrix, RowColAnyAndCount) {
  BoolMatrix a = Mat({"010", "000"});
  EXPECT_TRUE(a.RowAny(0));
  EXPECT_FALSE(a.RowAny(1));
  EXPECT_TRUE(a.ColAny(1));
  EXPECT_FALSE(a.ColAny(0));
  EXPECT_EQ(a.CountOnes(), 1);
}

TEST(BoolMatrix, WideMatrixCrossesWordBoundary) {
  BoolMatrix a(2, 130);
  a.Set(0, 0);
  a.Set(0, 64);
  a.Set(0, 129);
  a.Set(1, 65);
  EXPECT_EQ(a.CountOnes(), 4);
  BoolMatrix b(130, 1);
  b.Set(129, 0);
  EXPECT_EQ(a.Multiply(b), Mat({"1", "0"}));
}

TEST(BoolMatrix, ToString) {
  EXPECT_EQ(Mat({"10", "01"}).ToString(), "[1 0]\n[0 1]");
}

TEST(Bitstream, FixedRoundTrip) {
  BitWriter writer;
  writer.WriteFixed(0b1011, 4);
  writer.WriteFixed(0, 0);
  writer.WriteFixed(1234567, 21);
  BitReader reader(writer);
  EXPECT_EQ(reader.ReadFixed(4), 0b1011u);
  EXPECT_EQ(reader.ReadFixed(0), 0u);
  EXPECT_EQ(reader.ReadFixed(21), 1234567u);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(Bitstream, GammaRoundTrip) {
  BitWriter writer;
  for (uint64_t v = 1; v <= 300; ++v) writer.WriteGamma(v);
  BitReader reader(writer);
  for (uint64_t v = 1; v <= 300; ++v) EXPECT_EQ(reader.ReadGamma(), v);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(Bitstream, GammaLengths) {
  EXPECT_EQ(GammaLength(1), 1);
  EXPECT_EQ(GammaLength(2), 3);
  EXPECT_EQ(GammaLength(3), 3);
  EXPECT_EQ(GammaLength(4), 5);
  EXPECT_EQ(GammaLength(1000), 19);
  BitWriter writer;
  writer.WriteGamma(1000);
  EXPECT_EQ(writer.size_bits(), 19);
}

TEST(Bitstream, BitWidthFor) {
  EXPECT_EQ(BitWidthFor(0), 0);
  EXPECT_EQ(BitWidthFor(1), 0);
  EXPECT_EQ(BitWidthFor(2), 1);
  EXPECT_EQ(BitWidthFor(3), 2);
  EXPECT_EQ(BitWidthFor(8), 3);
  EXPECT_EQ(BitWidthFor(9), 4);
}

TEST(Bitstream, MixedStream) {
  Rng rng(7);
  BitWriter writer;
  std::vector<std::pair<int, uint64_t>> fields;  // width (0 = gamma), value
  for (int i = 0; i < 500; ++i) {
    if (rng.NextBool(0.5)) {
      int width = rng.NextInt(1, 24);
      uint64_t value = rng.NextBounded(uint64_t{1} << width);
      writer.WriteFixed(value, width);
      fields.push_back({width, value});
    } else {
      uint64_t value = 1 + rng.NextBounded(100000);
      writer.WriteGamma(value);
      fields.push_back({0, value});
    }
  }
  BitReader reader(writer);
  for (const auto& [width, value] : fields) {
    if (width > 0) {
      EXPECT_EQ(reader.ReadFixed(width), value);
    } else {
      EXPECT_EQ(reader.ReadGamma(), value);
    }
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(Random, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Random, BoundedRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    int v = rng.NextInt(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
  }
}

TEST(Random, BoolProbabilityRoughlyCorrect) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.25) ? 1 : 0;
  EXPECT_GT(hits, 2000);
  EXPECT_LT(hits, 3000);
}

TEST(Random, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(TablePrinter, AlignedOutput) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "22"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
  EXPECT_EQ(table.ToCsv(), "name,value\nx,1\nlonger,22\n");
}

TEST(TablePrinter, NumFormatting) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
}

TEST(LatencyHistogram, EmptyAndSingleSample) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0);

  h.Record(1234);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 1234);
  EXPECT_EQ(h.max(), 1234);
  EXPECT_EQ(h.mean(), 1234.0);
  // Percentile(0)/Percentile(1) report the exact extremes, un-quantized.
  EXPECT_EQ(h.Percentile(0.0), 1234);
  EXPECT_EQ(h.Percentile(1.0), 1234);
}

TEST(LatencyHistogram, PercentilesWithinBucketResolution) {
  // Uniform samples 1..10000: pXX must land within the ~3% (2^-5) bucket
  // resolution of the exact order statistic.
  LatencyHistogram h;
  for (int64_t v = 1; v <= 10000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 10000);
  for (double q : {0.50, 0.95, 0.99}) {
    int64_t exact = static_cast<int64_t>(q * 10000);
    int64_t got = h.Percentile(q);
    EXPECT_NEAR(static_cast<double>(got), static_cast<double>(exact),
                0.04 * exact)
        << "q=" << q;
  }
  EXPECT_EQ(h.Percentile(0.0), 1);
  EXPECT_EQ(h.Percentile(1.0), 10000);
}

TEST(LatencyHistogram, NegativeClampsAndMergeAddsUp) {
  LatencyHistogram a, b;
  a.Record(-5);  // clamps to 0
  a.Record(100);
  b.Record(1000000);
  b.Record(50);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4);
  EXPECT_EQ(a.min(), 0);
  EXPECT_EQ(a.max(), 1000000);
  // Merging an empty histogram is a no-op.
  LatencyHistogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 4);
}

TEST(KeyGenerator, UniformCoversTheKeySpace) {
  KeyGenerator keys(KeyDistribution::kUniform, 64);
  Rng rng(5);
  std::vector<int64_t> counts(64, 0);
  for (int i = 0; i < 64 * 200; ++i) {
    int64_t k = keys.Next(rng);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, 64);
    ++counts[k];
  }
  for (int64_t c : counts) EXPECT_GT(c, 0);
  // No key grossly over-represented (expected 200 each).
  for (int64_t c : counts) EXPECT_LT(c, 400);
}

TEST(KeyGenerator, ZipfianIsSkewedTowardLowRanks) {
  // theta=0.99 over 10^4 keys: the YCSB rule of thumb is ~half of all
  // draws landing on the hottest ~2% of keys. Assert loose brackets so
  // the test pins the skew without overfitting the constant.
  const int64_t n = 10000;
  KeyGenerator keys(KeyDistribution::kZipfian, n);
  Rng rng(6);
  const int draws = 200000;
  int hot = 0;    // rank < 2% of n
  int64_t max_seen = 0;
  for (int i = 0; i < draws; ++i) {
    int64_t k = keys.Next(rng);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, n);
    if (k < n / 50) ++hot;
    max_seen = std::max(max_seen, k);
  }
  double hot_fraction = static_cast<double>(hot) / draws;
  EXPECT_GT(hot_fraction, 0.35);
  EXPECT_LT(hot_fraction, 0.75);
  // The tail is still reachable.
  EXPECT_GT(max_seen, n / 2);
}

TEST(LatencyHistogram, PercentileAfterMergeStaysClampedToExtremes) {
  // Percentile() clamps the bucket representative to [min, max]; Merge must
  // keep that contract over the *combined* extremes, including when one
  // side's range strictly contains the other's.
  LatencyHistogram a, b;
  a.Record(500);
  a.Record(700);
  b.Record(3);        // new global min
  b.Record(9000000);  // new global max
  a.Merge(b);
  EXPECT_EQ(a.min(), 3);
  EXPECT_EQ(a.max(), 9000000);
  EXPECT_EQ(a.Percentile(0.0), 3);
  EXPECT_EQ(a.Percentile(1.0), 9000000);
  int64_t previous = a.Percentile(0.0);
  for (double q : {0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    int64_t p = a.Percentile(q);
    EXPECT_GE(p, a.min()) << "q=" << q;
    EXPECT_LE(p, a.max()) << "q=" << q;
    EXPECT_GE(p, previous) << "q=" << q;  // monotone in q
    previous = p;
  }

  // Merging into a single-sample histogram: the lone bucket representative
  // must not escape the merged [min, max] either.
  LatencyHistogram c, d;
  c.Record(1000);
  d.Record(999999);
  c.Merge(d);
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_GE(c.Percentile(q), 1000) << "q=" << q;
    EXPECT_LE(c.Percentile(q), 999999) << "q=" << q;
  }
}

TEST(KeyGenerator, SingleKeyAndDeterministicStreams) {
  KeyGenerator one(KeyDistribution::kZipfian, 1);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(one.Next(rng), 0);

  // Generators hold no RNG state: two equal-seeded streams through one
  // generator must coincide.
  KeyGenerator keys(KeyDistribution::kZipfian, 1000);
  Rng r1(42), r2(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(keys.Next(r1), keys.Next(r2));
}

TEST(KeyGenerator, ZipfianTwoKeysMatchesExactBernoulli) {
  // n == 2 short-circuits the quantile transform (whose eta constant is
  // 0/0 there): the draw is Bernoulli with P(0) = 1/zeta(2) =
  // 1 / (1 + 0.5^theta). At theta = 0.99, P(0) ≈ 0.664.
  KeyGenerator keys(KeyDistribution::kZipfian, 2);
  Rng rng(8);
  const int draws = 100000;
  int zeros = 0;
  for (int i = 0; i < draws; ++i) {
    int64_t k = keys.Next(rng);
    ASSERT_GE(k, 0);
    ASSERT_LE(k, 1);
    if (k == 0) ++zeros;
  }
  const double p0 = 1.0 / (1.0 + std::pow(0.5, 0.99));
  EXPECT_NEAR(static_cast<double>(zeros) / draws, p0, 0.01);
}

TEST(KeyGenerator, ZipfianRankRatioIsTwoToTheTheta) {
  // P(rank 0) / P(rank 1) = 2^theta exactly; pin it empirically at large n
  // for both the YCSB default and a milder skew.
  for (double theta : {0.99, 0.6}) {
    KeyGenerator keys(KeyDistribution::kZipfian, 100000, theta);
    Rng rng(9);
    const int draws = 400000;
    int rank0 = 0, rank1 = 0;
    for (int i = 0; i < draws; ++i) {
      int64_t k = keys.Next(rng);
      ASSERT_GE(k, 0);
      ASSERT_LT(k, 100000);
      if (k == 0) ++rank0;
      if (k == 1) ++rank1;
    }
    ASSERT_GT(rank1, 0) << "theta=" << theta;
    const double ratio = static_cast<double>(rank0) / rank1;
    EXPECT_NEAR(ratio, std::pow(2.0, theta), 0.15 * std::pow(2.0, theta))
        << "theta=" << theta;
  }
}

TEST(ThreadPool, RunsSubmittedTasks) {
  std::atomic<int> ran{0};
  ThreadPool pool(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_EQ(pool.tasks_completed(), 100);
}

TEST(ThreadPool, ZeroThreadCountClampsToOne) {
  // A miscomputed hardware_concurrency() derivation must still make
  // progress, not construct a pool nothing ever drains.
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<bool> ran{false};
  EXPECT_TRUE(pool.Submit([&ran] { ran.store(true); }));
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, SubmitAfterStopIsRefused) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  pool.Stop();
  EXPECT_EQ(ran.load(), 1);  // Stop drains accepted work first
  EXPECT_FALSE(pool.Submit([&ran] { ran.fetch_add(1); }));
  pool.Stop();  // idempotent
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, ExceptionInTaskIsContained) {
  ThreadPool pool(2);
  std::atomic<int> ran_after{0};
  EXPECT_TRUE(pool.Submit([] { throw std::runtime_error("task bug"); }));
  pool.Wait();
  // The pool survives: later tasks still run on the worker that threw.
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(pool.Submit([&ran_after] { ran_after.fetch_add(1); }));
  }
  pool.Stop();
  EXPECT_EQ(ran_after.load(), 8);
  EXPECT_EQ(pool.exceptions_swallowed(), 1);
  EXPECT_EQ(pool.tasks_completed(), 9);
}

TEST(SharedLatencyHistogram, ConcurrentRecordLosesNothing) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  SharedLatencyHistogram shared;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&shared, t] {
      for (int i = 0; i < kPerThread; ++i) {
        shared.Record(t * kPerThread + i);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  LatencyHistogram snapshot = shared.Snapshot();
  EXPECT_EQ(snapshot.count(), kThreads * kPerThread);
  EXPECT_EQ(snapshot.min(), 0);
  EXPECT_EQ(snapshot.max(), kThreads * kPerThread - 1);
}

TEST(SharedLatencyHistogram, MergeFoldsPerThreadHistograms) {
  LatencyHistogram local;
  for (int i = 1; i <= 10; ++i) local.Record(i);
  SharedLatencyHistogram shared;
  shared.Record(100);
  shared.Merge(local);
  LatencyHistogram snapshot = shared.Snapshot();
  EXPECT_EQ(snapshot.count(), 11);
  EXPECT_EQ(snapshot.max(), 100);
  EXPECT_EQ(snapshot.min(), 1);
}

TEST(SingleWriterGuardDeathTest, OverlappingWritersAreDetected) {
  internal::SingleWriterGuard guard;
  {
    internal::SingleWriterScope first(&guard);  // quiet path
  }
  EXPECT_DEATH(
      {
        internal::SingleWriterScope outer(&guard);
        internal::SingleWriterScope inner(&guard);  // second writer
      },
      "single-writer contract violated");
}

TEST(SingleWriterGuard, CopiesStartUnheld) {
  internal::SingleWriterGuard guard;
  guard.Enter();
  internal::SingleWriterGuard copy(guard);
  copy.Enter();  // must not trip: guard state is per-object identity
  copy.Exit();
  guard.Exit();
}

}  // namespace
}  // namespace fvl
