#include <gtest/gtest.h>

#include "fvl/workflow/grammar_builder.h"
#include "fvl/workflow/properness.h"
#include "test_util.h"

namespace fvl {
namespace {

// S -> [x]; U underivable; V unproductive (V -> [V, x] only).
Grammar MessyGrammar() {
  GrammarBuilder b;
  ModuleId s = b.AddComposite("S", 1, 1);
  ModuleId u = b.AddComposite("U", 1, 1);
  ModuleId v = b.AddComposite("V", 1, 1);
  ModuleId x = b.AddAtomic("x", 1, 1);
  b.SetStart(s);
  {
    auto p = b.NewProduction(s);
    int m = p.AddMember(x);
    p.MapInput(0, m, 0).MapOutput(0, m, 0);
    p.Build();
  }
  {  // S -> [V] keeps V derivable but V never terminates.
    auto p = b.NewProduction(s);
    int m = p.AddMember(v);
    p.MapInput(0, m, 0).MapOutput(0, m, 0);
    p.Build();
  }
  {  // V -> [V] (also a unit self-cycle).
    auto p = b.NewProduction(v);
    int m = p.AddMember(v);
    p.MapInput(0, m, 0).MapOutput(0, m, 0);
    p.Build();
  }
  {  // U -> [x]: productive but underivable.
    auto p = b.NewProduction(u);
    int m = p.AddMember(x);
    p.MapInput(0, m, 0).MapOutput(0, m, 0);
    p.Build();
  }
  return b.BuildGrammar();
}

TEST(Properness, DetectsAllThreeViolations) {
  Grammar g = MessyGrammar();
  PropernessReport report = AnalyzeProperness(g);
  EXPECT_FALSE(report.IsProper(g));
  ModuleId u = g.FindModule("U");
  ModuleId v = g.FindModule("V");
  EXPECT_FALSE(report.derivable[u]);
  EXPECT_TRUE(report.productive[u]);
  EXPECT_TRUE(report.derivable[v]);
  EXPECT_FALSE(report.productive[v]);
  EXPECT_TRUE(report.has_unit_cycle);
  std::string description = report.Describe(g);
  EXPECT_NE(description.find("underivable: U"), std::string::npos);
  EXPECT_NE(description.find("unproductive: V"), std::string::npos);
  EXPECT_NE(description.find("unit cycle"), std::string::npos);
}

TEST(Properness, MakeProperFixesGrammar) {
  Grammar g = MessyGrammar();
  Result<Grammar> proper = MakeProper(g);
  ASSERT_TRUE(proper.has_value()) << proper.status().ToString();
  PropernessReport report = AnalyzeProperness(*proper);
  EXPECT_TRUE(report.IsProper(*proper)) << report.Describe(*proper);
  // Only S -> [x] survives.
  EXPECT_EQ(proper->num_productions(), 1);
  EXPECT_EQ(proper->production(0).lhs, proper->start());
}

TEST(Properness, UnitCycleBetweenTwoModules) {
  GrammarBuilder b;
  ModuleId s = b.AddComposite("S", 1, 1);
  ModuleId t = b.AddComposite("T", 1, 1);
  ModuleId x = b.AddAtomic("x", 1, 1);
  b.SetStart(s);
  auto unit = [&](ModuleId lhs, ModuleId rhs) {
    auto p = b.NewProduction(lhs);
    int m = p.AddMember(rhs);
    p.MapInput(0, m, 0).MapOutput(0, m, 0);
    p.Build();
  };
  unit(s, t);
  unit(t, s);
  {  // T -> [x] terminates the language.
    auto p = b.NewProduction(t);
    int m = p.AddMember(x);
    p.MapInput(0, m, 0).MapOutput(0, m, 0);
    p.Build();
  }
  Grammar g = b.BuildGrammar();
  PropernessReport report = AnalyzeProperness(g);
  EXPECT_TRUE(report.has_unit_cycle);
  ASSERT_EQ(report.unit_cycle_witness.size(), 2u);

  Result<Grammar> proper = MakeProper(g);
  ASSERT_TRUE(proper.has_value()) << proper.status().ToString();
  EXPECT_FALSE(AnalyzeProperness(*proper).has_unit_cycle);
  // S must have received T's terminating production.
  bool s_terminates = false;
  for (ProductionId k : proper->ProductionsOf(proper->start())) {
    if (proper->production(k).rhs.members == std::vector<ModuleId>{x}) {
      s_terminates = true;
    }
  }
  EXPECT_TRUE(s_terminates);
}

TEST(Properness, EmptyLanguageReported) {
  GrammarBuilder b;
  ModuleId s = b.AddComposite("S", 1, 1);
  b.SetStart(s);
  {  // S -> [S, ...] only: unproductive start. Use a self chain via S -> [S].
    auto p = b.NewProduction(s);
    int m = p.AddMember(s);
    p.MapInput(0, m, 0).MapOutput(0, m, 0);
    p.Build();
  }
  Grammar g = b.BuildGrammar();
  Result<Grammar> proper = MakeProper(g);
  EXPECT_FALSE(proper.has_value());
  EXPECT_EQ(proper.code(), ErrorCode::kImproperGrammar);
  EXPECT_NE(proper.status().message().find("empty"), std::string::npos);
}

TEST(Properness, ProperGrammarUntouched) {
  GrammarBuilder b;
  ModuleId s = b.AddComposite("S", 1, 1);
  ModuleId x = b.AddAtomic("x", 1, 1);
  b.SetStart(s);
  auto p = b.NewProduction(s);
  int m = p.AddMember(x);
  p.MapInput(0, m, 0).MapOutput(0, m, 0);
  p.Build();
  Grammar g = b.BuildGrammar();
  Result<Grammar> proper = MakeProper(g);
  ASSERT_TRUE(proper.has_value());
  EXPECT_EQ(proper->num_productions(), g.num_productions());
}

}  // namespace
}  // namespace fvl
