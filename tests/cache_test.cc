// Skew-aware serving caches (util/sharded_cache.h, core/serving_cache.h):
// the cache primitive's admission/eviction behavior and counters, and the
// differential guarantee the service layer builds on it — the cached batch
// paths are bit-identical to the uncached paths across randomized
// specifications, all three ViewLabelModes, merged and single-run indexes,
// with the same error behavior.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "fvl/core/index.h"
#include "fvl/core/serving_cache.h"
#include "fvl/service/provenance_service.h"
#include "fvl/util/random.h"
#include "fvl/util/sharded_cache.h"
#include "fvl/workload/paper_example.h"
#include "fvl/workload/synthetic.h"
#include "fvl/workload/view_generator.h"

namespace fvl {
namespace {

constexpr ViewLabelMode kAllModes[] = {ViewLabelMode::kSpaceEfficient,
                                       ViewLabelMode::kDefault,
                                       ViewLabelMode::kQueryEfficient};

// ----- ShardedCache primitive. -----

TEST(ShardedCache, InsertLookupAndCounters) {
  ShardedCache<int, int> cache(128);
  int out = 0;
  EXPECT_FALSE(cache.Lookup(7, &out));
  cache.Insert(7, 70);
  ASSERT_TRUE(cache.Lookup(7, &out));
  EXPECT_EQ(out, 70);
  cache.Insert(7, 71);  // same key refreshes in place
  ASSERT_TRUE(cache.Lookup(7, &out));
  EXPECT_EQ(out, 71);

  const ShardedCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 2u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 2.0 / 3.0);
}

TEST(ShardedCache, ZeroCapacityNeverHitsAndNeverCrashes) {
  ShardedCache<int, int> cache(0);
  EXPECT_EQ(cache.capacity(), 0);
  cache.Insert(1, 10);
  int out = 0;
  EXPECT_FALSE(cache.Lookup(1, &out));
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(ShardedCache, AdmissionProtectsHotResidents) {
  // Capacity 1: every key maps to the same slot, making the second-chance
  // policy directly observable.
  ShardedCache<int, int> cache(1);
  ASSERT_EQ(cache.capacity(), 1);
  cache.Insert(1, 100);
  int out = 0;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(cache.Lookup(1, &out));

  // A one-shot cold key cannot displace the hot resident.
  cache.Insert(2, 200);
  ASSERT_TRUE(cache.Lookup(1, &out));
  EXPECT_EQ(out, 100);
  EXPECT_FALSE(cache.Lookup(2, &out));
  EXPECT_GE(cache.stats().rejections, 1u);

  // A key that keeps colliding (i.e. is actually warm) eventually wins:
  // frequency is capped, so boundedly many repeats drain the resident.
  for (int i = 0; i < 8; ++i) cache.Insert(2, 200);
  ASSERT_TRUE(cache.Lookup(2, &out));
  EXPECT_EQ(out, 200);
  EXPECT_FALSE(cache.Lookup(1, &out));
}

TEST(ShardedCache, ConcurrentHammerKeepsKeyValueInvariant) {
  // Hits must always return the value inserted for that exact key, under
  // contention (the TSan lane runs this too). Value is a pure function of
  // key, so any torn/mismatched entry is detected.
  ShardedCache<int, int> cache(64);
  constexpr int kThreads = 4;
  constexpr int kOps = 20000;
  std::atomic<int64_t> total_hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &total_hits, t] {
      Rng rng(1000 + t);
      int64_t hits = 0;
      for (int i = 0; i < kOps; ++i) {
        const int key = rng.NextInt(0, 255);
        int value = 0;
        if (cache.Lookup(key, &value)) {
          ASSERT_EQ(value, 2 * key + 1);
          ++hits;
        } else {
          cache.Insert(key, 2 * key + 1);
        }
      }
      total_hits.fetch_add(hits);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_GT(total_hits.load(), 0);
  const ShardedCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(total_hits.load()));
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kOps);
}

// ----- ServingCache. -----

TEST(ServingCache, LabelAndReachRoundTripWithExactKeys) {
  ServingCache cache(256);
  DataLabel label;
  EXPECT_FALSE(cache.LookupLabel(7u, 3, &label));

  DataLabel stored;
  stored.producer.emplace();
  stored.producer->port = 2;
  cache.InsertLabel(7u, 3, stored);
  ASSERT_TRUE(cache.LookupLabel(7u, 3, &label));
  EXPECT_EQ(label, stored);
  // The vetting service's tag is part of the label key: another service
  // looking up the same item misses — LabelInBounds vetting is grammar-
  // specific and must never leak across services sharing an index.
  EXPECT_FALSE(cache.LookupLabel(8u, 3, &label));

  // Memo keys are compared exactly: tuples differing in any one field are
  // distinct entries, never aliases.
  const ReachMemoKey base{42u, 1, 0, 5, 9};
  cache.InsertReach(base, true);
  bool answer = false;
  ASSERT_TRUE(cache.LookupReach(base, &answer));
  EXPECT_TRUE(answer);
  ReachMemoKey flipped = base;
  flipped.d1 = 9;
  flipped.d2 = 5;
  EXPECT_FALSE(cache.LookupReach(flipped, &answer));
  ReachMemoKey other_mode = base;
  other_mode.mode = 2;
  EXPECT_FALSE(cache.LookupReach(other_mode, &answer));

  const ServingCacheStats stats = cache.stats();
  EXPECT_EQ(stats.label_hits, 1u);
  EXPECT_EQ(stats.label_misses, 2u);
  EXPECT_EQ(stats.reach_hits, 1u);
  EXPECT_EQ(stats.reach_misses, 2u);
}

TEST(ServingCache, EmptySnapshotsCarryNoCache) {
  EXPECT_EQ(internal::MakeServingCache(0), nullptr);
  MergedProvenanceIndex empty;
  EXPECT_EQ(empty.serving_cache(), nullptr);
}

// ----- Differential: cached ≡ uncached through the service. -----

std::vector<std::pair<int, int>> RandomQueries(int num_items, int count,
                                               uint64_t seed) {
  // Skewed like real traffic: a quarter of the pairs repeat a small hot
  // set, so the memo actually engages within and across batches.
  Rng rng(seed);
  std::vector<std::pair<int, int>> queries;
  queries.reserve(count);
  const int hot = std::max(1, num_items / 16);
  for (int q = 0; q < count; ++q) {
    if (q % 4 == 0) {
      queries.push_back({rng.NextInt(0, hot - 1), rng.NextInt(0, hot - 1)});
    } else {
      queries.push_back(
          {rng.NextInt(0, num_items - 1), rng.NextInt(0, num_items - 1)});
    }
  }
  return queries;
}

// Answers every query/sweep twice with caches on (cold, then memo-warm) and
// compares both against the uncached answers, per mode.
void CheckCachedMatchesUncached(ProvenanceService& service, ViewHandle view,
                                const ProvenanceIndex& index,
                                uint64_t seed) {
  const auto queries = RandomQueries(index.num_items(), 160, seed);
  for (ViewLabelMode mode : kAllModes) {
    service.set_serving_cache_enabled(false);
    const std::vector<bool> expected =
        service.DependsMany(view, index, queries, mode).value();
    const std::vector<bool> expected_sweep =
        service.VisibilitySweep(view, index, mode).value();

    service.set_serving_cache_enabled(true);
    EXPECT_EQ(service.DependsMany(view, index, queries, mode).value(),
              expected);
    EXPECT_EQ(service.DependsMany(view, index, queries, mode).value(),
              expected);
    EXPECT_EQ(service.VisibilitySweep(view, index, mode).value(),
              expected_sweep);
  }
  service.set_serving_cache_enabled(true);
}

TEST(CacheDifferential, SingleRunPaperExampleAllModes) {
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();
  ViewHandle grey = service->RegisterView(ex.grey_view).value();

  RunGeneratorOptions options;
  options.target_items = 160;
  options.seed = 11;
  auto session = service->GenerateLabeledRun(options);
  ProvenanceIndex index = session->Snapshot();
  ASSERT_NE(index.serving_cache(), nullptr);

  for (ViewHandle view : {service->default_view(), grey}) {
    CheckCachedMatchesUncached(*service, view, index, 23);
  }

  // The warm passes above must actually have come from the caches.
  const ServingCacheStats stats = index.serving_cache()->stats();
  EXPECT_GT(stats.reach_hits, 0u);
  EXPECT_GT(stats.label_hits, 0u);
}

TEST(CacheDifferential, RandomizedSyntheticSpecsSingleAndMerged) {
  Rng meta(77);
  for (int s = 0; s < 4; ++s) {
    SyntheticOptions options;
    options.workflow_size = meta.NextInt(4, 8);
    options.module_degree = meta.NextInt(2, 3);
    options.nesting_depth = meta.NextInt(1, 2);
    options.recursion_length = meta.NextInt(2, 3);
    options.seed = 500 + s;
    Workload workload = MakeSynthetic(options);
    auto service = ProvenanceService::Create(workload.spec).value();

    ViewGeneratorOptions view_options;
    view_options.num_expandable = 2;
    view_options.deps =
        (s % 2 != 0) ? PerceivedDeps::kGreyBox : PerceivedDeps::kWhiteBox;
    view_options.seed = 600 + s;
    CompiledView generated = GenerateSafeView(workload, view_options);
    ViewHandle view = service->RegisterView(generated.view()).value();

    // Single-run differential.
    std::vector<ProvenanceIndex> snapshots;
    for (int r = 0; r < 3; ++r) {
      RunGeneratorOptions run_options;
      run_options.target_items = 90 + 13 * r;
      run_options.seed = 700 + 10 * s + r;
      auto session = service->GenerateLabeledRun(run_options);
      snapshots.push_back(session->Snapshot());
      CheckCachedMatchesUncached(*service, view, snapshots.back(),
                                 800 + 10 * s + r);
    }

    // Merged differential: flat-id pairs, including cross-run pairs (false
    // by definition — must stay false with the memo engaged).
    MergedProvenanceIndex merged =
        ProvenanceIndex::Merge(snapshots).value();
    ASSERT_NE(merged.serving_cache(), nullptr);
    const auto flat = RandomQueries(merged.total_items(), 200, 900 + s);
    for (ViewLabelMode mode : kAllModes) {
      service->set_serving_cache_enabled(false);
      const std::vector<bool> expected =
          service->DependsMany(view, merged, flat, mode).value();
      const std::vector<bool> expected_sweep =
          service->VisibilitySweep(view, merged, mode).value();
      service->set_serving_cache_enabled(true);
      EXPECT_EQ(service->DependsMany(view, merged, flat, mode).value(),
                expected);
      EXPECT_EQ(service->DependsMany(view, merged, flat, mode).value(),
                expected);
      EXPECT_EQ(service->VisibilitySweep(view, merged, mode).value(),
                expected_sweep);
    }
    EXPECT_GT(merged.serving_cache()->stats().reach_hits, 0u);
  }
}

TEST(CacheDifferential, LabelEntriesDoNotLeakAcrossServices) {
  // Two services over one snapshot: CheckIndexCompatible compares only the
  // codec widths, so a second service — whose grammar may differ
  // structurally while the widths coincide — must never consume labels
  // vetted by the first (LabelInBounds walks the vetting service's
  // grammar). The label cache keys on the vetting service's tag, so B's
  // first pass misses every entry A warmed, decodes, and re-vets itself.
  PaperExample ex = MakePaperExample();
  auto service_a = ProvenanceService::Create(ex.spec).value();
  auto service_b = ProvenanceService::Create(ex.spec).value();

  RunGeneratorOptions options;
  options.target_items = 120;
  options.seed = 17;
  auto session = service_a->GenerateLabeledRun(options);
  ProvenanceIndex index = session->Snapshot();
  ASSERT_NE(index.serving_cache(), nullptr);
  const auto queries = RandomQueries(index.num_items(), 200, 29);

  // Warm A's label entries with one mode, then prove they are resident by
  // querying a second mode (the memo misses on mode, the labels hit).
  const std::vector<bool> expected =
      service_a
          ->DependsMany(service_a->default_view(), index, queries,
                        ViewLabelMode::kDefault)
          .value();
  service_a
      ->DependsMany(service_a->default_view(), index, queries,
                    ViewLabelMode::kQueryEfficient)
      .value();
  const ServingCacheStats warmed = index.serving_cache()->stats();
  EXPECT_GT(warmed.label_hits, 0u);

  // B answers identically (same grammar here) but from its own decode and
  // vetting pass: not one label hit against A's entries.
  EXPECT_EQ(service_b
                ->DependsMany(service_b->default_view(), index, queries,
                              ViewLabelMode::kDefault)
                .value(),
            expected);
  const ServingCacheStats after_b = index.serving_cache()->stats();
  EXPECT_EQ(after_b.label_hits, warmed.label_hits);
  EXPECT_GT(after_b.label_misses, warmed.label_misses);

  // B's own entries are ordinary cache citizens: its second mode hits them.
  service_b
      ->DependsMany(service_b->default_view(), index, queries,
                    ViewLabelMode::kQueryEfficient)
      .value();
  EXPECT_GT(index.serving_cache()->stats().label_hits, after_b.label_hits);
}

TEST(CacheDifferential, AnswersIdenticalAcrossThreadCounts) {
  // The sharded predicate/answer loop must not depend on the shard count.
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();
  RunGeneratorOptions options;
  options.target_items = 200;
  options.seed = 5;
  auto session = service->GenerateLabeledRun(options);
  ProvenanceIndex index = session->Snapshot();
  const auto queries = RandomQueries(index.num_items(), 400, 99);

  service->set_query_threads(1);
  const std::vector<bool> expected =
      service->DependsMany(service->default_view(), index, queries).value();
  for (int threads : {2, 4, 8}) {
    service->set_query_threads(threads);
    EXPECT_EQ(
        service->DependsMany(service->default_view(), index, queries).value(),
        expected)
        << "threads=" << threads;
  }
  service->set_query_threads(1);
}

TEST(CacheDifferential, ErrorBehaviorMatchesUncached) {
  PaperExample ex = MakePaperExample();
  auto service = ProvenanceService::Create(ex.spec).value();
  RunGeneratorOptions options;
  options.target_items = 40;
  options.seed = 3;
  auto session = service->GenerateLabeledRun(options);
  ProvenanceIndex index = session->Snapshot();

  const std::vector<std::pair<int, int>> bad = {{0, index.num_items()}};
  for (bool enabled : {false, true}) {
    service->set_serving_cache_enabled(enabled);
    Result<std::vector<bool>> result =
        service->DependsMany(service->default_view(), index, bad);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), ErrorCode::kInvalidArgument);
  }
  service->set_serving_cache_enabled(true);
}

}  // namespace
}  // namespace fvl
