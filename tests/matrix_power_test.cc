#include <gtest/gtest.h>

#include "fvl/core/matrix_power.h"
#include "fvl/util/random.h"
#include "test_util.h"

namespace fvl {
namespace {

using ::fvl::testing::Mat;

BoolMatrix NaivePower(const BoolMatrix& x, int q) {
  BoolMatrix result = BoolMatrix::Identity(x.rows());
  for (int i = 0; i < q; ++i) result = result.Multiply(x);
  return result;
}

TEST(BoolMatrixPower, MatchesNaive) {
  BoolMatrix x = Mat({"010", "001", "000"});  // nilpotent shift
  for (int q = 0; q <= 5; ++q) {
    EXPECT_EQ(BoolMatrixPower(x, q), NaivePower(x, q)) << "q=" << q;
  }
  EXPECT_TRUE(BoolMatrixPower(x, 3).IsZero());
}

TEST(BoolMatrixPower, IdempotentMatrixStabilizes) {
  BoolMatrix x = Mat({"11", "01"});
  EXPECT_EQ(BoolMatrixPower(x, 1), x);
  EXPECT_EQ(BoolMatrixPower(x, 17), x);
}

TEST(MatrixPowerOracle, FindsPowerCycle) {
  // Permutation matrix of order 3: X^1, X^2, X^3 = I, then repeats.
  BoolMatrix x = Mat({"010", "001", "100"});
  MatrixPowerOracle oracle(x);
  EXPECT_EQ(oracle.cycle_start(), 0);
  EXPECT_EQ(oracle.cycle_period(), 3);
  for (int q = 0; q <= 20; ++q) {
    EXPECT_EQ(oracle.Power(q), NaivePower(x, q)) << "q=" << q;
  }
}

TEST(MatrixPowerOracle, TransientThenFixpoint) {
  // Strictly upper-triangular + diagonal: converges to its closure.
  BoolMatrix x = Mat({"110", "011", "001"});
  MatrixPowerOracle oracle(x);
  EXPECT_EQ(oracle.cycle_period(), 1);
  EXPECT_EQ(oracle.Power(2), oracle.Power(1000000));
  for (int q = 0; q <= 10; ++q) {
    EXPECT_EQ(oracle.Power(q), NaivePower(x, q));
  }
}

TEST(MatrixPowerOracle, LargeExponentConstantTime) {
  BoolMatrix x = Mat({"01", "10"});  // swap, period 2
  MatrixPowerOracle oracle(x);
  EXPECT_EQ(oracle.Power(1000000000), BoolMatrix::Identity(2));
  EXPECT_EQ(oracle.Power(1000000001), x);
}

TEST(MatrixPowerOracle, RandomAgreementSweep) {
  Rng rng(17);
  for (int trial = 0; trial < 60; ++trial) {
    int n = rng.NextInt(1, 6);
    BoolMatrix x(n, n);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        if (rng.NextBool(0.35)) x.Set(r, c);
      }
    }
    MatrixPowerOracle oracle(x);
    BoolMatrix naive = BoolMatrix::Identity(n);
    for (int q = 0; q <= 24; ++q) {
      ASSERT_EQ(oracle.Power(q), naive) << "trial " << trial << " q=" << q;
      ASSERT_EQ(BoolMatrixPower(x, q), naive);
      naive = naive.Multiply(x);
    }
  }
}

TEST(MatrixPowerOracle, ZeroSizeMatrix) {
  MatrixPowerOracle oracle{BoolMatrix(0, 0)};
  EXPECT_EQ(oracle.Power(5).rows(), 0);
}

}  // namespace
}  // namespace fvl
