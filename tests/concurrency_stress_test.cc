// Concurrency stress suites, written to run under ThreadSanitizer (the CI
// sanitizer matrix includes a thread lane that runs this binary and the net
// suites). Each test stresses one documented locking contract:
//   * the server's coalescing batcher under multi-client pipelined load
//     racing Stop() — answers are clean or kUnavailable, never torn;
//   * ProvenanceService view registration racing queries — the registry
//     mutex, dedup path, and lazy label builds;
//   * ParallelFor shards recording into one SharedLatencyHistogram;
//   * externally synchronized ProvenanceSession writers (the correct usage
//     the SingleWriterGuard must stay quiet for) with StoreCountProbe
//     readers polling concurrently.
// Assertions here are deliberately coarse (counts, no lost samples,
// answers match a reference) — the interesting failures are the data races
// TSan reports, not wrong values.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "fvl/core/label_store.h"
#include "fvl/net/client.h"
#include "fvl/net/server.h"
#include "fvl/service/provenance_service.h"
#include "fvl/util/histogram.h"
#include "fvl/util/random.h"
#include "fvl/util/thread_pool.h"
#include "fvl/workload/bioaid.h"
#include "fvl/workload/view_generator.h"

namespace fvl {
namespace {

using net::ProvenanceClient;
using net::ProvenanceServer;
using net::SnapshotInfo;

std::vector<std::pair<int, int>> RecordOpSequence(ProvenanceService& service,
                                                  int target_items, int seed) {
  auto session = service.GenerateLabeledRun(
      RunGeneratorOptions{.target_items = target_items,
                          .seed = static_cast<uint64_t>(seed)});
  std::vector<std::pair<int, int>> ops;
  ops.reserve(session->run().num_steps());
  for (int i = 0; i < session->run().num_steps(); ++i) {
    const DerivationStep& step = session->run().step(i);
    ops.push_back({step.instance, step.production});
  }
  return ops;
}

// --- Batcher under fire -----------------------------------------------------

TEST(ConcurrencyStress, BatcherHammeredWhileServerStops) {
  Workload bio = MakeBioAid(2012);
  View view = GenerateSafeView(bio, ViewGeneratorOptions{.num_expandable = 8,
                                                         .seed = 8})
                  .view();
  auto service = ProvenanceService::Create(std::move(bio.spec)).value();
  auto server = ProvenanceServer::Start(service).value();

  // Build one frozen index over the wire for everyone to query.
  ProvenanceClient setup = ProvenanceClient::Connect(server->port()).value();
  uint64_t view_id = setup.RegisterView(view).value();
  uint64_t session_id = setup.BeginRun().value();
  std::vector<std::pair<int, int>> ops = RecordOpSequence(*service, 300, 17);
  for (const auto& [instance, production] : ops) {
    ASSERT_TRUE(setup.Apply(session_id, instance, production).ok());
  }
  SnapshotInfo snapshot = setup.Snapshot(session_id).value();
  const int num_items = snapshot.num_items;
  ASSERT_GT(num_items, 0);

  // Reference answers computed in-process: the replay is deterministic, so
  // a direct session fed the same ops freezes a bit-equal index.
  ViewHandle direct_view = service->RegisterView(view).value();
  auto direct_session = service->BeginRun();
  for (const auto& [instance, production] : ops) {
    ASSERT_TRUE(direct_session->Apply(instance, production).ok());
  }
  ProvenanceIndex direct_index = direct_session->Snapshot();
  ASSERT_EQ(direct_index.num_items(), num_items);
  Rng rng(99);
  std::vector<std::pair<int, int>> queries;
  for (int q = 0; q < 64; ++q) {
    queries.push_back(
        {rng.NextInt(0, num_items - 1), rng.NextInt(0, num_items - 1)});
  }

  constexpr int kClients = 4;
  std::atomic<int64_t> answers_checked{0};
  std::atomic<int64_t> unavailable_seen{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Result<ProvenanceClient> conn = ProvenanceClient::Connect(
          server->port());
      if (!conn.ok()) return;  // raced the stop before connecting
      ProvenanceClient client = std::move(conn).value();
      std::vector<bool> reference;
      {
        Result<std::vector<bool>> direct = service->DependsMany(
            direct_view, direct_index, queries, ViewLabelMode::kDefault);
        ASSERT_TRUE(direct.ok());
        reference = std::move(direct).value();
      }
      for (int round = 0; round < 400; ++round) {
        for (const auto& [d1, d2] : queries) {
          client.QueueDepends(view_id, snapshot.index_id,
                              ViewLabelMode::kDefault, d1, d2);
        }
        if (!client.Flush().ok()) {
          unavailable_seen.fetch_add(1);
          return;
        }
        while (client.pending() > 0) {
          size_t i = queries.size() - client.pending();
          Result<bool> answer = client.NextDependsAnswer();
          if (!answer.ok()) {
            // Stop() mid-conversation: the stream ends, it never lies.
            unavailable_seen.fetch_add(1);
            return;
          }
          EXPECT_EQ(*answer, reference[i]) << "client " << c << " query " << i;
          answers_checked.fetch_add(1);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server->Stop();
  for (std::thread& t : clients) t.join();
  // Every client made progress before (or despite) the stop.
  EXPECT_GT(answers_checked.load(), 0);
}

// --- Registry races ---------------------------------------------------------

TEST(ConcurrencyStress, RegisterViewRacesQueries) {
  Workload bio = MakeBioAid(2012);
  // Pre-generate distinct views outside the racing section (and before the
  // spec is moved into the service).
  std::vector<View> views;
  for (int seed = 1; seed <= 4; ++seed) {
    views.push_back(
        GenerateSafeView(bio,
                         ViewGeneratorOptions{.num_expandable = 6,
                                              .seed = static_cast<uint64_t>(
                                                  seed)})
            .view());
  }
  auto service = ProvenanceService::Create(std::move(bio.spec)).value();

  // A frozen run to query against while registrations happen.
  auto session = service->GenerateLabeledRun(
      RunGeneratorOptions{.target_items = 400, .seed = 5});
  ProvenanceIndex index = session->Snapshot();
  const int num_items = index.num_items();

  constexpr int kRounds = 50;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  // Registrars: re-register the same views over and over; the dedup path
  // must hand back one stable handle per distinct view.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      std::vector<int> first_ids(views.size(), -1);
      for (int round = 0; round < kRounds; ++round) {
        for (size_t v = 0; v < views.size(); ++v) {
          Result<ViewHandle> handle = service->RegisterView(views[v]);
          if (!handle.ok()) {
            failed.store(true);
            return;
          }
          if (first_ids[v] < 0) {
            first_ids[v] = handle->id();
          } else if (first_ids[v] != handle->id()) {
            failed.store(true);  // dedup broke under the race
            return;
          }
        }
      }
    });
  }
  // Queriers: hammer the default view (lazy label build + decode) against
  // the frozen index while the registry churns.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int round = 0; round < kRounds; ++round) {
        std::vector<std::pair<int, int>> queries;
        for (int q = 0; q < 32; ++q) {
          queries.push_back(
              {rng.NextInt(0, num_items - 1), rng.NextInt(0, num_items - 1)});
        }
        Result<std::vector<bool>> answers = service->DependsMany(
            service->default_view(), index, queries, ViewLabelMode::kDefault);
        if (!answers.ok() || answers->size() != queries.size()) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  // Both registrars saw stable ids; the registry holds each view once.
  EXPECT_LE(service->num_views(),
            static_cast<int>(views.size()) + 1);  // + default view
}

// --- Serving caches under query contention ---------------------------------

TEST(ConcurrencyStress, ServingCacheShardsStayCoherentUnderQueryStorm) {
  // Many threads batch-query one frozen snapshot with the serving caches
  // enabled: label-cache and reach-memo shards are hit/filled concurrently
  // (the answer loop also runs sharded). Every batch must equal the
  // uncached ground truth — a torn cache entry or a memo aliasing bug
  // surfaces as a wrong answer, and TSan checks the locking itself.
  Workload bio = MakeBioAid(2012);
  auto service = ProvenanceService::Create(std::move(bio.spec)).value();
  auto session = service->GenerateLabeledRun(
      RunGeneratorOptions{.target_items = 400, .seed = 6});
  ProvenanceIndex index = session->Snapshot();
  ASSERT_NE(index.serving_cache(), nullptr);
  const int num_items = index.num_items();
  service->set_query_threads(2);

  // Ground truth, computed uncached before the storm.
  service->set_serving_cache_enabled(false);
  std::vector<std::vector<std::pair<int, int>>> batches;
  std::vector<std::vector<bool>> expected;
  Rng rng(200);
  for (int b = 0; b < 8; ++b) {
    std::vector<std::pair<int, int>> queries;
    for (int q = 0; q < 64; ++q) {
      // Hot head + uniform tail, so threads collide on cache slots.
      const int hot = std::max(2, num_items / 20);
      queries.push_back({rng.NextInt(0, hot - 1),
                         rng.NextInt(0, num_items - 1)});
    }
    expected.push_back(
        service
            ->DependsMany(service->default_view(), index, queries,
                          ViewLabelMode::kDefault)
            .value());
    batches.push_back(std::move(queries));
  }
  service->set_serving_cache_enabled(true);

  constexpr int kRounds = 40;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const size_t b = (t + round) % batches.size();
        Result<std::vector<bool>> answers = service->DependsMany(
            service->default_view(), index, batches[b],
            ViewLabelMode::kDefault);
        if (!answers.ok() || *answers != expected[b]) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  // The storm replayed identical batches; the memo must have served most
  // of them.
  EXPECT_GT(index.serving_cache()->stats().reach_hits, 0u);
  service->set_query_threads(1);
}

// --- ParallelFor + shared histogram ----------------------------------------

TEST(ConcurrencyStress, ParallelForShardsShareOneHistogram) {
  const int64_t n = 8 * kParallelForGrain;
  SharedLatencyHistogram shared;
  ParallelFor(n, 4, [&shared](int64_t begin, int64_t end) {
    // Per-thread staging then one locked Merge — the recommended pattern —
    // interleaved with direct Record calls from other shards.
    LatencyHistogram local;
    for (int64_t i = begin; i < end; ++i) {
      if ((i & 1) == 0) {
        shared.Record(i);
      } else {
        local.Record(i);
      }
    }
    shared.Merge(local);
  });
  LatencyHistogram snapshot = shared.Snapshot();
  EXPECT_EQ(snapshot.count(), n);
  EXPECT_EQ(snapshot.min(), 0);
  EXPECT_EQ(snapshot.max(), n - 1);
}

// --- Externally synchronized session writers --------------------------------

// The correct concurrent use of a ProvenanceSession: callers serialize
// Apply/SnapshotDelta with their own lock (exactly what net/server.cc's
// SessionEntry does). The SingleWriterGuard must stay silent, TSan must see
// no races, and the probe readers must be able to poll throughout.
TEST(ConcurrencyStress, ExternallyLockedSessionWritersStayClean) {
  Workload bio = MakeBioAid(2012);
  auto service = ProvenanceService::Create(std::move(bio.spec)).value();
  std::vector<std::pair<int, int>> ops = RecordOpSequence(*service, 600, 23);

  auto session = service->BeginRun();
  std::mutex session_mu;
  std::atomic<bool> done{false};
  std::atomic<int64_t> applied{0};

  std::thread probe_reader([&done] {
    int64_t observations = 0;
    while (!done.load(std::memory_order_acquire)) {
      // Lock-free probe: must be readable at any time from any thread.
      int live = internal::StoreCountProbe::live();
      int peak = internal::StoreCountProbe::peak();
      EXPECT_GE(peak, 0);
      EXPECT_GE(live, 0);
      ++observations;
      std::this_thread::yield();
    }
    EXPECT_GT(observations, 0);
  });

  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      // Each writer replays a strided slice; out-of-order ops may be
      // rejected with a Status (fine) but must never race or abort.
      for (size_t i = w; i < ops.size(); i += kWriters) {
        std::lock_guard<std::mutex> lock(session_mu);
        Result<DerivationStep> step =
            session->Apply(ops[i].first, ops[i].second);
        if (step.ok()) applied.fetch_add(1);
        if ((i / kWriters) % 64 == 63) {
          ProvenanceIndex delta = session->SnapshotDelta();
          EXPECT_GE(delta.num_items(), 0);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  probe_reader.join();

  EXPECT_GT(applied.load(), 0);
  std::lock_guard<std::mutex> lock(session_mu);
  ProvenanceIndex final_index = session->Snapshot();
  EXPECT_GT(final_index.num_items(), 0);
}

// --- ThreadPool under churn -------------------------------------------------

TEST(ConcurrencyStress, ThreadPoolSubmittersRaceStop) {
  ThreadPool pool(4);
  std::atomic<int64_t> ran{0};
  std::atomic<int64_t> accepted{0};
  constexpr int kSubmitters = 4;
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        if (pool.Submit([&ran] { ran.fetch_add(1); })) {
          accepted.fetch_add(1);
        } else {
          return;  // stop won the race; refusals are clean
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  pool.Stop();  // races the submitters AND a second concurrent Stop below
  std::thread second_stop([&pool] { pool.Stop(); });
  second_stop.join();
  for (std::thread& t : submitters) t.join();
  // Drain contract: everything accepted before the stop ran.
  EXPECT_EQ(ran.load(), accepted.load());
  EXPECT_EQ(pool.tasks_completed(), accepted.load());
}

}  // namespace
}  // namespace fvl
