// End-to-end smoke test for the public FvlScheme facade documented in
// scheme.h: build a scheme from the paper-example specification, label a
// generated run online, label both paper views under every ViewLabelMode,
// and check Decoder::Depends against the white-box ProvenanceOracle.

#include <gtest/gtest.h>

#include <string>

#include "fvl/service/legacy_facade.h"
#include "fvl/run/provenance_oracle.h"
#include "fvl/workload/paper_example.h"

namespace fvl {
namespace {

TEST(Smoke, SchemeFacadeEndToEnd) {
  PaperExample ex = MakePaperExample();

  // Checked construction succeeds on the paper grammar.
  Result<FvlScheme> scheme = FvlScheme::Create(&ex.spec);
  ASSERT_TRUE(scheme.has_value()) << scheme.status().ToString();

  // Label a run online while it derives.
  RunGeneratorOptions options;
  options.target_items = 200;
  options.seed = 17;
  FvlScheme::LabeledRun labeled = scheme->GenerateLabeledRun(options);
  ASSERT_TRUE(labeled.run.IsComplete());
  ASSERT_EQ(labeled.labeler.num_labels(), labeled.run.num_items());

  // Every view x mode combination must agree with the white-box oracle.
  for (const View* view : {&ex.default_view, &ex.grey_view}) {
    Result<CompiledView> compiled =
        CompiledView::Compile(ex.spec.grammar, *view);
    ASSERT_TRUE(compiled.has_value()) << compiled.status().ToString();
    ProvenanceOracle oracle(labeled.run, *compiled);
    for (ViewLabelMode mode :
         {ViewLabelMode::kSpaceEfficient, ViewLabelMode::kDefault,
          ViewLabelMode::kQueryEfficient}) {
      ViewLabel vl = scheme->LabelView(*compiled, mode);
      Decoder decoder(&vl);
      int n = labeled.run.num_items();
      for (int d1 = 0; d1 < n; ++d1) {
        if (!oracle.ItemVisible(d1)) continue;
        for (int d2 = 0; d2 < n; ++d2) {
          if (!oracle.ItemVisible(d2)) continue;
          ASSERT_EQ(decoder.Depends(labeled.labeler.Label(d1),
                                    labeled.labeler.Label(d2)),
                    oracle.Depends(d1, d2))
              << "mode=" << ToString(mode) << " d1=" << d1 << " d2=" << d2;
        }
      }
    }
  }
}

}  // namespace
}  // namespace fvl
