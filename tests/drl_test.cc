#include <gtest/gtest.h>

#include "fvl/service/legacy_facade.h"
#include "fvl/util/random.h"
#include "fvl/drl/drl_scheme.h"
#include "fvl/run/provenance_oracle.h"
#include "fvl/workload/bioaid.h"
#include "fvl/workload/query_generator.h"
#include "fvl/workload/view_generator.h"
#include "test_util.h"

namespace fvl {
namespace {

class DrlTest : public ::testing::Test {
 protected:
  DrlTest() : workload_(MakeBioAid(2012)), scheme_(FvlScheme::Create(&workload_.spec).value()) {}

  CompiledView BlackBoxView(int num_expandable, uint64_t seed) {
    ViewGeneratorOptions options;
    options.deps = PerceivedDeps::kBlackBox;
    options.num_expandable = num_expandable;
    options.seed = seed;
    return GenerateSafeView(workload_, options);
  }

  Workload workload_;
  FvlScheme scheme_;
};

TEST_F(DrlTest, RestrictedGrammarSharesModuleIds) {
  CompiledView view = BlackBoxView(8, 3);
  DrlViewIndex index(&workload_.spec.grammar, &view);
  EXPECT_EQ(index.restricted().num_modules(),
            workload_.spec.grammar.num_modules());
  EXPECT_LT(index.restricted().num_productions(),
            workload_.spec.grammar.num_productions());
  int active = 0;
  for (ProductionId k = 0; k < workload_.spec.grammar.num_productions(); ++k) {
    if (view.IsActiveProduction(k)) {
      ++active;
      ProductionId rk = index.Restrict(k);
      ASSERT_GE(rk, 0);
      EXPECT_EQ(index.restricted().production(rk).lhs,
                workload_.spec.grammar.production(k).lhs);
    } else {
      EXPECT_EQ(index.Restrict(k), -1);
    }
  }
  EXPECT_EQ(index.restricted().num_productions(), active);
}

TEST_F(DrlTest, AgreesWithOracleOnBlackBoxViews) {
  RunGeneratorOptions run_options;
  run_options.target_items = 800;
  for (uint64_t seed : {1u, 2u, 3u}) {
    run_options.seed = seed;
    ::fvl::Run run = GenerateRandomRun(workload_.spec.grammar, run_options);
    for (int size : {6, 10, 16}) {
      CompiledView view = BlackBoxView(size, seed * 17 + size);
      DrlViewIndex index(&workload_.spec.grammar, &view);
      DrlRunLabeler labeler = DrlLabelRun(run, index);
      ProvenanceOracle oracle(run, view);

      // DRL labels exactly the visible items.
      int visible = 0;
      for (int item = 0; item < run.num_items(); ++item) {
        ASSERT_EQ(labeler.HasLabel(item), oracle.ItemVisible(item))
            << "item " << item;
        visible += oracle.ItemVisible(item) ? 1 : 0;
      }
      EXPECT_EQ(labeler.num_visible_items(), visible);

      // Query agreement on sampled pairs.
      Rng rng(seed * 1000 + size);
      std::vector<int> visible_items;
      for (int item = 0; item < run.num_items(); ++item) {
        if (oracle.ItemVisible(item)) visible_items.push_back(item);
      }
      int positives = 0;
      for (int q = 0; q < 1200; ++q) {
        int d1 = visible_items[rng.NextBounded(visible_items.size())];
        int d2 = visible_items[rng.NextBounded(visible_items.size())];
        bool expected = oracle.Depends(d1, d2);
        positives += expected ? 1 : 0;
        ASSERT_EQ(DrlDepends(index, labeler.Label(d1), labeler.Label(d2)),
                  expected)
            << "seed=" << seed << " size=" << size << " d1=" << d1
            << " d2=" << d2 << "\n l1=" << labeler.Label(d1).ToString()
            << "\n l2=" << labeler.Label(d2).ToString();
      }
      EXPECT_GT(positives, 0);
    }
  }
}

TEST_F(DrlTest, LabelsGrowLogarithmically) {
  CompiledView view = BlackBoxView(-1, 1);
  DrlViewIndex index(&workload_.spec.grammar, &view);
  double previous_max = 0;
  double growth_sum = 0;
  int growth_count = 0;
  for (int target : {500, 1000, 2000, 4000}) {
    RunGeneratorOptions options;
    options.target_items = target;
    options.seed = 5;
    ::fvl::Run run = GenerateRandomRun(workload_.spec.grammar, options);
    DrlRunLabeler labeler = DrlLabelRun(run, index);
    int64_t max_bits = 0;
    for (int item = 0; item < run.num_items(); ++item) {
      if (labeler.HasLabel(item)) {
        max_bits = std::max(max_bits, labeler.LabelBits(item));
      }
    }
    if (previous_max > 0) {
      growth_sum += max_bits - previous_max;
      ++growth_count;
    }
    previous_max = static_cast<double>(max_bits);
  }
  // Doubling the run size must add only a constant number of bits.
  EXPECT_LT(growth_sum / growth_count, 12.0);
}

TEST_F(DrlTest, LabelCodecRoundTrip) {
  CompiledView view = BlackBoxView(10, 2);
  DrlViewIndex index(&workload_.spec.grammar, &view);
  RunGeneratorOptions options;
  options.target_items = 300;
  ::fvl::Run run = GenerateRandomRun(workload_.spec.grammar, options);
  DrlRunLabeler labeler = DrlLabelRun(run, index);
  for (int item = 0; item < run.num_items(); ++item) {
    if (!labeler.HasLabel(item)) continue;
    BitWriter writer = index.codec().Encode(labeler.Label(item));
    BitReader reader(writer);
    ASSERT_EQ(index.codec().Decode(&reader), labeler.Label(item));
    ASSERT_TRUE(reader.AtEnd());
    ASSERT_EQ(writer.size_bits(), labeler.LabelBits(item));
  }
}

TEST_F(DrlTest, PerViewLabelingCostMultiplies) {
  // The non-view-adaptive cost model of Figs. 21-22: labeling v views costs
  // v per-view label sets.
  RunGeneratorOptions options;
  options.target_items = 400;
  ::fvl::Run run = GenerateRandomRun(workload_.spec.grammar, options);
  int64_t total_bits_item0 = 0;
  int item = run.InputItems(run.start_instance())[0];
  for (uint64_t v = 0; v < 4; ++v) {
    CompiledView view = BlackBoxView(10, 100 + v);
    DrlViewIndex index(&workload_.spec.grammar, &view);
    DrlRunLabeler labeler = DrlLabelRun(run, index);
    ASSERT_TRUE(labeler.HasLabel(item));
    total_bits_item0 += labeler.LabelBits(item);
  }
  // Four views -> roughly four times one view's label bits (> 2x is enough
  // to witness the multiplication).
  CompiledView one = BlackBoxView(10, 100);
  DrlViewIndex index(&workload_.spec.grammar, &one);
  DrlRunLabeler labeler = DrlLabelRun(run, index);
  EXPECT_GT(total_bits_item0, 2 * labeler.LabelBits(item));
}

}  // namespace
}  // namespace fvl
