#include <gtest/gtest.h>

#include "fvl/service/legacy_facade.h"
#include "fvl/run/provenance_oracle.h"
#include "fvl/workload/paper_example.h"
#include "test_util.h"

namespace fvl {
namespace {

TEST(FvlScheme, CreateSucceedsOnPaperExample) {
  PaperExample ex = MakePaperExample();
  Result<FvlScheme> scheme = FvlScheme::Create(&ex.spec);
  ASSERT_TRUE(scheme.has_value()) << scheme.status().ToString();
  EXPECT_EQ(&scheme->grammar(), &ex.spec.grammar);
  EXPECT_TRUE(scheme->true_full().IsDefined(ex.S));
}

TEST(FvlScheme, CreateRejectsUnsafe) {
  Specification unsafe = MakeUnsafeExample();
  Result<FvlScheme> scheme = FvlScheme::Create(&unsafe);
  EXPECT_FALSE(scheme.has_value());
  EXPECT_EQ(scheme.code(), ErrorCode::kUnsafeSpecification);
}

TEST(FvlScheme, CreateRejectsNonStrictlyLinear) {
  Specification fig10 = MakeFig10Example();
  Result<FvlScheme> scheme = FvlScheme::Create(&fig10);
  EXPECT_FALSE(scheme.has_value());
  EXPECT_EQ(scheme.code(), ErrorCode::kNotStrictlyLinearRecursive);
  EXPECT_NE(scheme.status().message().find("strictly linear"),
            std::string::npos);
}

TEST(FvlScheme, GenerateLabeledRunLabelsEverything) {
  PaperExample ex = MakePaperExample();
  FvlScheme scheme = FvlScheme::Create(&ex.spec).value();
  RunGeneratorOptions options;
  options.target_items = 300;
  FvlScheme::LabeledRun labeled = scheme.GenerateLabeledRun(options);
  EXPECT_TRUE(labeled.run.IsComplete());
  EXPECT_EQ(labeled.labeler.num_labels(), labeled.run.num_items());
}

TEST(BasicDynamicLabeling, Theorem8Adapter) {
  // Thm. 8: the view-adaptive scheme yields a basic dynamic labeling scheme
  // for the default view: π'(φ'(d1), φ'(d2)) answers white-box reachability.
  PaperExample ex = MakePaperExample();
  FvlScheme scheme = FvlScheme::Create(&ex.spec).value();
  BasicDynamicLabeling basic(&scheme);

  ::fvl::Run run(&ex.spec.grammar);
  basic.OnStart(run);
  // Terminate every frontier instance along its cheapest completion.
  std::vector<int64_t> cost = MinCompletionItems(scheme.grammar());
  while (!run.IsComplete()) {
    int inst = run.Frontier().front();
    ModuleId type = run.instance(inst).type;
    ProductionId best = -1;
    int64_t best_cost = -1;
    for (ProductionId k : scheme.grammar().ProductionsOf(type)) {
      const Production& p = scheme.grammar().production(k);
      int64_t total = static_cast<int64_t>(p.rhs.edges.size());
      for (ModuleId member : p.rhs.members) total += cost[member];
      if (best == -1 || total < best_cost) {
        best = k;
        best_cost = total;
      }
    }
    const DerivationStep& step = run.Apply(inst, best);
    basic.OnApply(run, step);
  }

  auto default_view =
      *CompiledView::Compile(ex.spec.grammar, ex.default_view);
  ProvenanceOracle oracle(run, default_view);
  for (int d1 = 0; d1 < run.num_items(); ++d1) {
    for (int d2 = 0; d2 < run.num_items(); ++d2) {
      ASSERT_EQ(basic.Depends(d1, d2), oracle.Depends(d1, d2))
          << "d1=" << d1 << " d2=" << d2;
    }
  }
}

TEST(LabelLength, LogarithmicGrowth) {
  // Thm. 10 part 1: data labels are O(log n) bits. Doubling the run size
  // must increase the maximum label length by only a constant.
  PaperExample ex = MakePaperExample();
  FvlScheme scheme = FvlScheme::Create(&ex.spec).value();
  std::vector<double> max_bits;
  for (int target : {1000, 2000, 4000, 8000}) {
    RunGeneratorOptions options;
    options.target_items = target;
    options.seed = 3;
    FvlScheme::LabeledRun labeled = scheme.GenerateLabeledRun(options);
    int64_t run_max = 0;
    for (int item = 0; item < labeled.run.num_items(); ++item) {
      run_max = std::max(run_max, labeled.labeler.LabelBits(item));
    }
    max_bits.push_back(static_cast<double>(run_max));
  }
  for (size_t i = 1; i < max_bits.size(); ++i) {
    EXPECT_LE(max_bits[i] - max_bits[i - 1], 10.0)
        << "doubling added too many bits at step " << i;
  }
  // And the absolute size is far below linear (a 8000-item run would need
  // thousands of bits if labels were linear).
  EXPECT_LT(max_bits.back(), 120.0);
}

TEST(LabelImmutability, LabelsNeverChangeAfterAssignment) {
  // Def. 10: labels are assigned when items appear and cannot be modified.
  // Snapshot every label right after its creation step and compare at the
  // end of the derivation.
  PaperExample ex = MakePaperExample();
  FvlScheme scheme = FvlScheme::Create(&ex.spec).value();
  RunLabeler labeler = scheme.MakeRunLabeler();
  std::vector<DataLabel> snapshots;

  RunGeneratorOptions options;
  options.target_items = 400;
  ::fvl::Run run = GenerateRandomRun(
      ex.spec.grammar, options,
      [&](const ::fvl::Run& current, const DerivationStep* step) {
        if (step == nullptr) {
          labeler.OnStart(current);
        } else {
          labeler.OnApply(current, *step);
        }
        for (int item = static_cast<int>(snapshots.size());
             item < labeler.num_labels(); ++item) {
          snapshots.push_back(labeler.Label(item));
        }
      });
  ASSERT_EQ(static_cast<int>(snapshots.size()), run.num_items());
  for (int item = 0; item < run.num_items(); ++item) {
    ASSERT_EQ(labeler.Label(item), snapshots[item]) << "item " << item;
  }
}

}  // namespace
}  // namespace fvl
