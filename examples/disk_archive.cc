// The on-disk index tier, end to end: a long execution checkpoints label
// deltas to disk as it runs, the delta files are reassembled into L0 run
// archives when the run closes, L0 archives are compacted into a merged L1
// archive (and L1 archives into L2 — already-merged inputs re-merge
// without flattening back to single runs), and the final archive is served
// straight off its mmap — the long-label arena still lives in the file's
// pages, zero-copy (LabelStore::arena_borrowed()).
//
// This is the dLSM shape: deltas are the write-ahead pieces, run archives
// are L0, compaction folds levels together, and serving never needs the
// heap copy a Deserialize() round trip would make.
//
//   $ ./disk_archive

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "fvl/core/index.h"
#include "fvl/service/provenance_service.h"
#include "fvl/util/file.h"
#include "fvl/util/random.h"
#include "fvl/util/stopwatch.h"
#include "fvl/workload/bioaid.h"
#include "fvl/workload/view_generator.h"

using namespace fvl;

namespace {

std::string PathFor(const std::string& name) {
  return "/tmp/fvl_disk_archive_" + name;
}

void WriteArchive(const std::string& path, std::string_view blob) {
  FileHandle out = FileHandle::CreateTruncate(path).value();
  FVL_CHECK(out.WriteAll(blob).ok());
  FVL_CHECK(out.Close().ok());
}

}  // namespace

int main() {
  Workload workload = MakeBioAid(2012);
  auto service = ProvenanceService::Create(workload.spec).value();

  // --- Write path: one long execution, checkpointed incrementally. -------
  //
  // Every ~800 items the session freezes only the labels since the last
  // checkpoint (SnapshotDelta, O(delta)) and appends a delta file; a crash
  // loses at most one checkpoint interval.
  std::vector<std::string> delta_paths;
  {
    auto reference = service->GenerateLabeledRun(
        RunGeneratorOptions{.target_items = 4000, .seed = 7});
    auto session = service->BeginRun();
    int checkpoint = 0;
    auto flush_delta = [&] {
      ProvenanceIndex delta = session->SnapshotDelta();
      delta_paths.push_back(
          PathFor("delta" + std::to_string(checkpoint++) + ".fvlidx"));
      WriteArchive(delta_paths.back(), delta.Serialize());
    };
    for (int s = 0; s < reference->run().num_steps(); ++s) {
      const DerivationStep& step = reference->run().step(s);
      FVL_CHECK(session->Apply(step.instance, step.production).ok());
      if (session->num_items() - session->frozen_items() >= 800) flush_delta();
    }
    flush_delta();  // the tail
    std::printf("write path: %d items checkpointed into %zu delta files\n",
                session->num_items(), delta_paths.size());
  }

  // --- Run close: reassemble deltas into the L0 run archive. -------------
  //
  // FromDeltas produces the index a full Snapshot() would have — bit for
  // bit — so the delta files can be deleted once the L0 archive exists.
  std::vector<std::string> l0_paths;
  {
    std::vector<ProvenanceIndex> deltas;
    for (const std::string& path : delta_paths) {
      FileHandle in = FileHandle::OpenRead(path).value();
      deltas.push_back(ProvenanceIndex::Deserialize(in.ReadAll().value()).value());
    }
    ProvenanceIndex run0 = ProvenanceIndex::FromDeltas(deltas).value();
    l0_paths.push_back(PathFor("run0.fvlidx"));
    WriteArchive(l0_paths.back(), run0.Serialize());
    std::printf("run close: %zu deltas -> L0 archive (%d items)\n",
                deltas.size(), run0.num_items());
  }
  // Three more executions close the simple way: snapshot, serialize, write.
  for (int r = 1; r < 4; ++r) {
    auto session = service->GenerateLabeledRun(RunGeneratorOptions{
        .target_items = 2000, .seed = static_cast<uint64_t>(100 + r)});
    l0_paths.push_back(PathFor("run" + std::to_string(r) + ".fvlidx"));
    WriteArchive(l0_paths.back(), session->Snapshot().Serialize());
  }

  // --- Compaction: L0 run archives fold into one merged L1 archive. ------
  //
  // CompactFiles maps each input and streams it through CompactStream:
  // peak heap is O(largest input + output) however many inputs there are,
  // and input label arenas are read from their mappings, never copied.
  Stopwatch watch;
  MergedProvenanceIndex l1a =
      service->CompactFiles(l0_paths, PathFor("l1a.fvlmrg")).value();
  std::printf("compaction: %zu L0 archives -> L1 (%d runs, %d items) in "
              "%.2f ms\n",
              l0_paths.size(), l1a.num_runs(), l1a.total_items(),
              watch.ElapsedMillis());

  // A second batch of runs becomes its own L1 archive...
  std::vector<std::string> batch2;
  for (int r = 4; r < 6; ++r) {
    auto session = service->GenerateLabeledRun(RunGeneratorOptions{
        .target_items = 2000, .seed = static_cast<uint64_t>(100 + r)});
    batch2.push_back(PathFor("run" + std::to_string(r) + ".fvlidx"));
    WriteArchive(batch2.back(), session->Snapshot().Serialize());
  }
  (void)service->CompactFiles(batch2, PathFor("l1b.fvlmrg")).value();

  // ...and the two *already-merged* L1 archives re-merge into L2 directly:
  // run groups are appended run by run, never flattened back to single-run
  // indexes first.
  std::vector<std::string> l1_paths = {PathFor("l1a.fvlmrg"),
                                       PathFor("l1b.fvlmrg")};
  MergedProvenanceIndex l2 =
      service->CompactFiles(l1_paths, PathFor("l2.fvlmrg")).value();
  std::printf("re-merge: 2 L1 archives -> L2 (%d runs, %d items)\n",
              l2.num_runs(), l2.total_items());

  // --- Serving: the L2 archive queried straight off its mapping. ---------
  MergedProvenanceIndex served =
      service->OpenMergedIndexFile(PathFor("l2.fvlmrg")).value();
  std::printf("serving: arena_borrowed=%s (long labels point into the "
              "file's pages)\n",
              served.store().arena_borrowed() ? "true" : "false");

  ViewGeneratorOptions view_options;
  view_options.num_expandable = 8;
  view_options.seed = 4;
  ViewHandle view =
      service->RegisterView(GenerateSafeView(workload, view_options).view())
          .value();
  Rng rng(11);
  std::vector<std::pair<RunItem, RunItem>> queries;
  for (int q = 0; q < 20000; ++q) {
    RunItem a{rng.NextInt(0, served.num_runs() - 1), 0};
    RunItem b{rng.NextInt(0, served.num_runs() - 1), 0};
    a.item = rng.NextInt(0, served.num_items(a.run) - 1);
    b.item = rng.NextInt(0, served.num_items(b.run) - 1);
    queries.push_back({a, b});
  }
  watch.Reset();
  std::vector<bool> answers =
      service->QueryAcrossRuns(view, served, queries).value();
  double query_ms = watch.ElapsedMillis();
  int positive = 0;
  for (bool answer : answers) positive += answer;
  std::printf("audit: %zu cross-run queries against the mapped archive in "
              "%.1f ms (%.0f qps), %d positive\n",
              queries.size(), query_ms,
              queries.size() / (query_ms / 1000.0), positive);
  return 0;
}
