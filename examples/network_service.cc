// The provenance service as a network server: a ProvenanceServer wraps an
// in-process service behind the length-framed TCP protocol of
// docs/SERVER.md, and remote clients derive runs, freeze snapshots, merge
// them server-side, and audit across runs — all without linking the
// labeling machinery. The client sees the same Result<T>/ErrorCode
// taxonomy a direct caller would, and pipelined point queries from
// concurrent clients are coalesced into shared batched decode passes.
//
//   $ ./network_service

#include <cstdio>
#include <utility>
#include <vector>

#include "fvl/net/client.h"
#include "fvl/net/server.h"
#include "fvl/service/provenance_service.h"
#include "fvl/workload/bioaid.h"
#include "fvl/workload/view_generator.h"

using namespace fvl;

int main() {
  Workload workload = MakeBioAid(2012);
  auto service = ProvenanceService::Create(workload.spec).value();

  // One process owns the service and serves it on a loopback port.
  auto server = net::ProvenanceServer::Start(service).value();
  std::printf("server listening on port %d\n", server->port());

  net::ProvenanceClient client =
      net::ProvenanceClient::Connect(server->port()).value();
  std::printf("protocol version %llu\n",
              static_cast<unsigned long long>(client.Ping().value()));

  // Register the auditor's grey-box view. Registration is cached: every
  // client registering the same view gets the same id back.
  ViewGeneratorOptions view_options;
  view_options.num_expandable = 8;
  view_options.seed = 8;
  View view = GenerateSafeView(workload, view_options).view();
  uint64_t view_id = client.RegisterView(view).value();

  // Derive two runs over the wire: begin a session, apply derivation
  // steps one by one (here replayed from generated reference runs — a
  // real client would apply its own workflow's steps), freeze each into
  // a server-side snapshot.
  std::vector<uint64_t> run_ids;
  std::vector<int> run_sizes;
  for (int r = 0; r < 2; ++r) {
    auto reference = service->GenerateLabeledRun(
        RunGeneratorOptions{.target_items = 1500,
                            .seed = static_cast<uint64_t>(40 + r)});
    uint64_t session_id = client.BeginRun().value();
    for (int s = 0; s < reference->run().num_steps(); ++s) {
      const DerivationStep& step = reference->run().step(s);
      client.Apply(session_id, step.instance, step.production).value();
    }
    net::SnapshotInfo frozen = client.Snapshot(session_id).value();
    run_ids.push_back(frozen.index_id);
    run_sizes.push_back(frozen.num_items);
    std::printf("run %d: index %llu frozen with %d items\n", r,
                static_cast<unsigned long long>(frozen.index_id),
                frozen.num_items);
  }

  // Point queries within a run — and the same answers as a batch.
  constexpr ViewLabelMode kMode = ViewLabelMode::kQueryEfficient;
  bool one = client.Depends(view_id, run_ids[0], kMode, 0, 9).value();
  std::vector<std::pair<int, int>> pairs = {{0, 9}, {9, 0}, {3, 200}};
  std::vector<bool> batch =
      client.DependsMany(view_id, run_ids[0], kMode, pairs).value();
  std::printf("depends(0, 9) = %d; batch of %zu answers, first %d\n", one,
              batch.size(), static_cast<int>(batch[0]));

  // Server-side streamed merge, then a cross-run audit with (run, item)
  // addressing — the multi_run_store example, but fully remote.
  net::MergeInfo merged = client.MergeRuns(run_ids).value();
  std::printf("merged index %llu: %d runs, %d items\n",
              static_cast<unsigned long long>(merged.merged_id),
              merged.num_runs, merged.total_items);
  std::vector<std::pair<RunItem, RunItem>> cross = {
      {{0, 5}, {1, run_sizes[1] - 1}},
      {{1, 5}, {0, run_sizes[0] - 1}},
  };
  std::vector<bool> audited =
      client.QueryAcrossRuns(view_id, merged.merged_id, kMode, cross).value();
  std::printf("cross-run audit: %zu answers\n", audited.size());

  // Errors travel the wire intact: an unknown index id is kNotFound, the
  // same code (and message) a direct in-process call would produce.
  Result<bool> bad = client.Depends(view_id, 9999, kMode, 0, 1);
  std::printf("unknown index over the wire: %s\n",
              bad.status().ToString().c_str());

  net::ServerStats stats = server->stats();
  std::printf("server saw %llu frames on %llu connections\n",
              static_cast<unsigned long long>(stats.frames),
              static_cast<unsigned long long>(stats.connections));
  server->Stop();  // drains in-flight responses before closing
  return 0;
}
