// Quickstart: the paper's running example end to end, through the
// ProvenanceService API.
//
// Builds the Figure-2 specification, starts an online-labeling session,
// derives a Figure-3-style run step by step, registers two views — the
// default (white-box) view U1 and the grey-box security view U2 of
// Example 7 — and asks the Example-8 question "does d31 depend on d17?",
// whose answer differs between views.
//
//   $ ./quickstart

#include <cstdio>

#include "fvl/service/provenance_service.h"
#include "fvl/workload/paper_example.h"

using namespace fvl;

int main() {
  // 1. The specification G^λ (Figure 2) and a service hosting it. Create
  //    verifies the Thm.-8 preconditions — proper grammar, strictly linear
  //    recursion, safe dependency assignment — and reports a structured
  //    error code if any fails. The service owns its copy of the spec.
  PaperExample example = MakePaperExample();
  Result<std::shared_ptr<ProvenanceService>> created =
      ProvenanceService::Create(example.spec);
  if (!created.ok()) {
    std::printf("rejected: %s\n", created.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<ProvenanceService> service = *created;
  std::printf("specification: %d modules, %d productions, %d cycles\n",
              service->grammar().num_modules(),
              service->grammar().num_productions(),
              service->production_graph().num_cycles());

  // 2. A session derives a run while labeling each data item the moment it
  //    appears (Def. 10's dynamic labeling). Apply p1, expand A via the
  //    A->B->A recursion twice, close it with p3, then expand C's loop.
  std::shared_ptr<ProvenanceSession> session = service->BeginRun();
  const Run& run = session->run();
  auto apply = [&](int instance, ProductionId production) {
    return session->Apply(instance, production).value();
  };
  DerivationStep s1 = apply(run.start_instance(), example.p[0]);
  int A1 = s1.first_child + 2;
  DerivationStep s2 = apply(A1, example.p[1]);
  DerivationStep s3 = apply(s2.first_child + 1, example.p[3]);
  DerivationStep s6 = apply(s3.first_child + 1, example.p[2]);
  int C4 = s6.first_child + 1;
  DerivationStep s7 = apply(C4, example.p[4]);
  apply(s7.first_child + 1, example.p[6]);  // D via base case
  apply(s7.first_child + 2, example.p[7]);  // E
  while (!session->complete()) {
    int instance = run.Frontier().front();
    ModuleId type = run.instance(instance).type;
    apply(instance, service->grammar().ProductionsOf(type).back());
  }
  std::printf("run: %d data items in %d derivation steps\n", run.num_items(),
              run.num_steps());

  // 3. Example-15-style data label of the item entering C:4's loop.
  int d21 = s7.first_item;
  std::printf("data label of item %d: %s (%lld bits)\n", d21,
              session->Label(d21).ToString().c_str(),
              static_cast<long long>(session->LabelBits(d21)));

  // 4. Register the views. The default view came pre-registered; U2 is
  //    compiled, labeled and cached once — further registrations of the
  //    same view return the same handle and do no new work. View labels
  //    are independent of any run; data labels are independent of any view.
  ViewHandle u1 = service->default_view();
  ViewHandle u2 = service->RegisterView(example.grey_view).value();
  std::printf(
      "view labels: U1 = %lld bits, U2 = %lld bits\n",
      static_cast<long long>(
          service->LabelOf(u1, ViewLabelMode::kQueryEfficient)
              .value()
              ->SizeBits()),
      static_cast<long long>(
          service->LabelOf(u2, ViewLabelMode::kQueryEfficient)
              .value()
              ->SizeBits()));

  // 5. The Example-8 query: d31 (C:4's first output) vs d17 (C:4's first
  //    input). U2 hides C's internals behind black-box dependencies, so the
  //    answer flips from "no" to "yes".
  int d17 = run.InputItems(C4)[0];
  int d31 = run.OutputItems(C4)[0];
  std::printf(
      "does d31 depend on d17?  U1 (white-box): %s   U2 (grey-box): %s\n",
      session->Depends(u1, d17, d31).value() ? "yes" : "no",
      session->Depends(u2, d17, d31).value() ? "yes" : "no");

  // 6. Freeze the session into a self-describing snapshot and answer the
  //    same question batched, from the snapshot alone.
  ProvenanceIndex index = session->Snapshot();
  std::pair<int, int> queries[] = {{d17, d31}, {d31, d17}};
  std::vector<bool> answers = service->DependsMany(u2, index, queries).value();
  std::printf(
      "batched over a %d-item snapshot (U2): d17->d31 %s, d31->d17 %s\n",
      index.num_items(), answers[0] ? "yes" : "no", answers[1] ? "yes" : "no");
  return 0;
}
