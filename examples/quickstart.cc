// Quickstart: the paper's running example end to end.
//
// Builds the Figure-2 specification, derives a Figure-3-style run while
// labeling it online, labels two views — the default (white-box) view U1 and
// the grey-box security view U2 of Example 7 — and asks the Example-8
// question "does d31 depend on d17?", whose answer differs between views.
//
//   $ ./quickstart

#include <cstdio>

#include "fvl/core/decoder.h"
#include "fvl/core/scheme.h"
#include "fvl/workload/paper_example.h"

using namespace fvl;

int main() {
  // 1. The specification G^λ (Figure 2) and the FVL scheme for it. The
  //    constructor verifies the Thm.-8 preconditions: proper grammar,
  //    strictly linear recursion, safe dependency assignment.
  PaperExample example = MakePaperExample();
  FvlScheme scheme(&example.spec);
  std::printf("specification: %d modules, %d productions, %d cycles\n",
              example.spec.grammar.num_modules(),
              example.spec.grammar.num_productions(),
              scheme.production_graph().num_cycles());

  // 2. Derive a run while labeling each data item the moment it appears
  //    (Def. 10's dynamic labeling). Apply p1, expand A via the A->B->A
  //    recursion twice, close it with p3, then expand C's loop.
  Run run(&example.spec.grammar);
  RunLabeler labeler = scheme.MakeRunLabeler();
  labeler.OnStart(run);
  auto apply = [&](int instance, ProductionId production) {
    const DerivationStep& step = run.Apply(instance, production);
    labeler.OnApply(run, step);
    return step;
  };
  const DerivationStep& s1 = apply(run.start_instance(), example.p[0]);
  int A1 = s1.first_child + 2;
  const DerivationStep& s2 = apply(A1, example.p[1]);
  const DerivationStep& s3 = apply(s2.first_child + 1, example.p[3]);
  const DerivationStep& s6 = apply(s3.first_child + 1, example.p[2]);
  int C4 = s6.first_child + 1;
  const DerivationStep& s7 = apply(C4, example.p[4]);
  apply(s7.first_child + 1, example.p[6]);  // D via base case
  apply(s7.first_child + 2, example.p[7]);  // E
  while (!run.IsComplete()) {
    int instance = run.Frontier().front();
    ModuleId type = run.instance(instance).type;
    apply(instance, example.spec.grammar.ProductionsOf(type).back());
  }
  std::printf("run: %d data items in %d derivation steps\n", run.num_items(),
              run.num_steps());

  // 3. Example-15-style data label of the item entering C:4's loop.
  int d21 = s7.first_item;
  std::printf("data label of item %d: %s (%lld bits)\n", d21,
              labeler.Label(d21).ToString().c_str(),
              static_cast<long long>(labeler.LabelBits(d21)));

  // 4. Label the two views statically. View labels are independent of any
  //    run; data labels are independent of any view.
  std::string error;
  auto u1 = *CompiledView::Compile(example.spec.grammar, example.default_view,
                                   &error);
  auto u2 =
      *CompiledView::Compile(example.spec.grammar, example.grey_view, &error);
  ViewLabel label_u1 = scheme.LabelView(u1, ViewLabelMode::kQueryEfficient);
  ViewLabel label_u2 = scheme.LabelView(u2, ViewLabelMode::kQueryEfficient);
  std::printf("view labels: U1 = %lld bits, U2 = %lld bits\n",
              static_cast<long long>(label_u1.SizeBits()),
              static_cast<long long>(label_u2.SizeBits()));

  // 5. The Example-8 query: d31 (C:4's first output) vs d17 (C:4's first
  //    input). U2 hides C's internals behind black-box dependencies, so the
  //    answer flips from "no" to "yes".
  int d17 = run.InputItems(C4)[0];
  int d31 = run.OutputItems(C4)[0];
  Decoder pi_u1(&label_u1);
  Decoder pi_u2(&label_u2);
  std::printf("does d31 depend on d17?  U1 (white-box): %s   U2 (grey-box): %s\n",
              pi_u1.Depends(labeler.Label(d17), labeler.Label(d31)) ? "yes"
                                                                    : "no",
              pi_u2.Depends(labeler.Label(d17), labeler.Label(d31)) ? "yes"
                                                                    : "no");
  return 0;
}
