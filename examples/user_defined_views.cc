// User-defined views (§5): a view author groups two pipeline steps of the
// running example's W5 into a single module F whose internals — the modules
// D and E, their recursive expansions, and the data flowing between them —
// disappear from the provenance the viewer sees. Labels created before the
// view existed keep working: the view label is computed over the *original*
// specification with F's perceived dependencies substituted (Example 19).
//
//   $ ./user_defined_views

#include <cstdio>

#include "fvl/core/decoder.h"
#include "fvl/service/legacy_facade.h"
#include "fvl/core/visibility.h"
#include "fvl/workload/paper_example.h"

using namespace fvl;

int main() {
  PaperExample example = MakePaperExample();
  FvlScheme scheme = FvlScheme::Create(&example.spec).value();

  // A run labeled long before anyone defines the view below.
  RunGeneratorOptions run_options;
  run_options.target_items = 300;
  run_options.seed = 4;
  FvlScheme::LabeledRun labeled = scheme.GenerateLabeledRun(run_options);
  std::printf("run labeled: %d items\n", labeled.run.num_items());

  // Example 18: group W5's members D and E into F with black-box perceived
  // dependencies.
  View base;
  base.expandable.assign(example.spec.grammar.num_modules(), false);
  base.expandable[example.S] = true;
  base.expandable[example.A] = true;
  base.expandable[example.B] = true;
  base.expandable[example.C] = true;
  base.perceived = example.spec.deps;

  ModuleGroup group{/*production=*/example.p[4],  // p5: C -> [b, D, E, c]
                    /*member_positions=*/{1, 2},  // D and E
                    /*name=*/"F",
                    /*perceived_deps=*/BoolMatrix::Full(2, 2)};

  auto view =
      GroupedView::Compile(example.spec.grammar, base, {group});
  if (!view.has_value()) {
    std::printf("failed to compile grouped view: %s\n",
                view.status().ToString().c_str());
    return 1;
  }
  const GroupBoundary& boundary = view->boundary(0);
  std::printf(
      "grouped view compiled: F has %zu inputs / %zu outputs; %zu data "
      "edges hidden inside; virtual grammar has %d modules\n",
      boundary.inputs.size(), boundary.outputs.size(),
      boundary.internal_edges.size(), view->virtual_grammar().num_modules());

  // Label the view (static) and decode against the pre-existing data labels.
  ViewLabel view_label = scheme.LabelView(*view, ViewLabelMode::kDefault);
  Decoder pi(&view_label);

  int visible = 0, hidden = 0;
  for (int item = 0; item < labeled.run.num_items(); ++item) {
    if (IsItemVisible(labeled.labeler.Label(item), view_label)) {
      ++visible;
    } else {
      ++hidden;
    }
  }
  std::printf("visibility through the view: %d visible, %d hidden items\n",
              visible, hidden);

  // Query across the group: an item feeding some C instance against an item
  // leaving it. With λ'(F) complete, everything entering C reaches
  // everything leaving it.
  for (int inst = 0; inst < labeled.run.num_instances(); ++inst) {
    if (labeled.run.instance(inst).type != example.C) continue;
    int d_in = labeled.run.InputItems(inst)[0];
    int d_out = labeled.run.OutputItems(inst)[0];
    std::printf(
        "C instance %d: depends(in -> out) through the grouped view: %s\n",
        inst,
        pi.Depends(labeled.labeler.Label(d_in), labeled.labeler.Label(d_out))
            ? "yes"
            : "no");
    break;
  }
  std::printf("data labels were not touched when the view was defined\n");
  return 0;
}
