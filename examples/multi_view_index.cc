// The multi-view provenance index (§1, §6.4): the core selling point of
// view-adaptive labeling. A provenance store labels each execution once; as
// views are added, changed, and deleted over time, only the (tiny, static)
// view labels are touched — the per-item index never is. The brute-force
// alternative (per-view labeling, as DRL must do) re-labels every stored
// run for every new view.
//
//   $ ./multi_view_index

#include <cstdio>
#include <vector>

#include "fvl/core/decoder.h"
#include "fvl/service/legacy_facade.h"
#include "fvl/drl/drl_scheme.h"
#include "fvl/util/stopwatch.h"
#include "fvl/workload/bioaid.h"
#include "fvl/workload/view_generator.h"

using namespace fvl;

int main() {
  Workload workload = MakeBioAid(2012);
  FvlScheme scheme = FvlScheme::Create(&workload.spec).value();

  // The provenance store: five executions, labeled once each.
  std::vector<FvlScheme::LabeledRun> store;
  Stopwatch watch;
  int64_t total_items = 0;
  int64_t fvl_index_bits = 0;
  for (int r = 0; r < 5; ++r) {
    RunGeneratorOptions options;
    options.target_items = 4000;
    options.seed = 50 + r;
    store.push_back(scheme.GenerateLabeledRun(options));
    total_items += store.back().run.num_items();
    for (int item = 0; item < store.back().run.num_items(); ++item) {
      fvl_index_bits += store.back().labeler.LabelBits(item);
    }
  }
  double fvl_build_ms = watch.ElapsedMillis();
  std::printf(
      "store: 5 runs, %lld items; FVL index: %.1f KB built in %.1f ms "
      "(including derivation)\n",
      static_cast<long long>(total_items), fvl_index_bits / 8192.0,
      fvl_build_ms);

  // Views arrive over time. For FVL, adding a view costs one static view
  // label; for DRL it costs relabeling all five stored runs.
  double drl_cumulative_ms = 0;
  for (int v = 0; v < 6; ++v) {
    ViewGeneratorOptions options;
    options.num_expandable = 8;
    options.deps = PerceivedDeps::kBlackBox;  // DRL needs black-box views
    options.seed = 900 + v;
    CompiledView view = GenerateSafeView(workload, options);

    watch.Reset();
    ViewLabel view_label =
        scheme.LabelView(view, ViewLabelMode::kQueryEfficient);
    double fvl_add_ms = watch.ElapsedMillis();

    watch.Reset();
    DrlViewIndex drl_index(&workload.spec.grammar, &view);
    int64_t drl_bits = 0;
    for (const auto& labeled : store) {
      DrlRunLabeler drl = DrlLabelRun(labeled.run, drl_index);
      for (int item = 0; item < labeled.run.num_items(); ++item) {
        if (drl.HasLabel(item)) drl_bits += drl.LabelBits(item);
      }
    }
    double drl_add_ms = watch.ElapsedMillis();
    drl_cumulative_ms += drl_add_ms;

    // Sanity: the new view answers queries from the *old* FVL labels.
    Decoder pi(&view_label);
    const FvlScheme::LabeledRun& labeled = store[v % store.size()];
    int yes = 0;
    for (int d1 = 0; d1 < 40; ++d1) {
      for (int d2 = 0; d2 < 40; ++d2) {
        yes += pi.Depends(labeled.labeler.Label(d1), labeled.labeler.Label(d2))
                   ? 1
                   : 0;
      }
    }
    std::printf(
        "add view %d: FVL +%.3f ms (+%.2f KB static label); "
        "DRL relabels the store: +%.1f ms (+%.1f KB per-item labels); "
        "sample queries answered: %d/1600 positive\n",
        v + 1, fvl_add_ms, view_label.SizeBits() / 8192.0, drl_add_ms,
        drl_bits / 8192.0, yes);
  }
  std::printf(
      "totals after 6 views: FVL per-item index untouched (%.1f KB); "
      "DRL spent %.1f ms relabeling and holds 6 label sets per item\n",
      fvl_index_bits / 8192.0, drl_cumulative_ms);
  return 0;
}
