// A multi-run provenance store: many executions of one specification are
// labeled online, frozen individually, and merged into a single queryable
// artifact (ProvenanceIndex::Merge). Cross-run audits then run as one
// QueryAcrossRuns batch against the merged index — no per-run fan-out in
// user code, and the artifact ships as one self-describing blob.
//
//   $ ./multi_run_store

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "fvl/service/provenance_service.h"
#include "fvl/util/random.h"
#include "fvl/util/stopwatch.h"
#include "fvl/workload/bioaid.h"
#include "fvl/workload/view_generator.h"

using namespace fvl;

int main() {
  Workload workload = MakeBioAid(2012);
  // The service copies the specification; `workload` stays intact for the
  // view generator below.
  auto service = ProvenanceService::Create(workload.spec).value();

  // Week one: five executions, labeled online, each frozen into its own
  // snapshot the moment it completes.
  std::vector<ProvenanceIndex> snapshots;
  int64_t separate_bytes = 0;
  for (int r = 0; r < 5; ++r) {
    RunGeneratorOptions options;
    options.target_items = 3000;
    options.seed = 70 + r;
    auto session = service->GenerateLabeledRun(options);
    snapshots.push_back(session->Snapshot());
    separate_bytes += static_cast<int64_t>(snapshots.back().Serialize().size());
    std::printf("run %d: %d items frozen\n", r,
                snapshots.back().num_items());
  }

  // Merge into one artifact: a contiguous relocated arena plus a per-run
  // offset table; items are now addressed as (run, item) pairs.
  Stopwatch watch;
  MergedProvenanceIndex merged = ProvenanceIndex::Merge(snapshots).value();
  double merge_ms = watch.ElapsedMillis();
  std::string blob = merged.Serialize();
  std::printf(
      "merged: %d runs, %d items in %.2f ms; one blob of %.1f KB "
      "(separate blobs: %.1f KB)\n",
      merged.num_runs(), merged.total_items(), merge_ms, blob.size() / 1024.0,
      separate_bytes / 1024.0);

  // The blob is self-describing: a consumer with no grammar at hand can
  // restore and hand it back to any service of the same specification.
  MergedProvenanceIndex restored =
      MergedProvenanceIndex::Deserialize(blob).value();

  // An auditor's view arrives later; the merged per-item index is never
  // touched (view labels are static and tiny).
  ViewGeneratorOptions view_options;
  view_options.num_expandable = 8;
  view_options.seed = 4;
  CompiledView audit_view = GenerateSafeView(workload, view_options);
  ViewHandle view = service->RegisterView(audit_view.view()).value();

  // One cross-run batch: random probes into every run of the store. Pairs
  // within a run are answered by the decoding predicate; pairs across runs
  // are false by definition (separate executions share no data flow).
  Rng rng(11);
  std::vector<std::pair<RunItem, RunItem>> queries;
  for (int q = 0; q < 20000; ++q) {
    RunItem a{rng.NextInt(0, restored.num_runs() - 1), 0};
    RunItem b{rng.NextInt(0, restored.num_runs() - 1), 0};
    a.item = rng.NextInt(0, restored.num_items(a.run) - 1);
    b.item = rng.NextInt(0, restored.num_items(b.run) - 1);
    queries.push_back({a, b});
  }
  watch.Reset();
  std::vector<bool> answers =
      service->QueryAcrossRuns(view, restored, queries).value();
  double query_ms = watch.ElapsedMillis();
  int positive = 0;
  for (bool answer : answers) positive += answer;
  std::printf(
      "audit: %zu cross-run queries in %.1f ms (%.0f qps), %d positive\n",
      queries.size(), query_ms, queries.size() / (query_ms / 1000.0),
      positive);

  // Which items does the auditor's view expose, store-wide?
  std::vector<bool> visible = service->VisibilitySweep(view, restored).value();
  int exposed = 0;
  for (bool v : visible) exposed += v;
  std::printf("visibility sweep: %d of %d stored items visible in the "
              "audit view\n",
              exposed, restored.total_items());
  return 0;
}
