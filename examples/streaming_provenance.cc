// Streaming provenance (§1, §2.3): scientific workflows run for a long
// time, so data items must be labeled the moment they are produced and
// queries must be answerable over partial executions. This example drives a
// BioAID execution step by step, answers dependency queries at checkpoints
// mid-run, and verifies at the end that no label was ever revised. It then
// replays the same scenario through the service API's durable-checkpoint
// path: SnapshotDelta freezes only the labels since the previous freeze
// (O(delta), not O(run)), FromDeltas reassembles the checkpoint files into
// the index a full Snapshot would have produced — bit for bit — and
// MergeRunsStreamed combines many serialized runs while holding only one
// deserialized input in memory at a time.
//
//   $ ./streaming_provenance

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "fvl/core/decoder.h"
#include "fvl/service/legacy_facade.h"
#include "fvl/service/provenance_service.h"
#include "fvl/util/random.h"
#include "fvl/workload/bioaid.h"

using namespace fvl;

int main() {
  Workload workload = MakeBioAid(2012);
  FvlScheme scheme = FvlScheme::Create(&workload.spec).value();

  // Static part, done once before the execution even starts: label the
  // abstraction view every user will query through.
  View default_view = MakeDefaultView(workload.spec);
  auto view =
      *CompiledView::Compile(workload.spec.grammar, default_view);
  ViewLabel view_label = scheme.LabelView(view, ViewLabelMode::kQueryEfficient);
  Decoder pi(&view_label);

  // Dynamic part: the engine announces derivation steps; the labeler reacts.
  Run run(&workload.spec.grammar);
  RunLabeler labeler = scheme.MakeRunLabeler();
  labeler.OnStart(run);
  std::vector<DataLabel> first_seen;
  auto snapshot = [&] {
    for (int item = static_cast<int>(first_seen.size());
         item < labeler.num_labels(); ++item) {
      first_seen.push_back(labeler.Label(item));
    }
  };
  snapshot();

  Rng rng(2026);
  int checkpoint = 0;
  for (int step_count = 0; !run.IsComplete(); ++step_count) {
    const std::vector<int>& frontier = run.Frontier();
    int instance = frontier[rng.NextBounded(frontier.size())];
    ModuleId type = run.instance(instance).type;
    const auto& productions = workload.spec.grammar.ProductionsOf(type);
    // Keep recursions going for a while, then wind down.
    ProductionId choice = productions[rng.NextBounded(productions.size())];
    const DerivationStep& step = run.Apply(instance, choice);
    labeler.OnApply(run, step);
    snapshot();

    if (step_count % 5 == 4) {
      // A user queries the *partial* execution right now.
      int d1 = static_cast<int>(rng.NextBounded(run.num_items()));
      int d2 = static_cast<int>(rng.NextBounded(run.num_items()));
      bool answer = pi.Depends(labeler.Label(d1), labeler.Label(d2));
      std::printf(
          "checkpoint %d after step %3d: run has %5d items; "
          "depends(%d -> %d) = %s\n",
          ++checkpoint, step_count + 1, run.num_items(), d1, d2,
          answer ? "yes" : "no");
    }
  }
  std::printf("execution finished with %d items in %d steps\n",
              run.num_items(), run.num_steps());

  // Def. 10's immutability, verified: every label equals its first version.
  for (int item = 0; item < run.num_items(); ++item) {
    if (!(labeler.Label(item) == first_seen[item])) {
      std::printf("BUG: label of item %d changed after assignment!\n", item);
      return 1;
    }
  }
  std::printf("all %d labels identical to the moment they were assigned\n",
              run.num_items());

  // --- Durable mid-run checkpoints (service API) --------------------------
  // A long execution wants its labels on disk *while it runs*. SnapshotDelta
  // freezes only the labels appended since the previous freeze, so each
  // checkpoint costs O(delta) no matter how long the run has become.
  auto service = ProvenanceService::Create(workload.spec).value();
  auto session = service->BeginRun();
  std::vector<ProvenanceIndex> checkpoints;
  Rng step_rng(7);
  while (!session->complete()) {
    for (int s = 0; s < 5 && !session->complete(); ++s) {
      const std::vector<int>& frontier = session->run().Frontier();
      int instance = frontier[step_rng.NextBounded(frontier.size())];
      ModuleId type = session->run().instance(instance).type;
      const auto& productions = workload.spec.grammar.ProductionsOf(type);
      session->Apply(instance,
                     productions[step_rng.NextBounded(productions.size())])
          .value();
    }
    checkpoints.push_back(session->SnapshotDelta());
    std::printf("delta checkpoint %zu: %d new labels (run at %d items)\n",
                checkpoints.size(), checkpoints.back().num_items(),
                session->num_items());
  }

  // Restart from the checkpoint files alone: the reassembly is the full
  // snapshot, bit for bit.
  ProvenanceIndex reassembled =
      ProvenanceIndex::FromDeltas(checkpoints).value();
  bool identical =
      reassembled.Serialize() == session->Snapshot().Serialize();
  std::printf(
      "reassembled %zu deltas into %d items; bit-identical to a full "
      "snapshot: %s\n",
      checkpoints.size(), reassembled.num_items(), identical ? "yes" : "no");
  if (!identical) return 1;

  // Archive jobs combine many finished runs; the streamed merge reads the
  // serialized snapshots one at a time, so memory stays bounded by the
  // largest run plus the output, not the sum of all runs.
  std::vector<std::string> run_blobs;
  run_blobs.push_back(reassembled.Serialize());
  for (int r = 0; r < 2; ++r) {
    RunGeneratorOptions archive_options;
    archive_options.target_items = 400;
    archive_options.seed = 11 + static_cast<uint64_t>(r);
    run_blobs.push_back(
        service->GenerateLabeledRun(archive_options)->Snapshot().Serialize());
  }
  std::vector<std::string_view> blob_views(run_blobs.begin(),
                                           run_blobs.end());
  MergedProvenanceIndex archive =
      service->MergeRunsStreamed(blob_views).value();
  std::printf(
      "streamed merge of %d serialized runs: %d items, one deserialized "
      "input alive at a time\n",
      archive.num_runs(), archive.total_items());
  return 0;
}
