// Streaming provenance (§1, §2.3): scientific workflows run for a long
// time, so data items must be labeled the moment they are produced and
// queries must be answerable over partial executions. This example drives a
// BioAID execution step by step, answers dependency queries at checkpoints
// mid-run, and verifies at the end that no label was ever revised.
//
//   $ ./streaming_provenance

#include <cstdio>
#include <vector>

#include "fvl/core/decoder.h"
#include "fvl/service/legacy_facade.h"
#include "fvl/util/random.h"
#include "fvl/workload/bioaid.h"

using namespace fvl;

int main() {
  Workload workload = MakeBioAid(2012);
  FvlScheme scheme = FvlScheme::Create(&workload.spec).value();

  // Static part, done once before the execution even starts: label the
  // abstraction view every user will query through.
  View default_view = MakeDefaultView(workload.spec);
  auto view =
      *CompiledView::Compile(workload.spec.grammar, default_view);
  ViewLabel view_label = scheme.LabelView(view, ViewLabelMode::kQueryEfficient);
  Decoder pi(&view_label);

  // Dynamic part: the engine announces derivation steps; the labeler reacts.
  Run run(&workload.spec.grammar);
  RunLabeler labeler = scheme.MakeRunLabeler();
  labeler.OnStart(run);
  std::vector<DataLabel> first_seen;
  auto snapshot = [&] {
    for (int item = static_cast<int>(first_seen.size());
         item < labeler.num_labels(); ++item) {
      first_seen.push_back(labeler.Label(item));
    }
  };
  snapshot();

  Rng rng(2026);
  int checkpoint = 0;
  for (int step_count = 0; !run.IsComplete(); ++step_count) {
    const std::vector<int>& frontier = run.Frontier();
    int instance = frontier[rng.NextBounded(frontier.size())];
    ModuleId type = run.instance(instance).type;
    const auto& productions = workload.spec.grammar.ProductionsOf(type);
    // Keep recursions going for a while, then wind down.
    ProductionId choice = productions[rng.NextBounded(productions.size())];
    const DerivationStep& step = run.Apply(instance, choice);
    labeler.OnApply(run, step);
    snapshot();

    if (step_count % 5 == 4) {
      // A user queries the *partial* execution right now.
      int d1 = static_cast<int>(rng.NextBounded(run.num_items()));
      int d2 = static_cast<int>(rng.NextBounded(run.num_items()));
      bool answer = pi.Depends(labeler.Label(d1), labeler.Label(d2));
      std::printf(
          "checkpoint %d after step %3d: run has %5d items; "
          "depends(%d -> %d) = %s\n",
          ++checkpoint, step_count + 1, run.num_items(), d1, d2,
          answer ? "yes" : "no");
    }
  }
  std::printf("execution finished with %d items in %d steps\n",
              run.num_items(), run.num_steps());

  // Def. 10's immutability, verified: every label equals its first version.
  for (int item = 0; item < run.num_items(); ++item) {
    if (!(labeler.Label(item) == first_seen[item])) {
      std::printf("BUG: label of item %d changed after assignment!\n", item);
      return 1;
    }
  }
  std::printf("all %d labels identical to the moment they were assigned\n",
              run.num_items());
  return 0;
}
