// Security views (§1, §2.2): a workflow owner hides sensitive subworkflows
// from an analyst group by (a) making their composite modules unexpandable
// and (b) publishing grey-box dependencies that overstate the real
// input/output dependencies, so the analyst cannot reconstruct the private
// wiring from provenance answers.
//
// The example also demonstrates the §5 data-visibility check: items created
// inside hidden expansions are invisible, and the analyst can tell from the
// labels alone.
//
//   $ ./security_views

#include <cstdio>

#include "fvl/core/decoder.h"
#include "fvl/service/legacy_facade.h"
#include "fvl/core/visibility.h"
#include "fvl/workload/bioaid.h"
#include "fvl/workload/query_generator.h"
#include "fvl/workload/view_generator.h"

using namespace fvl;

int main() {
  Workload workload = MakeBioAid(2012);
  FvlScheme scheme = FvlScheme::Create(&workload.spec).value();

  // One shared execution of the workflow, labeled online.
  RunGeneratorOptions run_options;
  run_options.target_items = 4000;
  run_options.seed = 11;
  FvlScheme::LabeledRun labeled = scheme.GenerateLabeledRun(run_options);
  std::printf("execution: %d data items\n", labeled.run.num_items());

  // The owner's view: everything white-box.
  ViewGeneratorOptions owner_options;
  owner_options.deps = PerceivedDeps::kWhiteBox;
  owner_options.seed = 1;
  CompiledView owner_view = GenerateSafeView(workload, owner_options);
  ViewLabel owner_label =
      scheme.LabelView(owner_view, ViewLabelMode::kQueryEfficient);

  // The analysts' security view: only 6 composite modules stay expandable,
  // the rest are sealed with grey-box (overstated) dependencies.
  ViewGeneratorOptions analyst_options;
  analyst_options.deps = PerceivedDeps::kGreyBox;
  analyst_options.num_expandable = 6;
  analyst_options.add_probability = 0.6;
  analyst_options.seed = 2;
  CompiledView analyst_view = GenerateSafeView(workload, analyst_options);
  ViewLabel analyst_label =
      scheme.LabelView(analyst_view, ViewLabelMode::kQueryEfficient);

  Decoder owner_pi(&owner_label);
  Decoder analyst_pi(&analyst_label);

  // Count how often the two views disagree on dependence, and how many
  // items the analyst cannot see at all.
  int invisible = 0;
  for (int item = 0; item < labeled.run.num_items(); ++item) {
    if (!IsItemVisible(labeled.labeler.Label(item), analyst_label)) {
      ++invisible;
    }
  }
  auto queries = GenerateVisibleQueries(labeled.run, labeled.labeler,
                                        analyst_label, 20000, 3);
  int disagreements = 0, analyst_yes = 0, owner_yes = 0;
  for (const auto& [d1, d2] : queries) {
    bool owner_answer = owner_pi.Depends(labeled.labeler.Label(d1),
                                         labeled.labeler.Label(d2));
    bool analyst_answer = analyst_pi.Depends(labeled.labeler.Label(d1),
                                             labeled.labeler.Label(d2));
    owner_yes += owner_answer ? 1 : 0;
    analyst_yes += analyst_answer ? 1 : 0;
    disagreements += owner_answer != analyst_answer ? 1 : 0;
    // Grey boxes only ever add dependencies: the analyst's positive set is a
    // superset of the owner's.
    if (owner_answer && !analyst_answer) {
      std::printf("BUG: the security view lost a true dependency!\n");
      return 1;
    }
  }
  std::printf(
      "items hidden from analysts: %d of %d\n"
      "sampled queries: %zu; owner says yes: %d; analysts see yes: %d; "
      "answers differ (falsified dependencies doing their job): %d\n",
      invisible, labeled.run.num_items(), queries.size(), owner_yes,
      analyst_yes, disagreements);

  // The same data labels served both views — nothing was relabeled.
  std::printf(
      "both views were answered from the same data labels "
      "(view-adaptive labeling)\n");
  return 0;
}
