#!/usr/bin/env python3
"""Unit tests for tools/bench_trend.py, driven through artifact fixtures.

Each case builds baseline/current directories of BENCH_*.json files shaped
exactly like the bench binaries' --json output, runs the gate as a
subprocess (the same way CI does), and asserts on exit code and log
markers. The zero-baseline cases pin the fix for the former silent
`if old == 0: continue`: a tracked metric whose baseline legitimately
rounds to 0 must still gate (absolute epsilon) and must be loudly logged.

Runs under ctest (see tests/CMakeLists.txt) or standalone:
  python3 tools/bench_trend_test.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_trend.py")


def artifact(rows, table="svc"):
    return {"tables": [{"table": table, "rows": rows}]}


def write_artifacts(directory, documents):
    os.makedirs(directory, exist_ok=True)
    for name, document in documents.items():
        with open(os.path.join(directory, name), "w") as f:
            json.dump(document, f)


def run_gate(current, baseline, *extra):
    proc = subprocess.run(
        [sys.executable, SCRIPT, "--current", current, "--baseline",
         baseline, *extra],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


class BenchTrendTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory(prefix="bench_trend_test_")
        self.addCleanup(self.tmp.cleanup)

    def dirs(self, baseline_rows, current_rows):
        baseline = os.path.join(self.tmp.name, "baseline")
        current = os.path.join(self.tmp.name, "current")
        write_artifacts(baseline, {"BENCH_svc.json": artifact(baseline_rows)})
        write_artifacts(current, {"BENCH_svc.json": artifact(current_rows)})
        return current, baseline

    def test_matched_row_within_threshold_passes(self):
        current, baseline = self.dirs(
            [{"mix": "a", "snapshot_delta_ms": 10.0}],
            [{"mix": "a", "snapshot_delta_ms": 11.0}])
        code, out = run_gate(current, baseline)
        self.assertEqual(code, 0, out)
        self.assertIn("[        ok]", out)

    def test_regression_beyond_threshold_fails(self):
        current, baseline = self.dirs(
            [{"mix": "a", "snapshot_delta_ms": 10.0}],
            [{"mix": "a", "snapshot_delta_ms": 20.0}])
        code, out = run_gate(current, baseline)
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSION", out)

    def test_lost_tracked_metric_is_hard_failure(self):
        current, baseline = self.dirs(
            [{"mix": "a", "snapshot_delta_ms": 10.0, "merged_qps": 5.0}],
            [{"mix": "a", "snapshot_delta_ms": 10.0}])
        code, out = run_gate(current, baseline)
        self.assertEqual(code, 2, out)
        self.assertIn("missing from the current artifact", out)

    def test_zero_baseline_within_epsilon_passes_with_loud_marker(self):
        # The former bug: `if old == 0: continue` — no log line, no gate.
        # The fixed gate must both pass and say so.
        current, baseline = self.dirs(
            [{"mix": "a", "snapshot_delta_ms": 0}],
            [{"mix": "a", "snapshot_delta_ms": 0.5}])
        code, out = run_gate(current, baseline, "--zero-epsilon", "1")
        self.assertEqual(code, 0, out)
        self.assertIn("[   skipped]", out)
        self.assertIn("zero baseline", out)

    def test_zero_baseline_beyond_epsilon_gates(self):
        current, baseline = self.dirs(
            [{"mix": "a", "snapshot_delta_ms": 0}],
            [{"mix": "a", "snapshot_delta_ms": 50}])
        code, out = run_gate(current, baseline, "--zero-epsilon", "1")
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSION", out)
        self.assertIn("zero baseline", out)

    def test_zero_baseline_higher_is_better_improvement_passes(self):
        # merged_qps going 0 -> anything positive is an improvement, never a
        # regression, whatever the epsilon.
        current, baseline = self.dirs(
            [{"runs": 4, "merged_qps": 0}],
            [{"runs": 4, "merged_qps": 100000.0}])
        code, out = run_gate(current, baseline, "--zero-epsilon", "1")
        self.assertEqual(code, 0, out)
        self.assertIn("[   skipped]", out)

    def test_mmap_serve_metrics_gate_in_both_directions(self):
        # The on-disk tier's pair: mapped_qps is higher-better, compact_ms
        # lower-better — one row carrying both must fail on a mapped_qps
        # collapse even while compact_ms improves.
        current, baseline = self.dirs(
            [{"runs": 8, "total_items": 8226, "mapped_qps": 1000000.0,
              "compact_ms": 4.0}],
            [{"runs": 8, "total_items": 8226, "mapped_qps": 500000.0,
              "compact_ms": 2.0}])
        code, out = run_gate(current, baseline)
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSION", out)
        self.assertIn("mapped_qps", out)

    def test_mmap_serve_improvements_pass(self):
        current, baseline = self.dirs(
            [{"runs": 8, "total_items": 8226, "mapped_qps": 1000000.0,
              "compact_ms": 4.0}],
            [{"runs": 8, "total_items": 8226, "mapped_qps": 1200000.0,
              "compact_ms": 3.5}])
        code, out = run_gate(current, baseline)
        self.assertEqual(code, 0, out)

    def test_new_row_shape_is_not_a_regression(self):
        current, baseline = self.dirs(
            [{"mix": "a", "snapshot_delta_ms": 10.0}],
            [{"mix": "a", "snapshot_delta_ms": 10.0},
             {"mix": "b", "snapshot_delta_ms": 500.0}])
        code, out = run_gate(current, baseline)
        self.assertEqual(code, 0, out)


if __name__ == "__main__":
    unittest.main()
