#!/usr/bin/env python3
"""Perf-trend gate over the BENCH_*.json artifacts.

Compares the current commit's benchmark artifacts against the previous
commit's (any directory of BENCH_*.json files — in CI, the restored
baseline cache) and fails when a tracked metric regresses by more than
the threshold. Rows are matched across commits by their identity columns
(everything that is not a tracked metric), so adding a new row size or
mix is never itself a "regression" — only a matched row moving the wrong
way is.

Tracked metrics (direction matters):
  merged_qps          higher is better   (bench_merge_query)
  snapshot_delta_ms   lower is better    (bench_service_throughput)
  stream_peak_stores  lower is better    (bench_merge_query)
  p99_us              lower is better    (ycsb_driver, table "ycsb")
  bytes_per_label     lower is better    (bench_service_throughput,
                                          bench_merge_query,
                                          bench_fig17_label_length,
                                          bench_fig21_multiview_space)
  index_bytes         lower is better    (bench_fig17_label_length,
                                          bench_fig21_multiview_space)

A tracked metric that the baseline row has but the current artifact lost is
a hard failure (exit 2), not a silent skip: a bench rename or a dropped
column would otherwise turn the gate off without anyone noticing. The
reverse direction — a metric present now but absent from the baseline — is
fine; that is just a new metric phasing in.

A baseline value of exactly 0 (a fast machine rounding snapshot_delta_ms
down, say) has no percentage scale. Those comparisons are gated on absolute
worsening (--zero-epsilon) instead, and logged with a loud [ skipped ]
marker when within it — never silently ungated.

Usage:
  tools/bench_trend.py --current . --baseline bench-baseline [--threshold 20]

Exit codes: 0 ok (including "no baseline yet"), 1 regression, 2 bad input
(including a tracked metric missing from a current row its baseline had).
"""

import argparse
import glob
import json
import math
import os
import sys

# metric -> True when higher is better.
TRACKED = {
    "merged_qps": True,
    "snapshot_delta_ms": False,
    "stream_peak_stores": False,
    "p99_us": False,
    "bytes_per_label": False,
    "index_bytes": False,
    "mapped_qps": True,    # bench_mmap_serve: warm mmap-served throughput
    "compact_ms": False,   # bench_mmap_serve: CompactFiles wall time
}

# Columns that identify a row's configuration across commits. Everything
# else in a row is a measured value and would never reproduce exactly, so
# it must not take part in row matching.
ID_COLUMNS = {"runs", "total_items", "run_size", "checkpoints", "queries",
              "mix", "dist", "threads", "num_views"}

# Measured columns the gate deliberately does not track (too noisy, or
# redundant with a tracked metric). Every column a bench emits must appear
# in exactly one of TRACKED / ID_COLUMNS / KNOWN_UNTRACKED —
# tools/fvl_lint.py cross-checks the bench sources against this union, so
# adding a bench column without deciding its gating status fails CI.
KNOWN_UNTRACKED = {
    "one_at_a_time_qps", "locked_qps", "batched_qps", "batched_t2_qps",
    "batched_t4_qps", "speedup", "snapshot_total_ms", "delta_speedup",
    "reassemble_ms", "mat_merge_ms", "mat_peak_stores", "stream_merge_ms",
    "merge_ms", "per_run_batched_qps", "merged_t2_qps", "merged_t4_qps",
    "speedup_vs_loop", "point_ops", "qps", "p50_us", "p95_us", "mean_batch",
    "net_pct_of_locked", "cached_qps", "hit_rate",
    # Figure-bench label-length curves and the v1-tail comparison columns:
    # per-label bit curves restate the paper figures (the gate tracks the
    # serialized byte cost instead), and the v1 columns are a fixed formula
    # over the same arena, redundant with bytes_per_label.
    "fvl_avg_bits", "fvl_max_bits", "drl_avg_bits", "drl_max_bits",
    "fvl_bits", "drl_bits", "v1_bytes_per_label", "space_saving_pct",
    # bench_mmap_serve: heap/cold qps restate mapped_qps's comparison
    # points; archive size and the compaction peak are covered by
    # index_bytes/stream_peak_stores-style metrics elsewhere.
    "heap_qps", "mapped_cold_qps", "mapped_pct_of_heap", "archive_kb",
    "compact_peak_stores",
    # bench_fig17_label_length: stats-only baseline for a future prefix
    # dictionary coder (fraction of long-label arena bits shared with the
    # previous item's label prefix).
    "prefix_dupe_ratio",
}


def load_artifacts(directory):
    """{basename: parsed json} for every BENCH_*.json under directory."""
    artifacts = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path) as f:
                artifacts[os.path.basename(path)] = json.load(f)
        except (OSError, json.JSONDecodeError) as error:
            print(f"bench_trend: cannot parse {path}: {error}")
            sys.exit(2)
    return artifacts


def indexed_rows(document):
    """{(table, row-identity): {metric: value}} for one artifact.

    Row identity is the tuple of (column, value) pairs over the
    configuration columns — ID_COLUMNS plus any string-valued cell, e.g.
    ("mix", "read_heavy"), ("dist", "zipfian"), ("threads", 8).
    """
    rows = {}
    for table in document.get("tables", []):
        name = table.get("table", "?")
        for row in table.get("rows", []):
            identity = tuple(
                sorted((k, v) for k, v in row.items()
                       if k in ID_COLUMNS or isinstance(v, str))
            )
            metrics = {
                k: v
                for k, v in row.items()
                if k in TRACKED and isinstance(v, (int, float))
            }
            if metrics:
                rows[(name, identity)] = metrics
    return rows


def describe(identity):
    return ", ".join(f"{k}={v}" for k, v in identity)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", default=".",
                        help="directory holding this commit's BENCH_*.json")
    parser.add_argument("--baseline", required=True,
                        help="directory holding the previous commit's artifacts")
    parser.add_argument("--threshold", type=float, default=20.0,
                        help="allowed regression in percent (default 20)")
    parser.add_argument("--zero-epsilon", type=float, default=1.0,
                        help="allowed absolute worsening when the baseline "
                             "value is exactly 0, where a percentage is "
                             "undefined (default 1)")
    args = parser.parse_args()

    current = load_artifacts(args.current)
    if not current:
        print(f"bench_trend: no BENCH_*.json under {args.current}")
        sys.exit(2)
    if not os.path.isdir(args.baseline):
        print(f"bench_trend: no baseline at {args.baseline} — first run, "
              "nothing to compare against")
        sys.exit(0)
    baseline = load_artifacts(args.baseline)
    if not baseline:
        print(f"bench_trend: baseline {args.baseline} holds no artifacts — "
              "nothing to compare against")
        sys.exit(0)

    regressions = []
    lost_metrics = []
    compared = 0
    for filename, document in sorted(current.items()):
        if filename not in baseline:
            print(f"bench_trend: {filename}: new artifact, no baseline")
            continue
        old_rows = indexed_rows(baseline[filename])
        for key, metrics in sorted(indexed_rows(document).items()):
            table, identity = key
            old_metrics = old_rows.get(key)
            if old_metrics is None:
                continue  # new row shape (e.g. a new size point)
            for metric in sorted(set(old_metrics) - set(metrics)):
                # The baseline gated on this metric; losing it silently
                # would disable the gate.
                lost_metrics.append((filename, table, identity, metric))
            for metric, value in sorted(metrics.items()):
                old = old_metrics.get(metric)
                if old is None:
                    continue  # new metric phasing in; gated from next run
                higher_is_better = TRACKED[metric]
                if old == 0:
                    # A zero baseline has no percentage scale — a metric
                    # like snapshot_delta_ms legitimately rounds to 0 on a
                    # fast machine. Gate it on absolute worsening instead
                    # of silently ungating it forever, and say so loudly
                    # either way.
                    worse = (old - value) if higher_is_better else (value - old)
                    regressed = worse > args.zero_epsilon
                    compared += 1
                    marker = "REGRESSION" if regressed else "skipped"
                    print(f"  [{marker:>10}] {filename} {table} "
                          f"({describe(identity)}) {metric}: "
                          f"{old:g} -> {value:g} (zero baseline: no % "
                          f"scale, absolute epsilon {args.zero_epsilon:g})")
                    if regressed:
                        regressions.append((filename, table, identity,
                                            metric, old, value,
                                            float("inf")))
                    continue
                change = 100.0 * (value - old) / old
                regressed = (change < -args.threshold if higher_is_better
                             else change > args.threshold)
                compared += 1
                marker = "REGRESSION" if regressed else "ok"
                print(f"  [{marker:>10}] {filename} {table} "
                      f"({describe(identity)}) {metric}: "
                      f"{old:g} -> {value:g} ({change:+.1f}%)")
                if regressed:
                    regressions.append((filename, table, identity, metric,
                                        old, value, change))

    print(f"bench_trend: compared {compared} metric value(s), "
          f"{len(regressions)} regression(s) beyond {args.threshold:g}%")
    if lost_metrics:
        for filename, table, identity, metric in lost_metrics:
            print(f"bench_trend: FAIL {filename} {table} "
                  f"({describe(identity)}): tracked metric '{metric}' is in "
                  "the baseline but missing from the current artifact — a "
                  "bench stopped emitting it (rename? dropped column?)")
        sys.exit(2)
    if regressions:
        for filename, table, identity, metric, old, value, change in regressions:
            scale = (f"{change:+.1f}%, threshold {args.threshold:g}%"
                     if math.isfinite(change) else
                     f"zero baseline, absolute epsilon {args.zero_epsilon:g}")
            print(f"bench_trend: FAIL {filename} {table} "
                  f"({describe(identity)}) {metric} {old:g} -> {value:g} "
                  f"({scale})")
        sys.exit(1)
    sys.exit(0)


if __name__ == "__main__":
    main()
