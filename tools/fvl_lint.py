#!/usr/bin/env python3
"""Repo invariant linter — the rules that neither the compiler nor ctest
enforce on their own. Run from anywhere:

  tools/fvl_lint.py [--root REPO] [--self-test]

Rules:
  nodiscard     Every Status/Result<T>-returning function declared in a
                src/fvl header carries [[nodiscard]] (and the class-level
                [[nodiscard]] on Status/Result themselves stays put). A
                dropped error is a silently-swallowed failure.
  parse-abort   Blob/wire parsing functions (Parse*/Decode*/Read*/
                TryExtractFrame/Deserialize taking a string_view) in the
                untrusted-input files must not contain FVL_CHECK/FVL_DCHECK/
                abort(): malformed bytes from a peer must come back as a
                Status, never take the process down. Invariant checks on
                already-validated data (accessors) are exempt by signature.
  naked-mutex   No std::mutex / std::condition_variable members inside
                src/fvl outside util/thread_annotations.h — library code
                uses the annotated fvl::Mutex/fvl::CondVar wrappers so the
                Clang thread-safety lane sees every lock.
  test-registry Every tests/*_test.cc is registered in FVL_TESTS in
                tests/CMakeLists.txt and vice versa: a test that never runs
                is worse than no test, it radiates false confidence.
  bench-keys    Every column a JSON-emitting bench declares is a decided
                column in tools/bench_trend.py: TRACKED, ID_COLUMNS, or
                KNOWN_UNTRACKED. New metrics must pick a gating status.
  tail-format   The serialized tail layout is a wire contract: a change to
                the bodies of LabelStore::AppendTail/ParseTail must bump
                LabelStore::kTailFormatVersion AND re-pin the golden-blob
                constant in tests/label_store_test.cc. The rule compares
                digests of those regions against tools/tail_format.lock;
                after a deliberate, reviewed change run
                `tools/fvl_lint.py --update-tail-lock` to refresh it.
  trend-zero    Behavioral probe of the perf gate itself: runs
                tools/bench_trend.py against seeded fixtures whose baseline
                metric is exactly 0 and demands that a large worsening still
                fails (absolute epsilon) and that a benign one is logged
                with a loud [ skipped ] marker — the gate must never
                silently ungate zero baselines.

Exit codes: 0 clean, 1 violations (printed one per line), 2 bad invocation.
--self-test seeds one violation per rule in a temp tree and fails loudly if
any rule misses its seed — the linter lints itself.
"""

import argparse
import hashlib
import json
import os
import re
import subprocess
import sys
import tempfile

# --- rule: nodiscard --------------------------------------------------------

DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s+)?(?:static\s+|virtual\s+)?"
    r"(?:\[\[nodiscard\]\]\s+)?(Status|Result<.*>)\s+(\w+)\s*\(")


def check_nodiscard(root):
    violations = []
    status_h = os.path.join(root, "src/fvl/util/status.h")
    if os.path.exists(status_h):
        text = open(status_h).read()
        for cls in ("Status", "Result"):
            if not re.search(r"class\s+\[\[nodiscard\]\]\s+" + cls, text):
                violations.append(
                    f"{status_h}: class {cls} lost its class-level "
                    "[[nodiscard]]")
    for dirpath, _, files in os.walk(os.path.join(root, "src/fvl")):
        for name in sorted(files):
            if not name.endswith(".h"):
                continue
            path = os.path.join(dirpath, name)
            for lineno, line in enumerate(open(path), 1):
                stripped = line.lstrip()
                if stripped.startswith("//"):
                    continue
                match = DECL_RE.match(line)
                if match and "[[nodiscard]]" not in line:
                    violations.append(
                        f"{path}:{lineno}: {match.group(1)}-returning "
                        f"'{match.group(2)}' is missing [[nodiscard]]")
    return violations


# --- rule: parse-abort ------------------------------------------------------

PARSE_FILES = (
    "src/fvl/net/wire.cc",
    "src/fvl/core/label_store.cc",
    "src/fvl/core/index.cc",
)
PARSE_FN_RE = re.compile(
    r"^[\w:<>,\s&*]*?\b((?:\w+::)?(?:Parse|Decode|Read|TryExtract|"
    r"Deserial)\w*)\s*\(([^)]*(?:\n[^)]*)*?)\)\s*(?:const\s*)?{",
    re.MULTILINE)
BANNED_IN_PARSE = re.compile(r"\b(FVL_CHECK|FVL_DCHECK|abort)\s*\(")


def function_body(text, open_brace):
    """Returns text of the balanced {...} starting at open_brace."""
    depth = 0
    for i in range(open_brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[open_brace:i + 1]
    return text[open_brace:]


def check_parse_abort(root):
    violations = []
    for rel in PARSE_FILES:
        path = os.path.join(root, rel)
        if not os.path.exists(path):
            continue
        text = open(path).read()
        for match in PARSE_FN_RE.finditer(text):
            name, params = match.group(1), match.group(2)
            if "string_view" not in params:
                continue  # accessor over validated data, not a blob parser
            body = function_body(text, match.end() - 1)
            banned = BANNED_IN_PARSE.search(body)
            if banned:
                lineno = text[:match.start()].count("\n") + 1
                violations.append(
                    f"{path}:{lineno}: parse-path '{name}' contains "
                    f"{banned.group(1)} — malformed input must surface as a "
                    "Status, not abort the process")
    return violations


# --- rule: naked-mutex ------------------------------------------------------

NAKED_RE = re.compile(r"\bstd::(mutex|condition_variable(?:_any)?)\b")
NAKED_EXEMPT = ("src/fvl/util/thread_annotations.h",)


def check_naked_mutex(root):
    violations = []
    for dirpath, _, files in os.walk(os.path.join(root, "src/fvl")):
        for name in sorted(files):
            if not (name.endswith(".h") or name.endswith(".cc")):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root)
            if rel in NAKED_EXEMPT:
                continue
            for lineno, line in enumerate(open(path), 1):
                if line.lstrip().startswith("//"):
                    continue
                match = NAKED_RE.search(line.split("//")[0])
                if match:
                    violations.append(
                        f"{path}:{lineno}: naked std::{match.group(1)} — use "
                        "the annotated fvl::Mutex/fvl::CondVar wrappers "
                        "(fvl/util/thread_annotations.h)")
    return violations


# --- rule: raw-io -----------------------------------------------------------
#
# All POSIX file/mmap calls live in util/file.h + util/blob_source.{h,cc}
# (and socket calls in net/socket.cc): one place turns errno into Status,
# one place owns descriptors and mappings. A naked call elsewhere is a
# leak/abort waiting to happen and invisible to the error-taxonomy tests.
# C stdio streams (fopen/fprintf for text reports) are not covered — the
# rule is about the fd/mmap layer archive bytes travel through.

RAW_IO_RE = re.compile(
    r"(?:(?<![\w:.>])(?:::\s*)?(open|openat|mmap|munmap|madvise)\s*\()"
    r"|(?:::\s*(read|write|close|fstat|pread|pwrite)\s*\()")
RAW_IO_EXEMPT = (
    "src/fvl/util/file.h",
    "src/fvl/util/blob_source.h",
    "src/fvl/util/blob_source.cc",
    "src/fvl/net/socket.cc",  # the socket RAII wrapper, file.h's net twin
)
RAW_IO_DIRS = ("src/fvl", "bench", "examples", "tests")


def check_raw_io(root):
    violations = []
    for top in RAW_IO_DIRS:
        for dirpath, _, files in os.walk(os.path.join(root, top)):
            for name in sorted(files):
                if not (name.endswith(".h") or name.endswith(".cc")):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root)
                if rel in RAW_IO_EXEMPT:
                    continue
                for lineno, line in enumerate(open(path), 1):
                    if line.lstrip().startswith("//"):
                        continue
                    match = RAW_IO_RE.search(line.split("//")[0])
                    if match:
                        call = match.group(1) or match.group(2)
                        violations.append(
                            f"{path}:{lineno}: naked {call}() — file I/O "
                            "goes through FileHandle/MmapRegion "
                            "(fvl/util/file.h) or BlobSource "
                            "(fvl/util/blob_source.h)")
    return violations


# --- rule: test-registry ----------------------------------------------------

def check_test_registry(root):
    violations = []
    cmake_path = os.path.join(root, "tests/CMakeLists.txt")
    tests_dir = os.path.join(root, "tests")
    if not os.path.exists(cmake_path):
        return [f"{cmake_path}: missing"]
    text = open(cmake_path).read()
    match = re.search(r"set\(FVL_TESTS\s*(.*?)\)", text, re.DOTALL)
    if not match:
        return [f"{cmake_path}: no set(FVL_TESTS ...) block"]
    registered = set(match.group(1).split())
    on_disk = {name[:-3] for name in os.listdir(tests_dir)
               if name.endswith("_test.cc")}
    for name in sorted(on_disk - registered):
        violations.append(
            f"{tests_dir}/{name}.cc exists but is not in FVL_TESTS — it "
            "never runs under ctest")
    for name in sorted(registered - on_disk):
        violations.append(
            f"tests/CMakeLists.txt registers '{name}' but tests/{name}.cc "
            "does not exist")
    return violations


# --- rule: bench-keys -------------------------------------------------------

BENCH_JSON_SOURCES = (
    "bench/bench_service_throughput.cc",
    "bench/bench_merge_query.cc",
    "bench/bench_mmap_serve.cc",
    "bench/ycsb_driver.cc",
    "bench/bench_fig17_label_length.cc",
    "bench/bench_fig21_multiview_space.cc",
)
TABLE_CTOR_RE = re.compile(r"TablePrinter\s+\w+\s*\(\s*\{(.*?)\}\s*\)",
                           re.DOTALL)
STRING_RE = re.compile(r'"([^"]+)"')


def bench_trend_columns(root):
    """TRACKED | ID_COLUMNS | KNOWN_UNTRACKED from tools/bench_trend.py."""
    namespace = {}
    path = os.path.join(root, "tools/bench_trend.py")
    source = open(path).read()
    # Execute only the constant definitions (everything before the first
    # def) so importing never runs main() or requires artifacts.
    exec(source.split("\ndef ", 1)[0], namespace)  # noqa: S102
    return (set(namespace["TRACKED"]) | set(namespace["ID_COLUMNS"])
            | set(namespace["KNOWN_UNTRACKED"]))


def check_bench_keys(root):
    violations = []
    known = bench_trend_columns(root)
    for rel in BENCH_JSON_SOURCES:
        path = os.path.join(root, rel)
        if not os.path.exists(path):
            continue
        text = open(path).read()
        for ctor in TABLE_CTOR_RE.finditer(text):
            for column in STRING_RE.findall(ctor.group(1)):
                if column not in known:
                    lineno = text[:ctor.start()].count("\n") + 1
                    violations.append(
                        f"{path}:{lineno}: bench column '{column}' is "
                        "unknown to tools/bench_trend.py — add it to "
                        "TRACKED, ID_COLUMNS, or KNOWN_UNTRACKED")
    return violations


# --- rule: tail-format ------------------------------------------------------

TAIL_LOCK = "tools/tail_format.lock"
TAIL_HEADER = "src/fvl/core/label_store.h"
TAIL_SOURCE = "src/fvl/core/label_store.cc"
TAIL_GOLDEN_TEST = "tests/label_store_test.cc"
TAIL_FN_RE = re.compile(r"LabelStore::(?:AppendTail|ParseTail)[^{;]*{")
TAIL_VERSION_RE = re.compile(r"kTailFormatVersion\s*=\s*(\d+)")
TAIL_GOLDEN_RE = re.compile(r'kGoldenHex\[\]\s*=\s*((?:\s*"[0-9a-f]*")+)')


def tail_format_state(root):
    """(version, layout_digest, golden_digest) of the tree, or (error, ...).

    layout_digest covers the bodies of LabelStore::AppendTail and
    LabelStore::ParseTail — the two functions that define the serialized
    tail byte layout; golden_digest covers the pinned kGoldenHex blob.
    """
    header_path = os.path.join(root, TAIL_HEADER)
    source_path = os.path.join(root, TAIL_SOURCE)
    test_path = os.path.join(root, TAIL_GOLDEN_TEST)
    for path in (header_path, source_path, test_path):
        if not os.path.exists(path):
            return f"{path}: missing", None, None
    version_match = TAIL_VERSION_RE.search(open(header_path).read())
    if not version_match:
        return f"{header_path}: no kTailFormatVersion constant", None, None
    source = open(source_path).read()
    bodies = [function_body(source, match.end() - 1)
              for match in TAIL_FN_RE.finditer(source)]
    if len(bodies) < 2:
        return (f"{source_path}: cannot locate both LabelStore::AppendTail "
                "and LabelStore::ParseTail"), None, None
    golden_match = TAIL_GOLDEN_RE.search(open(test_path).read())
    if not golden_match:
        return f"{test_path}: no pinned kGoldenHex constant", None, None
    layout = hashlib.sha256("\n".join(bodies).encode()).hexdigest()
    golden = hashlib.sha256(
        re.sub(r"\s", "", golden_match.group(1)).encode()).hexdigest()
    return int(version_match.group(1)), layout, golden


def update_tail_lock(root):
    version, layout, golden = tail_format_state(root)
    if layout is None:
        print(f"fvl_lint: cannot update tail lock: {version}")
        return 1
    with open(os.path.join(root, TAIL_LOCK), "w") as f:
        json.dump({"tail_format_version": version, "layout_digest": layout,
                   "golden_digest": golden}, f, indent=2)
        f.write("\n")
    print(f"fvl_lint: {TAIL_LOCK} updated (version {version})")
    return 0


def check_tail_format(root):
    version, layout, golden = tail_format_state(root)
    if layout is None:
        return [version]  # the error string from tail_format_state
    lock_path = os.path.join(root, TAIL_LOCK)
    if not os.path.exists(lock_path):
        return [f"{lock_path}: missing — run tools/fvl_lint.py "
                "--update-tail-lock to pin the current tail layout"]
    try:
        lock = json.load(open(lock_path))
    except json.JSONDecodeError as error:
        return [f"{lock_path}: unparseable: {error}"]
    violations = []
    locked_version = lock.get("tail_format_version")
    if layout != lock.get("layout_digest") and version == locked_version:
        violations.append(
            f"{TAIL_SOURCE}: AppendTail/ParseTail changed but "
            f"kTailFormatVersion is still {version} — a layout change must "
            "bump the version ({}) and re-pin the golden blob; a "
            "layout-neutral refactor is re-pinned with tools/fvl_lint.py "
            "--update-tail-lock".format(TAIL_HEADER))
    if version != locked_version and golden == lock.get("golden_digest"):
        violations.append(
            f"{TAIL_HEADER}: kTailFormatVersion bumped ({locked_version} -> "
            f"{version}) but the kGoldenHex blob in {TAIL_GOLDEN_TEST} is "
            "unchanged — re-pin the golden-blob test for the new layout, "
            "then run tools/fvl_lint.py --update-tail-lock")
    return violations


# --- rule: trend-zero -------------------------------------------------------

def write_trend_fixture(directory, value):
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, "BENCH_probe.json"), "w") as f:
        json.dump({"tables": [{"table": "svc", "rows": [
            {"mix": "probe", "snapshot_delta_ms": value}]}]}, f)


def run_bench_trend(script, current, baseline):
    proc = subprocess.run(
        [sys.executable, script, "--current", current, "--baseline",
         baseline, "--zero-epsilon", "1"],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def check_trend_zero(root):
    """Runs the perf gate against fixtures whose baseline metric is 0.

    A percentage gate has no scale at a zero baseline; the gate must fall
    back to an absolute epsilon (still failing a real worsening) and must
    log the comparison loudly instead of silently skipping it. This rule
    checks the *behavior*, so a refactor of bench_trend.py that quietly
    reintroduces the silent `continue` fails CI.
    """
    script = os.path.join(root, "tools/bench_trend.py")
    if not os.path.exists(script):
        return [f"{script}: missing"]
    violations = []
    with tempfile.TemporaryDirectory(prefix="fvl_lint_trend_zero_") as tmp:
        baseline = os.path.join(tmp, "baseline")
        write_trend_fixture(baseline, 0)
        regressed = os.path.join(tmp, "regressed")
        write_trend_fixture(regressed, 50)
        benign = os.path.join(tmp, "benign")
        write_trend_fixture(benign, 0.5)
        code, _ = run_bench_trend(script, regressed, baseline)
        if code != 1:
            violations.append(
                f"{script}: snapshot_delta_ms 0 -> 50 with epsilon 1 exited "
                f"{code}, want 1 — zero-baseline metrics are ungated")
        code, out = run_bench_trend(script, benign, baseline)
        if code != 0:
            violations.append(
                f"{script}: snapshot_delta_ms 0 -> 0.5 with epsilon 1 "
                f"exited {code}, want 0")
        elif "skipped" not in out:
            violations.append(
                f"{script}: a zero-baseline comparison within epsilon left "
                "no 'skipped' marker in the log — it is being silently "
                "dropped")
    return violations


RULES = {
    "nodiscard": check_nodiscard,
    "parse-abort": check_parse_abort,
    "naked-mutex": check_naked_mutex,
    "raw-io": check_raw_io,
    "test-registry": check_test_registry,
    "bench-keys": check_bench_keys,
    "tail-format": check_tail_format,
    "trend-zero": check_trend_zero,
}


# --- self-test --------------------------------------------------------------

def write(root, rel, content):
    path = os.path.join(root, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as f:
        f.write(content)


def seed_violation(rule, root):
    """Builds a minimal tree under root violating exactly one rule."""
    if rule == "nodiscard":
        write(root, "src/fvl/util/status.h",
              "class [[nodiscard]] Status {};\n"
              "template <typename T> class [[nodiscard]] Result {};\n")
        write(root, "src/fvl/core/thing.h",
              "class Thing {\n public:\n"
              "  Status Frob(int x);\n"  # missing [[nodiscard]]
              "};\n")
    elif rule == "parse-abort":
        write(root, "src/fvl/net/wire.cc",
              "Result<Request> DecodeRequest(std::string_view payload) {\n"
              "  FVL_CHECK(!payload.empty());\n"
              "  return {};\n"
              "}\n")
    elif rule == "naked-mutex":
        write(root, "src/fvl/util/thing.h",
              "class Thing {\n private:\n"
              "  std::mutex mu_;\n"
              "};\n")
    elif rule == "raw-io":
        write(root, "src/fvl/core/sneaky.cc",
              "void Load() {\n"
              "  int fd = ::open(\"/tmp/x\", O_RDONLY);\n"
              "}\n")
    elif rule == "test-registry":
        write(root, "tests/CMakeLists.txt",
              "set(FVL_TESTS\n  registered_test\n)\n")
        write(root, "tests/registered_test.cc", "// fine\n")
        write(root, "tests/orphan_test.cc", "// never runs\n")
    elif rule == "bench-keys":
        write(root, "tools/bench_trend.py",
              "TRACKED = {'merged_qps': True}\n"
              "ID_COLUMNS = {'runs'}\n"
              "KNOWN_UNTRACKED = {'merge_ms'}\n")
        write(root, "bench/bench_merge_query.cc",
              'TablePrinter table({"runs", "merge_ms", "mystery_metric"});\n')
    elif rule == "tail-format":
        # A layout edit (different AppendTail body than the lock pinned)
        # without a version bump: the wire break the rule exists to catch.
        write(root, "src/fvl/core/label_store.h",
              "static constexpr int kTailFormatVersion = 2;\n")
        write(root, "src/fvl/core/label_store.cc",
              "void LabelStore::AppendTail(std::string* blob) const {\n"
              "  // sneaky new layout, same version\n"
              "}\n"
              "Result<LabelStore> LabelStore::ParseTail(\n"
              "    std::string_view blob) {\n"
              "  return {};\n"
              "}\n")
        write(root, "tests/label_store_test.cc",
              'constexpr char kGoldenHex[] = "aabbcc";\n')
        write(root, "tools/tail_format.lock",
              json.dumps({"tail_format_version": 2,
                          "layout_digest": "0" * 64,
                          "golden_digest": "1" * 64}))
    elif rule == "trend-zero":
        # The pre-fix bench_trend.py: zero-baseline metrics silently
        # `continue`d, so every comparison against a 0 baseline exited 0
        # with no log line. The rule must catch that behavior.
        write(root, "tools/bench_trend.py",
              "#!/usr/bin/env python3\n"
              "import sys\n"
              "sys.exit(0)  # old behavior: zero baselines never gate\n")


def self_test():
    failures = []
    for rule, checker in RULES.items():
        with tempfile.TemporaryDirectory(prefix=f"fvl_lint_{rule}_") as tmp:
            seed_violation(rule, tmp)
            found = checker(tmp)
            if found:
                print(f"self-test [{rule}]: caught seeded violation: "
                      f"{found[0]}")
            else:
                failures.append(rule)
                print(f"self-test [{rule}]: MISSED its seeded violation")
    if failures:
        print(f"fvl_lint self-test: {len(failures)} rule(s) blind: "
              f"{', '.join(failures)}")
        return 1
    print(f"fvl_lint self-test: all {len(RULES)} rules catch their seeds")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule catches a seeded violation")
    parser.add_argument("--update-tail-lock", action="store_true",
                        help="re-pin tools/tail_format.lock to the current "
                             "AppendTail/ParseTail layout and golden blob "
                             "(after a deliberate, reviewed format change)")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src/fvl")):
        print(f"fvl_lint: {root} does not look like the repo root")
        sys.exit(2)

    if args.update_tail_lock:
        sys.exit(update_tail_lock(root))

    total = 0
    for rule, checker in RULES.items():
        violations = checker(root)
        for violation in violations:
            print(f"[{rule}] {violation}")
        total += len(violations)
    if total:
        print(f"fvl_lint: {total} violation(s)")
        sys.exit(1)
    print(f"fvl_lint: clean ({len(RULES)} rules)")
    sys.exit(0)


if __name__ == "__main__":
    main()
