# Locates GoogleTest without requiring network access.
#
# Resolution order:
#   1. An installed CMake package (GTestConfig.cmake or FindGTest).
#   2. The Debian/Ubuntu source package at /usr/src/googletest
#      (apt install libgtest-dev), built as part of this project.
#   3. FetchContent download (needs network; last resort).
#
# Whatever succeeds provides the GTest::gtest and GTest::gtest_main targets.

if(TARGET GTest::gtest_main)
  return()
endif()

find_package(GTest QUIET)
if(TARGET GTest::gtest_main)
  message(STATUS "FVL: using installed GoogleTest package")
  return()
endif()

if(EXISTS /usr/src/googletest/CMakeLists.txt)
  message(STATUS "FVL: building GoogleTest from /usr/src/googletest")
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  add_subdirectory(/usr/src/googletest "${CMAKE_BINARY_DIR}/_deps/googletest"
                   EXCLUDE_FROM_ALL)
  if(NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest ALIAS gtest)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
  return()
endif()

message(STATUS "FVL: GoogleTest not found locally; fetching from GitHub")
include(FetchContent)
FetchContent_Declare(
  googletest
  URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
)
set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
FetchContent_MakeAvailable(googletest)
