// Random run generation, mirroring the paper's methodology (§6.1: "we
// simulated runs by applying a random sequence of productions, varying their
// sizes from 1K to 32K").
//
// The generator expands random frontier instances; while the run is below
// the target size it picks productions uniformly (which keeps recursions
// unfolding), and once the target is reached it switches every instance to
// its cheapest terminating production, so generation always halts close to
// the requested number of data items.

#ifndef FVL_RUN_RUN_GENERATOR_H_
#define FVL_RUN_RUN_GENERATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "fvl/run/run.h"

namespace fvl {

struct RunGeneratorOptions {
  int target_items = 1000;
  uint64_t seed = 1;
  // Retained for API stability; the generator now always prefers
  // recursion-alive productions while below target (see run_generator.cc for
  // why weighted picks cannot reach large sizes), so this field is unused.
  double recursion_weight = 64.0;
};

// Per-module cost of the cheapest all-atomic completion, measured in data
// items (min_k [#edges(p_k) + sum over members]); infinity for unproductive
// modules. Exposed for tests.
std::vector<int64_t> MinCompletionItems(const Grammar& grammar);

Run GenerateRandomRun(const Grammar& grammar, const RunGeneratorOptions& options);

// Callback-driven variant so labeling schemes can observe every step online
// (the derivation-based dynamic labeling problem of Def. 10). The callback
// is invoked once after Run construction (step = nullptr) and once after
// every Apply.
using StepCallback = std::function<void(const Run&, const DerivationStep*)>;
Run GenerateRandomRun(const Grammar& grammar, const RunGeneratorOptions& options,
                      const StepCallback& callback);

}  // namespace fvl

#endif  // FVL_RUN_RUN_GENERATOR_H_
