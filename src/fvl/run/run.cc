#include "fvl/run/run.h"

#include "fvl/util/check.h"

namespace fvl {

Run::Run(const Grammar* grammar) : grammar_(grammar) {
  const Module& start = grammar_->module(grammar_->start());

  ModuleInstance root;
  root.id = 0;
  root.type = grammar_->start();
  instances_.push_back(root);
  expanded_.push_back(false);
  frontier_.push_back(0);
  frontier_position_.push_back(0);

  input_items_.emplace_back();
  output_items_.emplace_back();
  for (int port = 0; port < start.num_inputs; ++port) {
    DataItem item;
    item.id = num_items();
    item.consumer_instance = 0;
    item.consumer_port = port;
    input_items_[0].push_back(item.id);
    items_.push_back(item);
  }
  for (int port = 0; port < start.num_outputs; ++port) {
    DataItem item;
    item.id = num_items();
    item.producer_instance = 0;
    item.producer_port = port;
    output_items_[0].push_back(item.id);
    items_.push_back(item);
  }
}

const DerivationStep& Run::Apply(int instance, ProductionId production) {
  FVL_CHECK(instance >= 0 && instance < num_instances());
  FVL_CHECK(!expanded_[instance]);
  const Production& p = grammar_->production(production);
  FVL_CHECK(p.lhs == instances_[instance].type);
  const SimpleWorkflow& w = p.rhs;

  DerivationStep step;
  step.index = num_steps();
  step.instance = instance;
  step.production = production;
  step.first_child = num_instances();
  step.first_item = num_items();
  step.num_items = static_cast<int>(w.edges.size());

  // Children.
  for (int pos = 0; pos < w.num_members(); ++pos) {
    ModuleInstance child;
    child.id = num_instances();
    child.type = w.members[pos];
    child.creation_step = step.index;
    child.position = pos;
    instances_.push_back(child);
    expanded_.push_back(false);
    frontier_position_.push_back(-1);
    const Module& module = grammar_->module(child.type);
    input_items_.emplace_back(module.num_inputs, -1);
    output_items_.emplace_back(module.num_outputs, -1);
    if (grammar_->is_composite(child.type)) {
      frontier_position_[child.id] = static_cast<int>(frontier_.size());
      frontier_.push_back(child.id);
    }
  }

  // New items, one per rhs data edge.
  for (const DataEdge& e : w.edges) {
    DataItem item;
    item.id = num_items();
    item.producer_instance = step.first_child + e.src.member;
    item.producer_port = e.src.port;
    item.consumer_instance = step.first_child + e.dst.member;
    item.consumer_port = e.dst.port;
    items_.push_back(item);
    output_items_[item.producer_instance][item.producer_port] = item.id;
    input_items_[item.consumer_instance][item.consumer_port] = item.id;
  }

  // Rewire the expanded instance's adjacent items to the children (creation
  // records of those items are untouched).
  for (int x = 0; x < static_cast<int>(w.initial_inputs.size()); ++x) {
    const PortRef& target = w.initial_inputs[x];
    int item_id = input_items_[instance][x];
    input_items_[step.first_child + target.member][target.port] = item_id;
  }
  for (int y = 0; y < static_cast<int>(w.final_outputs.size()); ++y) {
    const PortRef& source = w.final_outputs[y];
    int item_id = output_items_[instance][y];
    output_items_[step.first_child + source.member][source.port] = item_id;
  }

  // Frontier maintenance (swap-remove).
  expanded_[instance] = true;
  int pos = frontier_position_[instance];
  FVL_CHECK(pos >= 0);
  int last = frontier_.back();
  frontier_[pos] = last;
  frontier_position_[last] = pos;
  frontier_.pop_back();
  frontier_position_[instance] = -1;

  steps_.push_back(step);
  return steps_.back();
}

}  // namespace fvl
