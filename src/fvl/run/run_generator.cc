#include "fvl/run/run_generator.h"

#include <limits>

#include "fvl/util/check.h"
#include "fvl/util/random.h"

namespace fvl {

namespace {
constexpr int64_t kInfinity = std::numeric_limits<int64_t>::max() / 4;
}  // namespace

std::vector<int64_t> MinCompletionItems(const Grammar& grammar) {
  std::vector<int64_t> cost(grammar.num_modules(), kInfinity);
  for (ModuleId m = 0; m < grammar.num_modules(); ++m) {
    if (!grammar.is_composite(m)) cost[m] = 0;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (ProductionId k = 0; k < grammar.num_productions(); ++k) {
      const Production& p = grammar.production(k);
      int64_t total = static_cast<int64_t>(p.rhs.edges.size());
      for (ModuleId member : p.rhs.members) {
        total += cost[member];
        if (total >= kInfinity) {
          total = kInfinity;
          break;
        }
      }
      if (total < cost[p.lhs]) {
        cost[p.lhs] = total;
        changed = true;
      }
    }
  }
  return cost;
}

Run GenerateRandomRun(const Grammar& grammar,
                      const RunGeneratorOptions& options) {
  return GenerateRandomRun(grammar, options, StepCallback());
}

Run GenerateRandomRun(const Grammar& grammar,
                      const RunGeneratorOptions& options,
                      const StepCallback& callback) {
  std::vector<int64_t> min_cost = MinCompletionItems(grammar);
  FVL_CHECK(min_cost[grammar.start()] < kInfinity &&
            "grammar has an empty language");
  // Cheapest production per module.
  std::vector<ProductionId> cheapest(grammar.num_modules(), -1);
  for (ModuleId m : grammar.CompositeModules()) {
    int64_t best = kInfinity + 1;
    for (ProductionId k : grammar.ProductionsOf(m)) {
      const Production& p = grammar.production(k);
      int64_t total = static_cast<int64_t>(p.rhs.edges.size());
      for (ModuleId member : p.rhs.members) total += min_cost[member];
      if (total < best) {
        best = total;
        cheapest[m] = k;
      }
    }
  }
  // A production is "recursive" for weighting purposes if some member can
  // derive the lhs again (keeps the recursion alive).
  std::vector<bool> productive_recursion(grammar.num_productions(), false);
  {
    // Reachability over the module derivation relation.
    std::vector<std::vector<bool>> reaches(
        grammar.num_modules(), std::vector<bool>(grammar.num_modules(), false));
    for (ModuleId m = 0; m < grammar.num_modules(); ++m) reaches[m][m] = true;
    bool changed = true;
    while (changed) {
      changed = false;
      for (ProductionId k = 0; k < grammar.num_productions(); ++k) {
        const Production& p = grammar.production(k);
        for (ModuleId member : p.rhs.members) {
          for (ModuleId target = 0; target < grammar.num_modules(); ++target) {
            if (reaches[member][target] && !reaches[p.lhs][target]) {
              reaches[p.lhs][target] = true;
              changed = true;
            }
          }
        }
      }
    }
    for (ProductionId k = 0; k < grammar.num_productions(); ++k) {
      const Production& p = grammar.production(k);
      for (ModuleId member : p.rhs.members) {
        if (reaches[member][p.lhs]) productive_recursion[k] = true;
      }
    }
  }

  Rng rng(options.seed);
  Run run(&grammar);
  if (callback) callback(run, nullptr);

  while (!run.IsComplete()) {
    // Pick a random frontier instance.
    const std::vector<int>& frontier = run.Frontier();
    int inst = frontier[rng.NextBounded(frontier.size())];
    ModuleId type = run.instance(inst).type;
    const std::vector<ProductionId>& candidates = grammar.ProductionsOf(type);
    FVL_CHECK(!candidates.empty());

    ProductionId choice;
    if (run.num_items() >= options.target_items) {
      choice = cheapest[type];
    } else {
      // Below target: keep recursions alive. A recursion lineage that takes
      // its base production never respawns, so any merely-weighted pick
      // makes lineage lifetimes geometric and caps attainable run sizes;
      // recursive candidates therefore win outright (uniformly among
      // themselves) while the deficit lasts. Randomness remains in the
      // frontier choice and among competing recursive productions.
      std::vector<ProductionId> recursive;
      for (ProductionId k : candidates) {
        if (productive_recursion[k]) recursive.push_back(k);
      }
      if (!recursive.empty()) {
        choice = recursive[rng.NextBounded(recursive.size())];
      } else {
        choice = candidates[rng.NextBounded(candidates.size())];
      }
    }
    const DerivationStep& step = run.Apply(inst, choice);
    if (callback) callback(run, &step);
  }
  return run;
}

}  // namespace fvl
