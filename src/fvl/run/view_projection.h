// Projection of runs onto views (§2.2: R_U = (R_Δ')^λ').
//
// Replays a run's derivation, keeping only steps whose expanded instance is
// visible and whose production is active in the view. Produces visibility
// flags for instances/items/steps, the view-level ("deepest visible")
// endpoints of every visible item, and the view leaves — the module
// instances that appear atomic in R_U. Supports regular views and §5
// grouped (user-defined) views, where the members of a group collapse into
// one synthetic leaf.

#ifndef FVL_RUN_VIEW_PROJECTION_H_
#define FVL_RUN_VIEW_PROJECTION_H_

#include <vector>

#include "fvl/run/run.h"
#include "fvl/workflow/user_defined_view.h"
#include "fvl/workflow/view.h"

namespace fvl {

struct RunProjection {
  struct Endpoint {
    int instance = kNoInstance;
    int port = -1;
  };
  struct GroupLeaf {
    int step = -1;         // derivation step whose production hosts the group
    int group_index = -1;  // index into GroupedView::groups()
  };

  std::vector<bool> instance_visible;  // proper view modules (group members excluded)
  std::vector<bool> step_visible;
  std::vector<bool> item_visible;
  std::vector<Endpoint> producer;  // per item; view-level endpoints
  std::vector<Endpoint> consumer;
  // Visible instances that are atomic in the view (not expanded in R_U).
  std::vector<int> leaves;
  // Grouped views only.
  std::vector<GroupLeaf> group_leaves;
  std::vector<int> group_leaf_of_instance;  // per instance, -1 if none
  int num_visible_items = 0;
};

RunProjection ProjectRun(const Run& run, const CompiledView& view);
RunProjection ProjectRun(const Run& run, const GroupedView& view);

}  // namespace fvl

#endif  // FVL_RUN_VIEW_PROJECTION_H_
