#include "fvl/run/provenance_oracle.h"

#include <algorithm>
#include <deque>

#include "fvl/util/check.h"

namespace fvl {

ProvenanceOracle::ProvenanceOracle(const Run& run, const CompiledView& view)
    : run_(&run), projection_(ProjectRun(run, view)) {
  Build(run, view.full(), nullptr);
}

ProvenanceOracle::ProvenanceOracle(const Run& run, const GroupedView& view)
    : run_(&run), projection_(ProjectRun(run, view)), grouped_(&view) {
  Build(run, view.base().full(), &view);
}

void ProvenanceOracle::Build(const Run& run, const DependencyAssignment& full,
                             const GroupedView* grouped) {
  const Grammar& g = run.grammar();
  input_base_.assign(run.num_instances(), -1);
  output_base_.assign(run.num_instances(), -1);

  int next = 0;
  for (int inst : projection_.leaves) {
    const Module& module = g.module(run.instance(inst).type);
    input_base_[inst] = next;
    next += module.num_inputs;
    output_base_[inst] = next;
    next += module.num_outputs;
  }
  group_input_base_.assign(projection_.group_leaves.size(), -1);
  group_output_base_.assign(projection_.group_leaves.size(), -1);
  for (size_t leaf = 0; leaf < projection_.group_leaves.size(); ++leaf) {
    FVL_CHECK(grouped != nullptr);
    const GroupBoundary& boundary =
        grouped->boundary(projection_.group_leaves[leaf].group_index);
    group_input_base_[leaf] = next;
    next += static_cast<int>(boundary.inputs.size());
    group_output_base_[leaf] = next;
    next += static_cast<int>(boundary.outputs.size());
  }
  graph_ = Digraph(next);

  // Internal dependency edges of leaves.
  for (int inst : projection_.leaves) {
    ModuleId type = run.instance(inst).type;
    FVL_CHECK(full.IsDefined(type));
    const BoolMatrix& deps = full.Get(type);
    for (int i = 0; i < deps.rows(); ++i) {
      for (int o = 0; o < deps.cols(); ++o) {
        if (deps.Get(i, o)) {
          graph_.AddEdge(input_base_[inst] + i, output_base_[inst] + o);
        }
      }
    }
  }
  for (size_t leaf = 0; leaf < projection_.group_leaves.size(); ++leaf) {
    const ModuleGroup& group =
        grouped->groups()[projection_.group_leaves[leaf].group_index];
    const BoolMatrix& deps = group.perceived_deps;
    for (int i = 0; i < deps.rows(); ++i) {
      for (int o = 0; o < deps.cols(); ++o) {
        if (deps.Get(i, o)) {
          graph_.AddEdge(group_input_base_[leaf] + i,
                         group_output_base_[leaf] + o);
        }
      }
    }
  }

  // Item edges.
  auto input_node = [&](const RunProjection::Endpoint& e) -> int {
    int group_leaf = projection_.group_leaf_of_instance[e.instance];
    if (group_leaf != -1) {
      const GroupBoundary& boundary = grouped_->boundary(
          projection_.group_leaves[group_leaf].group_index);
      PortRef ref{run.instance(e.instance).position, e.port};
      auto it = std::find(boundary.inputs.begin(), boundary.inputs.end(), ref);
      FVL_CHECK(it != boundary.inputs.end());
      return group_input_base_[group_leaf] +
             static_cast<int>(it - boundary.inputs.begin());
    }
    FVL_CHECK(input_base_[e.instance] >= 0);
    return input_base_[e.instance] + e.port;
  };
  auto output_node = [&](const RunProjection::Endpoint& e) -> int {
    int group_leaf = projection_.group_leaf_of_instance[e.instance];
    if (group_leaf != -1) {
      const GroupBoundary& boundary = grouped_->boundary(
          projection_.group_leaves[group_leaf].group_index);
      PortRef ref{run.instance(e.instance).position, e.port};
      auto it = std::find(boundary.outputs.begin(), boundary.outputs.end(), ref);
      FVL_CHECK(it != boundary.outputs.end());
      return group_output_base_[group_leaf] +
             static_cast<int>(it - boundary.outputs.begin());
    }
    FVL_CHECK(output_base_[e.instance] >= 0);
    return output_base_[e.instance] + e.port;
  };

  for (int item = 0; item < run.num_items(); ++item) {
    if (!projection_.item_visible[item]) continue;
    const RunProjection::Endpoint& producer = projection_.producer[item];
    const RunProjection::Endpoint& consumer = projection_.consumer[item];
    if (producer.instance != kNoInstance && consumer.instance != kNoInstance) {
      graph_.AddEdge(output_node(producer), input_node(consumer));
    }
  }
  reach_rows_.assign(graph_.num_nodes(), std::nullopt);
}

const std::vector<bool>& ProvenanceOracle::ReachRow(int node) const {
  std::optional<std::vector<bool>>& row = reach_rows_[node];
  if (!row.has_value()) {
    std::vector<bool> visited(graph_.num_nodes(), false);
    std::deque<int> queue = {node};
    visited[node] = true;
    while (!queue.empty()) {
      int current = queue.front();
      queue.pop_front();
      for (int edge_id : graph_.OutEdges(current)) {
        int next = graph_.edge(edge_id).to;
        if (!visited[next]) {
          visited[next] = true;
          queue.push_back(next);
        }
      }
    }
    row = std::move(visited);
  }
  return *row;
}

bool ProvenanceOracle::Depends(int item1, int item2) const {
  FVL_CHECK(ItemVisible(item1) && ItemVisible(item2));
  const RunProjection::Endpoint& consumer1 = projection_.consumer[item1];
  const RunProjection::Endpoint& producer2 = projection_.producer[item2];
  // Algorithm 2, Case I: a final output depends on nothing downstream and an
  // initial input depends on nothing.
  if (consumer1.instance == kNoInstance) return false;
  if (producer2.instance == kNoInstance) return false;

  const RunProjection::Endpoint& producer1 = projection_.producer[item1];
  const RunProjection::Endpoint& consumer2 = projection_.consumer[item2];

  // Rebuild the node mapping lambdas (cheap; mirrors Build()).
  auto input_node = [&](const RunProjection::Endpoint& e) -> int {
    int group_leaf = projection_.group_leaf_of_instance[e.instance];
    if (group_leaf != -1) {
      const GroupBoundary& boundary = grouped_->boundary(
          projection_.group_leaves[group_leaf].group_index);
      PortRef ref{run_->instance(e.instance).position, e.port};
      auto it = std::find(boundary.inputs.begin(), boundary.inputs.end(), ref);
      FVL_CHECK(it != boundary.inputs.end());
      return group_input_base_[group_leaf] +
             static_cast<int>(it - boundary.inputs.begin());
    }
    return input_base_[e.instance] + e.port;
  };
  auto output_node = [&](const RunProjection::Endpoint& e) -> int {
    int group_leaf = projection_.group_leaf_of_instance[e.instance];
    if (group_leaf != -1) {
      const GroupBoundary& boundary = grouped_->boundary(
          projection_.group_leaves[group_leaf].group_index);
      PortRef ref{run_->instance(e.instance).position, e.port};
      auto it = std::find(boundary.outputs.begin(), boundary.outputs.end(), ref);
      FVL_CHECK(it != boundary.outputs.end());
      return group_output_base_[group_leaf] +
             static_cast<int>(it - boundary.outputs.begin());
    }
    return output_base_[e.instance] + e.port;
  };

  int source = producer1.instance != kNoInstance ? output_node(producer1)
                                                 : input_node(consumer1);
  int target = consumer2.instance != kNoInstance ? input_node(consumer2)
                                                 : output_node(producer2);
  return ReachRow(source)[target];
}

}  // namespace fvl
