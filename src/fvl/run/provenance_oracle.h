// Ground-truth reachability over views of runs.
//
// Materializes the port-level provenance graph of R_U: one node per port of
// every view leaf (plus group leaves for §5 views), dependency edges inside
// each leaf per the view's full assignment λ'^* (or λ'(F) for groups), and
// one edge per visible data item from its producer port to its consumer
// port. Queries then follow the decoding predicate's convention:
//
//   Depends(d1, d2)  =  d1 has a consumer  AND  d2 has a producer  AND
//                       reach(source(d1), target(d2))
//   source(d1) = producer output port if any, else consumer input port
//   target(d2) = consumer input port if any, else producer output port
//
// This is the naive comparator the paper's labeling schemes are tested
// against; it is deliberately simple and independent of the labeling code.

#ifndef FVL_RUN_PROVENANCE_ORACLE_H_
#define FVL_RUN_PROVENANCE_ORACLE_H_

#include <optional>
#include <vector>

#include "fvl/graph/digraph.h"
#include "fvl/run/view_projection.h"

namespace fvl {

class ProvenanceOracle {
 public:
  ProvenanceOracle(const Run& run, const CompiledView& view);
  ProvenanceOracle(const Run& run, const GroupedView& view);

  bool ItemVisible(int item) const { return projection_.item_visible[item]; }
  const RunProjection& projection() const { return projection_; }

  // Ground truth for the ternary predicate π; both items must be visible.
  bool Depends(int item1, int item2) const;

  int num_nodes() const { return graph_.num_nodes(); }

 private:
  void Build(const Run& run, const DependencyAssignment& full,
             const GroupedView* grouped);
  // Lazily computed reachable-set per source node.
  const std::vector<bool>& ReachRow(int node) const;

  const Run* run_;
  RunProjection projection_;
  Digraph graph_;
  // Node numbering per leaf instance / group leaf.
  std::vector<int> input_base_;   // per instance, -1 if not a leaf
  std::vector<int> output_base_;  // per instance
  std::vector<int> group_input_base_;   // per group leaf
  std::vector<int> group_output_base_;  // per group leaf
  const GroupedView* grouped_ = nullptr;
  mutable std::vector<std::optional<std::vector<bool>>> reach_rows_;
};

}  // namespace fvl

#endif  // FVL_RUN_PROVENANCE_ORACLE_H_
