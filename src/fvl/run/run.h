// Workflow runs built by online derivations (Def. 10).
//
// A Run starts as the start module with its input/output data items and
// grows by applying productions to unexpanded composite module instances.
// Every application creates one module instance per rhs member and one data
// item per rhs data edge; the items adjacent to the expanded instance are
// rewired to the new children per the production's port bijection f.
//
// Data items record their *creation-time* endpoints, which never change —
// this is the immutability that dynamic labels rely on (labels are assigned
// when an item is created and must not be modified later). The current
// (deepest) endpoints needed by ground-truth oracles are recovered by
// replaying the derivation (see provenance_oracle.*).

#ifndef FVL_RUN_RUN_H_
#define FVL_RUN_RUN_H_

#include <vector>

#include "fvl/workflow/grammar.h"

namespace fvl {

constexpr int kNoInstance = -1;

struct ModuleInstance {
  int id = -1;
  ModuleId type = kInvalidModule;
  // Derivation step that created this instance (-1 for the start instance)
  // and its member position within that step's production.
  int creation_step = -1;
  int position = -1;
};

struct DataItem {
  int id = -1;
  // Creation-time producer (kNoInstance if this is an initial input of the
  // start module) and consumer (kNoInstance if a final output).
  int producer_instance = kNoInstance;
  int producer_port = -1;
  int consumer_instance = kNoInstance;
  int consumer_port = -1;

  bool IsInitialInput() const { return producer_instance == kNoInstance; }
  bool IsFinalOutput() const { return consumer_instance == kNoInstance; }
};

struct DerivationStep {
  int index = -1;
  int instance = -1;             // the expanded composite instance
  ProductionId production = -1;
  int first_child = -1;          // children are [first_child, first_child+members)
  int first_item = -1;           // new items are [first_item, first_item+num_items)
  int num_items = 0;
};

class Run {
 public:
  explicit Run(const Grammar* grammar);

  const Grammar& grammar() const { return *grammar_; }

  int start_instance() const { return 0; }
  int num_instances() const { return static_cast<int>(instances_.size()); }
  const ModuleInstance& instance(int id) const { return instances_[id]; }

  int num_items() const { return static_cast<int>(items_.size()); }
  const DataItem& item(int id) const { return items_[id]; }

  int num_steps() const { return static_cast<int>(steps_.size()); }
  const DerivationStep& step(int index) const { return steps_[index]; }

  // Item ids wired to the instance's ports at its creation time, in port
  // order. (For the start instance: the run's initial inputs / final
  // outputs.)
  const std::vector<int>& InputItems(int instance) const {
    return input_items_[instance];
  }
  const std::vector<int>& OutputItems(int instance) const {
    return output_items_[instance];
  }

  bool IsExpanded(int instance) const { return expanded_[instance]; }
  // Unexpanded composite instances (order unspecified).
  const std::vector<int>& Frontier() const { return frontier_; }
  // True iff the run contains only atomic module instances (R ∈ L(G)).
  bool IsComplete() const { return frontier_.empty(); }

  // Applies `production` to `instance`; the instance must be unexpanded and
  // the production's lhs must match its type. Returns the recorded step.
  const DerivationStep& Apply(int instance, ProductionId production);

 private:
  const Grammar* grammar_;
  std::vector<ModuleInstance> instances_;
  std::vector<DataItem> items_;
  std::vector<DerivationStep> steps_;
  std::vector<std::vector<int>> input_items_;
  std::vector<std::vector<int>> output_items_;
  std::vector<bool> expanded_;
  std::vector<int> frontier_;
  std::vector<int> frontier_position_;  // per instance, -1 if not on frontier
};

}  // namespace fvl

#endif  // FVL_RUN_RUN_H_
