#include "fvl/run/view_projection.h"

#include "fvl/util/check.h"

namespace fvl {

namespace {

enum class InstanceState { kHidden, kVisible, kGroupMember };

RunProjection Project(const Run& run, const std::vector<bool>& expandable,
                      const GroupedView* grouped) {
  const Grammar& g = run.grammar();
  RunProjection result;
  result.instance_visible.assign(run.num_instances(), false);
  result.step_visible.assign(run.num_steps(), false);
  result.item_visible.assign(run.num_items(), false);
  result.producer.resize(run.num_items());
  result.consumer.resize(run.num_items());
  result.group_leaf_of_instance.assign(run.num_instances(), -1);

  std::vector<InstanceState> state(run.num_instances(),
                                   InstanceState::kHidden);
  state[run.start_instance()] = InstanceState::kVisible;

  // The start module's boundary items.
  for (int item_id : run.InputItems(run.start_instance())) {
    result.item_visible[item_id] = true;
    result.consumer[item_id] = {run.start_instance(),
                                run.item(item_id).consumer_port};
  }
  for (int item_id : run.OutputItems(run.start_instance())) {
    result.item_visible[item_id] = true;
    result.producer[item_id] = {run.start_instance(),
                                run.item(item_id).producer_port};
  }

  for (int s = 0; s < run.num_steps(); ++s) {
    const DerivationStep& step = run.step(s);
    bool active = expandable[g.production(step.production).lhs];
    if (state[step.instance] != InstanceState::kVisible || !active) {
      continue;  // children/items stay hidden
    }
    result.step_visible[s] = true;
    const SimpleWorkflow& w = g.production(step.production).rhs;

    // Group handling: members of the production's group collapse into one
    // synthetic leaf.
    int group_leaf_id = -1;
    const GroupBoundary* boundary = nullptr;
    int gi = grouped != nullptr
                 ? grouped->GroupOfProduction(step.production)
                 : -1;
    if (gi != -1) {
      group_leaf_id = static_cast<int>(result.group_leaves.size());
      result.group_leaves.push_back({s, gi});
      boundary = &grouped->boundary(gi);
    }

    for (int pos = 0; pos < w.num_members(); ++pos) {
      int child = step.first_child + pos;
      if (boundary != nullptr && boundary->in_group[pos]) {
        state[child] = InstanceState::kGroupMember;
        result.group_leaf_of_instance[child] = group_leaf_id;
      } else {
        state[child] = InstanceState::kVisible;
        result.instance_visible[child] = true;
      }
    }

    // New items: visible unless internal to the group.
    std::vector<bool> internal(w.edges.size(), false);
    if (boundary != nullptr) {
      for (int edge_index : boundary->internal_edges) {
        internal[edge_index] = true;
      }
    }
    for (int e = 0; e < step.num_items; ++e) {
      int item_id = step.first_item + e;
      if (internal[e]) continue;
      const DataItem& item = run.item(item_id);
      result.item_visible[item_id] = true;
      result.producer[item_id] = {item.producer_instance, item.producer_port};
      result.consumer[item_id] = {item.consumer_instance, item.consumer_port};
    }

    // Rewire the expanded instance's adjacent items to the children.
    for (int x = 0; x < static_cast<int>(w.initial_inputs.size()); ++x) {
      const PortRef& target = w.initial_inputs[x];
      int item_id = run.InputItems(step.instance)[x];
      result.consumer[item_id] = {step.first_child + target.member,
                                  target.port};
    }
    for (int y = 0; y < static_cast<int>(w.final_outputs.size()); ++y) {
      const PortRef& source = w.final_outputs[y];
      int item_id = run.OutputItems(step.instance)[y];
      result.producer[item_id] = {step.first_child + source.member,
                                  source.port};
    }
  }

  // Leaves: visible instances that are atomic in the view or not (yet)
  // expanded. A visible instance of expandable type that was expanded in the
  // run is always expanded in the view too (its expansion step was visible
  // and active by construction).
  result.instance_visible[run.start_instance()] = true;
  for (int inst = 0; inst < run.num_instances(); ++inst) {
    if (state[inst] != InstanceState::kVisible) continue;
    ModuleId type = run.instance(inst).type;
    bool expanded_in_view = expandable[type] && run.IsExpanded(inst);
    if (!expanded_in_view) result.leaves.push_back(inst);
  }
  for (bool visible : result.item_visible) {
    if (visible) ++result.num_visible_items;
  }
  return result;
}

}  // namespace

RunProjection ProjectRun(const Run& run, const CompiledView& view) {
  return Project(run, view.view().expandable, nullptr);
}

RunProjection ProjectRun(const Run& run, const GroupedView& view) {
  return Project(run, view.base().view().expandable, &view);
}

}  // namespace fvl
