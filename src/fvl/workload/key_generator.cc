#include "fvl/workload/key_generator.h"

#include <cmath>

#include "fvl/util/check.h"

namespace fvl {

const char* ToString(KeyDistribution dist) {
  switch (dist) {
    case KeyDistribution::kUniform:
      return "uniform";
    case KeyDistribution::kZipfian:
      return "zipfian";
  }
  return "unknown";
}

namespace {

double Zeta(int64_t n, double theta) {
  double sum = 0.0;
  for (int64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
  return sum;
}

}  // namespace

KeyGenerator::KeyGenerator(KeyDistribution dist, int64_t num_keys,
                           double theta)
    : dist_(dist), num_keys_(num_keys) {
  FVL_CHECK(num_keys_ >= 1);
  if (dist_ != KeyDistribution::kZipfian) return;
  FVL_CHECK(theta > 0.0 && theta < 1.0);
  theta_ = theta;
  zetan_ = Zeta(num_keys_, theta_);
  // The quantile-transform constants are only meaningful for n > 2: at
  // n == 1 the eta numerator goes negative (pow(2/1, 1-theta) > 1) and at
  // n == 2 it is 0/0 (zeta2 == zetan). Next() answers those key spaces
  // exactly from zetan_ alone, so the degenerate constants stay unset
  // instead of silently feeding nonsense into pow().
  if (num_keys_ <= 2) return;
  double zeta2 = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(num_keys_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

int64_t KeyGenerator::Next(Rng& rng) const {
  if (dist_ == KeyDistribution::kUniform) {
    return static_cast<int64_t>(
        rng.NextBounded(static_cast<uint64_t>(num_keys_)));
  }
  // Degenerate key spaces are answered exactly, not through the transform:
  // a one-key space has one answer, and a two-key space is a Bernoulli
  // draw with P(0) = 1/zetan (the transform's eta is 0/0 at n == 2).
  if (num_keys_ == 1) return 0;
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (num_keys_ == 2) return uz < 1.0 ? 0 : 1;
  // Gray et al.'s quantile transform: O(1) per draw, exact zipfian ranks.
  // The first two ranks come straight from the CDF (P(1) = 0.5^theta /
  // zetan); the pow() branch interpolates the rest.
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  double scaled = static_cast<double>(num_keys_) *
                  std::pow(eta_ * u - eta_ + 1.0, alpha_);
  // Clamp in double space *before* the cast: casting a double outside
  // [0, 2^63) is undefined, and the old int64-space clamp funneled that
  // whole numeric-overflow tail onto the coldest key. A non-finite or
  // negative value means the constants degenerated, which is a collapse
  // toward the head of the distribution — map it to the hottest rank. The
  // legitimate u -> 1 tail lands on num_keys_ exactly and belongs to the
  // coldest key.
  if (!std::isfinite(scaled) || scaled < 0.0) return 0;
  if (scaled >= static_cast<double>(num_keys_)) return num_keys_ - 1;
  return static_cast<int64_t>(scaled);
}

}  // namespace fvl
