#include "fvl/workload/key_generator.h"

#include <cmath>

#include "fvl/util/check.h"

namespace fvl {

const char* ToString(KeyDistribution dist) {
  switch (dist) {
    case KeyDistribution::kUniform:
      return "uniform";
    case KeyDistribution::kZipfian:
      return "zipfian";
  }
  return "unknown";
}

namespace {

double Zeta(int64_t n, double theta) {
  double sum = 0.0;
  for (int64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
  return sum;
}

}  // namespace

KeyGenerator::KeyGenerator(KeyDistribution dist, int64_t num_keys,
                           double theta)
    : dist_(dist), num_keys_(num_keys) {
  FVL_CHECK(num_keys_ >= 1);
  if (dist_ != KeyDistribution::kZipfian) return;
  FVL_CHECK(theta > 0.0 && theta < 1.0);
  theta_ = theta;
  zetan_ = Zeta(num_keys_, theta_);
  double zeta2 = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(num_keys_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

int64_t KeyGenerator::Next(Rng& rng) const {
  if (dist_ == KeyDistribution::kUniform) {
    return static_cast<int64_t>(
        rng.NextBounded(static_cast<uint64_t>(num_keys_)));
  }
  // Gray et al.'s quantile transform: O(1) per draw, exact zipfian ranks.
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  int64_t rank = static_cast<int64_t>(
      static_cast<double>(num_keys_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (rank < 0) rank = 0;
  if (rank >= num_keys_) rank = num_keys_ - 1;
  return rank;
}

}  // namespace fvl
