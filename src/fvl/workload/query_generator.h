// Query sampling (§6.1: "we generate sample queries by randomly selecting
// two data items in the same run").

#ifndef FVL_WORKLOAD_QUERY_GENERATOR_H_
#define FVL_WORKLOAD_QUERY_GENERATOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "fvl/core/run_labeler.h"
#include "fvl/core/view_label.h"
#include "fvl/run/run.h"

namespace fvl {

// Uniform random ordered item pairs.
std::vector<std::pair<int, int>> GenerateQueries(const Run& run, int count,
                                                 uint64_t seed);

// Pairs restricted to items visible in the given view (checked through the
// labels, as a §5 client would).
std::vector<std::pair<int, int>> GenerateVisibleQueries(
    const Run& run, const RunLabeler& labeler, const ViewLabel& view,
    int count, uint64_t seed);

}  // namespace fvl

#endif  // FVL_WORKLOAD_QUERY_GENERATOR_H_
