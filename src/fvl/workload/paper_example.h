// The paper's running example (Figures 2–5, Examples 3–19) plus the two
// counter-example grammars used by the negative results.
//
// The grammar skeleton is reconstructed exactly from the text: modules
// S, A..E (composite) and a..f (atomic); productions
//   p1: S -> W1 = [a, b, A, C, c, d]     p5: C -> W5 = [b, D, E, c]
//   p2: A -> W2 = [d, B, C]              p6: D -> W6 = [f, D]
//   p3: A -> W3 = [e, C]                 p7: D -> W7 = [f]
//   p4: B -> W4 = [e, A]                 p8: E -> W8 = [f, c]
// with cycles C(1) = {(2,2), (4,2)} (A<->B) and C(2) = {(6,2)} (D's
// self-loop), matching Example 12. Port arities and dependency assignments
// are chosen (the figures' drawings are not fully recoverable from prose)
// such that the hand-checkable artifacts of the paper hold verbatim where
// shapes permit — notably Example 16's I(1,5) = [[1,1],[0,0]] under the
// default view vs [[1,1],[0,1]] under the grey-box view U2, and the
// Example-15 label paths {(1,3),(1,1,5),(3,2),(5,1)}… See
// tests/paper_examples_test.cc for the full correspondence table.

#ifndef FVL_WORKLOAD_PAPER_EXAMPLE_H_
#define FVL_WORKLOAD_PAPER_EXAMPLE_H_

#include "fvl/workflow/grammar.h"
#include "fvl/workflow/view.h"

namespace fvl {

struct PaperExample {
  Specification spec;

  // Module ids.
  ModuleId S, A, B, C, D, E;
  ModuleId a, b, c, d, e, f;
  // Production ids p1..p8 (0-based: p[0] is the paper's p1).
  ProductionId p[8];

  // U1 = (Δ, λ): the default view.
  View default_view;
  // U2 = ({S, A, B}, λ') with grey-box λ'(C) = complete (Examples 7–8).
  View grey_view;
};

PaperExample MakePaperExample();

// Figure 6: two productions S -> [a] | S -> [b] whose dependency assignments
// disagree — no dynamic labeling scheme exists (Thm. 1).
Specification MakeUnsafeExample();

// Figure 10: linear-recursive but not strictly linear-recursive (two
// self-loop cycles share S); compact dynamic labeling impossible (Thm. 6).
Specification MakeFig10Example();

}  // namespace fvl

#endif  // FVL_WORKLOAD_PAPER_EXAMPLE_H_
