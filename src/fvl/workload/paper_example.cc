#include "fvl/workload/paper_example.h"

#include "fvl/util/check.h"
#include "fvl/workflow/grammar_builder.h"

namespace fvl {

namespace {

BoolMatrix MatrixFromRows(int rows, int cols,
                          std::initializer_list<std::initializer_list<int>> v) {
  BoolMatrix m(rows, cols);
  int r = 0;
  for (const auto& row : v) {
    int c = 0;
    for (int bit : row) {
      if (bit) m.Set(r, c);
      ++c;
    }
    ++r;
  }
  return m;
}

}  // namespace

PaperExample MakePaperExample() {
  GrammarBuilder builder;
  PaperExample ex;

  // Module table order fixes the cycle numbering (components are ordered by
  // their smallest module id): {A, B} becomes cycle 1 and {D} cycle 2, as in
  // Example 12.
  ex.S = builder.AddComposite("S", 2, 3);
  ex.A = builder.AddComposite("A", 2, 2);
  ex.B = builder.AddComposite("B", 2, 2);
  ex.C = builder.AddComposite("C", 2, 2);
  ex.D = builder.AddComposite("D", 2, 2);
  ex.E = builder.AddComposite("E", 2, 2);
  ex.a = builder.AddAtomic("a", 1, 2);
  ex.b = builder.AddAtomic("b", 1, 1);
  ex.c = builder.AddAtomic("c", 2, 2);
  ex.d = builder.AddAtomic("d", 2, 2);
  ex.e = builder.AddAtomic("e", 1, 1);
  ex.f = builder.AddAtomic("f", 2, 2);
  builder.SetStart(ex.S);

  {  // p1: S -> W1 = [a, b, A, C, c, d]
    auto p = builder.NewProduction(ex.S);
    int ma = p.AddMember(ex.a);
    int mb = p.AddMember(ex.b);
    int mA = p.AddMember(ex.A);
    int mC = p.AddMember(ex.C);
    int mc = p.AddMember(ex.c);
    int md = p.AddMember(ex.d);
    p.MapInput(0, ma, 0).MapInput(1, mb, 0);
    p.Edge(ma, 0, mA, 0)
        .Edge(ma, 1, mA, 1)
        .Edge(mb, 0, mC, 0)
        .Edge(mA, 0, mC, 1)
        .Edge(mA, 1, mc, 0)
        .Edge(mC, 0, mc, 1)
        .Edge(mC, 1, md, 0)
        .Edge(mc, 0, md, 1);
    p.MapOutput(0, mc, 1).MapOutput(1, md, 0).MapOutput(2, md, 1);
    ex.p[0] = p.Build();
  }
  {  // p2: A -> W2 = [d, B, C] (B's outputs cross into C)
    auto p = builder.NewProduction(ex.A);
    int md = p.AddMember(ex.d);
    int mB = p.AddMember(ex.B);
    int mC = p.AddMember(ex.C);
    p.MapInput(0, md, 0).MapInput(1, md, 1);
    p.Edge(md, 0, mB, 0)
        .Edge(md, 1, mB, 1)
        .Edge(mB, 0, mC, 1)
        .Edge(mB, 1, mC, 0);
    p.MapOutput(0, mC, 0).MapOutput(1, mC, 1);
    ex.p[1] = p.Build();
  }
  {  // p3: A -> W3 = [e, C]
    auto p = builder.NewProduction(ex.A);
    int me = p.AddMember(ex.e);
    int mC = p.AddMember(ex.C);
    p.MapInput(0, me, 0).MapInput(1, mC, 0);
    p.Edge(me, 0, mC, 1);
    p.MapOutput(0, mC, 0).MapOutput(1, mC, 1);
    ex.p[2] = p.Build();
  }
  {  // p4: B -> W4 = [e, A]
    auto p = builder.NewProduction(ex.B);
    int me = p.AddMember(ex.e);
    int mA = p.AddMember(ex.A);
    p.MapInput(0, me, 0).MapInput(1, mA, 0);
    p.Edge(me, 0, mA, 1);
    p.MapOutput(0, mA, 0).MapOutput(1, mA, 1);
    ex.p[3] = p.Build();
  }
  {  // p5: C -> W5 = [b, D, E, c]
    auto p = builder.NewProduction(ex.C);
    int mb = p.AddMember(ex.b);
    int mD = p.AddMember(ex.D);
    int mE = p.AddMember(ex.E);
    int mc = p.AddMember(ex.c);
    p.MapInput(0, mb, 0).MapInput(1, mD, 0);
    p.Edge(mb, 0, mD, 1)
        .Edge(mD, 0, mE, 0)
        .Edge(mD, 1, mE, 1)
        .Edge(mE, 0, mc, 0)
        .Edge(mE, 1, mc, 1);
    p.MapOutput(0, mc, 0).MapOutput(1, mc, 1);
    ex.p[4] = p.Build();
  }
  {  // p6: D -> W6 = [f, D] (the loop over f)
    auto p = builder.NewProduction(ex.D);
    int mf = p.AddMember(ex.f);
    int mD = p.AddMember(ex.D);
    p.MapInput(0, mf, 0).MapInput(1, mf, 1);
    p.Edge(mf, 0, mD, 0).Edge(mf, 1, mD, 1);
    p.MapOutput(0, mD, 0).MapOutput(1, mD, 1);
    ex.p[5] = p.Build();
  }
  {  // p7: D -> W7 = [f]
    auto p = builder.NewProduction(ex.D);
    int mf = p.AddMember(ex.f);
    p.MapInput(0, mf, 0).MapInput(1, mf, 1);
    p.MapOutput(0, mf, 0).MapOutput(1, mf, 1);
    ex.p[6] = p.Build();
  }
  {  // p8: E -> W8 = [f, c]
    auto p = builder.NewProduction(ex.E);
    int mf = p.AddMember(ex.f);
    int mc = p.AddMember(ex.c);
    p.MapInput(0, mf, 0).MapInput(1, mf, 1);
    p.Edge(mf, 0, mc, 0).Edge(mf, 1, mc, 1);
    p.MapOutput(0, mc, 0).MapOutput(1, mc, 1);
    ex.p[7] = p.Build();
  }

  // λ (white-box dependencies of the atomic modules). λ(f) is idempotent,
  // which is what makes the loop over f safe (λ*(D) = λ(f) from p7 must
  // agree with λ(f)·λ*(D) from p6).
  builder.SetDeps(ex.a, MatrixFromRows(1, 2, {{1, 1}}));
  builder.SetDeps(ex.b, MatrixFromRows(1, 1, {{1}}));
  builder.SetIdentityDeps(ex.c);
  builder.SetDeps(ex.d, MatrixFromRows(2, 2, {{0, 1}, {1, 0}}));  // crossover
  builder.SetDeps(ex.e, MatrixFromRows(1, 1, {{1}}));
  builder.SetDeps(ex.f, MatrixFromRows(2, 2, {{1, 1}, {0, 1}}));

  ex.spec = builder.BuildSpecification();

  // U1 = (Δ, λ).
  ex.default_view = MakeDefaultView(ex.spec);

  // U2 = ({S, A, B}, λ'): C, D, E, f collapse; λ'(C) is grey-box complete
  // (Example 7 keeps the other perceived dependencies unchanged; our e is
  // 1x1 so the paper's change to λ'(e) has no analogue and C carries the
  // grey-box difference, as in Example 8).
  ex.grey_view.expandable.assign(ex.spec.grammar.num_modules(), false);
  ex.grey_view.expandable[ex.S] = true;
  ex.grey_view.expandable[ex.A] = true;
  ex.grey_view.expandable[ex.B] = true;
  ex.grey_view.perceived = ex.spec.deps;
  ex.grey_view.perceived.Set(ex.C, BoolMatrix::Full(2, 2));

  return ex;
}

Specification MakeUnsafeExample() {
  GrammarBuilder builder;
  ModuleId S = builder.AddComposite("S", 2, 2);
  ModuleId a = builder.AddAtomic("a", 2, 2);
  ModuleId b = builder.AddAtomic("b", 2, 2);
  builder.SetStart(S);
  {
    auto p = builder.NewProduction(S);
    int m = p.AddMember(a);
    p.MapInput(0, m, 0).MapInput(1, m, 1);
    p.MapOutput(0, m, 0).MapOutput(1, m, 1);
    p.Build();
  }
  {
    auto p = builder.NewProduction(S);
    int m = p.AddMember(b);
    p.MapInput(0, m, 0).MapInput(1, m, 1);
    p.MapOutput(0, m, 0).MapOutput(1, m, 1);
    p.Build();
  }
  BoolMatrix identity = BoolMatrix::Identity(2);
  BoolMatrix swap(2, 2);
  swap.Set(0, 1);
  swap.Set(1, 0);
  builder.SetDeps(a, identity);
  builder.SetDeps(b, swap);
  return builder.BuildSpecification();
}

Specification MakeFig10Example() {
  GrammarBuilder builder;
  ModuleId S = builder.AddComposite("S", 1, 1);
  ModuleId a = builder.AddAtomic("a", 1, 1);
  ModuleId b = builder.AddAtomic("b", 1, 1);
  ModuleId c = builder.AddAtomic("c", 1, 1);
  builder.SetStart(S);
  auto chain_production = [&](ModuleId head) {
    auto p = builder.NewProduction(S);
    int mh = p.AddMember(head);
    int mS = p.AddMember(S);
    p.MapInput(0, mh, 0);
    p.Edge(mh, 0, mS, 0);
    p.MapOutput(0, mS, 0);
    p.Build();
  };
  chain_production(a);  // pa
  chain_production(b);  // pb
  {
    auto p = builder.NewProduction(S);  // pc
    int mc = p.AddMember(c);
    p.MapInput(0, mc, 0);
    p.MapOutput(0, mc, 0);
    p.Build();
  }
  builder.SetCompleteDeps(a);
  builder.SetCompleteDeps(b);
  builder.SetCompleteDeps(c);
  return builder.BuildSpecification();
}

}  // namespace fvl
