// Key-choice distributions for the multi-client workload drivers
// (bench/ycsb_driver.cc): uniform and zipfian selection over a key space
// [0, n), the two access patterns every YCSB-style benchmark ships.
//
// The zipfian generator is the standard Gray et al. rejection-free
// construction used by YCSB: P(rank k) ∝ 1/k^theta, with the zeta
// normalization constant precomputed once per (n, theta). Rank 0 is the
// hottest key; callers that want hot keys scattered across the key space
// should compose with a hash, which KeyGenerator does NOT do — drivers
// index pre-generated query pools, where rank order is as good as any.

#ifndef FVL_WORKLOAD_KEY_GENERATOR_H_
#define FVL_WORKLOAD_KEY_GENERATOR_H_

#include <cstdint>

#include "fvl/util/random.h"

namespace fvl {

enum class KeyDistribution { kUniform, kZipfian };

const char* ToString(KeyDistribution dist);

class KeyGenerator {
 public:
  // Keys are drawn from [0, num_keys); num_keys must be >= 1. theta is the
  // zipfian skew (ignored for uniform): 0.99 — the YCSB default — sends
  // roughly half of all draws to the hottest ~2% of keys at n=10^4.
  KeyGenerator(KeyDistribution dist, int64_t num_keys, double theta = 0.99);

  // The next key under the configured distribution, using the caller's RNG
  // (generators hold no RNG state, so one generator may serve many
  // deterministic per-thread streams).
  int64_t Next(Rng& rng) const;

  KeyDistribution distribution() const { return dist_; }
  int64_t num_keys() const { return num_keys_; }

 private:
  KeyDistribution dist_;
  int64_t num_keys_;
  double theta_ = 0.0;
  // Precomputed zipfian constants (Gray et al. / YCSB ZipfianGenerator).
  double zetan_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

}  // namespace fvl

#endif  // FVL_WORKLOAD_KEY_GENERATOR_H_
