// Safe view sampling (§6.1: "we obtained safe views by enumerating all
// possible proper subsets of composite modules and assigning random
// input-output dependencies to atomic modules").
//
// Δ' is grown top-down from the start module one recursion-closed group at a
// time (whole cycles enter or leave together, so no partial-cycle
// consistency constraint can be violated); perceived dependencies are
// white-box (true λ*), black-box (complete), or grey-box (true λ* plus
// random extra dependencies, honoring the workload's pinned/forced
// constraints). Every sampled view is verified with the safety checker; in
// the (by construction unreachable) failure case the sampler falls back to
// white-box dependencies.

#ifndef FVL_WORKLOAD_VIEW_GENERATOR_H_
#define FVL_WORKLOAD_VIEW_GENERATOR_H_

#include <cstdint>

#include "fvl/workflow/view.h"
#include "fvl/workload/workload_spec.h"

namespace fvl {

enum class PerceivedDeps { kWhiteBox, kGreyBox, kBlackBox };

struct ViewGeneratorOptions {
  // Target |Δ'| in modules; -1 expands everything (default-view structure).
  int num_expandable = -1;
  PerceivedDeps deps = PerceivedDeps::kGreyBox;
  // Grey-box: probability of adding each absent dependency bit.
  double add_probability = 0.3;
  uint64_t seed = 1;
  int max_attempts = 16;
};

CompiledView GenerateSafeView(const Workload& workload,
                              const ViewGeneratorOptions& options);

}  // namespace fvl

#endif  // FVL_WORKLOAD_VIEW_GENERATOR_H_
