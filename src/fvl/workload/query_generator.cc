#include "fvl/workload/query_generator.h"

#include "fvl/core/visibility.h"
#include "fvl/util/check.h"
#include "fvl/util/random.h"

namespace fvl {

std::vector<std::pair<int, int>> GenerateQueries(const Run& run, int count,
                                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<int, int>> queries;
  queries.reserve(count);
  for (int i = 0; i < count; ++i) {
    int d1 = static_cast<int>(rng.NextBounded(run.num_items()));
    int d2 = static_cast<int>(rng.NextBounded(run.num_items()));
    queries.emplace_back(d1, d2);
  }
  return queries;
}

std::vector<std::pair<int, int>> GenerateVisibleQueries(
    const Run& run, const RunLabeler& labeler, const ViewLabel& view,
    int count, uint64_t seed) {
  std::vector<int> visible;
  for (int item = 0; item < run.num_items(); ++item) {
    if (IsItemVisible(labeler.Label(item), view)) visible.push_back(item);
  }
  FVL_CHECK(!visible.empty());
  Rng rng(seed);
  std::vector<std::pair<int, int>> queries;
  queries.reserve(count);
  for (int i = 0; i < count; ++i) {
    int d1 = visible[rng.NextBounded(visible.size())];
    int d2 = visible[rng.NextBounded(visible.size())];
    queries.emplace_back(d1, d2);
  }
  return queries;
}

}  // namespace fvl
