#include "fvl/workload/synthetic.h"

#include <string>
#include <vector>

#include "fvl/util/check.h"
#include "fvl/util/random.h"
#include "fvl/workflow/grammar_builder.h"
#include "fvl/workflow/safety.h"

namespace fvl {

namespace {

BoolMatrix RandomDeps(Rng& rng, int rows, int cols, double density = 0.35) {
  BoolMatrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (rng.NextBool(density)) m.Set(r, c);
    }
  }
  for (int r = 0; r < rows; ++r) {
    if (!m.RowAny(r)) m.Set(r, rng.NextInt(0, cols - 1));
  }
  for (int c = 0; c < cols; ++c) {
    if (!m.ColAny(c)) m.Set(rng.NextInt(0, rows - 1), c);
  }
  return m;
}

// d-wide chain production lhs -> [members...].
void ChainProduction(GrammarBuilder& builder, ModuleId lhs,
                     const std::vector<ModuleId>& members, int degree) {
  auto p = builder.NewProduction(lhs);
  std::vector<int> idx;
  for (ModuleId m : members) idx.push_back(p.AddMember(m));
  for (int port = 0; port < degree; ++port) {
    p.MapInput(port, idx.front(), port);
  }
  for (size_t i = 0; i + 1 < idx.size(); ++i) {
    for (int port = 0; port < degree; ++port) {
      p.Edge(idx[i], port, idx[i + 1], port);
    }
  }
  for (int port = 0; port < degree; ++port) {
    p.MapOutput(port, idx.back(), port);
  }
  p.Build();
}

}  // namespace

Workload MakeSynthetic(const SyntheticOptions& options) {
  FVL_CHECK(options.workflow_size >= 3);
  FVL_CHECK(options.module_degree >= 1);
  FVL_CHECK(options.nesting_depth >= 1);
  FVL_CHECK(options.recursion_length >= 1);
  const int w = options.workflow_size;
  const int d = options.module_degree;
  const int h = options.nesting_depth;
  const int r = options.recursion_length;

  Rng rng(options.seed);
  GrammarBuilder builder;
  Workload workload;
  workload.name = "synthetic(w=" + std::to_string(w) + ",d=" +
                  std::to_string(d) + ",h=" + std::to_string(h) + ",r=" +
                  std::to_string(r) + ")";

  // Shared pinned identity carry stage.
  ModuleId carry = builder.AddAtomic("carry", d, d);
  builder.SetIdentityDeps(carry);
  workload.constraints.pinned.push_back(carry);

  // Ring composites per level.
  std::vector<std::vector<ModuleId>> ring(h);
  for (int level = 0; level < h; ++level) {
    for (int j = 0; j < r; ++j) {
      ring[level].push_back(builder.AddComposite(
          "C" + std::to_string(level + 1) + "_" + std::to_string(j + 1), d,
          d));
    }
  }
  builder.SetStart(ring[0][0]);

  // Base chain atoms per level (shared across the ring so that every ring
  // member's base production computes the same dependencies — the
  // consistency requirement of the safety fixed point).
  std::vector<std::vector<ModuleId>> level_atoms(h);
  for (int level = 0; level < h; ++level) {
    int atoms = level + 1 < h ? w - 1 : w;
    for (int pos = 0; pos < atoms; ++pos) {
      ModuleId m = builder.AddAtomic(
          "t" + std::to_string(level + 1) + "_" + std::to_string(pos + 1), d,
          d);
      builder.SetDeps(m, RandomDeps(rng, d, d));
      level_atoms[level].push_back(m);
    }
  }

  for (int level = 0; level < h; ++level) {
    // Base production members: the level's chain with the next level's ring
    // entry spliced into the middle.
    std::vector<ModuleId> base = level_atoms[level];
    if (level + 1 < h) {
      base.insert(base.begin() + static_cast<int>(base.size()) / 2,
                  ring[level + 1][0]);
    }
    // Recursive production members: identity carries around the successor.
    for (int j = 0; j < r; ++j) {
      ChainProduction(builder, ring[level][j], base, d);
      std::vector<ModuleId> rec;
      int pads = w - 1;
      int pre = pads / 2;
      for (int q = 0; q < pre; ++q) rec.push_back(carry);
      rec.push_back(ring[level][(j + 1) % r]);
      for (int q = pre; q < pads; ++q) rec.push_back(carry);
      ChainProduction(builder, ring[level][j], rec, d);
    }
  }

  workload.spec = builder.BuildSpecification();
  Result<DependencyAssignment> safety =
      CheckSafety(workload.spec.grammar, workload.spec.deps);
  FVL_CHECK(safety.ok());
  return workload;
}

}  // namespace fvl
