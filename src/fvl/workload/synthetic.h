// The synthetic workflow family of §6.5 (Figure 26): a linear-recursive
// topology parameterized by
//   * workflow size      — modules per simple workflow (default 40),
//   * module degree      — input/output ports per module (default 4),
//   * nesting depth      — depth of nested composite modules (default 4),
//   * recursion length   — composite modules per recursion ring (default 2).
//
// Level i hosts a ring C[i][0] -> C[i][1] -> ... -> C[i][r-1] -> C[i][0] of
// recursive productions whose carry stages are pinned identity modules (safe
// for any assignment); the ring members share one structurally identical
// base production, whose chain descends into level i+1 via C[i+1][0].

#ifndef FVL_WORKLOAD_SYNTHETIC_H_
#define FVL_WORKLOAD_SYNTHETIC_H_

#include <cstdint>

#include "fvl/workload/workload_spec.h"

namespace fvl {

struct SyntheticOptions {
  int workflow_size = 40;
  int module_degree = 4;
  int nesting_depth = 4;
  int recursion_length = 2;
  uint64_t seed = 7;
};

Workload MakeSynthetic(const SyntheticOptions& options);

}  // namespace fvl

#endif  // FVL_WORKLOAD_SYNTHETIC_H_
