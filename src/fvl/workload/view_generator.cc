#include "fvl/workload/view_generator.h"

#include <deque>
#include <vector>

#include "fvl/util/check.h"
#include "fvl/util/random.h"
#include "fvl/workflow/production_graph.h"
#include "fvl/workflow/safety.h"

namespace fvl {

namespace {

// Recursion-closed selection groups: every P(G) cycle is one group; every
// non-recursive composite is its own group.
std::vector<std::vector<ModuleId>> SelectionGroups(const Grammar& grammar,
                                                   const ProductionGraph& pg) {
  std::vector<std::vector<ModuleId>> groups;
  std::vector<bool> seen(grammar.num_modules(), false);
  for (ModuleId m : grammar.CompositeModules()) {
    if (seen[m]) continue;
    if (pg.IsRecursive(m)) {
      const auto& cycle = pg.cycle(pg.CycleOf(m));
      groups.push_back(cycle.members);
      for (ModuleId member : cycle.members) seen[member] = true;
    } else {
      groups.push_back({m});
      seen[m] = true;
    }
  }
  return groups;
}

std::vector<bool> PickExpandable(const Workload& workload,
                                 const ProductionGraph& pg, int target,
                                 Rng& rng) {
  const Grammar& grammar = workload.spec.grammar;
  std::vector<bool> expandable(grammar.num_modules(), false);
  if (target < 0) {
    for (ModuleId m : grammar.CompositeModules()) expandable[m] = true;
    return expandable;
  }

  std::vector<std::vector<ModuleId>> groups = SelectionGroups(grammar, pg);
  std::vector<bool> chosen(groups.size(), false);
  int count = 0;

  auto choose = [&](size_t g) {
    chosen[g] = true;
    for (ModuleId m : groups[g]) {
      expandable[m] = true;
      ++count;
    }
  };
  // The start module's group is mandatory (proper views expand S).
  for (size_t g = 0; g < groups.size(); ++g) {
    for (ModuleId m : groups[g]) {
      if (m == grammar.start()) choose(g);
    }
  }

  while (count < target) {
    // Candidates: unchosen groups with a member derivable under the current
    // Δ' (so the grown view stays proper).
    std::vector<bool> derivable(grammar.num_modules(), false);
    std::deque<ModuleId> queue = {grammar.start()};
    derivable[grammar.start()] = true;
    while (!queue.empty()) {
      ModuleId m = queue.front();
      queue.pop_front();
      if (!expandable[m]) continue;
      for (ProductionId k : grammar.ProductionsOf(m)) {
        for (ModuleId member : grammar.production(k).rhs.members) {
          if (!derivable[member]) {
            derivable[member] = true;
            queue.push_back(member);
          }
        }
      }
    }
    std::vector<size_t> candidates;
    for (size_t g = 0; g < groups.size(); ++g) {
      if (chosen[g]) continue;
      for (ModuleId m : groups[g]) {
        if (derivable[m]) {
          candidates.push_back(g);
          break;
        }
      }
    }
    if (candidates.empty()) break;
    choose(candidates[rng.NextBounded(candidates.size())]);
  }
  return expandable;
}

}  // namespace

CompiledView GenerateSafeView(const Workload& workload,
                              const ViewGeneratorOptions& options) {
  const Grammar& grammar = workload.spec.grammar;
  ProductionGraph pg(&grammar);
  // Group-closed selection needs the cycle index.
  FVL_CHECK(pg.strictly_linear());

  // True full assignment λ* — the white-box baseline for perceived deps.
  Result<DependencyAssignment> true_safety =
      CheckSafety(grammar, workload.spec.deps);
  FVL_CHECK(true_safety.ok());

  Rng rng(options.seed);
  for (int attempt = 0; attempt < options.max_attempts + 1; ++attempt) {
    // Last attempt falls back to white-box dependencies (always safe).
    PerceivedDeps kind =
        attempt == options.max_attempts ? PerceivedDeps::kWhiteBox : options.deps;

    View view;
    view.expandable = PickExpandable(workload, pg, options.num_expandable, rng);

    view.perceived = DependencyAssignment(grammar.num_modules());
    for (ModuleId m = 0; m < grammar.num_modules(); ++m) {
      if (view.expandable[m]) continue;
      if (!true_safety->IsDefined(m)) continue;
      const Module& module = grammar.module(m);
      BoolMatrix deps = true_safety->Get(m);
      switch (kind) {
        case PerceivedDeps::kWhiteBox:
          break;
        case PerceivedDeps::kBlackBox:
          deps = BoolMatrix::Full(module.num_inputs, module.num_outputs);
          break;
        case PerceivedDeps::kGreyBox:
          if (!workload.constraints.IsPinned(m)) {
            for (int i = 0; i < deps.rows(); ++i) {
              for (int o = 0; o < deps.cols(); ++o) {
                if (!deps.Get(i, o) && rng.NextBool(options.add_probability)) {
                  deps.Set(i, o);
                }
              }
            }
          }
          break;
      }
      view.perceived.Set(m, std::move(deps));
    }

    Result<CompiledView> compiled =
        CompiledView::Compile(grammar, std::move(view));
    if (compiled.ok()) return std::move(compiled).value();
  }
  FVL_CHECK(false && "view sampling failed even with white-box dependencies");
}

}  // namespace fvl
