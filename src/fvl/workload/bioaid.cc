#include "fvl/workload/bioaid.h"

#include <string>
#include <vector>

#include "fvl/util/check.h"
#include "fvl/util/random.h"
#include "fvl/workflow/grammar_builder.h"
#include "fvl/workflow/safety.h"

namespace fvl {

namespace {

// Random dependency matrix with every row and column non-empty (Def. 6).
BoolMatrix RandomDeps(Rng& rng, int rows, int cols, double density = 0.4) {
  BoolMatrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (rng.NextBool(density)) m.Set(r, c);
    }
  }
  for (int r = 0; r < rows; ++r) {
    if (!m.RowAny(r)) m.Set(r, rng.NextInt(0, cols - 1));
  }
  for (int c = 0; c < cols; ++c) {
    if (!m.ColAny(c)) m.Set(rng.NextInt(0, rows - 1), c);
  }
  return m;
}

// Builds a 2-wide chain production lhs -> [members...] where every member is
// 2-in/2-out; initial inputs feed the first member, finals come from the
// last.
void ChainProduction(GrammarBuilder& builder, ModuleId lhs,
                     const std::vector<ModuleId>& members) {
  auto p = builder.NewProduction(lhs);
  std::vector<int> idx;
  for (ModuleId m : members) idx.push_back(p.AddMember(m));
  p.MapInput(0, idx.front(), 0).MapInput(1, idx.front(), 1);
  for (size_t i = 0; i + 1 < idx.size(); ++i) {
    p.Edge(idx[i], 0, idx[i + 1], 0).Edge(idx[i], 1, idx[i + 1], 1);
  }
  p.MapOutput(0, idx.back(), 0).MapOutput(1, idx.back(), 1);
  p.Build();
}

}  // namespace

Workload MakeBioAid(uint64_t seed) {
  Rng rng(seed);
  GrammarBuilder builder;
  Workload workload;
  workload.name = "BioAID";

  // --- Composite modules (16): S, eight pipeline stages, a two-module
  // loop {L1, L1b}, a self-loop L2, and four forks F1..F4. All 2-in/2-out.
  ModuleId S = builder.AddComposite("S", 2, 2);
  std::vector<ModuleId> stages;
  for (int i = 1; i <= 8; ++i) {
    stages.push_back(builder.AddComposite("P" + std::to_string(i), 2, 2));
  }
  ModuleId L1 = builder.AddComposite("L1", 2, 2);
  ModuleId L1b = builder.AddComposite("L1b", 2, 2);
  ModuleId L2 = builder.AddComposite("L2", 2, 2);
  std::vector<ModuleId> forks;
  for (int i = 1; i <= 4; ++i) {
    forks.push_back(builder.AddComposite("F" + std::to_string(i), 2, 2));
  }
  builder.SetStart(S);

  // --- Atomic modules (96) and productions (23 = 16 base + 7 recursive).
  std::vector<ModuleId> random_atoms;  // get random dependencies
  auto atom = [&](const std::string& name, int in, int out) {
    ModuleId m = builder.AddAtomic(name, in, out);
    random_atoms.push_back(m);
    return m;
  };
  auto pinned_identity = [&](const std::string& name) {
    ModuleId m = builder.AddAtomic(name, 2, 2);
    builder.SetIdentityDeps(m);
    workload.constraints.pinned.push_back(m);
    return m;
  };

  ModuleId g_src = atom("stage_in", 2, 2);
  ModuleId g_snk = atom("collect", 2, 2);

  // S's pipeline: 16 members (<= 19).
  {
    std::vector<ModuleId> members = {g_src};
    for (int i = 0; i < 4; ++i) members.push_back(stages[i]);
    members.push_back(L1);
    members.push_back(stages[4]);
    members.push_back(L2);
    members.push_back(stages[5]);
    members.push_back(forks[0]);
    members.push_back(forks[1]);
    members.push_back(stages[6]);
    members.push_back(forks[2]);
    members.push_back(stages[7]);
    members.push_back(forks[3]);
    members.push_back(g_snk);
    FVL_CHECK(members.size() == 16);
    ChainProduction(builder, S, members);
  }

  // Pipeline stages: single-source/sink diamonds exercising the 4-in/7-out
  // port bounds. Stages 1..6 have 7 atomic steps, stages 7..8 have 6.
  for (int i = 0; i < 8; ++i) {
    std::string prefix = "P" + std::to_string(i + 1) + "_";
    bool wide = i < 6;  // two entry pads instead of one
    ModuleId pad_a = atom(prefix + "prepare", 2, 2);
    ModuleId pad_b = wide ? atom(prefix + "normalize", 2, 2) : kInvalidModule;
    ModuleId fan = atom(prefix + "expand", 2, 7);
    ModuleId left = atom(prefix + "left", 4, 2);
    ModuleId right = atom(prefix + "right", 3, 2);
    ModuleId merge = atom(prefix + "merge", 4, 2);
    ModuleId pad_c = atom(prefix + "finish", 2, 2);

    auto p = builder.NewProduction(stages[i]);
    int ma = p.AddMember(pad_a);
    int mb = wide ? p.AddMember(pad_b) : -1;
    int mf = p.AddMember(fan);
    int ml = p.AddMember(left);
    int mr = p.AddMember(right);
    int mm = p.AddMember(merge);
    int mc = p.AddMember(pad_c);
    p.MapInput(0, ma, 0).MapInput(1, ma, 1);
    int before_fan = wide ? mb : ma;
    if (wide) p.Edge(ma, 0, mb, 0).Edge(ma, 1, mb, 1);
    p.Edge(before_fan, 0, mf, 0).Edge(before_fan, 1, mf, 1);
    p.Edge(mf, 0, ml, 0).Edge(mf, 1, ml, 1).Edge(mf, 2, ml, 2).Edge(mf, 3, ml, 3);
    p.Edge(mf, 4, mr, 0).Edge(mf, 5, mr, 1).Edge(mf, 6, mr, 2);
    p.Edge(ml, 0, mm, 0).Edge(ml, 1, mm, 1);
    p.Edge(mr, 0, mm, 2).Edge(mr, 1, mm, 3);
    p.Edge(mm, 0, mc, 0).Edge(mm, 1, mc, 1);
    p.MapOutput(0, mc, 0).MapOutput(1, mc, 1);
    p.Build();
  }

  // Loop {L1, L1b}: recursive productions carry data through pinned identity
  // stages, so any base-case assignment is a consistent fixed point; the two
  // base productions are structurally identical, so the cycle members agree.
  ModuleId pre1 = pinned_identity("L1_iter_in");
  ModuleId post1 = pinned_identity("L1_iter_out");
  ModuleId pre1b = pinned_identity("L1b_iter_in");
  ModuleId post1b = pinned_identity("L1b_iter_out");
  std::vector<ModuleId> u_chain = {atom("L1_step1", 2, 2),
                                   atom("L1_step2", 2, 2),
                                   atom("L1_step3", 2, 2)};
  ChainProduction(builder, L1, u_chain);             // base (p. id order fixes
  ChainProduction(builder, L1, {pre1, L1b, post1});  //  base before recursive)
  ChainProduction(builder, L1b, u_chain);
  ChainProduction(builder, L1b, {pre1b, L1, post1b});

  // Self-loop L2.
  ModuleId pre2 = pinned_identity("L2_iter_in");
  ModuleId post2 = pinned_identity("L2_iter_out");
  ChainProduction(builder, L2, {atom("L2_step1", 2, 2), atom("L2_step2", 2, 2),
                                atom("L2_step3", 2, 2)});
  ChainProduction(builder, L2, {pre2, L2, post2});

  // Forks F1..F4: the recursive production splits off a two-step body whose
  // contribution is routed from input 0 to output 0; the base chain keeps
  // the (0,0) dependency set so the recursion is consistent for any body
  // assignment.
  for (int i = 0; i < 4; ++i) {
    std::string prefix = "F" + std::to_string(i + 1) + "_";
    ModuleId split = builder.AddAtomic(prefix + "split", 2, 4);
    {
      BoolMatrix deps(2, 4);
      deps.Set(0, 0);  // carry 0
      deps.Set(1, 1);  // carry 1
      deps.Set(0, 2);  // body channels draw from input 0 only
      deps.Set(0, 3);
      builder.SetDeps(split, deps);
      workload.constraints.pinned.push_back(split);
    }
    ModuleId join = builder.AddAtomic(prefix + "join", 4, 2);
    {
      BoolMatrix deps(4, 2);
      deps.Set(0, 0);  // carry 0
      deps.Set(1, 1);  // carry 1
      deps.Set(2, 0);  // body feeds output 0 only
      deps.Set(3, 0);
      builder.SetDeps(join, deps);
      workload.constraints.pinned.push_back(join);
    }
    ModuleId w1 = atom(prefix + "map", 2, 2);
    ModuleId w2 = atom(prefix + "fold", 2, 2);
    std::vector<ModuleId> base = {atom(prefix + "base1", 2, 2),
                                  atom(prefix + "base2", 2, 2),
                                  atom(prefix + "base3", 2, 2)};
    for (ModuleId x : base) {
      workload.constraints.forced_bits.push_back({x, 0, 0});
    }
    ChainProduction(builder, forks[i], base);
    {
      auto p = builder.NewProduction(forks[i]);
      int ms = p.AddMember(split);
      int m1 = p.AddMember(w1);
      int m2 = p.AddMember(w2);
      int mF = p.AddMember(forks[i]);
      int mj = p.AddMember(join);
      p.MapInput(0, ms, 0).MapInput(1, ms, 1);
      p.Edge(ms, 0, mF, 0).Edge(ms, 1, mF, 1);
      p.Edge(ms, 2, m1, 0).Edge(ms, 3, m1, 1);
      p.Edge(m1, 0, m2, 0).Edge(m1, 1, m2, 1);
      p.Edge(mF, 0, mj, 0).Edge(mF, 1, mj, 1);
      p.Edge(m2, 0, mj, 2).Edge(m2, 1, mj, 3);
      p.MapOutput(0, mj, 0).MapOutput(1, mj, 1);
      p.Build();
    }
  }

  // Random fine-grained dependencies for the unconstrained atoms, then the
  // forced fork-base bits.
  for (ModuleId m : random_atoms) {
    const Module& module = builder.module(m);
    builder.SetDeps(m,
                    RandomDeps(rng, module.num_inputs, module.num_outputs));
  }
  workload.spec = builder.BuildSpecification();
  for (const SafeDepConstraints::Bit& bit : workload.constraints.forced_bits) {
    BoolMatrix deps = workload.spec.deps.Get(bit.module);
    deps.Set(bit.in, bit.out);
    workload.spec.deps.Set(bit.module, std::move(deps));
  }

  // Published shape parameters.
  FVL_CHECK(workload.spec.grammar.num_modules() == 112);
  FVL_CHECK(static_cast<int>(workload.spec.grammar.CompositeModules().size()) ==
            16);
  FVL_CHECK(workload.spec.grammar.num_productions() == 23);

  // Safety by construction — verified.
  Result<DependencyAssignment> safety =
      CheckSafety(workload.spec.grammar, workload.spec.deps);
  FVL_CHECK(safety.ok());
  return workload;
}

}  // namespace fvl
