// A real-life-shaped workflow matching the statistics the paper reports for
// its representative myExperiment workflow "BioAID" (§6.1): 112 modules of
// which 16 are composite, 23 productions of which 7 are recursive (here:
// one two-module loop, one self-loop, four forks), at most 19 modules per
// production, at most 4 input and 7 output ports per module, and
// single-source/single-sink simple workflows (so black-box views are safe —
// Lemma 2 — and the DRL baseline is applicable).
//
// The actual BioAID Taverna workflow is not redistributable/available
// offline; this deterministic generator reproduces its published shape
// parameters, which are the only properties the experiments depend on
// (substitution documented in docs/DESIGN.md §5).

#ifndef FVL_WORKLOAD_BIOAID_H_
#define FVL_WORKLOAD_BIOAID_H_

#include <cstdint>

#include "fvl/workload/workload_spec.h"

namespace fvl {

// `seed` drives the random fine-grained dependency assignment (§6.1:
// "assigning random input-output dependencies to atomic modules").
Workload MakeBioAid(uint64_t seed = 2012);

}  // namespace fvl

#endif  // FVL_WORKLOAD_BIOAID_H_
