// A workload bundles a specification with the structural constraints its
// generator relies on for safety-under-any-assignment (docs/DESIGN.md §3):
// loop-carry stages must keep identity dependencies, fork split/join stages
// keep their routing pattern, and fork base chains keep the (0,0) bit that
// absorbs the side-branch contribution. View generators honor these
// constraints when sampling grey-box perceived dependencies, which keeps
// every sampled view safe by construction.

#ifndef FVL_WORKLOAD_WORKLOAD_SPEC_H_
#define FVL_WORKLOAD_WORKLOAD_SPEC_H_

#include <string>
#include <vector>

#include "fvl/workflow/grammar.h"

namespace fvl {

struct SafeDepConstraints {
  // Modules whose perceived dependencies must equal the specification's λ.
  std::vector<ModuleId> pinned;
  // Dependency bits that must stay set in any perceived assignment.
  struct Bit {
    ModuleId module;
    int in;
    int out;
  };
  std::vector<Bit> forced_bits;

  bool IsPinned(ModuleId m) const {
    for (ModuleId p : pinned) {
      if (p == m) return true;
    }
    return false;
  }
};

struct Workload {
  std::string name;
  Specification spec;
  SafeDepConstraints constraints;
};

}  // namespace fvl

#endif  // FVL_WORKLOAD_WORKLOAD_SPEC_H_
