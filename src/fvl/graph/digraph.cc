#include "fvl/graph/digraph.h"

#include "fvl/util/check.h"

namespace fvl {

Digraph::Digraph(int num_nodes)
    : out_edges_(num_nodes), in_edges_(num_nodes) {
  FVL_CHECK(num_nodes >= 0);
}

int Digraph::AddNode() {
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  return num_nodes() - 1;
}

int Digraph::AddEdge(int from, int to) {
  FVL_CHECK(from >= 0 && from < num_nodes());
  FVL_CHECK(to >= 0 && to < num_nodes());
  int id = num_edges();
  edges_.push_back({from, to});
  out_edges_[from].push_back(id);
  in_edges_[to].push_back(id);
  return id;
}

}  // namespace fvl
