#include "fvl/graph/reachability.h"

#include <deque>

namespace fvl {

std::vector<bool> ReachableFrom(const Digraph& graph, int source) {
  std::vector<bool> visited(graph.num_nodes(), false);
  std::deque<int> queue = {source};
  visited[source] = true;
  while (!queue.empty()) {
    int node = queue.front();
    queue.pop_front();
    for (int edge_id : graph.OutEdges(node)) {
      int next = graph.edge(edge_id).to;
      if (!visited[next]) {
        visited[next] = true;
        queue.push_back(next);
      }
    }
  }
  return visited;
}

BoolMatrix TransitiveClosure(const Digraph& graph) {
  const int n = graph.num_nodes();
  BoolMatrix closure(n, n);
  // Process nodes in reverse topological order of SCC condensation would be
  // faster; for the small graphs this is used on, per-node BFS suffices.
  for (int source = 0; source < n; ++source) {
    std::vector<bool> reachable = ReachableFrom(graph, source);
    for (int target = 0; target < n; ++target) {
      if (reachable[target]) closure.Set(source, target);
    }
  }
  return closure;
}

std::vector<int> TopologicalOrder(const Digraph& graph) {
  const int n = graph.num_nodes();
  std::vector<int> in_degree(n, 0);
  for (int node = 0; node < n; ++node) {
    in_degree[node] = graph.InDegree(node);
  }
  std::deque<int> ready;
  for (int node = 0; node < n; ++node) {
    if (in_degree[node] == 0) ready.push_back(node);
  }
  std::vector<int> order;
  order.reserve(n);
  while (!ready.empty()) {
    int node = ready.front();
    ready.pop_front();
    order.push_back(node);
    for (int edge_id : graph.OutEdges(node)) {
      int next = graph.edge(edge_id).to;
      if (--in_degree[next] == 0) ready.push_back(next);
    }
  }
  if (static_cast<int>(order.size()) != n) return {};
  return order;
}

}  // namespace fvl
