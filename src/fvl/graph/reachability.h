// Graph reachability helpers: single-source BFS and all-pairs transitive
// closure (bitset rows). Reachability here is reflexive, matching the
// paper's footnote 4 ("a vertex is said to be reachable from itself").

#ifndef FVL_GRAPH_REACHABILITY_H_
#define FVL_GRAPH_REACHABILITY_H_

#include <vector>

#include "fvl/graph/digraph.h"
#include "fvl/util/boolean_matrix.h"

namespace fvl {

// Nodes reachable from `source` (including `source` itself).
std::vector<bool> ReachableFrom(const Digraph& graph, int source);

// All-pairs reflexive transitive closure; entry (u, v) is true iff v is
// reachable from u. Quadratic memory — use only on small graphs (tests,
// specification-sized structures).
BoolMatrix TransitiveClosure(const Digraph& graph);

// Topological order of a DAG; returns empty if the graph has a cycle.
std::vector<int> TopologicalOrder(const Digraph& graph);

}  // namespace fvl

#endif  // FVL_GRAPH_REACHABILITY_H_
