// Directed multigraph with stable edge ids.
//
// Used as the substrate for production graphs (which need parallel edges —
// a workflow with two instances of the same module induces two edges) and
// for the port-level provenance graphs.

#ifndef FVL_GRAPH_DIGRAPH_H_
#define FVL_GRAPH_DIGRAPH_H_

#include <vector>

namespace fvl {

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(int num_nodes);

  // Adds a node; returns its id.
  int AddNode();
  // Adds an edge; returns its id. Parallel edges and self-loops are allowed.
  int AddEdge(int from, int to);

  int num_nodes() const { return static_cast<int>(out_edges_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  struct Edge {
    int from;
    int to;
  };
  const Edge& edge(int edge_id) const { return edges_[edge_id]; }

  // Ids of edges leaving / entering a node, in insertion order.
  const std::vector<int>& OutEdges(int node) const { return out_edges_[node]; }
  const std::vector<int>& InEdges(int node) const { return in_edges_[node]; }

  int OutDegree(int node) const {
    return static_cast<int>(out_edges_[node].size());
  }
  int InDegree(int node) const {
    return static_cast<int>(in_edges_[node].size());
  }

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> out_edges_;
  std::vector<std::vector<int>> in_edges_;
};

}  // namespace fvl

#endif  // FVL_GRAPH_DIGRAPH_H_
