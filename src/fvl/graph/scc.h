// Strongly connected components (iterative Tarjan).

#ifndef FVL_GRAPH_SCC_H_
#define FVL_GRAPH_SCC_H_

#include <vector>

#include "fvl/graph/digraph.h"

namespace fvl {

struct SccResult {
  // Component id per node; components are numbered in reverse topological
  // order (an edge between distinct components goes from a higher id to a
  // lower id).
  std::vector<int> component;
  int num_components = 0;

  // Nodes grouped by component.
  std::vector<std::vector<int>> Members() const;
};

SccResult StronglyConnectedComponents(const Digraph& graph);

}  // namespace fvl

#endif  // FVL_GRAPH_SCC_H_
