#include "fvl/graph/scc.h"

#include <algorithm>

namespace fvl {

std::vector<std::vector<int>> SccResult::Members() const {
  std::vector<std::vector<int>> members(num_components);
  for (int node = 0; node < static_cast<int>(component.size()); ++node) {
    members[component[node]].push_back(node);
  }
  return members;
}

SccResult StronglyConnectedComponents(const Digraph& graph) {
  const int n = graph.num_nodes();
  SccResult result;
  result.component.assign(n, -1);

  std::vector<int> index(n, -1);
  std::vector<int> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int next_index = 0;

  // Explicit DFS stack: (node, position in its out-edge list).
  struct Frame {
    int node;
    size_t edge_pos;
  };
  std::vector<Frame> frames;

  for (int root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      int node = frame.node;
      const auto& out = graph.OutEdges(node);
      if (frame.edge_pos < out.size()) {
        int next = graph.edge(out[frame.edge_pos++]).to;
        if (index[next] == -1) {
          index[next] = lowlink[next] = next_index++;
          stack.push_back(next);
          on_stack[next] = true;
          frames.push_back({next, 0});
        } else if (on_stack[next]) {
          lowlink[node] = std::min(lowlink[node], index[next]);
        }
      } else {
        frames.pop_back();
        if (!frames.empty()) {
          int parent = frames.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[node]);
        }
        if (lowlink[node] == index[node]) {
          int component_id = result.num_components++;
          while (true) {
            int member = stack.back();
            stack.pop_back();
            on_stack[member] = false;
            result.component[member] = component_id;
            if (member == node) break;
          }
        }
      }
    }
  }
  return result;
}

}  // namespace fvl
