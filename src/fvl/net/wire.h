// Wire protocol of the provenance server (docs/SERVER.md): length-framed
// request/response messages over a byte stream, encoded with the same
// hardened primitives as the blob formats — little-endian u64 fields
// (LabelStore::AppendU64/ReadU64, wraparound-safe) and BitWriter/BitReader
// bit-packed boolean vectors.
//
//   Frame            := u64 payload_len | payload        (len in [1, max])
//   Request payload  := u8 MsgType | body
//   Response payload := u8 0x80 | body                   (ok)
//                     | u8 0x81 | u8 ErrorCode | u64 len | message  (error)
//
// Decoding is total: any byte sequence either yields a well-formed message
// or a recoverable error (kMalformedBlob) — never an abort, never a read
// past the buffer, never an attacker-sized allocation (every count is
// validated against the bytes actually present before it is trusted).
// tests/net_protocol_test.cc holds the byte-flip/truncation/oversize
// corpus backing that claim.

#ifndef FVL_NET_WIRE_H_
#define FVL_NET_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fvl/core/view_label.h"
#include "fvl/run/run.h"
#include "fvl/service/provenance_service.h"
#include "fvl/util/status.h"
#include "fvl/workflow/view.h"

namespace fvl::net {

// Frames above this payload size are protocol violations: the connection
// is closed rather than the length trusted (a 4-byte flip must not turn
// into an exabyte allocation).
inline constexpr uint64_t kMaxFramePayload = uint64_t{1} << 26;  // 64 MiB

// Protocol version reported by kPing. Bump on any wire-shape change —
// ReadFields-style decoders reject both short and long bodies, so a skewed
// peer must be detectable by the ping handshake rather than failing later
// with a misleading truncated-field/trailing-bytes error.
//   1 — initial framed protocol (kStats body: 4 u64 fields).
//   2 — kStats body widened to 8 u64 fields (serving-cache counters).
//   3 — on-disk tier ops added (kOpenIndexFile, kCompactFiles).
inline constexpr uint64_t kProtocolVersion = 3;

enum class MsgType : uint8_t {
  kPing = 1,
  kRegisterView = 2,
  kBeginRun = 3,
  kApply = 4,
  kSnapshot = 5,
  kSnapshotDelta = 6,
  kDepends = 7,  // point query; the server coalesces these into batches
  kDependsMany = 8,
  kVisibilitySweep = 9,
  kMergeRuns = 10,
  kQueryAcrossRuns = 11,
  kStats = 12,
  // On-disk tier (docs/ARCHITECTURE.md): paths are resolved on the
  // *server's* filesystem — the client names an archive, the server maps
  // or writes it.
  kOpenIndexFile = 13,  // map an archive file, register it as an index
  kCompactFiles = 14,   // LSM-style re-merge of archive files
};

inline constexpr uint8_t kOkByte = 0x80;
inline constexpr uint8_t kErrorByte = 0x81;

// --- Framing ---------------------------------------------------------------

enum class FrameStatus {
  kFrame,     // *payload points into `buffer`, *frame_size bytes consumed
  kNeedMore,  // the buffer holds a prefix of a valid frame
  kBad,       // unrecoverable framing violation (zero/oversize length):
              // the stream has no trustworthy resynchronization point,
              // so the connection must close
};

FrameStatus TryExtractFrame(std::string_view buffer, size_t* frame_size,
                            std::string_view* payload);

// Appends `u64 len | payload` to *out.
void AppendFrame(std::string* out, std::string_view payload);

// --- Requests --------------------------------------------------------------

// Decoded request: one bag struct for all message types (the unused fields
// of a given type are left at their defaults).
struct Request {
  MsgType type = MsgType::kPing;
  uint64_t session_id = 0;
  uint64_t view_id = 0;
  uint64_t index_id = 0;  // the merged-index id for kQueryAcrossRuns
  ViewLabelMode mode = ViewLabelMode::kQueryEfficient;
  uint64_t instance = 0;
  uint64_t production = 0;
  uint64_t d1 = 0;
  uint64_t d2 = 0;
  std::vector<std::pair<int, int>> pairs;             // kDependsMany
  std::vector<std::pair<RunItem, RunItem>> run_pairs;  // kQueryAcrossRuns
  std::vector<uint64_t> index_ids;                    // kMergeRuns
  View view;                                          // kRegisterView
  bool merged_file = false;              // kOpenIndexFile: archive kind
  std::string path;                      // kOpenIndexFile; kCompactFiles out
  std::vector<std::string> input_paths;  // kCompactFiles
};

// Total decoder: kMalformedBlob on any violation (unknown type, truncated
// body, counts that exceed the bytes present, fields outside their domain,
// trailing bytes).
[[nodiscard]] Result<Request> DecodeRequest(std::string_view payload);

// Allocation-free fast path for the hottest message. A point query is one
// fixed-shape 41-byte payload; the general decoder routes it through the
// Request bag (four vectors plus a View constructed and destroyed per
// frame), which is pure overhead at hundreds of thousands of frames per
// second. DecodeDependsRequest accepts exactly the payloads DecodeRequest
// would for MsgType::kDepends — the equivalence is under test — and the
// server and client hot loops use only this pair.
struct DependsRequest {
  uint64_t view_id = 0;
  uint64_t index_id = 0;
  ViewLabelMode mode = ViewLabelMode::kQueryEfficient;
  uint64_t d1 = 0;
  uint64_t d2 = 0;
};
bool DecodeDependsRequest(std::string_view payload, DependsRequest* request);
// Appends the already-framed request (`u64 len | payload`) to *out.
void AppendDependsRequestFrame(std::string* out, uint64_t view_id,
                               uint64_t index_id, ViewLabelMode mode,
                               uint64_t d1, uint64_t d2);

// Request encoders (the payload only — callers frame with AppendFrame).
std::string EncodePingRequest();
std::string EncodeRegisterViewRequest(const View& view);
std::string EncodeBeginRunRequest();
std::string EncodeApplyRequest(uint64_t session_id, uint64_t instance,
                               uint64_t production);
std::string EncodeSnapshotRequest(uint64_t session_id, bool delta);
std::string EncodeDependsRequest(uint64_t view_id, uint64_t index_id,
                                 ViewLabelMode mode, uint64_t d1, uint64_t d2);
std::string EncodeDependsManyRequest(
    uint64_t view_id, uint64_t index_id, ViewLabelMode mode,
    std::span<const std::pair<int, int>> queries);
std::string EncodeVisibilitySweepRequest(uint64_t view_id, uint64_t index_id,
                                         ViewLabelMode mode);
std::string EncodeMergeRunsRequest(std::span<const uint64_t> index_ids);
std::string EncodeQueryAcrossRunsRequest(
    uint64_t view_id, uint64_t merged_id, ViewLabelMode mode,
    std::span<const std::pair<RunItem, RunItem>> queries);
std::string EncodeStatsRequest();
// Body: `u8 merged | u64 len | path`. The path names a file on the
// server's filesystem (the server maps it; the bytes never cross the
// wire).
std::string EncodeOpenIndexFileRequest(std::string_view path, bool merged);
// Body: `u64 out_len | out_path | u64 count | (u64 len | path)*`.
std::string EncodeCompactFilesRequest(std::span<const std::string> input_paths,
                                      std::string_view output_path);

// --- Responses -------------------------------------------------------------

// `u8 kOkByte | body`.
std::string OkResponse(std::string_view body = {});
// `u8 kErrorByte | u8 code | u64 len | message` for a non-OK status.
std::string ErrorResponse(const Status& status);

// Splits a response payload: the body on success, the reconstructed error
// Status for an error response, kMalformedBlob for anything else.
[[nodiscard]] Result<std::string_view> ParseResponse(std::string_view payload);

// --- Shared field codecs ---------------------------------------------------

void AppendU64(std::string* out, uint64_t value);
bool ReadU64(std::string_view blob, size_t* pos, uint64_t* value);

// Bit-packed bool vector: `u64 count | ceil(count/64) x u64 words`
// (BitWriter layout). DecodeBools validates the count against the bytes
// present before allocating.
void AppendBools(std::string* out, const std::vector<bool>& bits);
bool DecodeBools(std::string_view blob, size_t* pos, std::vector<bool>* bits);

// View payload: expandable flags plus the defined perceived-dependency
// matrices, all bit-packed. DecodeView caps module counts and matrix
// dimensions (structural validation beyond shape is the service's
// RegisterView).
void AppendView(std::string* out, const View& view);
bool DecodeView(std::string_view blob, size_t* pos, View* view);

}  // namespace fvl::net

#endif  // FVL_NET_WIRE_H_
