#include "fvl/net/wire.h"

#include <limits>

#include "fvl/core/label_store.h"
#include "fvl/util/bitstream.h"

namespace fvl::net {
namespace {

// Domain caps for decoded structure sizes. Anything a hostile peer could
// inflate is bounded either by these or by the bytes actually present in
// the payload (itself capped at kMaxFramePayload).
constexpr uint64_t kMaxModules = uint64_t{1} << 16;
constexpr uint64_t kMaxPorts = uint64_t{1} << 12;
constexpr uint64_t kMaxItemId = std::numeric_limits<int>::max();

Status Malformed(const char* what) {
  return Status::Error(ErrorCode::kMalformedBlob,
                       std::string("malformed request: ") + what);
}

}  // namespace

void AppendU64(std::string* out, uint64_t value) {
  LabelStore::AppendU64(out, value);
}

bool ReadU64(std::string_view blob, size_t* pos, uint64_t* value) {
  return LabelStore::ReadU64(blob, pos, value);
}

// --- Framing ---------------------------------------------------------------

FrameStatus TryExtractFrame(std::string_view buffer, size_t* frame_size,
                            std::string_view* payload) {
  size_t pos = 0;
  uint64_t len = 0;
  if (!ReadU64(buffer, &pos, &len)) return FrameStatus::kNeedMore;
  if (len == 0 || len > kMaxFramePayload) return FrameStatus::kBad;
  if (buffer.size() - pos < len) return FrameStatus::kNeedMore;
  *frame_size = pos + static_cast<size_t>(len);
  *payload = buffer.substr(pos, static_cast<size_t>(len));
  return FrameStatus::kFrame;
}

void AppendFrame(std::string* out, std::string_view payload) {
  FVL_CHECK(!payload.empty() && payload.size() <= kMaxFramePayload);
  AppendU64(out, payload.size());
  out->append(payload);
}

// --- Bit-packed vectors ----------------------------------------------------

void AppendBools(std::string* out, const std::vector<bool>& bits) {
  BitWriter writer;
  for (bool bit : bits) writer.WriteFixed(bit ? 1 : 0, 1);
  AppendU64(out, bits.size());
  for (uint64_t word : writer.words()) AppendU64(out, word);
}

bool DecodeBools(std::string_view blob, size_t* pos, std::vector<bool>* bits) {
  uint64_t count = 0;
  if (!ReadU64(blob, pos, &count)) return false;
  // 8 bits per payload byte is the densest a valid count can be; anything
  // larger promises words the frame cannot contain.
  if (count > kMaxFramePayload * 8) return false;
  uint64_t words = (count + 63) / 64;
  if (words > (blob.size() - *pos) / 8) return false;
  std::vector<uint64_t> packed(words);
  for (uint64_t w = 0; w < words; ++w) {
    if (!ReadU64(blob, pos, &packed[w])) return false;
  }
  bits->assign(count, false);
  if (count == 0) return true;
  BitReader reader(&packed, 0, static_cast<int64_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    (*bits)[i] = reader.ReadFixed(1) != 0;
  }
  return true;
}

// --- Views -----------------------------------------------------------------

void AppendView(std::string* out, const View& view) {
  AppendU64(out, view.expandable.size());
  AppendBools(out, view.expandable);
  int defined = 0;
  for (int m = 0; m < view.perceived.num_modules(); ++m) {
    if (view.perceived.IsDefined(m)) ++defined;
  }
  AppendU64(out, defined);
  for (int m = 0; m < view.perceived.num_modules(); ++m) {
    if (!view.perceived.IsDefined(m)) continue;
    const BoolMatrix& deps = view.perceived.Get(m);
    AppendU64(out, static_cast<uint64_t>(m));
    AppendU64(out, deps.rows());
    AppendU64(out, deps.cols());
    std::vector<bool> bits(static_cast<size_t>(deps.rows()) * deps.cols());
    for (int r = 0; r < deps.rows(); ++r) {
      for (int c = 0; c < deps.cols(); ++c) {
        bits[static_cast<size_t>(r) * deps.cols() + c] = deps.Get(r, c);
      }
    }
    AppendBools(out, bits);
  }
}

bool DecodeView(std::string_view blob, size_t* pos, View* view) {
  uint64_t num_modules = 0;
  if (!ReadU64(blob, pos, &num_modules)) return false;
  if (num_modules > kMaxModules) return false;
  std::vector<bool> expandable;
  if (!DecodeBools(blob, pos, &expandable)) return false;
  if (expandable.size() != num_modules) return false;
  uint64_t defined = 0;
  if (!ReadU64(blob, pos, &defined)) return false;
  if (defined > num_modules) return false;
  DependencyAssignment perceived(static_cast<int>(num_modules));
  uint64_t previous_module = 0;
  for (uint64_t d = 0; d < defined; ++d) {
    uint64_t module = 0, rows = 0, cols = 0;
    if (!ReadU64(blob, pos, &module) || !ReadU64(blob, pos, &rows) ||
        !ReadU64(blob, pos, &cols)) {
      return false;
    }
    if (module >= num_modules) return false;
    if (d > 0 && module <= previous_module) return false;  // sorted, unique
    previous_module = module;
    if (rows > kMaxPorts || cols > kMaxPorts) return false;
    std::vector<bool> bits;
    if (!DecodeBools(blob, pos, &bits)) return false;
    if (bits.size() != rows * cols) return false;
    BoolMatrix deps(static_cast<int>(rows), static_cast<int>(cols));
    for (uint64_t r = 0; r < rows; ++r) {
      for (uint64_t c = 0; c < cols; ++c) {
        if (bits[r * cols + c]) {
          deps.Set(static_cast<int>(r), static_cast<int>(c));
        }
      }
    }
    perceived.Set(static_cast<int>(module), std::move(deps));
  }
  view->expandable = std::move(expandable);
  view->perceived = std::move(perceived);
  return true;
}

// --- Request decoding ------------------------------------------------------

namespace {

bool ReadMode(std::string_view blob, size_t* pos, ViewLabelMode* mode) {
  uint64_t value = 0;
  if (!ReadU64(blob, pos, &value)) return false;
  if (value > 2) return false;
  *mode = static_cast<ViewLabelMode>(value);
  return true;
}

bool ReadItemId(std::string_view blob, size_t* pos, uint64_t* value) {
  return ReadU64(blob, pos, value) && *value <= kMaxItemId;
}

// Archive paths on the wire: `u64 len | bytes`, capped well under the
// frame limit so a flipped length byte cannot demand a gigabyte string
// (PATH_MAX is 4096 on every target we build for).
constexpr uint64_t kMaxWirePathLength = 4096;

bool ReadPath(std::string_view blob, size_t* pos, std::string* path) {
  uint64_t length = 0;
  if (!ReadU64(blob, pos, &length)) return false;
  if (length > kMaxWirePathLength || length > blob.size() - *pos) return false;
  path->assign(blob.substr(*pos, static_cast<size_t>(length)));
  *pos += static_cast<size_t>(length);
  return true;
}

void AppendPath(std::string* out, std::string_view path) {
  AppendU64(out, path.size());
  out->append(path);
}

}  // namespace

Result<Request> DecodeRequest(std::string_view payload) {
  if (payload.empty()) return Malformed("empty payload");
  uint8_t type_byte = static_cast<uint8_t>(payload[0]);
  if (type_byte < static_cast<uint8_t>(MsgType::kPing) ||
      type_byte > static_cast<uint8_t>(MsgType::kCompactFiles)) {
    return Malformed("unknown message type");
  }
  Request request;
  request.type = static_cast<MsgType>(type_byte);
  size_t pos = 1;
  switch (request.type) {
    case MsgType::kPing:
    case MsgType::kBeginRun:
    case MsgType::kStats:
      break;  // no body
    case MsgType::kRegisterView:
      if (!DecodeView(payload, &pos, &request.view)) {
        return Malformed("bad view encoding");
      }
      break;
    case MsgType::kApply:
      if (!ReadU64(payload, &pos, &request.session_id) ||
          !ReadItemId(payload, &pos, &request.instance) ||
          !ReadItemId(payload, &pos, &request.production)) {
        return Malformed("bad apply body");
      }
      break;
    case MsgType::kSnapshot:
    case MsgType::kSnapshotDelta:
      if (!ReadU64(payload, &pos, &request.session_id)) {
        return Malformed("bad snapshot body");
      }
      break;
    case MsgType::kDepends:
      if (!ReadU64(payload, &pos, &request.view_id) ||
          !ReadU64(payload, &pos, &request.index_id) ||
          !ReadMode(payload, &pos, &request.mode) ||
          !ReadItemId(payload, &pos, &request.d1) ||
          !ReadItemId(payload, &pos, &request.d2)) {
        return Malformed("bad depends body");
      }
      break;
    case MsgType::kDependsMany: {
      uint64_t count = 0;
      if (!ReadU64(payload, &pos, &request.view_id) ||
          !ReadU64(payload, &pos, &request.index_id) ||
          !ReadMode(payload, &pos, &request.mode) ||
          !ReadU64(payload, &pos, &count)) {
        return Malformed("bad depends-many body");
      }
      if (count > (payload.size() - pos) / 16) {
        return Malformed("depends-many count exceeds payload");
      }
      request.pairs.reserve(static_cast<size_t>(count));
      for (uint64_t q = 0; q < count; ++q) {
        uint64_t d1 = 0, d2 = 0;
        if (!ReadItemId(payload, &pos, &d1) ||
            !ReadItemId(payload, &pos, &d2)) {
          return Malformed("bad depends-many pair");
        }
        request.pairs.emplace_back(static_cast<int>(d1),
                                   static_cast<int>(d2));
      }
      break;
    }
    case MsgType::kVisibilitySweep:
      if (!ReadU64(payload, &pos, &request.view_id) ||
          !ReadU64(payload, &pos, &request.index_id) ||
          !ReadMode(payload, &pos, &request.mode)) {
        return Malformed("bad visibility-sweep body");
      }
      break;
    case MsgType::kMergeRuns: {
      uint64_t count = 0;
      if (!ReadU64(payload, &pos, &count)) {
        return Malformed("bad merge-runs body");
      }
      if (count > (payload.size() - pos) / 8) {
        return Malformed("merge-runs count exceeds payload");
      }
      request.index_ids.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t id = 0;
        if (!ReadU64(payload, &pos, &id)) {
          return Malformed("bad merge-runs id");
        }
        request.index_ids.push_back(id);
      }
      break;
    }
    case MsgType::kQueryAcrossRuns: {
      uint64_t count = 0;
      if (!ReadU64(payload, &pos, &request.view_id) ||
          !ReadU64(payload, &pos, &request.index_id) ||
          !ReadMode(payload, &pos, &request.mode) ||
          !ReadU64(payload, &pos, &count)) {
        return Malformed("bad query-across-runs body");
      }
      if (count > (payload.size() - pos) / 32) {
        return Malformed("query-across-runs count exceeds payload");
      }
      request.run_pairs.reserve(static_cast<size_t>(count));
      for (uint64_t q = 0; q < count; ++q) {
        uint64_t fields[4];
        for (uint64_t& field : fields) {
          if (!ReadItemId(payload, &pos, &field)) {
            return Malformed("bad query-across-runs pair");
          }
        }
        request.run_pairs.push_back(
            {RunItem{static_cast<int>(fields[0]), static_cast<int>(fields[1])},
             RunItem{static_cast<int>(fields[2]),
                     static_cast<int>(fields[3])}});
      }
      break;
    }
    case MsgType::kOpenIndexFile: {
      if (pos >= payload.size()) return Malformed("bad open-index-file body");
      uint8_t merged = static_cast<uint8_t>(payload[pos++]);
      if (merged > 1) return Malformed("bad open-index-file kind");
      request.merged_file = merged != 0;
      if (!ReadPath(payload, &pos, &request.path)) {
        return Malformed("bad open-index-file path");
      }
      break;
    }
    case MsgType::kCompactFiles: {
      uint64_t count = 0;
      if (!ReadPath(payload, &pos, &request.path) ||
          !ReadU64(payload, &pos, &count)) {
        return Malformed("bad compact-files body");
      }
      if (count > (payload.size() - pos) / 8) {
        return Malformed("compact-files count exceeds payload");
      }
      request.input_paths.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; ++i) {
        std::string input;
        if (!ReadPath(payload, &pos, &input)) {
          return Malformed("bad compact-files path");
        }
        request.input_paths.push_back(std::move(input));
      }
      break;
    }
  }
  if (pos != payload.size()) return Malformed("trailing bytes");
  return request;
}

// --- Request encoding ------------------------------------------------------

namespace {

std::string WithType(MsgType type) {
  return std::string(1, static_cast<char>(type));
}

}  // namespace

std::string EncodePingRequest() { return WithType(MsgType::kPing); }

std::string EncodeRegisterViewRequest(const View& view) {
  std::string payload = WithType(MsgType::kRegisterView);
  AppendView(&payload, view);
  return payload;
}

std::string EncodeBeginRunRequest() { return WithType(MsgType::kBeginRun); }

std::string EncodeApplyRequest(uint64_t session_id, uint64_t instance,
                               uint64_t production) {
  std::string payload = WithType(MsgType::kApply);
  AppendU64(&payload, session_id);
  AppendU64(&payload, instance);
  AppendU64(&payload, production);
  return payload;
}

std::string EncodeSnapshotRequest(uint64_t session_id, bool delta) {
  std::string payload =
      WithType(delta ? MsgType::kSnapshotDelta : MsgType::kSnapshot);
  AppendU64(&payload, session_id);
  return payload;
}

std::string EncodeDependsRequest(uint64_t view_id, uint64_t index_id,
                                 ViewLabelMode mode, uint64_t d1,
                                 uint64_t d2) {
  std::string payload = WithType(MsgType::kDepends);
  AppendU64(&payload, view_id);
  AppendU64(&payload, index_id);
  AppendU64(&payload, static_cast<uint64_t>(mode));
  AppendU64(&payload, d1);
  AppendU64(&payload, d2);
  return payload;
}

bool DecodeDependsRequest(std::string_view payload, DependsRequest* request) {
  if (payload.empty() ||
      payload[0] != static_cast<char>(MsgType::kDepends)) {
    return false;
  }
  size_t pos = 1;
  return ReadU64(payload, &pos, &request->view_id) &&
         ReadU64(payload, &pos, &request->index_id) &&
         ReadMode(payload, &pos, &request->mode) &&
         ReadItemId(payload, &pos, &request->d1) &&
         ReadItemId(payload, &pos, &request->d2) && pos == payload.size();
}

void AppendDependsRequestFrame(std::string* out, uint64_t view_id,
                               uint64_t index_id, ViewLabelMode mode,
                               uint64_t d1, uint64_t d2) {
  AppendU64(out, 41);  // 1 type byte + 5 u64 fields
  out->push_back(static_cast<char>(MsgType::kDepends));
  AppendU64(out, view_id);
  AppendU64(out, index_id);
  AppendU64(out, static_cast<uint64_t>(mode));
  AppendU64(out, d1);
  AppendU64(out, d2);
}

std::string EncodeDependsManyRequest(
    uint64_t view_id, uint64_t index_id, ViewLabelMode mode,
    std::span<const std::pair<int, int>> queries) {
  std::string payload = WithType(MsgType::kDependsMany);
  AppendU64(&payload, view_id);
  AppendU64(&payload, index_id);
  AppendU64(&payload, static_cast<uint64_t>(mode));
  AppendU64(&payload, queries.size());
  for (const auto& [d1, d2] : queries) {
    AppendU64(&payload, static_cast<uint64_t>(d1));
    AppendU64(&payload, static_cast<uint64_t>(d2));
  }
  return payload;
}

std::string EncodeVisibilitySweepRequest(uint64_t view_id, uint64_t index_id,
                                         ViewLabelMode mode) {
  std::string payload = WithType(MsgType::kVisibilitySweep);
  AppendU64(&payload, view_id);
  AppendU64(&payload, index_id);
  AppendU64(&payload, static_cast<uint64_t>(mode));
  return payload;
}

std::string EncodeMergeRunsRequest(std::span<const uint64_t> index_ids) {
  std::string payload = WithType(MsgType::kMergeRuns);
  AppendU64(&payload, index_ids.size());
  for (uint64_t id : index_ids) AppendU64(&payload, id);
  return payload;
}

std::string EncodeQueryAcrossRunsRequest(
    uint64_t view_id, uint64_t merged_id, ViewLabelMode mode,
    std::span<const std::pair<RunItem, RunItem>> queries) {
  std::string payload = WithType(MsgType::kQueryAcrossRuns);
  AppendU64(&payload, view_id);
  AppendU64(&payload, merged_id);
  AppendU64(&payload, static_cast<uint64_t>(mode));
  AppendU64(&payload, queries.size());
  for (const auto& [a, b] : queries) {
    AppendU64(&payload, static_cast<uint64_t>(a.run));
    AppendU64(&payload, static_cast<uint64_t>(a.item));
    AppendU64(&payload, static_cast<uint64_t>(b.run));
    AppendU64(&payload, static_cast<uint64_t>(b.item));
  }
  return payload;
}

std::string EncodeStatsRequest() { return WithType(MsgType::kStats); }

std::string EncodeOpenIndexFileRequest(std::string_view path, bool merged) {
  std::string payload = WithType(MsgType::kOpenIndexFile);
  payload.push_back(merged ? '\x01' : '\x00');
  AppendPath(&payload, path);
  return payload;
}

std::string EncodeCompactFilesRequest(std::span<const std::string> input_paths,
                                      std::string_view output_path) {
  std::string payload = WithType(MsgType::kCompactFiles);
  AppendPath(&payload, output_path);
  AppendU64(&payload, input_paths.size());
  for (const std::string& path : input_paths) AppendPath(&payload, path);
  return payload;
}

// --- Responses -------------------------------------------------------------

std::string OkResponse(std::string_view body) {
  std::string payload(1, static_cast<char>(kOkByte));
  payload.append(body);
  return payload;
}

std::string ErrorResponse(const Status& status) {
  FVL_CHECK(!status.ok());
  std::string payload(1, static_cast<char>(kErrorByte));
  payload.push_back(static_cast<char>(status.code()));
  AppendU64(&payload, status.message().size());
  payload.append(status.message());
  return payload;
}

Result<std::string_view> ParseResponse(std::string_view payload) {
  if (payload.empty()) {
    return Status::Error(ErrorCode::kMalformedBlob, "empty response payload");
  }
  uint8_t head = static_cast<uint8_t>(payload[0]);
  if (head == kOkByte) return payload.substr(1);
  if (head != kErrorByte) {
    return Status::Error(ErrorCode::kMalformedBlob,
                         "unknown response payload type");
  }
  if (payload.size() < 2) {
    return Status::Error(ErrorCode::kMalformedBlob, "truncated error frame");
  }
  uint8_t code_byte = static_cast<uint8_t>(payload[1]);
  if (code_byte == static_cast<uint8_t>(ErrorCode::kOk) ||
      code_byte > static_cast<uint8_t>(ErrorCode::kUnavailable)) {
    return Status::Error(ErrorCode::kMalformedBlob,
                         "error frame carries an unknown code");
  }
  size_t pos = 2;
  uint64_t length = 0;
  if (!ReadU64(payload, &pos, &length) || payload.size() - pos != length) {
    return Status::Error(ErrorCode::kMalformedBlob,
                         "error frame message length mismatch");
  }
  return Status::Error(static_cast<ErrorCode>(code_byte),
                       std::string(payload.substr(pos)));
}

}  // namespace fvl::net
