// Minimal RAII wrappers over POSIX loopback TCP — just enough socket for
// the provenance server and client, with every fallible call surfaced as a
// Status instead of errno spelunking at the call sites.
//
// Scope decisions: IPv4 loopback only (the server fronts an in-process
// service; cross-host deployment would add name resolution here, nothing
// above this layer changes), blocking I/O plus one non-blocking receive
// used by the server's greedy frame coalescing, TCP_NODELAY everywhere
// (the protocol is request/response; Nagle would serialize pipelined point
// queries), and MSG_NOSIGNAL so a peer that vanished mid-write is a Status,
// not a SIGPIPE.

#ifndef FVL_NET_SOCKET_H_
#define FVL_NET_SOCKET_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>

#include "fvl/util/status.h"

namespace fvl::net {

// Owning file-descriptor handle (move-only).
//
// Thread contract: the Shutdown* calls only read the descriptor and may be
// made from another thread to unblock a parked reader/writer (that is their
// whole point). Close() and the move operations write it, so they must be
// reserved to the owning thread, after any thread that might touch the
// socket has been joined — close() frees the fd *number*, which the kernel
// can immediately reuse for an unrelated descriptor. net/server.cc's
// shutdown-then-join-then-destroy sequence is the canonical pattern; the
// field stays a plain int deliberately so TSan flags any violation.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void Close();
  // shutdown(SHUT_RDWR): unblocks any thread parked in recv/accept on this
  // socket without racing the descriptor's lifetime (Close alone would).
  void ShutdownBoth();
  // shutdown(SHUT_RD) only: wakes a parked reader while keeping the write
  // side open, so responses to already-received requests still go out —
  // the drain half of ProvenanceServer::Stop.
  void ShutdownRead();
  // shutdown(SHUT_WR) only: signals EOF to the peer while keeping our read
  // side open to drain whatever it still sends.
  void ShutdownWrite();

 private:
  int fd_ = -1;
};

// Listening socket bound to 127.0.0.1:port (port 0 picks an ephemeral
// port; read it back with LocalPort).
[[nodiscard]] Result<Socket> TcpListen(int port, int backlog = 64);
[[nodiscard]] Result<int> LocalPort(const Socket& socket);

// Blocking connect to 127.0.0.1:port with TCP_NODELAY set.
[[nodiscard]] Result<Socket> TcpConnect(int port);

// Blocking accept; TCP_NODELAY is set on the returned socket.
// kUnavailable when the listener was shut down.
[[nodiscard]] Result<Socket> Accept(const Socket& listener);

// Writes all of `bytes` (retrying short writes and EINTR).
[[nodiscard]] Status WriteAll(const Socket& socket, std::string_view bytes);

// One receive into buf[0, capacity). eof is set when the peer closed;
// would_block only when non_blocking and no data was ready. n is 0 in both
// of those cases. Transport errors (reset, shutdown) are kUnavailable.
struct ReadOutcome {
  size_t n = 0;
  bool eof = false;
  bool would_block = false;
};
[[nodiscard]] Result<ReadOutcome> ReadSome(const Socket& socket, char* buf, size_t capacity,
                             bool non_blocking = false);

}  // namespace fvl::net

#endif  // FVL_NET_SOCKET_H_
