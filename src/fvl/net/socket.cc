#include "fvl/net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace fvl::net {
namespace {

Status Unavailable(const char* what) {
  return Status::Error(ErrorCode::kUnavailable,
                       std::string(what) + ": " + std::strerror(errno));
}

void SetNoDelay(int fd) {
  int one = 1;
  // Best-effort: a socket without NODELAY is slower, not wrong.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in LoopbackAddress(int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::ShutdownRead() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

Result<Socket> TcpListen(int port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Unavailable("socket");
  Socket socket(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddress(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Unavailable("bind");
  }
  if (::listen(fd, backlog) != 0) return Unavailable("listen");
  return socket;
}

Result<int> LocalPort(const Socket& socket) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Unavailable("getsockname");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

Result<Socket> TcpConnect(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Unavailable("socket");
  Socket socket(fd);
  sockaddr_in addr = LoopbackAddress(port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Unavailable("connect");
  SetNoDelay(fd);
  return socket;
}

Result<Socket> Accept(const Socket& listener) {
  for (;;) {
    int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      SetNoDelay(fd);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Unavailable("accept");
  }
}

Status WriteAll(const Socket& socket, std::string_view bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::send(socket.fd(), bytes.data() + written,
                       bytes.size() - written, MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Unavailable("send");
  }
  return Status::Ok();
}

Result<ReadOutcome> ReadSome(const Socket& socket, char* buf, size_t capacity,
                             bool non_blocking) {
  for (;;) {
    ssize_t n = ::recv(socket.fd(), buf, capacity,
                       non_blocking ? MSG_DONTWAIT : 0);
    if (n > 0) return ReadOutcome{static_cast<size_t>(n), false, false};
    if (n == 0) return ReadOutcome{0, true, false};
    if (errno == EINTR) continue;
    if (non_blocking && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return ReadOutcome{0, false, true};
    }
    // A reset peer is indistinguishable from a closed one for our callers:
    // the conversation is over either way.
    if (errno == ECONNRESET) return ReadOutcome{0, true, false};
    return Unavailable("recv");
  }
}

}  // namespace fvl::net
