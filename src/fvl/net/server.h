// ProvenanceServer — the framed-TCP front-end the service API was designed
// for (ROADMAP: network front-end + multi-client workload driver).
//
// One server wraps one ProvenanceService and exposes the full session
// lifecycle over the wire protocol of net/wire.h: register-view /
// begin-run / apply / snapshot / snapshot-delta / depends-many /
// visibility-sweep / merge-runs / query-across-runs. Views, sessions,
// snapshots and merged artifacts live server-side behind small integer
// ids, so queries ship ids and answers — never labels or arenas.
//
// Threading: one accept loop, one thread per connection, and one shared
// *batcher* thread. Point dependency queries (MsgType::kDepends) are not
// answered inline: each connection thread greedily drains the run of
// point-query frames already buffered on its socket, enqueues them on the
// batcher, and the batcher folds everything queued across all connections
// into one DependsMany decode pass per (view, index, mode) group. That
// coalescing is the same amortization lever as the in-process batch API —
// per-op decode overhead, not predicate cost, dominates small queries —
// and it is what lets N clients issuing point queries approach batched
// throughput (bench/ycsb_driver.cc measures it; stats().MeanBatchSize()
// must exceed 1 under concurrent load for the lever to be engaged).
//
// Robustness: malformed request payloads are answered with error frames
// (the Status taxonomy travels on the wire) and the connection stays
// usable; framing violations (zero/oversize lengths) close the connection
// after a final error frame, since the stream has no trustworthy
// resynchronization point. A request that fails inside the service is an
// error frame too — the server never aborts on anything a peer sends
// (tests/net_protocol_test.cc fuzzes this contract).
//
// Shutdown: Stop() drains — it stops accepting, lets every in-flight
// request finish and its response reach the socket, then joins all
// threads. Requests arriving after the drain began see connection EOF.

#ifndef FVL_NET_SERVER_H_
#define FVL_NET_SERVER_H_

#include <cstdint>
#include <memory>

#include "fvl/service/provenance_service.h"
#include "fvl/util/status.h"

namespace fvl::net {

struct ServerOptions {
  int port = 0;  // 0 = pick an ephemeral port (read it back with port())
  int backlog = 64;
};

// Monotonic counters since Start (readable live; exposed over the wire via
// MsgType::kStats).
struct ServerStats {
  uint64_t point_queries = 0;  // kDepends requests answered
  uint64_t point_batches = 0;  // DependsMany decode passes serving them
  uint64_t frames = 0;         // request frames processed
  uint64_t connections = 0;    // connections accepted

  // Serving-cache effectiveness, summed over every index and merged index
  // currently registered with the server (each snapshot owns its caches —
  // core/serving_cache.h — so these reset when snapshots are replaced, not
  // when the server restarts).
  uint64_t label_hits = 0;   // decoded-label cache hits
  uint64_t label_misses = 0;
  uint64_t reach_hits = 0;   // reachability-memo hits
  uint64_t reach_misses = 0;

  // Coalescing effectiveness: point queries per decode pass. > 1 means
  // concurrent queries actually shared decode passes.
  double MeanBatchSize() const {
    return point_batches == 0
               ? 0.0
               : static_cast<double>(point_queries) / point_batches;
  }

  double LabelHitRate() const {
    const uint64_t total = label_hits + label_misses;
    return total == 0 ? 0.0 : static_cast<double>(label_hits) / total;
  }
  double ReachHitRate() const {
    const uint64_t total = reach_hits + reach_misses;
    return total == 0 ? 0.0 : static_cast<double>(reach_hits) / total;
  }
};

class ProvenanceServer {
 public:
  // Binds 127.0.0.1:options.port, spawns the accept and batcher threads.
  // kUnavailable if the socket cannot be bound.
  [[nodiscard]] static Result<std::unique_ptr<ProvenanceServer>> Start(
      std::shared_ptr<ProvenanceService> service,
      const ServerOptions& options = {});

  ~ProvenanceServer();
  ProvenanceServer(const ProvenanceServer&) = delete;
  ProvenanceServer& operator=(const ProvenanceServer&) = delete;

  // The bound port (the ephemeral one when options.port was 0).
  int port() const;

  // Drain-and-stop; idempotent. See the class comment.
  void Stop();

  ServerStats stats() const;

 private:
  class Impl;
  explicit ProvenanceServer(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace fvl::net

#endif  // FVL_NET_SERVER_H_
