#include "fvl/net/server.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fvl/core/index.h"
#include "fvl/net/socket.h"
#include "fvl/net/wire.h"
#include "fvl/util/thread_annotations.h"

namespace fvl::net {
namespace {

Status NotFound(const char* what, uint64_t id) {
  return Status::Error(ErrorCode::kNotFound, std::string("unknown ") + what +
                                                 " id " + std::to_string(id));
}

// One queued point query awaiting a shared decode pass. Owned by its
// connection thread; the batcher only touches it between enqueue and the
// done handshake. The handshake fields (status/answer/done) are guarded by
// the server's batch_mu_ — they live outside Impl, so the guard is the
// enqueue/done protocol (checked by TSan) rather than an FVL_GUARDED_BY.
struct PointQuery {
  DependsRequest request;
  // Filled by the batcher.
  Status status;
  bool answer = false;
  bool done = false;
};

// Prebuilt `u64 len | kOkByte | bool` response frames — every point-query
// answer is one of these two constants, appended without allocation.
const std::string& OkBoolFrame(bool answer) {
  static const std::string kTrue = [] {
    std::string out;
    AppendFrame(&out, OkResponse(std::string(1, '\x01')));
    return out;
  }();
  static const std::string kFalse = [] {
    std::string out;
    AppendFrame(&out, OkResponse(std::string(1, '\x00')));
    return out;
  }();
  return answer ? kTrue : kFalse;
}

}  // namespace

class ProvenanceServer::Impl {
 public:
  Impl(std::shared_ptr<ProvenanceService> service, Socket listener, int port)
      : service_(std::move(service)),
        listener_(std::move(listener)),
        port_(port) {}

  void StartThreads() {
    batcher_ = std::thread([this] { BatcherLoop(); });
    acceptor_ = std::thread([this] { AcceptLoop(); });
  }

  int port() const { return port_; }

  ServerStats stats() const FVL_EXCLUDES(state_mu_) {
    ServerStats stats;
    stats.point_queries = point_queries_.load(std::memory_order_relaxed);
    stats.point_batches = point_batches_.load(std::memory_order_relaxed);
    stats.frames = frames_.load(std::memory_order_relaxed);
    stats.connections = connections_accepted_.load(std::memory_order_relaxed);
    // Cache counters live on the snapshots, not the server: sum them over
    // the registered indexes. state_mu_ only guards the map walk — the
    // counters themselves are relaxed atomics, safe to read live.
    MutexLock lock(&state_mu_);
    auto add = [&stats](const ServingCache* cache) {
      if (cache == nullptr) return;
      const ServingCacheStats s = cache->stats();
      stats.label_hits += s.label_hits;
      stats.label_misses += s.label_misses;
      stats.reach_hits += s.reach_hits;
      stats.reach_misses += s.reach_misses;
    };
    for (const auto& [id, index] : indexes_) add(index->serving_cache());
    for (const auto& [id, index] : merged_) add(index->serving_cache());
    return stats;
  }

  void Stop() FVL_EXCLUDES(stop_mu_, conns_mu_, batch_mu_) {
    if (stopping_.exchange(true)) {
      // A concurrent/second Stop still waits for the first drain to finish
      // (destructor-vs-explicit-Stop race).
      MutexLock lock(&stop_mu_);
      return;
    }
    MutexLock lock(&stop_mu_);
    // 1. No new connections.
    listener_.ShutdownBoth();
    if (acceptor_.joinable()) acceptor_.join();
    // 2. Drain: wake every parked reader but keep write sides open, so
    // responses to requests already received still go out. The join runs
    // under conns_mu_ too — the acceptor (the only other writer of
    // connections_) is already joined, and connection threads never take
    // conns_mu_, so holding it across the joins cannot deadlock.
    {
      MutexLock conns_lock(&conns_mu_);
      for (auto& conn : connections_) conn->socket.ShutdownRead();
      for (auto& conn : connections_) {
        if (conn->thread.joinable()) conn->thread.join();
      }
    }
    // 3. The batcher exits once the queue is dry (connection threads are
    // gone, so nothing re-fills it).
    {
      MutexLock batch_lock(&batch_mu_);
      batch_stopping_ = true;
    }
    batch_cv_.NotifyAll();
    if (batcher_.joinable()) batcher_.join();
  }

 private:
  struct Connection {
    Socket socket;
    std::thread thread;
  };

  struct SessionEntry {
    Mutex mu;  // sessions are single-writer; serialize wire mutations
    // The pointer is written once before the entry is published in
    // sessions_; the *session object* behind it is what mu guards.
    std::shared_ptr<ProvenanceSession> session FVL_PT_GUARDED_BY(mu);
  };

  // --- Accept loop --------------------------------------------------------

  void AcceptLoop() FVL_EXCLUDES(conns_mu_) {
    for (;;) {
      Result<Socket> accepted = Accept(listener_);
      if (!accepted.ok()) return;  // listener shut down (or hard failure)
      if (stopping_.load()) return;
      connections_accepted_.fetch_add(1, std::memory_order_relaxed);
      auto conn = std::make_unique<Connection>();
      conn->socket = std::move(accepted).value();
      Connection* raw = conn.get();
      MutexLock lock(&conns_mu_);
      if (stopping_.load()) return;  // raced Stop; drop the connection
      // Connection slots live until Stop joins them — bounded by the
      // process's connection churn, which is fine for a benchmark/test
      // server; a reaper is the upgrade if churn ever matters.
      connections_.push_back(std::move(conn));
      raw->thread = std::thread([this, raw] { ServeConnection(raw); });
    }
  }

  // --- Connection loop ----------------------------------------------------

  void ServeConnection(Connection* conn) {
    std::string buffer;
    char chunk[1 << 16];
    for (;;) {
      size_t frame_size = 0;
      std::string_view payload;
      FrameStatus status = TryExtractFrame(buffer, &frame_size, &payload);
      if (status == FrameStatus::kBad) {
        // Framing violation: no resynchronization point. Final error
        // frame, then close.
        std::string out;
        AppendFrame(&out, ErrorResponse(Status::Error(
                              ErrorCode::kMalformedBlob,
                              "bad frame length (zero or oversize)")));
        (void)WriteAll(conn->socket, out);
        break;
      }
      if (status == FrameStatus::kNeedMore) {
        Result<ReadOutcome> outcome =
            ReadSome(conn->socket, chunk, sizeof(chunk));
        if (!outcome.ok() || outcome->eof) break;
        buffer.append(chunk, outcome->n);
        continue;
      }
      frames_.fetch_add(1, std::memory_order_relaxed);
      // Hot path first: a well-formed point query skips the Request bag
      // (whose vectors would be constructed and destroyed per frame) and
      // goes straight to the batcher.
      DependsRequest point;
      if (DecodeDependsRequest(payload, &point)) {
        if (!ServePointQueryRun(conn, point, frame_size, &buffer)) break;
        continue;
      }
      Result<Request> request = DecodeRequest(payload);
      buffer.erase(0, frame_size);
      if (!request.ok()) {
        // Framing stayed intact — answer the error, keep the connection.
        std::string out;
        AppendFrame(&out, ErrorResponse(request.status()));
        if (!WriteAll(conn->socket, out).ok()) break;
        continue;
      }
      std::string out;
      AppendFrame(&out, HandleRequest(*request));
      if (!WriteAll(conn->socket, out).ok()) break;
    }
    // Tear down the conversation but do NOT close: Stop() may still call
    // ShutdownRead() on this socket, and close() here would free the fd
    // number out from under it (racing the read, and worse, the number can
    // be reused by an unrelated descriptor). The fd is released when the
    // Connection slot is destroyed, after Stop has joined this thread.
    conn->socket.ShutdownBoth();
  }

  // Greedily drains the run of already-buffered point-query frames that
  // starts with `first` (already decoded, `first_size` bytes at the front
  // of *buffer), queues the whole run on the shared batcher, and writes
  // the answers in request order. Pipelined clients land many frames per
  // socket read, so the run length — and with it the batch the decoder
  // amortizes over — grows with load, not with a tuning knob.
  // Returns false when the connection must close.
  bool ServePointQueryRun(Connection* conn, const DependsRequest& first,
                          size_t first_size, std::string* buffer) {
    std::deque<PointQuery> run;  // deque: stable addresses for the queue
    run.emplace_back();
    run.back().request = first;
    size_t pos = first_size;  // consumed prefix; erased once at the end
    bool close_after = false;
    for (;;) {
      size_t frame_size = 0;
      std::string_view payload;
      FrameStatus status = TryExtractFrame(
          std::string_view(*buffer).substr(pos), &frame_size, &payload);
      if (status == FrameStatus::kNeedMore) {
        // Top up without blocking: take what the socket already holds,
        // but never stall the queries we owe answers for.
        char chunk[1 << 16];
        Result<ReadOutcome> outcome = ReadSome(
            conn->socket, chunk, sizeof(chunk), /*non_blocking=*/true);
        if (!outcome.ok()) {
          close_after = true;
          break;
        }
        if (outcome->would_block || outcome->eof) break;
        buffer->append(chunk, outcome->n);
        continue;
      }
      if (status == FrameStatus::kBad) break;  // main loop reports + closes
      // A complete frame: only a decodable point query joins the run;
      // anything else stays buffered for the main loop.
      PointQuery query;
      if (!DecodeDependsRequest(payload, &query.request)) break;
      frames_.fetch_add(1, std::memory_order_relaxed);
      run.push_back(query);
      pos += frame_size;
    }
    buffer->erase(0, pos);

    ExecuteThroughBatcher(run);

    std::string out;
    out.reserve(run.size() * 18);
    for (const PointQuery& query : run) {
      if (query.status.ok()) {
        out.append(OkBoolFrame(query.answer));
      } else {
        AppendFrame(&out, ErrorResponse(query.status));
      }
    }
    if (!WriteAll(conn->socket, out).ok()) return false;
    return !close_after;
  }

  // --- Point-query batcher ------------------------------------------------

  void ExecuteThroughBatcher(std::deque<PointQuery>& run)
      FVL_EXCLUDES(batch_mu_) {
    {
      MutexLock lock(&batch_mu_);
      for (PointQuery& query : run) queue_.push_back(&query);
    }
    batch_cv_.NotifyOne();
    MutexLock lock(&batch_mu_);
    for (;;) {
      bool all_done = true;
      for (const PointQuery& query : run) {
        if (!query.done) {
          all_done = false;
          break;
        }
      }
      if (all_done) return;
      done_cv_.Wait(&batch_mu_);
    }
  }

  void BatcherLoop() FVL_EXCLUDES(batch_mu_) {
    batch_mu_.Lock();
    for (;;) {
      while (queue_.empty() && !batch_stopping_) batch_cv_.Wait(&batch_mu_);
      if (queue_.empty()) break;  // batch_stopping_ and nothing left to serve
      // Take everything queued right now — the pop IS the coalescing
      // window: while one decode pass runs, new arrivals pile up for the
      // next, so batch size tracks concurrency with zero added latency.
      std::vector<PointQuery*> batch;
      batch.swap(queue_);
      batch_mu_.Unlock();
      ExecuteBatch(batch);
      batch_mu_.Lock();
      for (PointQuery* query : batch) query->done = true;
      done_cv_.NotifyAll();
    }
    batch_mu_.Unlock();
  }

  void ExecuteBatch(const std::vector<PointQuery*>& batch) {
    point_queries_.fetch_add(batch.size(), std::memory_order_relaxed);
    // Group by (view, index, mode): one DependsMany decode pass each. A
    // batch almost always holds runs of one group (clients hammer one
    // index), so the map is only consulted when the key changes.
    std::map<std::tuple<uint64_t, uint64_t, int>, std::vector<PointQuery*>>
        groups;
    std::tuple<uint64_t, uint64_t, int> last_key;
    std::vector<PointQuery*>* last_group = nullptr;
    for (PointQuery* query : batch) {
      std::tuple<uint64_t, uint64_t, int> key{
          query->request.view_id, query->request.index_id,
          static_cast<int>(query->request.mode)};
      if (last_group == nullptr || key != last_key) {
        last_group = &groups[key];
        last_key = key;
      }
      last_group->push_back(query);
    }
    for (auto& [key, group] : groups) {
      point_batches_.fetch_add(1, std::memory_order_relaxed);
      auto fail = [&group](const Status& status) {
        for (PointQuery* query : group) query->status = status;
      };
      Result<ViewHandle> handle = LookupView(std::get<0>(key));
      if (!handle.ok()) {
        fail(handle.status());
        continue;
      }
      std::shared_ptr<const ProvenanceIndex> index =
          LookupIndex(std::get<1>(key));
      if (index == nullptr) {
        fail(NotFound("index", std::get<1>(key)));
        continue;
      }
      std::vector<std::pair<int, int>> queries;
      queries.reserve(group.size());
      for (PointQuery* query : group) {
        queries.push_back({static_cast<int>(query->request.d1),
                           static_cast<int>(query->request.d2)});
      }
      Result<std::vector<bool>> answers = service_->DependsMany(
          *handle, *index, queries, group.front()->request.mode);
      if (!answers.ok()) {
        fail(answers.status());
        continue;
      }
      for (size_t i = 0; i < group.size(); ++i) {
        group[i]->answer = (*answers)[i];
      }
    }
  }

  // --- Request dispatch ---------------------------------------------------

  std::string HandleRequest(const Request& request) {
    switch (request.type) {
      case MsgType::kPing: {
        std::string body;
        AppendU64(&body, kProtocolVersion);
        return OkResponse(body);
      }
      case MsgType::kRegisterView:
        return HandleRegisterView(request);
      case MsgType::kBeginRun:
        return HandleBeginRun();
      case MsgType::kApply:
        return HandleApply(request);
      case MsgType::kSnapshot:
      case MsgType::kSnapshotDelta:
        return HandleSnapshot(request);
      case MsgType::kDependsMany:
        return HandleDependsMany(request);
      case MsgType::kVisibilitySweep:
        return HandleVisibilitySweep(request);
      case MsgType::kMergeRuns:
        return HandleMergeRuns(request);
      case MsgType::kQueryAcrossRuns:
        return HandleQueryAcrossRuns(request);
      case MsgType::kOpenIndexFile:
        return HandleOpenIndexFile(request);
      case MsgType::kCompactFiles:
        return HandleCompactFiles(request);
      case MsgType::kStats: {
        ServerStats snapshot = stats();
        std::string body;
        AppendU64(&body, snapshot.point_queries);
        AppendU64(&body, snapshot.point_batches);
        AppendU64(&body, snapshot.frames);
        AppendU64(&body, snapshot.connections);
        AppendU64(&body, snapshot.label_hits);
        AppendU64(&body, snapshot.label_misses);
        AppendU64(&body, snapshot.reach_hits);
        AppendU64(&body, snapshot.reach_misses);
        return OkResponse(body);
      }
      case MsgType::kDepends:
        break;  // handled by the fast-path batcher route, never here
    }
    return ErrorResponse(
        Status::Error(ErrorCode::kInvalidArgument, "unroutable request"));
  }

  std::string HandleRegisterView(const Request& request)
      FVL_EXCLUDES(state_mu_) {
    Result<ViewHandle> handle = service_->RegisterView(request.view);
    if (!handle.ok()) return ErrorResponse(handle.status());
    MutexLock lock(&state_mu_);
    // The service dedups structurally equal views; mirror that on the wire
    // so re-registration returns a stable id.
    for (size_t i = 0; i < views_.size(); ++i) {
      if (views_[i] == *handle) {
        std::string body;
        AppendU64(&body, i);
        return OkResponse(body);
      }
    }
    views_.push_back(*handle);
    std::string body;
    AppendU64(&body, views_.size() - 1);
    return OkResponse(body);
  }

  std::string HandleBeginRun() FVL_EXCLUDES(state_mu_) {
    auto entry = std::make_shared<SessionEntry>();
    entry->session = service_->BeginRun();
    MutexLock lock(&state_mu_);
    uint64_t id = next_session_id_++;
    sessions_[id] = std::move(entry);
    std::string body;
    AppendU64(&body, id);
    return OkResponse(body);
  }

  std::string HandleApply(const Request& request) FVL_EXCLUDES(state_mu_) {
    std::shared_ptr<SessionEntry> entry = LookupSession(request.session_id);
    if (entry == nullptr) {
      return ErrorResponse(NotFound("session", request.session_id));
    }
    MutexLock lock(&entry->mu);
    Result<DerivationStep> step =
        entry->session->Apply(static_cast<int>(request.instance),
                              static_cast<int>(request.production));
    if (!step.ok()) return ErrorResponse(step.status());
    std::string body;
    AppendU64(&body, static_cast<uint64_t>(step->index));
    AppendU64(&body, static_cast<uint64_t>(step->instance));
    AppendU64(&body, static_cast<uint64_t>(step->production));
    AppendU64(&body, static_cast<uint64_t>(step->first_child));
    AppendU64(&body, static_cast<uint64_t>(step->first_item));
    AppendU64(&body, static_cast<uint64_t>(step->num_items));
    return OkResponse(body);
  }

  std::string HandleSnapshot(const Request& request)
      FVL_EXCLUDES(state_mu_) {
    std::shared_ptr<SessionEntry> entry = LookupSession(request.session_id);
    if (entry == nullptr) {
      return ErrorResponse(NotFound("session", request.session_id));
    }
    entry->mu.Lock();
    ProvenanceIndex index = request.type == MsgType::kSnapshotDelta
                                ? entry->session->SnapshotDelta()
                                : entry->session->Snapshot();
    int frozen = entry->session->frozen_items();
    entry->mu.Unlock();
    int num_items = index.num_items();
    uint64_t id;
    {
      MutexLock lock(&state_mu_);
      id = next_index_id_++;
      indexes_[id] =
          std::make_shared<const ProvenanceIndex>(std::move(index));
    }
    std::string body;
    AppendU64(&body, id);
    AppendU64(&body, static_cast<uint64_t>(num_items));
    AppendU64(&body, static_cast<uint64_t>(frozen));
    return OkResponse(body);
  }

  std::string HandleDependsMany(const Request& request) {
    Result<ViewHandle> handle = LookupView(request.view_id);
    if (!handle.ok()) return ErrorResponse(handle.status());
    std::shared_ptr<const ProvenanceIndex> index =
        LookupIndex(request.index_id);
    if (index == nullptr) {
      return ErrorResponse(NotFound("index", request.index_id));
    }
    Result<std::vector<bool>> answers =
        service_->DependsMany(*handle, *index, request.pairs, request.mode);
    if (!answers.ok()) return ErrorResponse(answers.status());
    std::string body;
    AppendBools(&body, *answers);
    return OkResponse(body);
  }

  std::string HandleVisibilitySweep(const Request& request) {
    Result<ViewHandle> handle = LookupView(request.view_id);
    if (!handle.ok()) return ErrorResponse(handle.status());
    std::shared_ptr<const ProvenanceIndex> index =
        LookupIndex(request.index_id);
    if (index == nullptr) {
      return ErrorResponse(NotFound("index", request.index_id));
    }
    Result<std::vector<bool>> visible =
        service_->VisibilitySweep(*handle, *index, request.mode);
    if (!visible.ok()) return ErrorResponse(visible.status());
    std::string body;
    AppendBools(&body, *visible);
    return OkResponse(body);
  }

  std::string HandleMergeRuns(const Request& request)
      FVL_EXCLUDES(state_mu_) {
    // Serialize each snapshot and feed the memory-bounded streamed merge —
    // the same path a file-backed archive would take, so the wire op
    // inherits its O(largest run + output) bound and error taxonomy.
    std::vector<std::string> blobs;
    blobs.reserve(request.index_ids.size());
    for (uint64_t id : request.index_ids) {
      std::shared_ptr<const ProvenanceIndex> index = LookupIndex(id);
      if (index == nullptr) return ErrorResponse(NotFound("index", id));
      blobs.push_back(index->Serialize());
    }
    std::vector<std::string_view> views(blobs.begin(), blobs.end());
    Result<MergedProvenanceIndex> merged = service_->MergeRunsStreamed(views);
    if (!merged.ok()) return ErrorResponse(merged.status());
    int num_runs = merged->num_runs();
    int total_items = merged->total_items();
    uint64_t id;
    {
      MutexLock lock(&state_mu_);
      id = next_merged_id_++;
      merged_[id] = std::make_shared<const MergedProvenanceIndex>(
          std::move(merged).value());
    }
    std::string body;
    AppendU64(&body, id);
    AppendU64(&body, static_cast<uint64_t>(num_runs));
    AppendU64(&body, static_cast<uint64_t>(total_items));
    return OkResponse(body);
  }

  std::string HandleOpenIndexFile(const Request& request)
      FVL_EXCLUDES(state_mu_) {
    // The mapped index holds its BlobSource keepalive, so registering it
    // serves queries straight off the archive's pages — a cold open is the
    // whole point of the on-disk tier (bench/bench_mmap_serve.cc).
    if (request.merged_file) {
      Result<MergedProvenanceIndex> merged =
          service_->OpenMergedIndexFile(request.path);
      if (!merged.ok()) return ErrorResponse(merged.status());
      int num_runs = merged->num_runs();
      int total_items = merged->total_items();
      uint64_t id;
      {
        MutexLock lock(&state_mu_);
        id = next_merged_id_++;
        merged_[id] = std::make_shared<const MergedProvenanceIndex>(
            std::move(merged).value());
      }
      std::string body;
      AppendU64(&body, id);
      AppendU64(&body, static_cast<uint64_t>(num_runs));
      AppendU64(&body, static_cast<uint64_t>(total_items));
      return OkResponse(body);
    }
    Result<ProvenanceIndex> index = service_->OpenIndexFile(request.path);
    if (!index.ok()) return ErrorResponse(index.status());
    int num_items = index->num_items();
    uint64_t id;
    {
      MutexLock lock(&state_mu_);
      id = next_index_id_++;
      indexes_[id] =
          std::make_shared<const ProvenanceIndex>(std::move(index).value());
    }
    std::string body;
    AppendU64(&body, id);
    AppendU64(&body, static_cast<uint64_t>(num_items));
    return OkResponse(body);
  }

  std::string HandleCompactFiles(const Request& request)
      FVL_EXCLUDES(state_mu_) {
    Result<MergedProvenanceIndex> merged =
        service_->CompactFiles(request.input_paths, request.path);
    if (!merged.ok()) return ErrorResponse(merged.status());
    int num_runs = merged->num_runs();
    int total_items = merged->total_items();
    uint64_t id;
    {
      MutexLock lock(&state_mu_);
      id = next_merged_id_++;
      merged_[id] = std::make_shared<const MergedProvenanceIndex>(
          std::move(merged).value());
    }
    std::string body;
    AppendU64(&body, id);
    AppendU64(&body, static_cast<uint64_t>(num_runs));
    AppendU64(&body, static_cast<uint64_t>(total_items));
    return OkResponse(body);
  }

  std::string HandleQueryAcrossRuns(const Request& request) {
    Result<ViewHandle> handle = LookupView(request.view_id);
    if (!handle.ok()) return ErrorResponse(handle.status());
    std::shared_ptr<const MergedProvenanceIndex> merged =
        LookupMerged(request.index_id);
    if (merged == nullptr) {
      return ErrorResponse(NotFound("merged index", request.index_id));
    }
    Result<std::vector<bool>> answers = service_->QueryAcrossRuns(
        *handle, *merged, request.run_pairs, request.mode);
    if (!answers.ok()) return ErrorResponse(answers.status());
    std::string body;
    AppendBools(&body, *answers);
    return OkResponse(body);
  }

  // --- Registry lookups ---------------------------------------------------

  Result<ViewHandle> LookupView(uint64_t view_id) FVL_EXCLUDES(state_mu_) {
    MutexLock lock(&state_mu_);
    if (view_id >= views_.size()) return NotFound("view", view_id);
    return views_[view_id];
  }

  std::shared_ptr<SessionEntry> LookupSession(uint64_t session_id)
      FVL_EXCLUDES(state_mu_) {
    MutexLock lock(&state_mu_);
    auto it = sessions_.find(session_id);
    return it == sessions_.end() ? nullptr : it->second;
  }

  std::shared_ptr<const ProvenanceIndex> LookupIndex(uint64_t index_id)
      FVL_EXCLUDES(state_mu_) {
    MutexLock lock(&state_mu_);
    auto it = indexes_.find(index_id);
    return it == indexes_.end() ? nullptr : it->second;
  }

  std::shared_ptr<const MergedProvenanceIndex> LookupMerged(
      uint64_t merged_id) FVL_EXCLUDES(state_mu_) {
    MutexLock lock(&state_mu_);
    auto it = merged_.find(merged_id);
    return it == merged_.end() ? nullptr : it->second;
  }

  // --- State --------------------------------------------------------------

  std::shared_ptr<ProvenanceService> service_;
  Socket listener_;
  int port_;

  std::thread acceptor_;
  std::thread batcher_;
  std::atomic<bool> stopping_{false};
  Mutex stop_mu_;  // serializes concurrent Stop calls

  Mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> connections_
      FVL_GUARDED_BY(conns_mu_);

  // Wire-visible registries. Mutable: the const stats() reader walks the
  // index maps under it to aggregate cache counters.
  mutable Mutex state_mu_;
  std::vector<ViewHandle> views_ FVL_GUARDED_BY(state_mu_);
  std::unordered_map<uint64_t, std::shared_ptr<SessionEntry>> sessions_
      FVL_GUARDED_BY(state_mu_);
  std::unordered_map<uint64_t, std::shared_ptr<const ProvenanceIndex>>
      indexes_ FVL_GUARDED_BY(state_mu_);
  std::unordered_map<uint64_t, std::shared_ptr<const MergedProvenanceIndex>>
      merged_ FVL_GUARDED_BY(state_mu_);
  uint64_t next_session_id_ FVL_GUARDED_BY(state_mu_) = 1;
  uint64_t next_index_id_ FVL_GUARDED_BY(state_mu_) = 1;
  uint64_t next_merged_id_ FVL_GUARDED_BY(state_mu_) = 1;

  // Coalescing queue.
  Mutex batch_mu_;
  CondVar batch_cv_;  // wakes the batcher
  CondVar done_cv_;   // wakes waiting connection threads
  std::vector<PointQuery*> queue_ FVL_GUARDED_BY(batch_mu_);
  bool batch_stopping_ FVL_GUARDED_BY(batch_mu_) = false;

  std::atomic<uint64_t> point_queries_{0};
  std::atomic<uint64_t> point_batches_{0};
  std::atomic<uint64_t> frames_{0};
  std::atomic<uint64_t> connections_accepted_{0};
};

ProvenanceServer::ProvenanceServer(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

ProvenanceServer::~ProvenanceServer() { Stop(); }

Result<std::unique_ptr<ProvenanceServer>> ProvenanceServer::Start(
    std::shared_ptr<ProvenanceService> service, const ServerOptions& options) {
  FVL_CHECK(service != nullptr);
  Result<Socket> listener = TcpListen(options.port, options.backlog);
  if (!listener.ok()) return listener.status();
  Result<int> port = LocalPort(*listener);
  if (!port.ok()) return port.status();
  auto impl = std::make_unique<Impl>(std::move(service),
                                     std::move(listener).value(), *port);
  impl->StartThreads();
  return std::unique_ptr<ProvenanceServer>(
      new ProvenanceServer(std::move(impl)));
}

int ProvenanceServer::port() const { return impl_->port(); }

void ProvenanceServer::Stop() { impl_->Stop(); }

ServerStats ProvenanceServer::stats() const { return impl_->stats(); }

}  // namespace fvl::net
