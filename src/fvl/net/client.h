// ProvenanceClient — typed synchronous calls over the wire protocol, plus a
// windowed pipelining path for point queries.
//
// Each typed call is one request frame and one blocking wait for its
// response frame. The pipelined path (QueueDepends / Flush /
// NextDependsAnswer) instead buffers many point-query frames client-side,
// ships them in one write, and reads the answers back in order. Keeping a
// window of W queries in flight is what feeds the server's coalescing
// batcher: the server drains whole bursts from the socket and folds them —
// together with other clients' bursts — into shared DependsMany decode
// passes. A strictly request/response client would cap the server's batch
// size at 1 and pay a full RTT per point query.
//
// Errors: transport failures are kUnavailable; server-reported errors
// arrive as the original Status (code + message) reconstructed from the
// error frame. A client is single-threaded by contract — share a
// connection across threads and the interleaved frames will corrupt the
// conversation (each bench/test thread opens its own client). The contract
// is enforced: every call entry point holds a SingleWriterScope, so two
// threads inside the client at once fail a check with a message instead of
// silently desyncing the frame stream.

#ifndef FVL_NET_CLIENT_H_
#define FVL_NET_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "fvl/net/server.h"
#include "fvl/net/socket.h"
#include "fvl/net/wire.h"
#include "fvl/run/run.h"
#include "fvl/service/provenance_service.h"
#include "fvl/util/single_writer.h"
#include "fvl/util/status.h"
#include "fvl/workflow/view.h"

namespace fvl::net {

// What Snapshot/SnapshotDelta hand back: the server-side id of the frozen
// index plus its shape.
struct SnapshotInfo {
  uint64_t index_id = 0;
  int num_items = 0;
  int frozen_items = 0;  // session high-water mark after the freeze
};

// What MergeRuns hands back.
struct MergeInfo {
  uint64_t merged_id = 0;
  int num_runs = 0;
  int total_items = 0;
};

// What OpenIndexFile hands back (single-run archives; merged archives come
// back as a MergeInfo from OpenMergedIndexFile).
struct OpenInfo {
  uint64_t index_id = 0;
  int num_items = 0;
};

class ProvenanceClient {
 public:
  // Connects to 127.0.0.1:port.
  [[nodiscard]] static Result<ProvenanceClient> Connect(int port);

  ProvenanceClient(ProvenanceClient&&) = default;
  ProvenanceClient& operator=(ProvenanceClient&&) = default;

  // --- Synchronous calls (one request, one response) ---

  [[nodiscard]] Result<uint64_t> Ping();  // returns the protocol version
  [[nodiscard]] Result<uint64_t> RegisterView(const View& view);
  [[nodiscard]] Result<uint64_t> BeginRun();
  [[nodiscard]] Result<DerivationStep> Apply(uint64_t session_id, uint64_t instance,
                               uint64_t production);
  [[nodiscard]] Result<SnapshotInfo> Snapshot(uint64_t session_id);
  [[nodiscard]] Result<SnapshotInfo> SnapshotDelta(uint64_t session_id);
  [[nodiscard]] Result<bool> Depends(uint64_t view_id, uint64_t index_id, ViewLabelMode mode,
                       uint64_t d1, uint64_t d2);
  [[nodiscard]] Result<std::vector<bool>> DependsMany(
      uint64_t view_id, uint64_t index_id, ViewLabelMode mode,
      std::span<const std::pair<int, int>> queries);
  [[nodiscard]] Result<std::vector<bool>> VisibilitySweep(uint64_t view_id,
                                            uint64_t index_id,
                                            ViewLabelMode mode);
  [[nodiscard]] Result<MergeInfo> MergeRuns(std::span<const uint64_t> index_ids);
  [[nodiscard]] Result<std::vector<bool>> QueryAcrossRuns(
      uint64_t view_id, uint64_t merged_id, ViewLabelMode mode,
      std::span<const std::pair<RunItem, RunItem>> queries);
  [[nodiscard]] Result<ServerStats> Stats();

  // --- On-disk tier ---
  //
  // Paths name files on the *server's* filesystem: the server maps (or
  // writes) them; archive bytes never cross the wire. The returned ids
  // feed the same query calls as Snapshot/MergeRuns ids.

  // Maps a serialized single-run archive server-side and registers it.
  [[nodiscard]] Result<OpenInfo> OpenIndexFile(const std::string& path);
  // Maps a serialized merged archive server-side and registers it.
  [[nodiscard]] Result<MergeInfo> OpenMergedIndexFile(const std::string& path);
  // LSM-style server-side re-merge: compacts the named archives (single-run
  // or merged, any mix) into one FVLMRG2 file at output_path and registers
  // the result.
  [[nodiscard]] Result<MergeInfo> CompactFiles(
      std::span<const std::string> input_paths,
      const std::string& output_path);

  // --- Pipelined point queries ---
  //
  //   for (...) client.QueueDepends(...);     // buffer locally
  //   client.Flush();                          // one write, W frames
  //   while (client.pending() > 0)
  //     auto answer = client.NextDependsAnswer();
  //
  // Answers come back in queue order. An error frame for one query is
  // returned as that query's Result; the stream stays aligned.

  void QueueDepends(uint64_t view_id, uint64_t index_id, ViewLabelMode mode,
                    uint64_t d1, uint64_t d2);
  [[nodiscard]] Status Flush();
  [[nodiscard]] Result<bool> NextDependsAnswer();
  size_t pending() const { return pending_; }

  // Ships raw bytes as one frame payload and returns the raw response
  // payload — the fuzz harness's hook for sending what no encoder would.
  [[nodiscard]] Result<std::string> RoundTripRaw(std::string_view payload);

 private:
  explicit ProvenanceClient(Socket socket) : socket_(std::move(socket)) {}

  // One framed request, one framed response, parsed to its body.
  [[nodiscard]] Result<std::string> Call(std::string_view request_payload);
  // Reads exactly one frame payload (blocking).
  [[nodiscard]] Result<std::string> ReadResponseFrame();
  // Advances the read cursor past a consumed frame, compacting the buffer
  // once fully drained.
  void ConsumeRead(size_t frame_size);

  Socket socket_;
  internal::SingleWriterGuard call_guard_;  // enforces one-thread-at-a-time
  std::string read_buffer_;
  size_t read_pos_ = 0;       // consumed prefix of read_buffer_ (answers are
                              // popped by cursor; one erase per drained buffer
                              // instead of one memmove per answer)
  std::string write_buffer_;  // queued pipelined frames
  size_t pending_ = 0;        // pipelined answers not yet read
};

}  // namespace fvl::net

#endif  // FVL_NET_CLIENT_H_
