#include "fvl/net/client.h"

#include <utility>

namespace fvl::net {
namespace {

Status Malformed(const char* what) {
  return Status::Error(ErrorCode::kMalformedBlob,
                       std::string("response: ") + what);
}

// Reads `count` u64 fields and demands the body end there.
Status ReadFields(std::string_view body, std::span<uint64_t> fields) {
  size_t pos = 0;
  for (uint64_t& field : fields) {
    if (!ReadU64(body, &pos, &field)) return Malformed("truncated field");
  }
  if (pos != body.size()) return Malformed("trailing bytes");
  return Status::Ok();
}

}  // namespace

Result<ProvenanceClient> ProvenanceClient::Connect(int port) {
  Result<Socket> socket = TcpConnect(port);
  if (!socket.ok()) return socket.status();
  return ProvenanceClient(std::move(socket).value());
}

void ProvenanceClient::ConsumeRead(size_t frame_size) {
  read_pos_ += frame_size;
  if (read_pos_ == read_buffer_.size()) {
    read_buffer_.clear();
    read_pos_ = 0;
  }
}

Result<std::string> ProvenanceClient::ReadResponseFrame() {
  char chunk[1 << 16];
  for (;;) {
    size_t frame_size = 0;
    std::string_view payload;
    std::string_view unread = std::string_view(read_buffer_).substr(read_pos_);
    FrameStatus status = TryExtractFrame(unread, &frame_size, &payload);
    if (status == FrameStatus::kFrame) {
      std::string owned(payload);
      ConsumeRead(frame_size);
      return owned;
    }
    if (status == FrameStatus::kBad) return Malformed("bad frame length");
    Result<ReadOutcome> outcome = ReadSome(socket_, chunk, sizeof(chunk));
    if (!outcome.ok()) return outcome.status();
    if (outcome->eof) {
      return Status::Error(ErrorCode::kUnavailable,
                           "server closed the connection");
    }
    read_buffer_.append(chunk, outcome->n);
  }
}

Result<std::string> ProvenanceClient::Call(std::string_view request_payload) {
  internal::SingleWriterScope caller(&call_guard_);
  std::string out;
  AppendFrame(&out, request_payload);
  Status written = WriteAll(socket_, out);
  if (!written.ok()) return written;
  Result<std::string> frame = ReadResponseFrame();
  if (!frame.ok()) return frame.status();
  Result<std::string_view> body = ParseResponse(*frame);
  if (!body.ok()) return body.status();
  return std::string(*body);
}

Result<uint64_t> ProvenanceClient::Ping() {
  Result<std::string> body = Call(EncodePingRequest());
  if (!body.ok()) return body.status();
  uint64_t fields[1];
  Status parsed = ReadFields(*body, fields);
  if (!parsed.ok()) return parsed;
  return fields[0];
}

Result<uint64_t> ProvenanceClient::RegisterView(const View& view) {
  Result<std::string> body = Call(EncodeRegisterViewRequest(view));
  if (!body.ok()) return body.status();
  uint64_t fields[1];
  Status parsed = ReadFields(*body, fields);
  if (!parsed.ok()) return parsed;
  return fields[0];
}

Result<uint64_t> ProvenanceClient::BeginRun() {
  Result<std::string> body = Call(EncodeBeginRunRequest());
  if (!body.ok()) return body.status();
  uint64_t fields[1];
  Status parsed = ReadFields(*body, fields);
  if (!parsed.ok()) return parsed;
  return fields[0];
}

Result<DerivationStep> ProvenanceClient::Apply(uint64_t session_id,
                                               uint64_t instance,
                                               uint64_t production) {
  Result<std::string> body =
      Call(EncodeApplyRequest(session_id, instance, production));
  if (!body.ok()) return body.status();
  uint64_t fields[6];
  Status parsed = ReadFields(*body, fields);
  if (!parsed.ok()) return parsed;
  DerivationStep step;
  step.index = static_cast<int>(fields[0]);
  step.instance = static_cast<int>(fields[1]);
  step.production = static_cast<int>(fields[2]);
  step.first_child = static_cast<int>(fields[3]);
  step.first_item = static_cast<int>(fields[4]);
  step.num_items = static_cast<int>(fields[5]);
  return step;
}

Result<SnapshotInfo> ProvenanceClient::Snapshot(uint64_t session_id) {
  Result<std::string> body =
      Call(EncodeSnapshotRequest(session_id, /*delta=*/false));
  if (!body.ok()) return body.status();
  uint64_t fields[3];
  Status parsed = ReadFields(*body, fields);
  if (!parsed.ok()) return parsed;
  return SnapshotInfo{fields[0], static_cast<int>(fields[1]),
                      static_cast<int>(fields[2])};
}

Result<SnapshotInfo> ProvenanceClient::SnapshotDelta(uint64_t session_id) {
  Result<std::string> body =
      Call(EncodeSnapshotRequest(session_id, /*delta=*/true));
  if (!body.ok()) return body.status();
  uint64_t fields[3];
  Status parsed = ReadFields(*body, fields);
  if (!parsed.ok()) return parsed;
  return SnapshotInfo{fields[0], static_cast<int>(fields[1]),
                      static_cast<int>(fields[2])};
}

Result<bool> ProvenanceClient::Depends(uint64_t view_id, uint64_t index_id,
                                       ViewLabelMode mode, uint64_t d1,
                                       uint64_t d2) {
  Result<std::string> body =
      Call(EncodeDependsRequest(view_id, index_id, mode, d1, d2));
  if (!body.ok()) return body.status();
  if (body->size() != 1 || static_cast<uint8_t>((*body)[0]) > 1) {
    return Malformed("depends answer");
  }
  return (*body)[0] != 0;
}

Result<std::vector<bool>> ProvenanceClient::DependsMany(
    uint64_t view_id, uint64_t index_id, ViewLabelMode mode,
    std::span<const std::pair<int, int>> queries) {
  Result<std::string> body =
      Call(EncodeDependsManyRequest(view_id, index_id, mode, queries));
  if (!body.ok()) return body.status();
  std::vector<bool> bits;
  size_t pos = 0;
  if (!DecodeBools(*body, &pos, &bits) || pos != body->size() ||
      bits.size() != queries.size()) {
    return Malformed("depends-many answer");
  }
  return bits;
}

Result<std::vector<bool>> ProvenanceClient::VisibilitySweep(
    uint64_t view_id, uint64_t index_id, ViewLabelMode mode) {
  Result<std::string> body =
      Call(EncodeVisibilitySweepRequest(view_id, index_id, mode));
  if (!body.ok()) return body.status();
  std::vector<bool> bits;
  size_t pos = 0;
  if (!DecodeBools(*body, &pos, &bits) || pos != body->size()) {
    return Malformed("visibility answer");
  }
  return bits;
}

Result<MergeInfo> ProvenanceClient::MergeRuns(
    std::span<const uint64_t> index_ids) {
  Result<std::string> body = Call(EncodeMergeRunsRequest(index_ids));
  if (!body.ok()) return body.status();
  uint64_t fields[3];
  Status parsed = ReadFields(*body, fields);
  if (!parsed.ok()) return parsed;
  return MergeInfo{fields[0], static_cast<int>(fields[1]),
                   static_cast<int>(fields[2])};
}

Result<std::vector<bool>> ProvenanceClient::QueryAcrossRuns(
    uint64_t view_id, uint64_t merged_id, ViewLabelMode mode,
    std::span<const std::pair<RunItem, RunItem>> queries) {
  Result<std::string> body =
      Call(EncodeQueryAcrossRunsRequest(view_id, merged_id, mode, queries));
  if (!body.ok()) return body.status();
  std::vector<bool> bits;
  size_t pos = 0;
  if (!DecodeBools(*body, &pos, &bits) || pos != body->size() ||
      bits.size() != queries.size()) {
    return Malformed("query-across-runs answer");
  }
  return bits;
}

Result<OpenInfo> ProvenanceClient::OpenIndexFile(const std::string& path) {
  Result<std::string> body =
      Call(EncodeOpenIndexFileRequest(path, /*merged=*/false));
  if (!body.ok()) return body.status();
  uint64_t fields[2];
  Status parsed = ReadFields(*body, fields);
  if (!parsed.ok()) return parsed;
  return OpenInfo{fields[0], static_cast<int>(fields[1])};
}

Result<MergeInfo> ProvenanceClient::OpenMergedIndexFile(
    const std::string& path) {
  Result<std::string> body =
      Call(EncodeOpenIndexFileRequest(path, /*merged=*/true));
  if (!body.ok()) return body.status();
  uint64_t fields[3];
  Status parsed = ReadFields(*body, fields);
  if (!parsed.ok()) return parsed;
  return MergeInfo{fields[0], static_cast<int>(fields[1]),
                   static_cast<int>(fields[2])};
}

Result<MergeInfo> ProvenanceClient::CompactFiles(
    std::span<const std::string> input_paths, const std::string& output_path) {
  Result<std::string> body =
      Call(EncodeCompactFilesRequest(input_paths, output_path));
  if (!body.ok()) return body.status();
  uint64_t fields[3];
  Status parsed = ReadFields(*body, fields);
  if (!parsed.ok()) return parsed;
  return MergeInfo{fields[0], static_cast<int>(fields[1]),
                   static_cast<int>(fields[2])};
}

Result<ServerStats> ProvenanceClient::Stats() {
  Result<std::string> body = Call(EncodeStatsRequest());
  if (!body.ok()) return body.status();
  uint64_t fields[8];
  Status parsed = ReadFields(*body, fields);
  if (!parsed.ok()) return parsed;
  ServerStats stats;
  stats.point_queries = fields[0];
  stats.point_batches = fields[1];
  stats.frames = fields[2];
  stats.connections = fields[3];
  stats.label_hits = fields[4];
  stats.label_misses = fields[5];
  stats.reach_hits = fields[6];
  stats.reach_misses = fields[7];
  return stats;
}

void ProvenanceClient::QueueDepends(uint64_t view_id, uint64_t index_id,
                                    ViewLabelMode mode, uint64_t d1,
                                    uint64_t d2) {
  internal::SingleWriterScope caller(&call_guard_);
  AppendDependsRequestFrame(&write_buffer_, view_id, index_id, mode, d1, d2);
  ++pending_;
}

Status ProvenanceClient::Flush() {
  internal::SingleWriterScope caller(&call_guard_);
  if (write_buffer_.empty()) return Status::Ok();
  Status written = WriteAll(socket_, write_buffer_);
  write_buffer_.clear();
  return written;
}

Result<bool> ProvenanceClient::NextDependsAnswer() {
  internal::SingleWriterScope caller(&call_guard_);
  if (pending_ == 0) {
    return Status::Error(ErrorCode::kInvalidArgument,
                         "no pipelined query pending");
  }
  --pending_;
  // In-place parse: the expected answer is a fixed 2-byte payload
  // (kOkByte | bool), and the driver calls this hundreds of thousands of
  // times per second — only the rare error frame takes the owning path.
  char chunk[1 << 16];
  for (;;) {
    size_t frame_size = 0;
    std::string_view payload;
    std::string_view unread = std::string_view(read_buffer_).substr(read_pos_);
    FrameStatus status = TryExtractFrame(unread, &frame_size, &payload);
    if (status == FrameStatus::kFrame) {
      if (payload.size() == 2 &&
          static_cast<uint8_t>(payload[0]) == kOkByte &&
          static_cast<uint8_t>(payload[1]) <= 1) {
        bool answer = payload[1] != 0;
        ConsumeRead(frame_size);
        return answer;
      }
      std::string owned(payload);
      ConsumeRead(frame_size);
      Result<std::string_view> body = ParseResponse(owned);
      if (!body.ok()) return body.status();
      return Malformed("depends answer");
    }
    if (status == FrameStatus::kBad) return Malformed("bad frame length");
    Result<ReadOutcome> outcome = ReadSome(socket_, chunk, sizeof(chunk));
    if (!outcome.ok()) return outcome.status();
    if (outcome->eof) {
      return Status::Error(ErrorCode::kUnavailable,
                           "server closed the connection");
    }
    read_buffer_.append(chunk, outcome->n);
  }
}

Result<std::string> ProvenanceClient::RoundTripRaw(std::string_view payload) {
  internal::SingleWriterScope caller(&call_guard_);
  std::string out;
  AppendFrame(&out, payload);
  Status written = WriteAll(socket_, out);
  if (!written.ok()) return written;
  return ReadResponseFrame();
}

}  // namespace fvl::net
