// Facade bundling the FVL machinery for one specification:
//
//   FvlScheme scheme(&spec);                  // checks Thm.-8 preconditions
//   RunLabeler labeler = scheme.MakeRunLabeler();
//   ... drive labeler.OnStart / OnApply while deriving ...
//   ViewLabel vl = scheme.LabelView(view, ViewLabelMode::kQueryEfficient);
//   Decoder pi(&vl);
//   pi.Depends(labeler.Label(d1), labeler.Label(d2));
//
// BasicDynamicLabeling is the Thm.-1/Thm.-8 adapter: a (non-view-adaptive)
// dynamic labeling scheme obtained by pairing every data label with the
// default view's label — φ'(d) = (φr(d), φv(U_default)).

#ifndef FVL_CORE_SCHEME_H_
#define FVL_CORE_SCHEME_H_

#include <memory>
#include <optional>
#include <string>

#include "fvl/core/decoder.h"
#include "fvl/core/run_labeler.h"
#include "fvl/core/view_label.h"
#include "fvl/core/visibility.h"
#include "fvl/run/run_generator.h"

namespace fvl {

class FvlScheme {
 public:
  // Aborts if the specification is invalid, not strictly linear-recursive,
  // or unsafe (use Create for a checked variant).
  explicit FvlScheme(const Specification* spec);
  static std::optional<FvlScheme> Create(const Specification* spec,
                                         std::string* error);

  const Specification& spec() const { return *spec_; }
  const Grammar& grammar() const { return spec_->grammar; }
  const ProductionGraph& production_graph() const { return *pg_; }
  // The true full dependency assignment λ* of the specification.
  const DependencyAssignment& true_full() const { return true_full_; }

  RunLabeler MakeRunLabeler() const {
    return RunLabeler(&spec_->grammar, pg_.get());
  }
  ViewLabel LabelView(const CompiledView& view, ViewLabelMode mode) const {
    return ViewLabeler(&spec_->grammar, pg_.get()).Label(view, mode);
  }
  ViewLabel LabelView(const GroupedView& view, ViewLabelMode mode) const {
    return ViewLabeler(&spec_->grammar, pg_.get()).Label(view, mode);
  }

  // Derives a random run while labeling it online; returns run + labels.
  struct LabeledRun {
    Run run;
    RunLabeler labeler;
  };
  LabeledRun GenerateLabeledRun(const RunGeneratorOptions& options) const;

 private:
  FvlScheme(const Specification* spec, std::shared_ptr<ProductionGraph> pg,
            DependencyAssignment true_full)
      : spec_(spec), pg_(std::move(pg)), true_full_(std::move(true_full)) {}

  const Specification* spec_;
  std::shared_ptr<ProductionGraph> pg_;
  DependencyAssignment true_full_;
};

// Thm. 1 / Thm. 8: the basic (single-view) dynamic labeling scheme derived
// from the view-adaptive one. Labels runs online for the default view.
class BasicDynamicLabeling {
 public:
  explicit BasicDynamicLabeling(const FvlScheme* scheme);

  void OnStart(const Run& run) { labeler_.OnStart(run); }
  void OnApply(const Run& run, const DerivationStep& step) {
    labeler_.OnApply(run, step);
  }

  // φ'(d) — conceptually (φr(d), φv(U_default)); the shared view label is a
  // constant-size component (Thm. 10 part 2), so it is stored once.
  const DataLabel& DataPart(int item) const { return labeler_.Label(item); }
  int64_t LabelBits(int item) const { return labeler_.LabelBits(item); }

  // π'(φ'(d1), φ'(d2)).
  bool Depends(int item1, int item2) const {
    return decoder_.Depends(labeler_.Label(item1), labeler_.Label(item2));
  }

 private:
  RunLabeler labeler_;
  std::unique_ptr<ViewLabel> view_label_;
  Decoder decoder_;
};

}  // namespace fvl

#endif  // FVL_CORE_SCHEME_H_
