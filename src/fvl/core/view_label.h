// Static view labels φv(U) = {λ*(S), I, O, Z} (§4.3) in three variants:
//
//  * kSpaceEfficient — stores only the full assignment λ'^* and the active
//    production set; every I/O/Z access performs a graph search over the
//    view of the specification at query time (§4.3, "Space-Efficient View
//    Labeling").
//  * kDefault — materializes all I/O/Z reachability matrices.
//  * kQueryEfficient — additionally materializes, per recursion and start
//    edge, the cycle-walk prefix products and the matrix-power oracles of
//    §4.4.3, so Inputs/Outputs walks are O(1).
//
// A lookup that is undefined in the view (inactive production, §5-hidden
// port) reports as such; the decoder maps this to "item not visible in this
// view", which is exactly the §5 data-visibility check.

#ifndef FVL_CORE_VIEW_LABEL_H_
#define FVL_CORE_VIEW_LABEL_H_

#include <optional>
#include <vector>

#include "fvl/core/matrix_power.h"
#include "fvl/workflow/production_graph.h"
#include "fvl/workflow/user_defined_view.h"
#include "fvl/workflow/view.h"

namespace fvl {

enum class ViewLabelMode { kSpaceEfficient, kDefault, kQueryEfficient };

const char* ToString(ViewLabelMode mode);

class ViewLabel {
 public:
  ViewLabelMode mode() const { return mode_; }
  const ProductionGraph& production_graph() const { return *pg_; }

  // λ'^*(S).
  const BoolMatrix& StartMatrix() const { return start_matrix_; }
  bool ProductionActive(ProductionId k) const { return active_[k]; }
  // λ'^* (per derivable module).
  const DependencyAssignment& full() const { return full_; }

  // §4.3 functions; std::nullopt when undefined in this view.
  std::optional<BoolMatrix> I(ProductionId k, int pos) const;
  std::optional<BoolMatrix> O(ProductionId k, int pos) const;
  std::optional<BoolMatrix> Z(ProductionId k, int i, int j) const;

  // Algorithm 1 (and its Outputs twin): the product of iteration-1 cycle
  // matrices for cycle s starting at edge t. iteration is 1-based; an
  // iteration of 1 yields the identity.
  std::optional<BoolMatrix> InputsWalk(int s, int t, int iteration) const;
  std::optional<BoolMatrix> OutputsWalk(int s, int t, int iteration) const;

  // §5 port visibility (true for regular views).
  bool InputPortVisible(ProductionId k, int member, int port) const;
  bool OutputPortVisible(ProductionId k, int member, int port) const;

  // Exact storage accounting (bits) for the Fig.-19 comparison.
  int64_t SizeBits() const;

 private:
  friend class ViewLabeler;

  // On-demand (space-efficient) computation of one matrix via BFS over the
  // production's port graph.
  BoolMatrix ComputeI(ProductionId k, int pos) const;
  BoolMatrix ComputeO(ProductionId k, int pos) const;
  BoolMatrix ComputeZ(ProductionId k, int i, int j) const;
  std::optional<BoolMatrix> WalkStepwise(int s, int t, int iteration,
                                         bool inputs) const;
  bool CycleFullyActive(int s) const;

  ViewLabelMode mode_ = ViewLabelMode::kDefault;
  const Grammar* grammar_ = nullptr;
  const ProductionGraph* pg_ = nullptr;
  std::vector<bool> active_;
  DependencyAssignment full_;
  BoolMatrix start_matrix_;

  // kDefault / kQueryEfficient storage.
  bool materialized_ = false;
  std::vector<std::vector<BoolMatrix>> i_mats_;  // [k][pos]
  std::vector<std::vector<BoolMatrix>> o_mats_;  // [k][pos]
  std::vector<std::vector<BoolMatrix>> z_mats_;  // [k][i * members + j], i < j

  // kQueryEfficient walk caches, indexed [cycle][start].
  struct WalkCache {
    bool valid = false;
    std::vector<BoolMatrix> input_prefix;   // [r] = first r factors
    std::vector<BoolMatrix> output_prefix;  // [r]
    std::optional<MatrixPowerOracle> input_powers;
    std::optional<MatrixPowerOracle> output_powers;
  };
  std::vector<std::vector<WalkCache>> walk_caches_;

  // §5 hidden-port masks, sparse by production (-1 = nothing hidden).
  struct HiddenPorts {
    std::vector<std::vector<bool>> input_hidden;   // [member][port]
    std::vector<std::vector<bool>> output_hidden;  // [member][port]
  };
  std::vector<int> hidden_index_;  // per production
  std::vector<HiddenPorts> hidden_;
  // Overlays for on-demand computation in grouped space-efficient labels.
  std::vector<int> overlay_index_;  // per production
  std::vector<PortGraphOverlay> overlays_;
};

class ViewLabeler {
 public:
  ViewLabeler(const Grammar* grammar, const ProductionGraph* pg)
      : grammar_(grammar), pg_(pg) {}

  ViewLabel Label(const CompiledView& view, ViewLabelMode mode) const;
  ViewLabel Label(const GroupedView& view, ViewLabelMode mode) const;

 private:
  ViewLabel Build(const std::vector<bool>& active,
                  const DependencyAssignment& full, ViewLabelMode mode,
                  const GroupedView* grouped) const;

  const Grammar* grammar_;
  const ProductionGraph* pg_;
};

}  // namespace fvl

#endif  // FVL_CORE_VIEW_LABEL_H_
