// Persistent provenance index: the downstream-adoption layer around the
// labeling scheme.
//
// A ProvenanceIndexBuilder consumes a labeled run and packs every encoded
// data label into one contiguous bit arena with a per-item offset table; the
// resulting ProvenanceIndex is a position-independent blob that can be
// serialized, mapped back, and queried without the Run or the labeler:
//
//   ProvenanceIndexBuilder builder(service.production_graph());
//   ... builder.Add(label) for every item (or FromLabeledRun) ...
//   ProvenanceIndex index = std::move(builder).Build();
//   std::string blob = index.Serialize();
//   ProvenanceIndex restored = ProvenanceIndex::Deserialize(blob).value();
//   Decoder pi(&view_label);
//   pi.Depends(restored.Label(d1), restored.Label(d2));
//
// The blob is self-describing: the codec's field widths travel in the
// header, so deserialization needs no grammar or external LabelCodec.
//
// Labels decode on demand (queries pay one decode per side, a few hundred
// ns); Label(i) results may be cached by callers that query hot items.

#ifndef FVL_CORE_INDEX_H_
#define FVL_CORE_INDEX_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fvl/core/run_labeler.h"
#include "fvl/util/check.h"
#include "fvl/util/status.h"

namespace fvl {

class ProvenanceIndex;
class MergedProvenanceIndex;

class ProvenanceIndexBuilder {
 public:
  explicit ProvenanceIndexBuilder(const ProductionGraph& pg) : codec_(pg) {}

  // Items must be added in id order (0, 1, 2, ...).
  void Add(const DataLabel& label);

  ProvenanceIndex Build() &&;

  static ProvenanceIndex FromLabeledRun(const ProductionGraph& pg,
                                        const RunLabeler& labeler);

 private:
  LabelCodec codec_;
  std::vector<int64_t> offsets_;  // bit offset of each item's label
  BitWriter arena_;
};

class ProvenanceIndex {
 public:
  int num_items() const { return static_cast<int>(offsets_.size()) - 1; }
  // The codec the labels are encoded with; consumers can compare it against
  // their grammar's codec before decoding (ProvenanceService does).
  const LabelCodec& codec() const { return codec_; }
  // Total index size in bits (arena + offset table at minimal width).
  int64_t SizeBits() const;

  // Decodes the label of one item.
  DataLabel Label(int item) const;
  // Exact encoded size of one item's label.
  int64_t LabelBits(int item) const {
    return offsets_[item + 1] - offsets_[item];
  }

  // Stable little-endian binary format (header incl. codec widths, offsets,
  // arena). Self-describing: Deserialize needs only the blob.
  std::string Serialize() const;
  // Fails with kMalformedBlob on any parse error, including blobs whose
  // label spans do not decode exactly under the embedded codec — a
  // returned index never aborts in its accessors.
  static Result<ProvenanceIndex> Deserialize(const std::string& blob);

  // Combines per-run snapshots of the *same* specification into one
  // queryable multi-run artifact: every label is relocated into one
  // contiguous arena and items are addressed as (run, local_item) pairs.
  // Runs whose codecs disagree (i.e. snapshots of structurally different
  // grammars) are rejected with kInvalidArgument; an empty span yields an
  // empty merged index rather than an error.
  static Result<MergedProvenanceIndex> Merge(
      std::span<const ProvenanceIndex> runs);

 private:
  friend class ProvenanceIndexBuilder;
  ProvenanceIndex(LabelCodec codec, std::vector<int64_t> offsets,
                  std::vector<uint64_t> words, int64_t arena_bits)
      : codec_(std::move(codec)),
        offsets_(std::move(offsets)),
        words_(std::move(words)),
        arena_bits_(arena_bits) {}

  LabelCodec codec_;
  std::vector<int64_t> offsets_;  // size num_items + 1; [0] = 0
  std::vector<uint64_t> words_;
  int64_t arena_bits_ = 0;
};

// Many runs of one specification, frozen into a single position-independent
// artifact (ProvenanceIndex::Merge). Items are addressed as (run, item)
// pairs: a per-run offset table maps each pair to a flat id into one
// contiguous relocated label arena, so cross-run batch sweeps walk memory
// linearly instead of chasing per-run snapshots. Serialization follows the
// single-run format and hardening: self-describing (codec widths in the
// header), and Deserialize bounds-checks every field and verifies that
// every label span decodes under the embedded codec before an index is
// returned — accessors on a deserialized index never abort.
class MergedProvenanceIndex {
 public:
  MergedProvenanceIndex() = default;  // zero runs, zero items

  int num_runs() const { return static_cast<int>(run_base_.size()) - 1; }
  int num_items(int run) const {
    FVL_CHECK(run >= 0 && run < num_runs());
    return static_cast<int>(run_base_[run + 1] - run_base_[run]);
  }
  // Items across all runs; bounded to int range by Merge/Deserialize.
  int total_items() const { return static_cast<int>(run_base_.back()); }
  // The shared codec of every merged run.
  const LabelCodec& codec() const { return codec_; }

  // Flat id of (run, item) in arena order: run_base_[run] + item.
  int GlobalId(int run, int item) const;
  // Inverse direction: the run a flat id belongs to. Queries use this to
  // keep run boundaries meaningful — items of different runs never depend
  // on each other (separate executions share no data flow), and the
  // decoding predicate is only defined over labels of one parse tree.
  int RunOf(int global) const;

  // Decodes the label of one item, addressed either way.
  DataLabel Label(int run, int item) const {
    return LabelByGlobalId(GlobalId(run, item));
  }
  DataLabel LabelByGlobalId(int global) const;
  // Exact encoded size of one item's label.
  int64_t LabelBits(int run, int item) const;

  // Total index size in bits (arena + offset tables at minimal width).
  int64_t SizeBits() const;

  // Same contract as the single-run pair: stable little-endian format,
  // kMalformedBlob on any parse or decode inconsistency.
  std::string Serialize() const;
  static Result<MergedProvenanceIndex> Deserialize(const std::string& blob);

 private:
  friend class ProvenanceIndex;  // Merge constructs the result
  MergedProvenanceIndex(LabelCodec codec, std::vector<int64_t> run_base,
                        std::vector<int64_t> offsets,
                        std::vector<uint64_t> words, int64_t arena_bits)
      : codec_(std::move(codec)),
        run_base_(std::move(run_base)),
        offsets_(std::move(offsets)),
        words_(std::move(words)),
        arena_bits_(arena_bits) {}

  LabelCodec codec_;
  std::vector<int64_t> run_base_{0};  // size num_runs + 1; [0] = 0
  std::vector<int64_t> offsets_{0};   // size total_items + 1; [0] = 0
  std::vector<uint64_t> words_;
  int64_t arena_bits_ = 0;
};

}  // namespace fvl

#endif  // FVL_CORE_INDEX_H_
