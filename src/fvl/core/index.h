// Persistent provenance index: the downstream-adoption layer around the
// labeling scheme.
//
// Both index classes are thin, immutable wrappers over a frozen
// fvl::LabelStore (core/label_store.h) — one contiguous bit arena plus
// grouped offsets. A ProvenanceIndexBuilder consumes a labeled run and
// packs every encoded data label into a single-group store; the resulting
// ProvenanceIndex is a position-independent blob that can be serialized,
// mapped back, and queried without the Run or the labeler:
//
//   ProvenanceIndexBuilder builder(service.production_graph());
//   ... builder.Add(label) for every item (or FromLabeledRun) ...
//   ProvenanceIndex index = std::move(builder).Build();
//   std::string blob = index.Serialize();
//   ProvenanceIndex restored = ProvenanceIndex::Deserialize(blob).value();
//   Decoder pi(&view_label);
//   pi.Depends(restored.Label(d1), restored.Label(d2));
//
// The blob is self-describing: the codec's field widths travel in the
// header, so deserialization needs no grammar or external LabelCodec.
//
// Labels decode on demand (queries pay one decode per side, a few hundred
// ns); Label(i) results may be cached by callers that query hot items.

#ifndef FVL_CORE_INDEX_H_
#define FVL_CORE_INDEX_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <memory>

#include "fvl/core/label_store.h"
#include "fvl/core/run_labeler.h"
#include "fvl/core/serving_cache.h"
#include "fvl/util/blob_source.h"
#include "fvl/util/check.h"
#include "fvl/util/status.h"

namespace fvl {

class ProvenanceIndex;
class MergedProvenanceIndex;

class ProvenanceIndexBuilder {
 public:
  explicit ProvenanceIndexBuilder(const ProductionGraph& pg);

  // Items must be added in id order (0, 1, 2, ...).
  void Add(const DataLabel& label) { store_.Append(label); }

  ProvenanceIndex Build() &&;

  // Freezes an already-labeled run: the labeler's live store is copied
  // verbatim (no label is re-encoded).
  static ProvenanceIndex FromLabeledRun(const ProductionGraph& pg,
                                        const RunLabeler& labeler);

 private:
  LabelStore store_;
};

class ProvenanceIndex {
 public:
  // Wraps a frozen single-group store (a builder's output, a session's
  // live store copied at snapshot time, or a deserialized blob).
  explicit ProvenanceIndex(LabelStore store)
      : store_(std::move(store)),
        cache_(internal::MakeServingCache(store_.total_items())) {
    FVL_CHECK(store_.num_groups() == 1);
  }

  int num_items() const { return store_.total_items(); }
  // The codec the labels are encoded with; consumers can compare it against
  // their grammar's codec before decoding (ProvenanceService does).
  const LabelCodec& codec() const { return store_.codec(); }
  // The underlying frozen store (zero-copy span access for batch decode).
  const LabelStore& store() const { return store_; }
  // Total index size in bits (arena + offset table at minimal width).
  int64_t SizeBits() const;

  // Decodes the label of one item.
  DataLabel Label(int item) const { return store_.DecodeLabel(item); }
  // Exact encoded size of one item's label.
  int64_t LabelBits(int item) const { return store_.LabelBits(item); }

  // The snapshot-lifetime serving cache (core/serving_cache.h): decoded
  // labels + reachability memo, shared by copies of this index and freed
  // with the last one — invalidation is the destructor. Null only for an
  // empty (zero-item) index. The store is frozen, so entries never go
  // stale; ProvenanceService consults it on its batch paths.
  ServingCache* serving_cache() const { return cache_.get(); }

  // Stable little-endian binary format (header incl. codec widths, offsets,
  // arena). Self-describing: Deserialize needs only the blob.
  std::string Serialize() const;
  // Fails with kMalformedBlob on any parse error, including blobs whose
  // label spans do not decode exactly under the embedded codec — a
  // returned index never aborts in its accessors. The blob is only read
  // during the call (the index owns its storage), so borrowed buffers can
  // be streamed through without copying (MergeStream relies on this).
  [[nodiscard]] static Result<ProvenanceIndex> Deserialize(std::string_view blob);

  // Serves the index straight out of an archive file: opens and mmaps
  // `path`, validates it exactly as Deserialize would, and returns an index
  // whose long-label arena still lives in the mapping — zero arena copy
  // (store().arena_borrowed() is true for any index with long labels). The
  // index keeps the mapping alive (copies share it; the file unmaps with
  // the last copy), so the returned value is self-contained. kIo/kMapFailed
  // for file-level failures, kMalformedBlob for content ones.
  [[nodiscard]] static Result<ProvenanceIndex> Map(const std::string& path);

  // Reassembles incremental snapshots (ProvenanceSession::SnapshotDelta)
  // into the index one full Snapshot() would have produced at the same
  // point — bit-identical, serialization included (golden test in
  // tests/merge_test.cc). Deltas must be passed in freeze order and share
  // one codec; a codec mismatch, an empty span (no codec to infer), an
  // item-count overflow, or an internally inconsistent delta store is
  // kInvalidArgument.
  [[nodiscard]] static Result<ProvenanceIndex> FromDeltas(
      std::span<const ProvenanceIndex> deltas);

  // Combines per-run snapshots of the *same* specification into one
  // queryable multi-run artifact: a grouped append into one shared arena —
  // every run becomes a store group, items are addressed as
  // (run, local_item) pairs, and no label is re-encoded. Runs whose codecs
  // disagree (i.e. snapshots of structurally different grammars) are
  // rejected with kInvalidArgument; an empty span yields an empty merged
  // index rather than an error.
  [[nodiscard]] static Result<MergedProvenanceIndex> Merge(
      std::span<const ProvenanceIndex> runs);

 private:
  friend class CompactStream;  // parses inputs with borrowed arenas

  // Deserialize/Map core; `borrow_arena` is ParseTail's flag (the returned
  // index then references `blob`, whose lifetime the caller manages —
  // Map attaches the mapping as backing_, CompactStream drops the store
  // before its reader).
  [[nodiscard]] static Result<ProvenanceIndex> Parse(std::string_view blob,
                                                     bool borrow_arena);

  LabelStore store_;
  // Shared (not deep-copied) by index copies: every copy wraps the same
  // frozen contents, so they legitimately pool one cache.
  std::shared_ptr<ServingCache> cache_;
  // Keepalive for Map-served indexes: the mapping the borrowed arena points
  // into. Empty (no backing) for heap-built indexes.
  BlobSource backing_;
};

// Many runs of one specification, frozen into a single position-independent
// artifact (ProvenanceIndex::Merge): a LabelStore with one group per run.
// Items are addressed as (run, item) pairs: the grouped offset table maps
// each pair to a flat id into one contiguous shared label arena, so
// cross-run batch sweeps walk memory linearly instead of chasing per-run
// snapshots. Serialization follows the single-run format and hardening:
// self-describing (codec widths in the header), and Deserialize
// bounds-checks every field and verifies that every label span decodes
// under the embedded codec before an index is returned — accessors on a
// deserialized index never abort.
class MergedProvenanceIndex {
 public:
  MergedProvenanceIndex() = default;  // zero runs, zero items
  explicit MergedProvenanceIndex(LabelStore store)
      : store_(std::move(store)),
        cache_(internal::MakeServingCache(store_.total_items())) {}

  int num_runs() const { return store_.num_groups(); }
  int num_items(int run) const { return store_.num_items(run); }
  // Items across all runs; bounded to int range by Merge/Deserialize.
  int total_items() const { return store_.total_items(); }
  // The shared codec of every merged run.
  const LabelCodec& codec() const { return store_.codec(); }
  // The underlying frozen store (zero-copy span access for batch decode).
  const LabelStore& store() const { return store_; }

  // Flat id of (run, item) in arena order.
  int GlobalId(int run, int item) const { return store_.GlobalId(run, item); }
  // Inverse direction: the run a flat id belongs to. Queries use this to
  // keep run boundaries meaningful — items of different runs never depend
  // on each other (separate executions share no data flow), and the
  // decoding predicate is only defined over labels of one parse tree.
  int RunOf(int global) const { return store_.GroupOf(global); }

  // Decodes the label of one item, addressed either way.
  DataLabel Label(int run, int item) const {
    return LabelByGlobalId(GlobalId(run, item));
  }
  DataLabel LabelByGlobalId(int global) const {
    return store_.DecodeLabel(global);
  }
  // Exact encoded size of one item's label.
  int64_t LabelBits(int run, int item) const {
    return store_.LabelBits(GlobalId(run, item));
  }

  // Snapshot-lifetime serving cache, as on ProvenanceIndex; memo/label
  // entries are keyed by flat (global) ids. Null for an empty merge.
  ServingCache* serving_cache() const { return cache_.get(); }

  // Total index size in bits (arena + offset tables at minimal width).
  int64_t SizeBits() const;

  // Same contract as the single-run pair: stable little-endian format,
  // kMalformedBlob on any parse or decode inconsistency.
  std::string Serialize() const;
  [[nodiscard]] static Result<MergedProvenanceIndex> Deserialize(std::string_view blob);

  // File-served counterpart of Deserialize, with the same contract as
  // ProvenanceIndex::Map: mmap, validate, borrow the arena from the
  // mapping, keep the mapping alive alongside the index.
  [[nodiscard]] static Result<MergedProvenanceIndex> Map(
      const std::string& path);

 private:
  friend class CompactStream;  // parses inputs with borrowed arenas

  [[nodiscard]] static Result<MergedProvenanceIndex> Parse(
      std::string_view blob, bool borrow_arena);

  LabelStore store_;
  std::shared_ptr<ServingCache> cache_;
  // Keepalive for Map-served indexes (see ProvenanceIndex::backing_).
  BlobSource backing_;
};

// Memory-bounded k-way merge: the streaming counterpart of
// ProvenanceIndex::Merge for *serialized* runs. Each blob is deserialized
// and appended on its own — the input store is destroyed before Append
// returns, so merging N runs peaks at O(largest input + output) memory
// instead of O(sum of inputs) (asserted against internal::StoreCountProbe
// in tests/merge_test.cc). The finished artifact is bit-identical to
// deserializing every blob up front and calling Merge (golden-blob test).
//
//   MergeStream stream;
//   for (std::string_view blob : blobs) {
//     if (Status status = stream.Append(blob); !status.ok()) return status;
//   }
//   MergedProvenanceIndex merged = std::move(stream).Finish().value();
class MergeStream {
 public:
  MergeStream() = default;

  // Deserializes one single-run blob (FVLIDX3, or a legacy FVLIDX2) and
  // appends it as the next
  // run of the merge. kMalformedBlob if the blob does not parse or decode
  // under its embedded codec; kInvalidArgument if its codec disagrees with
  // the runs appended before it (a snapshot of a structurally different
  // grammar) or the merge would exceed the supported item count. On error
  // the stream is unchanged and may keep appending other blobs.
  [[nodiscard]] Status Append(std::string_view blob);

  // Runs / items appended so far.
  int num_runs() const { return store_.num_groups(); }
  int total_items() const { return store_.total_items(); }
  // The shared codec every appended run is pinned to (run 0's); all-zero
  // widths until the first Append succeeds. Lets callers vet the whole
  // batch against their own grammar after one blob instead of after the
  // full merge (ProvenanceService::MergeRunsStreamed fails fast on it).
  const LabelCodec& codec() const { return store_.codec(); }

  // Freezes the appended runs into the merged artifact (an empty stream
  // yields an empty index, exactly like Merge over an empty span); the
  // stream is consumed.
  [[nodiscard]] Result<MergedProvenanceIndex> Finish() &&;

 private:
  bool have_codec_ = false;
  LabelStore store_;
};

// LSM-style re-merge: folds already-merged artifacts (FVLMRG2/FVLMRG1) and
// stray single runs (FVLIDX3/FVLIDX2) into one compacted merged index —
// the dLSM-shaped maintenance step of the on-disk tier, where L0 run files
// and earlier compaction outputs collapse into a new archive. Unlike
// MergeStream it accepts merged inputs directly: their runs are appended
// in stored order with one bulk bit copy per input, never flattened back
// into per-run blobs. MergeStream's memory discipline carries over — one
// parsed input alive at a time, destroyed before the next is touched, so
// compaction peaks at O(largest input + output) (asserted against
// internal::StoreCountProbe in tests/disk_tier_test.cc) — and the
// BlobReader overload parses with a borrowed arena, so a mapped input's
// payload bits are never copied into the temporary at all. The output is
// bit-identical to a from-scratch ProvenanceIndex::Merge of the flattened
// run sequence (AppendTail is canonical whatever the grouping history).
//
//   CompactStream stream;
//   for (BlobReader& reader : readers) {
//     if (Status status = stream.Append(&reader); !status.ok()) return status;
//   }
//   MergedProvenanceIndex compacted = std::move(stream).Finish().value();
class CompactStream {
 public:
  CompactStream() = default;

  // Appends every run of one serialized artifact, single-run or merged, in
  // its stored order. kMalformedBlob if the blob does not parse (an
  // unrecognized magic included); kInvalidArgument on a codec mismatch with
  // earlier inputs or item-count overflow. On error the stream is
  // unchanged and may keep appending other inputs.
  [[nodiscard]] Status Append(std::string_view blob);

  // Same, consuming the reader's remaining bytes. For a mapped source the
  // input's label arena is read in place (borrowed-arena parse) and its
  // pages are released once appended — the streaming path CompactMerged
  // and the service-level compaction use.
  [[nodiscard]] Status Append(BlobReader* reader);

  // Runs / items appended so far, across all inputs.
  int num_runs() const { return store_.num_groups(); }
  int total_items() const { return store_.total_items(); }
  // Pinned by the first input; all-zero widths before that (as on
  // MergeStream).
  const LabelCodec& codec() const { return store_.codec(); }

  // Freezes the appended runs (an empty stream yields an empty index); the
  // stream is consumed.
  [[nodiscard]] Result<MergedProvenanceIndex> Finish() &&;

 private:
  // Shared core: magic-dispatch, parse one input (borrowing its arena from
  // `blob` when asked — the parsed store never outlives this call), fold
  // its runs into store_.
  [[nodiscard]] Status AppendParsed(std::string_view blob, bool borrow_arena);
  [[nodiscard]] Status AppendStore(const LabelStore& source);

  bool have_codec_ = false;
  size_t inputs_ = 0;  // artifacts appended (for error attribution)
  LabelStore store_;
};

// Convenience one-shot: compacts `inputs` in order through a CompactStream.
[[nodiscard]] Result<MergedProvenanceIndex> CompactMerged(
    std::span<BlobReader> inputs);

}  // namespace fvl

#endif  // FVL_CORE_INDEX_H_
