// Persistent provenance index: the downstream-adoption layer around the
// labeling scheme.
//
// Both index classes are thin, immutable wrappers over a frozen
// fvl::LabelStore (core/label_store.h) — one contiguous bit arena plus
// grouped offsets. A ProvenanceIndexBuilder consumes a labeled run and
// packs every encoded data label into a single-group store; the resulting
// ProvenanceIndex is a position-independent blob that can be serialized,
// mapped back, and queried without the Run or the labeler:
//
//   ProvenanceIndexBuilder builder(service.production_graph());
//   ... builder.Add(label) for every item (or FromLabeledRun) ...
//   ProvenanceIndex index = std::move(builder).Build();
//   std::string blob = index.Serialize();
//   ProvenanceIndex restored = ProvenanceIndex::Deserialize(blob).value();
//   Decoder pi(&view_label);
//   pi.Depends(restored.Label(d1), restored.Label(d2));
//
// The blob is self-describing: the codec's field widths travel in the
// header, so deserialization needs no grammar or external LabelCodec.
//
// Labels decode on demand (queries pay one decode per side, a few hundred
// ns); Label(i) results may be cached by callers that query hot items.

#ifndef FVL_CORE_INDEX_H_
#define FVL_CORE_INDEX_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "fvl/core/label_store.h"
#include "fvl/core/run_labeler.h"
#include "fvl/util/check.h"
#include "fvl/util/status.h"

namespace fvl {

class ProvenanceIndex;
class MergedProvenanceIndex;

class ProvenanceIndexBuilder {
 public:
  explicit ProvenanceIndexBuilder(const ProductionGraph& pg);

  // Items must be added in id order (0, 1, 2, ...).
  void Add(const DataLabel& label) { store_.Append(label); }

  ProvenanceIndex Build() &&;

  // Freezes an already-labeled run: the labeler's live store is copied
  // verbatim (no label is re-encoded).
  static ProvenanceIndex FromLabeledRun(const ProductionGraph& pg,
                                        const RunLabeler& labeler);

 private:
  LabelStore store_;
};

class ProvenanceIndex {
 public:
  // Wraps a frozen single-group store (a builder's output, a session's
  // live store copied at snapshot time, or a deserialized blob).
  explicit ProvenanceIndex(LabelStore store) : store_(std::move(store)) {
    FVL_CHECK(store_.num_groups() == 1);
  }

  int num_items() const { return store_.total_items(); }
  // The codec the labels are encoded with; consumers can compare it against
  // their grammar's codec before decoding (ProvenanceService does).
  const LabelCodec& codec() const { return store_.codec(); }
  // The underlying frozen store (zero-copy span access for batch decode).
  const LabelStore& store() const { return store_; }
  // Total index size in bits (arena + offset table at minimal width).
  int64_t SizeBits() const;

  // Decodes the label of one item.
  DataLabel Label(int item) const { return store_.DecodeLabel(item); }
  // Exact encoded size of one item's label.
  int64_t LabelBits(int item) const { return store_.LabelBits(item); }

  // Stable little-endian binary format (header incl. codec widths, offsets,
  // arena). Self-describing: Deserialize needs only the blob.
  std::string Serialize() const;
  // Fails with kMalformedBlob on any parse error, including blobs whose
  // label spans do not decode exactly under the embedded codec — a
  // returned index never aborts in its accessors.
  static Result<ProvenanceIndex> Deserialize(const std::string& blob);

  // Combines per-run snapshots of the *same* specification into one
  // queryable multi-run artifact: a grouped append into one shared arena —
  // every run becomes a store group, items are addressed as
  // (run, local_item) pairs, and no label is re-encoded. Runs whose codecs
  // disagree (i.e. snapshots of structurally different grammars) are
  // rejected with kInvalidArgument; an empty span yields an empty merged
  // index rather than an error.
  static Result<MergedProvenanceIndex> Merge(
      std::span<const ProvenanceIndex> runs);

 private:
  LabelStore store_;
};

// Many runs of one specification, frozen into a single position-independent
// artifact (ProvenanceIndex::Merge): a LabelStore with one group per run.
// Items are addressed as (run, item) pairs: the grouped offset table maps
// each pair to a flat id into one contiguous shared label arena, so
// cross-run batch sweeps walk memory linearly instead of chasing per-run
// snapshots. Serialization follows the single-run format and hardening:
// self-describing (codec widths in the header), and Deserialize
// bounds-checks every field and verifies that every label span decodes
// under the embedded codec before an index is returned — accessors on a
// deserialized index never abort.
class MergedProvenanceIndex {
 public:
  MergedProvenanceIndex() = default;  // zero runs, zero items
  explicit MergedProvenanceIndex(LabelStore store) : store_(std::move(store)) {}

  int num_runs() const { return store_.num_groups(); }
  int num_items(int run) const { return store_.num_items(run); }
  // Items across all runs; bounded to int range by Merge/Deserialize.
  int total_items() const { return store_.total_items(); }
  // The shared codec of every merged run.
  const LabelCodec& codec() const { return store_.codec(); }
  // The underlying frozen store (zero-copy span access for batch decode).
  const LabelStore& store() const { return store_; }

  // Flat id of (run, item) in arena order.
  int GlobalId(int run, int item) const { return store_.GlobalId(run, item); }
  // Inverse direction: the run a flat id belongs to. Queries use this to
  // keep run boundaries meaningful — items of different runs never depend
  // on each other (separate executions share no data flow), and the
  // decoding predicate is only defined over labels of one parse tree.
  int RunOf(int global) const { return store_.GroupOf(global); }

  // Decodes the label of one item, addressed either way.
  DataLabel Label(int run, int item) const {
    return LabelByGlobalId(GlobalId(run, item));
  }
  DataLabel LabelByGlobalId(int global) const {
    return store_.DecodeLabel(global);
  }
  // Exact encoded size of one item's label.
  int64_t LabelBits(int run, int item) const {
    return store_.LabelBits(GlobalId(run, item));
  }

  // Total index size in bits (arena + offset tables at minimal width).
  int64_t SizeBits() const;

  // Same contract as the single-run pair: stable little-endian format,
  // kMalformedBlob on any parse or decode inconsistency.
  std::string Serialize() const;
  static Result<MergedProvenanceIndex> Deserialize(const std::string& blob);

 private:
  LabelStore store_;
};

}  // namespace fvl

#endif  // FVL_CORE_INDEX_H_
