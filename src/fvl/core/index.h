// Persistent provenance index: the downstream-adoption layer around the
// labeling scheme.
//
// Both index classes are thin, immutable wrappers over a frozen
// fvl::LabelStore (core/label_store.h) — one contiguous bit arena plus
// grouped offsets. A ProvenanceIndexBuilder consumes a labeled run and
// packs every encoded data label into a single-group store; the resulting
// ProvenanceIndex is a position-independent blob that can be serialized,
// mapped back, and queried without the Run or the labeler:
//
//   ProvenanceIndexBuilder builder(service.production_graph());
//   ... builder.Add(label) for every item (or FromLabeledRun) ...
//   ProvenanceIndex index = std::move(builder).Build();
//   std::string blob = index.Serialize();
//   ProvenanceIndex restored = ProvenanceIndex::Deserialize(blob).value();
//   Decoder pi(&view_label);
//   pi.Depends(restored.Label(d1), restored.Label(d2));
//
// The blob is self-describing: the codec's field widths travel in the
// header, so deserialization needs no grammar or external LabelCodec.
//
// Labels decode on demand (queries pay one decode per side, a few hundred
// ns); Label(i) results may be cached by callers that query hot items.

#ifndef FVL_CORE_INDEX_H_
#define FVL_CORE_INDEX_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <memory>

#include "fvl/core/label_store.h"
#include "fvl/core/run_labeler.h"
#include "fvl/core/serving_cache.h"
#include "fvl/util/check.h"
#include "fvl/util/status.h"

namespace fvl {

class ProvenanceIndex;
class MergedProvenanceIndex;

class ProvenanceIndexBuilder {
 public:
  explicit ProvenanceIndexBuilder(const ProductionGraph& pg);

  // Items must be added in id order (0, 1, 2, ...).
  void Add(const DataLabel& label) { store_.Append(label); }

  ProvenanceIndex Build() &&;

  // Freezes an already-labeled run: the labeler's live store is copied
  // verbatim (no label is re-encoded).
  static ProvenanceIndex FromLabeledRun(const ProductionGraph& pg,
                                        const RunLabeler& labeler);

 private:
  LabelStore store_;
};

class ProvenanceIndex {
 public:
  // Wraps a frozen single-group store (a builder's output, a session's
  // live store copied at snapshot time, or a deserialized blob).
  explicit ProvenanceIndex(LabelStore store)
      : store_(std::move(store)),
        cache_(internal::MakeServingCache(store_.total_items())) {
    FVL_CHECK(store_.num_groups() == 1);
  }

  int num_items() const { return store_.total_items(); }
  // The codec the labels are encoded with; consumers can compare it against
  // their grammar's codec before decoding (ProvenanceService does).
  const LabelCodec& codec() const { return store_.codec(); }
  // The underlying frozen store (zero-copy span access for batch decode).
  const LabelStore& store() const { return store_; }
  // Total index size in bits (arena + offset table at minimal width).
  int64_t SizeBits() const;

  // Decodes the label of one item.
  DataLabel Label(int item) const { return store_.DecodeLabel(item); }
  // Exact encoded size of one item's label.
  int64_t LabelBits(int item) const { return store_.LabelBits(item); }

  // The snapshot-lifetime serving cache (core/serving_cache.h): decoded
  // labels + reachability memo, shared by copies of this index and freed
  // with the last one — invalidation is the destructor. Null only for an
  // empty (zero-item) index. The store is frozen, so entries never go
  // stale; ProvenanceService consults it on its batch paths.
  ServingCache* serving_cache() const { return cache_.get(); }

  // Stable little-endian binary format (header incl. codec widths, offsets,
  // arena). Self-describing: Deserialize needs only the blob.
  std::string Serialize() const;
  // Fails with kMalformedBlob on any parse error, including blobs whose
  // label spans do not decode exactly under the embedded codec — a
  // returned index never aborts in its accessors. The blob is only read
  // during the call (the index owns its storage), so borrowed buffers can
  // be streamed through without copying (MergeStream relies on this).
  [[nodiscard]] static Result<ProvenanceIndex> Deserialize(std::string_view blob);

  // Reassembles incremental snapshots (ProvenanceSession::SnapshotDelta)
  // into the index one full Snapshot() would have produced at the same
  // point — bit-identical, serialization included (golden test in
  // tests/merge_test.cc). Deltas must be passed in freeze order and share
  // one codec; a codec mismatch, an empty span (no codec to infer), an
  // item-count overflow, or an internally inconsistent delta store is
  // kInvalidArgument.
  [[nodiscard]] static Result<ProvenanceIndex> FromDeltas(
      std::span<const ProvenanceIndex> deltas);

  // Combines per-run snapshots of the *same* specification into one
  // queryable multi-run artifact: a grouped append into one shared arena —
  // every run becomes a store group, items are addressed as
  // (run, local_item) pairs, and no label is re-encoded. Runs whose codecs
  // disagree (i.e. snapshots of structurally different grammars) are
  // rejected with kInvalidArgument; an empty span yields an empty merged
  // index rather than an error.
  [[nodiscard]] static Result<MergedProvenanceIndex> Merge(
      std::span<const ProvenanceIndex> runs);

 private:
  LabelStore store_;
  // Shared (not deep-copied) by index copies: every copy wraps the same
  // frozen contents, so they legitimately pool one cache.
  std::shared_ptr<ServingCache> cache_;
};

// Many runs of one specification, frozen into a single position-independent
// artifact (ProvenanceIndex::Merge): a LabelStore with one group per run.
// Items are addressed as (run, item) pairs: the grouped offset table maps
// each pair to a flat id into one contiguous shared label arena, so
// cross-run batch sweeps walk memory linearly instead of chasing per-run
// snapshots. Serialization follows the single-run format and hardening:
// self-describing (codec widths in the header), and Deserialize
// bounds-checks every field and verifies that every label span decodes
// under the embedded codec before an index is returned — accessors on a
// deserialized index never abort.
class MergedProvenanceIndex {
 public:
  MergedProvenanceIndex() = default;  // zero runs, zero items
  explicit MergedProvenanceIndex(LabelStore store)
      : store_(std::move(store)),
        cache_(internal::MakeServingCache(store_.total_items())) {}

  int num_runs() const { return store_.num_groups(); }
  int num_items(int run) const { return store_.num_items(run); }
  // Items across all runs; bounded to int range by Merge/Deserialize.
  int total_items() const { return store_.total_items(); }
  // The shared codec of every merged run.
  const LabelCodec& codec() const { return store_.codec(); }
  // The underlying frozen store (zero-copy span access for batch decode).
  const LabelStore& store() const { return store_; }

  // Flat id of (run, item) in arena order.
  int GlobalId(int run, int item) const { return store_.GlobalId(run, item); }
  // Inverse direction: the run a flat id belongs to. Queries use this to
  // keep run boundaries meaningful — items of different runs never depend
  // on each other (separate executions share no data flow), and the
  // decoding predicate is only defined over labels of one parse tree.
  int RunOf(int global) const { return store_.GroupOf(global); }

  // Decodes the label of one item, addressed either way.
  DataLabel Label(int run, int item) const {
    return LabelByGlobalId(GlobalId(run, item));
  }
  DataLabel LabelByGlobalId(int global) const {
    return store_.DecodeLabel(global);
  }
  // Exact encoded size of one item's label.
  int64_t LabelBits(int run, int item) const {
    return store_.LabelBits(GlobalId(run, item));
  }

  // Snapshot-lifetime serving cache, as on ProvenanceIndex; memo/label
  // entries are keyed by flat (global) ids. Null for an empty merge.
  ServingCache* serving_cache() const { return cache_.get(); }

  // Total index size in bits (arena + offset tables at minimal width).
  int64_t SizeBits() const;

  // Same contract as the single-run pair: stable little-endian format,
  // kMalformedBlob on any parse or decode inconsistency.
  std::string Serialize() const;
  [[nodiscard]] static Result<MergedProvenanceIndex> Deserialize(std::string_view blob);

 private:
  LabelStore store_;
  std::shared_ptr<ServingCache> cache_;
};

// Memory-bounded k-way merge: the streaming counterpart of
// ProvenanceIndex::Merge for *serialized* runs. Each blob is deserialized
// and appended on its own — the input store is destroyed before Append
// returns, so merging N runs peaks at O(largest input + output) memory
// instead of O(sum of inputs) (asserted against internal::StoreCountProbe
// in tests/merge_test.cc). The finished artifact is bit-identical to
// deserializing every blob up front and calling Merge (golden-blob test).
//
//   MergeStream stream;
//   for (std::string_view blob : blobs) {
//     if (Status status = stream.Append(blob); !status.ok()) return status;
//   }
//   MergedProvenanceIndex merged = std::move(stream).Finish().value();
class MergeStream {
 public:
  MergeStream() = default;

  // Deserializes one single-run blob (FVLIDX3, or a legacy FVLIDX2) and
  // appends it as the next
  // run of the merge. kMalformedBlob if the blob does not parse or decode
  // under its embedded codec; kInvalidArgument if its codec disagrees with
  // the runs appended before it (a snapshot of a structurally different
  // grammar) or the merge would exceed the supported item count. On error
  // the stream is unchanged and may keep appending other blobs.
  [[nodiscard]] Status Append(std::string_view blob);

  // Runs / items appended so far.
  int num_runs() const { return store_.num_groups(); }
  int total_items() const { return store_.total_items(); }
  // The shared codec every appended run is pinned to (run 0's); all-zero
  // widths until the first Append succeeds. Lets callers vet the whole
  // batch against their own grammar after one blob instead of after the
  // full merge (ProvenanceService::MergeRunsStreamed fails fast on it).
  const LabelCodec& codec() const { return store_.codec(); }

  // Freezes the appended runs into the merged artifact (an empty stream
  // yields an empty index, exactly like Merge over an empty span); the
  // stream is consumed.
  [[nodiscard]] Result<MergedProvenanceIndex> Finish() &&;

 private:
  bool have_codec_ = false;
  LabelStore store_;
};

}  // namespace fvl

#endif  // FVL_CORE_INDEX_H_
