// ServingCache — the skew-aware serving layer owned by a frozen index.
//
// Two caches, both bounded and both scoped to one immutable snapshot:
//
//   * a decoded-label cache ((service tag, item id) -> DataLabel), so a
//     hot item's label is decoded from the bit arena once per snapshot
//     instead of once per batch;
//   * a reachability memo ((service, view, mode, src, dst) -> answer), so a
//     hot query pair skips decoding *and* the predicate entirely.
//
// Ownership is the whole invalidation story: the cache lives inside the
// ProvenanceIndex / MergedProvenanceIndex it serves (shared by copies of
// that index) and dies with the snapshot. The underlying store is frozen,
// so entries can never go stale — there is no invalidate path at all.
//
// Correctness-by-construction rules (relied on by the differential tests):
//
//   * Labels enter the cache only after ProvenanceService::LabelInBounds
//     vetting, and the cache key carries the tag of the service that vetted
//     them — LabelInBounds walks the *service's* grammar, so a label vetted
//     by one service proves nothing to another even when both accept this
//     index's codec widths (CheckIndexCompatible compares widths only). A
//     hit is therefore exactly the label the querying service's uncached
//     path would have decoded and accepted.
//   * The memo stores only answers the decoder actually produced for this
//     snapshot, keyed on the full (service tag, view id, mode, src, dst)
//     tuple with exact key comparison — a hit can only replay an answer
//     that the uncached path would recompute bit-identically.
//
// Thread safety: both caches are ShardedCache (per-shard fvl::Mutex,
// FVL_GUARDED_BY slots); counters are relaxed atomics readable live from
// any thread (net::ProvenanceServer aggregates them into ServerStats).

#ifndef FVL_CORE_SERVING_CACHE_H_
#define FVL_CORE_SERVING_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "fvl/core/data_label.h"
#include "fvl/util/sharded_cache.h"

namespace fvl {

// Identity of one cached decoded label. The service tag is part of the key
// because LabelInBounds vetting is grammar-specific: two services can share
// an index (codec widths match) while differing structurally, and neither
// may consume labels only the other vetted.
struct LabelCacheKey {
  uint64_t service_tag = 0;  // the ProvenanceService whose vetting admitted it
  int32_t item = -1;         // item id in the owning index's id space

  friend bool operator==(const LabelCacheKey&, const LabelCacheKey&) = default;
};

struct LabelCacheKeyHash {
  size_t operator()(const LabelCacheKey& k) const {
    uint64_t h = k.service_tag;
    h = h * 1099511628211ull ^ static_cast<uint32_t>(k.item);
    return static_cast<size_t>(h);
  }
};

// Full identity of one memoized reachability answer. Every field takes part
// in equality — there is no packed/lossy form — so distinct queries can
// never alias one memo entry.
struct ReachMemoKey {
  uint64_t service_tag = 0;  // issuing ProvenanceService (process-unique)
  int32_t view_id = -1;
  int32_t mode = 0;  // ViewLabelMode ordinal
  int32_t d1 = -1;   // item ids in the owning index's id space
  int32_t d2 = -1;   // (flat/global ids for a merged index)

  friend bool operator==(const ReachMemoKey&, const ReachMemoKey&) = default;
};

struct ReachMemoKeyHash {
  size_t operator()(const ReachMemoKey& k) const {
    uint64_t h = k.service_tag;
    h = h * 1099511628211ull ^ static_cast<uint32_t>(k.view_id);
    h = h * 1099511628211ull ^ static_cast<uint32_t>(k.mode);
    h = h * 1099511628211ull ^ static_cast<uint32_t>(k.d1);
    h = h * 1099511628211ull ^ static_cast<uint32_t>(k.d2);
    return static_cast<size_t>(h);
  }
};

// Counter snapshot; hit rates feed net::ServerStats and the bench columns.
struct ServingCacheStats {
  uint64_t label_hits = 0;
  uint64_t label_misses = 0;
  uint64_t reach_hits = 0;
  uint64_t reach_misses = 0;

  double LabelHitRate() const {
    const uint64_t total = label_hits + label_misses;
    return total == 0 ? 0.0 : static_cast<double>(label_hits) / total;
  }
  double ReachHitRate() const {
    const uint64_t total = reach_hits + reach_misses;
    return total == 0 ? 0.0 : static_cast<double>(reach_hits) / total;
  }
};

class ServingCache {
 public:
  // Capacities are sized from the snapshot: the label cache covers the
  // whole snapshot up to a cap (labels are a few hundred bytes decoded),
  // the memo covers a multiple of it (entries are a few dozen bytes).
  explicit ServingCache(int num_items);

  ServingCache(const ServingCache&) = delete;
  ServingCache& operator=(const ServingCache&) = delete;

  bool LookupLabel(uint64_t service_tag, int item, DataLabel* out) const {
    return labels_.Lookup(LabelCacheKey{service_tag, item}, out);
  }
  void InsertLabel(uint64_t service_tag, int item, const DataLabel& label) {
    labels_.Insert(LabelCacheKey{service_tag, item}, label);
  }

  bool LookupReach(const ReachMemoKey& key, bool* answer) const {
    char resident = 0;
    if (!reach_.Lookup(key, &resident)) return false;
    *answer = resident != 0;
    return true;
  }
  void InsertReach(const ReachMemoKey& key, bool answer) {
    reach_.Insert(key, answer ? char{1} : char{0});
  }

  ServingCacheStats stats() const;

 private:
  ShardedCache<LabelCacheKey, DataLabel, LabelCacheKeyHash> labels_;
  ShardedCache<ReachMemoKey, char, ReachMemoKeyHash> reach_;
};

namespace internal {

// Cache factory for index constructors: null for an empty snapshot (a
// zero-item delta or a default-constructed merged index allocates nothing).
std::shared_ptr<ServingCache> MakeServingCache(int num_items);

}  // namespace internal

}  // namespace fvl

#endif  // FVL_CORE_SERVING_CACHE_H_
