// Data labels (§4.2.2).
//
// An edge label identifies an edge of the compressed parse tree: (k, i) for
// a child of a module node (production k, member position i) or (s, t, i)
// for the i-th child of a recursive node (cycle s unfolded starting from
// cycle edge t). A port label is the path of edge labels from the root to
// the node of the module that *first created* the port, followed by the
// port index. A data label pairs the producer's output-port label with the
// consumer's input-port label; either side is absent for initial inputs /
// final outputs of the run.
//
// Bit encoding (measured by the paper's Figures 17/21/24): grammar-bounded
// fields (production id, member position, cycle id, cycle start) use fixed
// widths derived from the grammar; unbounded iteration indices use
// Elias-gamma; the common prefix of the two paths is stored once (§4.2.2's
// "factoring" optimization). Everything round-trips losslessly.

#ifndef FVL_CORE_DATA_LABEL_H_
#define FVL_CORE_DATA_LABEL_H_

#include <optional>
#include <string>
#include <vector>

#include "fvl/util/bitstream.h"
#include "fvl/workflow/production_graph.h"

namespace fvl {

struct EdgeLabel {
  enum class Kind : uint8_t { kProduction, kRecursion };
  Kind kind = Kind::kProduction;
  // kProduction: (production, position).
  int production = -1;
  int position = -1;
  // kRecursion: (cycle, start, iteration); iteration is 1-based as in the
  // paper ((s, t, 1) is the first unfolded member).
  int cycle = -1;
  int start = -1;
  int iteration = 0;

  static EdgeLabel Prod(int production, int position) {
    EdgeLabel e;
    e.kind = Kind::kProduction;
    e.production = production;
    e.position = position;
    return e;
  }
  static EdgeLabel Rec(int cycle, int start, int iteration) {
    EdgeLabel e;
    e.kind = Kind::kRecursion;
    e.cycle = cycle;
    e.start = start;
    e.iteration = iteration;
    return e;
  }

  bool operator==(const EdgeLabel&) const = default;
  std::string ToString() const;  // e.g. "(1,5)" or "(1,1,5)", 1-based
};

struct PortLabel {
  std::vector<EdgeLabel> path;
  int port = -1;

  bool operator==(const PortLabel&) const = default;
  std::string ToString() const;
};

struct DataLabel {
  std::optional<PortLabel> producer;  // absent for initial inputs
  std::optional<PortLabel> consumer;  // absent for final outputs

  bool operator==(const DataLabel&) const = default;
  std::string ToString() const;
};

// Fixed-width field sizes derived from a grammar/production graph; shared by
// the encoder and decoder (spec-level knowledge, not part of the label).
struct LabelCodec {
  explicit LabelCodec(const ProductionGraph& pg);
  // All-zero widths; used when the widths are read back from a serialized
  // header (ProvenanceIndex::Deserialize) instead of derived from a grammar.
  LabelCodec() = default;

  int production_bits = 0;
  int position_bits = 0;
  int cycle_bits = 0;
  int start_bits = 0;
  int port_bits = 0;

  friend bool operator==(const LabelCodec&, const LabelCodec&) = default;

  void EncodeEdge(const EdgeLabel& edge, BitWriter* writer) const;
  EdgeLabel DecodeEdge(BitReader* reader) const;

  // Full data-label encoding with common-prefix factoring.
  BitWriter Encode(const DataLabel& label) const;
  // Appends the encoding to an existing stream (provenance index arenas).
  void EncodeTo(const DataLabel& label, BitWriter* writer) const;
  DataLabel Decode(BitReader* reader) const;

  // Size in bits of Encode(label) without materializing the stream.
  int64_t EncodedBits(const DataLabel& label) const;
};

}  // namespace fvl

#endif  // FVL_CORE_DATA_LABEL_H_
