#include "fvl/core/serving_cache.h"

#include <algorithm>
#include <memory>

namespace fvl {
namespace {

// Decoded labels are the expensive entries (two PortLabel paths, heap
// vectors), so the label cache stops growing at 8k slots; memo entries are
// tens of bytes, so the memo covers a multiple of the snapshot before its
// own (larger) cap. Both caps keep a per-snapshot cache comfortably under a
// few MB even for the largest indexes the benches build.
constexpr int kMaxLabelSlots = 8192;
constexpr int kMaxReachSlots = 1 << 15;
constexpr int kMinReachSlots = 64;

int LabelSlots(int num_items) { return std::min(num_items, kMaxLabelSlots); }

int ReachSlots(int num_items) {
  // Pairs outnumber items; 4x the snapshot holds the hot head of a zipfian
  // pair distribution without pretending to cover the quadratic tail.
  if (num_items <= 0) return 0;
  if (num_items > kMaxReachSlots / 4) return kMaxReachSlots;
  return std::max(kMinReachSlots, 4 * num_items);
}

}  // namespace

ServingCache::ServingCache(int num_items)
    : labels_(LabelSlots(num_items)), reach_(ReachSlots(num_items)) {}

ServingCacheStats ServingCache::stats() const {
  const ShardedCacheStats labels = labels_.stats();
  const ShardedCacheStats reach = reach_.stats();
  ServingCacheStats s;
  s.label_hits = labels.hits;
  s.label_misses = labels.misses;
  s.reach_hits = reach.hits;
  s.reach_misses = reach.misses;
  return s;
}

namespace internal {

std::shared_ptr<ServingCache> MakeServingCache(int num_items) {
  if (num_items <= 0) return nullptr;
  return std::make_shared<ServingCache>(num_items);
}

}  // namespace internal

}  // namespace fvl
