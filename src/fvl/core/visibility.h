// Data visibility checks (§5): from a data label and a view label alone,
// decide in constant time whether the item is visible in the view's
// projection of the run — i.e. whether every production on the label's
// parse-tree path is active and, for §5 grouped views, whether the item's
// creation ports are group-boundary ports.

#ifndef FVL_CORE_VISIBILITY_H_
#define FVL_CORE_VISIBILITY_H_

#include "fvl/core/data_label.h"
#include "fvl/core/view_label.h"

namespace fvl {

bool IsItemVisible(const DataLabel& label, const ViewLabel& view);

}  // namespace fvl

#endif  // FVL_CORE_VISIBILITY_H_
