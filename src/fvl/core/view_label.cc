#include "fvl/core/view_label.h"

#include <deque>

#include "fvl/util/check.h"
#include "fvl/workflow/port_graph.h"

namespace fvl {

const char* ToString(ViewLabelMode mode) {
  switch (mode) {
    case ViewLabelMode::kSpaceEfficient:
      return "Space-Efficient";
    case ViewLabelMode::kDefault:
      return "Default";
    case ViewLabelMode::kQueryEfficient:
      return "Query-Efficient";
  }
  return "?";
}

namespace {

// Lightweight per-production port reachability used by the space-efficient
// variant: builds adjacency lists and answers one matrix with per-source
// BFS, without materializing the full closure.
class ProductionReach {
 public:
  ProductionReach(const Grammar& g, const SimpleWorkflow& w,
                  const DependencyAssignment& deps,
                  const PortGraphOverlay* overlay)
      : grammar_(&g), workflow_(&w) {
    const int n = w.num_members();
    input_base_.resize(n);
    output_base_.resize(n);
    int next = 0;
    for (int m = 0; m < n; ++m) {
      const Module& module = g.module(w.members[m]);
      input_base_[m] = next;
      next += module.num_inputs;
      output_base_[m] = next;
      next += module.num_outputs;
    }
    adjacency_.resize(next);
    for (int m = 0; m < n; ++m) {
      if (overlay != nullptr &&
          m < static_cast<int>(overlay->suppress_member.size()) &&
          overlay->suppress_member[m]) {
        continue;
      }
      const BoolMatrix& deps_matrix = deps.Get(w.members[m]);
      for (int i = 0; i < deps_matrix.rows(); ++i) {
        for (int o = 0; o < deps_matrix.cols(); ++o) {
          if (deps_matrix.Get(i, o)) {
            adjacency_[input_base_[m] + i].push_back(output_base_[m] + o);
          }
        }
      }
    }
    std::vector<bool> suppressed(w.edges.size(), false);
    if (overlay != nullptr) {
      for (int index : overlay->suppressed_edges) suppressed[index] = true;
    }
    for (size_t i = 0; i < w.edges.size(); ++i) {
      if (suppressed[i]) continue;
      const DataEdge& e = w.edges[i];
      adjacency_[output_base_[e.src.member] + e.src.port].push_back(
          input_base_[e.dst.member] + e.dst.port);
    }
    if (overlay != nullptr) {
      for (const PortGraphOverlay::CrossDep& dep : overlay->extra_deps) {
        adjacency_[input_base_[dep.from_input.member] + dep.from_input.port]
            .push_back(output_base_[dep.to_output.member] +
                       dep.to_output.port);
      }
    }
  }

  int InputNode(PortRef p) const { return input_base_[p.member] + p.port; }
  int OutputNode(PortRef p) const { return output_base_[p.member] + p.port; }

  std::vector<bool> Bfs(int source) const {
    std::vector<bool> visited(adjacency_.size(), false);
    std::deque<int> queue = {source};
    visited[source] = true;
    while (!queue.empty()) {
      int node = queue.front();
      queue.pop_front();
      for (int next : adjacency_[node]) {
        if (!visited[next]) {
          visited[next] = true;
          queue.push_back(next);
        }
      }
    }
    return visited;
  }

  // rows: reach set of each source; entry (r, c) = targets[c] reachable.
  BoolMatrix Matrix(const std::vector<int>& sources,
                    const std::vector<int>& targets) const {
    BoolMatrix result(static_cast<int>(sources.size()),
                      static_cast<int>(targets.size()));
    for (size_t r = 0; r < sources.size(); ++r) {
      std::vector<bool> reach = Bfs(sources[r]);
      for (size_t c = 0; c < targets.size(); ++c) {
        if (reach[targets[c]]) result.Set(static_cast<int>(r),
                                          static_cast<int>(c));
      }
    }
    return result;
  }

  std::vector<int> InitialNodes() const {
    std::vector<int> nodes;
    for (const PortRef& p : workflow_->initial_inputs) {
      nodes.push_back(InputNode(p));
    }
    return nodes;
  }
  std::vector<int> FinalNodes() const {
    std::vector<int> nodes;
    for (const PortRef& p : workflow_->final_outputs) {
      nodes.push_back(OutputNode(p));
    }
    return nodes;
  }
  std::vector<int> MemberInputNodes(int member) const {
    std::vector<int> nodes;
    const Module& module = grammar_->module(workflow_->members[member]);
    for (int p = 0; p < module.num_inputs; ++p) {
      nodes.push_back(input_base_[member] + p);
    }
    return nodes;
  }
  std::vector<int> MemberOutputNodes(int member) const {
    std::vector<int> nodes;
    const Module& module = grammar_->module(workflow_->members[member]);
    for (int p = 0; p < module.num_outputs; ++p) {
      nodes.push_back(output_base_[member] + p);
    }
    return nodes;
  }

 private:
  const Grammar* grammar_;
  const SimpleWorkflow* workflow_;
  std::vector<int> input_base_;
  std::vector<int> output_base_;
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace

BoolMatrix ViewLabel::ComputeI(ProductionId k, int pos) const {
  const Production& p = grammar_->production(k);
  const PortGraphOverlay* overlay =
      overlay_index_[k] >= 0 ? &overlays_[overlay_index_[k]] : nullptr;
  ProductionReach reach(*grammar_, p.rhs, full_, overlay);
  return reach.Matrix(reach.InitialNodes(), reach.MemberInputNodes(pos));
}

BoolMatrix ViewLabel::ComputeO(ProductionId k, int pos) const {
  const Production& p = grammar_->production(k);
  const PortGraphOverlay* overlay =
      overlay_index_[k] >= 0 ? &overlays_[overlay_index_[k]] : nullptr;
  ProductionReach reach(*grammar_, p.rhs, full_, overlay);
  // O is reversed: rows are the production's final outputs, columns the
  // member's outputs; entry (x, y) = member output y reaches final x.
  std::vector<int> member_outputs = reach.MemberOutputNodes(pos);
  std::vector<int> finals = reach.FinalNodes();
  return reach.Matrix(member_outputs, finals).Transpose();
}

BoolMatrix ViewLabel::ComputeZ(ProductionId k, int i, int j) const {
  const Production& p = grammar_->production(k);
  const PortGraphOverlay* overlay =
      overlay_index_[k] >= 0 ? &overlays_[overlay_index_[k]] : nullptr;
  ProductionReach reach(*grammar_, p.rhs, full_, overlay);
  return reach.Matrix(reach.MemberOutputNodes(i), reach.MemberInputNodes(j));
}

std::optional<BoolMatrix> ViewLabel::I(ProductionId k, int pos) const {
  if (!active_[k]) return std::nullopt;
  if (materialized_) return i_mats_[k][pos];
  return ComputeI(k, pos);
}

std::optional<BoolMatrix> ViewLabel::O(ProductionId k, int pos) const {
  if (!active_[k]) return std::nullopt;
  if (materialized_) return o_mats_[k][pos];
  return ComputeO(k, pos);
}

std::optional<BoolMatrix> ViewLabel::Z(ProductionId k, int i, int j) const {
  if (!active_[k]) return std::nullopt;
  const Module& from = grammar_->module(grammar_->production(k).rhs.members[i]);
  const Module& to = grammar_->module(grammar_->production(k).rhs.members[j]);
  if (i >= j) {
    // Members are topologically ordered: the matrix is empty (§4.3).
    return BoolMatrix(from.num_outputs, to.num_inputs);
  }
  if (materialized_) {
    int members = grammar_->production(k).rhs.num_members();
    return z_mats_[k][i * members + j];
  }
  return ComputeZ(k, i, j);
}

bool ViewLabel::CycleFullyActive(int s) const {
  const ProductionGraph::Cycle& cycle = pg_->cycle(s);
  for (const PgEdge& edge : cycle.edges) {
    if (!active_[edge.production]) return false;
  }
  return true;
}

std::optional<BoolMatrix> ViewLabel::WalkStepwise(int s, int t, int iteration,
                                                  bool inputs) const {
  // Identity over the ports of the cycle member the walk starts at.
  ModuleId first = pg_->EdgeSource(pg_->CycleEdgeAt(s, t));
  int dims = inputs ? grammar_->module(first).num_inputs
                    : grammar_->module(first).num_outputs;
  BoolMatrix result = BoolMatrix::Identity(dims);
  for (int a = 0; a < iteration - 1; ++a) {
    PgEdge edge = pg_->CycleEdgeAt(s, t + a);
    std::optional<BoolMatrix> factor =
        inputs ? I(edge.production, edge.position)
               : O(edge.production, edge.position);
    if (!factor.has_value()) return std::nullopt;
    result = result.Multiply(*factor);
  }
  return result;
}

std::optional<BoolMatrix> ViewLabel::InputsWalk(int s, int t,
                                                int iteration) const {
  FVL_CHECK(iteration >= 1);
  // Callers pass unwrapped start offsets (e.g. t+i from Algorithm 2).
  t %= pg_->cycle(s).length();
  if (mode_ == ViewLabelMode::kQueryEfficient && walk_caches_[s][t].valid) {
    const WalkCache& cache = walk_caches_[s][t];
    int l = pg_->cycle(s).length();
    int64_t total = iteration - 1;
    int64_t q = total / l;
    int r = static_cast<int>(total % l);
    return cache.input_powers->Power(q).Multiply(cache.input_prefix[r]);
  }
  if (CycleFullyActive(s)) {
    // Divide-and-conquer over the full-cycle product (Lemma 5's O(log i)).
    // Also used by the space-efficient variant: the full-cycle product X
    // costs one bounded batch of graph searches, after which powering is
    // logarithmic in the iteration count instead of linear.
    int l = pg_->cycle(s).length();
    int64_t total = iteration - 1;
    if (total >= 2 * l) {
      std::optional<BoolMatrix> x = WalkStepwise(s, t, l + 1, /*inputs=*/true);
      std::optional<BoolMatrix> rest =
          WalkStepwise(s, t, static_cast<int>(total % l) + 1, /*inputs=*/true);
      if (!x.has_value() || !rest.has_value()) return std::nullopt;
      return BoolMatrixPower(*x, total / l).Multiply(*rest);
    }
  }
  return WalkStepwise(s, t, iteration, /*inputs=*/true);
}

std::optional<BoolMatrix> ViewLabel::OutputsWalk(int s, int t,
                                                 int iteration) const {
  FVL_CHECK(iteration >= 1);
  t %= pg_->cycle(s).length();
  if (mode_ == ViewLabelMode::kQueryEfficient && walk_caches_[s][t].valid) {
    const WalkCache& cache = walk_caches_[s][t];
    int l = pg_->cycle(s).length();
    int64_t total = iteration - 1;
    int64_t q = total / l;
    int r = static_cast<int>(total % l);
    return cache.output_powers->Power(q).Multiply(cache.output_prefix[r]);
  }
  if (CycleFullyActive(s)) {
    int l = pg_->cycle(s).length();
    int64_t total = iteration - 1;
    if (total >= 2 * l) {
      std::optional<BoolMatrix> x = WalkStepwise(s, t, l + 1, /*inputs=*/false);
      std::optional<BoolMatrix> rest = WalkStepwise(
          s, t, static_cast<int>(total % l) + 1, /*inputs=*/false);
      if (!x.has_value() || !rest.has_value()) return std::nullopt;
      return BoolMatrixPower(*x, total / l).Multiply(*rest);
    }
  }
  return WalkStepwise(s, t, iteration, /*inputs=*/false);
}

bool ViewLabel::InputPortVisible(ProductionId k, int member, int port) const {
  if (hidden_index_[k] < 0) return true;
  const HiddenPorts& hidden = hidden_[hidden_index_[k]];
  return !hidden.input_hidden[member][port];
}

bool ViewLabel::OutputPortVisible(ProductionId k, int member, int port) const {
  if (hidden_index_[k] < 0) return true;
  const HiddenPorts& hidden = hidden_[hidden_index_[k]];
  return !hidden.output_hidden[member][port];
}

int64_t ViewLabel::SizeBits() const {
  int64_t bits = static_cast<int64_t>(active_.size());  // active flags
  for (ModuleId m = 0; m < grammar_->num_modules(); ++m) {
    if (full_.IsDefined(m)) bits += full_.Get(m).SizeBits();
  }
  if (materialized_) {
    for (ProductionId k = 0; k < grammar_->num_productions(); ++k) {
      for (const BoolMatrix& m : i_mats_[k]) bits += m.SizeBits();
      for (const BoolMatrix& m : o_mats_[k]) bits += m.SizeBits();
      for (const BoolMatrix& m : z_mats_[k]) bits += m.SizeBits();
    }
  }
  if (mode_ == ViewLabelMode::kQueryEfficient) {
    for (const auto& per_cycle : walk_caches_) {
      for (const WalkCache& cache : per_cycle) {
        if (!cache.valid) continue;
        for (const BoolMatrix& m : cache.input_prefix) bits += m.SizeBits();
        for (const BoolMatrix& m : cache.output_prefix) bits += m.SizeBits();
        bits += cache.input_powers->SizeBits();
        bits += cache.output_powers->SizeBits();
      }
    }
  }
  return bits;
}

ViewLabel ViewLabeler::Label(const CompiledView& view,
                             ViewLabelMode mode) const {
  std::vector<bool> active(grammar_->num_productions(), false);
  for (ProductionId k = 0; k < grammar_->num_productions(); ++k) {
    active[k] = view.IsActiveProduction(k);
  }
  return Build(active, view.full(), mode, nullptr);
}

ViewLabel ViewLabeler::Label(const GroupedView& view,
                             ViewLabelMode mode) const {
  std::vector<bool> active(grammar_->num_productions(), false);
  for (ProductionId k = 0; k < grammar_->num_productions(); ++k) {
    active[k] = view.IsActiveProduction(k);
  }
  return Build(active, view.base().full(), mode, &view);
}

ViewLabel ViewLabeler::Build(const std::vector<bool>& active,
                             const DependencyAssignment& full,
                             ViewLabelMode mode,
                             const GroupedView* grouped) const {
  ViewLabel label;
  label.mode_ = mode;
  label.grammar_ = grammar_;
  label.pg_ = pg_;
  label.active_ = active;
  label.full_ = full;
  FVL_CHECK(full.IsDefined(grammar_->start()));
  label.start_matrix_ = full.Get(grammar_->start());

  label.hidden_index_.assign(grammar_->num_productions(), -1);
  label.overlay_index_.assign(grammar_->num_productions(), -1);
  if (grouped != nullptr) {
    for (ProductionId k = 0; k < grammar_->num_productions(); ++k) {
      const PortGraphOverlay* overlay = grouped->OverlayFor(k);
      if (overlay == nullptr) continue;
      label.overlay_index_[k] = static_cast<int>(label.overlays_.size());
      label.overlays_.push_back(*overlay);

      ViewLabel::HiddenPorts hidden;
      const SimpleWorkflow& w = grammar_->production(k).rhs;
      hidden.input_hidden.resize(w.num_members());
      hidden.output_hidden.resize(w.num_members());
      for (int m = 0; m < w.num_members(); ++m) {
        const Module& module = grammar_->module(w.members[m]);
        hidden.input_hidden[m].assign(module.num_inputs, false);
        hidden.output_hidden[m].assign(module.num_outputs, false);
        for (int port = 0; port < module.num_inputs; ++port) {
          hidden.input_hidden[m][port] = !grouped->InputPortVisible(k, m, port);
        }
        for (int port = 0; port < module.num_outputs; ++port) {
          hidden.output_hidden[m][port] =
              !grouped->OutputPortVisible(k, m, port);
        }
      }
      label.hidden_index_[k] = static_cast<int>(label.hidden_.size());
      label.hidden_.push_back(std::move(hidden));
    }
  }

  if (mode == ViewLabelMode::kSpaceEfficient) return label;

  // Materialize I, O, Z from one full port graph per active production.
  label.materialized_ = true;
  label.i_mats_.resize(grammar_->num_productions());
  label.o_mats_.resize(grammar_->num_productions());
  label.z_mats_.resize(grammar_->num_productions());
  for (ProductionId k = 0; k < grammar_->num_productions(); ++k) {
    if (!active[k]) continue;
    const Production& p = grammar_->production(k);
    const PortGraphOverlay* overlay =
        label.overlay_index_[k] >= 0 ? &label.overlays_[label.overlay_index_[k]]
                                     : nullptr;
    WorkflowPortGraph port_graph(*grammar_, p.rhs, full, overlay);
    int members = p.rhs.num_members();
    label.i_mats_[k].reserve(members);
    label.o_mats_[k].reserve(members);
    for (int pos = 0; pos < members; ++pos) {
      label.i_mats_[k].push_back(port_graph.InitialToMemberInputs(pos));
      label.o_mats_[k].push_back(port_graph.MemberOutputsToFinalReversed(pos));
    }
    label.z_mats_[k].resize(static_cast<size_t>(members) * members);
    for (int i = 0; i < members; ++i) {
      for (int j = 0; j < members; ++j) {
        if (i < j) {
          label.z_mats_[k][i * members + j] =
              port_graph.MemberOutputsToMemberInputs(i, j);
        } else {
          const Module& from = grammar_->module(p.rhs.members[i]);
          const Module& to = grammar_->module(p.rhs.members[j]);
          label.z_mats_[k][i * members + j] =
              BoolMatrix(from.num_outputs, to.num_inputs);
        }
      }
    }
  }

  if (mode != ViewLabelMode::kQueryEfficient) return label;

  // Walk caches per (cycle, start edge).
  label.walk_caches_.resize(pg_->num_cycles());
  for (int s = 0; s < pg_->num_cycles(); ++s) {
    int l = pg_->cycle(s).length();
    label.walk_caches_[s].resize(l);
    if (!label.CycleFullyActive(s)) continue;
    for (int t = 0; t < l; ++t) {
      ViewLabel::WalkCache cache;
      cache.valid = true;
      ModuleId first = pg_->EdgeSource(pg_->CycleEdgeAt(s, t));
      BoolMatrix in_acc = BoolMatrix::Identity(grammar_->module(first).num_inputs);
      BoolMatrix out_acc =
          BoolMatrix::Identity(grammar_->module(first).num_outputs);
      cache.input_prefix.push_back(in_acc);
      cache.output_prefix.push_back(out_acc);
      for (int r = 0; r < l; ++r) {
        PgEdge edge = pg_->CycleEdgeAt(s, t + r);
        in_acc = in_acc.Multiply(label.i_mats_[edge.production][edge.position]);
        out_acc =
            out_acc.Multiply(label.o_mats_[edge.production][edge.position]);
        if (r + 1 < l) {
          cache.input_prefix.push_back(in_acc);
          cache.output_prefix.push_back(out_acc);
        }
      }
      // in_acc / out_acc now hold the full-cycle products X.
      cache.input_powers.emplace(in_acc);
      cache.output_powers.emplace(out_acc);
      label.walk_caches_[s][t] = std::move(cache);
    }
  }
  return label;
}

}  // namespace fvl
