#include "fvl/core/visibility.h"

#include <algorithm>

namespace fvl {

namespace {

bool PathVisible(const std::vector<EdgeLabel>& path, const ViewLabel& view) {
  const ProductionGraph& pg = view.production_graph();
  for (const EdgeLabel& edge : path) {
    if (edge.kind == EdgeLabel::Kind::kProduction) {
      if (!view.ProductionActive(edge.production)) return false;
    } else {
      // Unfolding i members of cycle s uses the productions of cycle edges
      // t .. t+i-2; checking min(i-1, cycle length) suffices (they repeat).
      int length = pg.cycle(edge.cycle).length();
      int needed = std::min(edge.iteration - 1, length);
      for (int a = 0; a < needed; ++a) {
        PgEdge cycle_edge = pg.CycleEdgeAt(edge.cycle, edge.start + a);
        if (!view.ProductionActive(cycle_edge.production)) return false;
      }
    }
  }
  return true;
}

}  // namespace

bool IsItemVisible(const DataLabel& label, const ViewLabel& view) {
  if (label.producer.has_value()) {
    if (!PathVisible(label.producer->path, view)) return false;
    const auto& path = label.producer->path;
    if (!path.empty() && path.back().kind == EdgeLabel::Kind::kProduction) {
      if (!view.OutputPortVisible(path.back().production, path.back().position,
                                  label.producer->port)) {
        return false;
      }
    }
  }
  if (label.consumer.has_value()) {
    if (!PathVisible(label.consumer->path, view)) return false;
    const auto& path = label.consumer->path;
    if (!path.empty() && path.back().kind == EdgeLabel::Kind::kProduction) {
      if (!view.InputPortVisible(path.back().production, path.back().position,
                                 label.consumer->port)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace fvl
