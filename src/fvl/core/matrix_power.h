// Boolean matrix powers for recursion walks (§4.4.3, Lemma 5).
//
// A recursion of i iterations multiplies i-1 reachability matrices that
// repeat with the cycle length l, so Inputs/Outputs reduce to X^q times a
// prefix product. The sequence X, X², X³, … over a finite boolean-matrix
// space is eventually periodic: there are a < b with X^a == X^b, after which
// X^q == X^{a + (q-a) mod (b-a)}. MatrixPowerOracle finds (a, b) once and
// answers any power in O(1) (the Query-Efficient variant materializes the
// oracle in the view label); BoolMatrixPower is the O(log q)
// divide-and-conquer fallback used by the Default variant.

#ifndef FVL_CORE_MATRIX_POWER_H_
#define FVL_CORE_MATRIX_POWER_H_

#include <cstdint>
#include <vector>

#include "fvl/util/boolean_matrix.h"

namespace fvl {

// X^q by repeated squaring; q >= 0 (X^0 = identity). X must be square.
BoolMatrix BoolMatrixPower(const BoolMatrix& x, int64_t q);

class MatrixPowerOracle {
 public:
  // X must be square. The transient a and period b-a of boolean-matrix power
  // sequences are tiny in practice; `max_powers` only guards against
  // pathological inputs.
  explicit MatrixPowerOracle(BoolMatrix x, int max_powers = 1 << 16);

  // X^q in O(1); q >= 0.
  const BoolMatrix& Power(int64_t q) const;

  int cycle_start() const { return cycle_start_; }    // the paper's a
  int cycle_period() const { return cycle_period_; }  // the paper's b - a

  // Storage cost of the materialized powers, for view-label accounting.
  int64_t SizeBits() const;

 private:
  std::vector<BoolMatrix> powers_;  // X^0 .. X^{b-1}
  int cycle_start_ = 0;
  int cycle_period_ = 1;
};

}  // namespace fvl

#endif  // FVL_CORE_MATRIX_POWER_H_
