#include "fvl/core/label_store.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace fvl {

namespace internal {

// Lock-free by design, not by accident: the probe is read from test threads
// while arenas are created/destroyed on others, so it uses relaxed atomics
// with a CAS loop for the peak instead of a mutex. `peak` is monotone
// between ResetPeak calls; concurrent Add/ResetPeak may interleave, which is
// fine — the probe is a test observability hook, not a correctness input.
// (TSan exercises this path via tests/concurrency_stress_test.cc.)
namespace {
std::atomic<int> live_stores{0};
std::atomic<int> peak_stores{0};
}  // namespace

int StoreCountProbe::live() {
  return live_stores.load(std::memory_order_relaxed);
}

int StoreCountProbe::peak() {
  return peak_stores.load(std::memory_order_relaxed);
}

void StoreCountProbe::ResetPeak() {
  peak_stores.store(live_stores.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
}

void StoreCountProbe::Add(int delta) {
  int now = live_stores.fetch_add(delta, std::memory_order_relaxed) + delta;
  int peak = peak_stores.load(std::memory_order_relaxed);
  while (now > peak && !peak_stores.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

}  // namespace internal

namespace {

// Appends the relocated bit range [start_bit, end_bit) of `words` to `out`
// in 64-bit chunks (both ends take the word-parallel fast paths).
void CopyBits(const std::vector<uint64_t>& words, int64_t start_bit,
              int64_t end_bit, BitWriter* out) {
  BitReader reader(&words, start_bit, end_bit);
  for (int64_t remaining = end_bit - start_bit; remaining > 0;) {
    int chunk = remaining < 64 ? static_cast<int>(remaining) : 64;
    out->WriteFixed(reader.ReadFixed(chunk), chunk);
    remaining -= chunk;
  }
}

// Same relocation, from a live reader (which the caller has bounds-checked
// to hold at least `bits` more bits).
void CopyBits(BitReader* reader, int64_t bits, BitWriter* out) {
  while (bits > 0) {
    int chunk = bits < 64 ? static_cast<int>(bits) : 64;
    out->WriteFixed(reader->ReadFixed(chunk), chunk);
    bits -= chunk;
  }
}

}  // namespace

int LabelStore::GroupOf(int global) const {
  FVL_CHECK(global >= 0 && global < total_items());
  // First base strictly above `global`.
  auto it = std::upper_bound(group_base_.begin(), group_base_.end(),
                             static_cast<int64_t>(global));
  return static_cast<int>(it - group_base_.begin()) - 1;
}

void LabelStore::MaybePushSkip() {
  // The covered counters rather than the stream sizes: identical at every
  // span boundary for owned stores, and the only correct positions when
  // the arena is borrowed (arena_ is empty then — the bits live in the
  // mapped blob).
  if (num_spans_ - skips_.back().first_item >= kSkipInterval) {
    skips_.push_back({num_spans_, meta_covered_bits_, arena_covered_bits_});
  }
}

void LabelStore::ThawArena() {
  if (!arena_borrowed()) return;
  BitReader reader(borrowed_arena_, 0, borrowed_arena_bits_);
  BitWriter owned;
  CopyBits(&reader, borrowed_arena_bits_, &owned);
  arena_ = std::move(owned);
  borrowed_arena_ = nullptr;
  borrowed_arena_bits_ = 0;
}

void LabelStore::Append(const DataLabel& label) {
  FVL_CHECK(num_groups() > 0);
  ThawArena();
  MaybePushSkip();
  const int64_t length = codec_.EncodedBits(label);
  meta_.WriteGamma(static_cast<uint64_t>(length));
  meta_covered_bits_ += GammaLength(static_cast<uint64_t>(length));
  if (length <= inline_threshold_) {
    codec_.EncodeTo(label, &meta_);
    meta_covered_bits_ += length;
    ++inline_items_;
  } else {
    codec_.EncodeTo(label, &arena_);
    arena_covered_bits_ += length;
  }
  total_label_bits_ += length;
  ++num_spans_;
  ++group_base_.back();
}

void LabelStore::AppendSpan(BitReader* payload, int64_t length) {
  MaybePushSkip();
  meta_.WriteGamma(static_cast<uint64_t>(length));
  meta_covered_bits_ += GammaLength(static_cast<uint64_t>(length));
  if (length <= inline_threshold_) {
    CopyBits(payload, length, &meta_);
    meta_covered_bits_ += length;
    ++inline_items_;
  } else {
    ThawArena();
    CopyBits(payload, length, &arena_);
    arena_covered_bits_ += length;
  }
  total_label_bits_ += length;
  ++num_spans_;
}

void LabelStore::AppendSpanBorrowed(int64_t length) {
  MaybePushSkip();
  meta_.WriteGamma(static_cast<uint64_t>(length));
  meta_covered_bits_ += GammaLength(static_cast<uint64_t>(length));
  arena_covered_bits_ += length;  // the payload sits in the borrowed bytes
  total_label_bits_ += length;
  ++num_spans_;
}

LabelStore::SpanLoc LabelStore::Locate(int global) const {
  // Last skip entry at or before `global`, then a <= kSkipInterval-item
  // forward scan of the meta stream (plus the seam slack bulk appends can
  // introduce — still O(1)-ish).
  auto it = std::upper_bound(
      skips_.begin(), skips_.end(), static_cast<int64_t>(global),
      [](int64_t item, const Skip& skip) { return item < skip.first_item; });
  const Skip& skip = *(it - 1);
  int64_t item = skip.first_item;
  int64_t arena_pos = skip.arena_start;
  BitReader meta(&meta_.words(), skip.meta_start, meta_covered_bits_);
  for (;; ++item) {
    const int64_t length = static_cast<int64_t>(meta.ReadGamma());
    if (item == global) {
      if (length <= inline_threshold_) return {true, meta.position(), length};
      return {false, arena_pos, length};
    }
    if (length <= inline_threshold_) {
      meta.SkipBits(length);
    } else {
      arena_pos += length;
    }
  }
}

BitReader LabelStore::SpanReader(int global) const {
  FVL_CHECK(global >= 0 && global < total_items());
  const SpanLoc loc = Locate(global);
  if (loc.is_inline) {
    return BitReader(&meta_.words(), loc.start, loc.start + loc.length);
  }
  return ArenaReader(loc.start, loc.start + loc.length);
}

DataLabel LabelStore::DecodeLabel(int global) const {
  BitReader reader = SpanReader(global);
  DataLabel label = codec_.Decode(&reader);
  FVL_CHECK(reader.AtEnd());
  return label;
}

int64_t LabelStore::LabelBits(int global) const {
  FVL_CHECK(global >= 0 && global < total_items());
  return Locate(global).length;
}

// --- SpanCursor --------------------------------------------------------------

void LabelStore::SpanCursor::SeekTo(int global) {
  if (global < item_) {
    // Backward jump: restart from the skip table.
    const std::vector<Skip>& skips = store_->skips_;
    auto it = std::upper_bound(
        skips.begin(), skips.end(), static_cast<int64_t>(global),
        [](int64_t item, const Skip& skip) { return item < skip.first_item; });
    const Skip& skip = *(it - 1);
    item_ = static_cast<int>(skip.first_item);
    meta_pos_ = skip.meta_start;
    arena_pos_ = skip.arena_start;
  }
  if (item_ == global) return;
  BitReader meta(&store_->meta_.words(), meta_pos_,
                 store_->meta_covered_bits_);
  while (item_ < global) {
    const int64_t length = static_cast<int64_t>(meta.ReadGamma());
    if (length <= store_->inline_threshold_) {
      meta.SkipBits(length);
    } else {
      arena_pos_ += length;
    }
    ++item_;
  }
  meta_pos_ = meta.position();
}

BitReader LabelStore::SpanCursor::SpanAt(int global) {
  FVL_CHECK(global >= 0 && global < store_->total_items());
  SeekTo(global);
  BitReader meta(&store_->meta_.words(), meta_pos_,
                 store_->meta_covered_bits_);
  const int64_t length = static_cast<int64_t>(meta.ReadGamma());
  ++item_;
  if (length <= store_->inline_threshold_) {
    const int64_t start = meta.position();
    meta_pos_ = start + length;
    return BitReader(&store_->meta_.words(), start, start + length);
  }
  const int64_t start = arena_pos_;
  meta_pos_ = meta.position();
  arena_pos_ += length;
  return store_->ArenaReader(start, start + length);
}

DataLabel LabelStore::SpanCursor::DecodeAt(int global) {
  BitReader reader = SpanAt(global);
  DataLabel label = store_->codec_.Decode(&reader);
  FVL_CHECK(reader.AtEnd());
  return label;
}

int64_t LabelStore::SpanCursor::LabelBitsAt(int global) {
  FVL_CHECK(global >= 0 && global < store_->total_items());
  SeekTo(global);
  BitReader meta(&store_->meta_.words(), meta_pos_,
                 store_->meta_covered_bits_);
  const int64_t length = static_cast<int64_t>(meta.ReadGamma());
  ++item_;
  if (length <= store_->inline_threshold_) {
    meta_pos_ = meta.position() + length;
  } else {
    meta_pos_ = meta.position();
    arena_pos_ += length;
  }
  return length;
}

// --- Bulk appends ------------------------------------------------------------

Status LabelStore::AppendArena(const LabelStore& other) {
  FVL_CHECK(other.codec_ == codec_);  // implies equal inline thresholds
  // Rebasing assumes the source spans cover its whole streams — true for
  // live stores by construction and enforced by ParseTail for parsed ones,
  // but a hand-assembled or corrupted store must surface recoverably, not
  // silently graft its uncovered bits onto the next appended span.
  if (other.meta_covered_bits_ != other.meta_.size_bits() ||
      other.arena_covered_bits_ != other.arena_size_bits()) {
    return Status::Error(
        ErrorCode::kInvalidArgument,
        "source store is inconsistent: spans cover " +
            std::to_string(other.meta_covered_bits_ +
                           other.arena_covered_bits_) +
            " of " +
            std::to_string(other.meta_.size_bits() +
                           other.arena_size_bits()) +
            " stream bits");
  }
  ThawArena();  // the target's streams are about to grow
  const int64_t item_base = num_spans_;
  const int64_t meta_base = meta_.size_bits();
  const int64_t arena_base = arena_.size_bits();
  CopyBits(other.meta_.words(), 0, other.meta_.size_bits(), &meta_);
  if (other.arena_size_bits() > 0) {
    // Through the source's arena reader, which serves borrowed (mapped)
    // arenas byte-wise — merging a file-served input never materializes it.
    BitReader arena_reader = other.ArenaReader(0, other.arena_size_bits());
    CopyBits(&arena_reader, other.arena_size_bits(), &arena_);
  }
  // Per-skip integer fixups — never a per-label pass. The rebased origin
  // entry doubles as the seam checkpoint, keeping scans bounded across the
  // append boundary.
  skips_.reserve(skips_.size() + other.skips_.size());
  for (const Skip& skip : other.skips_) {
    skips_.push_back({item_base + skip.first_item, meta_base + skip.meta_start,
                      arena_base + skip.arena_start});
  }
  num_spans_ += other.num_spans_;
  total_label_bits_ += other.total_label_bits_;
  inline_items_ += other.inline_items_;
  meta_covered_bits_ += other.meta_covered_bits_;
  arena_covered_bits_ += other.arena_covered_bits_;
  return Status::Ok();
}

Status LabelStore::AppendGroups(const LabelStore& other) {
  const int64_t item_base = group_base_.back();
  if (Status status = AppendArena(other); !status.ok()) return status;
  group_base_.reserve(group_base_.size() + other.num_groups());
  for (int group = 0; group < other.num_groups(); ++group) {
    group_base_.push_back(item_base + other.group_base_[group + 1]);
  }
  return Status::Ok();
}

Status LabelStore::AppendItems(const LabelStore& other) {
  FVL_CHECK(num_groups() > 0);
  if (Status status = AppendArena(other); !status.ok()) return status;
  group_base_.back() += other.total_items();
  return Status::Ok();
}

LabelStore LabelStore::ExtractDelta() {
  ThawArena();  // live-session state; borrowed stores only get here thawed
  LabelStore delta(codec_);
  delta.BeginGroup();
  CopyBits(meta_.words(), watermark_meta_bits_, meta_.size_bits(),
           &delta.meta_);
  CopyBits(arena_.words(), watermark_arena_bits_, arena_.size_bits(),
           &delta.arena_);
  // Skip entries past the watermark, rebased to the delta's origin —
  // O(delta / kSkipInterval), keeping the whole extraction O(delta).
  auto it = std::upper_bound(
      skips_.begin(), skips_.end(), static_cast<int64_t>(watermark_items_),
      [](int64_t item, const Skip& skip) { return item < skip.first_item; });
  for (; it != skips_.end(); ++it) {
    delta.skips_.push_back({it->first_item - watermark_items_,
                            it->meta_start - watermark_meta_bits_,
                            it->arena_start - watermark_arena_bits_});
  }
  delta.num_spans_ = num_spans_ - watermark_items_;
  delta.total_label_bits_ = total_label_bits_ - watermark_label_bits_;
  delta.inline_items_ = inline_items_ - watermark_inline_items_;
  delta.meta_covered_bits_ = delta.meta_.size_bits();
  delta.arena_covered_bits_ = delta.arena_.size_bits();
  delta.group_base_.back() = delta.num_spans_;
  watermark_items_ = total_items();
  watermark_meta_bits_ = meta_.size_bits();
  watermark_arena_bits_ = arena_.size_bits();
  watermark_label_bits_ = total_label_bits_;
  watermark_inline_items_ = inline_items_;
  return delta;
}

// --- Serialization -----------------------------------------------------------

void LabelStore::AppendU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

bool LabelStore::ReadU64(std::string_view blob, size_t* pos,
                         uint64_t* value) {
  // Subtraction form: `*pos + 8 > blob.size()` would wrap around for
  // adversarial positions near SIZE_MAX and admit the read.
  if (blob.size() < 8 || *pos > blob.size() - 8) return false;
  *value = 0;
  for (int i = 0; i < 8; ++i) {
    *value |= static_cast<uint64_t>(static_cast<unsigned char>(blob[*pos + i]))
              << (8 * i);
  }
  *pos += 8;
  return true;
}

template <typename Fn>
void LabelStore::ForEachCanonicalBlock(Fn&& fn) const {
  BitReader meta(&meta_.words(), 0, meta_covered_bits_);
  int64_t lens[kBlockItems];
  int64_t inline_start[kBlockItems];  // meta bit position, or -1 (in arena)
  for (int64_t first = 0; first < num_spans_; first += kBlockItems) {
    const int count = static_cast<int>(
        std::min<int64_t>(kBlockItems, num_spans_ - first));
    int64_t min_len = 0, max_len = 0;
    for (int i = 0; i < count; ++i) {
      lens[i] = static_cast<int64_t>(meta.ReadGamma());
      if (lens[i] <= inline_threshold_) {
        inline_start[i] = meta.position();
        meta.SkipBits(lens[i]);
      } else {
        inline_start[i] = -1;
      }
      min_len = i == 0 ? lens[i] : std::min(min_len, lens[i]);
      max_len = std::max(max_len, lens[i]);
    }
    fn(first, count, min_len, BitWidthFor(max_len - min_len + 1), lens,
       inline_start);
  }
}

void LabelStore::AppendTail(std::string* blob) const {
  // Codec field widths (self-description).
  for (int width : {codec_.production_bits, codec_.position_bits,
                    codec_.cycle_bits, codec_.start_bits, codec_.port_bits}) {
    blob->push_back(static_cast<char>(width));
  }
  blob->push_back(static_cast<char>(kTailFormatVersion));

  // Span stream: the length sequence re-chunked into canonical blocks of
  // exactly kBlockItems labels (vbyte block-minimum + 6-bit delta width +
  // per-item fixed-width delta, inline payloads in place). Re-chunking at
  // serialization time — rather than dumping the in-memory skip structure —
  // makes the bytes a pure function of the logical label sequence, which
  // is what keeps FromDeltas reassembly and streamed merges bit-identical
  // to their monolithic counterparts.
  BitWriter span;
  ForEachCanonicalBlock([&](int64_t /*first*/, int count, int64_t base_len,
                            int delta_width, const int64_t* lens,
                            const int64_t* inline_start) {
    span.WriteVByte(static_cast<uint64_t>(base_len));
    span.WriteFixed(static_cast<uint64_t>(delta_width), 6);
    for (int i = 0; i < count; ++i) {
      span.WriteFixed(static_cast<uint64_t>(lens[i] - base_len), delta_width);
      if (inline_start[i] >= 0) {
        CopyBits(meta_.words(), inline_start[i], inline_start[i] + lens[i],
                 &span);
      }
    }
  });
  AppendU64(blob, static_cast<uint64_t>(span.size_bits()));
  for (uint64_t word : span.words()) AppendU64(blob, word);

  // Long-label arena in item order, read through ArenaReader so borrowed
  // (mapped) arenas serialize without thawing. Emitting whole words through
  // the reader also re-zeroes any junk above the final bit, keeping the
  // output canonical whatever backs the store.
  AppendU64(blob, static_cast<uint64_t>(arena_size_bits()));
  BitReader arena = ArenaReader(0, arena_size_bits());
  for (int64_t remaining = arena_size_bits(); remaining > 0; remaining -= 64) {
    const int chunk = remaining < 64 ? static_cast<int>(remaining) : 64;
    AppendU64(blob, arena.ReadFixed(chunk));
  }
}

int64_t LabelStore::SerializedSpanBits() const {
  int64_t bits = 0;
  ForEachCanonicalBlock([&](int64_t /*first*/, int count, int64_t base_len,
                            int delta_width, const int64_t* /*lens*/,
                            const int64_t* /*inline_start*/) {
    bits += VByteLength(static_cast<uint64_t>(base_len)) + 6 +
            static_cast<int64_t>(count) * delta_width;
  });
  return bits + total_label_bits_;
}

Result<LabelStore> LabelStore::ParseTail(std::string_view blob, size_t* pos,
                                         std::vector<int64_t> group_base,
                                         uint64_t arena_bits,
                                         int tail_version,
                                         bool borrow_arena) {
  auto fail = [](const std::string& message) -> Status {
    return Status::Error(ErrorCode::kMalformedBlob, message);
  };
  const uint64_t num_items = static_cast<uint64_t>(group_base.back());

  LabelStore store;
  store.group_base_ = std::move(group_base);
  // Subtraction form, as in ReadU64: the additive check would wrap for an
  // (unvalidated) *pos near SIZE_MAX.
  if (blob.size() < 5 || *pos > blob.size() - 5) {
    return fail("truncated codec widths");
  }
  int* widths[5] = {&store.codec_.production_bits,
                    &store.codec_.position_bits, &store.codec_.cycle_bits,
                    &store.codec_.start_bits, &store.codec_.port_bits};
  for (int* width : widths) {
    *width = static_cast<unsigned char>(blob[(*pos)++]);
    if (*width > 64) return fail("codec width out of range");
  }
  store.inline_threshold_ = InlineThresholdBits(store.codec_);

  if (tail_version == kTailFormatVersion) {
    // v2 tail: version byte, canonical span stream, long-label arena.
    if (*pos >= blob.size()) return fail("truncated header");
    const int version = static_cast<unsigned char>(blob[(*pos)++]);
    if (version != kTailFormatVersion) {
      return fail("unsupported tail-format version");
    }

    uint64_t span_bits = 0;
    if (!ReadU64(blob, pos, &span_bits)) return fail("truncated span stream");
    if (span_bits / 8 > blob.size()) return fail("span stream exceeds blob");
    std::vector<uint64_t> span_words;
    span_words.reserve((span_bits + 63) / 64);
    for (uint64_t w = 0; w < (span_bits + 63) / 64; ++w) {
      uint64_t word = 0;
      if (!ReadU64(blob, pos, &word)) return fail("truncated span stream");
      span_words.push_back(word);
    }

    uint64_t payload_bits = 0;
    if (!ReadU64(blob, pos, &payload_bits)) {
      return fail("truncated label arena");
    }
    if (payload_bits / 8 > blob.size()) return fail("label arena exceeds blob");
    const uint64_t payload_word_count = (payload_bits + 63) / 64;
    // Borrowing only applies to a nonempty v2 arena (v1 re-splits payloads,
    // so this whole branch is already version-gated); an empty arena has
    // nothing to point at and stays in the plain owned state.
    const bool borrow = borrow_arena && payload_word_count > 0;
    std::vector<uint64_t> payload_words;
    if (borrow) {
      // Same bounds discipline as ReadU64, in word units: the blob must
      // hold all payload words at *pos (subtraction form — no wraparound).
      if (blob.size() / 8 < payload_word_count ||
          *pos > blob.size() - 8 * payload_word_count) {
        return fail("truncated label arena");
      }
      store.borrowed_arena_ =
          reinterpret_cast<const uint8_t*>(blob.data()) + *pos;
      store.borrowed_arena_bits_ = static_cast<int64_t>(payload_bits);
      *pos += 8 * payload_word_count;
    } else {
      payload_words.reserve(payload_word_count);
      for (uint64_t w = 0; w < payload_word_count; ++w) {
        uint64_t word = 0;
        if (!ReadU64(blob, pos, &word)) return fail("truncated label arena");
        payload_words.push_back(word);
      }
    }

    BitReader span(&span_words, 0, static_cast<int64_t>(span_bits));
    span.set_permissive();
    BitReader payload(&payload_words, 0,
                      borrow ? 0 : static_cast<int64_t>(payload_bits));
    payload.set_permissive();
    uint64_t consumed = 0;       // label content bits accounted for so far
    uint64_t long_consumed = 0;  // of those, bits living in the long arena
    for (uint64_t first = 0; first < num_items; first += kBlockItems) {
      const int count = static_cast<int>(
          std::min<uint64_t>(kBlockItems, num_items - first));
      const uint64_t base_len = span.ReadVByte();
      const int delta_width = static_cast<int>(span.ReadFixed(6));
      if (span.failed()) return fail("truncated span stream");
      if (base_len > arena_bits) return fail("label lengths exceed the arena");
      for (int i = 0; i < count; ++i) {
        const uint64_t length = base_len + span.ReadFixed(delta_width);
        if (span.failed()) return fail("truncated span stream");
        if (length < 2) return fail("label shorter than its presence bits");
        if (length > arena_bits - consumed) {
          return fail("label lengths exceed the arena");
        }
        consumed += length;
        const bool is_inline =
            length <= static_cast<uint64_t>(store.inline_threshold_);
        if (!is_inline && borrow) {
          // The payload already sits in the borrowed bytes; account for it
          // without copying. Bounds-checked against the declared arena size
          // exactly as CheckRemaining would be.
          if (length > payload_bits - long_consumed) {
            return fail("truncated label arena");
          }
          long_consumed += length;
          store.AppendSpanBorrowed(static_cast<int64_t>(length));
          continue;
        }
        if (!is_inline) long_consumed += length;
        BitReader* source = is_inline ? &span : &payload;
        if (!source->CheckRemaining(length)) {
          return fail(is_inline ? "truncated span stream"
                                : "truncated label arena");
        }
        store.AppendSpan(source, static_cast<int64_t>(length));
      }
    }
    // Also rejects 0-item blobs claiming a nonzero arena: AppendGroups
    // rebases against the covered counters, so uncovered content would be
    // grafted onto the next appended group's first span.
    if (consumed != arena_bits) {
      return fail("label lengths do not cover the arena");
    }
    if (!span.AtEnd()) return fail("span stream has trailing bits");
    if (long_consumed != payload_bits) {
      return fail("label arena has trailing bits");
    }
  } else {
    // v1 tail (FVLIDX2/FVLMRG1): flat offset table bit-packed at a fixed
    // width, then one arena holding every payload. Parsed into the v2
    // in-memory form — the offsets become per-item lengths, the payloads
    // are re-split between the meta stream and the long-label arena.
    if (*pos >= blob.size()) return fail("truncated header");
    int offset_width = static_cast<unsigned char>(blob[(*pos)++]);
    if (offset_width != BitWidthFor(static_cast<int64_t>(arena_bits) + 1)) {
      return fail("inconsistent offset width");
    }

    uint64_t offset_words = 0;
    if (!ReadU64(blob, pos, &offset_words)) return fail("truncated offsets");
    if (offset_width > 0 &&
        num_items > offset_words * 64 / static_cast<uint64_t>(offset_width)) {
      return fail("offset table too small");
    }
    BitWriter packed;
    for (uint64_t w = 0; w < offset_words; ++w) {
      uint64_t word = 0;
      if (!ReadU64(blob, pos, &word)) return fail("truncated offsets");
      packed.WriteFixed(word, 64);
    }
    BitReader reader(packed);
    std::vector<int64_t> offsets = {0};
    offsets.reserve(num_items + 1);
    for (uint64_t item = 0; item < num_items; ++item) {
      int64_t offset = static_cast<int64_t>(reader.ReadFixed(offset_width));
      if (offset < offsets.back() ||
          offset > static_cast<int64_t>(arena_bits)) {
        return fail("non-monotone offsets");
      }
      offsets.push_back(offset);
    }
    if (offsets.back() != static_cast<int64_t>(arena_bits)) {
      return fail("offsets do not cover the arena");
    }

    uint64_t arena_words = 0;
    if (!ReadU64(blob, pos, &arena_words)) return fail("truncated arena");
    if (arena_words < (arena_bits + 63) / 64) return fail("arena too small");
    if (arena_words > blob.size() / 8) return fail("truncated arena");
    std::vector<uint64_t> words;
    words.reserve(arena_words);
    for (uint64_t w = 0; w < arena_words; ++w) {
      uint64_t word = 0;
      if (!ReadU64(blob, pos, &word)) return fail("truncated arena");
      words.push_back(word);
    }

    // Consecutive offsets partition the v1 arena, so one sequential pass
    // re-homes every payload.
    BitReader payload(&words, 0, static_cast<int64_t>(arena_bits));
    for (uint64_t item = 0; item < num_items; ++item) {
      const int64_t length = offsets[item + 1] - offsets[item];
      if (length < 2) return fail("label shorter than its presence bits");
      store.AppendSpan(&payload, length);
    }
  }

  if (*pos != blob.size()) return fail("trailing bytes");

  // The accessors FVL_CHECK that every span decodes exactly under the
  // codec; an inconsistent blob (e.g. a flipped codec-width byte) must be
  // rejected here, recoverably, rather than abort on first DecodeLabel.
  SpanCursor cursor(store);
  for (uint64_t item = 0; item < num_items; ++item) {
    BitReader label_reader = cursor.SpanAt(static_cast<int>(item));
    label_reader.set_permissive();
    store.codec_.Decode(&label_reader);
    if (label_reader.failed() || !label_reader.AtEnd()) {
      std::string message = "label ";
      message += std::to_string(item);
      message += " does not decode under the blob's codec";
      return fail(message);
    }
  }
  return store;
}

}  // namespace fvl
