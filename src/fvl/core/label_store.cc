#include "fvl/core/label_store.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace fvl {

namespace internal {

// Lock-free by design, not by accident: the probe is read from test threads
// while arenas are created/destroyed on others, so it uses relaxed atomics
// with a CAS loop for the peak instead of a mutex. `peak` is monotone
// between ResetPeak calls; concurrent Add/ResetPeak may interleave, which is
// fine — the probe is a test observability hook, not a correctness input.
// (TSan exercises this path via tests/concurrency_stress_test.cc.)
namespace {
std::atomic<int> live_stores{0};
std::atomic<int> peak_stores{0};
}  // namespace

int StoreCountProbe::live() {
  return live_stores.load(std::memory_order_relaxed);
}

int StoreCountProbe::peak() {
  return peak_stores.load(std::memory_order_relaxed);
}

void StoreCountProbe::ResetPeak() {
  peak_stores.store(live_stores.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
}

void StoreCountProbe::Add(int delta) {
  int now = live_stores.fetch_add(delta, std::memory_order_relaxed) + delta;
  int peak = peak_stores.load(std::memory_order_relaxed);
  while (now > peak && !peak_stores.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

}  // namespace internal

namespace {

// Appends the relocated bit range [start_bit, end_bit) of `words` to `out`
// in 64-bit chunks (both ends take the word-parallel fast paths).
void CopyBits(const std::vector<uint64_t>& words, int64_t start_bit,
              int64_t end_bit, BitWriter* out) {
  BitReader reader(&words, start_bit, end_bit);
  for (int64_t remaining = end_bit - start_bit; remaining > 0;) {
    int chunk = remaining < 64 ? static_cast<int>(remaining) : 64;
    out->WriteFixed(reader.ReadFixed(chunk), chunk);
    remaining -= chunk;
  }
}

}  // namespace

int LabelStore::GroupOf(int global) const {
  FVL_CHECK(global >= 0 && global < total_items());
  // First base strictly above `global`.
  auto it = std::upper_bound(group_base_.begin(), group_base_.end(),
                             static_cast<int64_t>(global));
  return static_cast<int>(it - group_base_.begin()) - 1;
}

void LabelStore::Append(const DataLabel& label) {
  FVL_CHECK(num_groups() > 0);
  codec_.EncodeTo(label, &arena_);
  offsets_.push_back(arena_.size_bits());
  ++group_base_.back();
}

Status LabelStore::AppendArena(const LabelStore& other) {
  FVL_CHECK(other.codec_ == codec_);
  // Rebasing assumes the source offsets cover its whole arena — true for
  // live stores by construction and enforced by ParseTail for parsed ones,
  // but a hand-assembled or corrupted store must surface recoverably, not
  // silently graft its uncovered bits onto the next appended span.
  if (other.offsets_.back() != other.arena_bits()) {
    return Status::Error(
        ErrorCode::kInvalidArgument,
        "source store is inconsistent: offsets cover " +
            std::to_string(other.offsets_.back()) + " of " +
            std::to_string(other.arena_bits()) + " arena bits");
  }
  const int64_t arena_base = arena_.size_bits();
  CopyBits(other.arena_.words(), 0, other.arena_bits(), &arena_);
  offsets_.reserve(offsets_.size() + other.total_items());
  for (int item = 0; item < other.total_items(); ++item) {
    offsets_.push_back(arena_base + other.offsets_[item + 1]);
  }
  return Status::Ok();
}

Status LabelStore::AppendGroups(const LabelStore& other) {
  const int64_t item_base = group_base_.back();
  if (Status status = AppendArena(other); !status.ok()) return status;
  group_base_.reserve(group_base_.size() + other.num_groups());
  for (int group = 0; group < other.num_groups(); ++group) {
    group_base_.push_back(item_base + other.group_base_[group + 1]);
  }
  return Status::Ok();
}

Status LabelStore::AppendItems(const LabelStore& other) {
  FVL_CHECK(num_groups() > 0);
  if (Status status = AppendArena(other); !status.ok()) return status;
  group_base_.back() += other.total_items();
  return Status::Ok();
}

LabelStore LabelStore::ExtractDelta() {
  LabelStore delta(codec_);
  delta.BeginGroup();
  const int64_t base_bits = offsets_[watermark_items_];
  CopyBits(arena_.words(), base_bits, arena_bits(), &delta.arena_);
  delta.offsets_.reserve(total_items() - watermark_items_ + 1);
  for (int item = watermark_items_; item < total_items(); ++item) {
    delta.offsets_.push_back(offsets_[item + 1] - base_bits);
  }
  delta.group_base_.back() = total_items() - watermark_items_;
  watermark_items_ = total_items();
  return delta;
}

DataLabel LabelStore::DecodeLabel(int global) const {
  BitReader reader = SpanReader(global);
  DataLabel label = codec_.Decode(&reader);
  FVL_CHECK(reader.AtEnd());
  return label;
}

void LabelStore::AppendU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

bool LabelStore::ReadU64(std::string_view blob, size_t* pos,
                         uint64_t* value) {
  // Subtraction form: `*pos + 8 > blob.size()` would wrap around for
  // adversarial positions near SIZE_MAX and admit the read.
  if (blob.size() < 8 || *pos > blob.size() - 8) return false;
  *value = 0;
  for (int i = 0; i < 8; ++i) {
    *value |= static_cast<uint64_t>(static_cast<unsigned char>(blob[*pos + i]))
              << (8 * i);
  }
  *pos += 8;
  return true;
}

void LabelStore::AppendTail(std::string* blob) const {
  // Codec field widths (self-description).
  for (int width : {codec_.production_bits, codec_.position_bits,
                    codec_.cycle_bits, codec_.start_bits, codec_.port_bits}) {
    blob->push_back(static_cast<char>(width));
  }

  // Offsets, bit-packed at the minimal fixed width.
  int offset_width = BitWidthFor(arena_bits() + 1);
  blob->push_back(static_cast<char>(offset_width));
  BitWriter packed;
  for (size_t item = 0; item + 1 < offsets_.size(); ++item) {
    packed.WriteFixed(static_cast<uint64_t>(offsets_[item + 1]), offset_width);
  }
  AppendU64(blob, static_cast<uint64_t>(packed.words().size()));
  for (uint64_t word : packed.words()) AppendU64(blob, word);

  AppendU64(blob, static_cast<uint64_t>(arena_.words().size()));
  for (uint64_t word : arena_.words()) AppendU64(blob, word);
}

Result<LabelStore> LabelStore::ParseTail(std::string_view blob, size_t* pos,
                                         std::vector<int64_t> group_base,
                                         uint64_t arena_bits) {
  auto fail = [](const std::string& message) -> Status {
    return Status::Error(ErrorCode::kMalformedBlob, message);
  };
  const uint64_t num_items = static_cast<uint64_t>(group_base.back());

  LabelStore store;
  store.group_base_ = std::move(group_base);
  // Subtraction form, as in ReadU64: the additive check would wrap for an
  // (unvalidated) *pos near SIZE_MAX.
  if (blob.size() < 5 || *pos > blob.size() - 5) {
    return fail("truncated codec widths");
  }
  int* widths[5] = {&store.codec_.production_bits,
                    &store.codec_.position_bits, &store.codec_.cycle_bits,
                    &store.codec_.start_bits, &store.codec_.port_bits};
  for (int* width : widths) {
    *width = static_cast<unsigned char>(blob[(*pos)++]);
    if (*width > 64) return fail("codec width out of range");
  }

  if (*pos >= blob.size()) return fail("truncated header");
  int offset_width = static_cast<unsigned char>(blob[(*pos)++]);
  if (offset_width != BitWidthFor(static_cast<int64_t>(arena_bits) + 1)) {
    return fail("inconsistent offset width");
  }

  uint64_t offset_words = 0;
  if (!ReadU64(blob, pos, &offset_words)) return fail("truncated offsets");
  if (offset_width > 0 &&
      num_items > offset_words * 64 / static_cast<uint64_t>(offset_width)) {
    return fail("offset table too small");
  }
  BitWriter packed;
  for (uint64_t w = 0; w < offset_words; ++w) {
    uint64_t word = 0;
    if (!ReadU64(blob, pos, &word)) return fail("truncated offsets");
    packed.WriteFixed(word, 64);
  }
  BitReader reader(packed);
  store.offsets_ = {0};
  for (uint64_t item = 0; item < num_items; ++item) {
    int64_t offset = static_cast<int64_t>(reader.ReadFixed(offset_width));
    if (offset < store.offsets_.back() ||
        offset > static_cast<int64_t>(arena_bits)) {
      return fail("non-monotone offsets");
    }
    store.offsets_.push_back(offset);
  }
  // Also rejects 0-item blobs claiming a nonzero arena: AppendGroups
  // rebases against offsets_.back(), so uncovered arena bits would be
  // grafted onto the next appended group's first span.
  if (store.offsets_.back() != static_cast<int64_t>(arena_bits)) {
    return fail("offsets do not cover the arena");
  }

  uint64_t arena_words = 0;
  if (!ReadU64(blob, pos, &arena_words)) return fail("truncated arena");
  if (arena_words < (arena_bits + 63) / 64) return fail("arena too small");
  if (arena_words > blob.size() / 8) return fail("truncated arena");
  std::vector<uint64_t> words;
  words.reserve(arena_words);
  for (uint64_t w = 0; w < arena_words; ++w) {
    uint64_t word = 0;
    if (!ReadU64(blob, pos, &word)) return fail("truncated arena");
    words.push_back(word);
  }
  if (*pos != blob.size()) return fail("trailing bytes");
  store.arena_ = BitWriter::FromWords(std::move(words),
                                      static_cast<int64_t>(arena_bits));

  // The accessors FVL_CHECK that every span decodes exactly under the
  // codec; an inconsistent blob (e.g. a flipped codec-width byte) must be
  // rejected here, recoverably, rather than abort on first DecodeLabel.
  for (uint64_t item = 0; item < num_items; ++item) {
    BitReader label_reader = store.SpanReader(static_cast<int>(item));
    label_reader.set_permissive();
    store.codec_.Decode(&label_reader);
    if (label_reader.failed() || !label_reader.AtEnd()) {
      std::string message = "label ";
      message += std::to_string(item);
      message += " does not decode under the blob's codec";
      return fail(message);
    }
  }
  return store;
}

}  // namespace fvl
