// Compressed parse trees (Defs. 17–18), built dynamically (§4.2.3).
//
// The basic parse tree nests one node per production application; linear
// recursions would make its depth proportional to the run. The compressed
// tree inserts one *recursive node* per unfolded cycle of P(G) and flattens
// the chain of nested cycle members into its children, so the depth is
// bounded by 2·|Δ| (Lemma 4).
//
// Construction is strictly online: CompressedParseTree observes Run events
// (OnStart / OnApply) and assigns every node its edge-label path when the
// node is created; paths are never revisited, which is what makes the data
// labels of RunLabeler dynamic in the sense of Def. 10.
//
// Only strictly linear-recursive grammars are supported (Thm. 8's premise).

#ifndef FVL_CORE_PARSE_TREE_H_
#define FVL_CORE_PARSE_TREE_H_

#include <vector>

#include "fvl/core/data_label.h"
#include "fvl/run/run.h"
#include "fvl/workflow/production_graph.h"

namespace fvl {

struct ParseNode {
  enum class Kind : uint8_t { kModule, kRecursive };
  int id = -1;
  Kind kind = Kind::kModule;
  int instance = -1;            // module nodes: the run instance
  int cycle = -1;               // recursive nodes: the paper's s
  int start = -1;               // recursive nodes: the paper's t
  int parent = -1;              // -1 for the root
  int num_children = 0;
  // Edge labels from the root to this node (empty for the root). The last
  // entry is the label of the edge from `parent`.
  std::vector<EdgeLabel> path;
};

class CompressedParseTree {
 public:
  CompressedParseTree(const Grammar* grammar, const ProductionGraph* pg);

  // Must be called once, before any OnApply, with a fresh run.
  void OnStart(const Run& run);
  // Must be called after each Run::Apply, in order.
  void OnApply(const Run& run, const DerivationStep& step);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const ParseNode& node(int id) const { return nodes_[id]; }
  int root() const { return 0; }
  int NodeOfInstance(int instance) const { return node_of_instance_[instance]; }
  // Maximum node depth seen so far (number of edges from the root); bounded
  // by 2|Δ| per Lemma 4.
  int max_depth() const { return max_depth_; }

 private:
  int NewNode(ParseNode node);

  const Grammar* grammar_;
  const ProductionGraph* pg_;
  std::vector<ParseNode> nodes_;
  std::vector<int> node_of_instance_;
  int max_depth_ = 0;
};

}  // namespace fvl

#endif  // FVL_CORE_PARSE_TREE_H_
