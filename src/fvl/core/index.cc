#include "fvl/core/index.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <utility>

#include "fvl/util/check.h"

namespace fvl {

namespace {

// Version 2 added the codec field widths to the header, making the blob
// self-describing (version 1 required the caller to supply the codec).
constexpr char kMagic[8] = {'F', 'V', 'L', 'I', 'D', 'X', '2', '\0'};
// Multi-run variant (ProvenanceIndex::Merge): adds a per-run item-count
// table between the scalar header and the shared codec/offsets/arena tail.
constexpr char kMergedMagic[8] = {'F', 'V', 'L', 'M', 'R', 'G', '1', '\0'};

void AppendU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

bool ReadU64(const std::string& blob, size_t* pos, uint64_t* value) {
  if (*pos + 8 > blob.size()) return false;
  *value = 0;
  for (int i = 0; i < 8; ++i) {
    *value |= static_cast<uint64_t>(static_cast<unsigned char>(blob[*pos + i]))
              << (8 * i);
  }
  *pos += 8;
  return true;
}

// Appends the relocated bit range [start_bit, end_bit) of `words` to `out`.
void CopyBits(const std::vector<uint64_t>& words, int64_t start_bit,
              int64_t end_bit, BitWriter* out) {
  BitReader reader(&words, start_bit, end_bit);
  for (int64_t remaining = end_bit - start_bit; remaining > 0;) {
    int chunk = remaining < 64 ? static_cast<int>(remaining) : 64;
    out->WriteFixed(reader.ReadFixed(chunk), chunk);
    remaining -= chunk;
  }
}

// The tail shared by the single-run and merged formats: codec field widths,
// the bit-packed offset table, and the label arena.
void AppendCodecAndArena(const LabelCodec& codec,
                         const std::vector<int64_t>& offsets,
                         const std::vector<uint64_t>& words,
                         int64_t arena_bits, std::string* blob) {
  // Codec field widths (self-description).
  for (int width : {codec.production_bits, codec.position_bits,
                    codec.cycle_bits, codec.start_bits, codec.port_bits}) {
    blob->push_back(static_cast<char>(width));
  }

  // Offsets, bit-packed at the minimal fixed width.
  int offset_width = BitWidthFor(arena_bits + 1);
  blob->push_back(static_cast<char>(offset_width));
  BitWriter packed;
  for (size_t item = 0; item + 1 < offsets.size(); ++item) {
    packed.WriteFixed(static_cast<uint64_t>(offsets[item + 1]), offset_width);
  }
  AppendU64(blob, static_cast<uint64_t>(packed.words().size()));
  for (uint64_t word : packed.words()) AppendU64(blob, word);

  AppendU64(blob, static_cast<uint64_t>(words.size()));
  for (uint64_t word : words) AppendU64(blob, word);
}

// Parses and validates the shared tail starting at *pos; on success the
// blob is fully consumed and every label span is known to decode exactly
// under the embedded codec, so accessors of the resulting index never
// abort. `num_items` and `arena_bits` come from the caller's header and
// must already be bounded by the blob size.
Status ParseCodecAndArena(const std::string& blob, size_t* pos,
                          uint64_t num_items, uint64_t arena_bits,
                          LabelCodec* codec, std::vector<int64_t>* offsets,
                          std::vector<uint64_t>* words) {
  auto fail = [](const std::string& message) -> Status {
    return Status::Error(ErrorCode::kMalformedBlob, message);
  };
  if (*pos + 5 > blob.size()) return fail("truncated codec widths");
  int* widths[5] = {&codec->production_bits, &codec->position_bits,
                    &codec->cycle_bits, &codec->start_bits,
                    &codec->port_bits};
  for (int* width : widths) {
    *width = static_cast<unsigned char>(blob[(*pos)++]);
    if (*width > 64) return fail("codec width out of range");
  }

  if (*pos >= blob.size()) return fail("truncated header");
  int offset_width = static_cast<unsigned char>(blob[(*pos)++]);
  if (offset_width != BitWidthFor(static_cast<int64_t>(arena_bits) + 1)) {
    return fail("inconsistent offset width");
  }

  uint64_t offset_words = 0;
  if (!ReadU64(blob, pos, &offset_words)) return fail("truncated offsets");
  if (offset_width > 0 &&
      num_items > offset_words * 64 / static_cast<uint64_t>(offset_width)) {
    return fail("offset table too small");
  }
  BitWriter packed;
  for (uint64_t w = 0; w < offset_words; ++w) {
    uint64_t word = 0;
    if (!ReadU64(blob, pos, &word)) return fail("truncated offsets");
    packed.WriteFixed(word, 64);
  }
  BitReader reader(packed);
  *offsets = {0};
  for (uint64_t item = 0; item < num_items; ++item) {
    int64_t offset = static_cast<int64_t>(reader.ReadFixed(offset_width));
    if (offset < offsets->back() ||
        offset > static_cast<int64_t>(arena_bits)) {
      return fail("non-monotone offsets");
    }
    offsets->push_back(offset);
  }
  if (num_items > 0 && offsets->back() != static_cast<int64_t>(arena_bits)) {
    return fail("offsets do not cover the arena");
  }

  uint64_t arena_words = 0;
  if (!ReadU64(blob, pos, &arena_words)) return fail("truncated arena");
  if (arena_words < (arena_bits + 63) / 64) return fail("arena too small");
  if (arena_words > blob.size() / 8) return fail("truncated arena");
  words->clear();
  words->reserve(arena_words);
  for (uint64_t w = 0; w < arena_words; ++w) {
    uint64_t word = 0;
    if (!ReadU64(blob, pos, &word)) return fail("truncated arena");
    words->push_back(word);
  }
  if (*pos != blob.size()) return fail("trailing bytes");

  // The accessors FVL_CHECK that every span decodes exactly under the
  // codec; an inconsistent blob (e.g. a flipped codec-width byte) must be
  // rejected here, recoverably, rather than abort on first Label() call.
  for (uint64_t item = 0; item < num_items; ++item) {
    BitReader label_reader(words, (*offsets)[item], (*offsets)[item + 1]);
    label_reader.set_permissive();
    codec->Decode(&label_reader);
    if (label_reader.failed() || !label_reader.AtEnd()) {
      std::string message = "label ";
      message += std::to_string(item);
      message += " does not decode under the blob's codec";
      return fail(message);
    }
  }
  return Status::Ok();
}

}  // namespace

void ProvenanceIndexBuilder::Add(const DataLabel& label) {
  if (offsets_.empty()) offsets_.push_back(0);
  codec_.EncodeTo(label, &arena_);
  offsets_.push_back(arena_.size_bits());
}

ProvenanceIndex ProvenanceIndexBuilder::Build() && {
  if (offsets_.empty()) offsets_.push_back(0);
  int64_t arena_bits = arena_.size_bits();  // before TakeWords resets it
  return ProvenanceIndex(std::move(codec_), std::move(offsets_),
                         arena_.TakeWords(), arena_bits);
}

ProvenanceIndex ProvenanceIndexBuilder::FromLabeledRun(
    const ProductionGraph& pg, const RunLabeler& labeler) {
  ProvenanceIndexBuilder builder(pg);
  for (int item = 0; item < labeler.num_labels(); ++item) {
    builder.Add(labeler.Label(item));
  }
  return std::move(builder).Build();
}

int64_t ProvenanceIndex::SizeBits() const {
  // Arena plus a minimal-width offset per item.
  return arena_bits_ +
         static_cast<int64_t>(num_items()) * BitWidthFor(arena_bits_ + 1);
}

DataLabel ProvenanceIndex::Label(int item) const {
  FVL_CHECK(item >= 0 && item < num_items());
  BitReader reader(&words_, offsets_[item], offsets_[item + 1]);
  DataLabel label = codec_.Decode(&reader);
  FVL_CHECK(reader.AtEnd());
  return label;
}

std::string ProvenanceIndex::Serialize() const {
  std::string blob(kMagic, sizeof(kMagic));
  AppendU64(&blob, static_cast<uint64_t>(num_items()));
  AppendU64(&blob, static_cast<uint64_t>(arena_bits_));
  AppendCodecAndArena(codec_, offsets_, words_, arena_bits_, &blob);
  return blob;
}

Result<ProvenanceIndex> ProvenanceIndex::Deserialize(const std::string& blob) {
  auto fail = [](const std::string& message) -> Status {
    return Status::Error(ErrorCode::kMalformedBlob, message);
  };
  if (blob.size() < sizeof(kMagic) ||
      std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0) {
    return fail("bad magic");
  }
  size_t pos = sizeof(kMagic);
  uint64_t num_items = 0, arena_bits = 0;
  if (!ReadU64(blob, &pos, &num_items) || !ReadU64(blob, &pos, &arena_bits)) {
    return fail("truncated header");
  }
  // Neither count can describe more bits than the blob itself carries;
  // checking up front keeps the counts inside int64 range and bounds every
  // allocation below by the blob size.
  if (arena_bits / 8 > blob.size()) return fail("arena_bits exceeds blob");
  if (num_items / 8 > blob.size()) return fail("num_items exceeds blob");
  // num_items() narrows offsets_.size() - 1 to int.
  if (num_items >= static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    return fail("num_items exceeds supported range");
  }

  LabelCodec codec;
  std::vector<int64_t> offsets;
  std::vector<uint64_t> words;
  if (Status status = ParseCodecAndArena(blob, &pos, num_items, arena_bits,
                                         &codec, &offsets, &words);
      !status.ok()) {
    return status;
  }
  return ProvenanceIndex(std::move(codec), std::move(offsets),
                         std::move(words), static_cast<int64_t>(arena_bits));
}

Result<MergedProvenanceIndex> ProvenanceIndex::Merge(
    std::span<const ProvenanceIndex> runs) {
  if (runs.empty()) return MergedProvenanceIndex();

  const LabelCodec& codec = runs[0].codec();
  int64_t total = 0;
  for (size_t r = 1; r < runs.size(); ++r) {
    if (!(runs[r].codec() == codec)) {
      return Status::Error(
          ErrorCode::kInvalidArgument,
          "run " + std::to_string(r) +
              " was built for a different specification than run 0 "
              "(label codecs disagree)");
    }
  }
  for (const ProvenanceIndex& run : runs) total += run.num_items();
  if (total >= std::numeric_limits<int>::max()) {
    return Status::Error(ErrorCode::kInvalidArgument,
                         "merged index would exceed the supported item count");
  }

  // Relocate every label into one contiguous arena, run by run; item ids
  // stay dense, so (run, item) maps to run_base[run] + item.
  std::vector<int64_t> run_base = {0};
  std::vector<int64_t> offsets = {0};
  run_base.reserve(runs.size() + 1);
  offsets.reserve(static_cast<size_t>(total) + 1);
  BitWriter arena;
  for (const ProvenanceIndex& run : runs) {
    for (int item = 0; item < run.num_items(); ++item) {
      CopyBits(run.words_, run.offsets_[item], run.offsets_[item + 1],
               &arena);
      offsets.push_back(arena.size_bits());
    }
    run_base.push_back(run_base.back() + run.num_items());
  }
  int64_t arena_bits = arena.size_bits();  // before TakeWords resets it
  return MergedProvenanceIndex(codec, std::move(run_base), std::move(offsets),
                               arena.TakeWords(), arena_bits);
}

// --- MergedProvenanceIndex ---------------------------------------------------

int MergedProvenanceIndex::GlobalId(int run, int item) const {
  FVL_CHECK(run >= 0 && run < num_runs());
  FVL_CHECK(item >= 0 && item < num_items(run));
  return static_cast<int>(run_base_[run] + item);
}

int MergedProvenanceIndex::RunOf(int global) const {
  FVL_CHECK(global >= 0 && global < total_items());
  // First base strictly above `global`; zero-item runs (repeated bases) are
  // skipped correctly because no flat id maps into them.
  auto it = std::upper_bound(run_base_.begin(), run_base_.end(),
                             static_cast<int64_t>(global));
  return static_cast<int>(it - run_base_.begin()) - 1;
}

DataLabel MergedProvenanceIndex::LabelByGlobalId(int global) const {
  FVL_CHECK(global >= 0 && global < total_items());
  BitReader reader(&words_, offsets_[global], offsets_[global + 1]);
  DataLabel label = codec_.Decode(&reader);
  FVL_CHECK(reader.AtEnd());
  return label;
}

int64_t MergedProvenanceIndex::LabelBits(int run, int item) const {
  int global = GlobalId(run, item);
  return offsets_[global + 1] - offsets_[global];
}

int64_t MergedProvenanceIndex::SizeBits() const {
  // Arena, a minimal-width offset per item, and the per-run base table.
  return arena_bits_ +
         static_cast<int64_t>(total_items()) * BitWidthFor(arena_bits_ + 1) +
         static_cast<int64_t>(num_runs()) *
             BitWidthFor(static_cast<int64_t>(total_items()) + 1);
}

std::string MergedProvenanceIndex::Serialize() const {
  std::string blob(kMergedMagic, sizeof(kMergedMagic));
  AppendU64(&blob, static_cast<uint64_t>(num_runs()));
  AppendU64(&blob, static_cast<uint64_t>(total_items()));
  AppendU64(&blob, static_cast<uint64_t>(arena_bits_));
  for (int run = 0; run < num_runs(); ++run) {
    AppendU64(&blob, static_cast<uint64_t>(num_items(run)));
  }
  AppendCodecAndArena(codec_, offsets_, words_, arena_bits_, &blob);
  return blob;
}

Result<MergedProvenanceIndex> MergedProvenanceIndex::Deserialize(
    const std::string& blob) {
  auto fail = [](const std::string& message) -> Status {
    return Status::Error(ErrorCode::kMalformedBlob, message);
  };
  if (blob.size() < sizeof(kMergedMagic) ||
      std::memcmp(blob.data(), kMergedMagic, sizeof(kMergedMagic)) != 0) {
    return fail("bad magic");
  }
  size_t pos = sizeof(kMergedMagic);
  uint64_t num_runs = 0, total_items = 0, arena_bits = 0;
  if (!ReadU64(blob, &pos, &num_runs) || !ReadU64(blob, &pos, &total_items) ||
      !ReadU64(blob, &pos, &arena_bits)) {
    return fail("truncated header");
  }
  // Same up-front bounding as the single-run format: no claimed count may
  // describe more bytes than the blob carries, which caps every allocation
  // below and keeps all arithmetic in int64 range.
  if (num_runs > blob.size() / 8) return fail("num_runs exceeds blob");
  // num_runs() narrows run_base_.size() - 1 to int.
  if (num_runs >= static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    return fail("num_runs exceeds supported range");
  }
  if (arena_bits / 8 > blob.size()) return fail("arena_bits exceeds blob");
  if (total_items / 8 > blob.size()) return fail("total_items exceeds blob");
  if (total_items >= static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    return fail("total_items exceeds supported range");
  }

  std::vector<int64_t> run_base = {0};
  run_base.reserve(num_runs + 1);
  for (uint64_t run = 0; run < num_runs; ++run) {
    uint64_t count = 0;
    if (!ReadU64(blob, &pos, &count)) return fail("truncated run table");
    if (count > total_items - static_cast<uint64_t>(run_base.back())) {
      return fail("run item counts exceed total_items");
    }
    run_base.push_back(run_base.back() + static_cast<int64_t>(count));
  }
  if (run_base.back() != static_cast<int64_t>(total_items)) {
    return fail("run item counts do not sum to total_items");
  }

  LabelCodec codec;
  std::vector<int64_t> offsets;
  std::vector<uint64_t> words;
  if (Status status = ParseCodecAndArena(blob, &pos, total_items, arena_bits,
                                         &codec, &offsets, &words);
      !status.ok()) {
    return status;
  }
  return MergedProvenanceIndex(std::move(codec), std::move(run_base),
                               std::move(offsets), std::move(words),
                               static_cast<int64_t>(arena_bits));
}

}  // namespace fvl
