#include "fvl/core/index.h"

#include <cstring>
#include <limits>

#include "fvl/util/check.h"

namespace fvl {

namespace {

// Version 2 added the codec field widths to the header, making the blob
// self-describing (version 1 required the caller to supply the codec).
constexpr char kMagic[8] = {'F', 'V', 'L', 'I', 'D', 'X', '2', '\0'};

void AppendU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

bool ReadU64(const std::string& blob, size_t* pos, uint64_t* value) {
  if (*pos + 8 > blob.size()) return false;
  *value = 0;
  for (int i = 0; i < 8; ++i) {
    *value |= static_cast<uint64_t>(static_cast<unsigned char>(blob[*pos + i]))
              << (8 * i);
  }
  *pos += 8;
  return true;
}

}  // namespace

void ProvenanceIndexBuilder::Add(const DataLabel& label) {
  if (offsets_.empty()) offsets_.push_back(0);
  codec_.EncodeTo(label, &arena_);
  offsets_.push_back(arena_.size_bits());
}

ProvenanceIndex ProvenanceIndexBuilder::Build() && {
  if (offsets_.empty()) offsets_.push_back(0);
  return ProvenanceIndex(std::move(codec_), std::move(offsets_),
                         arena_.words(), arena_.size_bits());
}

ProvenanceIndex ProvenanceIndexBuilder::FromLabeledRun(
    const ProductionGraph& pg, const RunLabeler& labeler) {
  ProvenanceIndexBuilder builder(pg);
  for (int item = 0; item < labeler.num_labels(); ++item) {
    builder.Add(labeler.Label(item));
  }
  return std::move(builder).Build();
}

int64_t ProvenanceIndex::SizeBits() const {
  // Arena plus a minimal-width offset per item.
  return arena_bits_ +
         static_cast<int64_t>(num_items()) * BitWidthFor(arena_bits_ + 1);
}

DataLabel ProvenanceIndex::Label(int item) const {
  FVL_CHECK(item >= 0 && item < num_items());
  BitReader reader(&words_, offsets_[item], offsets_[item + 1]);
  DataLabel label = codec_.Decode(&reader);
  FVL_CHECK(reader.AtEnd());
  return label;
}

std::string ProvenanceIndex::Serialize() const {
  std::string blob(kMagic, sizeof(kMagic));
  AppendU64(&blob, static_cast<uint64_t>(num_items()));
  AppendU64(&blob, static_cast<uint64_t>(arena_bits_));

  // Codec field widths (self-description).
  for (int width : {codec_.production_bits, codec_.position_bits,
                    codec_.cycle_bits, codec_.start_bits, codec_.port_bits}) {
    blob.push_back(static_cast<char>(width));
  }

  // Offsets, bit-packed at the minimal fixed width.
  int offset_width = BitWidthFor(arena_bits_ + 1);
  blob.push_back(static_cast<char>(offset_width));
  BitWriter offsets;
  for (int item = 0; item < num_items(); ++item) {
    offsets.WriteFixed(static_cast<uint64_t>(offsets_[item + 1]),
                       offset_width);
  }
  AppendU64(&blob, static_cast<uint64_t>(offsets.words().size()));
  for (uint64_t word : offsets.words()) AppendU64(&blob, word);

  AppendU64(&blob, static_cast<uint64_t>(words_.size()));
  for (uint64_t word : words_) AppendU64(&blob, word);
  return blob;
}

Result<ProvenanceIndex> ProvenanceIndex::Deserialize(const std::string& blob) {
  auto fail = [](const std::string& message) -> Status {
    return Status::Error(ErrorCode::kMalformedBlob, message);
  };
  if (blob.size() < sizeof(kMagic) ||
      std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0) {
    return fail("bad magic");
  }
  size_t pos = sizeof(kMagic);
  uint64_t num_items = 0, arena_bits = 0;
  if (!ReadU64(blob, &pos, &num_items) || !ReadU64(blob, &pos, &arena_bits)) {
    return fail("truncated header");
  }
  // Neither count can describe more bits than the blob itself carries;
  // checking up front keeps the counts inside int64 range and bounds every
  // allocation below by the blob size.
  if (arena_bits / 8 > blob.size()) return fail("arena_bits exceeds blob");
  if (num_items / 8 > blob.size()) return fail("num_items exceeds blob");
  // num_items() narrows offsets_.size() - 1 to int.
  if (num_items >= static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    return fail("num_items exceeds supported range");
  }

  LabelCodec codec;
  if (pos + 5 > blob.size()) return fail("truncated codec widths");
  int* widths[5] = {&codec.production_bits, &codec.position_bits,
                    &codec.cycle_bits, &codec.start_bits, &codec.port_bits};
  for (int* width : widths) {
    *width = static_cast<unsigned char>(blob[pos++]);
    if (*width > 64) return fail("codec width out of range");
  }

  if (pos >= blob.size()) return fail("truncated header");
  int offset_width = static_cast<unsigned char>(blob[pos++]);
  if (offset_width != BitWidthFor(static_cast<int64_t>(arena_bits) + 1)) {
    return fail("inconsistent offset width");
  }

  uint64_t offset_words = 0;
  if (!ReadU64(blob, &pos, &offset_words)) return fail("truncated offsets");
  if (offset_width > 0 &&
      num_items > offset_words * 64 / static_cast<uint64_t>(offset_width)) {
    return fail("offset table too small");
  }
  BitWriter packed;
  for (uint64_t w = 0; w < offset_words; ++w) {
    uint64_t word = 0;
    if (!ReadU64(blob, &pos, &word)) return fail("truncated offsets");
    packed.WriteFixed(word, 64);
  }
  BitReader reader(packed);
  std::vector<int64_t> offsets = {0};
  for (uint64_t item = 0; item < num_items; ++item) {
    int64_t offset = static_cast<int64_t>(reader.ReadFixed(offset_width));
    if (offset < offsets.back() || offset > static_cast<int64_t>(arena_bits)) {
      return fail("non-monotone offsets");
    }
    offsets.push_back(offset);
  }
  if (num_items > 0 && offsets.back() != static_cast<int64_t>(arena_bits)) {
    return fail("offsets do not cover the arena");
  }

  uint64_t arena_words = 0;
  if (!ReadU64(blob, &pos, &arena_words)) return fail("truncated arena");
  if (arena_words < (arena_bits + 63) / 64) return fail("arena too small");
  if (arena_words > blob.size() / 8) return fail("truncated arena");
  std::vector<uint64_t> words;
  words.reserve(arena_words);
  for (uint64_t w = 0; w < arena_words; ++w) {
    uint64_t word = 0;
    if (!ReadU64(blob, &pos, &word)) return fail("truncated arena");
    words.push_back(word);
  }
  if (pos != blob.size()) return fail("trailing bytes");

  // The accessors FVL_CHECK that every span decodes exactly under the
  // codec; an inconsistent blob (e.g. a flipped codec-width byte) must be
  // rejected here, recoverably, rather than abort on first Label() call.
  for (uint64_t item = 0; item < num_items; ++item) {
    BitReader label_reader(&words, offsets[item], offsets[item + 1]);
    label_reader.set_permissive();
    codec.Decode(&label_reader);
    if (label_reader.failed() || !label_reader.AtEnd()) {
      std::string message = "label ";
      message += std::to_string(item);
      message += " does not decode under the blob's codec";
      return fail(message);
    }
  }
  return ProvenanceIndex(std::move(codec), std::move(offsets),
                         std::move(words), static_cast<int64_t>(arena_bits));
}

}  // namespace fvl
