#include "fvl/core/index.h"

#include <cstring>
#include <limits>
#include <utility>

#include "fvl/util/check.h"

namespace fvl {

namespace {

// Version 2 added the codec field widths to the header, making the blob
// self-describing (version 1 required the caller to supply the codec).
// Version 3 replaced the flat fixed-width offset table in the tail with
// the block-compressed span stream (LabelStore::kTailFormatVersion 2:
// delta-coded lengths + inlined short labels). The header layout is
// unchanged between 2 and 3 — only the tail differs — and Deserialize
// still accepts version-2 blobs.
constexpr char kMagic[8] = {'F', 'V', 'L', 'I', 'D', 'X', '3', '\0'};
constexpr char kLegacyMagic[8] = {'F', 'V', 'L', 'I', 'D', 'X', '2', '\0'};
// Multi-run variant (ProvenanceIndex::Merge): adds a per-run item-count
// table between the scalar header and the shared store tail. FVLMRG2
// carries the compressed tail; FVLMRG1 blobs still deserialize.
constexpr char kMergedMagic[8] = {'F', 'V', 'L', 'M', 'R', 'G', '2', '\0'};
constexpr char kLegacyMergedMagic[8] = {'F', 'V', 'L', 'M', 'R', 'G', '1',
                                        '\0'};

// Tail-format version implied by an 8-byte magic, or 0 when unrecognized.
int TailVersionForMagic(std::string_view blob, const char (&current)[8],
                        const char (&legacy)[8]) {
  if (blob.size() < 8) return 0;
  if (std::memcmp(blob.data(), current, 8) == 0) {
    return LabelStore::kTailFormatVersion;
  }
  if (std::memcmp(blob.data(), legacy, 8) == 0) return 1;
  return 0;
}

// Shared validation vocabulary of the three combiners (Merge, FromDeltas,
// MergeStream::Append) — one wording per failure mode, so the error
// taxonomy docs/ERRORS.md promises stays uniform by construction.
Status MismatchedCodec(const char* noun, size_t index) {
  return Status::Error(
      ErrorCode::kInvalidArgument,
      std::string(noun) + " " + std::to_string(index) +
          " was built for a different specification than " + noun +
          " 0 (label codecs disagree)");
}

Status TooManyItems(const char* artifact) {
  return Status::Error(
      ErrorCode::kInvalidArgument,
      std::string(artifact) + " would exceed the supported item count");
}

// Combined item counts must stay strictly below the int ceiling the store
// accessors narrow to.
bool FitsItemCount(int64_t total) {
  return total < std::numeric_limits<int>::max();
}

}  // namespace

ProvenanceIndexBuilder::ProvenanceIndexBuilder(const ProductionGraph& pg)
    : store_(LabelCodec(pg)) {
  store_.BeginGroup();
}

ProvenanceIndex ProvenanceIndexBuilder::Build() && {
  return ProvenanceIndex(std::move(store_));
}

ProvenanceIndex ProvenanceIndexBuilder::FromLabeledRun(
    const ProductionGraph& pg, const RunLabeler& labeler) {
  FVL_CHECK(labeler.codec() == LabelCodec(pg));
  return ProvenanceIndex(labeler.store());
}

int64_t ProvenanceIndex::SizeBits() const {
  // Exact bits of the canonical span representation: every label's content
  // plus the block-compressed length metadata (the v1 layout instead paid
  // a fixed-width offset per label here).
  return store_.SerializedSpanBits();
}

std::string ProvenanceIndex::Serialize() const {
  std::string blob(kMagic, sizeof(kMagic));
  LabelStore::AppendU64(&blob, static_cast<uint64_t>(num_items()));
  LabelStore::AppendU64(&blob, static_cast<uint64_t>(store_.arena_bits()));
  store_.AppendTail(&blob);
  return blob;
}

Result<ProvenanceIndex> ProvenanceIndex::Deserialize(std::string_view blob) {
  return Parse(blob, /*borrow_arena=*/false);
}

Result<ProvenanceIndex> ProvenanceIndex::Map(const std::string& path) {
  Result<BlobSource> source = BlobSource::MapFile(path);
  if (!source.ok()) return source.status();
  // Validation walks the blob front to back; serving then point-queries it.
  source->AdviseSequential();
  Result<ProvenanceIndex> index = Parse(source->view(), /*borrow_arena=*/true);
  if (!index.ok()) return index.status();
  source->AdviseRandom();
  index->backing_ = std::move(source).value();
  return index;
}

Result<ProvenanceIndex> ProvenanceIndex::Parse(std::string_view blob,
                                               bool borrow_arena) {
  auto fail = [](const std::string& message) -> Status {
    return Status::Error(ErrorCode::kMalformedBlob, message);
  };
  const int tail_version = TailVersionForMagic(blob, kMagic, kLegacyMagic);
  if (tail_version == 0) return fail("bad magic");
  size_t pos = sizeof(kMagic);
  uint64_t num_items = 0, arena_bits = 0;
  if (!LabelStore::ReadU64(blob, &pos, &num_items) ||
      !LabelStore::ReadU64(blob, &pos, &arena_bits)) {
    return fail("truncated header");
  }
  // Neither count can describe more bits than the blob itself carries;
  // checking up front keeps the counts inside int64 range and bounds every
  // allocation below by the blob size.
  if (arena_bits / 8 > blob.size()) return fail("arena_bits exceeds blob");
  if (num_items / 8 > blob.size()) return fail("num_items exceeds blob");
  // num_items() narrows the store's item count to int.
  if (num_items >= static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    return fail("num_items exceeds supported range");
  }

  Result<LabelStore> store =
      LabelStore::ParseTail(blob, &pos, {0, static_cast<int64_t>(num_items)},
                            arena_bits, tail_version, borrow_arena);
  if (!store.ok()) return store.status();
  return ProvenanceIndex(std::move(store).value());
}

Result<ProvenanceIndex> ProvenanceIndex::FromDeltas(
    std::span<const ProvenanceIndex> deltas) {
  if (deltas.empty()) {
    return Status::Error(
        ErrorCode::kInvalidArgument,
        "cannot reassemble an empty delta span (no codec to infer)");
  }
  const LabelCodec& codec = deltas[0].codec();
  int64_t total = 0;
  for (size_t d = 1; d < deltas.size(); ++d) {
    if (!(deltas[d].codec() == codec)) return MismatchedCodec("delta", d);
  }
  for (const ProvenanceIndex& delta : deltas) total += delta.num_items();
  if (!FitsItemCount(total)) return TooManyItems("reassembled index");

  // One group, filled by bulk item appends in freeze order: arenas of
  // consecutive deltas partition the original arena's bit range, so the
  // concatenation reproduces a full Snapshot() bit for bit.
  LabelStore store(codec);
  store.BeginGroup();
  for (const ProvenanceIndex& delta : deltas) {
    if (Status status = store.AppendItems(delta.store()); !status.ok()) {
      return status;
    }
  }
  return ProvenanceIndex(std::move(store));
}

Result<MergedProvenanceIndex> ProvenanceIndex::Merge(
    std::span<const ProvenanceIndex> runs) {
  if (runs.empty()) return MergedProvenanceIndex();

  const LabelCodec& codec = runs[0].codec();
  int64_t total = 0;
  for (size_t r = 1; r < runs.size(); ++r) {
    if (!(runs[r].codec() == codec)) return MismatchedCodec("run", r);
  }
  for (const ProvenanceIndex& run : runs) total += run.num_items();
  if (!FitsItemCount(total)) return TooManyItems("merged index");

  // Grouped append into one shared arena: per run, one bulk bit copy plus
  // integer offset rebasing; item ids stay dense, so (run, item) maps to
  // the run's group base + item.
  LabelStore store(codec);
  for (const ProvenanceIndex& run : runs) {
    if (Status status = store.AppendGroups(run.store()); !status.ok()) {
      return status;
    }
  }
  return MergedProvenanceIndex(std::move(store));
}

// --- MergeStream -------------------------------------------------------------

Status MergeStream::Append(std::string_view blob) {
  // `run` is the only deserialized input ever alive in the stream; it is
  // destroyed when Append returns, before the caller touches the next blob.
  Result<ProvenanceIndex> run = ProvenanceIndex::Deserialize(blob);
  if (!run.ok()) return run.status();
  if (!have_codec_) {
    store_ = LabelStore(run->codec());
    have_codec_ = true;
  } else if (!(run->codec() == store_.codec())) {
    return MismatchedCodec("run", static_cast<size_t>(num_runs()));
  }
  if (!FitsItemCount(static_cast<int64_t>(store_.total_items()) +
                     run->num_items())) {
    return TooManyItems("merged index");
  }
  return store_.AppendGroups(run->store());
}

Result<MergedProvenanceIndex> MergeStream::Finish() && {
  if (!have_codec_) return MergedProvenanceIndex();
  return MergedProvenanceIndex(std::move(store_));
}

// --- MergedProvenanceIndex ---------------------------------------------------

int64_t MergedProvenanceIndex::SizeBits() const {
  // Canonical span representation plus the per-run base table.
  return store_.SerializedSpanBits() +
         static_cast<int64_t>(num_runs()) *
             BitWidthFor(static_cast<int64_t>(total_items()) + 1);
}

std::string MergedProvenanceIndex::Serialize() const {
  std::string blob(kMergedMagic, sizeof(kMergedMagic));
  LabelStore::AppendU64(&blob, static_cast<uint64_t>(num_runs()));
  LabelStore::AppendU64(&blob, static_cast<uint64_t>(total_items()));
  LabelStore::AppendU64(&blob, static_cast<uint64_t>(store_.arena_bits()));
  for (int run = 0; run < num_runs(); ++run) {
    LabelStore::AppendU64(&blob, static_cast<uint64_t>(num_items(run)));
  }
  store_.AppendTail(&blob);
  return blob;
}

Result<MergedProvenanceIndex> MergedProvenanceIndex::Deserialize(
    std::string_view blob) {
  return Parse(blob, /*borrow_arena=*/false);
}

Result<MergedProvenanceIndex> MergedProvenanceIndex::Map(
    const std::string& path) {
  Result<BlobSource> source = BlobSource::MapFile(path);
  if (!source.ok()) return source.status();
  source->AdviseSequential();
  Result<MergedProvenanceIndex> index =
      Parse(source->view(), /*borrow_arena=*/true);
  if (!index.ok()) return index.status();
  source->AdviseRandom();
  index->backing_ = std::move(source).value();
  return index;
}

Result<MergedProvenanceIndex> MergedProvenanceIndex::Parse(
    std::string_view blob, bool borrow_arena) {
  auto fail = [](const std::string& message) -> Status {
    return Status::Error(ErrorCode::kMalformedBlob, message);
  };
  const int tail_version =
      TailVersionForMagic(blob, kMergedMagic, kLegacyMergedMagic);
  if (tail_version == 0) return fail("bad magic");
  size_t pos = sizeof(kMergedMagic);
  uint64_t num_runs = 0, total_items = 0, arena_bits = 0;
  if (!LabelStore::ReadU64(blob, &pos, &num_runs) ||
      !LabelStore::ReadU64(blob, &pos, &total_items) ||
      !LabelStore::ReadU64(blob, &pos, &arena_bits)) {
    return fail("truncated header");
  }
  // Same up-front bounding as the single-run format: no claimed count may
  // describe more bytes than the blob carries, which caps every allocation
  // below and keeps all arithmetic in int64 range.
  if (num_runs > blob.size() / 8) return fail("num_runs exceeds blob");
  // num_runs() narrows the store's group count to int.
  if (num_runs >= static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    return fail("num_runs exceeds supported range");
  }
  if (arena_bits / 8 > blob.size()) return fail("arena_bits exceeds blob");
  if (total_items / 8 > blob.size()) return fail("total_items exceeds blob");
  if (total_items >= static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    return fail("total_items exceeds supported range");
  }

  std::vector<int64_t> run_base = {0};
  run_base.reserve(num_runs + 1);
  for (uint64_t run = 0; run < num_runs; ++run) {
    uint64_t count = 0;
    if (!LabelStore::ReadU64(blob, &pos, &count)) {
      return fail("truncated run table");
    }
    if (count > total_items - static_cast<uint64_t>(run_base.back())) {
      return fail("run item counts exceed total_items");
    }
    run_base.push_back(run_base.back() + static_cast<int64_t>(count));
  }
  if (run_base.back() != static_cast<int64_t>(total_items)) {
    return fail("run item counts do not sum to total_items");
  }

  Result<LabelStore> store = LabelStore::ParseTail(
      blob, &pos, std::move(run_base), arena_bits, tail_version, borrow_arena);
  if (!store.ok()) return store.status();
  return MergedProvenanceIndex(std::move(store).value());
}

// --- CompactStream -----------------------------------------------------------

Status CompactStream::Append(std::string_view blob) {
  return AppendParsed(blob, /*borrow_arena=*/false);
}

Status CompactStream::Append(BlobReader* reader) {
  // Borrowing is sound here because the parsed input dies inside
  // AppendParsed, long before the reader (and its mapping) does.
  Status status = AppendParsed(reader->Remaining(), /*borrow_arena=*/true);
  if (status.ok()) {
    reader->Take(reader->Remaining().size());
    reader->ReleaseConsumed();
  }
  return status;
}

Status CompactStream::AppendParsed(std::string_view blob, bool borrow_arena) {
  // The parsed input is the only deserialized store alive in the stream; it
  // is destroyed when this returns, before the caller touches the next
  // input (MergeStream's memory discipline, extended to merged inputs).
  if (TailVersionForMagic(blob, kMergedMagic, kLegacyMergedMagic) != 0) {
    Result<MergedProvenanceIndex> input =
        MergedProvenanceIndex::Parse(blob, borrow_arena);
    if (!input.ok()) return input.status();
    return AppendStore(input->store());
  }
  Result<ProvenanceIndex> input = ProvenanceIndex::Parse(blob, borrow_arena);
  if (!input.ok()) return input.status();
  return AppendStore(input->store());
}

Status CompactStream::AppendStore(const LabelStore& source) {
  if (!have_codec_) {
    store_ = LabelStore(source.codec());
    have_codec_ = true;
  } else if (!(source.codec() == store_.codec())) {
    return MismatchedCodec("input", inputs_);
  }
  if (!FitsItemCount(static_cast<int64_t>(store_.total_items()) +
                     source.total_items())) {
    return TooManyItems("compacted index");
  }
  if (Status status = store_.AppendGroups(source); !status.ok()) {
    return status;
  }
  ++inputs_;
  return Status::Ok();
}

Result<MergedProvenanceIndex> CompactStream::Finish() && {
  if (!have_codec_) return MergedProvenanceIndex();
  return MergedProvenanceIndex(std::move(store_));
}

Result<MergedProvenanceIndex> CompactMerged(std::span<BlobReader> inputs) {
  CompactStream stream;
  for (BlobReader& reader : inputs) {
    if (Status status = stream.Append(&reader); !status.ok()) return status;
  }
  return std::move(stream).Finish();
}

}  // namespace fvl
