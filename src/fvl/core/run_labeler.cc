#include "fvl/core/run_labeler.h"

#include "fvl/util/check.h"

namespace fvl {

RunLabeler::RunLabeler(const Grammar* grammar, const ProductionGraph* pg)
    : tree_(grammar, pg), codec_(*pg) {}

void RunLabeler::OnStart(const Run& run) {
  tree_.OnStart(run);
  // Item ids are allocated sequentially; the start module's boundary items
  // are exactly [0, inputs + outputs). Resizing to that count (rather than
  // run.num_items()) keeps the labeler strictly online even when replaying
  // an already-completed run.
  labels_.resize(run.InputItems(run.start_instance()).size() +
                 run.OutputItems(run.start_instance()).size());
  const ParseNode& start_node =
      tree_.node(tree_.NodeOfInstance(run.start_instance()));
  for (int item_id : run.InputItems(run.start_instance())) {
    DataLabel label;
    label.consumer =
        PortLabel{start_node.path, run.item(item_id).consumer_port};
    labels_[item_id] = std::move(label);
  }
  for (int item_id : run.OutputItems(run.start_instance())) {
    DataLabel label;
    label.producer =
        PortLabel{start_node.path, run.item(item_id).producer_port};
    labels_[item_id] = std::move(label);
  }
}

void RunLabeler::OnApply(const Run& run, const DerivationStep& step) {
  tree_.OnApply(run, step);
  FVL_CHECK(static_cast<int>(labels_.size()) == step.first_item);
  // Resize to the step's own items (not run.num_items(), which is already
  // the final count when replaying a completed run).
  labels_.resize(step.first_item + step.num_items);
  for (int e = 0; e < step.num_items; ++e) {
    int item_id = step.first_item + e;
    const DataItem& item = run.item(item_id);
    const ParseNode& producer_node =
        tree_.node(tree_.NodeOfInstance(item.producer_instance));
    const ParseNode& consumer_node =
        tree_.node(tree_.NodeOfInstance(item.consumer_instance));
    DataLabel label;
    label.producer = PortLabel{producer_node.path, item.producer_port};
    label.consumer = PortLabel{consumer_node.path, item.consumer_port};
    labels_[item_id] = std::move(label);
  }
}

RunLabeler LabelEntireRun(const Run& run, const ProductionGraph& pg) {
  RunLabeler labeler(&run.grammar(), &pg);
  labeler.OnStart(run);
  for (int s = 0; s < run.num_steps(); ++s) {
    labeler.OnApply(run, run.step(s));
  }
  return labeler;
}

}  // namespace fvl
