#include "fvl/core/run_labeler.h"

#include <vector>

#include "fvl/util/check.h"

namespace fvl {

RunLabeler::RunLabeler(const Grammar* grammar, const ProductionGraph* pg)
    : tree_(grammar, pg), store_(LabelCodec(*pg)) {
  store_.BeginGroup();
}

void RunLabeler::OnStart(const Run& run) {
  tree_.OnStart(run);
  // Item ids are allocated sequentially; the start module's boundary items
  // are exactly [0, inputs + outputs). Buffering that count (rather than
  // run.num_items()) keeps the labeler strictly online even when replaying
  // an already-completed run; the store appends in item-id order.
  std::vector<DataLabel> boundary(
      run.InputItems(run.start_instance()).size() +
      run.OutputItems(run.start_instance()).size());
  const ParseNode& start_node =
      tree_.node(tree_.NodeOfInstance(run.start_instance()));
  for (int item_id : run.InputItems(run.start_instance())) {
    boundary[item_id].consumer =
        PortLabel{start_node.path, run.item(item_id).consumer_port};
  }
  for (int item_id : run.OutputItems(run.start_instance())) {
    boundary[item_id].producer =
        PortLabel{start_node.path, run.item(item_id).producer_port};
  }
  for (const DataLabel& label : boundary) store_.Append(label);
}

void RunLabeler::OnApply(const Run& run, const DerivationStep& step) {
  tree_.OnApply(run, step);
  FVL_CHECK(store_.total_items() == step.first_item);
  // Label exactly the step's own items (not up to run.num_items(), which is
  // already the final count when replaying a completed run).
  for (int e = 0; e < step.num_items; ++e) {
    int item_id = step.first_item + e;
    const DataItem& item = run.item(item_id);
    const ParseNode& producer_node =
        tree_.node(tree_.NodeOfInstance(item.producer_instance));
    const ParseNode& consumer_node =
        tree_.node(tree_.NodeOfInstance(item.consumer_instance));
    DataLabel label;
    label.producer = PortLabel{producer_node.path, item.producer_port};
    label.consumer = PortLabel{consumer_node.path, item.consumer_port};
    store_.Append(label);
  }
}

RunLabeler LabelEntireRun(const Run& run, const ProductionGraph& pg) {
  RunLabeler labeler(&run.grammar(), &pg);
  labeler.OnStart(run);
  for (int s = 0; s < run.num_steps(); ++s) {
    labeler.OnApply(run, run.step(s));
  }
  return labeler;
}

}  // namespace fvl
