#include "fvl/core/data_label.h"

#include <algorithm>

#include "fvl/util/check.h"

namespace fvl {

std::string EdgeLabel::ToString() const {
  // Appends rather than an operator+ chain: GCC 12 flags the rvalue string
  // operator+ overloads with a bogus -Wrestrict.
  std::string out = "(";
  if (kind == Kind::kProduction) {
    out += std::to_string(production + 1);
    out += ",";
    out += std::to_string(position + 1);
  } else {
    out += std::to_string(cycle + 1);
    out += ",";
    out += std::to_string(start + 1);
    out += ",";
    out += std::to_string(iteration);
  }
  out += ")";
  return out;
}

std::string PortLabel::ToString() const {
  std::string out = "{";
  for (const EdgeLabel& edge : path) out += edge.ToString() + ",";
  out += std::to_string(port + 1) + "}";
  return out;
}

std::string DataLabel::ToString() const {
  std::string out = "(";
  out += producer.has_value() ? producer->ToString() : "-";
  out += ", ";
  out += consumer.has_value() ? consumer->ToString() : "-";
  out += ")";
  return out;
}

LabelCodec::LabelCodec(const ProductionGraph& pg) {
  const Grammar& g = pg.grammar();
  production_bits = BitWidthFor(g.num_productions());
  int max_members = 1;
  for (ProductionId k = 0; k < g.num_productions(); ++k) {
    max_members = std::max(max_members, g.production(k).rhs.num_members());
  }
  position_bits = BitWidthFor(max_members);
  cycle_bits = BitWidthFor(std::max(1, pg.num_cycles()));
  int max_cycle = 1;
  for (int s = 0; s < pg.num_cycles(); ++s) {
    max_cycle = std::max(max_cycle, pg.cycle(s).length());
  }
  start_bits = BitWidthFor(max_cycle);
  int max_ports = 1;
  for (ModuleId m = 0; m < g.num_modules(); ++m) {
    max_ports = std::max(
        {max_ports, g.module(m).num_inputs, g.module(m).num_outputs});
  }
  port_bits = BitWidthFor(max_ports);
}

void LabelCodec::EncodeEdge(const EdgeLabel& edge, BitWriter* writer) const {
  if (edge.kind == EdgeLabel::Kind::kProduction) {
    writer->WriteFixed(0, 1);
    writer->WriteFixed(static_cast<uint64_t>(edge.production), production_bits);
    writer->WriteFixed(static_cast<uint64_t>(edge.position), position_bits);
  } else {
    writer->WriteFixed(1, 1);
    writer->WriteFixed(static_cast<uint64_t>(edge.cycle), cycle_bits);
    writer->WriteFixed(static_cast<uint64_t>(edge.start), start_bits);
    writer->WriteGamma(static_cast<uint64_t>(edge.iteration));
  }
}

EdgeLabel LabelCodec::DecodeEdge(BitReader* reader) const {
  if (reader->ReadFixed(1) == 0) {
    int production = static_cast<int>(reader->ReadFixed(production_bits));
    int position = static_cast<int>(reader->ReadFixed(position_bits));
    return EdgeLabel::Prod(production, position);
  }
  int cycle = static_cast<int>(reader->ReadFixed(cycle_bits));
  int start = static_cast<int>(reader->ReadFixed(start_bits));
  int iteration = static_cast<int>(reader->ReadGamma());
  return EdgeLabel::Rec(cycle, start, iteration);
}

namespace {

size_t CommonPrefix(const DataLabel& label) {
  if (!label.producer.has_value() || !label.consumer.has_value()) return 0;
  const auto& a = label.producer->path;
  const auto& b = label.consumer->path;
  size_t prefix = 0;
  while (prefix < a.size() && prefix < b.size() && a[prefix] == b[prefix]) {
    ++prefix;
  }
  return prefix;
}

}  // namespace

BitWriter LabelCodec::Encode(const DataLabel& label) const {
  BitWriter writer;
  EncodeTo(label, &writer);
  return writer;
}

void LabelCodec::EncodeTo(const DataLabel& label, BitWriter* out) const {
  BitWriter& writer = *out;
  writer.WriteFixed(label.producer.has_value() ? 1 : 0, 1);
  writer.WriteFixed(label.consumer.has_value() ? 1 : 0, 1);
  size_t prefix = CommonPrefix(label);
  if (label.producer.has_value() && label.consumer.has_value()) {
    writer.WriteGamma(prefix + 1);
    for (size_t i = 0; i < prefix; ++i) {
      EncodeEdge(label.producer->path[i], &writer);
    }
  }
  auto encode_side = [&](const PortLabel& side) {
    size_t skip = label.producer.has_value() && label.consumer.has_value()
                      ? prefix
                      : 0;
    writer.WriteGamma(side.path.size() - skip + 1);
    for (size_t i = skip; i < side.path.size(); ++i) {
      EncodeEdge(side.path[i], &writer);
    }
    writer.WriteFixed(static_cast<uint64_t>(side.port), port_bits);
  };
  if (label.producer.has_value()) encode_side(*label.producer);
  if (label.consumer.has_value()) encode_side(*label.consumer);
}

DataLabel LabelCodec::Decode(BitReader* reader) const {
  DataLabel label;
  bool has_producer = reader->ReadFixed(1) == 1;
  bool has_consumer = reader->ReadFixed(1) == 1;
  std::vector<EdgeLabel> prefix;
  // Every encoded edge is at least one bit, so bounding a length prefix by
  // the remaining bits caps allocations on corrupt input.
  if (has_producer && has_consumer) {
    uint64_t prefix_size = reader->ReadGamma() - 1;
    if (!reader->CheckRemaining(prefix_size)) return label;
    prefix.reserve(static_cast<size_t>(std::min<uint64_t>(prefix_size, 1024)));
    for (uint64_t i = 0; i < prefix_size && !reader->failed(); ++i) {
      prefix.push_back(DecodeEdge(reader));
    }
  }
  auto decode_side = [&]() {
    PortLabel side;
    side.path = prefix;
    uint64_t suffix = reader->ReadGamma() - 1;
    if (!reader->CheckRemaining(suffix)) return side;
    for (uint64_t i = 0; i < suffix && !reader->failed(); ++i) {
      side.path.push_back(DecodeEdge(reader));
    }
    side.port = static_cast<int>(reader->ReadFixed(port_bits));
    return side;
  };
  if (has_producer) label.producer = decode_side();
  if (has_consumer) label.consumer = decode_side();
  return label;
}

int64_t LabelCodec::EncodedBits(const DataLabel& label) const {
  int64_t bits = 2;
  auto edge_bits = [&](const EdgeLabel& edge) -> int64_t {
    if (edge.kind == EdgeLabel::Kind::kProduction) {
      return 1 + production_bits + position_bits;
    }
    return 1 + cycle_bits + start_bits +
           GammaLength(static_cast<uint64_t>(edge.iteration));
  };
  size_t prefix = CommonPrefix(label);
  if (label.producer.has_value() && label.consumer.has_value()) {
    bits += GammaLength(prefix + 1);
    for (size_t i = 0; i < prefix; ++i) {
      bits += edge_bits(label.producer->path[i]);
    }
  }
  auto side_bits = [&](const PortLabel& side) {
    size_t skip = label.producer.has_value() && label.consumer.has_value()
                      ? prefix
                      : 0;
    bits += GammaLength(side.path.size() - skip + 1);
    for (size_t i = skip; i < side.path.size(); ++i) {
      bits += edge_bits(side.path[i]);
    }
    bits += port_bits;
  };
  if (label.producer.has_value()) side_bits(*label.producer);
  if (label.consumer.has_value()) side_bits(*label.consumer);
  return bits;
}

}  // namespace fvl
