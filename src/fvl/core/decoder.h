// The decoding predicate π (§4.4, Algorithm 2): decides, from two data
// labels and one view label alone, whether d2 depends on d1 w.r.t. the view.
//
// Cases (paper numbering):
//   I    d1 is a final output or d2 an initial input      -> false
//   II   d1 initial, d2 final                             -> λ*(S)[x, y]
//   III  d1 initial, d2 intermediate                      -> Π Inputs over l2
//   IV   d1 intermediate, d2 final                        -> Π Outputs over l1
//   1    producer path of d1 equals / prefixes consumer path of d2 (or
//        vice versa)                                      -> false
//   2a   paths fork at a module node: Oᵀ · Z · I
//   2b   paths fork at a recursive node: Oᵀ · Z · I' · I with the §4.4.2
//        cycle bookkeeping — both the paper's i < j case and the symmetric
//        i > j case (elided in the paper) are implemented.
//
// Any undefined matrix lookup means one of the items is invisible in the
// view; π conservatively returns false (use visibility.h to distinguish).
//
// MatrixFreeDecoder is the §6.4 specialization for black-box views, where
// every matrix is complete or empty and the predicate reduces to one
// member-level reachability bit at the fork point.

#ifndef FVL_CORE_DECODER_H_
#define FVL_CORE_DECODER_H_

#include <optional>
#include <vector>

#include "fvl/core/data_label.h"
#include "fvl/core/view_label.h"

namespace fvl {

class Decoder {
 public:
  // The view label must outlive the decoder.
  explicit Decoder(const ViewLabel* view) : view_(view) {}

  // π(φr(d1), φr(d2), φv(U)).
  bool Depends(const DataLabel& d1, const DataLabel& d2) const;

 private:
  std::optional<BoolMatrix> InputsOf(const EdgeLabel& edge) const;
  std::optional<BoolMatrix> OutputsOf(const EdgeLabel& edge) const;
  // Products over path[from..]; identity-like std::nullopt never occurs —
  // empty ranges yield an "unset" optional flagging the identity (handled by
  // the callers via the dims argument).
  std::optional<BoolMatrix> InputsChain(const std::vector<EdgeLabel>& path,
                                        size_t from, int identity_dims) const;
  std::optional<BoolMatrix> OutputsChain(const std::vector<EdgeLabel>& path,
                                         size_t from, int identity_dims) const;

  const ViewLabel* view_;
};

// §6.4 Matrix-Free FVL for coarse-grained (black-box) views. Precomputes one
// member-to-member reachability bit per production pair; queries perform no
// matrix algebra. Requires view.IsBlackBox() — under Def. 8 (complete
// dependencies, single-source/single-sink workflows) its answers coincide
// with Decoder's.
class MatrixFreeDecoder {
 public:
  MatrixFreeDecoder(const ProductionGraph* pg, const ViewLabel* view);

  bool Depends(const DataLabel& d1, const DataLabel& d2) const;

  int64_t SizeBits() const;

 private:
  bool MemberReaches(ProductionId k, int i, int j) const {
    if (reach_bits_[k].empty()) return false;  // production not in the view
    return reach_bits_[k][i * members_[k] + j];
  }

  const ProductionGraph* pg_;
  const ViewLabel* view_;
  std::vector<int> members_;
  std::vector<std::vector<bool>> reach_bits_;
};

}  // namespace fvl

#endif  // FVL_CORE_DECODER_H_
