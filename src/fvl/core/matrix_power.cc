#include "fvl/core/matrix_power.h"

#include "fvl/util/check.h"

namespace fvl {

BoolMatrix BoolMatrixPower(const BoolMatrix& x, int64_t q) {
  FVL_CHECK(x.rows() == x.cols());
  FVL_CHECK(q >= 0);
  BoolMatrix result = BoolMatrix::Identity(x.rows());
  BoolMatrix base = x;
  while (q > 0) {
    if (q & 1) result = result.Multiply(base);
    base = base.Multiply(base);
    q >>= 1;
  }
  return result;
}

MatrixPowerOracle::MatrixPowerOracle(BoolMatrix x, int max_powers) {
  FVL_CHECK(x.rows() == x.cols());
  powers_.push_back(BoolMatrix::Identity(x.rows()));
  if (x.rows() == 0) return;
  powers_.push_back(std::move(x));
  while (true) {
    FVL_CHECK(static_cast<int>(powers_.size()) <= max_powers);
    BoolMatrix next = powers_.back().Multiply(powers_[1]);
    // Look for an earlier occurrence.
    for (int a = 0; a < static_cast<int>(powers_.size()); ++a) {
      if (powers_[a] == next) {
        cycle_start_ = a;
        cycle_period_ = static_cast<int>(powers_.size()) - a;
        return;
      }
    }
    powers_.push_back(std::move(next));
  }
}

const BoolMatrix& MatrixPowerOracle::Power(int64_t q) const {
  FVL_CHECK(q >= 0);
  if (q < static_cast<int64_t>(powers_.size())) return powers_[q];
  int64_t offset = (q - cycle_start_) % cycle_period_;
  return powers_[cycle_start_ + offset];
}

int64_t MatrixPowerOracle::SizeBits() const {
  int64_t bits = 0;
  for (const BoolMatrix& m : powers_) bits += m.SizeBits();
  return bits;
}

}  // namespace fvl
