// Dynamic data labeling φr (§4.2): assigns every data item its label the
// moment it is produced, using only the compressed parse tree built so far.
// Labels are immutable once assigned (Def. 10) — the labeler never revisits
// an item.

#ifndef FVL_CORE_RUN_LABELER_H_
#define FVL_CORE_RUN_LABELER_H_

#include <vector>

#include "fvl/core/data_label.h"
#include "fvl/core/parse_tree.h"
#include "fvl/run/run.h"

namespace fvl {

class RunLabeler {
 public:
  RunLabeler(const Grammar* grammar, const ProductionGraph* pg);

  // Event hooks, mirroring CompressedParseTree.
  void OnStart(const Run& run);
  void OnApply(const Run& run, const DerivationStep& step);

  int num_labels() const { return static_cast<int>(labels_.size()); }
  const DataLabel& Label(int item) const { return labels_[item]; }
  const CompressedParseTree& tree() const { return tree_; }

  // Exact encoded size of an item's label, in bits.
  int64_t LabelBits(int item) const { return codec_.EncodedBits(labels_[item]); }
  const LabelCodec& codec() const { return codec_; }

 private:
  CompressedParseTree tree_;
  LabelCodec codec_;
  std::vector<DataLabel> labels_;
};

// Convenience: derive nothing, just label an already-derived run by
// replaying its steps (used by tests and per-view baselines).
RunLabeler LabelEntireRun(const Run& run, const ProductionGraph& pg);

}  // namespace fvl

#endif  // FVL_CORE_RUN_LABELER_H_
