// Dynamic data labeling φr (§4.2): assigns every data item its label the
// moment it is produced, using only the compressed parse tree built so far.
// Labels are immutable once assigned (Def. 10) — the labeler never revisits
// an item.
//
// Labels are stored encoded, in a live single-group LabelStore: each label
// is appended to the shared bit arena when its item appears, so a labeled
// run costs arena bits (tens of bits per item), not DataLabel structs, and
// freezing a snapshot (ProvenanceIndexBuilder::FromLabeledRun) copies the
// arena instead of re-encoding every label. Label(item) decodes on demand.

#ifndef FVL_CORE_RUN_LABELER_H_
#define FVL_CORE_RUN_LABELER_H_

#include "fvl/core/data_label.h"
#include "fvl/core/label_store.h"
#include "fvl/core/parse_tree.h"
#include "fvl/run/run.h"

namespace fvl {

class RunLabeler {
 public:
  RunLabeler(const Grammar* grammar, const ProductionGraph* pg);

  // Event hooks, mirroring CompressedParseTree.
  void OnStart(const Run& run);
  void OnApply(const Run& run, const DerivationStep& step);

  int num_labels() const { return store_.total_items(); }
  // Decoded on demand from the store (a few hundred ns per call).
  DataLabel Label(int item) const { return store_.DecodeLabel(item); }
  const CompressedParseTree& tree() const { return tree_; }

  // The live label store behind this run (one group, append-only).
  const LabelStore& store() const { return store_; }

  // --- Incremental freezes (O(delta) checkpointing, §2.3) -----------------

  // Items already extracted by FreezeDelta — the freeze watermark.
  int frozen_items() const { return store_.watermark_items(); }
  // Extracts the labels appended since the last FreezeDelta as a fresh
  // single-group store and advances the watermark: one bit copy of the new
  // arena range, O(delta) where a full snapshot copy is O(run).
  LabelStore FreezeDelta() { return store_.ExtractDelta(); }

  // Exact encoded size of an item's label, in bits.
  int64_t LabelBits(int item) const { return store_.LabelBits(item); }
  const LabelCodec& codec() const { return store_.codec(); }

 private:
  CompressedParseTree tree_;
  LabelStore store_;
};

// Convenience: derive nothing, just label an already-derived run by
// replaying its steps (used by tests and per-view baselines).
RunLabeler LabelEntireRun(const Run& run, const ProductionGraph& pg);

}  // namespace fvl

#endif  // FVL_CORE_RUN_LABELER_H_
