#include "fvl/core/decoder.h"

#include "fvl/util/check.h"

namespace fvl {

std::optional<BoolMatrix> Decoder::InputsOf(const EdgeLabel& edge) const {
  if (edge.kind == EdgeLabel::Kind::kProduction) {
    return view_->I(edge.production, edge.position);
  }
  return view_->InputsWalk(edge.cycle, edge.start, edge.iteration);
}

std::optional<BoolMatrix> Decoder::OutputsOf(const EdgeLabel& edge) const {
  if (edge.kind == EdgeLabel::Kind::kProduction) {
    return view_->O(edge.production, edge.position);
  }
  return view_->OutputsWalk(edge.cycle, edge.start, edge.iteration);
}

std::optional<BoolMatrix> Decoder::InputsChain(
    const std::vector<EdgeLabel>& path, size_t from, int identity_dims) const {
  if (from >= path.size()) return BoolMatrix::Identity(identity_dims);
  std::optional<BoolMatrix> result = InputsOf(path[from]);
  if (!result.has_value()) return std::nullopt;
  for (size_t a = from + 1; a < path.size(); ++a) {
    std::optional<BoolMatrix> factor = InputsOf(path[a]);
    if (!factor.has_value()) return std::nullopt;
    result = result->Multiply(*factor);
  }
  return result;
}

std::optional<BoolMatrix> Decoder::OutputsChain(
    const std::vector<EdgeLabel>& path, size_t from, int identity_dims) const {
  if (from >= path.size()) return BoolMatrix::Identity(identity_dims);
  std::optional<BoolMatrix> result = OutputsOf(path[from]);
  if (!result.has_value()) return std::nullopt;
  for (size_t a = from + 1; a < path.size(); ++a) {
    std::optional<BoolMatrix> factor = OutputsOf(path[a]);
    if (!factor.has_value()) return std::nullopt;
    result = result->Multiply(*factor);
  }
  return result;
}

bool Decoder::Depends(const DataLabel& d1, const DataLabel& d2) const {
  // Case I: final outputs depend on everything downstream of nothing;
  // initial inputs depend on nothing.
  if (!d1.consumer.has_value() || !d2.producer.has_value()) return false;

  // Case II: initial input -> final output, answered by λ*(S).
  if (!d1.producer.has_value() && !d2.consumer.has_value()) {
    return view_->StartMatrix().Get(d1.consumer->port, d2.producer->port);
  }

  // Case III: initial input -> intermediate item.
  if (!d1.producer.has_value()) {
    std::optional<BoolMatrix> chain =
        InputsChain(d2.consumer->path, 0, view_->StartMatrix().rows());
    if (!chain.has_value()) return false;  // d2 invisible in this view
    return chain->Get(d1.consumer->port, d2.consumer->port);
  }

  // Case IV: intermediate item -> final output.
  if (!d2.consumer.has_value()) {
    std::optional<BoolMatrix> chain =
        OutputsChain(d1.producer->path, 0, view_->StartMatrix().cols());
    if (!chain.has_value()) return false;
    return chain->Get(d2.producer->port, d1.producer->port);
  }

  // Main cases: both intermediate. l1 locates the producer port of d1 (the
  // paper's o1), l2 the consumer port of d2 (the paper's i2).
  const std::vector<EdgeLabel>& l1 = d1.producer->path;
  const std::vector<EdgeLabel>& l2 = d2.consumer->path;
  const int x = d1.producer->port;
  const int y = d2.consumer->port;

  size_t cp = 0;
  while (cp < l1.size() && cp < l2.size() && l1[cp] == l2[cp]) ++cp;

  // Case 1: equal paths or one a prefix of the other — one module is (an
  // ancestor of) the other; outputs cannot flow back into the expansion.
  if (cp == l1.size() || cp == l2.size()) return false;

  const EdgeLabel& e1 = l1[cp];
  const EdgeLabel& e2 = l2[cp];
  FVL_CHECK(e1.kind == e2.kind);

  if (e1.kind == EdgeLabel::Kind::kProduction) {
    // Case 2a: fork below a module node.
    FVL_CHECK(e1.production == e2.production);
    const int i = e1.position;
    const int j = e2.position;
    if (i > j) return false;  // Z(k, i, j) is empty for i >= j
    std::optional<BoolMatrix> z = view_->Z(e1.production, i, j);
    if (!z.has_value()) return false;
    std::optional<BoolMatrix> o = OutputsChain(l1, cp + 1, z->rows());
    std::optional<BoolMatrix> in = InputsChain(l2, cp + 1, z->cols());
    if (!o.has_value() || !in.has_value()) return false;
    return o->Transpose().Multiply(*z).Multiply(*in).Get(x, y);
  }

  // Case 2b: fork below a recursive node.
  FVL_CHECK(e1.cycle == e2.cycle && e1.start == e2.start);
  const int s = e1.cycle;
  const int t = e1.start;
  const int i = e1.iteration;
  const int j = e2.iteration;
  const ProductionGraph& pg = view_->production_graph();

  if (i < j) {
    // d1 under iteration i, d2 under the deeper iteration j. Data must leave
    // d1's branch, cross into the successor M_{i+1}, walk the cycle to M_j,
    // then descend to d2.
    if (cp + 1 == l1.size()) return false;  // o1 is a port of M_i itself
    const EdgeLabel& branch = l1[cp + 1];
    FVL_CHECK(branch.kind == EdgeLabel::Kind::kProduction);
    PgEdge successor = pg.CycleEdgeAt(s, t + i - 1);
    FVL_CHECK(successor.production == branch.production);
    const int ip = branch.position;
    const int jp = successor.position;
    if (ip > jp) return false;  // branch after the successor: Z empty
    std::optional<BoolMatrix> z = view_->Z(successor.production, ip, jp);
    if (!z.has_value()) return false;
    std::optional<BoolMatrix> o = OutputsChain(l1, cp + 2, z->rows());
    std::optional<BoolMatrix> walk = view_->InputsWalk(s, t + i, j - i);
    if (!o.has_value() || !walk.has_value()) return false;
    std::optional<BoolMatrix> in = InputsChain(l2, cp + 1, walk->cols());
    if (!in.has_value()) return false;
    return o->Transpose()
        .Multiply(*z)
        .Multiply(*walk)
        .Multiply(*in)
        .Get(x, y);
  }

  // i > j: d1 under the deeper iteration i, d2 under iteration j. Data flows
  // outward through the enclosing iterations' outputs down to M_{j+1}, then
  // from the successor into d2's branch.
  if (cp + 1 == l2.size()) return false;  // i2 is a port of M_j itself
  const EdgeLabel& branch = l2[cp + 1];
  FVL_CHECK(branch.kind == EdgeLabel::Kind::kProduction);
  PgEdge successor = pg.CycleEdgeAt(s, t + j - 1);
  FVL_CHECK(successor.production == branch.production);
  const int up = branch.position;
  const int succ = successor.position;
  if (succ > up) return false;  // branch before the successor: Z empty
  std::optional<BoolMatrix> z = view_->Z(successor.production, succ, up);
  if (!z.has_value()) return false;
  std::optional<BoolMatrix> walk = view_->OutputsWalk(s, t + j, i - j);
  if (!walk.has_value()) return false;
  std::optional<BoolMatrix> o = OutputsChain(l1, cp + 1, walk->cols());
  std::optional<BoolMatrix> in = InputsChain(l2, cp + 2, z->cols());
  if (!o.has_value() || !in.has_value()) return false;
  return walk->Multiply(*o).Transpose().Multiply(*z).Multiply(*in).Get(x, y);
}

MatrixFreeDecoder::MatrixFreeDecoder(const ProductionGraph* pg,
                                     const ViewLabel* view)
    : pg_(pg), view_(view) {
  const Grammar& g = pg->grammar();
  members_.resize(g.num_productions());
  reach_bits_.resize(g.num_productions());
  for (ProductionId k = 0; k < g.num_productions(); ++k) {
    if (!view->ProductionActive(k)) continue;
    const SimpleWorkflow& w = g.production(k).rhs;
    const int n = w.num_members();
    members_[k] = n;
    // Member-level reflexive reachability through data edges.
    std::vector<bool> bits(static_cast<size_t>(n) * n, false);
    for (int m = 0; m < n; ++m) bits[m * n + m] = true;
    // Members are topologically ordered; sweep edges in order.
    for (int j = 0; j < n; ++j) {
      for (const DataEdge& e : w.edges) {
        if (e.dst.member != j) continue;
        for (int i = 0; i < n; ++i) {
          if (bits[i * n + e.src.member]) bits[i * n + j] = true;
        }
      }
    }
    reach_bits_[k] = std::move(bits);
  }
}

int64_t MatrixFreeDecoder::SizeBits() const {
  int64_t bits = 0;
  for (const auto& per_production : reach_bits_) {
    bits += static_cast<int64_t>(per_production.size());
  }
  return bits;
}

bool MatrixFreeDecoder::Depends(const DataLabel& d1, const DataLabel& d2) const {
  // Boundary cases mirror Algorithm 2 under complete dependencies.
  if (!d1.consumer.has_value() || !d2.producer.has_value()) return false;
  // Identical labels mean the same intermediate item, which reaches itself
  // through its own data edge; module-level reachability (port-blind) would
  // miss this, so it is checked on the full labels.
  if (d1 == d2) return true;
  if (!d1.producer.has_value()) return true;  // initial inputs reach everything
  if (!d2.consumer.has_value()) return true;  // everything reaches final outputs

  // Under black-box dependencies, d2 depends on d1 iff the module consuming
  // d1 reaches the module producing d2 (reflexively) at the module level.
  const std::vector<EdgeLabel>& l1 = d1.consumer->path;
  const std::vector<EdgeLabel>& l2 = d2.producer->path;

  size_t cp = 0;
  while (cp < l1.size() && cp < l2.size() && l1[cp] == l2[cp]) ++cp;
  // Equal or ancestor either way: data entering a composite reaches all of
  // its expansion (single source), and every inner module reaches the
  // composite's outputs (single sink).
  if (cp == l1.size() || cp == l2.size()) return true;

  const EdgeLabel& e1 = l1[cp];
  const EdgeLabel& e2 = l2[cp];
  FVL_CHECK(e1.kind == e2.kind);

  if (e1.kind == EdgeLabel::Kind::kProduction) {
    const int i = e1.position;
    const int j = e2.position;
    return i < j && MemberReaches(e1.production, i, j);
  }

  const int s = e1.cycle;
  const int t = e1.start;
  const int i = e1.iteration;
  const int j = e2.iteration;
  if (i < j) {
    // d1's consumer branch must reach the successor member at iteration i;
    // descents into deeper iterations are then free.
    if (cp + 1 == l1.size()) return true;  // consumer is M_i itself
    const EdgeLabel& branch = l1[cp + 1];
    PgEdge successor = view_->production_graph().CycleEdgeAt(s, t + i - 1);
    return branch.position < successor.position &&
           MemberReaches(successor.production, branch.position,
                         successor.position);
  }
  if (i > j) {
    // Exits are free (single sink); the successor at iteration j must reach
    // d2's producer branch.
    if (cp + 1 == l2.size()) return true;  // producer is M_j itself
    const EdgeLabel& branch = l2[cp + 1];
    PgEdge successor = view_->production_graph().CycleEdgeAt(s, t + j - 1);
    return successor.position < branch.position &&
           MemberReaches(successor.production, successor.position,
                         branch.position);
  }
  return true;  // i == j cannot occur (paths fork)
}

}  // namespace fvl
