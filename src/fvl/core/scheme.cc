#include "fvl/core/scheme.h"

#include <cstdio>

#include "fvl/util/check.h"
#include "fvl/workflow/properness.h"
#include "fvl/workflow/recursion_analysis.h"
#include "fvl/workflow/safety.h"

namespace fvl {

std::optional<FvlScheme> FvlScheme::Create(const Specification* spec,
                                           std::string* error) {
  auto fail = [&](const std::string& message) -> std::optional<FvlScheme> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  if (auto validation = spec->Validate()) return fail(*validation);
  PropernessReport properness = AnalyzeProperness(spec->grammar);
  if (!properness.IsProper(spec->grammar)) {
    return fail("grammar is not proper:\n" +
                properness.Describe(spec->grammar));
  }
  auto pg = std::make_shared<ProductionGraph>(&spec->grammar);
  if (!pg->strictly_linear()) {
    return fail(
        "grammar is not strictly linear-recursive (Thm. 8 precondition)");
  }
  SafetyResult safety = CheckSafety(spec->grammar, spec->deps);
  if (!safety.safe) return fail("specification is unsafe: " + safety.error);
  return FvlScheme(spec, std::move(pg), std::move(safety.full));
}

FvlScheme::FvlScheme(const Specification* spec) : spec_(spec) {
  std::string error;
  std::optional<FvlScheme> checked = Create(spec, &error);
  if (!checked.has_value()) {
    std::fprintf(stderr, "FvlScheme: %s\n", error.c_str());
    FVL_CHECK(false && "invalid specification for FVL");
  }
  pg_ = std::move(checked->pg_);
  true_full_ = std::move(checked->true_full_);
}

FvlScheme::LabeledRun FvlScheme::GenerateLabeledRun(
    const RunGeneratorOptions& options) const {
  RunLabeler labeler = MakeRunLabeler();
  Run run = GenerateRandomRun(
      spec_->grammar, options,
      [&labeler](const Run& current, const DerivationStep* step) {
        if (step == nullptr) {
          labeler.OnStart(current);
        } else {
          labeler.OnApply(current, *step);
        }
      });
  return {std::move(run), std::move(labeler)};
}

BasicDynamicLabeling::BasicDynamicLabeling(const FvlScheme* scheme)
    : labeler_(scheme->MakeRunLabeler()),
      view_label_(nullptr),
      decoder_(nullptr) {
  View default_view = MakeDefaultView(scheme->spec());
  std::string error;
  std::optional<CompiledView> compiled =
      CompiledView::Compile(scheme->grammar(), default_view, &error);
  FVL_CHECK(compiled.has_value());
  view_label_ = std::make_unique<ViewLabel>(
      scheme->LabelView(*compiled, ViewLabelMode::kQueryEfficient));
  decoder_ = Decoder(view_label_.get());
}

}  // namespace fvl
