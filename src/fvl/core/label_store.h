// Shared-arena label storage — the one representation behind every place
// the library keeps encoded data labels (in the spirit of poplar-trie's
// grouped compact label stores; see SNIPPETS.md §2–3).
//
// Layout (v2 — "compact label store"): instead of one fixed-width offset
// per label (v1's `int64` table, ~20 bits of pure overhead per label in
// the paper's compact-label regime), a store keeps two bit streams plus a
// small skip table:
//
//   meta_   per item, in flat-id order: the label's encoded length as an
//           Elias-gamma code, immediately followed by the encoded label
//           itself when it is short (length <= the codec-derived inline
//           threshold) — short labels cost ~their content, exactly the
//           poplar-trie inlining idiom;
//   arena_  the encoded payloads of the remaining (long) labels, in the
//           same flat-id order;
//   skips_  {first_item, meta_start, arena_start} checkpoints every
//           kSkipInterval items (plus one at every bulk-append seam), so
//           locating an arbitrary flat id is one binary search plus a
//           bounded forward scan — O(1)-ish group-local rank.
//
// Both streams are position-independent (gamma codes and payloads carry no
// absolute offsets), which is what keeps the bulk lifecycle ops bulk:
//
//   * live sessions append labels as items are created (RunLabeler);
//   * snapshots freeze the store by copying it — no re-encode
//     (ProvenanceIndex is a frozen single-group store); the streams are
//     append-only, so the labels added since the last freeze are one
//     contiguous range of each stream and ExtractDelta freezes
//     *incrementally* in O(delta) (the §2.3 mid-run checkpointing path);
//   * multi-run merging appends whole stores group-by-group with two bulk
//     bit copies and per-skip integer fixups — no label is re-encoded or
//     even re-delimited (MergedProvenanceIndex is a frozen many-group
//     store; MergeStream stays memory-bounded);
//   * both the FVLIDX3 and FVLMRG2 blob formats share the store's
//     serialized tail and its hardened ParseTail, which is
//     version-dispatched: pre-existing FVLIDX2/FVLMRG1 blobs (flat
//     fixed-width offset tables) still deserialize, into the v2 in-memory
//     form. Every parse bounds-checks every field and verifies that every
//     span decodes under the embedded codec before a store is returned —
//     accessors of a parsed store never abort.
//
// Serialization is *canonical*: AppendTail re-chunks the length sequence
// into fixed blocks of kBlockItems labels (vbyte block-minimum length +
// fixed-width per-item deltas + inline payloads, then the long-label
// arena), so the serialized tail is a pure function of the logical label
// sequence — independent of how the store was assembled. That is what
// keeps FromDeltas reassembly bit-identical to a monolithic snapshot.
//
// Span access is zero-copy: SpanReader returns a BitReader over whichever
// stream holds the label. Batch decode loops (DependsMany /
// VisibilitySweep) should walk a SpanCursor, which amortizes the per-item
// scan to O(1) for non-decreasing ids.

#ifndef FVL_CORE_LABEL_STORE_H_
#define FVL_CORE_LABEL_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fvl/core/data_label.h"
#include "fvl/util/bitstream.h"
#include "fvl/util/check.h"
#include "fvl/util/status.h"

namespace fvl {

class LabelStoreTestPeer;

namespace internal {

// Process-wide census of live LabelStore instances (relaxed atomics; a
// member of every store, so construction, copies, and destruction are all
// counted — moved-from stores still exist and still count). MergeStream's
// memory-boundedness contract — at most one deserialized input store alive
// at a time on top of the output — is asserted against this probe by
// tests/merge_test.cc and reported by bench_merge_query as a peak-RSS
// proxy.
class StoreCountProbe {
 public:
  StoreCountProbe() { Add(1); }
  StoreCountProbe(const StoreCountProbe&) { Add(1); }
  StoreCountProbe& operator=(const StoreCountProbe&) = default;
  ~StoreCountProbe() { Add(-1); }

  // Stores alive right now.
  static int live();
  // High-water mark of live() since the last ResetPeak.
  static int peak();
  static void ResetPeak();

 private:
  static void Add(int delta);
};

}  // namespace internal

class LabelStore {
 public:
  // Version byte embedded in the v2 serialized tail (and implied by the
  // FVLIDX3/FVLMRG2 magics). Bump together with any layout change to
  // AppendTail/ParseTail — tools/fvl_lint.py's tail-format rule enforces
  // that a layout diff cannot land without touching this constant and the
  // golden-blob test.
  static constexpr int kTailFormatVersion = 2;
  // Serialized block granularity: AppendTail re-chunks the label sequence
  // into blocks of exactly this many labels (the last block may be short).
  static constexpr int kBlockItems = 64;
  // In-memory skip-table granularity (not serialized): bounds the forward
  // scan of a random Locate. Finer than kBlockItems because the scan reads
  // gamma codes, not fixed-width deltas.
  static constexpr int kSkipInterval = 16;

  // Labels of at most this many bits are inlined into the meta stream. A
  // pure function of the codec (so stores with equal codecs — the merge
  // precondition — always agree on placement): it admits a label whose two
  // present sides are each one production edge deep, the shape Thm. 6's
  // strictly linear-recursive sweet spot produces — presence bits, per
  // side two gamma path-length codes of a few bits, one edge, one port.
  static int InlineThresholdBits(const LabelCodec& codec) {
    return 2 + 2 * (6 + 1 + codec.production_bits + codec.position_bits +
                    codec.port_bits);
  }

  // Empty store with all-zero codec widths (the state of an empty merge);
  // use the codec constructor for anything that will hold labels.
  LabelStore() = default;
  explicit LabelStore(LabelCodec codec)
      : codec_(std::move(codec)),
        inline_threshold_(InlineThresholdBits(codec_)) {}

  const LabelCodec& codec() const { return codec_; }
  int inline_threshold_bits() const { return inline_threshold_; }

  int num_groups() const { return static_cast<int>(group_base_.size()) - 1; }
  int num_items(int group) const {
    FVL_CHECK(group >= 0 && group < num_groups());
    return static_cast<int>(group_base_[group + 1] - group_base_[group]);
  }
  // Items across all groups; bounded to int range by appenders/ParseTail.
  int total_items() const { return static_cast<int>(group_base_.back()); }
  // Total encoded label content across both streams — the sum of every
  // label's exact encoded size, excluding all storage metadata. This is
  // the `arena_bits` quantity the blob headers carry (in both format
  // versions), and the denominator-free "label bits" the paper's space
  // figures measure.
  int64_t arena_bits() const { return total_label_bits_; }
  // Labels currently inlined in the meta stream (observability for tests
  // and the space benches; not serialized state).
  int64_t inline_items() const { return inline_items_; }
  // True while the long-label arena is borrowed memory (a ParseTail with
  // borrow_arena over an mmap'ed blob) rather than an owned stream. Reads
  // are served straight from the borrowed bytes; the first mutation thaws
  // (copies) the arena, after which this returns false. Observability for
  // the mmap-serving tests and stats — not serialized state.
  bool arena_borrowed() const { return borrowed_arena_ != nullptr; }

  // Flat id of (group, item) in arena order: group_base_[group] + item.
  int GlobalId(int group, int item) const {
    FVL_CHECK(group >= 0 && group < num_groups());
    FVL_CHECK(item >= 0 && item < num_items(group));
    return static_cast<int>(group_base_[group] + item);
  }
  // Inverse direction: the group a flat id belongs to. Zero-item groups
  // (repeated bases) are skipped correctly — no flat id maps into them.
  int GroupOf(int global) const;

  // --- Append (live sessions, builders) -----------------------------------

  // Opens a new, empty group at the end; subsequent Append calls fill it.
  void BeginGroup() { group_base_.push_back(group_base_.back()); }

  // Encodes `label` at the end of the store, as the next item of the last
  // group (BeginGroup must have been called at least once).
  void Append(const DataLabel& label);

  // Appends every group of `other` as new groups of this store: two bulk
  // bit copies (meta + arena streams) plus integer skip-table rebasing —
  // no label is decoded, re-encoded, or re-delimited. Codecs must match
  // (callers report mismatches as recoverable errors before calling).
  // Fails with kInvalidArgument — and leaves this store untouched — when
  // `other`'s spans do not cover its whole streams: rebasing such a store
  // would silently graft the uncovered bits onto the next appended span
  // (live and parsed stores satisfy the invariant by construction; the
  // check guards hand-assembled or corrupted ones in release builds too).
  [[nodiscard]] Status AppendGroups(const LabelStore& other);

  // Appends every item of `other` into this store's current *last* group
  // (BeginGroup must have been called at least once) — the reassembly step
  // of incremental snapshots (ProvenanceIndex::FromDeltas). Same bulk
  // copy, codec precondition, and span-coverage error as AppendGroups.
  [[nodiscard]] Status AppendItems(const LabelStore& other);

  // --- Incremental freezes (O(delta) snapshots) ---------------------------
  //
  // The streams are append-only, so everything added since the last freeze
  // is one contiguous range at the end of each. The store tracks that
  // freeze point as a watermark: items [0, watermark_items()) have already
  // been extracted. The watermark is live-session state — it is not
  // serialized, and a parsed store starts with watermark 0.

  // Items frozen by previous ExtractDelta calls.
  int watermark_items() const { return watermark_items_; }

  // Returns a new single-group store holding exactly the labels appended
  // since the last ExtractDelta (streams rebased to start at bit 0) and
  // advances the watermark to the current end. Cost is O(delta) — one bit
  // copy of each new range — never O(total). Appending the extracted
  // deltas back together (AppendItems) reproduces this store's streams bit
  // for bit, so the canonical serialization of the reassembly matches a
  // monolithic snapshot's exactly.
  LabelStore ExtractDelta();

  // --- Span access (zero-copy) --------------------------------------------

  // Reader over exactly the bit span of one label (whichever stream holds
  // it). Costs a skip-table lookup plus a <= kSkipInterval-item scan; use
  // a SpanCursor for sequential walks.
  BitReader SpanReader(int global) const;
  // Decodes one label; spans are validated at construction/ParseTail, so
  // decode never aborts on a store obtained through the public paths.
  DataLabel DecodeLabel(int global) const;
  // Exact encoded size of one label.
  int64_t LabelBits(int global) const;

  // Stateful sequential reader: remembers its stream positions between
  // calls, so walking ids in non-decreasing order costs amortized O(1) per
  // item instead of a per-item skip-table scan. A backward jump re-seeks
  // through the skip table (correct, just not amortized). The cursor
  // borrows the store — it must not outlive it or span mutations.
  class SpanCursor {
   public:
    explicit SpanCursor(const LabelStore& store) : store_(&store) {}

    // Reader over exactly item `global`'s span.
    BitReader SpanAt(int global);
    DataLabel DecodeAt(int global);
    int64_t LabelBitsAt(int global);

   private:
    // Positions the cursor at the start of item `global`'s meta record.
    void SeekTo(int global);

    const LabelStore* store_;
    int item_ = 0;            // item the cursor is positioned at
    int64_t meta_pos_ = 0;    // bit position of item_'s gamma length
    int64_t arena_pos_ = 0;   // arena bits consumed by items [0, item_)
  };

  // --- Serialization ------------------------------------------------------
  //
  // The store serializes as the tail shared by the FVLIDX3 and FVLMRG2
  // blob formats: codec field widths, the tail-format version byte, the
  // canonical block-compressed span stream, and the long-label arena.
  // Group structure is the *header's* business (the single-run format has
  // one implicit group; the merged format writes a run table), so callers
  // pass group bases to ParseTail.

  void AppendTail(std::string* blob) const;

  // Exact size in bits of the canonical serialized span representation
  // (block headers + per-item length deltas + all label content), i.e. the
  // tail minus codec self-description and word-alignment framing — the
  // v2 analogue of v1's "arena + minimal-width offset per item" and the
  // quantity the space benches report.
  int64_t SerializedSpanBits() const;

  // Parses and validates the tail starting at *pos; on success the blob is
  // fully consumed and every label span is known to decode exactly under
  // the embedded codec. `tail_version` comes from the caller's magic
  // dispatch: 1 parses the legacy flat-offset tail (FVLIDX2/FVLMRG1), 2
  // the block-compressed tail (FVLIDX3/FVLMRG2); either way the returned
  // store uses the v2 in-memory form. `group_base` and `arena_bits` (total
  // label content bits) come from the caller's header and must already be
  // bounded by the blob size (counts within int range, bases monotone).
  // By default the blob is only read during the call — the returned store
  // owns its words, so callers may stream borrowed buffers through without
  // copying them into std::strings. With `borrow_arena` set (and a v2
  // tail), the long-label arena — the dominant bit range of a large store —
  // is NOT copied: the store keeps a pointer into `blob` and serves arena
  // reads from it, so the caller must keep the blob bytes alive and
  // unchanged for the store's lifetime (ProvenanceIndex::Map holds the
  // BlobSource alongside the store). The meta stream is re-encoded and
  // owned either way, as is everything parsed from a v1 tail (whose arena
  // must be re-split, so the flag is ignored). Any mutation of a borrowed
  // store first thaws the arena into owned words (copy-on-thaw), after
  // which the blob may be released.
  [[nodiscard]] static Result<LabelStore> ParseTail(std::string_view blob,
                                                    size_t* pos,
                                                    std::vector<int64_t> group_base,
                                                    uint64_t arena_bits,
                                                    int tail_version,
                                                    bool borrow_arena = false);

  // Little-endian u64 helpers shared with the format headers. ReadU64
  // tolerates any `pos`, including values near SIZE_MAX: a position that
  // does not leave 8 readable bytes returns false (no wraparound, no
  // out-of-bounds read) and leaves *pos unchanged.
  static void AppendU64(std::string* out, uint64_t value);
  static bool ReadU64(std::string_view blob, size_t* pos, uint64_t* value);

 private:
  friend class ::fvl::LabelStoreTestPeer;

  // Skip-table checkpoint: stream positions at the start of item
  // `first_item`'s meta record.
  struct Skip {
    int64_t first_item;
    int64_t meta_start;
    int64_t arena_start;
  };

  // Where one label lives: which stream, at which bit, how long.
  struct SpanLoc {
    bool is_inline;
    int64_t start;
    int64_t length;
  };
  // Skip-table lookup + bounded forward scan to item `global`.
  SpanLoc Locate(int global) const;

  // Appends a skip entry if the last one is >= kSkipInterval items old.
  // Call immediately before appending a span.
  void MaybePushSkip();
  // Shared span-append core of Append and the parse paths: writes the
  // gamma length, copies `length` payload bits from `payload` into the
  // meta stream (inline) or the arena (long), and updates every counter.
  // Does not touch group bookkeeping. `payload` must have >= length bits
  // remaining (parse paths check before calling).
  void AppendSpan(BitReader* payload, int64_t length);
  // Accounting-only variant for the borrowed-arena parse: a long label
  // whose payload already sits in the borrowed bytes — writes the gamma
  // length and advances every counter, copies nothing.
  void AppendSpanBorrowed(int64_t length);

  // Long-label arena size, whichever memory holds it.
  int64_t arena_size_bits() const {
    return arena_borrowed() ? borrowed_arena_bits_ : arena_.size_bits();
  }
  // Reader over the bit range [start_bit, end_bit) of the long-label
  // arena, borrowed or owned.
  BitReader ArenaReader(int64_t start_bit, int64_t end_bit) const {
    if (arena_borrowed()) return BitReader(borrowed_arena_, start_bit, end_bit);
    return BitReader(&arena_.words(), start_bit, end_bit);
  }
  // Copy-on-thaw: materializes a borrowed arena into owned words. Called
  // by every mutator, so append paths never write through (or next to)
  // borrowed memory; no-op for owned stores.
  void ThawArena();

  // Shared bulk-append core: coverage check, two stream bit copies, skip
  // rebasing. Group bookkeeping is the callers' business.
  [[nodiscard]] Status AppendArena(const LabelStore& other);

  // Walks the label lengths and invokes fn(block_first_item, count,
  // base_len, delta_width) for every canonical kBlockItems chunk — the one
  // chunking used by AppendTail and SerializedSpanBits.
  template <typename Fn>
  void ForEachCanonicalBlock(Fn&& fn) const;

  LabelCodec codec_;
  int inline_threshold_ = InlineThresholdBits(codec_);
  std::vector<int64_t> group_base_{0};  // size num_groups + 1; [0] = 0
  std::vector<Skip> skips_{{0, 0, 0}};  // sorted by first_item; [0] = origin
  BitWriter meta_;   // per item: gamma(length) [+ inline payload]
  BitWriter arena_;  // payloads of long labels, in item order (owned mode)
  // Borrowed-arena mode (ParseTail with borrow_arena): long-label payloads
  // live in these caller-owned bytes — the serialized arena words inside a
  // mapped blob — and arena_ stays empty until ThawArena. The range is
  // unaligned; readers assemble words byte-wise (BitReader byte mode).
  const uint8_t* borrowed_arena_ = nullptr;
  int64_t borrowed_arena_bits_ = 0;
  int64_t num_spans_ = 0;         // spans appended (== total_items() when
                                  //   group bookkeeping is complete)
  int64_t total_label_bits_ = 0;  // sum of all label lengths
  int64_t inline_items_ = 0;      // labels living in the meta stream
  // Stream bits accounted for by appended spans. Always equal to the
  // stream sizes for stores built through the public paths; AppendArena
  // checks the equality so a hand-assembled or corrupted store surfaces
  // recoverably instead of grafting uncovered bits onto the next span.
  int64_t meta_covered_bits_ = 0;
  int64_t arena_covered_bits_ = 0;
  // ExtractDelta freeze point (not serialized).
  int watermark_items_ = 0;
  int64_t watermark_meta_bits_ = 0;
  int64_t watermark_arena_bits_ = 0;
  int64_t watermark_label_bits_ = 0;
  int64_t watermark_inline_items_ = 0;
  internal::StoreCountProbe probe_;
};

}  // namespace fvl

#endif  // FVL_CORE_LABEL_STORE_H_
