// Shared-arena label storage — the one representation behind every place
// the library keeps encoded data labels (in the spirit of poplar-trie's
// GroupedLabelStore; see SNIPPETS.md).
//
// A LabelStore is one contiguous bit arena of codec-encoded labels plus a
// grouped offset table: `group_base_` maps a group (a run, for multi-run
// artifacts) to its flat-id range and `offsets_` maps each flat id to its
// bit span in the arena. The same object serves every storage site:
//
//   * live sessions append labels as items are created (RunLabeler);
//   * snapshots freeze the store by copying the arena — no re-encode
//     (ProvenanceIndex is a frozen single-group store); because the arena
//     is append-only, the labels added since the last freeze are one
//     contiguous bit range, so ExtractDelta can freeze *incrementally* in
//     O(delta) instead of O(run) (the §2.3 mid-run checkpointing path);
//   * multi-run merging appends whole stores group-by-group with one bulk
//     bit copy and integer offset rebasing — no label is re-encoded
//     (MergedProvenanceIndex is a frozen many-group store; MergeStream
//     feeds deserialized runs through AppendGroups one at a time and drops
//     each input before the next, keeping the merge memory-bounded);
//   * both the FVLIDX2 and FVLMRG1 blob formats share the store's
//     serialized tail (codec widths, bit-packed offsets, arena) and its
//     hardened ParseTail, which bounds-checks every field and verifies that
//     every span decodes under the embedded codec before a store is
//     returned — accessors of a parsed store never abort.
//
// Span access is zero-copy: SpanReader returns a BitReader over the arena
// words, so batch decode loops (DependsMany / VisibilitySweep) walk one
// contiguous allocation in flat-id order.

#ifndef FVL_CORE_LABEL_STORE_H_
#define FVL_CORE_LABEL_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fvl/core/data_label.h"
#include "fvl/util/bitstream.h"
#include "fvl/util/check.h"
#include "fvl/util/status.h"

namespace fvl {

class LabelStoreTestPeer;

namespace internal {

// Process-wide census of live LabelStore instances (relaxed atomics; a
// member of every store, so construction, copies, and destruction are all
// counted — moved-from stores still exist and still count). MergeStream's
// memory-boundedness contract — at most one deserialized input store alive
// at a time on top of the output — is asserted against this probe by
// tests/merge_test.cc and reported by bench_merge_query as a peak-RSS
// proxy.
class StoreCountProbe {
 public:
  StoreCountProbe() { Add(1); }
  StoreCountProbe(const StoreCountProbe&) { Add(1); }
  StoreCountProbe& operator=(const StoreCountProbe&) = default;
  ~StoreCountProbe() { Add(-1); }

  // Stores alive right now.
  static int live();
  // High-water mark of live() since the last ResetPeak.
  static int peak();
  static void ResetPeak();

 private:
  static void Add(int delta);
};

}  // namespace internal

class LabelStore {
 public:
  // Empty store with all-zero codec widths (the state of an empty merge);
  // use the codec constructor for anything that will hold labels.
  LabelStore() = default;
  explicit LabelStore(LabelCodec codec) : codec_(std::move(codec)) {}

  const LabelCodec& codec() const { return codec_; }

  int num_groups() const { return static_cast<int>(group_base_.size()) - 1; }
  int num_items(int group) const {
    FVL_CHECK(group >= 0 && group < num_groups());
    return static_cast<int>(group_base_[group + 1] - group_base_[group]);
  }
  // Items across all groups; bounded to int range by appenders/ParseTail.
  int total_items() const { return static_cast<int>(group_base_.back()); }
  int64_t arena_bits() const { return arena_.size_bits(); }

  // Flat id of (group, item) in arena order: group_base_[group] + item.
  int GlobalId(int group, int item) const {
    FVL_CHECK(group >= 0 && group < num_groups());
    FVL_CHECK(item >= 0 && item < num_items(group));
    return static_cast<int>(group_base_[group] + item);
  }
  // Inverse direction: the group a flat id belongs to. Zero-item groups
  // (repeated bases) are skipped correctly — no flat id maps into them.
  int GroupOf(int global) const;

  // --- Append (live sessions, builders) -----------------------------------

  // Opens a new, empty group at the end; subsequent Append calls fill it.
  void BeginGroup() { group_base_.push_back(group_base_.back()); }

  // Encodes `label` at the end of the arena, as the next item of the last
  // group (BeginGroup must have been called at least once).
  void Append(const DataLabel& label);

  // Appends every group of `other` as new groups of this store: one bulk
  // bit copy of the other arena plus integer offset rebasing — no label is
  // decoded or re-encoded. Codecs must match (callers report mismatches as
  // recoverable errors before calling). Fails with kInvalidArgument — and
  // leaves this store untouched — when `other`'s offsets do not cover its
  // whole arena: rebasing such a store would silently graft the uncovered
  // bits onto the next appended span (live and parsed stores satisfy the
  // invariant by construction; the check guards hand-assembled or
  // corrupted ones in release builds too).
  [[nodiscard]] Status AppendGroups(const LabelStore& other);

  // Appends every item of `other` into this store's current *last* group
  // (BeginGroup must have been called at least once) — the reassembly step
  // of incremental snapshots (ProvenanceIndex::FromDeltas). Same bulk
  // copy, codec precondition, and offset-coverage error as AppendGroups.
  [[nodiscard]] Status AppendItems(const LabelStore& other);

  // --- Incremental freezes (O(delta) snapshots) ---------------------------
  //
  // The arena is append-only, so everything added since the last freeze is
  // one contiguous bit range at the end. The store tracks that freeze
  // point as a watermark: items [0, watermark_items()) have already been
  // extracted. The watermark is live-session state — it is not serialized,
  // and a parsed store starts with watermark 0.

  // Items frozen by previous ExtractDelta calls.
  int watermark_items() const { return watermark_items_; }

  // Returns a new single-group store holding exactly the labels appended
  // since the last ExtractDelta (offsets rebased to start at bit 0) and
  // advances the watermark to the current end. Cost is O(delta) — one bit
  // copy of the new range — never O(total). Appending the extracted
  // deltas back together (AppendItems) reproduces this store's tail bit
  // for bit.
  LabelStore ExtractDelta();

  // --- Span access (zero-copy) --------------------------------------------

  // Reader over exactly the bit span of one label.
  BitReader SpanReader(int global) const {
    FVL_CHECK(global >= 0 && global < total_items());
    return BitReader(&arena_.words(), offsets_[global], offsets_[global + 1]);
  }
  // Decodes one label; spans are validated at construction/ParseTail, so
  // decode never aborts on a store obtained through the public paths.
  DataLabel DecodeLabel(int global) const;
  // Exact encoded size of one label.
  int64_t LabelBits(int global) const {
    FVL_CHECK(global >= 0 && global < total_items());
    return offsets_[global + 1] - offsets_[global];
  }

  // --- Serialization ------------------------------------------------------
  //
  // The store serializes as the tail shared by the FVLIDX2 and FVLMRG1 blob
  // formats: codec field widths, the offset table bit-packed at the minimal
  // fixed width, and the label arena. Group structure is the *header's*
  // business (the single-run format has one implicit group; the merged
  // format writes a run table), so callers pass group bases to ParseTail.

  void AppendTail(std::string* blob) const;

  // Parses and validates the tail starting at *pos; on success the blob is
  // fully consumed and every label span is known to decode exactly under
  // the embedded codec. `group_base` and `arena_bits` come from the
  // caller's header and must already be bounded by the blob size (counts
  // within int range, bases monotone). The blob is only read during the
  // call — the returned store owns its words, so callers may stream
  // borrowed buffers through without copying them into std::strings.
  [[nodiscard]] static Result<LabelStore> ParseTail(std::string_view blob, size_t* pos,
                                      std::vector<int64_t> group_base,
                                      uint64_t arena_bits);

  // Little-endian u64 helpers shared with the format headers. ReadU64
  // tolerates any `pos`, including values near SIZE_MAX: a position that
  // does not leave 8 readable bytes returns false (no wraparound, no
  // out-of-bounds read) and leaves *pos unchanged.
  static void AppendU64(std::string* out, uint64_t value);
  static bool ReadU64(std::string_view blob, size_t* pos, uint64_t* value);

 private:
  friend class ::fvl::LabelStoreTestPeer;

  // Shared bulk-append core: coverage check, arena bit copy, offset
  // rebasing. Group bookkeeping is the callers' business.
  [[nodiscard]] Status AppendArena(const LabelStore& other);

  LabelCodec codec_;
  std::vector<int64_t> group_base_{0};  // size num_groups + 1; [0] = 0
  std::vector<int64_t> offsets_{0};     // size total_items + 1; [0] = 0
  BitWriter arena_;
  int watermark_items_ = 0;  // items frozen by ExtractDelta; not serialized
  internal::StoreCountProbe probe_;
};

}  // namespace fvl

#endif  // FVL_CORE_LABEL_STORE_H_
