#include "fvl/core/parse_tree.h"

#include "fvl/util/check.h"

namespace fvl {

CompressedParseTree::CompressedParseTree(const Grammar* grammar,
                                         const ProductionGraph* pg)
    : grammar_(grammar), pg_(pg) {
  FVL_CHECK(pg_->strictly_linear() &&
            "compressed parse trees require a strictly linear-recursive "
            "grammar");
}

int CompressedParseTree::NewNode(ParseNode node) {
  node.id = num_nodes();
  max_depth_ = std::max(max_depth_, static_cast<int>(node.path.size()));
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

void CompressedParseTree::OnStart(const Run& run) {
  FVL_CHECK(nodes_.empty());
  node_of_instance_.assign(1, -1);
  ModuleId start_module = run.grammar().start();

  if (pg_->IsRecursive(start_module)) {
    // The start module lies on a cycle: the root is a recursive node and S:1
    // is its first child.
    ParseNode rec;
    rec.kind = ParseNode::Kind::kRecursive;
    rec.cycle = pg_->CycleOf(start_module);
    rec.start = pg_->CycleStartIndex(start_module);
    int rec_id = NewNode(std::move(rec));

    ParseNode root_module;
    root_module.kind = ParseNode::Kind::kModule;
    root_module.instance = run.start_instance();
    root_module.parent = rec_id;
    root_module.path = {
        EdgeLabel::Rec(nodes_[rec_id].cycle, nodes_[rec_id].start, 1)};
    int id = NewNode(std::move(root_module));
    nodes_[rec_id].num_children = 1;
    node_of_instance_[run.start_instance()] = id;
  } else {
    ParseNode root_module;
    root_module.kind = ParseNode::Kind::kModule;
    root_module.instance = run.start_instance();
    int id = NewNode(std::move(root_module));
    node_of_instance_[run.start_instance()] = id;
  }
}

void CompressedParseTree::OnApply(const Run& run, const DerivationStep& step) {
  const Grammar& g = run.grammar();
  const Production& p = g.production(step.production);
  ModuleId lhs = p.lhs;

  int u = node_of_instance_[step.instance];
  FVL_CHECK(u >= 0);
  node_of_instance_.resize(run.num_instances(), -1);

  for (int pos = 0; pos < p.rhs.num_members(); ++pos) {
    int child_instance = step.first_child + pos;
    ModuleId member = p.rhs.members[pos];

    if (!pg_->IsRecursive(member)) {
      // Case 1: plain member under the module node.
      ParseNode child;
      child.kind = ParseNode::Kind::kModule;
      child.instance = child_instance;
      child.parent = u;
      child.path = nodes_[u].path;
      child.path.push_back(EdgeLabel::Prod(step.production, pos));
      int id = NewNode(std::move(child));
      ++nodes_[u].num_children;
      node_of_instance_[child_instance] = id;
      continue;
    }

    if (pg_->IsRecursive(lhs) && pg_->CycleOf(member) == pg_->CycleOf(lhs)) {
      // Case 2a: the member continues the lhs's own recursion — it becomes
      // the next sibling of u under u's recursive parent node.
      int rec = nodes_[u].parent;
      FVL_CHECK(rec >= 0 && nodes_[rec].kind == ParseNode::Kind::kRecursive);
      const EdgeLabel& u_edge = nodes_[u].path.back();
      FVL_CHECK(u_edge.kind == EdgeLabel::Kind::kRecursion);

      ParseNode sibling;
      sibling.kind = ParseNode::Kind::kModule;
      sibling.instance = child_instance;
      sibling.parent = rec;
      sibling.path = nodes_[rec].path;
      sibling.path.push_back(EdgeLabel::Rec(u_edge.cycle, u_edge.start,
                                            u_edge.iteration + 1));
      int id = NewNode(std::move(sibling));
      ++nodes_[rec].num_children;
      node_of_instance_[child_instance] = id;
      continue;
    }

    // Case 2b: the member starts a new recursion — create a recursive node
    // under u and put the member as its first child.
    ParseNode rec;
    rec.kind = ParseNode::Kind::kRecursive;
    rec.cycle = pg_->CycleOf(member);
    rec.start = pg_->CycleStartIndex(member);
    rec.parent = u;
    rec.path = nodes_[u].path;
    rec.path.push_back(EdgeLabel::Prod(step.production, pos));
    int cycle = rec.cycle;
    int start = rec.start;
    int rec_id = NewNode(std::move(rec));
    ++nodes_[u].num_children;

    ParseNode child;
    child.kind = ParseNode::Kind::kModule;
    child.instance = child_instance;
    child.parent = rec_id;
    child.path = nodes_[rec_id].path;
    child.path.push_back(EdgeLabel::Rec(cycle, start, 1));
    int id = NewNode(std::move(child));
    nodes_[rec_id].num_children = 1;
    node_of_instance_[child_instance] = id;
  }
}

}  // namespace fvl
