#include "fvl/drl/drl_label.h"

namespace fvl {

std::string DrlLabel::ToString() const {
  auto side = [](const std::optional<Side>& s) {
    if (!s.has_value()) return std::string("-");
    std::string out = "{";
    for (const EdgeLabel& e : s->path) out += e.ToString() + ",";
    out += "#" + std::to_string(s->seq) + "}";
    return out;
  };
  return "(" + side(producer) + ", " + side(consumer) + ")";
}

namespace {

size_t CommonPrefix(const DrlLabel& label) {
  if (!label.producer.has_value() || !label.consumer.has_value()) return 0;
  const auto& a = label.producer->path;
  const auto& b = label.consumer->path;
  size_t prefix = 0;
  while (prefix < a.size() && prefix < b.size() && a[prefix] == b[prefix]) {
    ++prefix;
  }
  return prefix;
}

}  // namespace

BitWriter DrlCodec::Encode(const DrlLabel& label) const {
  BitWriter writer;
  writer.WriteFixed(label.producer.has_value() ? 1 : 0, 1);
  writer.WriteFixed(label.consumer.has_value() ? 1 : 0, 1);
  size_t prefix = CommonPrefix(label);
  bool both = label.producer.has_value() && label.consumer.has_value();
  if (both) {
    writer.WriteGamma(prefix + 1);
    for (size_t i = 0; i < prefix; ++i) {
      edge_codec_.EncodeEdge(label.producer->path[i], &writer);
    }
  }
  auto encode_side = [&](const DrlLabel::Side& side) {
    size_t skip = both ? prefix : 0;
    writer.WriteGamma(side.path.size() - skip + 1);
    for (size_t i = skip; i < side.path.size(); ++i) {
      edge_codec_.EncodeEdge(side.path[i], &writer);
    }
    writer.WriteGamma(static_cast<uint64_t>(side.seq));
  };
  if (label.producer.has_value()) encode_side(*label.producer);
  if (label.consumer.has_value()) encode_side(*label.consumer);
  return writer;
}

DrlLabel DrlCodec::Decode(BitReader* reader) const {
  DrlLabel label;
  bool has_producer = reader->ReadFixed(1) == 1;
  bool has_consumer = reader->ReadFixed(1) == 1;
  std::vector<EdgeLabel> prefix;
  if (has_producer && has_consumer) {
    size_t prefix_size = static_cast<size_t>(reader->ReadGamma() - 1);
    for (size_t i = 0; i < prefix_size; ++i) {
      prefix.push_back(edge_codec_.DecodeEdge(reader));
    }
  }
  auto decode_side = [&]() {
    DrlLabel::Side side;
    side.path = prefix;
    size_t suffix = static_cast<size_t>(reader->ReadGamma() - 1);
    for (size_t i = 0; i < suffix; ++i) {
      side.path.push_back(edge_codec_.DecodeEdge(reader));
    }
    side.seq = static_cast<int>(reader->ReadGamma());
    return side;
  };
  if (has_producer) label.producer = decode_side();
  if (has_consumer) label.consumer = decode_side();
  return label;
}

int64_t DrlCodec::EncodedBits(const DrlLabel& label) const {
  // Encode() is cheap enough for the accounting path; labels are tiny.
  return Encode(label).size_bits();
}

}  // namespace fvl
