// DRL labels — the baseline's per-view data labels.
//
// DRL ("Labeling Dynamic runs of Recursive workflows", the paper's
// state-of-the-art comparator [5]) targets the coarse-grained model: every
// output of a module depends on every input, and workflows have single
// source/sink modules. Reachability between data items then only depends on
// *module-level* structure, so DRL labels carry parse-tree paths without
// port indices, plus the dynamic bracket counters its interval scheme
// maintains (reconstructed here as per-production sequence numbers; see
// docs/DESIGN.md §2.4 for the fidelity discussion).
//
// DRL is *not* view-adaptive: labels are computed per view, over the view's
// restricted grammar, and must be recomputed for every new view (the cost
// model behind the paper's Figures 21–22).

#ifndef FVL_DRL_DRL_LABEL_H_
#define FVL_DRL_DRL_LABEL_H_

#include <optional>
#include <string>
#include <vector>

#include "fvl/core/data_label.h"

namespace fvl {

struct DrlLabel {
  struct Side {
    std::vector<EdgeLabel> path;  // edge ids of the *restricted* grammar
    int seq = 0;                  // bracket counter (1-based)

    bool operator==(const Side&) const = default;
  };
  std::optional<Side> producer;
  std::optional<Side> consumer;

  bool operator==(const DrlLabel&) const = default;
  std::string ToString() const;
};

// Bit codec for DRL labels: same fixed-width edge fields as the FVL codec
// (derived from the restricted grammar), gamma-coded bracket counters,
// common path prefix factored once.
class DrlCodec {
 public:
  explicit DrlCodec(const ProductionGraph& restricted_pg)
      : edge_codec_(restricted_pg) {}

  BitWriter Encode(const DrlLabel& label) const;
  DrlLabel Decode(BitReader* reader) const;
  int64_t EncodedBits(const DrlLabel& label) const;

 private:
  LabelCodec edge_codec_;
};

}  // namespace fvl

#endif  // FVL_DRL_DRL_LABEL_H_
