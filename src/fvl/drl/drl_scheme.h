// DRL — reconstruction of the paper's state-of-the-art comparator [5]
// ("Labeling recursive workflow executions on-the-fly", coarse-grained
// model). See docs/DESIGN.md §2.4 for what is reconstructed versus published.
//
// Cost model (what the paper's §6 comparisons exercise):
//  * static part per view: DrlViewIndex — the view-restricted grammar, its
//    production graph, and per-production module-level reachability bits;
//  * dynamic part per (run, view): DrlRunLabeler labels the *view projection
//    of the run* online; a new view requires relabeling every run
//    (not view-adaptive);
//  * queries: DrlDepends — constant time, no matrix algebra (black-box
//    dependencies make port structure irrelevant).
//
// Correct only for black-box views over single-source/single-sink workflows
// (Def. 8), which is the regime the paper compares DRL in.

#ifndef FVL_DRL_DRL_SCHEME_H_
#define FVL_DRL_DRL_SCHEME_H_

#include <memory>
#include <vector>

#include "fvl/drl/drl_label.h"
#include "fvl/run/run.h"
#include "fvl/workflow/production_graph.h"
#include "fvl/workflow/view.h"

namespace fvl {

class DrlViewIndex {
 public:
  DrlViewIndex(const Grammar* grammar, const CompiledView* view);

  const Grammar& original() const { return *grammar_; }
  const Grammar& restricted() const { return *restricted_; }
  const ProductionGraph& pg() const { return *pg_; }
  const DrlCodec& codec() const { return *codec_; }

  // Restricted production id for an original one; -1 if inactive.
  ProductionId Restrict(ProductionId original) const {
    return restricted_id_[original];
  }
  bool MemberReaches(ProductionId restricted_k, int i, int j) const {
    return reach_bits_[restricted_k][i * members_[restricted_k] + j];
  }

  int64_t SizeBits() const;

 private:
  const Grammar* grammar_;
  std::shared_ptr<const Grammar> restricted_;
  std::shared_ptr<const ProductionGraph> pg_;
  std::shared_ptr<const DrlCodec> codec_;
  std::vector<ProductionId> restricted_id_;
  std::vector<int> members_;
  std::vector<std::vector<bool>> reach_bits_;
};

class DrlRunLabeler {
 public:
  explicit DrlRunLabeler(const DrlViewIndex* index);

  // Online hooks. OnApply silently skips steps invisible in the view.
  void OnStart(const Run& run);
  void OnApply(const Run& run, const DerivationStep& step);

  bool HasLabel(int item) const {
    return item < static_cast<int>(has_label_.size()) && has_label_[item];
  }
  const DrlLabel& Label(int item) const { return labels_[item]; }
  int64_t LabelBits(int item) const {
    return index_->codec().EncodedBits(labels_[item]);
  }
  int num_visible_items() const { return num_visible_items_; }

 private:
  const DrlViewIndex* index_;
  std::vector<DrlLabel> labels_;
  std::vector<bool> has_label_;
  // Per instance: visibility and compressed-parse-tree path (restricted ids).
  std::vector<bool> visible_;
  std::vector<std::vector<EdgeLabel>> paths_;
  int num_visible_items_ = 0;
};

// DRL's query predicate; both labels must come from the same DrlViewIndex.
bool DrlDepends(const DrlViewIndex& index, const DrlLabel& d1,
                const DrlLabel& d2);

// Convenience: label an entire run for a view.
DrlRunLabeler DrlLabelRun(const Run& run, const DrlViewIndex& index);

}  // namespace fvl

#endif  // FVL_DRL_DRL_SCHEME_H_
