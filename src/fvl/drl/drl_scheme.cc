#include "fvl/drl/drl_scheme.h"

#include "fvl/util/check.h"

namespace fvl {

DrlViewIndex::DrlViewIndex(const Grammar* grammar, const CompiledView* view)
    : grammar_(grammar) {
  // Restricted grammar: same module table, only the view's productions;
  // composite set = expandable set.
  std::vector<bool> composite(grammar->num_modules(), false);
  std::vector<Production> productions;
  restricted_id_.assign(grammar->num_productions(), -1);
  for (ProductionId k = 0; k < grammar->num_productions(); ++k) {
    if (!view->IsActiveProduction(k)) continue;
    restricted_id_[k] = static_cast<ProductionId>(productions.size());
    productions.push_back(grammar->production(k));
    composite[grammar->production(k).lhs] = true;
  }
  restricted_ = std::make_shared<const Grammar>(
      grammar->modules(), composite, grammar->start(), productions);
  pg_ = std::make_shared<const ProductionGraph>(restricted_.get());
  FVL_CHECK(pg_->strictly_linear());
  codec_ = std::make_shared<const DrlCodec>(*pg_);

  // Member-level reachability bits per restricted production.
  members_.resize(restricted_->num_productions());
  reach_bits_.resize(restricted_->num_productions());
  for (ProductionId rk = 0; rk < restricted_->num_productions(); ++rk) {
    const SimpleWorkflow& w = restricted_->production(rk).rhs;
    const int n = w.num_members();
    members_[rk] = n;
    std::vector<bool> bits(static_cast<size_t>(n) * n, false);
    for (int m = 0; m < n; ++m) bits[m * n + m] = true;
    for (int j = 0; j < n; ++j) {
      for (const DataEdge& e : w.edges) {
        if (e.dst.member != j) continue;
        for (int i = 0; i < n; ++i) {
          if (bits[i * n + e.src.member]) bits[i * n + j] = true;
        }
      }
    }
    reach_bits_[rk] = std::move(bits);
  }
}

int64_t DrlViewIndex::SizeBits() const {
  int64_t bits = 0;
  for (const auto& per_production : reach_bits_) {
    bits += static_cast<int64_t>(per_production.size());
  }
  return bits;
}

DrlRunLabeler::DrlRunLabeler(const DrlViewIndex* index) : index_(index) {}

void DrlRunLabeler::OnStart(const Run& run) {
  const ProductionGraph& pg = index_->pg();
  ModuleId start = run.grammar().start();

  visible_.assign(1, true);
  paths_.assign(1, {});
  if (pg.IsRecursive(start)) {
    paths_[0] = {EdgeLabel::Rec(pg.CycleOf(start), pg.CycleStartIndex(start), 1)};
  }

  int boundary = static_cast<int>(run.InputItems(run.start_instance()).size() +
                                  run.OutputItems(run.start_instance()).size());
  labels_.resize(boundary);
  has_label_.assign(boundary, false);
  for (int item_id : run.InputItems(run.start_instance())) {
    DrlLabel label;
    label.consumer =
        DrlLabel::Side{paths_[0], run.item(item_id).consumer_port + 1};
    labels_[item_id] = std::move(label);
    has_label_[item_id] = true;
    ++num_visible_items_;
  }
  for (int item_id : run.OutputItems(run.start_instance())) {
    DrlLabel label;
    label.producer =
        DrlLabel::Side{paths_[0], run.item(item_id).producer_port + 1};
    labels_[item_id] = std::move(label);
    has_label_[item_id] = true;
    ++num_visible_items_;
  }
}

void DrlRunLabeler::OnApply(const Run& run, const DerivationStep& step) {
  const Grammar& g = run.grammar();
  const ProductionGraph& pg = index_->pg();

  visible_.resize(run.num_instances(), false);
  paths_.resize(run.num_instances());
  labels_.resize(run.num_items());
  has_label_.resize(run.num_items(), false);

  ProductionId rk = index_->Restrict(step.production);
  if (rk < 0 || !visible_[step.instance]) return;  // invisible in this view

  const Production& p = index_->restricted().production(rk);
  ModuleId lhs = p.lhs;

  for (int pos = 0; pos < p.rhs.num_members(); ++pos) {
    int child = step.first_child + pos;
    ModuleId member = p.rhs.members[pos];
    visible_[child] = true;
    if (!pg.IsRecursive(member)) {
      paths_[child] = paths_[step.instance];
      paths_[child].push_back(EdgeLabel::Prod(rk, pos));
    } else if (pg.IsRecursive(lhs) &&
               pg.CycleOf(member) == pg.CycleOf(lhs)) {
      // Next sibling under the recursive node: bump the iteration.
      paths_[child] = paths_[step.instance];
      EdgeLabel& last = paths_[child].back();
      FVL_CHECK(last.kind == EdgeLabel::Kind::kRecursion);
      ++last.iteration;
    } else {
      paths_[child] = paths_[step.instance];
      paths_[child].push_back(EdgeLabel::Prod(rk, pos));
      paths_[child].push_back(
          EdgeLabel::Rec(pg.CycleOf(member), pg.CycleStartIndex(member), 1));
    }
  }

  for (int e = 0; e < step.num_items; ++e) {
    int item_id = step.first_item + e;
    const DataItem& item = run.item(item_id);
    DrlLabel label;
    label.producer = DrlLabel::Side{paths_[item.producer_instance], e + 1};
    label.consumer = DrlLabel::Side{paths_[item.consumer_instance], e + 1};
    labels_[item_id] = std::move(label);
    has_label_[item_id] = true;
    ++num_visible_items_;
  }
  (void)g;
}

bool DrlDepends(const DrlViewIndex& index, const DrlLabel& d1,
                const DrlLabel& d2) {
  // Boundary cases (black-box semantics, single source/sink).
  if (!d1.consumer.has_value() || !d2.producer.has_value()) return false;
  // Same intermediate item (the bracket counters make labels unique): it
  // reaches itself through its own data edge.
  if (d1 == d2) return true;
  if (!d1.producer.has_value()) return true;
  if (!d2.consumer.has_value()) return true;

  const std::vector<EdgeLabel>& l1 = d1.consumer->path;
  const std::vector<EdgeLabel>& l2 = d2.producer->path;
  size_t cp = 0;
  while (cp < l1.size() && cp < l2.size() && l1[cp] == l2[cp]) ++cp;
  if (cp == l1.size() || cp == l2.size()) return true;  // same / ancestor

  const EdgeLabel& e1 = l1[cp];
  const EdgeLabel& e2 = l2[cp];
  FVL_CHECK(e1.kind == e2.kind);

  if (e1.kind == EdgeLabel::Kind::kProduction) {
    return e1.position < e2.position &&
           index.MemberReaches(e1.production, e1.position, e2.position);
  }

  const int s = e1.cycle;
  const int t = e1.start;
  const int i = e1.iteration;
  const int j = e2.iteration;
  if (i < j) {
    if (cp + 1 == l1.size()) return true;  // consumer is the iteration itself
    const EdgeLabel& branch = l1[cp + 1];
    PgEdge successor = index.pg().CycleEdgeAt(s, t + i - 1);
    return branch.position < successor.position &&
           index.MemberReaches(successor.production, branch.position,
                               successor.position);
  }
  if (i > j) {
    if (cp + 1 == l2.size()) return true;  // producer is the iteration itself
    const EdgeLabel& branch = l2[cp + 1];
    PgEdge successor = index.pg().CycleEdgeAt(s, t + j - 1);
    return successor.position < branch.position &&
           index.MemberReaches(successor.production, successor.position,
                               branch.position);
  }
  return true;
}

DrlRunLabeler DrlLabelRun(const Run& run, const DrlViewIndex& index) {
  DrlRunLabeler labeler(&index);
  labeler.OnStart(run);
  for (int s = 0; s < run.num_steps(); ++s) {
    labeler.OnApply(run, run.step(s));
  }
  return labeler;
}

}  // namespace fvl
