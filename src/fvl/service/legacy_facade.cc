#include "fvl/service/legacy_facade.h"

#include "fvl/util/check.h"

namespace fvl {

Result<FvlScheme> FvlScheme::Create(const Specification* spec) {
  Result<std::shared_ptr<ProvenanceService>> service =
      ProvenanceService::CreateUnowned(spec);
  if (!service.ok()) return service.status();
  return FvlScheme(std::move(service).value());
}

ViewLabel FvlScheme::LabelView(const CompiledView& view,
                               ViewLabelMode mode) const {
  return ViewLabeler(&spec().grammar, &service_->production_graph())
      .Label(view, mode);
}

ViewLabel FvlScheme::LabelView(const GroupedView& view,
                               ViewLabelMode mode) const {
  return ViewLabeler(&spec().grammar, &service_->production_graph())
      .Label(view, mode);
}

FvlScheme::LabeledRun FvlScheme::GenerateLabeledRun(
    const RunGeneratorOptions& options) const {
  return service_->DeriveLabeledRun(options);
}

BasicDynamicLabeling::BasicDynamicLabeling(const FvlScheme* scheme)
    : service_(scheme->service()),
      labeler_(service_->MakeRunLabeler()),
      decoder_(nullptr) {
  Result<const Decoder*> decoder = service_->DecoderOf(
      service_->default_view(), ViewLabelMode::kQueryEfficient);
  FVL_CHECK(decoder.ok());
  decoder_ = decoder.value();
}

}  // namespace fvl
