// Pre-service entry points, kept as thin wrappers over ProvenanceService so
// existing callers keep working (see docs/MIGRATION.md for the mapping):
//
//   FvlScheme scheme = FvlScheme::Create(&spec).value();
//   RunLabeler labeler = scheme.MakeRunLabeler();
//   ... drive labeler.OnStart / OnApply while deriving ...
//   ViewLabel vl = scheme.LabelView(view, ViewLabelMode::kQueryEfficient);
//   Decoder pi(&vl);
//   pi.Depends(labeler.Label(d1), labeler.Label(d2));
//
// FvlScheme::LabelView deliberately bypasses the service's view-label cache:
// the labeling benchmarks (Fig. 19/22) time repeated labeling work through
// it. New code should register views once and query through the service.
//
// BasicDynamicLabeling is the Thm.-1/Thm.-8 adapter: a (non-view-adaptive)
// dynamic labeling scheme obtained by pairing every data label with the
// default view's label — φ'(d) = (φr(d), φv(U_default)). Its view label and
// decoder come from the service's registry cache.

#ifndef FVL_SERVICE_LEGACY_FACADE_H_
#define FVL_SERVICE_LEGACY_FACADE_H_

#include <memory>

#include "fvl/service/provenance_service.h"

namespace fvl {

class FvlScheme {
 public:
  // Checked construction with a structured error code per Thm.-8
  // precondition. The caller keeps ownership of *spec, which must outlive
  // the scheme (legacy contract — ProvenanceService::Create owns its spec).
  [[nodiscard]] static Result<FvlScheme> Create(const Specification* spec);

  const Specification& spec() const { return service_->spec(); }
  const Grammar& grammar() const { return service_->grammar(); }
  const ProductionGraph& production_graph() const {
    return service_->production_graph();
  }
  // The true full dependency assignment λ* of the specification.
  const DependencyAssignment& true_full() const {
    return service_->true_full();
  }

  RunLabeler MakeRunLabeler() const { return service_->MakeRunLabeler(); }
  // Uncached: performs the full view-labeling work on every call.
  ViewLabel LabelView(const CompiledView& view, ViewLabelMode mode) const;
  ViewLabel LabelView(const GroupedView& view, ViewLabelMode mode) const;

  // Derives a random run while labeling it online; returns run + labels.
  using LabeledRun = ProvenanceService::LabeledRun;
  LabeledRun GenerateLabeledRun(const RunGeneratorOptions& options) const;

  // The service this facade wraps; shared with sessions and cached
  // decoders.
  const std::shared_ptr<ProvenanceService>& service() const {
    return service_;
  }

 private:
  explicit FvlScheme(std::shared_ptr<ProvenanceService> service)
      : service_(std::move(service)) {}

  std::shared_ptr<ProvenanceService> service_;
};

// Thm. 1 / Thm. 8: the basic (single-view) dynamic labeling scheme derived
// from the view-adaptive one. Labels runs online for the default view.
class BasicDynamicLabeling {
 public:
  explicit BasicDynamicLabeling(const FvlScheme* scheme);

  void OnStart(const Run& run) { labeler_.OnStart(run); }
  void OnApply(const Run& run, const DerivationStep& step) {
    labeler_.OnApply(run, step);
  }

  // φ'(d) — conceptually (φr(d), φv(U_default)); the shared view label is a
  // constant-size component (Thm. 10 part 2), so it is stored once (in the
  // service's registry). Decoded on demand from the labeler's LabelStore.
  DataLabel DataPart(int item) const { return labeler_.Label(item); }
  int64_t LabelBits(int item) const { return labeler_.LabelBits(item); }

  // π'(φ'(d1), φ'(d2)).
  bool Depends(int item1, int item2) const {
    return decoder_->Depends(labeler_.Label(item1), labeler_.Label(item2));
  }

 private:
  std::shared_ptr<ProvenanceService> service_;  // owns *decoder_
  RunLabeler labeler_;
  const Decoder* decoder_;
};

}  // namespace fvl

#endif  // FVL_SERVICE_LEGACY_FACADE_H_
