// fvl::ProvenanceService — the session-oriented public API of the library.
//
// The paper's pitch (Thm. 10) is reachability over provenance views as an
// *online service*: data labels are computed while the workflow executes and
// queries are answered in constant time from labels alone. The service layer
// packages the machinery accordingly:
//
//   auto service = ProvenanceService::Create(std::move(spec)).value();
//
//   // Views are registered once; compilation, labeling (per ViewLabelMode)
//   // and decoders are cached behind cheap handles.
//   ViewHandle view = service->RegisterView(my_view).value();
//
//   // A session labels one run online while it derives.
//   auto session = service->BeginRun();
//   session->Apply(session->run().start_instance(), p1);
//   ...
//   bool dep = session->Depends(view, d1, d2).value();
//
//   // Sessions freeze into position-independent snapshots.
//   ProvenanceIndex index = session->Snapshot();
//   std::vector<bool> answers =
//       service->DependsMany(view, index, queries).value();
//
// Ownership: the service owns its Specification, ProductionGraph and every
// compiled/labeled view artifact; sessions share ownership of the service,
// so no raw-pointer lifetime contracts leak into user code.
//
// Thread safety: the view registry is internally synchronized — view
// registration, the lazy per-mode label/decoder caches, and queries may be
// called concurrently from any number of threads without external locking
// (bench_service_throughput measures the lock's overhead on the
// one-at-a-time path). Individual *sessions* are still single-writer:
// concurrent Apply calls on one session require external synchronization,
// but distinct sessions are independent. Batch queries can additionally
// shard their decode loops across fork-join workers — spawned per call,
// amortized by a ~1k-item grain (util/thread_pool.h) — via
// set_query_threads; answers are identical at any thread count.

#ifndef FVL_SERVICE_PROVENANCE_SERVICE_H_
#define FVL_SERVICE_PROVENANCE_SERVICE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "fvl/core/decoder.h"
#include "fvl/core/index.h"
#include "fvl/core/run_labeler.h"
#include "fvl/core/view_label.h"
#include "fvl/run/run_generator.h"
#include "fvl/util/single_writer.h"
#include "fvl/util/status.h"
#include "fvl/util/thread_annotations.h"

namespace fvl {

class ProvenanceService;
class ProvenanceSession;

// Cheap copyable handle to a view registered with a ProvenanceService.
// Handles carry the issuing service's tag, so using one on a different
// service is kNotFound rather than a silent lookup of an unrelated view.
class ViewHandle {
 public:
  ViewHandle() = default;

  bool valid() const { return id_ >= 0; }
  int id() const { return id_; }

  friend bool operator==(ViewHandle, ViewHandle) = default;

 private:
  friend class ProvenanceService;
  ViewHandle(int id, uint64_t service_tag)
      : id_(id), service_tag_(service_tag) {}

  int id_ = -1;
  uint64_t service_tag_ = 0;
};

// (run, local_item) address into a MergedProvenanceIndex — the item-id
// scheme of multi-run artifacts (ProvenanceService::QueryAcrossRuns).
struct RunItem {
  int run = -1;
  int item = -1;

  friend bool operator==(RunItem, RunItem) = default;
};

class ProvenanceService
    : public std::enable_shared_from_this<ProvenanceService> {
 public:
  // Checks the Thm.-8 preconditions and takes ownership of the
  // specification. Error codes: kInvalidSpecification, kImproperGrammar,
  // kNotStrictlyLinearRecursive, kUnsafeSpecification,
  // kIncompleteAssignment — one per rejected-specification class.
  [[nodiscard]] static Result<std::shared_ptr<ProvenanceService>> Create(Specification spec);

  // Legacy adapter for callers that keep the specification elsewhere:
  // *spec must outlive the service. Prefer Create.
  [[nodiscard]] static Result<std::shared_ptr<ProvenanceService>> CreateUnowned(
      const Specification* spec);

  ProvenanceService(const ProvenanceService&) = delete;
  ProvenanceService& operator=(const ProvenanceService&) = delete;

  const Specification& spec() const { return *spec_; }
  const Grammar& grammar() const { return spec_->grammar; }
  const ProductionGraph& production_graph() const { return *pg_; }
  // The true full dependency assignment λ* of the specification.
  const DependencyAssignment& true_full() const { return true_full_; }

  // --- View registry ------------------------------------------------------

  // Compiles and registers a view. Registering a structurally equal view
  // again returns the existing handle — compilation, view labeling and
  // decoder construction happen once per registered view (per mode).
  [[nodiscard]] Result<ViewHandle> RegisterView(View view) FVL_EXCLUDES(mu_);

  // §5 user-defined (grouped) views. Not deduplicated.
  [[nodiscard]] Result<ViewHandle> RegisterGroupedView(View base,
                                         std::vector<ModuleGroup> groups)
      FVL_EXCLUDES(mu_);

  // The default view (Δ, λ), registered at construction.
  ViewHandle default_view() const { return default_view_; }
  int num_views() const FVL_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return static_cast<int>(views_.size());
  }

  // The cached φv(U) for a handle; computed on first request per mode. The
  // pointer is stable for the service's lifetime.
  [[nodiscard]] Result<const ViewLabel*> LabelOf(ViewHandle handle, ViewLabelMode mode)
      FVL_EXCLUDES(mu_);
  // The cached decoding predicate π for a handle.
  [[nodiscard]] Result<const Decoder*> DecoderOf(ViewHandle handle, ViewLabelMode mode)
      FVL_EXCLUDES(mu_);
  // The compiled form of a registered regular view (kInvalidArgument for
  // grouped handles); used by oracles and projections.
  [[nodiscard]] Result<const CompiledView*> CompiledRegularView(ViewHandle handle) const
      FVL_EXCLUDES(mu_);

  // Number of ViewLabeler::Label executions performed so far — observable
  // cache-effectiveness metric (asserted by tests/service_test.cc).
  int64_t view_labelings_performed() const FVL_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return view_labelings_performed_;
  }

  // Number of worker threads batch queries (DependsMany, VisibilitySweep,
  // QueryAcrossRuns) may shard their decode loops across. 1 (the default)
  // keeps batches on the calling thread; higher values parallelize only
  // batches large enough to amortize the fork-join (decode tables are
  // per-call and read-only, so answers are identical at any setting).
  //
  // Contract: non-positive values are clamped to 1 — a batch always runs
  // on at least the calling thread, so `set_query_threads(0)` (e.g. a
  // miscomputed hardware_concurrency() derivation) can never wedge or
  // reject queries, and query_threads() is always >= 1. Values above the
  // machine's core count are accepted and merely oversubscribe; the
  // per-shard grain (util/thread_pool.h) bounds the workers actually
  // spawned.
  void set_query_threads(int threads) {
    query_threads_.store(threads < 1 ? 1 : threads,
                         std::memory_order_relaxed);
  }
  int query_threads() const {
    return query_threads_.load(std::memory_order_relaxed);
  }

  // Whether batch queries consult the snapshot-lifetime serving caches
  // (core/serving_cache.h) the indexes carry: the decoded-label cache and
  // the reachability memo. On (the default), hot items decode once per
  // snapshot and hot (view, src, dst) pairs skip the predicate entirely.
  // Answers and error behavior are bit-identical either way — the toggle
  // exists so the differential tests and benches can compare the two paths
  // on the same index (tests/cache_test.cc).
  void set_serving_cache_enabled(bool enabled) {
    serving_cache_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool serving_cache_enabled() const {
    return serving_cache_enabled_.load(std::memory_order_relaxed);
  }

  // --- Sessions -----------------------------------------------------------

  // Starts labeling a new run online (Def. 10). Sessions are independent:
  // any number of concurrent runs may be labeled against one service.
  std::shared_ptr<ProvenanceSession> BeginRun();

  // Derives a random run to completion while labeling it online.
  std::shared_ptr<ProvenanceSession> GenerateLabeledRun(
      const RunGeneratorOptions& options);

  // The run/labeler pair behind GenerateLabeledRun, without the session
  // (the legacy facade hands the pair straight to callers).
  struct LabeledRun {
    Run run;
    RunLabeler labeler;
  };
  LabeledRun DeriveLabeledRun(const RunGeneratorOptions& options) const;

  // A fresh labeler bound to this service's grammar (building block for the
  // legacy facade; sessions are the primary interface).
  RunLabeler MakeRunLabeler() const {
    return RunLabeler(&spec_->grammar, pg_.get());
  }

  // --- Queries ------------------------------------------------------------

  // π(φr(d1), φr(d2), φv(U)) through the cached decoder.
  [[nodiscard]] Result<bool> Depends(ViewHandle handle, const DataLabel& d1,
                       const DataLabel& d2,
                       ViewLabelMode mode = ViewLabelMode::kQueryEfficient);

  // Batch entry point: answers queries[i] = {d1, d2} (item ids into
  // `index`) against one view. Each distinct item is decoded once per call,
  // amortizing decode cost across the batch (see
  // bench/bench_service_throughput.cc). Fails with kInvalidArgument if any
  // item id is out of range or the index was built for a different
  // specification (its codec disagrees with this service's grammar).
  [[nodiscard]] Result<std::vector<bool>> DependsMany(
      ViewHandle handle, const ProvenanceIndex& index,
      std::span<const std::pair<int, int>> queries,
      ViewLabelMode mode = ViewLabelMode::kQueryEfficient);

  // Visibility sweep (§5): per item of `index`, whether it is visible in
  // the view's projection of the run.
  [[nodiscard]] Result<std::vector<bool>> VisibilitySweep(
      ViewHandle handle, const ProvenanceIndex& index,
      ViewLabelMode mode = ViewLabelMode::kQueryEfficient);

  // --- Multi-run queries ----------------------------------------------------
  //
  // One merged artifact (ProvenanceIndex::Merge) covers many runs of this
  // service's specification; these entry points answer against all of them
  // in one call, decoding each distinct item once per call just like the
  // single-run batch paths (see bench/bench_merge_query.cc).

  // Cross-run batch queries: queries[i] = {a, b} with each side addressed
  // as a (run, local_item) pair. Pairs within one run are answered by the
  // decoding predicate; pairs spanning two runs are false by definition —
  // separate executions share no data flow (and the predicate is only
  // defined over labels of one parse tree). kInvalidArgument if any address
  // is out of range or the merged index was built for a different
  // specification; an empty query span (or an empty merged index with no
  // queries) returns an empty vector rather than erroring.
  [[nodiscard]] Result<std::vector<bool>> QueryAcrossRuns(
      ViewHandle handle, const MergedProvenanceIndex& index,
      std::span<const std::pair<RunItem, RunItem>> queries,
      ViewLabelMode mode = ViewLabelMode::kQueryEfficient);

  // Merged-index overload of DependsMany: query sides are flat item ids
  // (MergedProvenanceIndex::GlobalId) into the merged arena; pairs whose
  // ids fall in different runs answer false, as in QueryAcrossRuns.
  [[nodiscard]] Result<std::vector<bool>> DependsMany(
      ViewHandle handle, const MergedProvenanceIndex& index,
      std::span<const std::pair<int, int>> queries,
      ViewLabelMode mode = ViewLabelMode::kQueryEfficient);

  // Merged-index overload of VisibilitySweep: one entry per item across all
  // merged runs, in flat-id order.
  [[nodiscard]] Result<std::vector<bool>> VisibilitySweep(
      ViewHandle handle, const MergedProvenanceIndex& index,
      ViewLabelMode mode = ViewLabelMode::kQueryEfficient);

  // Memory-bounded merge of serialized run snapshots (FVLIDX2 blobs, in
  // run order): each blob is deserialized and appended one at a time via
  // MergeStream (core/index.h), so peak memory is O(largest run + output)
  // instead of O(sum of runs) — the way to combine many long-execution
  // checkpoint files without materializing them all. The result is
  // bit-identical to deserializing everything and calling
  // ProvenanceIndex::Merge, and is verified against this service's
  // specification so it is immediately queryable. Error taxonomy: a blob
  // that does not parse or decode is kMalformedBlob; runs of mismatched
  // specifications (between blobs, or against this service) are
  // kInvalidArgument; an empty span yields an empty merged index. Never
  // aborts on untrusted input.
  [[nodiscard]] Result<MergedProvenanceIndex> MergeRunsStreamed(
      std::span<const std::string_view> blobs);

  // --- On-disk tier ---------------------------------------------------------
  //
  // Archive files are served without heap copies: Map() keeps the file's
  // pages as the long-label arena (core/index.h), and these wrappers add
  // the same codec-compatibility gate every other untrusted artifact passes
  // through, so a mapped archive is immediately queryable against this
  // service's views. Error taxonomy extends the blob one: kIo (open/stat
  // failed), kMapFailed (mmap failed), kMalformedBlob (file parsed but is
  // not a valid index), kInvalidArgument (valid index of a foreign
  // specification). Never aborts on an untrusted path or file.

  // Maps a serialized single-run index (FVLIDX3/FVLIDX2 file) read-only.
  [[nodiscard]] Result<ProvenanceIndex> OpenIndexFile(
      const std::string& path) const;

  // Maps a serialized merged index (FVLMRG2/FVLMRG1 file) read-only.
  [[nodiscard]] Result<MergedProvenanceIndex> OpenMergedIndexFile(
      const std::string& path) const;

  // LSM-style re-merge of on-disk artifacts: maps each input (single-run
  // or already-merged, any mix), folds them through CompactStream
  // (core/index.h) so peak heap is O(largest input tail + output) — input
  // arenas are read straight from their mappings, never materialized — and
  // writes the compacted FVLMRG2 archive to `output_path`. Returns the
  // compacted index heap-backed and ready to serve (callers wanting the
  // file-served form re-open via OpenMergedIndexFile). Inputs are
  // annotated "input N: " in errors; write failures are kIo and may leave
  // a partial output file behind (compaction reruns are idempotent).
  [[nodiscard]] Result<MergedProvenanceIndex> CompactFiles(
      std::span<const std::string> input_paths,
      const std::string& output_path) const;

 private:
  struct ViewEntry {
    // Exactly one of regular/grouped is set; the registry dedups regular
    // views against CompiledView::view().
    std::optional<CompiledView> regular;
    std::optional<GroupedView> grouped;
    // Lazily built, one slot per ViewLabelMode; unique_ptr for address
    // stability (decoders point at their label).
    std::array<std::unique_ptr<ViewLabel>, 3> labels;
    std::array<std::unique_ptr<Decoder>, 3> decoders;
  };

  ProvenanceService();

  // Shared Thm.-8 validation + default-view registration.
  [[nodiscard]] static Result<std::shared_ptr<ProvenanceService>> Finish(
      std::shared_ptr<const Specification> spec);

  // Registry lookups; `mu_` must be held (every public entry point takes
  // it once, so internal code never locks twice) — machine-checked via
  // FVL_REQUIRES in the thread-safety CI lane.
  [[nodiscard]] Result<const ViewEntry*> EntryOf(ViewHandle handle) const
      FVL_REQUIRES(mu_);
  [[nodiscard]] Result<ViewEntry*> EntryOf(ViewHandle handle) FVL_REQUIRES(mu_);
  // Linear dedup scan of the registered regular views (RegisterView runs
  // it before and after compiling, so a racing equal registration loses
  // cleanly); -1 when absent.
  int FindRegularViewLocked(const View& wanted) const FVL_REQUIRES(mu_);
  // The one compatibility criterion between this service and any labeled
  // artifact (indexes, merged indexes, streamed-merge inputs): the
  // artifact's codec must equal the grammar's. Every entry point that
  // accepts untrusted artifacts funnels through it, so tightening the
  // criterion cannot miss a path.
  [[nodiscard]] Status CheckCodecCompatible(const LabelCodec& codec,
                              const char* artifact) const;
  [[nodiscard]] Status CheckIndexCompatible(const ProvenanceIndex& index) const;
  [[nodiscard]] Status CheckIndexCompatible(const MergedProvenanceIndex& index) const;
  // Shared decode-once batch cores behind DependsMany / QueryAcrossRuns and
  // the visibility sweeps, walking the frozen store's span streams directly
  // (both the single-run and merged item spaces are the store's flat-id
  // space; ids are pre-validated against store.total_items()). Each decode
  // shard keeps its own LabelStore::SpanCursor, so sequential walks pay
  // amortized O(1) per item against the compact v2 layout. `cache` is the
  // owning index's serving cache, or nullptr to run uncached (empty index,
  // or set_serving_cache_enabled(false)); answers are identical either
  // way. Both cores shard across query_threads(): BatchDepends
  // parallelizes the decode *and* the predicate/answer loop, so hot-in-
  // cache batches (no decode work left) still scale.
  [[nodiscard]] Result<std::vector<bool>> BatchDepends(
      ViewHandle handle, const LabelStore& store,
      std::span<const std::pair<int, int>> queries, ViewLabelMode mode,
      ServingCache* cache);
  // Merged-index batch core over pre-validated flat id pairs: answers
  // same-run pairs through BatchDepends and cross-run pairs as false.
  [[nodiscard]] Result<std::vector<bool>> MergedBatch(
      ViewHandle handle, const MergedProvenanceIndex& index,
      std::span<const std::pair<int, int>> flat, ViewLabelMode mode);
  [[nodiscard]] Result<std::vector<bool>> SweepVisibility(
      ViewHandle handle, const LabelStore& store, ViewLabelMode mode,
      ServingCache* cache);
  // The serving cache batch queries against `index` should consult:
  // the index's own, or nullptr when caching is disabled.
  ServingCache* CacheFor(const ProvenanceIndex& index) const {
    return serving_cache_enabled() ? index.serving_cache() : nullptr;
  }
  ServingCache* CacheFor(const MergedProvenanceIndex& index) const {
    return serving_cache_enabled() ? index.serving_cache() : nullptr;
  }
  // Whether every decoded field indexes inside this grammar's tables; the
  // decoder reads matrices unchecked in release builds, so untrusted labels
  // are vetted here. The check walks each side's path through the grammar
  // (edge by edge, tracking the current module), so production/position/
  // cycle/start fields are validated against the *module they apply to* and
  // the port against that module's own arity — not just the global maxima.
  bool LabelInBounds(const DataLabel& label) const;
  const ViewLabel& BuildLabel(ViewEntry& entry, ViewLabelMode mode)
      FVL_REQUIRES(mu_);

  std::shared_ptr<const Specification> spec_;
  std::unique_ptr<ProductionGraph> pg_;  // refers into *spec_
  DependencyAssignment true_full_;

  // Guards the view registry: `views_` growth, the lazy label/decoder
  // slots, and the labeling counter. Immutable state (spec_, pg_,
  // true_full_, tag_, default_view_ — all written before the service is
  // published) is lock-free; entry pointers are stable once published, so
  // queries only hold the lock for registry lookups. The lazy slots inside
  // a ViewEntry are mutated under mu_ too, but live one indirection away
  // from this class, so the guard there is convention plus TSan rather
  // than an annotation.
  mutable Mutex mu_;
  std::vector<std::unique_ptr<ViewEntry>> views_ FVL_GUARDED_BY(mu_);
  ViewHandle default_view_;
  int64_t view_labelings_performed_ FVL_GUARDED_BY(mu_) = 0;
  uint64_t tag_;  // process-unique issuer tag stamped into handles
  std::atomic<int> query_threads_{1};
  std::atomic<bool> serving_cache_enabled_{true};
};

// One run labeled online (Def. 10). Obtained from
// ProvenanceService::BeginRun; keeps its service alive.
//
// Sessions are single-writer: concurrent mutating calls (Apply,
// SnapshotDelta) on one session require external synchronization — the
// server's per-session mutex (net/server.cc SessionEntry) is the canonical
// shape. The contract is *enforced*, not just documented: overlapping
// writers hit a SingleWriterGuard FVL_CHECK, so the misuse aborts
// deterministically instead of corrupting the run
// (tests/concurrency_stress_test.cc).
class ProvenanceSession {
 public:
  const Run& run() const { return run_; }
  const RunLabeler& labeler() const { return labeler_; }
  const std::shared_ptr<ProvenanceService>& service() const {
    return service_;
  }

  int num_items() const { return run_.num_items(); }
  bool complete() const { return run_.IsComplete(); }

  // φr(d) — assigned (and encoded into the session's live LabelStore) the
  // moment the item appeared; immutable afterwards, decoded on demand.
  DataLabel Label(int item) const { return labeler_.Label(item); }
  int64_t LabelBits(int item) const { return labeler_.LabelBits(item); }

  // Applies one derivation step and labels the items it creates. Fails with
  // kInvalidArgument (instead of aborting like Run::Apply) when the
  // instance/production pair is not applicable. Returns the recorded step
  // by value — references into the growing run do not survive later steps.
  [[nodiscard]] Result<DerivationStep> Apply(int instance, ProductionId production);

  // Constant-time query from labels alone, against a registered view.
  [[nodiscard]] Result<bool> Depends(ViewHandle view, int item1, int item2,
                       ViewLabelMode mode = ViewLabelMode::kQueryEfficient);

  // Freezes the labels assigned so far into a position-independent,
  // serializable snapshot: the session's live LabelStore is copied (one
  // arena memcpy — no label is re-encoded). The session may keep deriving
  // afterwards. Cost is O(run); Snapshot() does not move the incremental
  // freeze watermark.
  ProvenanceIndex Snapshot() const;

  // Incremental counterpart of Snapshot() for mid-run checkpointing of
  // long executions (§2.3): freezes only the labels appended since the
  // previous SnapshotDelta into a partial index and advances the freeze
  // watermark — O(delta) work and space where Snapshot() is O(run). Item i
  // of the returned delta is run item `w + i`, where w was frozen_items()
  // before the call; ProvenanceIndex::FromDeltas reassembles consecutive
  // deltas into an index bit-identical to a full Snapshot() taken at the
  // same point. A call with no new labels yields an empty (zero-item)
  // delta.
  ProvenanceIndex SnapshotDelta();

  // The freeze watermark: run items [0, frozen_items()) have already been
  // returned by previous SnapshotDelta calls.
  int frozen_items() const { return labeler_.frozen_items(); }

 private:
  friend class ProvenanceService;

  // Fresh run.
  explicit ProvenanceSession(std::shared_ptr<ProvenanceService> service);
  // Adopts an already-derived, already-labeled run.
  ProvenanceSession(std::shared_ptr<ProvenanceService> service, Run run,
                    RunLabeler labeler);

  std::shared_ptr<ProvenanceService> service_;
  Run run_;
  RunLabeler labeler_;
  // Aborts when two unsynchronized writers overlap (see class comment).
  internal::SingleWriterGuard write_guard_;
};

}  // namespace fvl

#endif  // FVL_SERVICE_PROVENANCE_SERVICE_H_
