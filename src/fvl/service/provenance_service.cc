#include "fvl/service/provenance_service.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <unordered_map>
#include <utility>

#include "fvl/core/index.h"
#include "fvl/core/visibility.h"
#include "fvl/util/blob_source.h"
#include "fvl/util/check.h"
#include "fvl/util/file.h"
#include "fvl/util/thread_pool.h"
#include "fvl/workflow/properness.h"

namespace fvl {

namespace {
std::atomic<uint64_t> next_service_tag{1};
}  // namespace

ProvenanceService::ProvenanceService()
    : tag_(next_service_tag.fetch_add(1, std::memory_order_relaxed)) {}

Result<std::shared_ptr<ProvenanceService>> ProvenanceService::Create(
    Specification spec) {
  return Finish(std::make_shared<const Specification>(std::move(spec)));
}

Result<std::shared_ptr<ProvenanceService>> ProvenanceService::CreateUnowned(
    const Specification* spec) {
  // Aliasing shared_ptr with no control block: the caller owns *spec.
  return Finish(std::shared_ptr<const Specification>(
      std::shared_ptr<const Specification>(), spec));
}

Result<std::shared_ptr<ProvenanceService>> ProvenanceService::Finish(
    std::shared_ptr<const Specification> spec) {
  // Thm.-8 preconditions, each with its own error code.
  if (auto validation = spec->Validate()) {
    return Status::Error(ErrorCode::kInvalidSpecification, *validation);
  }
  PropernessReport properness = AnalyzeProperness(spec->grammar);
  if (!properness.IsProper(spec->grammar)) {
    return Status::Error(
        ErrorCode::kImproperGrammar,
        "grammar is not proper:\n" + properness.Describe(spec->grammar));
  }
  auto pg = std::make_unique<ProductionGraph>(&spec->grammar);
  if (!pg->strictly_linear()) {
    return Status::Error(
        ErrorCode::kNotStrictlyLinearRecursive,
        "grammar is not strictly linear-recursive (Thm. 8 precondition)");
  }
  Result<DependencyAssignment> safety =
      CheckSafety(spec->grammar, spec->deps);
  if (!safety.ok()) return safety.status();

  std::shared_ptr<ProvenanceService> service(new ProvenanceService());
  service->spec_ = std::move(spec);
  service->pg_ = std::move(pg);
  service->true_full_ = std::move(safety).value();

  Result<ViewHandle> default_view =
      service->RegisterView(MakeDefaultView(service->spec()));
  if (!default_view.ok()) return default_view.status();
  service->default_view_ = default_view.value();
  return service;
}

int ProvenanceService::FindRegularViewLocked(const View& wanted) const {
  for (int id = 0; id < static_cast<int>(views_.size()); ++id) {
    if (views_[id]->regular.has_value() &&
        views_[id]->regular->view() == wanted) {
      return id;
    }
  }
  return -1;
}

Result<ViewHandle> ProvenanceService::RegisterView(View view) {
  // Registry hit: structurally equal views share one entry, so compilation
  // and labeling happen once.
  {
    MutexLock lock(&mu_);
    if (int id = FindRegularViewLocked(view); id >= 0) {
      return ViewHandle(id, tag_);
    }
  }

  // Compile outside the lock — an arbitrary view compilation must not
  // stall concurrent queries on the registry mutex.
  Result<CompiledView> compiled =
      CompiledView::Compile(spec_->grammar, std::move(view));
  if (!compiled.ok()) return compiled.status();

  MutexLock lock(&mu_);
  // Re-scan: another thread may have registered the same view meanwhile
  // (the loser's compilation is discarded, keeping handles deduplicated).
  if (int id = FindRegularViewLocked(compiled->view()); id >= 0) {
    return ViewHandle(id, tag_);
  }
  auto entry = std::make_unique<ViewEntry>();
  entry->regular = std::move(compiled).value();
  views_.push_back(std::move(entry));
  return ViewHandle(static_cast<int>(views_.size()) - 1, tag_);
}

Result<ViewHandle> ProvenanceService::RegisterGroupedView(
    View base, std::vector<ModuleGroup> groups) {
  Result<GroupedView> compiled =
      GroupedView::Compile(spec_->grammar, std::move(base), std::move(groups));
  if (!compiled.ok()) return compiled.status();

  MutexLock lock(&mu_);
  auto entry = std::make_unique<ViewEntry>();
  entry->grouped = std::move(compiled).value();
  views_.push_back(std::move(entry));
  return ViewHandle(static_cast<int>(views_.size()) - 1, tag_);
}

Result<const ProvenanceService::ViewEntry*> ProvenanceService::EntryOf(
    ViewHandle handle) const {
  if (!handle.valid() || handle.service_tag_ != tag_ ||
      handle.id() >= static_cast<int>(views_.size())) {
    return Status::Error(ErrorCode::kNotFound,
                         "view handle " + std::to_string(handle.id()) +
                             " was not issued by this service");
  }
  return views_[handle.id()].get();
}

Result<ProvenanceService::ViewEntry*> ProvenanceService::EntryOf(
    ViewHandle handle) {
  Result<const ViewEntry*> entry = std::as_const(*this).EntryOf(handle);
  if (!entry.ok()) return entry.status();
  return const_cast<ViewEntry*>(*entry);
}

const ViewLabel& ProvenanceService::BuildLabel(ViewEntry& entry,
                                               ViewLabelMode mode) {
  auto& slot = entry.labels[static_cast<int>(mode)];
  if (slot == nullptr) {
    ViewLabeler labeler(&spec_->grammar, pg_.get());
    slot = std::make_unique<ViewLabel>(
        entry.regular.has_value() ? labeler.Label(*entry.regular, mode)
                                  : labeler.Label(*entry.grouped, mode));
    ++view_labelings_performed_;
  }
  return *slot;
}

Result<const ViewLabel*> ProvenanceService::LabelOf(ViewHandle handle,
                                                    ViewLabelMode mode) {
  MutexLock lock(&mu_);
  Result<ViewEntry*> entry = EntryOf(handle);
  if (!entry.ok()) return entry.status();
  return &BuildLabel(**entry, mode);
}

Result<const Decoder*> ProvenanceService::DecoderOf(ViewHandle handle,
                                                    ViewLabelMode mode) {
  MutexLock lock(&mu_);
  Result<ViewEntry*> entry = EntryOf(handle);
  if (!entry.ok()) return entry.status();
  auto& slot = (*entry)->decoders[static_cast<int>(mode)];
  if (slot == nullptr) {
    slot = std::make_unique<Decoder>(&BuildLabel(**entry, mode));
  }
  return slot.get();
}

Result<const CompiledView*> ProvenanceService::CompiledRegularView(
    ViewHandle handle) const {
  MutexLock lock(&mu_);
  Result<const ViewEntry*> entry = EntryOf(handle);
  if (!entry.ok()) return entry.status();
  if (!(*entry)->regular.has_value()) {
    return Status::Error(ErrorCode::kInvalidArgument,
                         "handle refers to a §5 grouped view");
  }
  return &*(*entry)->regular;
}

std::shared_ptr<ProvenanceSession> ProvenanceService::BeginRun() {
  return std::shared_ptr<ProvenanceSession>(
      new ProvenanceSession(shared_from_this()));
}

std::shared_ptr<ProvenanceSession> ProvenanceService::GenerateLabeledRun(
    const RunGeneratorOptions& options) {
  LabeledRun labeled = DeriveLabeledRun(options);
  return std::shared_ptr<ProvenanceSession>(
      new ProvenanceSession(shared_from_this(), std::move(labeled.run),
                            std::move(labeled.labeler)));
}

ProvenanceService::LabeledRun ProvenanceService::DeriveLabeledRun(
    const RunGeneratorOptions& options) const {
  RunLabeler labeler = MakeRunLabeler();
  Run run = GenerateRandomRun(
      spec_->grammar, options,
      [&labeler](const Run& current, const DerivationStep* step) {
        if (step == nullptr) {
          labeler.OnStart(current);
        } else {
          labeler.OnApply(current, *step);
        }
      });
  return {std::move(run), std::move(labeler)};
}

Result<bool> ProvenanceService::Depends(ViewHandle handle, const DataLabel& d1,
                                        const DataLabel& d2,
                                        ViewLabelMode mode) {
  Result<const Decoder*> decoder = DecoderOf(handle, mode);
  if (!decoder.ok()) return decoder.status();
  return (*decoder)->Depends(d1, d2);
}

Result<std::vector<bool>> ProvenanceService::BatchDepends(
    ViewHandle handle, const LabelStore& store,
    std::span<const std::pair<int, int>> queries, ViewLabelMode mode,
    ServingCache* cache) {
  Result<const Decoder*> decoder = DecoderOf(handle, mode);
  if (!decoder.ok()) return decoder.status();
  const int num_items = store.total_items();

  for (const auto& [d1, d2] : queries) {
    if (d1 < 0 || d1 >= num_items || d2 < 0 || d2 >= num_items) {
      return Status::Error(ErrorCode::kInvalidArgument,
                           "query item (" + std::to_string(d1) + ", " +
                               std::to_string(d2) + ") out of range [0, " +
                               std::to_string(num_items) + ")");
    }
  }

  const int threads = query_threads();
  const int view_id = handle.id();
  std::vector<char> answers(queries.size(), 0);

  // Memo pass: a hot (view, src, dst) pair replays its answer without
  // touching labels or the decoder. Safe to satisfy queries from — a memo
  // entry exists only for pairs this snapshot already answered, over labels
  // that already passed vetting, so the uncached path would recompute the
  // identical bit (and could not have errored on those items either).
  std::vector<size_t> pending;
  pending.reserve(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    bool memoized = false;
    if (cache != nullptr &&
        cache->LookupReach(
            ReachMemoKey{tag_, view_id, static_cast<int32_t>(mode),
                         queries[q].first, queries[q].second},
            &memoized)) {
      answers[q] = memoized ? 1 : 0;
    } else {
      pending.push_back(q);
    }
  }

  // Decode each item distinct among the pending queries once for the whole
  // batch — through the snapshot's label cache when present, so a hot item
  // is decoded once per *snapshot*, not once per batch. Scratch is sized by
  // the batch (hash map, node-stable references) unless the batch covers a
  // good fraction of the snapshot, where the flat table's O(1) lookups win
  // — and where the decode loop can shard across fork-join workers
  // (util/thread_pool.h; the table is per-call and read-only once filled).
  const bool dense = pending.size() * 4 >= static_cast<size_t>(num_items);
  std::vector<DataLabel> decoded(dense ? num_items : 0);
  std::vector<char> needed(dense ? num_items : 0, 0);
  std::unordered_map<int, DataLabel> sparse;
  std::atomic<bool> in_bounds{true};
  // Cache-aware decode of one item, walking the store's span streams
  // through the caller's cursor (per shard, so sequential ids amortize the
  // span scan to O(1)). Labels enter the cache only after LabelInBounds,
  // keyed by this service's tag (vetting is grammar-specific, so another
  // service's entries are misses here) — a hit is exactly a label this
  // service's uncached path would have decoded and accepted, and hits skip
  // re-vetting.
  auto fetch = [&](LabelStore::SpanCursor* cursor, int item, DataLabel* out) {
    if (cache != nullptr && cache->LookupLabel(tag_, item, out)) return;
    *out = cursor->DecodeAt(item);
    if (!LabelInBounds(*out)) {
      in_bounds.store(false, std::memory_order_relaxed);
      return;
    }
    if (cache != nullptr) cache->InsertLabel(tag_, item, *out);
  };
  if (dense) {
    for (size_t q : pending) {
      needed[queries[q].first] = needed[queries[q].second] = 1;
    }
    ParallelFor(num_items, threads, [&](int64_t begin, int64_t end) {
      LabelStore::SpanCursor cursor(store);
      for (int64_t item = begin; item < end; ++item) {
        if (!needed[item]) continue;
        fetch(&cursor, static_cast<int>(item), &decoded[item]);
      }
    });
  } else {
    LabelStore::SpanCursor cursor(store);
    for (size_t q : pending) {
      for (int item : {queries[q].first, queries[q].second}) {
        auto [it, inserted] = sparse.try_emplace(item);
        if (inserted) fetch(&cursor, item, &it->second);
      }
    }
  }
  if (!in_bounds.load(std::memory_order_relaxed)) {
    return Status::Error(ErrorCode::kInvalidArgument,
                         "index label fields are out of range for this "
                         "service's grammar");
  }

  // Predicate/answer loop, sharded like the decode loop (shards write
  // disjoint answer bytes; the decoder and decode tables are read-only
  // here) — a fully label-cached batch still scales with query_threads()
  // even though no decode work is left.
  auto label_at = [&](int item) -> const DataLabel& {
    return dense ? decoded[item] : sparse.find(item)->second;
  };
  ParallelFor(static_cast<int64_t>(pending.size()), threads,
              [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) {
                  const size_t q = pending[i];
                  const auto [d1, d2] = queries[q];
                  const bool answer =
                      (*decoder)->Depends(label_at(d1), label_at(d2));
                  answers[q] = answer ? 1 : 0;
                  if (cache != nullptr) {
                    cache->InsertReach(
                        ReachMemoKey{tag_, view_id,
                                     static_cast<int32_t>(mode), d1, d2},
                        answer);
                  }
                }
              });
  return std::vector<bool>(answers.begin(), answers.end());
}

Result<std::vector<bool>> ProvenanceService::DependsMany(
    ViewHandle handle, const ProvenanceIndex& index,
    std::span<const std::pair<int, int>> queries, ViewLabelMode mode) {
  if (Status status = CheckIndexCompatible(index); !status.ok()) {
    return status;
  }
  return BatchDepends(handle, index.store(), queries, mode, CacheFor(index));
}

Result<std::vector<bool>> ProvenanceService::MergedBatch(
    ViewHandle handle, const MergedProvenanceIndex& index,
    std::span<const std::pair<int, int>> flat, ViewLabelMode mode) {
  // Validate the handle up front: it must be reported (kNotFound) even when
  // every pair crosses runs and the decoder is never consulted.
  {
    MutexLock lock(&mu_);
    if (Result<const ViewEntry*> entry = std::as_const(*this).EntryOf(handle);
        !entry.ok()) {
      return entry.status();
    }
  }
  // Cross-run pairs are false by definition — separate executions share no
  // data flow, and the decoding predicate's path comparisons are only
  // meaningful for labels of one parse tree. Only same-run pairs reach
  // BatchDepends (which still decodes each distinct flat id once).
  std::vector<bool> answers(flat.size(), false);
  std::vector<std::pair<int, int>> same_run;
  std::vector<size_t> positions;
  for (size_t q = 0; q < flat.size(); ++q) {
    if (index.RunOf(flat[q].first) == index.RunOf(flat[q].second)) {
      same_run.push_back(flat[q]);
      positions.push_back(q);
    }
  }
  if (!same_run.empty()) {
    Result<std::vector<bool>> sub =
        BatchDepends(handle, index.store(), same_run, mode, CacheFor(index));
    if (!sub.ok()) return sub.status();
    for (size_t i = 0; i < positions.size(); ++i) {
      answers[positions[i]] = (*sub)[i];
    }
  }
  return answers;
}

Result<std::vector<bool>> ProvenanceService::DependsMany(
    ViewHandle handle, const MergedProvenanceIndex& index,
    std::span<const std::pair<int, int>> queries, ViewLabelMode mode) {
  if (Status status = CheckIndexCompatible(index); !status.ok()) {
    return status;
  }
  for (const auto& [d1, d2] : queries) {
    if (d1 < 0 || d1 >= index.total_items() || d2 < 0 ||
        d2 >= index.total_items()) {
      return Status::Error(ErrorCode::kInvalidArgument,
                           "query item (" + std::to_string(d1) + ", " +
                               std::to_string(d2) + ") out of range [0, " +
                               std::to_string(index.total_items()) + ")");
    }
  }
  return MergedBatch(handle, index, queries, mode);
}

Result<std::vector<bool>> ProvenanceService::QueryAcrossRuns(
    ViewHandle handle, const MergedProvenanceIndex& index,
    std::span<const std::pair<RunItem, RunItem>> queries, ViewLabelMode mode) {
  if (Status status = CheckIndexCompatible(index); !status.ok()) {
    return status;
  }
  // Map (run, item) addresses to flat ids up front; MergedBatch then
  // decodes each distinct flat id once regardless of which runs the batch
  // touches.
  std::vector<std::pair<int, int>> flat;
  flat.reserve(queries.size());
  auto flat_id = [&index](RunItem address, int* out) {
    if (address.run < 0 || address.run >= index.num_runs() ||
        address.item < 0 || address.item >= index.num_items(address.run)) {
      return false;
    }
    *out = index.GlobalId(address.run, address.item);
    return true;
  };
  for (const auto& [a, b] : queries) {
    std::pair<int, int> ids;
    if (!flat_id(a, &ids.first) || !flat_id(b, &ids.second)) {
      return Status::Error(
          ErrorCode::kInvalidArgument,
          "query address (run " + std::to_string(a.run) + " item " +
              std::to_string(a.item) + ", run " + std::to_string(b.run) +
              " item " + std::to_string(b.item) +
              ") out of range for a merged index of " +
              std::to_string(index.num_runs()) + " runs");
    }
    flat.push_back(ids);
  }
  return MergedBatch(handle, index, flat, mode);
}

bool ProvenanceService::LabelInBounds(const DataLabel& label) const {
  const Grammar& grammar = spec_->grammar;
  // Walks one side's path from the root, tracking the module each edge
  // lands on (exactly how CompressedParseTree assigns paths), so every
  // field is validated against the grammar tables the decoder will index
  // with it — and the final port against the arity of the module that
  // created it, not the global maximum.
  auto side_ok = [&](const std::optional<PortLabel>& side,
                     bool producer) -> bool {
    if (!side.has_value()) return true;
    ModuleId module = grammar.start();
    for (const EdgeLabel& e : side->path) {
      if (e.kind == EdgeLabel::Kind::kProduction) {
        if (e.production < 0 || e.production >= grammar.num_productions()) {
          return false;
        }
        const Production& p = grammar.production(e.production);
        // The production must expand the module the path has reached.
        if (p.lhs != module) return false;
        if (e.position < 0 ||
            e.position >= static_cast<int>(p.rhs.members.size())) {
          return false;
        }
        module = p.rhs.members[e.position];
      } else {
        if (e.cycle < 0 || e.cycle >= pg_->num_cycles()) return false;
        const ProductionGraph::Cycle& cycle = pg_->cycle(e.cycle);
        if (e.start < 0 || e.start >= cycle.length() || e.iteration < 1) {
          return false;
        }
        // A recursion node for (cycle, start) only hangs off the module
        // that starts that unfolding; the i-th unfolded member is i-1 cycle
        // steps further along.
        if (pg_->CycleOf(module) != e.cycle ||
            pg_->CycleStartIndex(module) != e.start) {
          return false;
        }
        module = cycle.members[static_cast<size_t>(
            (e.start + e.iteration - 1) % cycle.length())];
      }
    }
    const Module& m = grammar.module(module);
    const int arity = producer ? m.num_outputs : m.num_inputs;
    return side->port >= 0 && side->port < arity;
  };
  return side_ok(label.producer, /*producer=*/true) &&
         side_ok(label.consumer, /*producer=*/false);
}

Status ProvenanceService::CheckCodecCompatible(const LabelCodec& codec,
                                               const char* artifact) const {
  // Labels from an artifact built for another specification would feed
  // out-of-range production/cycle ids into the decoder's matrices. The
  // codec widths are derived from the production graph, so a mismatch
  // catches any artifact whose grammar differs structurally.
  if (!(codec == LabelCodec(*pg_))) {
    return Status::Error(
        ErrorCode::kInvalidArgument,
        std::string(artifact) +
            " was not built for this service's specification");
  }
  return Status::Ok();
}

Status ProvenanceService::CheckIndexCompatible(
    const ProvenanceIndex& index) const {
  return CheckCodecCompatible(index.codec(), "index");
}

Status ProvenanceService::CheckIndexCompatible(
    const MergedProvenanceIndex& index) const {
  // An empty merge (zero runs) carries no labels at all, so it is
  // vacuously compatible; queries against it can only return empty results.
  if (index.num_runs() == 0) return Status::Ok();
  return CheckCodecCompatible(index.codec(), "merged index");
}

Result<std::vector<bool>> ProvenanceService::SweepVisibility(
    ViewHandle handle, const LabelStore& store, ViewLabelMode mode,
    ServingCache* cache) {
  Result<const ViewLabel*> label = LabelOf(handle, mode);
  if (!label.ok()) return label.status();
  const int num_items = store.total_items();
  // Decode + bounds-check + visibility per item, sharded across fork-join
  // workers (the view label is read-only; shards write disjoint bytes) and
  // walking each shard's contiguous item range through its own span cursor.
  // Items resident in the snapshot's label cache skip decode and re-vetting
  // (cached labels passed *this* service's LabelInBounds when they entered —
  // the cache key carries the vetting service's tag).
  std::vector<char> per_item(num_items, 0);
  std::atomic<bool> in_bounds{true};
  ParallelFor(num_items, query_threads(), [&](int64_t begin, int64_t end) {
    bool shard_ok = true;
    LabelStore::SpanCursor cursor(store);
    for (int64_t item = begin; item < end; ++item) {
      DataLabel item_label;
      if (cache == nullptr ||
          !cache->LookupLabel(tag_, static_cast<int>(item), &item_label)) {
        item_label = cursor.DecodeAt(static_cast<int>(item));
        if (!LabelInBounds(item_label)) {
          shard_ok = false;
          break;
        }
        if (cache != nullptr) {
          cache->InsertLabel(tag_, static_cast<int>(item), item_label);
        }
      }
      per_item[item] = IsItemVisible(item_label, **label) ? 1 : 0;
    }
    if (!shard_ok) in_bounds.store(false, std::memory_order_relaxed);
  });
  if (!in_bounds.load(std::memory_order_relaxed)) {
    return Status::Error(ErrorCode::kInvalidArgument,
                         "index label fields are out of range for this "
                         "service's grammar");
  }
  return std::vector<bool>(per_item.begin(), per_item.end());
}

Result<std::vector<bool>> ProvenanceService::VisibilitySweep(
    ViewHandle handle, const ProvenanceIndex& index, ViewLabelMode mode) {
  if (Status status = CheckIndexCompatible(index); !status.ok()) {
    return status;
  }
  return SweepVisibility(handle, index.store(), mode, CacheFor(index));
}

Result<std::vector<bool>> ProvenanceService::VisibilitySweep(
    ViewHandle handle, const MergedProvenanceIndex& index,
    ViewLabelMode mode) {
  if (Status status = CheckIndexCompatible(index); !status.ok()) {
    return status;
  }
  return SweepVisibility(handle, index.store(), mode, CacheFor(index));
}

Result<MergedProvenanceIndex> ProvenanceService::MergeRunsStreamed(
    std::span<const std::string_view> blobs) {
  MergeStream stream;
  for (size_t b = 0; b < blobs.size(); ++b) {
    if (Status status = stream.Append(blobs[b]); !status.ok()) {
      return Status::Error(status.code(), "blob " + std::to_string(b) + ": " +
                                              status.message());
    }
    // Mutually consistent runs of a *foreign* specification still must not
    // feed this service's decoder. The stream pins every later blob to run
    // 0's codec, so checking once after the first append rejects a foreign
    // batch after one blob instead of paying the full merge first.
    if (b == 0) {
      if (Status status = CheckCodecCompatible(stream.codec(), "run 0");
          !status.ok()) {
        return status;
      }
    }
  }
  return std::move(stream).Finish();
}

Result<ProvenanceIndex> ProvenanceService::OpenIndexFile(
    const std::string& path) const {
  Result<ProvenanceIndex> index = ProvenanceIndex::Map(path);
  if (!index.ok()) return index.status();
  if (Status status = CheckIndexCompatible(*index); !status.ok()) {
    return status;
  }
  return index;
}

Result<MergedProvenanceIndex> ProvenanceService::OpenMergedIndexFile(
    const std::string& path) const {
  Result<MergedProvenanceIndex> index = MergedProvenanceIndex::Map(path);
  if (!index.ok()) return index.status();
  if (Status status = CheckIndexCompatible(*index); !status.ok()) {
    return status;
  }
  return index;
}

Result<MergedProvenanceIndex> ProvenanceService::CompactFiles(
    std::span<const std::string> input_paths,
    const std::string& output_path) const {
  CompactStream stream;
  for (size_t i = 0; i < input_paths.size(); ++i) {
    Result<BlobSource> source = BlobSource::MapFile(input_paths[i]);
    if (!source.ok()) {
      return Status::Error(source.status().code(),
                           "input " + std::to_string(i) + ": " +
                               source.status().message());
    }
    BlobReader reader(std::move(source).value());
    if (Status status = stream.Append(&reader); !status.ok()) {
      return Status::Error(status.code(), "input " + std::to_string(i) + ": " +
                                              status.message());
    }
    // Same early foreign-batch rejection as MergeRunsStreamed: the stream
    // pins later inputs to input 0's codec, so one check suffices.
    if (i == 0) {
      if (Status status = CheckCodecCompatible(stream.codec(), "input 0");
          !status.ok()) {
        return status;
      }
    }
  }
  Result<MergedProvenanceIndex> compacted = std::move(stream).Finish();
  if (!compacted.ok()) return compacted.status();
  Result<FileHandle> out = FileHandle::CreateTruncate(output_path);
  if (!out.ok()) return out.status();
  if (Status status = out->WriteAll(compacted->Serialize()); !status.ok()) {
    return status;
  }
  if (Status status = out->Close(); !status.ok()) return status;
  return compacted;
}

// --- ProvenanceSession -----------------------------------------------------

ProvenanceSession::ProvenanceSession(
    std::shared_ptr<ProvenanceService> service)
    : service_(std::move(service)),
      run_(&service_->grammar()),
      labeler_(service_->MakeRunLabeler()) {
  labeler_.OnStart(run_);
}

ProvenanceSession::ProvenanceSession(
    std::shared_ptr<ProvenanceService> service, Run run, RunLabeler labeler)
    : service_(std::move(service)),
      run_(std::move(run)),
      labeler_(std::move(labeler)) {}

Result<DerivationStep> ProvenanceSession::Apply(int instance,
                                                ProductionId production) {
  // Single-writer contract: a concurrent Apply/SnapshotDelta on this
  // session aborts here instead of corrupting the run.
  internal::SingleWriterScope writer(&write_guard_);
  if (instance < 0 || instance >= run_.num_instances()) {
    return Status::Error(
        ErrorCode::kInvalidArgument,
        "instance " + std::to_string(instance) + " out of range");
  }
  if (run_.IsExpanded(instance)) {
    return Status::Error(
        ErrorCode::kInvalidArgument,
        "instance " + std::to_string(instance) + " is already expanded");
  }
  if (production < 0 || production >= service_->grammar().num_productions()) {
    return Status::Error(
        ErrorCode::kInvalidArgument,
        "production " + std::to_string(production) + " out of range");
  }
  ModuleId type = run_.instance(instance).type;
  if (service_->grammar().production(production).lhs != type) {
    return Status::Error(
        ErrorCode::kInvalidArgument,
        "production " + std::to_string(production) +
            " does not expand module '" +
            service_->grammar().module(type).name + "'");
  }
  const DerivationStep& step = run_.Apply(instance, production);
  labeler_.OnApply(run_, step);
  return step;
}

Result<bool> ProvenanceSession::Depends(ViewHandle view, int item1, int item2,
                                        ViewLabelMode mode) {
  if (item1 < 0 || item1 >= num_items() || item2 < 0 ||
      item2 >= num_items()) {
    return Status::Error(ErrorCode::kInvalidArgument,
                         "item (" + std::to_string(item1) + ", " +
                             std::to_string(item2) + ") out of range [0, " +
                             std::to_string(num_items()) + ")");
  }
  return service_->Depends(view, labeler_.Label(item1), labeler_.Label(item2),
                           mode);
}

ProvenanceIndex ProvenanceSession::Snapshot() const {
  // The session's live store already holds every label encoded; freezing is
  // a copy of the arena and offset tables, not a re-encode.
  return ProvenanceIndex(labeler_.store());
}

ProvenanceIndex ProvenanceSession::SnapshotDelta() {
  // Moves the freeze watermark — a write, under the single-writer contract
  // like Apply (net/server.cc holds its per-session mutex around both).
  internal::SingleWriterScope writer(&write_guard_);
  // The live arena is append-only, so the labels since the last freeze are
  // one contiguous bit range at its end: extracting them costs O(delta),
  // which is what makes mid-run checkpointing of long executions viable.
  return ProvenanceIndex(labeler_.FreezeDelta());
}

}  // namespace fvl
