#include "fvl/util/blob_source.h"

#include "fvl/util/file.h"

namespace fvl {

// Exactly one of the members is meaningful; which one is implied by how
// the source was built. Borrowed sources have a null rep_ altogether.
struct BlobSource::Rep {
  std::string owned;
  MmapRegion mapping;
};

BlobSource BlobSource::FromString(std::string blob) {
  auto rep = std::make_shared<Rep>();
  rep->owned = std::move(blob);
  BlobSource source;
  source.view_ = rep->owned;
  source.rep_ = std::move(rep);
  return source;
}

BlobSource BlobSource::Borrowed(std::string_view blob) {
  BlobSource source;
  source.view_ = blob;
  return source;
}

Result<BlobSource> BlobSource::MapFile(const std::string& path) {
  Result<FileHandle> file = FileHandle::OpenRead(path);
  if (!file.ok()) return file.status();
  Result<MmapRegion> region = MmapRegion::Map(*file);
  if (!region.ok()) return region.status();
  auto rep = std::make_shared<Rep>();
  rep->mapping = std::move(region).value();
  BlobSource source;
  source.view_ = rep->mapping.view();
  source.rep_ = std::move(rep);
  return source;
}

std::string_view BlobSource::view() const { return view_; }

bool BlobSource::mapped() const {
  return rep_ != nullptr && rep_->mapping.data() != nullptr;
}

void BlobSource::AdviseSequential() const {
  if (rep_ != nullptr) rep_->mapping.Advise(MmapRegion::Advice::kSequential);
}

void BlobSource::AdviseRandom() const {
  if (rep_ != nullptr) rep_->mapping.Advise(MmapRegion::Advice::kRandom);
}

void BlobSource::AdviseDontNeed() const {
  if (rep_ != nullptr) rep_->mapping.Advise(MmapRegion::Advice::kDontNeed);
}

}  // namespace fvl
