// Log-bucketed latency histogram for the network workload drivers.
//
// Record() is O(1) and allocation-free; buckets grow geometrically (64
// major powers of two, 32 sub-buckets each — ~3% relative resolution), so
// one fixed-size array covers nanoseconds through hours. Percentile()
// returns the representative value of the bucket containing the requested
// rank, which is exact to the bucket resolution — the right trade for
// p50/p95/p99 reporting where a 3% error bar is far below run-to-run
// noise (the HdrHistogram idiom, sized down).
//
// A LatencyHistogram is single-writer; per-thread instances are combined
// with Merge() after the measured phase (bench/ycsb_driver.cc) — that is
// the fast path and should stay the default. When per-thread instances are
// impractical (callers that live longer than any one measurement phase, or
// record from transient threads), SharedLatencyHistogram wraps one
// histogram behind an annotated mutex: Record() costs one uncontended lock,
// and Snapshot() hands back a plain value to read percentiles from without
// holding anything.

#ifndef FVL_UTIL_HISTOGRAM_H_
#define FVL_UTIL_HISTOGRAM_H_

#include <array>
#include <cstdint>

#include "fvl/util/thread_annotations.h"

namespace fvl {

class LatencyHistogram {
 public:
  // Records one sample (any non-negative value; the unit is the caller's —
  // the drivers record microseconds). Negative values clamp to 0.
  void Record(int64_t value);

  // Adds every bucket of `other` into this histogram.
  void Merge(const LatencyHistogram& other);

  int64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }

  // Value at quantile q in [0, 1] (q=0.5 → p50). Exact to the ~3% bucket
  // resolution; 0 for an empty histogram. The true min/max are tracked
  // exactly, so Percentile(0)/Percentile(1) are not quantized.
  int64_t Percentile(double q) const;

 private:
  static constexpr int kSubBits = 5;  // 32 sub-buckets per power of two
  static constexpr int kMajor = 64 - kSubBits;
  static constexpr int kBuckets = (kMajor + 1) << kSubBits;

  static int BucketOf(int64_t value);
  static int64_t BucketValue(int bucket);

  std::array<int64_t, kBuckets> buckets_{};
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

// Thread-safe wrapper: any number of threads may Record/Merge/Snapshot
// concurrently. tests/concurrency_stress_test.cc hammers it from ParallelFor
// shards; tests/util_test.cc pins the no-lost-samples contract.
class SharedLatencyHistogram {
 public:
  void Record(int64_t value) FVL_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    histogram_.Record(value);
  }

  // Adds a (single-writer) histogram in one critical section — the cheap
  // way to fold a finished per-thread histogram into a shared one.
  void Merge(const LatencyHistogram& other) FVL_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    histogram_.Merge(other);
  }

  // Consistent copy to read counts/percentiles from, lock already dropped.
  LatencyHistogram Snapshot() const FVL_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return histogram_;
  }

 private:
  mutable Mutex mu_;
  LatencyHistogram histogram_ FVL_GUARDED_BY(mu_);
};

}  // namespace fvl

#endif  // FVL_UTIL_HISTOGRAM_H_
