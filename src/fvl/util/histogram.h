// Log-bucketed latency histogram for the network workload drivers.
//
// Record() is O(1) and allocation-free; buckets grow geometrically (64
// major powers of two, 32 sub-buckets each — ~3% relative resolution), so
// one fixed-size array covers nanoseconds through hours. Percentile()
// returns the representative value of the bucket containing the requested
// rank, which is exact to the bucket resolution — the right trade for
// p50/p95/p99 reporting where a 3% error bar is far below run-to-run
// noise (the HdrHistogram idiom, sized down).
//
// A histogram is single-writer; per-thread instances are combined with
// Merge() after the measured phase (bench/ycsb_driver.cc).

#ifndef FVL_UTIL_HISTOGRAM_H_
#define FVL_UTIL_HISTOGRAM_H_

#include <array>
#include <cstdint>

namespace fvl {

class LatencyHistogram {
 public:
  // Records one sample (any non-negative value; the unit is the caller's —
  // the drivers record microseconds). Negative values clamp to 0.
  void Record(int64_t value);

  // Adds every bucket of `other` into this histogram.
  void Merge(const LatencyHistogram& other);

  int64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }

  // Value at quantile q in [0, 1] (q=0.5 → p50). Exact to the ~3% bucket
  // resolution; 0 for an empty histogram. The true min/max are tracked
  // exactly, so Percentile(0)/Percentile(1) are not quantized.
  int64_t Percentile(double q) const;

 private:
  static constexpr int kSubBits = 5;  // 32 sub-buckets per power of two
  static constexpr int kMajor = 64 - kSubBits;
  static constexpr int kBuckets = (kMajor + 1) << kSubBits;

  static int BucketOf(int64_t value);
  static int64_t BucketValue(int bucket);

  std::array<int64_t, kBuckets> buckets_{};
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace fvl

#endif  // FVL_UTIL_HISTOGRAM_H_
