// Lightweight assertion macros for programmer errors.
//
// Library code does not use exceptions (see docs/DESIGN.md); recoverable
// validation errors are reported through std::optional<std::string> return
// values, while violated invariants abort with a source location.

#ifndef FVL_UTIL_CHECK_H_
#define FVL_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace fvl::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "FVL_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace fvl::internal

// Always-on invariant check.
#define FVL_CHECK(expr)                                       \
  do {                                                        \
    if (!(expr)) {                                            \
      ::fvl::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                         \
  } while (false)

// Debug-only invariant check (compiled out in NDEBUG builds).
#ifdef NDEBUG
#define FVL_DCHECK(expr) \
  do {                   \
  } while (false)
#else
#define FVL_DCHECK(expr) FVL_CHECK(expr)
#endif

#endif  // FVL_UTIL_CHECK_H_
