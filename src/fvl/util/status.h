// Recoverable-error reporting for all fallible construction and loading.
//
// Library code does not use exceptions (docs/DESIGN.md); invalid *input*
// (specifications, views, serialized blobs, query arguments) is reported
// through Status / Result<T> values with a structured error code, while
// violated internal invariants still abort via FVL_CHECK. Every rejected
// Thm.-8 precondition has its own code, so callers (and tests) can
// distinguish *which* requirement failed without parsing messages:
//
//   Result<CompiledView> view = CompiledView::Compile(grammar, v);
//   if (!view.ok()) {
//     switch (view.code()) { case ErrorCode::kUnsafeView: ... }
//   }
//   Decoder pi(&view.value()); ...
//
// Result<T>::value() on an error aborts (programmer error, like
// std::optional::value without a check); use ok()/status() first on
// untrusted input.

#ifndef FVL_UTIL_STATUS_H_
#define FVL_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "fvl/util/check.h"

namespace fvl {

enum class ErrorCode : unsigned char {
  kOk = 0,
  // Generic bad arguments: out-of-range items, wrong session state, ...
  kInvalidArgument,
  // Unknown handle (view/session was never registered here).
  kNotFound,
  // Structural specification errors (Grammar/Specification::Validate).
  kInvalidSpecification,
  // Thm.-8 precondition 1: the grammar is not proper (Def. 5).
  kImproperGrammar,
  // Thm.-8 precondition 2: cycles of P(G) are not vertex-disjoint (Def. 16).
  kNotStrictlyLinearRecursive,
  // Thm.-8 precondition 3: the specification is unsafe (Def. 13).
  kUnsafeSpecification,
  // A required dependency assignment (λ or λ') is missing or ill-formed.
  kIncompleteAssignment,
  // Structural view errors (flag vector shape, expandable atomic, ...).
  kInvalidView,
  // The restricted grammar G_Δ' is not proper.
  kImproperView,
  // The view's perceived assignment is unsafe (Def. 13 applied to G_U).
  kUnsafeView,
  // Structural §5 grouping errors (bad positions, severed recursion, ...).
  kInvalidGroup,
  // A serialized blob fails to parse.
  kMalformedBlob,
  // A transport endpoint is gone: connection refused/reset, a peer that
  // closed mid-exchange, a server already stopped (src/fvl/net).
  kUnavailable,
  // A file operation failed: open/stat/read/write on an index archive
  // (util/file.h carries the errno text in the message).
  kIo,
  // A file opened fine but could not be memory-mapped for serving.
  kMapFailed,
};

// Short stable identifier, e.g. "unsafe-view".
const char* ToString(ErrorCode code);

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK

  [[nodiscard]] static Status Ok() { return Status(); }
  [[nodiscard]] static Status Error(ErrorCode code, std::string message) {
    FVL_DCHECK(code != ErrorCode::kOk);
    Status status;
    status.code_ = code;
    status.message_ = std::move(message);
    return status;
  }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }
  // "[unsafe-view] view is unsafe: ..." (or "OK").
  std::string ToString() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

// Either a T or an error Status; modeled after absl::StatusOr but
// self-contained. Implicitly constructible from both, so fallible factories
// can `return Status::Error(...)` or `return std::move(object)` directly.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(const T& value) : value_(value) {}
  Result(T&& value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    FVL_CHECK(!status_.ok());  // use the value constructor for success
  }

  bool ok() const { return value_.has_value(); }
  bool has_value() const { return ok(); }

  // OK for successful results.
  const Status& status() const { return status_; }
  ErrorCode code() const { return status_.code(); }

  // Abort on error (the FVL_CHECK carries the status message via logging
  // below); check ok() first when the input is untrusted.
  const T& value() const& {
    EnsureOk();
    return *value_;
  }
  T& value() & {
    EnsureOk();
    return *value_;
  }
  T&& value() && {
    EnsureOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void EnsureOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value on error: %s\n",
                   status_.ToString().c_str());
      FVL_CHECK(false && "Result::value called on an error Result");
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace fvl

#endif  // FVL_UTIL_STATUS_H_
