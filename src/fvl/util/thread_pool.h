// Worker-thread utilities: fork-join sharding for read-only batch loops
// (ParallelFor, the decode stages of DependsMany / VisibilitySweep) and a
// persistent ThreadPool for long-lived submit-style work.
//
// ParallelFor splits [0, n) into contiguous shards and runs them on up to
// `threads` workers, the calling thread included. The body must be safe to
// run concurrently on disjoint ranges; results are joined before return, so
// callers need no synchronization afterwards. threads <= 1, tiny n, or a
// grain larger than n degrade to one serial call on the current thread —
// the overhead-free path batch queries take by default. Workers are spawned
// per call and joined before return: the kParallelForGrain floor keeps the
// spawn cost — tens of microseconds — amortized over at least ~1k decodes
// per extra worker. The body must not throw: the library is exception-free
// (docs/DESIGN.md §4), and an exception escaping a ParallelFor worker would
// std::terminate.
//
// ThreadPool is the persistent counterpart for work that arrives over time
// (background maintenance, the upcoming sharded-cache refill paths): N
// workers drain a mutex-guarded queue until Stop(). Lifecycle contract,
// locked down by tests/util_test.cc:
//   * the thread count is clamped to >= 1 — ThreadPool(0) (e.g. a
//     miscomputed hardware_concurrency() derivation) still makes progress;
//   * Submit after Stop returns false and runs nothing, rather than
//     wedging or aborting — racing producers see a clean refusal;
//   * Stop() drains: every task accepted before the stop runs to
//     completion before Stop returns; idempotent and safe to race;
//   * a task that throws is caught and counted (exceptions_swallowed())
//     instead of taking down the process — tasks are caller code, and one
//     bad task must not std::terminate every worker. Library code itself
//     stays exception-free.

#ifndef FVL_UTIL_THREAD_POOL_H_
#define FVL_UTIL_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "fvl/util/thread_annotations.h"

namespace fvl {

// Minimum items per shard; below it, extra threads cost more than they win.
inline constexpr int64_t kParallelForGrain = 1024;

void ParallelFor(int64_t n, int threads,
                 const std::function<void(int64_t begin, int64_t end)>& body);

class ThreadPool {
 public:
  // Spawns max(threads, 1) workers.
  explicit ThreadPool(int threads);
  ~ThreadPool();  // Stop()

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues one task; returns false (and runs nothing) once Stop has
  // begun. Tasks may Submit further tasks, but only until the stop.
  bool Submit(std::function<void()> task) FVL_EXCLUDES(mu_);

  // Blocks until the queue is empty and no task is mid-run. Tasks
  // submitted while Wait blocks extend the wait.
  void Wait() FVL_EXCLUDES(mu_);

  // Refuses new work, drains everything already accepted, joins the
  // workers. Idempotent; concurrent Stop calls all block until drain and
  // join complete. Must not be called from inside a task (a worker joining
  // itself would deadlock).
  void Stop() FVL_EXCLUDES(mu_, join_mu_);

  int64_t tasks_completed() const FVL_EXCLUDES(mu_);
  // Tasks whose exception was caught at the worker boundary.
  int64_t exceptions_swallowed() const FVL_EXCLUDES(mu_);

 private:
  void WorkerLoop() FVL_EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar work_cv_;                                 // wakes idle workers
  CondVar idle_cv_;                                 // wakes Wait/Stop
  std::deque<std::function<void()>> queue_ FVL_GUARDED_BY(mu_);
  bool stopping_ FVL_GUARDED_BY(mu_) = false;
  int running_ FVL_GUARDED_BY(mu_) = 0;             // tasks mid-execution
  int64_t tasks_completed_ FVL_GUARDED_BY(mu_) = 0;
  int64_t exceptions_swallowed_ FVL_GUARDED_BY(mu_) = 0;
  Mutex join_mu_;  // serializes the joinable()/join() pass across Stops
  // The vector itself is immutable after construction (num_threads reads
  // its size lock-free); the threads inside are joined under join_mu_.
  std::vector<std::thread> workers_;
};

}  // namespace fvl

#endif  // FVL_UTIL_THREAD_POOL_H_
