// Fork-join sharding for read-only batch loops (the decode stages of
// DependsMany / VisibilitySweep).
//
// ParallelFor splits [0, n) into contiguous shards and runs them on up to
// `threads` workers, the calling thread included. The body must be safe to
// run concurrently on disjoint ranges; results are joined before return, so
// callers need no synchronization afterwards. threads <= 1, tiny n, or a
// grain larger than n degrade to one serial call on the current thread —
// the overhead-free path batch queries take by default.
//
// Workers are spawned per call and joined before return (fork-join, not a
// persistent pool): the kParallelForGrain floor keeps the spawn cost — tens
// of microseconds — amortized over at least ~1k decodes per extra worker.
// A lazily-started persistent pool is the upgrade path if per-call spawn
// ever shows up in bench_service_throughput.
//
// The body must not throw. The library is exception-free (docs/DESIGN.md
// §4: recoverable errors travel as Status values, which the batch loops
// collect via per-shard flags; everything else FVL_CHECK-aborts), and an
// exception escaping a worker would std::terminate.

#ifndef FVL_UTIL_THREAD_POOL_H_
#define FVL_UTIL_THREAD_POOL_H_

#include <cstdint>
#include <functional>

namespace fvl {

// Minimum items per shard; below it, extra threads cost more than they win.
inline constexpr int64_t kParallelForGrain = 1024;

void ParallelFor(int64_t n, int threads,
                 const std::function<void(int64_t begin, int64_t end)>& body);

}  // namespace fvl

#endif  // FVL_UTIL_THREAD_POOL_H_
