// Bit-level writer/reader used for the exact label-size accounting of the
// labeling schemes (data labels are measured in bits, as in the paper's
// Figures 17, 21 and 24).
//
// Supported encodings:
//  * fixed-width unsigned fields (for grammar-bounded components such as
//    production ids and member positions), and
//  * Elias-gamma codes (for unbounded components such as recursion iteration
//    indices), which cost 2*floor(log2 v) + 1 bits for v >= 1, and
//  * vbyte groups (7 value bits + 1 continuation bit per group, low groups
//    first), used by the compact label-store tail for per-block base
//    lengths — small values cost one byte, and the encoding is
//    self-delimiting without a scan for a terminating one-bit.

#ifndef FVL_UTIL_BITSTREAM_H_
#define FVL_UTIL_BITSTREAM_H_

#include <cstdint>
#include <vector>

namespace fvl {

class BitWriter {
 public:
  // Appends the low `width` bits of `value` (width in [0, 64]).
  void WriteFixed(uint64_t value, int width);
  // Appends the Elias-gamma code of `value`; requires value >= 1.
  void WriteGamma(uint64_t value);
  // Appends `value` as vbyte groups (7 value bits + continuation bit, low
  // groups first). Any uint64 value; the encoding is canonical (no empty
  // trailing groups), so equal values always produce equal bits.
  void WriteVByte(uint64_t value);

  int64_t size_bits() const { return size_bits_; }
  const std::vector<uint64_t>& words() const { return words_; }
  // Moves the backing words out without a copy (large arenas); the writer
  // is left empty, as after default construction.
  std::vector<uint64_t> TakeWords() {
    size_bits_ = 0;
    return std::move(words_);
  }
  // Reconstitutes a writer over previously taken/parsed words (arena
  // adoption in LabelStore::ParseTail); requires size_bits to fit in the
  // words, and any bits of the last counted word above size_bits to be 0.
  static BitWriter FromWords(std::vector<uint64_t> words, int64_t size_bits);

 private:
  void WriteBit(bool bit);

  std::vector<uint64_t> words_;
  int64_t size_bits_ = 0;
};

class BitReader {
 public:
  explicit BitReader(const BitWriter& writer)
      : words_(&writer.words()), size_bits_(writer.size_bits()) {}
  // Reads the bit range [start_bit, end_bit) of a word arena (used by the
  // provenance index to decode one label out of a packed blob).
  BitReader(const std::vector<uint64_t>* words, int64_t start_bit,
            int64_t end_bit)
      : words_(words), size_bits_(end_bit), position_(start_bit) {}
  // Reads the same range out of an *unaligned* little-endian byte buffer —
  // the borrowed-arena mode of LabelStore, whose payload words sit at a
  // non-word-aligned offset inside an mmap'ed blob. Words are assembled
  // byte-by-byte (one load on little-endian targets, and no
  // reinterpret_cast of misaligned memory anywhere). The buffer must hold
  // ceil(end_bit / 64) full 8-byte words, which serialized arenas do — the
  // tail writes whole u64 words.
  BitReader(const uint8_t* bytes, int64_t start_bit, int64_t end_bit)
      : bytes_(bytes), size_bits_(end_bit), position_(start_bit) {}

  uint64_t ReadFixed(int width);
  uint64_t ReadGamma();
  // Reads a vbyte value. Bounded on untrusted input: at most ten groups are
  // consumed, so a run of corrupted continuation bits sets failed() (in
  // permissive mode) instead of scanning away; reads past the end fail the
  // same way via ReadFixed's permissive tail handling.
  uint64_t ReadVByte();

  int64_t position() const { return position_; }
  bool AtEnd() const { return position_ == size_bits_; }

  // Advances past `bits` bits without decoding them (skipping an inline
  // payload while scanning a span stream). A shortfall sets failed() in
  // permissive mode and aborts otherwise, like CheckRemaining.
  void SkipBits(int64_t bits) {
    if (CheckRemaining(static_cast<uint64_t>(bits))) position_ += bits;
  }

  // Non-aborting mode for untrusted input: reads past the end return
  // one-bits (so gamma scans terminate) and set failed() instead of
  // FVL_CHECK-aborting. Used by ProvenanceIndex::Deserialize to validate
  // blobs at the door.
  void set_permissive() { permissive_ = true; }
  bool failed() const { return failed_; }

  // True if at least `bits` bits remain. A shortfall sets failed() in
  // permissive mode and aborts otherwise; call before trusting a
  // length-prefixed count read from the stream.
  bool CheckRemaining(uint64_t bits);

 private:
  bool ReadBit();
  // Word `index` of whichever backing this reader has.
  uint64_t WordAt(int64_t index) const;

  // Exactly one of words_/bytes_ is set.
  const std::vector<uint64_t>* words_ = nullptr;
  const uint8_t* bytes_ = nullptr;
  int64_t size_bits_;
  int64_t position_ = 0;
  bool permissive_ = false;
  bool failed_ = false;
};

// Number of bits needed to store values in [0, n-1] as a fixed-width field;
// BitWidthFor(0) and BitWidthFor(1) are 0 (nothing to distinguish).
int BitWidthFor(int64_t n);

// Length of the Elias-gamma code for value >= 1.
int GammaLength(uint64_t value);

// Length in bits of WriteVByte(value) (a multiple of 8).
int VByteLength(uint64_t value);

}  // namespace fvl

#endif  // FVL_UTIL_BITSTREAM_H_
