// ShardedCache — a fixed-footprint, sharded, direct-mapped cache with a
// frequency-based (CLOCK / second-chance) admission policy, the primitive
// behind the snapshot-lifetime serving caches (core/serving_cache.h).
//
// Design constraints, in order:
//
//   1. Bounded memory. Capacity is fixed at construction; no entry is ever
//      heap-chained. A cache sized for an index costs O(capacity) once and
//      never grows, so giving every frozen snapshot its own cache keeps the
//      O(delta) snapshot contract intact.
//   2. Skew-friendly admission. Each slot carries a small frequency
//      counter: hits increment it, and an insert that collides with a
//      *different* resident key decrements the resident instead of evicting
//      it, replacing only when the counter reaches zero. Under zipfian
//      traffic a hot resident out-earns the stream of cold one-shot keys
//      that hash onto its slot, so the cache converges on the head of the
//      distribution instead of thrashing on the tail (the DMCache/CLOCK
//      idiom; see docs/ARCHITECTURE.md).
//   3. Checkable locking. One fvl::Mutex per shard, slots FVL_GUARDED_BY
//      it, so the thread-safety CI lane verifies every access path; hit/
//      miss counters are relaxed atomics, safe to read live from any
//      thread (docs/CONCURRENCY.md lock table).
//
// Lookup/Insert are wait-short (one shard lock, one slot probe) and safe
// from any number of threads. A zero-capacity cache is valid and simply
// never hits — callers need no special case.

#ifndef FVL_UTIL_SHARDED_CACHE_H_
#define FVL_UTIL_SHARDED_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fvl/util/thread_annotations.h"

namespace fvl {

// Snapshot of a cache's counters (monotonic since construction).
struct ShardedCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;  // slots installed or refreshed
  uint64_t rejections = 0;  // inserts refused by the admission policy

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedCache {
 public:
  // `capacity` is the total slot count across all shards; 0 is a valid
  // always-miss cache. Shard count scales with capacity so small caches do
  // not pay 16 mutexes for 8 slots.
  explicit ShardedCache(int capacity) {
    const int shards = capacity >= 4096 ? 16 : capacity >= 256 ? 4 : 1;
    slots_per_shard_ =
        capacity <= 0 ? 0 : (capacity + shards - 1) / shards;
    shards_.reserve(shards);
    for (int s = 0; s < shards; ++s) {
      shards_.push_back(std::make_unique<Shard>(slots_per_shard_));
    }
  }

  ShardedCache(const ShardedCache&) = delete;
  ShardedCache& operator=(const ShardedCache&) = delete;

  int capacity() const {
    return static_cast<int>(shards_.size()) * slots_per_shard_;
  }

  // Copies the resident value into *out and returns true on a hit; a hit
  // also bumps the slot's frequency (capped), which is what makes the
  // resident resistant to eviction by colliding cold keys.
  bool Lookup(const Key& key, Value* out) const {
    if (slots_per_shard_ == 0) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    const uint64_t h = Mix(static_cast<uint64_t>(Hash{}(key)));
    Shard& shard = *shards_[h % shards_.size()];
    MutexLock lock(&shard.mu);
    Slot& slot = shard.slots[(h / shards_.size()) % slots_per_shard_];
    if (slot.occupied && slot.key == key) {
      *out = slot.value;
      if (slot.freq < kMaxFreq) ++slot.freq;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // Offers (key, value) to the cache. An empty slot installs it; the same
  // key refreshes it. A slot holding a *different* key applies second
  // chance: the resident's frequency is decremented and the insert is
  // rejected until the counter reaches zero — a key must collide repeatedly
  // (i.e. actually be warm) to displace an established resident.
  void Insert(const Key& key, const Value& value) {
    if (slots_per_shard_ == 0) return;
    const uint64_t h = Mix(static_cast<uint64_t>(Hash{}(key)));
    Shard& shard = *shards_[h % shards_.size()];
    MutexLock lock(&shard.mu);
    Slot& slot = shard.slots[(h / shards_.size()) % slots_per_shard_];
    if (slot.occupied && slot.key == key) {
      slot.value = value;
      if (slot.freq < kMaxFreq) ++slot.freq;
      insertions_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (slot.occupied && slot.freq > 0) {
      --slot.freq;
      rejections_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    slot.occupied = true;
    slot.key = key;
    slot.value = value;
    slot.freq = 1;
    insertions_.fetch_add(1, std::memory_order_relaxed);
  }

  ShardedCacheStats stats() const {
    ShardedCacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.insertions = insertions_.load(std::memory_order_relaxed);
    s.rejections = rejections_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  // Hits saturate the counter here; a resident at the cap survives this
  // many colliding cold inserts before second chance evicts it.
  static constexpr uint8_t kMaxFreq = 3;

  struct Slot {
    Key key{};
    Value value{};
    uint8_t freq = 0;
    bool occupied = false;
  };

  struct Shard {
    explicit Shard(int slots_count) : slots(slots_count) {}
    mutable Mutex mu;
    std::vector<Slot> slots FVL_GUARDED_BY(mu);
  };

  // SplitMix64 finalizer: std::hash is the identity for integral keys, so
  // without mixing every small key would land in shard (key % shards) and
  // the high bits used for slot selection would be all zero.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  // unique_ptr because Shard owns a Mutex (non-movable).
  std::vector<std::unique_ptr<Shard>> shards_;
  int slots_per_shard_ = 0;

  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> rejections_{0};
};

}  // namespace fvl

#endif  // FVL_UTIL_SHARDED_CACHE_H_
