// RAII wrappers for the only raw POSIX file I/O in the library.
//
// Everything that touches `open`/`read`/`write`/`mmap`/`madvise` lives
// here or in util/blob_source.{h,cc} — tools/fvl_lint.py's `raw-io` rule
// rejects naked calls anywhere else, the same way the naked-mutex rule
// funnels locking through util/thread_annotations.h. Failures are
// recoverable Status values (kIo for file ops, kMapFailed for mapping),
// never aborts: an archive path is untrusted input like a blob is.
//
// FileHandle owns a descriptor; MmapRegion owns a read-only mapping of
// one. Both are move-only. Higher layers should not use these directly —
// BlobSource (util/blob_source.h) is the ownership abstraction indexes
// actually hold.

#ifndef FVL_UTIL_FILE_H_
#define FVL_UTIL_FILE_H_

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>

#include "fvl/util/status.h"

namespace fvl {

namespace internal {

inline Status IoError(const char* op, const std::string& path) {
  return Status::Error(ErrorCode::kIo, std::string(op) + " " + path +
                                           " failed: " + std::strerror(errno));
}

}  // namespace internal

// Owns one open file descriptor; closes it on destruction. Move-only.
class FileHandle {
 public:
  FileHandle() = default;
  ~FileHandle() { Reset(); }
  FileHandle(FileHandle&& other) noexcept
      : fd_(other.fd_), path_(std::move(other.path_)) {
    other.fd_ = -1;
  }
  FileHandle& operator=(FileHandle&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.fd_;
      path_ = std::move(other.path_);
      other.fd_ = -1;
    }
    return *this;
  }
  FileHandle(const FileHandle&) = delete;
  FileHandle& operator=(const FileHandle&) = delete;

  [[nodiscard]] static Result<FileHandle> OpenRead(const std::string& path) {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return internal::IoError("open", path);
    return FileHandle(fd, path);
  }

  // Creates (or truncates) `path` for writing.
  [[nodiscard]] static Result<FileHandle> CreateTruncate(
      const std::string& path) {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (fd < 0) return internal::IoError("create", path);
    return FileHandle(fd, path);
  }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  const std::string& path() const { return path_; }

  [[nodiscard]] Result<int64_t> Size() const {
    struct stat st;
    if (::fstat(fd_, &st) != 0) return internal::IoError("stat", path_);
    return static_cast<int64_t>(st.st_size);
  }

  // Writes all of `bytes`, retrying short writes and EINTR.
  [[nodiscard]] Status WriteAll(std::string_view bytes) {
    const char* data = bytes.data();
    size_t remaining = bytes.size();
    while (remaining > 0) {
      ssize_t wrote = ::write(fd_, data, remaining);
      if (wrote < 0) {
        if (errno == EINTR) continue;
        return internal::IoError("write", path_);
      }
      data += wrote;
      remaining -= static_cast<size_t>(wrote);
    }
    return Status::Ok();
  }

  // Reads the whole file into a string (small control files; archives are
  // served through MmapRegion instead).
  [[nodiscard]] Result<std::string> ReadAll() const {
    Result<int64_t> size = Size();
    if (!size.ok()) return size.status();
    std::string out(static_cast<size_t>(*size), '\0');
    size_t at = 0;
    while (at < out.size()) {
      ssize_t got = ::read(fd_, out.data() + at, out.size() - at);
      if (got < 0) {
        if (errno == EINTR) continue;
        return internal::IoError("read", path_);
      }
      if (got == 0) break;  // raced a truncation; return what exists
      at += static_cast<size_t>(got);
    }
    out.resize(at);
    return out;
  }

  // Explicit error-checked close (a writer that cares about ENOSPC-at-close
  // should call this rather than rely on the destructor, which swallows).
  [[nodiscard]] Status Close() {
    if (fd_ < 0) return Status::Ok();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return internal::IoError("close", path_);
    return Status::Ok();
  }

 private:
  FileHandle(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  void Reset() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  int fd_ = -1;
  std::string path_;
};

// Owns one read-only shared mapping of a file; unmaps on destruction.
// A zero-byte file maps to an empty region (mmap rejects length 0).
class MmapRegion {
 public:
  MmapRegion() = default;
  ~MmapRegion() { Reset(); }
  MmapRegion(MmapRegion&& other) noexcept
      : data_(other.data_), size_(other.size_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }
  MmapRegion& operator=(MmapRegion&& other) noexcept {
    if (this != &other) {
      Reset();
      data_ = other.data_;
      size_ = other.size_;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  MmapRegion(const MmapRegion&) = delete;
  MmapRegion& operator=(const MmapRegion&) = delete;

  // Maps the whole file read-only. The mapping survives the FileHandle
  // (POSIX keeps pages valid after the descriptor closes).
  [[nodiscard]] static Result<MmapRegion> Map(const FileHandle& file) {
    Result<int64_t> size = file.Size();
    if (!size.ok()) return size.status();
    MmapRegion region;
    region.size_ = static_cast<size_t>(*size);
    if (region.size_ == 0) return region;
    void* data =
        ::mmap(nullptr, region.size_, PROT_READ, MAP_SHARED, file.fd(), 0);
    if (data == MAP_FAILED) {
      return Status::Error(ErrorCode::kMapFailed,
                           "mmap " + file.path() +
                               " failed: " + std::strerror(errno));
    }
    region.data_ = static_cast<const uint8_t*>(data);
    return region;
  }

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  std::string_view view() const {
    return {reinterpret_cast<const char*>(data_), size_};
  }

  enum class Advice { kNormal, kSequential, kRandom, kDontNeed };

  // Access-pattern hint; advisory, so failures are ignored (a kernel that
  // rejects madvise serves the pages correctly anyway).
  void Advise(Advice advice) const {
    if (data_ == nullptr) return;
    int hint = MADV_NORMAL;
    switch (advice) {
      case Advice::kNormal:
        hint = MADV_NORMAL;
        break;
      case Advice::kSequential:
        hint = MADV_SEQUENTIAL;
        break;
      case Advice::kRandom:
        hint = MADV_RANDOM;
        break;
      case Advice::kDontNeed:
        hint = MADV_DONTNEED;
        break;
    }
    // const_cast: madvise takes void* but does not write through it.
    ::madvise(const_cast<uint8_t*>(data_), size_, hint);
  }

 private:
  void Reset() {
    if (data_ != nullptr) {
      ::munmap(const_cast<uint8_t*>(data_), size_);
    }
    data_ = nullptr;
    size_ = 0;
  }

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace fvl

#endif  // FVL_UTIL_FILE_H_
