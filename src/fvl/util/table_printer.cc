#include "fvl/util/table_printer.h"

#include <cstdio>

#include "fvl/util/check.h"

namespace fvl {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  FVL_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) line += "  ";
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TablePrinter::ToCsv() const {
  auto join = [](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += ',';
      line += row[c];
    }
    line += '\n';
    return line;
  };
  std::string out = join(header_);
  for (const auto& row : rows_) out += join(row);
  return out;
}

void TablePrinter::Print(const std::string& title) const {
  std::printf("== %s ==\n%s\ncsv:\n%s\n", title.c_str(), ToString().c_str(),
              ToCsv().c_str());
  std::fflush(stdout);
}

}  // namespace fvl
