#include "fvl/util/table_printer.h"

#include <cstdio>

#include "fvl/util/check.h"

namespace fvl {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  FVL_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) line += "  ";
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TablePrinter::ToCsv() const {
  auto join = [](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += ',';
      line += row[c];
    }
    line += '\n';
    return line;
  };
  std::string out = join(header_);
  for (const auto& row : rows_) out += join(row);
  return out;
}

std::string TablePrinter::ToJson(const std::string& name) const {
  auto quote = [](const std::string& text) {
    std::string out = "\"";
    for (char c : text) {
      unsigned char u = static_cast<unsigned char>(c);
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (u < 0x20) {  // JSON strings may not hold raw controls
        char escaped[8];
        std::snprintf(escaped, sizeof(escaped), "\\u%04x", u);
        out += escaped;
      } else {
        out += c;
      }
    }
    out += '"';
    return out;
  };
  // Numeric cells travel as JSON numbers so trackers can diff them without
  // re-parsing. The check is JSON's own number grammar —
  // -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)? — not strtod, which
  // also accepts tokens JSON has no literal for (hex floats, leading '+',
  // bare ".5", "inf"/"nan"); anything else stays a quoted string.
  auto is_json_number = [](const std::string& text) {
    auto digit = [](char c) { return c >= '0' && c <= '9'; };
    size_t i = 0;
    if (i < text.size() && text[i] == '-') ++i;
    if (i >= text.size() || !digit(text[i])) return false;
    if (text[i] == '0') {
      ++i;
    } else {
      while (i < text.size() && digit(text[i])) ++i;
    }
    if (i < text.size() && text[i] == '.') {
      ++i;
      if (i >= text.size() || !digit(text[i])) return false;
      while (i < text.size() && digit(text[i])) ++i;
    }
    if (i < text.size() && (text[i] == 'e' || text[i] == 'E')) {
      ++i;
      if (i < text.size() && (text[i] == '+' || text[i] == '-')) ++i;
      if (i >= text.size() || !digit(text[i])) return false;
      while (i < text.size() && digit(text[i])) ++i;
    }
    return i == text.size();
  };
  auto value = [&](const std::string& cell) {
    return is_json_number(cell) ? cell : quote(cell);
  };
  std::string out = "{\"table\": " + quote(name) + ", \"columns\": [";
  for (size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) out += ", ";
    out += quote(header_[c]);
  }
  out += "], \"rows\": [";
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) out += ", ";
    out += '{';
    for (size_t c = 0; c < header_.size(); ++c) {
      if (c > 0) out += ", ";
      out += quote(header_[c]);
      out += ": ";
      out += value(rows_[r][c]);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

void TablePrinter::Print(const std::string& title) const {
  std::printf("== %s ==\n%s\ncsv:\n%s\n", title.c_str(), ToString().c_str(),
              ToCsv().c_str());
  std::fflush(stdout);
}

}  // namespace fvl
