#include "fvl/util/boolean_matrix.h"

#include <bit>

#include "fvl/util/check.h"

namespace fvl {

namespace {
constexpr int kWordBits = 64;
}  // namespace

BoolMatrix::BoolMatrix(int rows, int cols)
    : rows_(rows),
      cols_(cols),
      words_per_row_((cols + kWordBits - 1) / kWordBits),
      bits_(static_cast<size_t>(rows) * words_per_row_, 0) {
  FVL_CHECK(rows >= 0 && cols >= 0);
}

BoolMatrix BoolMatrix::Identity(int n) {
  BoolMatrix m(n, n);
  for (int i = 0; i < n; ++i) m.Set(i, i);
  return m;
}

BoolMatrix BoolMatrix::Full(int rows, int cols) {
  BoolMatrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m.Set(r, c);
  }
  return m;
}

bool BoolMatrix::Get(int r, int c) const {
  FVL_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return (Row(r)[c / kWordBits] >> (c % kWordBits)) & 1;
}

void BoolMatrix::Set(int r, int c, bool value) {
  FVL_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  uint64_t mask = uint64_t{1} << (c % kWordBits);
  if (value) {
    Row(r)[c / kWordBits] |= mask;
  } else {
    Row(r)[c / kWordBits] &= ~mask;
  }
}

BoolMatrix BoolMatrix::Multiply(const BoolMatrix& other) const {
  FVL_CHECK(cols_ == other.rows_);
  BoolMatrix result(rows_, other.cols_);
  for (int r = 0; r < rows_; ++r) {
    const uint64_t* a_row = Row(r);
    uint64_t* out_row = result.Row(r);
    for (int w = 0; w < words_per_row_; ++w) {
      uint64_t word = a_row[w];
      while (word != 0) {
        int k = w * kWordBits + std::countr_zero(word);
        word &= word - 1;
        const uint64_t* b_row = other.Row(k);
        for (int v = 0; v < other.words_per_row_; ++v) out_row[v] |= b_row[v];
      }
    }
  }
  return result;
}

BoolMatrix BoolMatrix::Transpose() const {
  BoolMatrix result(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      if (Get(r, c)) result.Set(c, r);
    }
  }
  return result;
}

BoolMatrix BoolMatrix::Or(const BoolMatrix& other) const {
  FVL_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  BoolMatrix result = *this;
  for (size_t i = 0; i < bits_.size(); ++i) result.bits_[i] |= other.bits_[i];
  return result;
}

bool BoolMatrix::IsSubsetOf(const BoolMatrix& other) const {
  FVL_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < bits_.size(); ++i) {
    if ((bits_[i] & ~other.bits_[i]) != 0) return false;
  }
  return true;
}

bool BoolMatrix::IsZero() const {
  for (uint64_t word : bits_) {
    if (word != 0) return false;
  }
  return true;
}

bool BoolMatrix::IsFull() const { return CountOnes() == rows_ * cols_; }

bool BoolMatrix::RowAny(int r) const {
  FVL_DCHECK(r >= 0 && r < rows_);
  for (int w = 0; w < words_per_row_; ++w) {
    if (Row(r)[w] != 0) return true;
  }
  return false;
}

bool BoolMatrix::ColAny(int c) const {
  FVL_DCHECK(c >= 0 && c < cols_);
  for (int r = 0; r < rows_; ++r) {
    if (Get(r, c)) return true;
  }
  return false;
}

int BoolMatrix::CountOnes() const {
  int count = 0;
  for (uint64_t word : bits_) count += std::popcount(word);
  return count;
}

bool BoolMatrix::operator==(const BoolMatrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ && bits_ == other.bits_;
}

std::string BoolMatrix::ToString() const {
  std::string out;
  for (int r = 0; r < rows_; ++r) {
    out += '[';
    for (int c = 0; c < cols_; ++c) {
      if (c > 0) out += ' ';
      out += Get(r, c) ? '1' : '0';
    }
    out += "]";
    if (r + 1 < rows_) out += '\n';
  }
  return out;
}

}  // namespace fvl
