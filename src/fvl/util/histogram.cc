#include "fvl/util/histogram.h"

#include <algorithm>
#include <bit>

namespace fvl {

int LatencyHistogram::BucketOf(int64_t value) {
  if (value < 0) value = 0;
  uint64_t v = static_cast<uint64_t>(value);
  // Values below 2^kSubBits get one bucket each (exact); above, the top
  // kSubBits bits after the leading one select the sub-bucket.
  if (v < (uint64_t{1} << kSubBits)) return static_cast<int>(v);
  int exponent = 63 - std::countl_zero(v);  // >= kSubBits
  int sub = static_cast<int>((v >> (exponent - kSubBits)) &
                             ((uint64_t{1} << kSubBits) - 1));
  return ((exponent - kSubBits + 1) << kSubBits) + sub;
}

int64_t LatencyHistogram::BucketValue(int bucket) {
  if (bucket < (1 << kSubBits)) return bucket;
  int exponent = (bucket >> kSubBits) + kSubBits - 1;
  int sub = bucket & ((1 << kSubBits) - 1);
  // Midpoint of the bucket's value range.
  uint64_t base = (uint64_t{1} << exponent) +
                  (static_cast<uint64_t>(sub) << (exponent - kSubBits));
  uint64_t width = uint64_t{1} << (exponent - kSubBits);
  return static_cast<int64_t>(base + width / 2);
}

void LatencyHistogram::Record(int64_t value) {
  if (value < 0) value = 0;
  buckets_[BucketOf(value)] += 1;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += 1;
  sum_ += value;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (int b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

int64_t LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  // Rank of the requested quantile, 1-based (nearest-rank definition).
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(count_)) + 1;
  rank = std::min(rank, count_);
  int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) {
      return std::clamp(BucketValue(b), min_, max_);
    }
  }
  return max_;
}

}  // namespace fvl
