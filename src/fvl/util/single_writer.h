// Dynamic misuse detection for single-writer objects.
//
// ProvenanceSession's contract is single-writer: concurrent Apply /
// SnapshotDelta calls on one session require external synchronization
// (net/server.cc's SessionEntry mutex is the canonical example). That
// contract used to be documentation only — a racing caller got silent
// corruption, and TSan only complained if the interleaving happened to
// collide on the same bytes during the run. SingleWriterGuard turns the
// misuse into a deterministic FVL_CHECK abort the moment two writers
// overlap at all, whether or not their byte accesses collide.
//
// The guard is two relaxed atomic ops per guarded call — noise against the
// labeling work a write performs — so it stays on in release builds, where
// the contract matters most (tests/concurrency_stress_test.cc and
// tests/util_test.cc cover both the quiet path and the detection).

#ifndef FVL_UTIL_SINGLE_WRITER_H_
#define FVL_UTIL_SINGLE_WRITER_H_

#include <atomic>

#include "fvl/util/check.h"

namespace fvl::internal {

class SingleWriterGuard {
 public:
  SingleWriterGuard() = default;
  // Guard state is per-object identity, not data: copies/moves of the
  // guarded object start unheld.
  SingleWriterGuard(const SingleWriterGuard&) {}
  SingleWriterGuard& operator=(const SingleWriterGuard&) { return *this; }

  void Enter() {
    FVL_CHECK(!writing_.exchange(true, std::memory_order_acquire) &&
              "single-writer contract violated: two unsynchronized writers "
              "overlapped on one object");
  }
  void Exit() { writing_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> writing_{false};
};

// Scoped Enter/Exit.
class SingleWriterScope {
 public:
  explicit SingleWriterScope(SingleWriterGuard* guard) : guard_(guard) {
    guard_->Enter();
  }
  ~SingleWriterScope() { guard_->Exit(); }

  SingleWriterScope(const SingleWriterScope&) = delete;
  SingleWriterScope& operator=(const SingleWriterScope&) = delete;

 private:
  SingleWriterGuard* guard_;
};

}  // namespace fvl::internal

#endif  // FVL_UTIL_SINGLE_WRITER_H_
