#include "fvl/util/bitstream.h"

#include <bit>

#include "fvl/util/check.h"

namespace fvl {

void BitWriter::WriteBit(bool bit) {
  int64_t word_index = size_bits_ / 64;
  if (word_index == static_cast<int64_t>(words_.size())) words_.push_back(0);
  if (bit) words_[word_index] |= uint64_t{1} << (size_bits_ % 64);
  ++size_bits_;
}

void BitWriter::WriteFixed(uint64_t value, int width) {
  FVL_CHECK(width >= 0 && width <= 64);
  FVL_DCHECK(width == 64 || value < (uint64_t{1} << width));
  if (width == 0) return;
  if (width < 64) value &= (uint64_t{1} << width) - 1;
  // Word-parallel append: OR the low bits into the current partial word and
  // spill the rest into a fresh one. Bit order matches WriteBit (LSB-first
  // within each word), so mixed WriteBit/WriteFixed streams are unchanged.
  const int used = static_cast<int>(size_bits_ % 64);
  if (used == 0) words_.push_back(0);
  words_[size_bits_ / 64] |= value << used;
  const int fits = 64 - used;
  if (width > fits) words_.push_back(value >> fits);
  size_bits_ += width;
}

BitWriter BitWriter::FromWords(std::vector<uint64_t> words,
                               int64_t size_bits) {
  FVL_CHECK(size_bits >= 0 &&
            (size_bits + 63) / 64 <= static_cast<int64_t>(words.size()));
  BitWriter writer;
  writer.words_ = std::move(words);
  writer.size_bits_ = size_bits;
  return writer;
}

void BitWriter::WriteGamma(uint64_t value) {
  FVL_CHECK(value >= 1);
  int bits = 64 - std::countl_zero(value);  // position of the highest set bit
  for (int i = 0; i < bits - 1; ++i) WriteBit(false);
  WriteBit(true);
  // Remaining bits of the value below the leading one, most significant
  // first (the conventional gamma layout).
  for (int i = bits - 2; i >= 0; --i) WriteBit((value >> i) & 1);
}

void BitWriter::WriteVByte(uint64_t value) {
  do {
    uint64_t group = value & 0x7F;
    value >>= 7;
    WriteFixed(group | (value != 0 ? 0x80 : 0), 8);
  } while (value != 0);
}

uint64_t BitReader::WordAt(int64_t index) const {
  if (words_ != nullptr) return (*words_)[index];
  // Byte-backed (borrowed-arena) mode: explicit little-endian assembly —
  // the buffer is unaligned, so a uint64_t* cast would be UB. Compiles to
  // a single load on little-endian targets.
  const uint8_t* at = bytes_ + 8 * index;
  uint64_t word = 0;
  for (int i = 0; i < 8; ++i) {
    word |= static_cast<uint64_t>(at[i]) << (8 * i);
  }
  return word;
}

bool BitReader::ReadBit() {
  if (position_ >= size_bits_) {
    FVL_CHECK(permissive_);
    failed_ = true;
    return true;  // terminates gamma zero-scans
  }
  bool bit = (WordAt(position_ / 64) >> (position_ % 64)) & 1;
  ++position_;
  return bit;
}

bool BitReader::CheckRemaining(uint64_t bits) {
  if (bits <= static_cast<uint64_t>(size_bits_ - position_)) return true;
  FVL_CHECK(permissive_);
  failed_ = true;
  return false;
}

uint64_t BitReader::ReadFixed(int width) {
  FVL_CHECK(width >= 0 && width <= 64);
  if (width == 0) return 0;
  if (position_ + width > size_bits_) {
    // Out-of-range tail: keep the per-bit path, whose permissive handling
    // (all-ones fill + failed()) the blob validators rely on.
    uint64_t value = 0;
    for (int i = 0; i < width; ++i) {
      if (ReadBit()) value |= uint64_t{1} << i;
    }
    return value;
  }
  // Word-parallel extraction (same LSB-first layout as ReadBit).
  const int64_t word = position_ / 64;
  const int off = static_cast<int>(position_ % 64);
  uint64_t value = WordAt(word) >> off;
  const int got = 64 - off;
  if (width > got) value |= WordAt(word + 1) << got;
  if (width < 64) value &= (uint64_t{1} << width) - 1;
  position_ += width;
  return value;
}

uint64_t BitReader::ReadGamma() {
  int zeros = 0;
  while (!ReadBit()) ++zeros;
  uint64_t value = 1;
  for (int i = 0; i < zeros; ++i) {
    value = (value << 1) | (ReadBit() ? 1 : 0);
  }
  return value;
}

uint64_t BitReader::ReadVByte() {
  uint64_t value = 0;
  // Ten groups cover 64 value bits (last shift is 63, bits beyond the word
  // fall off); an eleventh continuation bit can only come from a corrupted
  // stream (or a permissive read past the end, whose all-ones fill keeps
  // the continuation bit set — both must terminate).
  for (int shift = 0; shift <= 63; shift += 7) {
    uint64_t group = ReadFixed(8);
    value |= (group & 0x7F) << shift;
    if ((group & 0x80) == 0) return value;
  }
  FVL_CHECK(permissive_);
  failed_ = true;
  return value;
}

int BitWidthFor(int64_t n) {
  FVL_CHECK(n >= 0);
  if (n <= 1) return 0;
  return 64 - std::countl_zero(static_cast<uint64_t>(n - 1));
}

int GammaLength(uint64_t value) {
  FVL_CHECK(value >= 1);
  int bits = 64 - std::countl_zero(value);
  return 2 * bits - 1;
}

int VByteLength(uint64_t value) {
  int length = 8;
  for (value >>= 7; value != 0; value >>= 7) length += 8;
  return length;
}

}  // namespace fvl
