#include "fvl/util/bitstream.h"

#include <bit>

#include "fvl/util/check.h"

namespace fvl {

void BitWriter::WriteBit(bool bit) {
  int64_t word_index = size_bits_ / 64;
  if (word_index == static_cast<int64_t>(words_.size())) words_.push_back(0);
  if (bit) words_[word_index] |= uint64_t{1} << (size_bits_ % 64);
  ++size_bits_;
}

void BitWriter::WriteFixed(uint64_t value, int width) {
  FVL_CHECK(width >= 0 && width <= 64);
  FVL_DCHECK(width == 64 || value < (uint64_t{1} << width));
  for (int i = 0; i < width; ++i) WriteBit((value >> i) & 1);
}

void BitWriter::WriteGamma(uint64_t value) {
  FVL_CHECK(value >= 1);
  int bits = 64 - std::countl_zero(value);  // position of the highest set bit
  for (int i = 0; i < bits - 1; ++i) WriteBit(false);
  WriteBit(true);
  // Remaining bits of the value below the leading one, most significant
  // first (the conventional gamma layout).
  for (int i = bits - 2; i >= 0; --i) WriteBit((value >> i) & 1);
}

bool BitReader::ReadBit() {
  if (position_ >= size_bits_) {
    FVL_CHECK(permissive_);
    failed_ = true;
    return true;  // terminates gamma zero-scans
  }
  bool bit = ((*words_)[position_ / 64] >> (position_ % 64)) & 1;
  ++position_;
  return bit;
}

bool BitReader::CheckRemaining(uint64_t bits) {
  if (bits <= static_cast<uint64_t>(size_bits_ - position_)) return true;
  FVL_CHECK(permissive_);
  failed_ = true;
  return false;
}

uint64_t BitReader::ReadFixed(int width) {
  FVL_CHECK(width >= 0 && width <= 64);
  uint64_t value = 0;
  for (int i = 0; i < width; ++i) {
    if (ReadBit()) value |= uint64_t{1} << i;
  }
  return value;
}

uint64_t BitReader::ReadGamma() {
  int zeros = 0;
  while (!ReadBit()) ++zeros;
  uint64_t value = 1;
  for (int i = 0; i < zeros; ++i) {
    value = (value << 1) | (ReadBit() ? 1 : 0);
  }
  return value;
}

int BitWidthFor(int64_t n) {
  FVL_CHECK(n >= 0);
  if (n <= 1) return 0;
  return 64 - std::countl_zero(static_cast<uint64_t>(n - 1));
}

int GammaLength(uint64_t value) {
  FVL_CHECK(value >= 1);
  int bits = 64 - std::countl_zero(value);
  return 2 * bits - 1;
}

}  // namespace fvl
