// Dense bit-packed boolean matrices.
//
// Reachability matrices in this project are tiny (their dimensions are
// bounded by the number of ports of a module, typically <= 10), but they are
// multiplied on the hot query path, so rows are packed into 64-bit words and
// the boolean product is computed word-parallel: for every set bit k of
// A.row(r), OR B.row(k) into C.row(r).

#ifndef FVL_UTIL_BOOLEAN_MATRIX_H_
#define FVL_UTIL_BOOLEAN_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fvl {

class BoolMatrix {
 public:
  BoolMatrix() = default;
  // Creates a rows x cols all-false matrix.
  BoolMatrix(int rows, int cols);

  // n x n identity.
  static BoolMatrix Identity(int n);
  // rows x cols all-true.
  static BoolMatrix Full(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  bool Get(int r, int c) const;
  void Set(int r, int c, bool value = true);

  // Boolean matrix product; requires cols() == other.rows().
  BoolMatrix Multiply(const BoolMatrix& other) const;
  BoolMatrix Transpose() const;
  // Element-wise OR; requires equal dimensions.
  BoolMatrix Or(const BoolMatrix& other) const;

  // True iff every entry of *this that is set is also set in other.
  bool IsSubsetOf(const BoolMatrix& other) const;
  // True iff no entry is set.
  bool IsZero() const;
  // True iff every entry is set.
  bool IsFull() const;
  // True iff row r has at least one set entry.
  bool RowAny(int r) const;
  // True iff column c has at least one set entry.
  bool ColAny(int c) const;
  // Number of set entries.
  int CountOnes() const;

  bool operator==(const BoolMatrix& other) const;
  bool operator!=(const BoolMatrix& other) const { return !(*this == other); }

  // Multi-line "0/1" rendering, e.g. "[1 1]\n[0 1]".
  std::string ToString() const;

  // Approximate serialized size in bits (one bit per entry); used by the
  // view-label space accounting in the benchmarks.
  int64_t SizeBits() const { return int64_t{1} * rows_ * cols_; }

 private:
  int WordsPerRow() const { return words_per_row_; }
  const uint64_t* Row(int r) const { return bits_.data() + r * words_per_row_; }
  uint64_t* Row(int r) { return bits_.data() + r * words_per_row_; }

  int rows_ = 0;
  int cols_ = 0;
  int words_per_row_ = 0;
  std::vector<uint64_t> bits_;
};

}  // namespace fvl

#endif  // FVL_UTIL_BOOLEAN_MATRIX_H_
