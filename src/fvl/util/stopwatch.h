// Monotonic wall-clock stopwatch used by the benchmark harness.

#ifndef FVL_UTIL_STOPWATCH_H_
#define FVL_UTIL_STOPWATCH_H_

#include <chrono>

namespace fvl {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedNanos() const { return ElapsedSeconds() * 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fvl

#endif  // FVL_UTIL_STOPWATCH_H_
