// Aligned-column table printer for the benchmark harness.
//
// Every bench binary prints the rows/series of the paper table or figure it
// regenerates; this helper keeps the output format uniform (aligned text
// table plus an optional machine-readable CSV block).

#ifndef FVL_UTIL_TABLE_PRINTER_H_
#define FVL_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace fvl {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  // Convenience: formats doubles with the given precision.
  static std::string Num(double value, int precision = 2);

  // Renders the aligned table.
  std::string ToString() const;
  // Renders a CSV block (one line per row, comma-separated).
  std::string ToCsv() const;
  // Renders one JSON object — {"table": name, "columns": [...], "rows":
  // [{column: value, ...}, ...]} — for the machine-readable bench results
  // CI archives (BENCH_*.json). Cells that parse fully as numbers are
  // emitted as JSON numbers, everything else as escaped strings.
  std::string ToJson(const std::string& name) const;
  // Prints the table and CSV to stdout, with `title` above.
  void Print(const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fvl

#endif  // FVL_UTIL_TABLE_PRINTER_H_
