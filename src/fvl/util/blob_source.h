// BlobSource — the one abstraction over how a serialized index artifact is
// owned, so the index classes reference storage instead of owning heap
// strings.
//
// Three ownership modes, one read interface (`view()`):
//
//   owned     the source holds the bytes in a std::string (the classic
//             Serialize()/Deserialize() round trip);
//   borrowed  the caller guarantees the bytes outlive the source (a test
//             fixture, a wire frame still in its connection buffer);
//   mapped    the source owns an MmapRegion over an archive file — the
//             pages are the kernel's, shared across processes, and the
//             LabelStore borrowed-arena mode points straight into them.
//
// A BlobSource is cheaply copyable: copies share one reference-counted
// representation, which is exactly the keepalive an mmap-served
// ProvenanceIndex needs — every copy of the index copies the source, and
// the mapping unmaps with the last copy.
//
// BlobReader is the incremental cursor CompactStream consumes inputs
// through: sequential access advice up front, chunked Take() so even the
// largest mapped artifact streams through without a heap copy.

#ifndef FVL_UTIL_BLOB_SOURCE_H_
#define FVL_UTIL_BLOB_SOURCE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "fvl/util/status.h"

namespace fvl {

class BlobSource {
 public:
  BlobSource() = default;  // empty view, no backing

  // Takes ownership of `blob`.
  [[nodiscard]] static BlobSource FromString(std::string blob);

  // Wraps caller-owned bytes; the caller keeps them alive for the life of
  // every copy of the returned source.
  [[nodiscard]] static BlobSource Borrowed(std::string_view blob);

  // Opens and memory-maps `path` read-only: kIo if the file cannot be
  // opened or statted, kMapFailed if it cannot be mapped.
  [[nodiscard]] static Result<BlobSource> MapFile(const std::string& path);

  // The blob bytes, whatever the ownership mode.
  std::string_view view() const;

  bool empty() const { return view().empty(); }
  size_t size() const { return view().size(); }

  // True for mmap-backed sources (observability: benches and stats report
  // whether an index is file-served).
  bool mapped() const;

  // Access-pattern hints, forwarded to madvise on mapped sources and
  // no-ops otherwise. Sequential is what a one-pass compaction read wants;
  // Random fits point-query serving; DontNeed releases page-cache claim on
  // a region the caller is done streaming.
  void AdviseSequential() const;
  void AdviseRandom() const;
  void AdviseDontNeed() const;

 private:
  struct Rep;  // owned string, or mapping, or nothing (borrowed)

  std::shared_ptr<const Rep> rep_;
  // Resolved once at construction; for owned/mapped modes it points into
  // rep_, which copies share.
  std::string_view view_;
};

// Incremental sequential reader over one BlobSource. Construction advises
// sequential access; Take() hands out borrowed chunks and advances the
// cursor, so a compaction pass over N archives touches each page once and
// never materializes an input in the heap.
class BlobReader {
 public:
  explicit BlobReader(BlobSource source) : source_(std::move(source)) {
    source_.AdviseSequential();
  }

  size_t size() const { return source_.size(); }
  size_t position() const { return position_; }

  // Bytes not yet consumed, as a borrowed view (no copy).
  std::string_view Remaining() const {
    return source_.view().substr(position_);
  }

  // Consumes and returns up to `max_bytes` (empty at the end).
  std::string_view Take(size_t max_bytes) {
    std::string_view chunk = source_.view().substr(position_, max_bytes);
    position_ += chunk.size();
    return chunk;
  }

  // Hints that the blob's pages are no longer needed (DontNeed on mapped
  // sources; the hint covers the whole mapping, so call it once the reader
  // is drained — a long compaction should not keep every already-merged
  // input resident).
  void ReleaseConsumed() { source_.AdviseDontNeed(); }

  const BlobSource& source() const { return source_; }

 private:
  BlobSource source_;
  size_t position_ = 0;
};

}  // namespace fvl

#endif  // FVL_UTIL_BLOB_SOURCE_H_
